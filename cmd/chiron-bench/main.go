// Command chiron-bench regenerates every table and figure of the paper's
// evaluation section and writes the rendered reports plus CSV series to a
// results directory. Run with -scale 1.0 for the paper's full episode
// counts (minutes to hours) or a smaller scale for a quick pass.
//
// Usage:
//
//	chiron-bench [-scale F] [-out DIR] [-only fig4,tab1] [-jobs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"chiron"
	"chiron/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "chiron-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chiron-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "episode-count scale factor in (0,1]")
	out := fs.String("out", "results", "output directory for reports and CSV series")
	only := fs.String("only", "", "comma-separated artifact ids to run (default: all)")
	jobs := fs.Int("jobs", 1, "concurrent experiment jobs (0 = GOMAXPROCS); output is identical at any setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 0 {
		return fmt.Errorf("jobs %d must be >= 0 (0 = GOMAXPROCS)", *jobs)
	}

	ids := chiron.Artifacts()
	if *only != "" {
		ids = nil
		for _, tok := range strings.Split(*only, ",") {
			ids = append(ids, chiron.Artifact(strings.TrimSpace(tok)))
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	var summary strings.Builder
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s: %s (scale %.2f)\n", id, chiron.DescribeArtifact(id), *scale)
		report, err := runArtifact(id, *scale, *jobs, *out)
		if err != nil {
			return fmt.Errorf("artifact %s: %w", id, err)
		}
		fmt.Println(report)
		fmt.Printf("--- %s done in %v\n\n", id, time.Since(start).Round(time.Second))
		summary.WriteString(report)
		summary.WriteString("\n")
	}
	path := filepath.Join(*out, "summary.txt")
	if err := os.WriteFile(path, []byte(summary.String()), 0o644); err != nil {
		return fmt.Errorf("write summary: %w", err)
	}
	fmt.Printf("reports written to %s\n", *out)
	return nil
}

// runArtifact executes one artifact with the given job-plan worker bound,
// writes its CSV series, and returns the rendered text report.
func runArtifact(id chiron.Artifact, scale float64, jobs int, outDir string) (string, error) {
	if experiment.IsComparison(id) {
		params, err := experiment.ComparisonDefaults(id)
		if err != nil {
			return "", err
		}
		params.Jobs = jobs
		cmp, err := experiment.RunComparison(params.Scale(scale))
		if err != nil {
			return "", err
		}
		if err := writeCSV(filepath.Join(outDir, string(id)+".csv"), func(f *os.File) error {
			return experiment.WriteComparisonCSV(f, cmp)
		}); err != nil {
			return "", err
		}
		return experiment.RenderComparison(id, cmp), nil
	}
	params, err := experiment.ConvergenceDefaults(id)
	if err != nil {
		return "", err
	}
	params.Jobs = jobs
	conv, err := experiment.RunConvergence(params.Scale(scale))
	if err != nil {
		return "", err
	}
	if err := writeCSV(filepath.Join(outDir, string(id)+".csv"), func(f *os.File) error {
		return experiment.WriteConvergenceCSV(f, conv)
	}); err != nil {
		return "", err
	}
	return experiment.RenderConvergence(id, conv), nil
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := write(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
