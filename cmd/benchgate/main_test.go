package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "benchmarks": [
    {"name": "BenchmarkComputeA", "after": {"ns_per_op": 1000}},
    {"name": "BenchmarkComputeB", "after": {"ns_per_op": 2000}}
  ]
}`

func TestGatePassesWithinThreshold(t *testing.T) {
	baseline := map[string]float64{"A": 1000, "B": 2000}
	current := map[string]float64{"A": 1050, "B": 2100} // +5% each
	r, err := gate(baseline, current, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed {
		t.Fatalf("gate failed at geomean %v with +10%% threshold", r.Geomean)
	}
	if math.Abs(r.Geomean-1.05) > 1e-12 {
		t.Fatalf("geomean %v, want 1.05", r.Geomean)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	baseline := map[string]float64{"A": 1000, "B": 2000}
	current := map[string]float64{"A": 1200, "B": 2400} // +20% each
	r, err := gate(baseline, current, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Failed {
		t.Fatalf("gate passed at geomean %v despite +20%% regression", r.Geomean)
	}
}

// TestGateGeomeanAbsorbsOneNoisySample pins the normalization choice: one
// +25% outlier over three flat benchmarks stays under the +10% gate.
func TestGateGeomeanAbsorbsOneNoisySample(t *testing.T) {
	baseline := map[string]float64{"A": 1000, "B": 1000, "C": 1000, "D": 1000}
	current := map[string]float64{"A": 1250, "B": 1000, "C": 1000, "D": 1000}
	r, err := gate(baseline, current, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed {
		t.Fatalf("gate failed at geomean %v on a single outlier", r.Geomean)
	}
}

func TestGateMissingBenchmarkIsError(t *testing.T) {
	if _, err := gate(map[string]float64{"A": 1, "B": 1}, map[string]float64{"A": 1}, 0.10); err == nil {
		t.Fatal("missing benchmark did not error")
	}
}

func TestLoadBenchOutputParsesSuffixedAndBareNames(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "bench.txt", strings.Join([]string{
		"goos: linux",
		"BenchmarkComputeA-4   \t 100\t   1234 ns/op\t  10 B/op\t 2 allocs/op",
		"BenchmarkComputeB    \t  50\t   5678.5 ns/op",
		"PASS",
	}, "\n"))
	got, procs, err := loadBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkComputeA"] != 1234 {
		t.Fatalf("suffixed name: got %v", got["BenchmarkComputeA"])
	}
	if got["BenchmarkComputeB"] != 5678.5 {
		t.Fatalf("bare name: got %v", got["BenchmarkComputeB"])
	}
	if procs != 4 {
		t.Fatalf("GOMAXPROCS from suffix = %d, want 4", procs)
	}
}

// TestRunWarnsOnCPUCountMismatch pins the cross-machine guard: a baseline
// recorded at one GOMAXPROCS compared against a run at another passes or
// fails on the numbers as usual, but always says the ratios are suspect.
func TestRunWarnsOnCPUCountMismatch(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "baseline.json", `{
	  "gomaxprocs": 8,
	  "benchmarks": [{"name": "BenchmarkComputeA", "after": {"ns_per_op": 1000}}]
	}`)
	bench := writeFile(t, dir, "bench.txt", "BenchmarkComputeA-2 100 1010 ns/op\n")
	var sb strings.Builder
	if err := run([]string{"-baseline", baseline, "-bench", bench}, &sb); err != nil {
		t.Fatalf("passing run errored: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "GOMAXPROCS=8 but this run used 2") {
		t.Fatalf("no CPU-count warning in output:\n%s", sb.String())
	}

	// Same CPU count, or a baseline without the field: no warning.
	sameBench := writeFile(t, dir, "same.txt", "BenchmarkComputeA-8 100 1010 ns/op\n")
	sb.Reset()
	if err := run([]string{"-baseline", baseline, "-bench", sameBench}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "warning") {
		t.Fatalf("spurious warning at matching CPU counts:\n%s", sb.String())
	}
	legacy := writeFile(t, dir, "legacy.json", `{
	  "benchmarks": [{"name": "BenchmarkComputeA", "after": {"ns_per_op": 1000}}]
	}`)
	sb.Reset()
	if err := run([]string{"-baseline", legacy, "-bench", bench}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "warning") {
		t.Fatalf("spurious warning on a legacy baseline:\n%s", sb.String())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "baseline.json", baselineJSON)
	ok := writeFile(t, dir, "ok.txt", strings.Join([]string{
		"BenchmarkComputeA-2 100 1020 ns/op",
		"BenchmarkComputeB-2 100 2040 ns/op",
	}, "\n"))
	bad := writeFile(t, dir, "bad.txt", strings.Join([]string{
		"BenchmarkComputeA-2 100 1500 ns/op",
		"BenchmarkComputeB-2 100 3000 ns/op",
	}, "\n"))
	var sb strings.Builder
	if err := run([]string{"-baseline", baseline, "-bench", ok}, &sb); err != nil {
		t.Fatalf("passing run errored: %v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := run([]string{"-baseline", baseline, "-bench", bad}, &sb); err == nil {
		t.Fatalf("regressed run passed:\n%s", sb.String())
	}
}

const fleetBaselineJSON = `{
  "results": [
    {"nodes": 1000, "ns_per_node_round": 17.2},
    {"nodes": 10000, "ns_per_node_round": 17.8},
    {"nodes": 1000000, "ns_per_node_round": 17.5}
  ]
}`

func TestGateFleetMatchesPerSizeAndSkipsMissing(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "fleet_base.json", fleetBaselineJSON)
	// CI ladder: subset of the committed sizes (no 1M case), within noise.
	run1 := writeFile(t, dir, "fleet_ci.json", `{
	  "results": [
	    {"nodes": 1000, "ns_per_node_round": 18.0},
	    {"nodes": 10000, "ns_per_node_round": 17.0}
	  ]
	}`)
	r, err := gateFleet(baseline, run1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed {
		t.Fatalf("within-noise ladder failed: %+v", r)
	}
	if len(r.Rows) != 2 || len(r.Skipped) != 1 {
		t.Fatalf("matched %d sizes, skipped %d; want 2 and 1", len(r.Rows), len(r.Skipped))
	}
	if !strings.Contains(r.String(), "N=1000000") {
		t.Fatalf("skipped size not reported:\n%s", r.String())
	}
}

func TestGateFleetFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "fleet_base.json", fleetBaselineJSON)
	slow := writeFile(t, dir, "fleet_slow.json", `{
	  "results": [
	    {"nodes": 1000, "ns_per_node_round": 25.0},
	    {"nodes": 10000, "ns_per_node_round": 26.0},
	    {"nodes": 1000000, "ns_per_node_round": 24.0}
	  ]
	}`)
	r, err := gateFleet(baseline, slow, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Failed {
		t.Fatalf("~1.4x slowdown passed the 25%% fleet gate: %+v", r)
	}
	var sb strings.Builder
	if err := run([]string{"-fleet-baseline", baseline, "-fleet", slow}, &sb); err == nil {
		t.Fatalf("regressed fleet run passed end to end:\n%s", sb.String())
	}
}

func TestGateFleetNoOverlapIsError(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "fleet_base.json", fleetBaselineJSON)
	other := writeFile(t, dir, "fleet_other.json", `{"results": [{"nodes": 42, "ns_per_node_round": 1.0}]}`)
	if _, err := gateFleet(baseline, other, 0.25); err == nil {
		t.Fatal("disjoint ladder produced a verdict instead of an error")
	}
}

func TestRunRequiresSomethingToGate(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("run with neither -bench nor -fleet succeeded")
	}
}

func TestRunGatesComputeAndFleetTogether(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "baseline.json", baselineJSON)
	bench := writeFile(t, dir, "ok.txt", strings.Join([]string{
		"BenchmarkComputeA-2 100 1020 ns/op",
		"BenchmarkComputeB-2 100 2040 ns/op",
	}, "\n"))
	fleetBase := writeFile(t, dir, "fleet_base.json", fleetBaselineJSON)
	fleetRun := writeFile(t, dir, "fleet_ci.json", `{"results": [{"nodes": 1000, "ns_per_node_round": 17.0}]}`)
	var sb strings.Builder
	if err := run([]string{"-baseline", baseline, "-bench", bench, "-fleet-baseline", fleetBase, "-fleet", fleetRun}, &sb); err != nil {
		t.Fatalf("combined gate errored: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "compute gate") || !strings.Contains(out, "fleet gate") {
		t.Fatalf("combined run missing a section:\n%s", out)
	}
}
