// Command benchgate compares fresh benchmark runs against committed
// baselines and fails when throughput has regressed. Each baseline is
// gated on its own geometric mean of per-benchmark ratios (current ns/op
// over baseline ns/op), so one noisy benchmark cannot mask — or fake — a
// regression on its own; a gate trips when its geomean exceeds
// 1+threshold.
//
// Two baselines are understood: the compute microbenchmarks
// (BENCH_compute.json vs `go test -bench Compute` text output, gated at
// -threshold, default 10%) and the fleet round-throughput ladder
// (BENCH_fleet.json vs a fresh fleetbench JSON report, matched per fleet
// size on ns/node·round and gated at -fleet-threshold, default 25% — the
// ladder's sub-second wall times are noisier than the microbenchmarks).
//
// Usage:
//
//	go test -run '^$' -bench Compute -benchmem . | tee bench.txt
//	benchgate -baseline BENCH_compute.json -bench bench.txt [-threshold 0.10]
//	fleetbench -cases 1000:256,10000:64 -out fleet_ci.json
//	benchgate -fleet-baseline BENCH_fleet.json -fleet fleet_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the committed BENCH_compute.json schema; only the
// fields the gate needs are declared.
type baselineFile struct {
	// GOMAXPROCS records the CPU count the baseline numbers were taken at
	// (0 when the file predates the field).
	GOMAXPROCS int `json:"gomaxprocs"`
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_compute.json", "committed compute baseline JSON")
	benchPath := fs.String("bench", "", "go test -bench output to check")
	threshold := fs.Float64("threshold", 0.10, "maximum allowed compute geomean slowdown, e.g. 0.10 = +10%")
	fleetBaselinePath := fs.String("fleet-baseline", "BENCH_fleet.json", "committed fleet baseline JSON")
	fleetPath := fs.String("fleet", "", "fresh fleetbench JSON report to check")
	fleetThreshold := fs.Float64("fleet-threshold", 0.25, "maximum allowed fleet geomean slowdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" && *fleetPath == "" {
		return fmt.Errorf("nothing to gate: pass -bench (go test output) and/or -fleet (fleetbench JSON)")
	}
	var failures []string
	if *benchPath != "" {
		baseline, baseProcs, err := loadBaseline(*baselinePath)
		if err != nil {
			return err
		}
		current, runProcs, err := loadBenchOutput(*benchPath)
		if err != nil {
			return err
		}
		report, err := gate(baseline, current, *threshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "compute gate (%s):\n%s", *baselinePath, report.String())
		// ns/op shifts with the CPU count on parallel workloads, so a gate
		// verdict across differing GOMAXPROCS is advisory at best. Warn
		// rather than fail: CI boxes legitimately differ from the baseline
		// recorder.
		if baseProcs > 0 && runProcs > 0 && baseProcs != runProcs {
			fmt.Fprintf(w, "warning: baseline recorded at GOMAXPROCS=%d but this run used %d CPUs — ratios are not comparable across CPU counts\n",
				baseProcs, runProcs)
		}
		if report.Failed {
			failures = append(failures, fmt.Sprintf("compute geomean ratio %.3f exceeds %.3f", report.Geomean, 1+report.Threshold))
		}
	}
	if *fleetPath != "" {
		report, err := gateFleet(*fleetBaselinePath, *fleetPath, *fleetThreshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "fleet gate (%s):\n%s", *fleetBaselinePath, report.String())
		if report.Failed {
			failures = append(failures, fmt.Sprintf("fleet geomean ratio %.3f exceeds %.3f", report.Geomean, 1+report.Threshold))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// fleetFile mirrors the fleetbench JSON report; only the fields the gate
// needs are declared.
type fleetFile struct {
	Results []struct {
		Nodes          int     `json:"nodes"`
		NsPerNodeRound float64 `json:"ns_per_node_round"`
	} `json:"results"`
}

// loadFleet reads a fleetbench report into fleet size → ns/node·round.
func loadFleet(path string) (map[int]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read fleet report: %w", err)
	}
	var ff fleetFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("parse fleet report %s: %w", path, err)
	}
	out := make(map[int]float64, len(ff.Results))
	for _, r := range ff.Results {
		if r.NsPerNodeRound <= 0 {
			return nil, fmt.Errorf("fleet report %s: N=%d has non-positive ns_per_node_round", path, r.Nodes)
		}
		out[r.Nodes] = r.NsPerNodeRound
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet report %s: no results", path)
	}
	return out, nil
}

// gateFleet compares a fresh fleetbench ladder against the committed one,
// matched per fleet size on ns/node·round — a per-node normalization, so a
// CI ladder running fewer rounds per size still compares. Baseline sizes
// the fresh run skipped are reported by name (never silently dropped); at
// least one size must overlap.
func gateFleet(baselinePath, runPath string, threshold float64) (gateReport, error) {
	if threshold <= 0 {
		return gateReport{}, fmt.Errorf("fleet threshold %v must be positive", threshold)
	}
	baseline, err := loadFleet(baselinePath)
	if err != nil {
		return gateReport{}, err
	}
	current, err := loadFleet(runPath)
	if err != nil {
		return gateReport{}, err
	}
	sizes := make([]int, 0, len(baseline))
	for n := range baseline {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	report := gateReport{Threshold: threshold}
	logSum := 0.0
	matched := 0
	for _, n := range sizes {
		name := fmt.Sprintf("fleet N=%d ns/node·round", n)
		now, ok := current[n]
		if !ok {
			report.Skipped = append(report.Skipped, name)
			continue
		}
		ratio := now / baseline[n]
		logSum += math.Log(ratio)
		matched++
		report.Rows = append(report.Rows, gateRow{Name: name, BaselineNs: baseline[n], NowNs: now, Ratio: ratio})
	}
	if matched == 0 {
		return gateReport{}, fmt.Errorf("fleet gate: no fleet size in %s matches the baseline ladder", runPath)
	}
	report.Geomean = math.Exp(logSum / float64(matched))
	report.Failed = report.Geomean > 1+threshold
	return report, nil
}

// loadBaseline reads the committed baseline and returns name → ns/op for
// the "after" (current-code) side, plus the GOMAXPROCS the baseline was
// recorded at (0 when unrecorded).
func loadBaseline(path string) (map[string]float64, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("read baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, 0, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	out := make(map[string]float64, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		if b.After.NsPerOp <= 0 {
			return nil, 0, fmt.Errorf("baseline %s: %s has non-positive after.ns_per_op", path, b.Name)
		}
		out[b.Name] = b.After.NsPerOp
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return out, bf.GOMAXPROCS, nil
}

// benchLine matches standard `go test -bench` result lines, e.g.
// "BenchmarkComputePPOUpdate-4   100   12528542 ns/op   4651 B/op ...".
// The -N GOMAXPROCS suffix is optional: it is absent on single-CPU boxes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op`)

// loadBenchOutput parses `go test -bench` text into name → ns/op plus the
// GOMAXPROCS the run used, read off the benchmark-name suffix (0 when
// every line is bare).
func loadBenchOutput(path string) (map[string]float64, int, error) {
	if path == "" {
		return nil, 0, fmt.Errorf("-bench is required (a go test -bench output file)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("read bench output: %w", err)
	}
	defer f.Close()
	out := map[string]float64{}
	procs := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			return nil, 0, fmt.Errorf("bench output %s: bad ns/op on %q", path, sc.Text())
		}
		out[m[1]] = ns
		if procs == 0 && m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("bench output %s: no benchmark lines found", path)
	}
	return out, procs, nil
}

// gateReport is the rendered comparison plus the pass/fail verdict.
type gateReport struct {
	Rows      []gateRow
	Skipped   []string
	Geomean   float64
	Threshold float64
	Failed    bool
}

type gateRow struct {
	Name              string
	BaselineNs, NowNs float64
	Ratio             float64
}

func (r gateReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-42s %14.0f %14.0f %8.3f\n", row.Name, row.BaselineNs, row.NowNs, row.Ratio)
	}
	for _, name := range r.Skipped {
		fmt.Fprintf(&b, "%-42s (in baseline, not in this run — skipped)\n", name)
	}
	verdict := "ok"
	if r.Failed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "geomean ratio %.3f (gate at %.3f): %s\n", r.Geomean, 1+r.Threshold, verdict)
	return b.String()
}

// gate compares every baseline benchmark against the current run. A
// baseline benchmark missing from the fresh run is an error — silently
// dropping a benchmark is how regressions hide.
func gate(baseline, current map[string]float64, threshold float64) (gateReport, error) {
	if threshold <= 0 {
		return gateReport{}, fmt.Errorf("threshold %v must be positive", threshold)
	}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	report := gateReport{Threshold: threshold}
	logSum := 0.0
	for _, name := range names {
		now, ok := current[name]
		if !ok {
			return gateReport{}, fmt.Errorf("benchmark %s is in the baseline but missing from the fresh run", name)
		}
		ratio := now / baseline[name]
		logSum += math.Log(ratio)
		report.Rows = append(report.Rows, gateRow{Name: name, BaselineNs: baseline[name], NowNs: now, Ratio: ratio})
	}
	report.Geomean = math.Exp(logSum / float64(len(names)))
	report.Failed = report.Geomean > 1+threshold
	return report, nil
}
