package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chiron/internal/scenario"
	"chiron/internal/session"
)

func serverSpec(name string, seed int64) *scenario.Spec {
	return &scenario.Spec{
		Name:    name,
		Dataset: "mnist",
		Seed:    seed,
		Classes: []scenario.DeviceClass{
			{Profile: scenario.ProfileNames()[0], Count: 5},
		},
		Budgets:      []float64{60, 90},
		Mechanisms:   []string{"uniform", "equal-time"},
		EvalEpisodes: 2,
		MaxRounds:    30,
	}
}

// testClient drives the JSON API against an httptest server.
type testClient struct {
	t    *testing.T
	base string
}

// do issues one request and decodes the JSON response body.
func (c *testClient) do(method, path string, body any) (int, map[string]any, http.Header) {
	c.t.Helper()
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal %s %s body: %v", method, path, err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		c.t.Fatalf("%s %s: decode response: %v", method, path, err)
	}
	return resp.StatusCode, decoded, resp.Header
}

// must asserts the expected status code and returns the body.
func (c *testClient) must(method, path string, body any, want int) map[string]any {
	c.t.Helper()
	code, decoded, _ := c.do(method, path, body)
	if code != want {
		c.t.Fatalf("%s %s = %d (%v), want %d", method, path, code, decoded, want)
	}
	return decoded
}

// waitDone polls a session until it leaves the live states.
func (c *testClient) waitDone(id string) map[string]any {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status := c.must("GET", "/sessions/"+id, nil, http.StatusOK)
		switch status["state"] {
		case "done", "stopped", "failed":
			return status
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("session %s never finished", id)
	return nil
}

func newTestServer(t *testing.T, workers, queue int, clock session.Clock) *testClient {
	t.Helper()
	pool, err := session.NewPool(workers, queue, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(pool, clock, 30*time.Second)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		srv.StopAll()
	})
	return &testClient{t: t, base: ts.URL}
}

// TestServerSessionsMatchCLITwins is the acceptance contract end to end:
// two sessions hosted concurrently over HTTP, each with live node
// registration and one missed heartbeat, produce run digests bit-identical
// to CLI runs of the same specs with the latched churn script passed via
// the spec's churn block — including the session that pauses and resumes
// mid-run.
func TestServerSessionsMatchCLITwins(t *testing.T) {
	clock := session.NewManualClock(time.Unix(3000, 0))
	c := newTestServer(t, 2, 2, clock)

	ids := make([]string, 2)
	for i, seed := range []int64{11, 23} {
		created := c.must("POST", "/sessions", map[string]any{
			"spec":      serverSpec(fmt.Sprintf("twin-%d", i), seed),
			"workers":   1,
			"registry":  true,
			"heartbeat": "5s",
		}, http.StatusCreated)
		ids[i] = created["id"].(string)
		if created["state"] != "new" {
			t.Fatalf("created state %v, want new", created["state"])
		}
	}
	// Same membership story on both sessions: node 1 arrives at round 3 and
	// stays healthy; node 2 declares progress through round 6 and then
	// misses its heartbeat deadline.
	for _, id := range ids {
		c.must("POST", "/sessions/"+id+"/nodes", map[string]any{"node": 1, "from_round": 3}, http.StatusOK)
		c.must("POST", "/sessions/"+id+"/nodes", map[string]any{"node": 2}, http.StatusOK)
		c.must("POST", "/sessions/"+id+"/nodes/2/heartbeat", map[string]any{"through_round": 6}, http.StatusOK)
	}
	clock.Advance(3 * time.Second)
	for _, id := range ids {
		// Bare heartbeat (no body) re-arms node 1 without declaring progress.
		c.must("POST", "/sessions/"+id+"/nodes/1/heartbeat", nil, http.StatusOK)
	}
	clock.Advance(4 * time.Second) // node 2's 5s deadline passes
	for _, id := range ids {
		status := c.must("POST", "/sessions/"+id+"/start", nil, http.StatusOK)
		if got := status["churn"]; got != "+1@3,-2@6" {
			t.Fatalf("latched churn %v, want +1@3,-2@6", got)
		}
	}
	// Exercise the wall-clock lifecycle on the first session when the race
	// allows: a tiny grid may already be done, in which case pause is a
	// clean 409. When the pause lands it must hold visibly and resume —
	// and either way the digest below is unaffected (the deterministic
	// pause/resume coverage lives in the session and propcheck tests).
	if code, body, _ := c.do("POST", "/sessions/"+ids[0]+"/pause", nil); code == http.StatusOK {
		if status := c.must("GET", "/sessions/"+ids[0], nil, http.StatusOK); status["state"] != "paused" {
			t.Fatalf("paused session reports %v", status["state"])
		}
		c.must("POST", "/sessions/"+ids[0]+"/resume", nil, http.StatusOK)
	} else if code != http.StatusConflict {
		t.Fatalf("pause = %d (%v), want 200 or 409", code, body)
	}

	for i, seed := range []int64{11, 23} {
		status := c.waitDone(ids[i])
		if status["state"] != "done" {
			t.Fatalf("session %s finished %v (%v)", ids[i], status["state"], status["error"])
		}
		res := c.must("GET", "/sessions/"+ids[i]+"/result", nil, http.StatusOK)

		twin := serverSpec(fmt.Sprintf("twin-%d", i), seed)
		twin.Churn = &scenario.ChurnSpec{Script: "+1@3,-2@6"}
		want, err := scenario.Run(twin, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res["digest"] != want.Digest() {
			t.Fatalf("session %s digest %v != CLI twin %s", ids[i], res["digest"], want.Digest())
		}
		if status["digest"] != want.Digest() {
			t.Fatalf("status digest %v != CLI twin %s", status["digest"], want.Digest())
		}

		// The episodes stream is cursorable and consistent with the cell
		// count: 2 budgets × 2 mechanisms, one eval event each.
		page := c.must("GET", "/sessions/"+ids[i]+"/episodes?since=0", nil, http.StatusOK)
		events := page["events"].([]any)
		if len(events) != 4 {
			t.Fatalf("session %s streamed %d events, want 4", ids[i], len(events))
		}
		next := int(page["next"].(float64))
		rest := c.must("GET", fmt.Sprintf("/sessions/%s/episodes?since=%d", ids[i], next), nil, http.StatusOK)
		if got := rest["events"]; got != nil {
			t.Fatalf("cursor past the end returned %v", got)
		}
	}
}

// TestServerBackpressure pins admission control: the backlog holds
// workers+queue sessions, the next create is a 429 with a Retry-After
// hint, and stopping a held session frees its slot.
func TestServerBackpressure(t *testing.T) {
	c := newTestServer(t, 1, 1, nil)
	spec := func(i int) map[string]any {
		return map[string]any{"spec": serverSpec(fmt.Sprintf("bp-%d", i), int64(i+1))}
	}
	a := c.must("POST", "/sessions", spec(0), http.StatusCreated)["id"].(string)
	c.must("POST", "/sessions", spec(1), http.StatusCreated)
	code, body, header := c.do("POST", "/sessions", spec(2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third create = %d (%v), want 429", code, body)
	}
	if header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", header.Get("Retry-After"))
	}
	c.must("POST", "/sessions/"+a+"/stop", nil, http.StatusOK)
	c.waitDone(a)
	c.must("POST", "/sessions", spec(3), http.StatusCreated)

	listed := c.must("GET", "/sessions", nil, http.StatusOK)["sessions"].([]any)
	if len(listed) != 3 {
		t.Fatalf("listing has %d sessions, want 3", len(listed))
	}
}

// TestServerRequestErrors pins the API's error surface: unknown ids are
// 404s, premature results and node traffic without a registry are 409s,
// and malformed registrations are 400s.
func TestServerRequestErrors(t *testing.T) {
	c := newTestServer(t, 1, 2, nil)
	c.must("GET", "/healthz", nil, http.StatusOK)
	c.must("GET", "/sessions/nope", nil, http.StatusNotFound)
	c.must("POST", "/sessions/nope/start", nil, http.StatusNotFound)
	c.must("POST", "/sessions", map[string]any{}, http.StatusBadRequest)
	c.must("POST", "/sessions", map[string]any{
		"spec": serverSpec("bad-hb", 1), "registry": true, "heartbeat": "soon",
	}, http.StatusBadRequest)

	id := c.must("POST", "/sessions", map[string]any{
		"spec": serverSpec("plain", 5),
	}, http.StatusCreated)["id"].(string)
	c.must("GET", "/sessions/"+id+"/result", nil, http.StatusConflict)
	c.must("POST", "/sessions/"+id+"/nodes", map[string]any{"node": 1}, http.StatusConflict)
	c.must("POST", "/sessions/"+id+"/resume", nil, http.StatusConflict)

	rid := c.must("POST", "/sessions", map[string]any{
		"spec": serverSpec("reg", 6), "registry": true,
	}, http.StatusCreated)["id"].(string)
	c.must("POST", "/sessions/"+rid+"/nodes", map[string]any{"node": 99}, http.StatusBadRequest)
	c.must("POST", "/sessions/"+rid+"/nodes/1/heartbeat", nil, http.StatusBadRequest) // unregistered
	c.must("DELETE", "/sessions/"+rid+"/nodes/abc", nil, http.StatusBadRequest)

	c.must("POST", "/sessions/"+id+"/start", nil, http.StatusOK)
	code, _, _ := c.do("POST", "/sessions/"+id+"/start", nil)
	if code != http.StatusConflict {
		t.Fatalf("double start = %d, want 409", code)
	}
	status := c.waitDone(id)
	if status["state"] != "done" {
		t.Fatalf("plain session finished %v", status["state"])
	}
}
