// Command chirond is the long-lived incentive server: it hosts scenario
// runs as sessions behind an HTTP/JSON API, with live edge-node
// registration and heartbeats during each session's hold phase, lifecycle
// control (start/pause/resume/stop), and streamed per-episode metrics.
//
// The serving layer never touches simulation state: wall-clock concerns
// (heartbeat deadlines, queue waits, shutdown) only decide when episodes
// run, so a hosted session's run digest is bit-identical to a CLI
// `chiron run -scenario` of the same spec and seed — live membership is
// latched at start into the same churn script the CLI accepts via -churn.
//
// Usage:
//
//	chirond [-addr :8377] [-workers N] [-queue N] [-retry-after 2s]
//	        [-heartbeat 30s]
//
// API:
//
//	GET    /healthz
//	POST   /sessions                      {"spec": {...}, "workers": N, "registry": true, "heartbeat": "5s"}
//	GET    /sessions
//	GET    /sessions/{id}
//	GET    /sessions/{id}/result
//	GET    /sessions/{id}/episodes?since=N
//	POST   /sessions/{id}/start|pause|resume|stop
//	POST   /sessions/{id}/nodes           {"node": 2, "from_round": 3}
//	POST   /sessions/{id}/nodes/{node}/heartbeat   {"through_round": 6}
//	DELETE /sessions/{id}/nodes/{node}?round=K
//
// A full backlog answers POST /sessions with 429 and a Retry-After header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chiron/internal/session"
)

func main() {
	if err := serve(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "chirond: %v\n", err)
		os.Exit(1)
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("chirond", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	workers := fs.Int("workers", 2, "sessions running episodes concurrently")
	queue := fs.Int("queue", 8, "additional sessions admitted beyond the running ones")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After hint served with 429 when the backlog is full")
	heartbeat := fs.Duration("heartbeat", 30*time.Second, "default registry heartbeat timeout for sessions created with \"registry\": true")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool, err := session.NewPool(*workers, *queue, *retryAfter)
	if err != nil {
		return err
	}
	srv := newServer(pool, nil, *heartbeat)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	// SIGINT/SIGTERM drains the listener, then stops every hosted session
	// at its next episode boundary and waits for the terminal states.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "chirond: shutting down")
		drain, done := context.WithTimeout(context.Background(), 10*time.Second)
		defer done()
		if err := httpSrv.Shutdown(drain); err != nil {
			fmt.Fprintf(os.Stderr, "chirond: drain: %v\n", err)
		}
	}()

	fmt.Printf("chirond listening on %s (workers=%d, queue=%d)\n", *addr, *workers, *queue)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.StopAll()
	fmt.Println("chirond: all sessions stopped")
	return nil
}
