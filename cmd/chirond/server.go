package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"chiron/internal/scenario"
	"chiron/internal/session"
)

// Server hosts sessions over HTTP/JSON. One Server owns one admission
// pool: POST /sessions reserves a backlog slot immediately (429 with
// Retry-After when full), and a started session waits for one of the
// pool's worker slots before episodes run.
type Server struct {
	pool      *session.Pool
	clock     session.Clock // nil = real time; tests inject a manual clock
	heartbeat time.Duration // default registry timeout for "registry": true

	mu       sync.Mutex
	sessions map[string]*session.Session
	order    []string // creation order, for stable listings
	nextID   int
}

func newServer(pool *session.Pool, clock session.Clock, heartbeat time.Duration) *Server {
	return &Server{
		pool:      pool,
		clock:     clock,
		heartbeat: heartbeat,
		sessions:  make(map[string]*session.Session),
	}
}

// routes builds the method+pattern mux for the session API.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions/{id}", s.handleStatus)
	mux.HandleFunc("GET /sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /sessions/{id}/episodes", s.handleEpisodes)
	mux.HandleFunc("POST /sessions/{id}/start", s.handleLifecycle("start"))
	mux.HandleFunc("POST /sessions/{id}/pause", s.handleLifecycle("pause"))
	mux.HandleFunc("POST /sessions/{id}/resume", s.handleLifecycle("resume"))
	mux.HandleFunc("POST /sessions/{id}/stop", s.handleLifecycle("stop"))
	mux.HandleFunc("POST /sessions/{id}/nodes", s.handleRegister)
	mux.HandleFunc("POST /sessions/{id}/nodes/{node}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("DELETE /sessions/{id}/nodes/{node}", s.handleDeregister)
	return mux
}

// createRequest is the POST /sessions body: a scenario spec plus hosting
// knobs. Registry arms live-node registration with the server's default
// heartbeat timeout; Heartbeat overrides it per session ("5s" form).
type createRequest struct {
	Spec      *scenario.Spec `json:"spec"`
	Workers   int            `json:"workers,omitempty"`
	Registry  bool           `json:"registry,omitempty"`
	Heartbeat string         `json:"heartbeat,omitempty"`
}

// sessionView is a Status tagged with the session's server-assigned id.
type sessionView struct {
	ID string `json:"id"`
	session.Status
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Spec == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("a scenario spec is required"))
		return
	}
	timeout := time.Duration(0)
	if req.Registry || req.Heartbeat != "" {
		timeout = s.heartbeat
		if req.Heartbeat != "" {
			d, err := time.ParseDuration(req.Heartbeat)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("heartbeat: %w", err))
				return
			}
			timeout = d
		}
	}
	sess, err := session.New(session.Config{
		Spec:             req.Spec,
		Workers:          req.Workers,
		Pool:             s.pool,
		Clock:            s.clock,
		HeartbeatTimeout: timeout,
	})
	switch {
	case errors.Is(err, session.ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.pool.RetryAfter().Seconds())))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionView{ID: id, Status: sess.Snapshot()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]sessionView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, sessionView{ID: id, Status: s.sessions[id].Snapshot()})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

// lookup resolves {id}; a miss writes the 404 and returns nil.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (string, *session.Session) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return id, nil
	}
	return id, sess
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, sessionView{ID: id, Status: sess.Snapshot()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	_, sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"digest": res.Digest(),
		"result": res,
	})
}

func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	_, sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("since: %w", err))
			return
		}
		since = n
	}
	events := sess.Episodes(since)
	next := since
	if len(events) > 0 {
		next = events[len(events)-1].Seq
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"state":  sess.State().String(),
		"events": events,
		"next":   next,
	})
}

// handleLifecycle maps the four verb endpoints onto session transitions.
// Illegal transitions are 409s: the request was well-formed, the session's
// state refused it.
func (s *Server) handleLifecycle(verb string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, sess := s.lookup(w, r)
		if sess == nil {
			return
		}
		var err error
		switch verb {
		case "start":
			err = sess.Start()
		case "pause":
			err = sess.Pause()
		case "resume":
			err = sess.Resume()
		case "stop":
			sess.Stop()
		}
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, sessionView{ID: id, Status: sess.Snapshot()})
	}
}

// registry resolves {id}'s live-node registry; sessions created without
// one refuse node traffic with a 409.
func (s *Server) registry(w http.ResponseWriter, r *http.Request) (string, *session.Session, *session.Registry) {
	id, sess := s.lookup(w, r)
	if sess == nil {
		return id, nil, nil
	}
	reg := sess.Registry()
	if reg == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("session %s has no live-node registry (create it with \"registry\": true)", id))
		return id, sess, nil
	}
	return id, sess, reg
}

// nodeID parses the {node} path component.
func nodeID(w http.ResponseWriter, r *http.Request) (int, bool) {
	n, err := strconv.Atoi(r.PathValue("node"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("node: %w", err))
		return 0, false
	}
	return n, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	id, sess, reg := s.registry(w, r)
	if reg == nil {
		return
	}
	var req struct {
		Node      int `json:"node"`
		FromRound int `json:"from_round,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := reg.Register(req.Node, req.FromRound); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionView{ID: id, Status: sess.Snapshot()})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, sess, reg := s.registry(w, r)
	if reg == nil {
		return
	}
	node, ok := nodeID(w, r)
	if !ok {
		return
	}
	var req struct {
		ThroughRound int `json:"through_round,omitempty"`
	}
	// A bare heartbeat (empty body) re-arms the deadline without raising
	// the node's declared progress.
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := reg.Heartbeat(node, req.ThroughRound); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionView{ID: id, Status: sess.Snapshot()})
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id, sess, reg := s.registry(w, r)
	if reg == nil {
		return
	}
	node, ok := nodeID(w, r)
	if !ok {
		return
	}
	round := 0
	if q := r.URL.Query().Get("round"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("round: %w", err))
			return
		}
		round = n
	}
	if err := reg.Deregister(node, round); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionView{ID: id, Status: sess.Snapshot()})
}

// StopAll stops every hosted session and waits for each to reach a
// terminal state — the server's graceful-shutdown tail after the HTTP
// listener has drained.
func (s *Server) StopAll() {
	s.mu.Lock()
	sessions := make([]*session.Session, 0, len(s.order))
	for _, id := range s.order {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Stop()
	}
	for _, sess := range sessions {
		sess.Wait()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
