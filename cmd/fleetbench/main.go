// Command fleetbench measures struct-of-arrays round throughput across a
// ladder of fleet sizes (default 1k → 1M nodes) by driving full
// compact-mode rounds through the environment, and writes rounds/sec,
// ns/node·round, and bytes/node per size as JSON. With -verify it runs
// every case at two worker counts and requires bit-identical round
// digests — the determinism contract of the sharded batch kernels.
//
// Usage:
//
//	fleetbench [-cases 1000:512,10000:128,...] [-seed N] [-workers N]
//	           [-verify] [-verify-workers N] [-out BENCH_fleet.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"chiron/internal/experiment"
)

type report struct {
	Description string                        `json:"description"`
	CPUs        int                           `json:"cpus"`
	GOMAXPROCS  int                           `json:"gomaxprocs"`
	GOOS        string                        `json:"goos"`
	GOARCH      string                        `json:"goarch"`
	Seed        int64                         `json:"seed"`
	Workers     int                           `json:"workers"`
	Determinism *determinism                  `json:"determinism,omitempty"`
	Results     []experiment.FleetBenchResult `json:"results"`
}

type determinism struct {
	Verified        bool  `json:"verified"`
	WorkersCompared []int `json:"workers_compared"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetbench", flag.ContinueOnError)
	cases := fs.String("cases", "", "comma-separated nodes:rounds ladder (default 1000:512,10000:128,100000:32,1000000:8)")
	seed := fs.Int64("seed", 7, "fleet-generation seed")
	workers := fs.Int("workers", 0, "compute worker bound for the timed run (0 = GOMAXPROCS)")
	verify := fs.Bool("verify", false, "re-run every case at -verify-workers and require identical digests")
	verifyWorkers := fs.Int("verify-workers", 4, "second worker count for the -verify determinism comparison")
	out := fs.String("out", "BENCH_fleet.json", "output path for the JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiment.FleetBenchParams{Seed: *seed, Workers: *workers}
	if *cases != "" {
		parsed, err := parseCases(*cases)
		if err != nil {
			return err
		}
		params.Cases = parsed
	}

	fmt.Printf("fleet bench: %d CPUs, GOMAXPROCS %d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	results, err := experiment.RunFleetBench(params)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("N=%-9d %5d rounds  %8.1f rounds/s  %7.1f ns/node·round  %6.0f B/node  digest %s\n",
			r.Nodes, r.Rounds, r.RoundsPerSec, r.NsPerNodeRound, r.BytesPerNode, r.Digest)
	}

	rep := report{
		Description: "Struct-of-arrays fleet round throughput: full compact-mode rounds (Offer→Respond→Execute→Settle→Commit) at 80% saturation prices, all nodes joining. bytes_per_node is steady-state heap (fleet columns + reusable round scratch).",
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Seed:        *seed,
		Workers:     *workers,
		Results:     results,
	}

	if *verify {
		first := params.Workers
		if first == 0 {
			first = 1
		}
		second := *verifyWorkers
		vparams := params
		vparams.Workers = second
		vresults, err := experiment.RunFleetBench(vparams)
		if err != nil {
			return fmt.Errorf("verify pass (workers=%d): %w", second, err)
		}
		for i := range results {
			if results[i].Digest != vresults[i].Digest {
				return fmt.Errorf("determinism violation at N=%d: workers=%d digest %s != workers=%d digest %s",
					results[i].Nodes, first, results[i].Digest, second, vresults[i].Digest)
			}
		}
		fmt.Printf("determinism verified: digests identical at workers=%d and workers=%d\n", first, second)
		rep.Determinism = &determinism{Verified: true, WorkersCompared: []int{first, second}}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	fmt.Printf("report written to %s\n", *out)
	return nil
}

// parseCases parses "1000:512,10000:128" into a case ladder.
func parseCases(s string) ([]experiment.FleetBenchCase, error) {
	var cases []experiment.FleetBenchCase
	for _, tok := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(tok), ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("case %q: want nodes:rounds", tok)
		}
		nodes, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("case %q: %w", tok, err)
		}
		rounds, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("case %q: %w", tok, err)
		}
		cases = append(cases, experiment.FleetBenchCase{Nodes: nodes, Rounds: rounds})
	}
	return cases, nil
}
