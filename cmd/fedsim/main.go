// Command fedsim runs plain federated averaging (no incentive mechanism)
// over the repository's pure-Go training substrate: synthetic datasets,
// IID or non-IID partitioning, per-round client sampling, and optional
// server-side momentum (FedAvgM). It is the standalone harness for the
// learning half of the reproduction.
//
// Usage:
//
//	fedsim [-dataset mnist|fashion|cifar] [-nodes N] [-rounds R]
//	       [-partition iid|dirichlet|shards] [-alpha A] [-frac C]
//	       [-server-momentum B] [-samples S] [-hidden H] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"chiron/internal/dataset"
	"chiron/internal/fl"
	"chiron/internal/nn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
}

// aggregator is the common surface of the plain and momentum servers.
type aggregator interface {
	Global() []float64
	Aggregate(updates []fl.Update) error
	Evaluate() (float64, error)
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedsim", flag.ContinueOnError)
	datasetName := fs.String("dataset", "mnist", "synthetic task: mnist, fashion, or cifar")
	nodes := fs.Int("nodes", 10, "number of clients")
	rounds := fs.Int("rounds", 30, "federated rounds")
	partition := fs.String("partition", "iid", "data split: iid, dirichlet, or shards")
	alpha := fs.Float64("alpha", 0.5, "Dirichlet concentration (partition=dirichlet)")
	frac := fs.Float64("frac", 1.0, "fraction of clients sampled per round (FedAvg's C)")
	serverMomentum := fs.Float64("server-momentum", 0, "FedAvgM server momentum β (0 = plain FedAvg)")
	samples := fs.Int("samples", 3000, "total training samples to generate")
	hidden := fs.Int("hidden", 32, "MLP hidden width")
	seed := fs.Int64("seed", 1, "random seed")
	logEvery := fs.Int("log-every", 5, "print accuracy every this many rounds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rounds <= 0 || *nodes <= 0 {
		return fmt.Errorf("rounds and nodes must be positive")
	}
	if *frac <= 0 || *frac > 1 {
		return fmt.Errorf("frac %v outside (0,1]", *frac)
	}

	spec, err := parseSpec(*datasetName, *samples)
	if err != nil {
		return err
	}
	part, err := parsePartitioner(*partition, *alpha)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	full, err := dataset.Generate(rng, spec)
	if err != nil {
		return err
	}
	train, test, err := full.Split(rng, 0.2)
	if err != nil {
		return err
	}
	parts, err := part.Partition(rng, train, *nodes)
	if err != nil {
		return err
	}

	factory := func(r *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(r, spec.Dim(), *hidden, spec.Classes)
	}
	baseServer, err := fl.NewServer(test, factory, rng)
	if err != nil {
		return err
	}
	var srv aggregator = baseServer
	if *serverMomentum > 0 {
		srv, err = fl.NewMomentumServer(baseServer, *serverMomentum)
		if err != nil {
			return err
		}
	}

	clients := make([]*fl.Client, *nodes)
	for i, idx := range parts {
		local, err := train.Subset(idx)
		if err != nil {
			return err
		}
		clients[i], err = fl.NewClient(i, local, factory, fl.DefaultConfig(), rand.New(rand.NewSource(*seed+int64(i)+1)))
		if err != nil {
			return err
		}
	}

	perRound := int(float64(*nodes) * *frac)
	if perRound < 1 {
		perRound = 1
	}
	acc, err := srv.Evaluate()
	if err != nil {
		return err
	}
	fmt.Printf("fedsim: %s, %d clients (%s split), %d sampled/round, σ=%d epochs, server momentum %.2f\n",
		spec.Name, *nodes, *partition, perRound, fl.DefaultConfig().Epochs, *serverMomentum)
	fmt.Printf("round   0: accuracy %.3f (untrained)\n", acc)

	for round := 1; round <= *rounds; round++ {
		selected, err := fl.SampleClients(rng, *nodes, perRound)
		if err != nil {
			return err
		}
		global := srv.Global()
		updates := make([]fl.Update, 0, len(selected))
		for _, id := range selected {
			params, _, err := clients[id].TrainRound(global)
			if err != nil {
				return err
			}
			updates = append(updates, fl.Update{Params: params, Samples: clients[id].NumSamples()})
		}
		if err := srv.Aggregate(updates); err != nil {
			return err
		}
		if acc, err = srv.Evaluate(); err != nil {
			return err
		}
		if *logEvery > 0 && (round%*logEvery == 0 || round == *rounds) {
			fmt.Printf("round %3d: accuracy %.3f\n", round, acc)
		}
	}
	fmt.Printf("final accuracy after %d rounds: %.3f\n", *rounds, acc)
	return nil
}

func parseSpec(name string, samples int) (dataset.SynthSpec, error) {
	switch strings.ToLower(name) {
	case "mnist":
		spec := dataset.SynthMNIST(samples)
		spec.Noise = 0.9 // learnable-but-gradual; see DESIGN.md
		spec.Overlap = 0.2
		spec.Jitter = 2
		return spec, nil
	case "fashion", "fashion-mnist", "fmnist":
		spec := dataset.SynthFashion(samples)
		spec.Noise = 1.2
		spec.Overlap = 0.35
		return spec, nil
	case "cifar", "cifar10", "cifar-10":
		spec := dataset.SynthCIFAR(samples)
		spec.Noise = 1.5
		spec.Overlap = 0.55
		return spec, nil
	default:
		return dataset.SynthSpec{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func parsePartitioner(name string, alpha float64) (dataset.Partitioner, error) {
	switch strings.ToLower(name) {
	case "iid":
		return dataset.IID{}, nil
	case "dirichlet":
		return dataset.Dirichlet{Alpha: alpha}, nil
	case "shards":
		return dataset.Shards{ShardsPerNode: 2}, nil
	default:
		return nil, fmt.Errorf("unknown partition %q (want iid, dirichlet, or shards)", name)
	}
}
