// Command fedsim runs plain federated averaging (no incentive mechanism)
// over the repository's pure-Go training substrate: synthetic datasets,
// IID or non-IID partitioning, per-round client sampling, and optional
// server-side momentum (FedAvgM). It is the standalone harness for the
// learning half of the reproduction.
//
// Usage:
//
//	fedsim [-dataset mnist|fashion|cifar] [-nodes N] [-rounds R]
//	       [-partition iid|dirichlet|shards] [-alpha A] [-frac C]
//	       [-server-momentum B] [-samples S] [-hidden H] [-seed S]
//	       [-crash-rate P] [-corrupt-rate P] [-drop-rate P]
//	       [-max-retries R] [-min-quorum Q] [-max-delta-norm D]
//	       [-depart-rate P] [-arrive-rate P] [-churn SCRIPT]
//	       [-fault-seed S] [-workers W]
//
// The fault flags drive the failure-hardened round pipeline: clients crash
// before training (crash-rate), upload damaged parameter vectors
// (corrupt-rate, screened out by sanitization), or lose uploads on an
// unreliable channel retried up to max-retries times (drop-rate). Rounds
// where fewer than min-quorum sanitized updates survive leave the global
// model untouched instead of aborting the run.
//
// The churn flags add fleet membership on top: clients leave and rejoin
// the pool either by seed-deterministic Markov rates (-depart-rate /
// -arrive-rate) or by an explicit scripted plan (-churn "-3@5,+3@9" departs
// client 3 at round 5 and returns it at round 9). A client outside the
// pool is skipped even when sampled; a client departing mid-round vanishes
// before its upload lands, exactly like a crash. All churn flags default
// off, so existing seeds reproduce their golden digests bit-for-bit.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"chiron/internal/dataset"
	"chiron/internal/faults"
	"chiron/internal/fl"
	"chiron/internal/mat"
	"chiron/internal/nn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
}

// hashFloats folds the exact bit patterns of vals into h. Feeding bits
// rather than formatted text makes the run digest sensitive to a single
// ULP of drift anywhere in the hashed stream — printed accuracies round to
// three decimals, so they alone could never catch it.
func hashFloats(h hash.Hash64, vals ...float64) {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
}

// aggregator is the common surface of the plain and momentum servers.
type aggregator interface {
	Global() []float64
	Aggregate(updates []fl.Update) error
	AggregateRobust(updates []fl.Update, cfg fl.RobustConfig) ([]fl.Rejection, error)
	Evaluate() (float64, error)
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fedsim", flag.ContinueOnError)
	datasetName := fs.String("dataset", "mnist", "synthetic task: mnist, fashion, or cifar")
	nodes := fs.Int("nodes", 10, "number of clients")
	rounds := fs.Int("rounds", 30, "federated rounds")
	partition := fs.String("partition", "iid", "data split: iid, dirichlet, or shards")
	alpha := fs.Float64("alpha", 0.5, "Dirichlet concentration (partition=dirichlet)")
	frac := fs.Float64("frac", 1.0, "fraction of clients sampled per round (FedAvg's C)")
	serverMomentum := fs.Float64("server-momentum", 0, "FedAvgM server momentum β (0 = plain FedAvg)")
	samples := fs.Int("samples", 3000, "total training samples to generate")
	hidden := fs.Int("hidden", 32, "MLP hidden width")
	seed := fs.Int64("seed", 1, "random seed")
	logEvery := fs.Int("log-every", 5, "print accuracy every this many rounds")
	crashRate := fs.Float64("crash-rate", 0, "per-round probability a selected client crashes before training")
	corruptRate := fs.Float64("corrupt-rate", 0, "per-round probability a client uploads a corrupted parameter vector")
	dropRate := fs.Float64("drop-rate", 0, "per-attempt probability a client upload is lost in transit")
	maxRetries := fs.Int("max-retries", 2, "re-upload attempts before a dropped client is abandoned for the round")
	minQuorum := fs.Int("min-quorum", 1, "minimum sanitized updates required to advance the global model")
	maxDeltaNorm := fs.Float64("max-delta-norm", 1e6, "reject updates farther than this L2 distance from the global model (0 disables)")
	departRate := fs.Float64("depart-rate", 0, "per-round probability a pool member departs the fleet")
	arriveRate := fs.Float64("arrive-rate", 0, "per-round probability a departed client rejoins the fleet")
	churnSpec := fs.String("churn", "", "scripted churn plan, e.g. \"-3@5,+3@9\" (overrides the churn rates)")
	faultSeed := fs.Int64("fault-seed", 0, "seed of the fault schedule (0 = derive from -seed)")
	workers := fs.Int("workers", 0, "matrix-kernel worker count (0 = GOMAXPROCS); results are identical at any setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("workers %d must be >= 0 (0 = GOMAXPROCS)", *workers)
	}
	mat.SetWorkers(*workers)
	if *rounds <= 0 || *nodes <= 0 {
		return fmt.Errorf("rounds and nodes must be positive")
	}
	if *frac <= 0 || *frac > 1 {
		return fmt.Errorf("frac %v outside (0,1]", *frac)
	}

	spec, err := parseSpec(*datasetName, *samples)
	if err != nil {
		return err
	}
	part, err := parsePartitioner(*partition, *alpha)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	full, err := dataset.Generate(rng, spec)
	if err != nil {
		return err
	}
	train, test, err := full.Split(rng, 0.2)
	if err != nil {
		return err
	}
	parts, err := part.Partition(rng, train, *nodes)
	if err != nil {
		return err
	}

	factory := func(r *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(r, spec.Dim(), *hidden, spec.Classes)
	}
	baseServer, err := fl.NewServer(test, factory, rng)
	if err != nil {
		return err
	}
	var srv aggregator = baseServer
	if *serverMomentum > 0 {
		srv, err = fl.NewMomentumServer(baseServer, *serverMomentum)
		if err != nil {
			return err
		}
	}

	clients := make([]*fl.Client, *nodes)
	for i, idx := range parts {
		local, err := train.Subset(idx)
		if err != nil {
			return err
		}
		clients[i], err = fl.NewClient(i, local, factory, fl.DefaultConfig(), rand.New(rand.NewSource(*seed+int64(i)+1)))
		if err != nil {
			return err
		}
	}

	perRound := int(float64(*nodes) * *frac)
	if perRound < 1 {
		perRound = 1
	}

	// Fault harness: crashes and corruptions come from a seed-deterministic
	// sampled schedule, dropped uploads from the retry-bounded uplink.
	fseed := *faultSeed
	if fseed == 0 {
		fseed = *seed + 9001
	}
	var sched faults.Schedule
	if *crashRate > 0 || *corruptRate > 0 {
		sampler, err := faults.NewSampler(faults.Rates{Crash: *crashRate, Corrupt: *corruptRate}, fseed)
		if err != nil {
			return err
		}
		sched = sampler
	}
	uplink, err := fl.NewUplink(*dropRate, *maxRetries, rand.New(rand.NewSource(fseed+1)))
	if err != nil {
		return err
	}
	corruptRng := rand.New(rand.NewSource(fseed + 2))
	var churn faults.ChurnSchedule
	switch {
	case *churnSpec != "":
		script, err := faults.ParseChurnScript(*churnSpec)
		if err != nil {
			return err
		}
		if err := script.Validate(*nodes); err != nil {
			return err
		}
		churn = script
	case *departRate != 0 || *arriveRate != 0:
		sampler, err := faults.NewChurnSampler(faults.ChurnRates{Depart: *departRate, Arrive: *arriveRate}, fseed+3)
		if err != nil {
			return err
		}
		churn = sampler
	}
	robust := fl.RobustConfig{MinQuorum: *minQuorum, MaxDeltaNorm: *maxDeltaNorm}
	if err := robust.Validate(); err != nil {
		return err
	}

	acc, err := srv.Evaluate()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fedsim: %s, %d clients (%s split), %d sampled/round, σ=%d epochs, server momentum %.2f\n",
		spec.Name, *nodes, *partition, perRound, fl.DefaultConfig().Epochs, *serverMomentum)
	if sched != nil || *dropRate > 0 {
		fmt.Fprintf(w, "faults: crash %.0f%%, corrupt %.0f%%, drop %.0f%% (≤%d retries), quorum %d\n",
			100**crashRate, 100**corruptRate, 100**dropRate, *maxRetries, *minQuorum)
	}
	if churn != nil {
		if *churnSpec != "" {
			fmt.Fprintf(w, "churn: scripted %q\n", *churnSpec)
		} else {
			fmt.Fprintf(w, "churn: depart %.0f%%, arrive %.0f%% per round\n", 100**departRate, 100**arriveRate)
		}
	}
	fmt.Fprintf(w, "round   0: accuracy %.3f (untrained)\n", acc)

	// The digest pins the run bit-exactly: every evaluated accuracy and the
	// final global parameter vector enter as raw float bits, so golden
	// traces catch numeric drift the rounded log lines would hide.
	digest := fnv.New64a()
	hashFloats(digest, acc)

	var crashed, dropped, rejected, skipped, absent, departed int
	var global []float64
	updates := make([]fl.Update, 0, perRound)
	for round := 1; round <= *rounds; round++ {
		selected, err := fl.SampleClients(rng, *nodes, perRound)
		if err != nil {
			return err
		}
		// Both server flavors share the base server's parameter vector, so
		// the recycled download buffer works for either.
		global = baseServer.GlobalInto(global)
		updates = updates[:0]
		for _, id := range selected {
			if churn != nil {
				present, departs := churn.Membership(round, id)
				if !present {
					// Outside the fleet: the sample is wasted, nothing runs.
					absent++
					continue
				}
				if departs {
					// Leaves mid-round: selected and trained, but gone
					// before the upload lands — the server gets nothing.
					departed++
					continue
				}
			}
			var fault faults.Fault
			if sched != nil {
				fault, _ = sched.At(round, id)
			}
			if fault.Kind == faults.Crash {
				crashed++
				continue
			}
			params, _, err := clients[id].TrainRound(global)
			if err != nil {
				return err
			}
			if fault.Kind == faults.Corrupt {
				faults.CorruptParams(params, fault.Mode, corruptRng)
			}
			if _, ok := uplink.Send(); !ok {
				dropped++
				continue
			}
			updates = append(updates, fl.Update{Client: id, Params: params, Samples: clients[id].NumSamples()})
		}
		rej, err := srv.AggregateRobust(updates, robust)
		rejected += len(rej)
		if errors.Is(err, fl.ErrQuorum) {
			// Not enough survivors to trust the average: hold the global
			// model for a round instead of aborting the run.
			skipped++
			continue
		} else if err != nil {
			return err
		}
		if acc, err = srv.Evaluate(); err != nil {
			return err
		}
		hashFloats(digest, acc)
		if *logEvery > 0 && (round%*logEvery == 0 || round == *rounds) {
			fmt.Fprintf(w, "round %3d: accuracy %.3f\n", round, acc)
		}
	}
	fmt.Fprintf(w, "final accuracy after %d rounds: %.3f\n", *rounds, acc)
	if crashed+dropped+rejected+skipped+absent+departed > 0 {
		fmt.Fprintf(w, "failure summary: %d crashed, %d uploads dropped after retries, %d updates rejected, %d rounds skipped (quorum)",
			crashed, dropped, rejected, skipped)
		// Churn counters print only when a churn schedule is active, so the
		// legacy summary (and the golden traces pinning it) is unchanged.
		if churn != nil {
			fmt.Fprintf(w, ", %d churn-absent, %d departed mid-round", absent, departed)
		}
		fmt.Fprintln(w)
	}
	final := baseServer.Global()
	hashFloats(digest, final...)
	fmt.Fprintf(w, "digest %016x over %d accuracies and %d parameters (final accuracy %s)\n",
		digest.Sum64(), *rounds-skipped+1, len(final),
		strconv.FormatFloat(acc, 'g', -1, 64))
	return nil
}

func parseSpec(name string, samples int) (dataset.SynthSpec, error) {
	switch strings.ToLower(name) {
	case "mnist":
		spec := dataset.SynthMNIST(samples)
		spec.Noise = 0.9 // learnable-but-gradual; see DESIGN.md
		spec.Overlap = 0.2
		spec.Jitter = 2
		return spec, nil
	case "fashion", "fashion-mnist", "fmnist":
		spec := dataset.SynthFashion(samples)
		spec.Noise = 1.2
		spec.Overlap = 0.35
		return spec, nil
	case "cifar", "cifar10", "cifar-10":
		spec := dataset.SynthCIFAR(samples)
		spec.Noise = 1.5
		spec.Overlap = 0.55
		return spec, nil
	default:
		return dataset.SynthSpec{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func parsePartitioner(name string, alpha float64) (dataset.Partitioner, error) {
	switch strings.ToLower(name) {
	case "iid":
		return dataset.IID{}, nil
	case "dirichlet":
		return dataset.Dirichlet{Alpha: alpha}, nil
	case "shards":
		return dataset.Shards{ShardsPerNode: 2}, nil
	default:
		return nil, fmt.Errorf("unknown partition %q (want iid, dirichlet, or shards)", name)
	}
}
