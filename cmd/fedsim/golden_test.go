package main

import (
	"bytes"
	"flag"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden trace files")

// goldenCases pin three representative fedsim runs: clean IID training,
// non-IID with server momentum, and the failure-hardened pipeline under
// crash/corrupt/drop faults with a quorum. Each output ends in a
// bit-exact digest line, so the comparison detects one-ULP numeric drift
// anywhere in the training trajectory, not just in the rounded log lines.
var goldenCases = []struct {
	name string
	args []string
}{
	{"mnist-iid-seed1", []string{
		"-dataset", "mnist", "-nodes", "4", "-rounds", "6", "-samples", "300",
		"-hidden", "8", "-seed", "1", "-log-every", "2"}},
	{"fashion-dirichlet-momentum-seed2", []string{
		"-dataset", "fashion", "-nodes", "5", "-rounds", "5", "-samples", "300",
		"-hidden", "8", "-seed", "2", "-log-every", "1",
		"-partition", "dirichlet", "-alpha", "0.5", "-server-momentum", "0.9", "-frac", "0.6"}},
	{"cifar-faulted-seed3", []string{
		"-dataset", "cifar", "-nodes", "6", "-rounds", "6", "-samples", "300",
		"-hidden", "8", "-seed", "3", "-log-every", "3",
		"-crash-rate", "0.2", "-corrupt-rate", "0.2", "-drop-rate", "0.2",
		"-max-retries", "1", "-min-quorum", "2", "-max-delta-norm", "50"}},
}

// TestGoldenTraces compares each pinned run's full output against its
// testdata file. Regenerate after an intentional numeric change with
//
//	go test ./cmd/fedsim -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !bytes.Contains(buf.Bytes(), []byte("digest ")) {
				t.Fatalf("output carries no digest line:\n%s", buf.String())
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s\n--- want ---\n%s--- got ---\n%s",
					path, want, buf.Bytes())
			}
		})
	}
}

// TestGoldenRunsAreDeterministic re-runs the faulted case and demands
// byte-identical output — the property the golden files rely on.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	tc := goldenCases[len(goldenCases)-1]
	var first, second bytes.Buffer
	if err := run(tc.args, &first); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(tc.args, &second); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("same seed, different output:\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}
}

// TestDigestDetectsOneULP proves the regression digest is ULP-sensitive:
// nudging one hashed value by a single ULP must change the sum. This is
// the development-time perturbation check from the acceptance criteria,
// kept as a permanent guard on the digest machinery.
func TestDigestDetectsOneULP(t *testing.T) {
	base := []float64{0.5, 0.1234567890123456, 0.9}
	perturbed := append([]float64(nil), base...)
	perturbed[1] = math.Nextafter(perturbed[1], 2)
	h1, h2 := fnv.New64a(), fnv.New64a()
	hashFloats(h1, base...)
	hashFloats(h2, perturbed...)
	if h1.Sum64() == h2.Sum64() {
		t.Fatalf("digest %016x unchanged by a one-ULP perturbation", h1.Sum64())
	}
}
