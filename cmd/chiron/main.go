// Command chiron trains and evaluates the hierarchical incentive mechanism
// on a configurable edge-learning system, or runs any of the paper's
// reproduced experiments by artifact id.
//
// Usage:
//
//	chiron train   [-nodes N] [-budget η] [-dataset mnist|fashion|cifar]
//	               [-episodes E] [-seed S] [-real] [-baseline chiron|drl|greedy]
//	               [-churn SCRIPT] [-depart-rate P] [-arrive-rate P]
//	               [-auto-checkpoint DIR] [-checkpoint-every N] [-max-restarts R]
//	chiron run     [-artifact fig3|fig4|fig5|fig6|fig7a|fig7b|tab1] [-scale F] [-jobs N]
//	chiron list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chiron"
	"chiron/internal/mechanism"
	"chiron/internal/supervise"
	"chiron/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: chiron <train|run|list> [flags]")
	}
	switch args[0] {
	case "train":
		return cmdTrain(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "list":
		return cmdList()
	default:
		return fmt.Errorf("unknown subcommand %q (want train, run, or list)", args[0])
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	nodes := fs.Int("nodes", 5, "number of edge nodes")
	budget := fs.Float64("budget", 300, "total incentive budget η")
	datasetName := fs.String("dataset", "mnist", "learning task: mnist, fashion, or cifar")
	episodes := fs.Int("episodes", 500, "training episodes")
	evalEpisodes := fs.Int("eval", 5, "deterministic evaluation episodes after training")
	seed := fs.Int64("seed", 7, "random seed")
	real := fs.Bool("real", false, "measure accuracy with real FedAvg neural training instead of the surrogate curve")
	workers := fs.Int("workers", 0, "matrix-kernel worker count (0 = GOMAXPROCS); results are identical at any setting")
	baseline := fs.String("baseline", "chiron", "mechanism to train: chiron, drl, or greedy")
	logEvery := fs.Int("log-every", 50, "print progress every this many episodes (0 disables)")
	save := fs.String("save", "", "write the trained mechanism checkpoint to this path (any learnable mechanism)")
	load := fs.String("load", "", "restore a mechanism checkpoint before training/evaluation")
	tracePath := fs.String("trace", "", "write a JSONL training trace (round + episode records) to this path")
	churnSpec := fs.String("churn", "", "scripted churn plan, e.g. \"-3@5,+3@9\" (overrides the churn rates)")
	departRate := fs.Float64("depart-rate", 0, "per-round probability a fleet member departs")
	arriveRate := fs.Float64("arrive-rate", 0, "per-round probability a departed node rejoins")
	autoCkpt := fs.String("auto-checkpoint", "", "supervise training with periodic checkpoints in this directory, resuming from the newest valid one")
	ckptEvery := fs.Int("checkpoint-every", 10, "episodes between auto-checkpoints (with -auto-checkpoint)")
	maxRestarts := fs.Int("max-restarts", 3, "crash recoveries before the supervised run gives up (with -auto-checkpoint)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *autoCkpt != "" && *load != "" {
		return fmt.Errorf("-load conflicts with -auto-checkpoint (the supervisor resumes from its own directory)")
	}

	ds, err := parseDataset(*datasetName)
	if err != nil {
		return err
	}
	var churn chiron.ChurnSchedule
	switch {
	case *churnSpec != "":
		script, err := chiron.ParseChurnScript(*churnSpec)
		if err != nil {
			return err
		}
		if err := script.Validate(*nodes); err != nil {
			return err
		}
		churn = script
	case *departRate != 0 || *arriveRate != 0:
		churn, err = chiron.NewChurnSampler(chiron.ChurnRates{Depart: *departRate, Arrive: *arriveRate}, *seed+2)
		if err != nil {
			return err
		}
	}
	// buildMechanism assembles a fresh system and mechanism from scratch —
	// called once for a plain run, once per recovery attempt when the
	// supervisor restarts a crashed run.
	buildMechanism := func() (chiron.Mechanism, error) {
		sys, err := chiron.NewSystem(chiron.SystemConfig{
			Nodes:        *nodes,
			Dataset:      ds,
			Budget:       *budget,
			Seed:         *seed,
			RealTraining: *real,
			Workers:      *workers,
			Churn:        churn,
		})
		if err != nil {
			return nil, err
		}
		switch *baseline {
		case "chiron":
			return sys.Agent(), nil
		case "drl":
			return sys.NewBaselineDRL()
		case "greedy":
			return sys.NewBaselineGreedy()
		default:
			return nil, fmt.Errorf("unknown baseline %q (want chiron, drl, or greedy)", *baseline)
		}
	}
	m, err := buildMechanism()
	if err != nil {
		return err
	}

	if *load != "" {
		agent, ok := m.(mechanism.Checkpointer)
		if !ok {
			return fmt.Errorf("-load does not apply to mechanism %s", m.Name())
		}
		if err := agent.LoadCheckpoint(*load); err != nil {
			return err
		}
		fmt.Printf("restored checkpoint from %s (episode %d)\n", *load, agent.Episode())
	}
	fmt.Printf("training %s: %d nodes, dataset %s, budget %.0f, %d episodes\n",
		m.Name(), *nodes, ds, *budget, *episodes)
	var tw *trace.Writer
	if *tracePath != "" {
		if tw, err = trace.Create(*tracePath); err != nil {
			return err
		}
		defer func() {
			if cerr := tw.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "chiron: %v\n", cerr)
			}
		}()
	}
	count := 0
	callback := func(r chiron.EpisodeResult) {
		count++
		if *logEvery > 0 && count%*logEvery == 0 {
			fmt.Printf("  episode %4d: rounds=%3d accuracy=%.3f reward=%8.1f time-eff=%5.1f%%\n",
				r.Episode, r.Rounds, r.FinalAccuracy, r.ExteriorReturn, 100*r.TimeEfficiency)
		}
		if tw != nil {
			// The ledger still holds this episode's rounds until the next
			// Reset, so the full round history is recordable here.
			rounds := m.Env().Ledger().Rounds()
			for i := range rounds {
				if err := tw.WriteRound(r.Episode, &rounds[i]); err != nil {
					fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
					return
				}
			}
			if err := tw.WriteEpisode(r); err != nil {
				fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
			}
		}
	}
	if *autoCkpt != "" {
		runner, err := supervise.New(func() (supervise.Target, error) {
			fresh, err := buildMechanism()
			if err != nil {
				return nil, err
			}
			target, ok := fresh.(supervise.Target)
			if !ok {
				return nil, fmt.Errorf("mechanism %s cannot be supervised (needs training + checkpoints)", fresh.Name())
			}
			// Point the trace/eval plumbing at the live attempt.
			m = fresh
			return target, nil
		}, supervise.Config{
			Dir:   *autoCkpt,
			Every: *ckptEvery,
			Retry: chiron.Backoff{Base: 1, Factor: 2, Max: 30, MaxRetries: *maxRestarts},
		})
		if err != nil {
			return err
		}
		_, report, err := runner.Run(*episodes, callback)
		if err != nil {
			return err
		}
		fmt.Printf("supervised run: resumed from episode %d, %d checkpoints, %d restarts, %d corrupt checkpoints skipped\n",
			report.ResumedFrom, report.Checkpoints, report.Restarts, report.CorruptSkipped)
	} else {
		tr, ok := m.(mechanism.Trainable)
		if !ok {
			return fmt.Errorf("mechanism %s is not trainable", m.Name())
		}
		if _, err := tr.Train(*episodes, callback); err != nil {
			return err
		}
	}
	if *evalEpisodes > 0 {
		res, err := mechanism.Evaluate(m, *evalEpisodes)
		if err != nil {
			return err
		}
		fmt.Printf("\nevaluation over %d deterministic episodes:\n", *evalEpisodes)
		fmt.Printf("  final accuracy : %.3f\n", res.FinalAccuracy)
		fmt.Printf("  rounds         : %d\n", res.Rounds)
		fmt.Printf("  time efficiency: %.1f%%\n", 100*res.TimeEfficiency)
		fmt.Printf("  budget spent   : %.1f / %.0f\n", res.BudgetSpent, *budget)
		fmt.Printf("  server utility : %.1f\n", res.ServerUtility)
	}
	if *save != "" {
		agent, ok := m.(mechanism.Checkpointer)
		if !ok {
			return fmt.Errorf("-save does not apply to mechanism %s", m.Name())
		}
		if err := agent.SaveCheckpoint(*save); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	artifact := fs.String("artifact", "", "paper artifact id (fig3, fig4, fig5, fig6, fig7a, fig7b, tab1) or 'all'")
	scale := fs.Float64("scale", 1.0, "episode-count scale factor in (0,1]; 1.0 reproduces the paper's full runs")
	jobs := fs.Int("jobs", 1, "concurrent experiment jobs (0 = GOMAXPROCS); reports are identical at any setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 0 {
		return fmt.Errorf("jobs %d must be >= 0 (0 = GOMAXPROCS)", *jobs)
	}
	if *artifact == "" {
		return fmt.Errorf("-artifact is required (use 'chiron list' to see ids)")
	}
	ids := []chiron.Artifact{chiron.Artifact(*artifact)}
	if *artifact == "all" {
		ids = chiron.Artifacts()
	}
	for _, id := range ids {
		report, err := chiron.RunArtifactJobs(id, *scale, *jobs)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	return nil
}

func cmdList() error {
	fmt.Println("reproduced paper artifacts:")
	for _, a := range chiron.Artifacts() {
		fmt.Printf("  %-10s %s\n", a, chiron.DescribeArtifact(a))
	}
	fmt.Println("ablation studies:")
	for _, a := range chiron.ExtraArtifacts() {
		fmt.Printf("  %-10s %s\n", a, chiron.DescribeArtifact(a))
	}
	return nil
}

func parseDataset(name string) (chiron.Dataset, error) {
	switch strings.ToLower(name) {
	case "mnist":
		return chiron.DatasetMNIST, nil
	case "fashion", "fashion-mnist", "fmnist":
		return chiron.DatasetFashionMNIST, nil
	case "cifar", "cifar10", "cifar-10":
		return chiron.DatasetCIFAR10, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want mnist, fashion, or cifar)", name)
	}
}
