// Command chiron trains and evaluates the hierarchical incentive mechanism
// on a configurable edge-learning system, or runs any of the paper's
// reproduced experiments by artifact id.
//
// Usage:
//
//	chiron train   [-nodes N] [-budget η] [-dataset mnist|fashion|cifar]
//	               [-episodes E] [-seed S] [-real] [-baseline chiron|drl|greedy]
//	               [-churn SCRIPT] [-depart-rate P] [-arrive-rate P]
//	               [-auto-checkpoint DIR] [-checkpoint-every N] [-max-restarts R]
//	chiron run     [-artifact fig3|fig4|fig5|fig6|fig7a|fig7b|tab1] [-scale F] [-jobs N]
//	chiron run     [-scenario NAME|file.json] [-scale F] [-jobs N] [-churn SCRIPT]
//	               [-record trace.jsonl [-mechanism M] [-budget η]]
//	chiron replay  [-trace trace.jsonl] [-mechanism M] [-budget η] [-episodes E]
//	chiron list
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"chiron"
	"chiron/internal/mechanism"
	"chiron/internal/scenario"
	"chiron/internal/session"
	"chiron/internal/supervise"
	"chiron/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: chiron <train|run|list> [flags]")
	}
	switch args[0] {
	case "train":
		return cmdTrain(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "list":
		return cmdList()
	default:
		return fmt.Errorf("unknown subcommand %q (want train, run, replay, or list)", args[0])
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	nodes := fs.Int("nodes", 5, "number of edge nodes")
	budget := fs.Float64("budget", 300, "total incentive budget η")
	datasetName := fs.String("dataset", "mnist", "learning task: mnist, fashion, or cifar")
	episodes := fs.Int("episodes", 500, "training episodes")
	evalEpisodes := fs.Int("eval", 5, "deterministic evaluation episodes after training")
	seed := fs.Int64("seed", 7, "random seed")
	real := fs.Bool("real", false, "measure accuracy with real FedAvg neural training instead of the surrogate curve")
	workers := fs.Int("workers", 0, "matrix-kernel worker count (0 = GOMAXPROCS); results are identical at any setting")
	baseline := fs.String("baseline", "chiron", "mechanism to train: chiron, drl, or greedy")
	logEvery := fs.Int("log-every", 50, "print progress every this many episodes (0 disables)")
	save := fs.String("save", "", "write the trained mechanism checkpoint to this path (any learnable mechanism)")
	load := fs.String("load", "", "restore a mechanism checkpoint before training/evaluation")
	tracePath := fs.String("trace", "", "write a JSONL training trace (round + episode records) to this path")
	churnSpec := fs.String("churn", "", "scripted churn plan, e.g. \"-3@5,+3@9\" (overrides the churn rates)")
	departRate := fs.Float64("depart-rate", 0, "per-round probability a fleet member departs")
	arriveRate := fs.Float64("arrive-rate", 0, "per-round probability a departed node rejoins")
	autoCkpt := fs.String("auto-checkpoint", "", "supervise training with periodic checkpoints in this directory, resuming from the newest valid one")
	ckptEvery := fs.Int("checkpoint-every", 10, "episodes between auto-checkpoints (with -auto-checkpoint)")
	maxRestarts := fs.Int("max-restarts", 3, "crash recoveries before the supervised run gives up (with -auto-checkpoint)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *autoCkpt != "" && *load != "" {
		return fmt.Errorf("-load conflicts with -auto-checkpoint (the supervisor resumes from its own directory)")
	}

	ds, err := parseDataset(*datasetName)
	if err != nil {
		return err
	}
	var churn chiron.ChurnSchedule
	switch {
	case *churnSpec != "":
		script, err := chiron.ParseChurnScript(*churnSpec)
		if err != nil {
			return err
		}
		if err := script.Validate(*nodes); err != nil {
			return err
		}
		churn = script
	case *departRate != 0 || *arriveRate != 0:
		churn, err = chiron.NewChurnSampler(chiron.ChurnRates{Depart: *departRate, Arrive: *arriveRate}, *seed+2)
		if err != nil {
			return err
		}
	}
	// buildMechanism assembles a fresh system and mechanism from scratch —
	// called once for a plain run, once per recovery attempt when the
	// supervisor restarts a crashed run.
	buildMechanism := func() (chiron.Mechanism, error) {
		sys, err := chiron.NewSystem(chiron.SystemConfig{
			Nodes:        *nodes,
			Dataset:      ds,
			Budget:       *budget,
			Seed:         *seed,
			RealTraining: *real,
			Workers:      *workers,
			Churn:        churn,
		})
		if err != nil {
			return nil, err
		}
		switch *baseline {
		case "chiron":
			return sys.Agent(), nil
		case "drl":
			return sys.NewBaselineDRL()
		case "greedy":
			return sys.NewBaselineGreedy()
		default:
			return nil, fmt.Errorf("unknown baseline %q (want chiron, drl, or greedy)", *baseline)
		}
	}
	m, err := buildMechanism()
	if err != nil {
		return err
	}

	if *load != "" {
		agent, ok := m.(mechanism.Checkpointer)
		if !ok {
			return fmt.Errorf("-load does not apply to mechanism %s", m.Name())
		}
		if err := agent.LoadCheckpoint(*load); err != nil {
			return err
		}
		fmt.Printf("restored checkpoint from %s (episode %d)\n", *load, agent.Episode())
	}
	fmt.Printf("training %s: %d nodes, dataset %s, budget %.0f, %d episodes\n",
		m.Name(), *nodes, ds, *budget, *episodes)
	var tw *trace.Writer
	if *tracePath != "" {
		if tw, err = trace.Create(*tracePath); err != nil {
			return err
		}
		defer func() {
			if cerr := tw.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "chiron: %v\n", cerr)
			}
		}()
	}
	count := 0
	callback := func(r chiron.EpisodeResult) {
		count++
		if *logEvery > 0 && count%*logEvery == 0 {
			fmt.Printf("  episode %4d: rounds=%3d accuracy=%.3f reward=%8.1f time-eff=%5.1f%%\n",
				r.Episode, r.Rounds, r.FinalAccuracy, r.ExteriorReturn, 100*r.TimeEfficiency)
		}
		if tw != nil {
			// The ledger still holds this episode's rounds until the next
			// Reset, so the full round history is recordable here.
			rounds := m.Env().Ledger().Rounds()
			for i := range rounds {
				if err := tw.WriteRound(r.Episode, &rounds[i]); err != nil {
					fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
					return
				}
			}
			if err := tw.WriteEpisode(r); err != nil {
				fmt.Fprintf(os.Stderr, "chiron: %v\n", err)
			}
		}
	}
	if *autoCkpt != "" {
		sess, err := session.New(session.Config{
			Train: &session.TrainConfig{
				Factory: func() (supervise.Target, error) {
					fresh, err := buildMechanism()
					if err != nil {
						return nil, err
					}
					target, ok := fresh.(supervise.Target)
					if !ok {
						return nil, fmt.Errorf("mechanism %s cannot be supervised (needs training + checkpoints)", fresh.Name())
					}
					// Point the trace/eval plumbing at the live attempt.
					m = fresh
					return target, nil
				},
				Episodes: *episodes,
				Supervise: supervise.Config{
					Dir:   *autoCkpt,
					Every: *ckptEvery,
					Retry: chiron.Backoff{Base: 1, Factor: 2, Max: 30, MaxRetries: *maxRestarts},
				},
			},
			OnEpisode: func(ev session.EpisodeEvent) { callback(ev.Result) },
		})
		if err != nil {
			return err
		}
		interrupts := make(chan os.Signal, 1)
		signal.Notify(interrupts, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(interrupts)
		st, err := runSession(sess, interrupts)
		if err != nil {
			return err
		}
		report, err := sess.Report()
		if err != nil {
			return err
		}
		fmt.Printf("supervised run: resumed from episode %d, %d checkpoints, %d restarts, %d corrupt checkpoints skipped\n",
			report.ResumedFrom, report.Checkpoints, report.Restarts, report.CorruptSkipped)
		if st == session.StateStopped {
			fmt.Printf("stopped after episode %d; final checkpoint flushed to %s — rerun with -auto-checkpoint to resume\n",
				report.ResumedFrom+len(report.Episodes), *autoCkpt)
			return nil
		}
	} else {
		tr, ok := m.(mechanism.Trainable)
		if !ok {
			return fmt.Errorf("mechanism %s is not trainable", m.Name())
		}
		if _, err := tr.Train(*episodes, callback); err != nil {
			return err
		}
	}
	if *evalEpisodes > 0 {
		res, err := mechanism.Evaluate(m, *evalEpisodes)
		if err != nil {
			return err
		}
		fmt.Printf("\nevaluation over %d deterministic episodes:\n", *evalEpisodes)
		fmt.Printf("  final accuracy : %.3f\n", res.FinalAccuracy)
		fmt.Printf("  rounds         : %d\n", res.Rounds)
		fmt.Printf("  time efficiency: %.1f%%\n", 100*res.TimeEfficiency)
		fmt.Printf("  budget spent   : %.1f / %.0f\n", res.BudgetSpent, *budget)
		fmt.Printf("  server utility : %.1f\n", res.ServerUtility)
	}
	if *save != "" {
		agent, ok := m.(mechanism.Checkpointer)
		if !ok {
			return fmt.Errorf("-save does not apply to mechanism %s", m.Name())
		}
		if err := agent.SaveCheckpoint(*save); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	artifact := fs.String("artifact", "", "paper artifact id (fig3, fig4, fig5, fig6, fig7a, fig7b, tab1) or 'all'")
	scale := fs.Float64("scale", 1.0, "episode-count scale factor in (0,1]; 1.0 reproduces the paper's full runs")
	jobs := fs.Int("jobs", 1, "concurrent experiment jobs (0 = GOMAXPROCS); reports are identical at any setting")
	scenarioArg := fs.String("scenario", "", "library scenario name or spec file (JSON); runs its full mechanism × budget grid")
	record := fs.String("record", "", "with -scenario: record one cell's environment draws to this replayable trace file")
	mech := fs.String("mechanism", "", "with -record: which of the scenario's mechanisms to record (default: its first)")
	budget := fs.Float64("budget", 0, "with -record: which of the scenario's budgets to record (default: its first)")
	churnSpec := fs.String("churn", "", "with -scenario: scripted churn plan, e.g. \"-3@5,+3@9\", for specs with no churn block")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := setFlags(fs)
	if *jobs < 0 {
		return fmt.Errorf("jobs %d must be >= 0 (0 = GOMAXPROCS)", *jobs)
	}
	if *scenarioArg != "" {
		if *artifact != "" {
			return fmt.Errorf("-artifact and -scenario are mutually exclusive")
		}
		return runScenario(*scenarioArg, *scale, *jobs, *record, *mech, *budget, *churnSpec, set)
	}
	for _, name := range []string{"record", "mechanism", "budget", "churn"} {
		if set[name] {
			return fmt.Errorf("-%s requires -scenario", name)
		}
	}
	if *artifact == "" {
		return fmt.Errorf("-artifact or -scenario is required (use 'chiron list' to see both)")
	}
	ids := []chiron.Artifact{chiron.Artifact(*artifact)}
	if *artifact == "all" {
		ids = chiron.Artifacts()
	}
	for _, id := range ids {
		report, err := chiron.RunArtifactJobs(id, *scale, *jobs)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	return nil
}

// runSession starts a hosted session and waits for its terminal state. An
// interrupt signal (nil channel = none wired) stops the session gracefully
// at the next episode boundary — in train mode that flushes a final atomic
// checkpoint before the session reports StateStopped.
func runSession(s *session.Session, interrupts <-chan os.Signal) (session.State, error) {
	if err := s.Start(); err != nil {
		return session.StateFailed, err
	}
	go func() {
		select {
		case <-interrupts:
			fmt.Fprintln(os.Stderr, "chiron: interrupt — stopping at the next episode boundary")
			s.Stop()
		case <-s.Done():
		}
	}()
	st := s.Wait()
	return st, s.Err()
}

// setFlags reports which flags were explicitly given on the command line,
// so scenario conflict checks can distinguish "user said -budget 300" from
// the flag's default value.
func setFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// loadScenario resolves a -scenario argument: a library name first, then a
// spec file path.
func loadScenario(arg string) (*scenario.Spec, error) {
	if s, ok := scenario.Lookup(arg); ok {
		return s, nil
	}
	s, err := scenario.Load(arg)
	if err != nil {
		if _, statErr := os.Stat(arg); os.IsNotExist(statErr) {
			return nil, fmt.Errorf("%q is neither a library scenario (see 'chiron list') nor a readable spec file: %w", arg, err)
		}
		return nil, err
	}
	return s, nil
}

// runScenario executes (or records) a declarative scenario. Flags that
// contradict what the loaded spec already pins are hard errors — a spec is
// the experiment's single source of truth, so the CLI never silently
// prefers one side.
func runScenario(arg string, scale float64, jobs int, record, mech string, budget float64, churnSpec string, set map[string]bool) error {
	s, err := loadScenario(arg)
	if err != nil {
		return err
	}
	if set["churn"] {
		if s.Churn != nil {
			return fmt.Errorf("scenario %s already declares a churn block; -churn contradicts it (edit the spec instead)", s.Name)
		}
		s.Churn = &scenario.ChurnSpec{Script: churnSpec}
	}
	if scale != 1.0 {
		s = s.Scale(scale)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if record == "" {
		for _, name := range []string{"mechanism", "budget"} {
			if set[name] {
				return fmt.Errorf("scenario %s fixes its own %s grid; -%s only selects the cell to -record", s.Name, name, name)
			}
		}
		sess, err := session.New(session.Config{Spec: s, Workers: jobs})
		if err != nil {
			return err
		}
		if _, err := runSession(sess, nil); err != nil {
			return err
		}
		res, err := sess.Result()
		if err != nil {
			return err
		}
		fmt.Print(res.Summary())
		return nil
	}
	tw, err := trace.Create(record)
	if err != nil {
		return err
	}
	sess, err := session.New(session.Config{
		Spec:   s,
		Record: &session.RecordConfig{Writer: tw, Mechanism: mech, Budget: budget},
	})
	if err != nil {
		_ = tw.Close()
		return err
	}
	_, err = runSession(sess, nil)
	if cerr := tw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	rec, err := sess.Recorded()
	if err != nil {
		return err
	}
	fmt.Printf("recorded scenario %s: %s at η=%g, %d episodes → %s (digest %s)\n",
		s.Name, rec.Mechanism, rec.Budget, len(rec.Episodes), record, rec.Digest())
	return nil
}

// cmdReplay re-runs a recorded trace's environment draws, either with the
// recorded mechanism and budget (bit-identical reproduction) or against a
// counterfactual mechanism/budget.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "replayable trace file written by 'chiron run -scenario ... -record'")
	mech := fs.String("mechanism", "", "counterfactual mechanism (default: the recorded one)")
	budget := fs.Float64("budget", 0, "counterfactual budget η (default: the recorded one)")
	episodes := fs.Int("episodes", 0, "episodes to replay (default: as recorded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	tr, err := trace.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	rep, err := scenario.Replay(tr, scenario.ReplayOptions{
		Mechanism: *mech,
		Budget:    *budget,
		Episodes:  *episodes,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	return nil
}

func cmdList() error {
	fmt.Println("reproduced paper artifacts:")
	for _, a := range chiron.Artifacts() {
		fmt.Printf("  %-10s %s\n", a, chiron.DescribeArtifact(a))
	}
	fmt.Println("ablation studies:")
	for _, a := range chiron.ExtraArtifacts() {
		fmt.Printf("  %-10s %s\n", a, chiron.DescribeArtifact(a))
	}
	fmt.Println("named scenarios (run -scenario <name>):")
	for _, s := range scenario.Describe() {
		fmt.Printf("  %-18s %s\n", s[0], s[1])
	}
	return nil
}

func parseDataset(name string) (chiron.Dataset, error) {
	switch strings.ToLower(name) {
	case "mnist":
		return chiron.DatasetMNIST, nil
	case "fashion", "fashion-mnist", "fmnist":
		return chiron.DatasetFashionMNIST, nil
	case "cifar", "cifar10", "cifar-10":
		return chiron.DatasetCIFAR10, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want mnist, fashion, or cifar)", name)
	}
}
