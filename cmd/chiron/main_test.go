package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"chiron/internal/mechanism"
	"chiron/internal/rl"
	"chiron/internal/scenario"
	"chiron/internal/session"
	"chiron/internal/supervise"
)

// sigTarget is a minimal supervise.Target whose training state is just an
// episode counter, so the interrupt test needs no real mechanism.
type sigTarget struct{ episode int }

func (f *sigTarget) Episode() int { return f.episode }

func (f *sigTarget) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	var out []mechanism.EpisodeResult
	for i := 0; i < episodes; i++ {
		f.episode++
		res := mechanism.EpisodeResult{Episode: f.episode, Rounds: f.episode}
		if callback != nil {
			callback(res)
		}
		out = append(out, res)
	}
	return out, nil
}

func (f *sigTarget) SaveCheckpoint(path string) error {
	return rl.SaveCheckpoint(path, &rl.Checkpoint{Mechanism: "sig", Nodes: 1, Episode: f.episode})
}

func (f *sigTarget) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if ck.Mechanism != "sig" {
		return fmt.Errorf("%w: checkpoint for %q, want \"sig\"", rl.ErrShapeMismatch, ck.Mechanism)
	}
	f.episode = ck.Episode
	return nil
}

// TestTrainInterruptFlushesCheckpoint pins the graceful-shutdown contract
// of the supervised train path: a SIGINT delivered mid-run stops the
// session at the next episode boundary, the final checkpoint is flushed
// atomically, and a rerun over the same directory resumes exactly where
// the interrupt landed.
func TestTrainInterruptFlushesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	factory := func() (supervise.Target, error) { return &sigTarget{}, nil }
	interrupts := make(chan os.Signal, 1)
	var sess *session.Session
	sess, err := session.New(session.Config{
		Train: &session.TrainConfig{
			Factory:   factory,
			Episodes:  6,
			Supervise: supervise.Config{Dir: dir, Every: 2},
		},
		OnEpisode: func(ev session.EpisodeEvent) {
			if ev.Seq == 2 {
				// Pause first so the worker deterministically parks at the
				// next gate, then deliver the fake signal.
				sess.Pause()
				interrupts <- syscall.SIGINT
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := runSession(sess, interrupts)
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if st != session.StateStopped {
		t.Fatalf("state after interrupt %s, want stopped", st)
	}
	report, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := report.ResumedFrom + len(report.Episodes); got != 2 {
		t.Fatalf("stopped after %d episodes, want 2", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000002.json")); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}

	resumed, err := session.New(session.Config{
		Train: &session.TrainConfig{
			Factory:   factory,
			Episodes:  6,
			Supervise: supervise.Config{Dir: dir, Every: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := runSession(resumed, nil); err != nil || st != session.StateDone {
		t.Fatalf("resumed run: state %s, err %v", st, err)
	}
	report, err = resumed.Report()
	if err != nil {
		t.Fatal(err)
	}
	if report.ResumedFrom != 2 {
		t.Fatalf("resumed from %d, want 2", report.ResumedFrom)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000006.json")); err != nil {
		t.Fatalf("completed checkpoint missing: %v", err)
	}
}

// TestRunFlagScenarioConflicts pins the contract that CLI flags may never
// silently override (or be overridden by) a loaded scenario spec: every
// contradictory combination is a hard error naming the conflict.
func TestRunFlagScenarioConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"artifact and scenario",
			[]string{"run", "-artifact", "fig4", "-scenario", "paper-baseline"},
			"mutually exclusive",
		},
		{
			"churn flag vs scenario churn block",
			[]string{"run", "-scenario", "churny-fleet", "-churn", "-3@5,+3@9"},
			"already declares a churn block",
		},
		{
			"budget vs scenario budget grid",
			[]string{"run", "-scenario", "paper-baseline", "-budget", "500"},
			"fixes its own budget grid",
		},
		{
			"mechanism vs scenario mechanism grid",
			[]string{"run", "-scenario", "paper-baseline", "-mechanism", "greedy"},
			"fixes its own mechanism grid",
		},
		{
			"record without scenario",
			[]string{"run", "-artifact", "fig4", "-record", "t.jsonl"},
			"requires -scenario",
		},
		{
			"churn without scenario",
			[]string{"run", "-artifact", "fig4", "-churn", "-3@5"},
			"requires -scenario",
		},
		{
			"neither artifact nor scenario",
			[]string{"run"},
			"-artifact or -scenario is required",
		},
		{
			"unknown scenario",
			[]string{"run", "-scenario", "no-such-thing"},
			"neither a library scenario",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want conflict error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want it to mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestScenarioRecordReplayCLI drives the full CLI loop on a tiny spec
// file: run -scenario -record writes a replayable trace, and replay
// accepts it with and without a counterfactual mechanism.
func TestScenarioRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	s, ok := scenario.Lookup("paper-baseline")
	if !ok {
		t.Fatal("paper-baseline missing from library")
	}
	s.Name = "cli-smoke"
	s.Budgets = []float64{80}
	s.EvalEpisodes = 1
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	specPath := filepath.Join(dir, "smoke.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	tracePath := filepath.Join(dir, "smoke.jsonl")
	if err := run([]string{"run", "-scenario", specPath, "-record", tracePath}); err != nil {
		t.Fatalf("run -scenario -record: %v", err)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("recorded trace missing: %v", err)
	}
	if err := run([]string{"replay", "-trace", tracePath}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := run([]string{"replay", "-trace", tracePath, "-mechanism", "equal-time"}); err != nil {
		t.Fatalf("counterfactual replay: %v", err)
	}
	if err := run([]string{"replay"}); err == nil {
		t.Error("replay without -trace succeeded")
	}
}
