package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chiron/internal/scenario"
)

// TestRunFlagScenarioConflicts pins the contract that CLI flags may never
// silently override (or be overridden by) a loaded scenario spec: every
// contradictory combination is a hard error naming the conflict.
func TestRunFlagScenarioConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"artifact and scenario",
			[]string{"run", "-artifact", "fig4", "-scenario", "paper-baseline"},
			"mutually exclusive",
		},
		{
			"churn flag vs scenario churn block",
			[]string{"run", "-scenario", "churny-fleet", "-churn", "-3@5,+3@9"},
			"already declares a churn block",
		},
		{
			"budget vs scenario budget grid",
			[]string{"run", "-scenario", "paper-baseline", "-budget", "500"},
			"fixes its own budget grid",
		},
		{
			"mechanism vs scenario mechanism grid",
			[]string{"run", "-scenario", "paper-baseline", "-mechanism", "greedy"},
			"fixes its own mechanism grid",
		},
		{
			"record without scenario",
			[]string{"run", "-artifact", "fig4", "-record", "t.jsonl"},
			"requires -scenario",
		},
		{
			"churn without scenario",
			[]string{"run", "-artifact", "fig4", "-churn", "-3@5"},
			"requires -scenario",
		},
		{
			"neither artifact nor scenario",
			[]string{"run"},
			"-artifact or -scenario is required",
		},
		{
			"unknown scenario",
			[]string{"run", "-scenario", "no-such-thing"},
			"neither a library scenario",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want conflict error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want it to mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestScenarioRecordReplayCLI drives the full CLI loop on a tiny spec
// file: run -scenario -record writes a replayable trace, and replay
// accepts it with and without a counterfactual mechanism.
func TestScenarioRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	s, ok := scenario.Lookup("paper-baseline")
	if !ok {
		t.Fatal("paper-baseline missing from library")
	}
	s.Name = "cli-smoke"
	s.Budgets = []float64{80}
	s.EvalEpisodes = 1
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	specPath := filepath.Join(dir, "smoke.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	tracePath := filepath.Join(dir, "smoke.jsonl")
	if err := run([]string{"run", "-scenario", specPath, "-record", tracePath}); err != nil {
		t.Fatalf("run -scenario -record: %v", err)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("recorded trace missing: %v", err)
	}
	if err := run([]string{"replay", "-trace", tracePath}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := run([]string{"replay", "-trace", tracePath, "-mechanism", "equal-time"}); err != nil {
		t.Fatalf("counterfactual replay: %v", err)
	}
	if err := run([]string{"replay"}); err == nil {
		t.Error("replay without -trace succeeded")
	}
}
