// Command sweepbench measures the experiment scheduler's wall-clock
// speedup on the fig4 comparison grid (3 mechanisms × 5 budgets) by
// running the same sweep serially and at -jobs N, asserts the two runs
// produce byte-identical CSV output, and writes the timings as JSON.
//
// Usage:
//
//	sweepbench [-scale F] [-jobs N] [-out BENCH_sweep.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"chiron/internal/experiment"
)

type report struct {
	Artifact      string  `json:"artifact"`
	GridCells     int     `json:"grid_cells"`
	Scale         float64 `json:"scale"`
	TrainEpisodes int     `json:"train_episodes_per_cell"`
	CPUs          int     `json:"cpus"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	Jobs          int     `json:"jobs"`
	SerialSeconds float64 `json:"serial_seconds"`
	// ParallelSeconds and Speedup are null on a single-CPU host: jobs
	// serialize there, so a "speedup" would only measure scheduler
	// overhead and mislead anyone reading the artifact.
	ParallelSeconds *float64 `json:"parallel_seconds"`
	Speedup         *float64 `json:"speedup"`
	IdenticalOutput bool     `json:"identical_output"`
	Note            string   `json:"note,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "sweepbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweepbench", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.02, "episode-count scale factor in (0,1] for the fig4 grid")
	jobs := fs.Int("jobs", 4, "parallel worker bound to compare against serial execution")
	out := fs.String("out", "BENCH_sweep.json", "output path for the JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 2 {
		return fmt.Errorf("jobs %d must be >= 2 (comparing against serial is the point)", *jobs)
	}

	params, err := experiment.ComparisonDefaults(experiment.Fig4)
	if err != nil {
		return err
	}
	params = params.Scale(*scale)
	cells := len(params.Budgets) * len(params.Mechanisms)
	fmt.Printf("fig4 grid: %d cells, %d train episodes each (scale %.3f), %d CPUs\n",
		cells, params.TrainEpisodes, *scale, runtime.NumCPU())

	serialCSV, serialSec, err := timeRun(params, 1)
	if err != nil {
		return err
	}
	fmt.Printf("serial   (-jobs=1): %.2fs\n", serialSec)

	r := report{
		Artifact:        string(experiment.Fig4),
		GridCells:       cells,
		Scale:           *scale,
		TrainEpisodes:   params.TrainEpisodes,
		CPUs:            runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		Jobs:            *jobs,
		SerialSeconds:   serialSec,
		IdenticalOutput: true,
	}
	if runtime.NumCPU() == 1 {
		// On one CPU a -jobs=N run measures scheduler overhead, not
		// speedup; reporting a sub-1.0 "speedup" from such a run is
		// misleading, so skip the parallel timing entirely and record
		// null. The determinism contract (identical CSV at any -jobs) is
		// still checked.
		fmt.Printf("parallel (-jobs=%d): skipped — single-CPU host, timing would measure overhead, not speedup\n", *jobs)
		r.Note = "single-CPU host: parallel timing skipped and speedup recorded as null; regenerate on a multi-core runner for a meaningful number"
		parallelCSV, _, err := timeRun(params, *jobs)
		if err != nil {
			return err
		}
		if serialCSV != parallelCSV {
			return fmt.Errorf("CSV output diverged between -jobs=1 and -jobs=%d; the scheduler broke its determinism contract", *jobs)
		}
	} else {
		parallelCSV, parallelSec, err := timeRun(params, *jobs)
		if err != nil {
			return err
		}
		fmt.Printf("parallel (-jobs=%d): %.2fs  (%.2fx)\n", *jobs, parallelSec, serialSec/parallelSec)
		if serialCSV != parallelCSV {
			return fmt.Errorf("CSV output diverged between -jobs=1 and -jobs=%d; the scheduler broke its determinism contract", *jobs)
		}
		speedup := serialSec / parallelSec
		r.ParallelSeconds = &parallelSec
		r.Speedup = &speedup
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	fmt.Printf("report written to %s\n", *out)
	return nil
}

// timeRun executes the sweep with the given worker bound and returns the
// rendered CSV plus the wall-clock seconds of the sweep itself.
func timeRun(p experiment.ComparisonParams, jobs int) (string, float64, error) {
	p.Jobs = jobs
	start := time.Now()
	cmp, err := experiment.RunComparison(p)
	if err != nil {
		return "", 0, fmt.Errorf("jobs=%d: %w", jobs, err)
	}
	elapsed := time.Since(start).Seconds()
	var b strings.Builder
	if err := experiment.WriteComparisonCSV(&b, cmp); err != nil {
		return "", 0, err
	}
	return b.String(), elapsed, nil
}
