package chiron_test

// Bit-exact determinism tests for the parallel compute core: the same seed
// must produce byte-identical training results no matter how many kernel
// workers are configured or what GOMAXPROCS happens to be. The GEMM kernels
// guarantee this by fixing the floating-point reduction order (each output
// row accumulates k-ascending regardless of worker banding), and these tests
// pin that contract at the federated-training, PPO, and full-system levels.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"chiron"
	"chiron/internal/accuracy"
	"chiron/internal/dataset"
	"chiron/internal/experiment"
	"chiron/internal/fl"
	"chiron/internal/mat"
	"chiron/internal/nn"
	"chiron/internal/rl"
)

// hashFloats folds the exact bit patterns of v into h, so two runs collide
// only when every float is byte-identical.
func hashFloats(h interface{ Write([]byte) (int, error) }, v []float64) {
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
}

// flFingerprint runs three FedAvg rounds over three IID clients with the
// given worker count and returns a hash of the final global model and its
// test accuracy.
func flFingerprint(t *testing.T, workers int) uint64 {
	t.Helper()
	mat.SetWorkers(workers)
	defer mat.SetWorkers(0)

	rng := rand.New(rand.NewSource(99))
	full, err := dataset.Generate(rng, dataset.SynthMNIST(240))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := full.Split(rng, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.IID{}.Partition(rng, train, 3)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(r *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(r, full.Dim(), 16, full.Classes)
	}
	server, err := fl.NewServer(test, factory, rng)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, len(parts))
	for i, idx := range parts {
		local, err := train.Subset(idx)
		if err != nil {
			t.Fatal(err)
		}
		if clients[i], err = fl.NewClient(i, local, factory, fl.DefaultConfig(), rand.New(rand.NewSource(100+int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		global := server.Global()
		updates := make([]fl.Update, 0, len(clients))
		for _, c := range clients {
			params, _, err := c.TrainRound(global)
			if err != nil {
				t.Fatal(err)
			}
			updates = append(updates, fl.Update{Client: c.ID(), Params: params, Samples: c.NumSamples()})
		}
		if err := server.Aggregate(updates); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := server.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	hashFloats(h, server.Global())
	hashFloats(h, []float64{acc})
	return h.Sum64()
}

// ppoFingerprint runs two PPO updates over a fixed 32-transition episode and
// hashes the resulting policy parameters plus a value estimate.
func ppoFingerprint(t *testing.T, workers int) uint64 {
	t.Helper()
	mat.SetWorkers(workers)
	defer mat.SetWorkers(0)

	rng := rand.New(rand.NewSource(7))
	stateDim := 3*5*4 + 2
	agent, err := rl.NewPPO(rng, stateDim, 1, rl.DefaultPPOConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf := &rl.Buffer{}
	state := make([]float64, stateDim)
	for i := range state {
		state[i] = rng.Float64()
	}
	for i := 0; i < 32; i++ {
		act, lp, err := agent.Act(rng, state)
		if err != nil {
			t.Fatal(err)
		}
		buf.Add(rl.Transition{State: state, Action: act, Reward: rng.Float64(), NextState: state, Done: i == 31, LogProb: lp})
	}
	for i := 0; i < 2; i++ {
		if _, err := agent.Update(buf); err != nil {
			t.Fatal(err)
		}
	}
	h := fnv.New64a()
	for _, p := range agent.Policy().Params() {
		hashFloats(h, p.Value.Data())
	}
	v, err := agent.Value(state)
	if err != nil {
		t.Fatal(err)
	}
	hashFloats(h, []float64{v})
	return h.Sum64()
}

// systemFingerprint trains a small full system (surrogate accuracy) for two
// episodes and renders the per-episode results.
func systemFingerprint(t *testing.T, workers int) string {
	t.Helper()
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes:   3,
		Budget:  300,
		Seed:    5,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mat.SetWorkers(0)
	results, err := sys.Train(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", results)
}

func TestFLDeterministicAcrossWorkers(t *testing.T) {
	base := flFingerprint(t, 1)
	if got := flFingerprint(t, 4); got != base {
		t.Fatalf("fl fingerprint differs: workers=1 %x, workers=4 %x", base, got)
	}
	// workers=0 delegates to GOMAXPROCS; vary it to cover that path too.
	prev := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(prev)
	if got := flFingerprint(t, 0); got != base {
		t.Fatalf("fl fingerprint differs: workers=1 %x, GOMAXPROCS=3 %x", base, got)
	}
}

func TestPPODeterministicAcrossWorkers(t *testing.T) {
	base := ppoFingerprint(t, 1)
	if got := ppoFingerprint(t, 4); got != base {
		t.Fatalf("ppo fingerprint differs: workers=1 %x, workers=4 %x", base, got)
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	if got := ppoFingerprint(t, 0); got != base {
		t.Fatalf("ppo fingerprint differs: workers=1 %x, GOMAXPROCS=2 %x", base, got)
	}
}

func TestSystemTrainDeterministicAcrossWorkers(t *testing.T) {
	base := systemFingerprint(t, 1)
	if got := systemFingerprint(t, 4); got != base {
		t.Fatalf("system training diverged between workers=1 and workers=4:\n%s\nvs\n%s", base, got)
	}
}

// comparisonCSV runs a small fig4-shaped sweep with the given job-scheduler
// worker bound and returns the rendered CSV bytes.
func comparisonCSV(t *testing.T, jobs int) string {
	t.Helper()
	cmp, err := experiment.RunComparison(experiment.ComparisonParams{
		Preset: accuracy.PresetMNIST, Nodes: 3,
		Budgets:       []float64{60, 120},
		Mechanisms:    []experiment.MechanismKind{experiment.KindChiron, experiment.KindGreedy},
		TrainEpisodes: 1, EvalEpisodes: 1, Seed: 11,
		Jobs: jobs,
	})
	if err != nil {
		t.Fatalf("RunComparison(jobs=%d): %v", jobs, err)
	}
	var buf bytes.Buffer
	if err := experiment.WriteComparisonCSV(&buf, cmp); err != nil {
		t.Fatalf("WriteComparisonCSV: %v", err)
	}
	return buf.String()
}

// convergenceCSV runs a small fig3-shaped learning-curve job with the given
// worker bound and returns the rendered CSV bytes.
func convergenceCSV(t *testing.T, jobs int) string {
	t.Helper()
	conv, err := experiment.RunConvergence(experiment.ConvergenceParams{
		Preset: accuracy.PresetMNIST, Nodes: 3, Budget: 120,
		Mechanism: experiment.KindChiron, Episodes: 2, Window: 2, Seed: 11,
		Jobs: jobs,
	})
	if err != nil {
		t.Fatalf("RunConvergence(jobs=%d): %v", jobs, err)
	}
	var buf bytes.Buffer
	if err := experiment.WriteConvergenceCSV(&buf, conv); err != nil {
		t.Fatalf("WriteConvergenceCSV: %v", err)
	}
	return buf.String()
}

// TestComparisonDeterministicAcrossJobs pins the experiment scheduler's
// contract: a sweep run serially and at -jobs=8 must produce byte-identical
// CSV output, because jobs are fully independent (each owns every RNG it
// touches) and results land in index-addressed slots.
func TestComparisonDeterministicAcrossJobs(t *testing.T) {
	base := comparisonCSV(t, 1)
	if got := comparisonCSV(t, 8); got != base {
		t.Fatalf("comparison CSV diverged between jobs=1 and jobs=8:\n%s\nvs\n%s", base, got)
	}
	// jobs=0 delegates to GOMAXPROCS; vary it to cover that path too.
	prev := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(prev)
	if got := comparisonCSV(t, 0); got != base {
		t.Fatalf("comparison CSV diverged between jobs=1 and GOMAXPROCS=3:\n%s\nvs\n%s", base, got)
	}
}

func TestConvergenceDeterministicAcrossJobs(t *testing.T) {
	base := convergenceCSV(t, 1)
	if got := convergenceCSV(t, 8); got != base {
		t.Fatalf("convergence CSV diverged between jobs=1 and jobs=8:\n%s\nvs\n%s", base, got)
	}
}
