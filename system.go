package chiron

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/dataset"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/fl"
	"chiron/internal/mat"
	"chiron/internal/nn"
)

// SystemConfig assembles a complete edge-learning system: fleet, learning
// task, budget, and agent. Zero values select the paper's defaults.
type SystemConfig struct {
	// Nodes is the fleet size N (required).
	Nodes int
	// Fleet overrides the generated fleet spec (nil = paper defaults).
	Fleet *FleetSpec
	// CustomNodes supplies an explicit fleet, bypassing random generation.
	CustomNodes []*Node
	// Dataset selects the learning task (default DatasetMNIST).
	Dataset Dataset
	// Budget is η, the total incentive budget (required).
	Budget float64
	// Lambda is λ, the accuracy preference (0 = paper default 2000).
	Lambda float64
	// Seed drives all stochasticity (0 = seed 1).
	Seed int64
	// RealTraining switches the accuracy signal from the calibrated
	// surrogate curve to actual FedAvg training of a pure-Go MLP on the
	// synthetic dataset. Slower, but exercises the entire paper pipeline.
	RealTraining bool
	// Agent overrides the hierarchical agent configuration (nil = tuned
	// defaults).
	Agent *AgentConfig
	// Accuracy overrides the accuracy model entirely (advanced use; takes
	// precedence over Dataset and RealTraining).
	Accuracy AccuracyModel
	// Churn schedules node arrivals and departures across rounds (nil = the
	// paper's fixed fleet). Build one with ParseChurnScript or
	// NewChurnSampler.
	Churn ChurnSchedule
	// Workers bounds the compute worker pool used by the matrix kernels
	// (0 = GOMAXPROCS). Results are bit-identical at any worker count; the
	// setting is process-wide, so the last constructed system wins.
	Workers int
}

// System is the assembled reproduction: an environment and a hierarchical
// agent ready to train, evaluate, and compare against baselines.
type System struct {
	cfg   SystemConfig
	env   *edgeenv.Env
	agent *core.Chiron
}

// NewSystem validates cfg and assembles the environment and agent.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Nodes <= 0 && len(cfg.CustomNodes) == 0 {
		return nil, fmt.Errorf("chiron: SystemConfig.Nodes must be positive (or CustomNodes non-empty)")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("chiron: SystemConfig.Budget must be positive")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("chiron: SystemConfig.Workers %d must be >= 0 (0 = GOMAXPROCS)", cfg.Workers)
	}
	if cfg.Dataset == 0 {
		cfg.Dataset = DatasetMNIST
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers != 0 {
		mat.SetWorkers(cfg.Workers)
	}

	nodes := cfg.CustomNodes
	if len(nodes) == 0 {
		spec := device.DefaultFleetSpec(cfg.Nodes)
		if cfg.Fleet != nil {
			spec = *cfg.Fleet
		}
		var err error
		nodes, err = device.NewFleet(rand.New(rand.NewSource(cfg.Seed)), spec)
		if err != nil {
			return nil, fmt.Errorf("chiron: fleet: %w", err)
		}
	}

	acc := cfg.Accuracy
	if acc == nil {
		var err error
		acc, err = buildAccuracyModel(cfg, len(nodes))
		if err != nil {
			return nil, err
		}
	}

	envCfg := edgeenv.DefaultConfig(nodes, acc, cfg.Budget)
	if cfg.Lambda > 0 {
		envCfg.Lambda = cfg.Lambda
	}
	envCfg.Churn = cfg.Churn
	env, err := edgeenv.New(envCfg)
	if err != nil {
		return nil, fmt.Errorf("chiron: environment: %w", err)
	}

	agentCfg := DefaultAgentConfig(cfg.Seed)
	if cfg.Agent != nil {
		agentCfg = *cfg.Agent
	}
	agent, err := core.New(env, agentCfg)
	if err != nil {
		return nil, fmt.Errorf("chiron: agent: %w", err)
	}
	return &System{cfg: cfg, env: env, agent: agent}, nil
}

// buildAccuracyModel selects between the surrogate curve and real FedAvg
// training for the configured dataset.
func buildAccuracyModel(cfg SystemConfig, nodes int) (accuracy.Model, error) {
	if cfg.RealTraining {
		spec, hidden := realTrainingTask(cfg.Dataset)
		factory := func(rng *rand.Rand) (*nn.Network, error) {
			return nn.NewClassifierMLP(rng, spec.Dim(), hidden, spec.Classes)
		}
		return accuracy.NewRealTrainer(accuracy.RealTrainerConfig{
			Spec:         spec,
			Factory:      factory,
			Train:        fl.DefaultConfig(),
			NumNodes:     nodes,
			TestFraction: 0.2,
			Seed:         cfg.Seed,
		})
	}
	preset, err := presetFor(cfg.Dataset, nodes)
	if err != nil {
		return nil, err
	}
	return accuracy.NewPresetCurve(rand.New(rand.NewSource(cfg.Seed+1)), preset, nodes)
}

// realTrainingTask returns the synthetic dataset spec and MLP width used
// when RealTraining is enabled. Sample counts are sized so a 500-episode
// DRL sweep stays tractable on CPU, and the noise levels are raised
// relative to the surrogate presets so the measured accuracy climbs
// gradually over tens of rounds instead of saturating immediately; see
// DESIGN.md.
func realTrainingTask(d Dataset) (dataset.SynthSpec, int) {
	const samplesPerEpisode = 1200
	switch d {
	case DatasetFashionMNIST:
		spec := dataset.SynthFashion(samplesPerEpisode)
		spec.Noise = 1.2
		spec.Overlap = 0.35
		return spec, 32
	case DatasetCIFAR10:
		spec := dataset.SynthCIFAR(samplesPerEpisode)
		spec.Noise = 1.5
		spec.Overlap = 0.55
		return spec, 48
	default:
		spec := dataset.SynthMNIST(samplesPerEpisode)
		spec.Noise = 0.9
		spec.Overlap = 0.2
		spec.Jitter = 2
		return spec, 32
	}
}

// presetFor maps a dataset and fleet size to the calibrated surrogate
// preset (the 100-node MNIST preset is fit to the paper's Table I).
func presetFor(d Dataset, nodes int) (accuracy.Preset, error) {
	switch d {
	case DatasetMNIST:
		if nodes >= 50 {
			return accuracy.PresetMNISTLarge, nil
		}
		return accuracy.PresetMNIST, nil
	case DatasetFashionMNIST:
		return accuracy.PresetFashion, nil
	case DatasetCIFAR10:
		return accuracy.PresetCIFAR, nil
	default:
		return 0, fmt.Errorf("chiron: unknown dataset %v", d)
	}
}

// Env returns the system's environment.
func (s *System) Env() *Env { return s.env }

// Agent returns the hierarchical agent.
func (s *System) Agent() *Agent { return s.agent }

// Train runs the Algorithm 1 training loop for the given number of
// episodes, invoking callback (if non-nil) after each episode.
func (s *System) Train(episodes int, callback func(EpisodeResult)) ([]EpisodeResult, error) {
	return s.agent.Train(episodes, callback)
}

// Evaluate plays episodes with deterministic (mean) actions and no
// learning, returning averaged metrics.
func (s *System) Evaluate(episodes int) (EpisodeResult, error) {
	return s.agent.Evaluate(episodes)
}

// NewBaselineDRL builds the DRL-based comparison mechanism on a fresh
// environment identical to the system's (same fleet, same task seed).
func (s *System) NewBaselineDRL() (*DRLBased, error) {
	env, err := s.cloneEnv()
	if err != nil {
		return nil, err
	}
	cfg := baselines.DefaultDRLBasedConfig()
	cfg.Seed = s.cfg.Seed
	cfg.PPO.CriticLR = 3e-4
	return baselines.NewDRLBased(env, cfg)
}

// NewBaselineGreedy builds the Greedy comparison mechanism on a fresh
// environment identical to the system's.
func (s *System) NewBaselineGreedy() (*Greedy, error) {
	env, err := s.cloneEnv()
	if err != nil {
		return nil, err
	}
	cfg := baselines.DefaultGreedyConfig()
	cfg.Seed = s.cfg.Seed
	return baselines.NewGreedy(env, cfg)
}

// cloneEnv rebuilds an environment with the same fleet and a fresh
// accuracy model so baselines do not share mutable state with the agent.
func (s *System) cloneEnv() (*edgeenv.Env, error) {
	acc := s.cfg.Accuracy
	if acc == nil {
		var err error
		acc, err = buildAccuracyModel(s.cfg, s.env.NumNodes())
		if err != nil {
			return nil, err
		}
	}
	envCfg := s.env.Config()
	envCfg.Accuracy = acc
	env, err := edgeenv.New(envCfg)
	if err != nil {
		return nil, fmt.Errorf("chiron: clone environment: %w", err)
	}
	return env, nil
}
