// Robustness stresses the learned mechanism beyond the paper's idealized
// assumptions: per-round bandwidth variation (the paper's B_{i,k} made
// real) and random node unavailability. It trains Chiron on the clean
// environment, then evaluates the same policy under increasing churn —
// the degradation curve a deployment engineer would want before rollout.
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"math/rand"
	"os"

	"chiron"
	"chiron/internal/accuracy"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes   = 5
		budget  = 300
		seed    = 7
		eps     = 250
		evalEps = 3
	)

	// Train on the clean environment.
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes: nodes, Dataset: chiron.DatasetMNIST, Budget: budget, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("training Chiron on the clean environment (%d episodes)...\n", eps)
	if _, err := sys.Train(eps, nil); err != nil {
		return err
	}
	ck := sys.Agent().Checkpoint()

	// Evaluate the frozen policy under churn. Each scenario rebuilds the
	// environment with the same fleet but jitter/availability enabled and
	// restores the trained weights into a fresh agent bound to it.
	fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(nodes))
	if err != nil {
		return err
	}
	scenarios := []struct {
		name         string
		jitter       float64
		availability float64
	}{
		{"clean (paper assumptions)", 0, 0},
		{"±10% bandwidth jitter", 0.10, 0},
		{"±30% bandwidth jitter", 0.30, 0},
		{"90% node availability", 0, 0.90},
		{"70% node availability", 0, 0.70},
		{"±30% jitter + 80% availability", 0.30, 0.80},
	}
	fmt.Printf("\nfrozen policy under churn (%d eval episodes each):\n", evalEps)
	fmt.Printf("%-34s %10s %8s %10s\n", "scenario", "accuracy", "rounds", "time-eff")
	for _, sc := range scenarios {
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
		if err != nil {
			return err
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, budget)
		cfg.CommJitter = sc.jitter
		cfg.Availability = sc.availability
		if sc.jitter > 0 || (sc.availability > 0 && sc.availability < 1) {
			cfg.Rng = rand.New(rand.NewSource(seed + 2))
		}
		env, err := edgeenv.New(cfg)
		if err != nil {
			return err
		}
		agent, err := core.New(env, chiron.DefaultAgentConfig(seed))
		if err != nil {
			return err
		}
		if err := agent.Restore(ck); err != nil {
			return err
		}
		res, err := agent.Evaluate(evalEps)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %10.3f %8d %9.1f%%\n",
			sc.name, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency)
	}
	fmt.Println("\nthe policy degrades gracefully: jitter erodes time consistency")
	fmt.Println("(the inner agent planned for nominal upload times), while node")
	fmt.Println("churn mostly slows the accuracy climb via missed participation.")
	return nil
}
