// Robustness stresses the learned mechanism beyond the paper's idealized
// assumptions. It trains Chiron on the clean environment, then evaluates
// the same frozen policy under escalating failure regimes: bandwidth
// jitter and node churn (the soft knobs), and injected faults from
// internal/faults — node crashes, stragglers, dropped uploads, and
// corrupted updates — with a round deadline, bounded retries, and
// zero payment to failed nodes. The degradation table is what a
// deployment engineer would want before rollout.
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"chiron"
	"chiron/internal/accuracy"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/market"
)

func main() {
	if err := run(os.Stdout, 5, 250, 3, 300); err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes, eps, evalEps int, budget float64) error {
	const seed = 7

	// Train on the clean environment.
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes: nodes, Dataset: chiron.DatasetMNIST, Budget: budget, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "training Chiron on the clean environment (%d episodes)...\n", eps)
	if _, err := sys.Train(eps, nil); err != nil {
		return err
	}
	ck := sys.Agent().Checkpoint()

	// Evaluate the frozen policy under churn and injected faults. Each
	// scenario rebuilds the environment with the same fleet and restores
	// the trained weights into a fresh agent bound to it.
	fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(nodes))
	if err != nil {
		return err
	}
	// Deadline: 20% above the slowest clean response, so healthy nodes
	// are never cut but crashes time out and big stragglers are dropped.
	var deadline float64
	for _, n := range fleet {
		if t := n.ComputeTime(n.FreqMin) + n.CommTime; t*1.2 > deadline {
			deadline = t * 1.2
		}
	}
	faultMix := faults.Rates{Crash: 0.03, Straggle: 0.06, Drop: 0.05, Corrupt: 0.03}
	scenarios := []struct {
		name         string
		jitter       float64
		availability float64
		rates        faults.Rates
	}{
		{"clean (paper assumptions)", 0, 0, faults.Rates{}},
		{"±10% bandwidth jitter", 0.10, 0, faults.Rates{}},
		{"±30% bandwidth jitter", 0.30, 0, faults.Rates{}},
		{"90% node availability", 0, 0.90, faults.Rates{}},
		{"70% node availability", 0, 0.70, faults.Rates{}},
		{"faults: light (1x mix)", 0, 0, faultMix},
		{"faults: moderate (3x mix)", 0, 0, faultMix.Scale(3)},
		{"faults: severe (6x mix)", 0, 0, faultMix.Scale(6)},
		{"severe faults + 30% jitter", 0.30, 0, faultMix.Scale(6)},
	}
	fmt.Fprintf(w, "\nfrozen policy under churn and injected faults (%d eval episodes each):\n", evalEps)
	fmt.Fprintf(w, "%-30s %10s %8s %10s %10s\n", "scenario", "accuracy", "rounds", "time-eff", "failures")
	for _, sc := range scenarios {
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
		if err != nil {
			return err
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, budget)
		cfg.CommJitter = sc.jitter
		cfg.Availability = sc.availability
		if sc.jitter > 0 || (sc.availability > 0 && sc.availability < 1) {
			cfg.Rng = rand.New(rand.NewSource(seed + 2))
		}
		if sc.rates.Any() {
			sampler, err := faults.NewSampler(sc.rates, seed+3)
			if err != nil {
				return err
			}
			cfg.Faults = sampler
			cfg.RoundDeadline = deadline
			cfg.MaxRetries = 2
			cfg.RetryBackoff = 1
		}
		env, err := edgeenv.New(cfg)
		if err != nil {
			return err
		}
		agent, err := core.New(env, chiron.DefaultAgentConfig(seed))
		if err != nil {
			return err
		}
		if err := agent.Restore(ck); err != nil {
			return err
		}
		res, err := agent.Evaluate(evalEps)
		if err != nil {
			return err
		}
		// The ledger still holds the final evaluation episode's rounds,
		// so its outcomes give a representative failure count.
		var failures int
		for _, r := range env.Ledger().Rounds() {
			failures += r.Failures()
		}
		fmt.Fprintf(w, "%-30s %10.3f %8d %9.1f%% %10d\n",
			sc.name, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency, failures)
	}
	// Second sweep: fleet churn proper. Unlike the availability knob above
	// (a per-round coin flip), a ChurnSchedule evolves membership as a
	// Markov chain — departed nodes stay gone until they re-arrive, and a
	// mid-round departure forfeits its payment under the failure-payment
	// rule. The table shows the frozen policy degrading as the fleet gets
	// flakier.
	churnGrid := []struct {
		name           string
		depart, arrive float64
	}{
		{"stable fleet (no churn)", 0, 0},
		{"gentle churn (5% / 60%)", 0.05, 0.60},
		{"moderate churn (15% / 50%)", 0.15, 0.50},
		{"heavy churn (30% / 40%)", 0.30, 0.40},
		{"exodus (50% / 20%)", 0.50, 0.20},
	}
	fmt.Fprintf(w, "\nfrozen policy under Markov fleet churn (depart-rate / arrive-rate):\n")
	fmt.Fprintf(w, "%-30s %10s %8s %10s %10s %10s\n", "scenario", "accuracy", "rounds", "time-eff", "absent", "departed")
	for _, sc := range churnGrid {
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
		if err != nil {
			return err
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, budget)
		if sc.depart > 0 {
			cfg.Churn, err = faults.NewChurnSampler(faults.ChurnRates{
				Depart: sc.depart, Arrive: sc.arrive,
			}, seed+4)
			if err != nil {
				return err
			}
		}
		env, err := edgeenv.New(cfg)
		if err != nil {
			return err
		}
		agent, err := core.New(env, chiron.DefaultAgentConfig(seed))
		if err != nil {
			return err
		}
		if err := agent.Restore(ck); err != nil {
			return err
		}
		res, err := agent.Evaluate(evalEps)
		if err != nil {
			return err
		}
		var absent, departed int
		for _, r := range env.Ledger().Rounds() {
			for _, o := range r.Outcomes {
				switch o {
				case market.OutcomeAbsent:
					absent++
				case market.OutcomeDeparted:
					departed++
				}
			}
		}
		fmt.Fprintf(w, "%-30s %10.3f %8d %9.1f%% %10d %10d\n",
			sc.name, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency, absent, departed)
	}

	fmt.Fprintln(w, "\nthe policy degrades gracefully: jitter erodes time consistency,")
	fmt.Fprintln(w, "node churn slows the accuracy climb via missed participation, and")
	fmt.Fprintln(w, "injected faults cost failed rounds — but the deadline, quorum, and")
	fmt.Fprintln(w, "no-pay-on-failure rules keep every episode running within budget.")
	return nil
}
