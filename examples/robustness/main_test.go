package main

import (
	"io"
	"testing"
)

// TestRunSmoke trains a tiny policy and sweeps all nine churn/fault
// scenarios with one evaluation episode each.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 3, 2, 1, 60); err != nil {
		t.Fatalf("run: %v", err)
	}
}
