// Largescale reproduces the paper's Table I scenario: Chiron incentivizing
// 100 edge nodes on the MNIST task across four budgets, reporting final
// accuracy, training rounds, and time efficiency per budget.
//
// With -fleet it instead exercises the struct-of-arrays fleet core: full
// compact-mode rounds at growing fleet sizes, reporting rounds/sec,
// ns/node·round, and resident bytes/node — the same scaling ladder behind
// BENCH_fleet.json (cmd/fleetbench writes the committed artifact; this
// mode is the runnable walkthrough of the same code path).
//
// Run with:
//
//	go run ./examples/largescale            (fast pass, 150 episodes/budget)
//	go run ./examples/largescale -full      (paper scale, 500 episodes/budget)
//	go run ./examples/largescale -fleet     (fleet scaling benchmark, 1k → 1M nodes)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chiron"
	"chiron/internal/experiment"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full 500 episodes per budget")
	fleet := flag.Bool("fleet", false, "run the struct-of-arrays fleet scaling benchmark instead of Table I")
	flag.Parse()
	if *fleet {
		if err := runFleet(os.Stdout, experiment.DefaultFleetBenchCases()); err != nil {
			fmt.Fprintf(os.Stderr, "largescale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	episodes := 150
	if *full {
		episodes = 500
	}
	if err := run(os.Stdout, 100, episodes, []float64{140, 220, 300, 380}); err != nil {
		fmt.Fprintf(os.Stderr, "largescale: %v\n", err)
		os.Exit(1)
	}
}

// runFleet drives the compact-mode scaling ladder and renders the table
// the README's fleet-scale section quotes.
func runFleet(w io.Writer, cases []experiment.FleetBenchCase) error {
	fmt.Fprintln(w, "Struct-of-arrays fleet core: full rounds (Offer→Respond→Execute→Settle→Commit),")
	fmt.Fprintln(w, "compact records, all nodes joining at 80% saturation prices.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %8s %14s %16s %12s\n", "nodes", "rounds", "rounds/sec", "ns/node·round", "bytes/node")
	results, err := experiment.RunFleetBench(experiment.FleetBenchParams{Cases: cases, Seed: 7})
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%-10d %8d %14.1f %16.1f %12.0f\n",
			r.Nodes, r.Rounds, r.RoundsPerSec, r.NsPerNodeRound, r.BytesPerNode)
	}
	fmt.Fprintln(w, "\nper-round allocations are independent of N: the round State is reused and")
	fmt.Fprintln(w, "committed records carry streamed aggregates (see DESIGN.md §13).")
	return nil
}

func run(w io.Writer, nodes, episodes int, budgets []float64) error {
	fmt.Fprintf(w, "Table I reproduction: %d nodes, MNIST, %d episodes per budget\n\n", nodes, episodes)
	fmt.Fprintf(w, "%-8s %10s %8s %16s\n", "η", "Accuracy", "Rounds", "Time Efficiency")
	for _, eta := range budgets {
		start := time.Now()
		sys, err := chiron.NewSystem(chiron.SystemConfig{
			Nodes:   nodes,
			Dataset: chiron.DatasetMNIST, // ≥50 nodes selects the Table-I-calibrated curve
			Budget:  eta,
			Seed:    7,
		})
		if err != nil {
			return err
		}
		if _, err := sys.Train(episodes, nil); err != nil {
			return err
		}
		res, err := sys.Evaluate(3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8.0f %10.3f %8d %15.1f%%   (%v)\n",
			eta, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency, time.Since(start).Round(time.Second))
	}
	fmt.Fprintln(w, "\npaper's Table I for reference:")
	fmt.Fprintln(w, "  η=140 → 0.916 / 16 rounds / 71.3%")
	fmt.Fprintln(w, "  η=220 → 0.929 / 23 rounds / 72.2%")
	fmt.Fprintln(w, "  η=300 → 0.938 / 31 rounds / 72.7%")
	fmt.Fprintln(w, "  η=380 → 0.943 / 34 rounds / 73.4%")
	return nil
}
