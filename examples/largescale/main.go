// Largescale reproduces the paper's Table I scenario: Chiron incentivizing
// 100 edge nodes on the MNIST task across four budgets, reporting final
// accuracy, training rounds, and time efficiency per budget.
//
// Run with:
//
//	go run ./examples/largescale            (fast pass, 150 episodes/budget)
//	go run ./examples/largescale -full      (paper scale, 500 episodes/budget)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chiron"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full 500 episodes per budget")
	flag.Parse()
	episodes := 150
	if *full {
		episodes = 500
	}
	if err := run(os.Stdout, 100, episodes, []float64{140, 220, 300, 380}); err != nil {
		fmt.Fprintf(os.Stderr, "largescale: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes, episodes int, budgets []float64) error {
	fmt.Fprintf(w, "Table I reproduction: %d nodes, MNIST, %d episodes per budget\n\n", nodes, episodes)
	fmt.Fprintf(w, "%-8s %10s %8s %16s\n", "η", "Accuracy", "Rounds", "Time Efficiency")
	for _, eta := range budgets {
		start := time.Now()
		sys, err := chiron.NewSystem(chiron.SystemConfig{
			Nodes:   nodes,
			Dataset: chiron.DatasetMNIST, // ≥50 nodes selects the Table-I-calibrated curve
			Budget:  eta,
			Seed:    7,
		})
		if err != nil {
			return err
		}
		if _, err := sys.Train(episodes, nil); err != nil {
			return err
		}
		res, err := sys.Evaluate(3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8.0f %10.3f %8d %15.1f%%   (%v)\n",
			eta, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency, time.Since(start).Round(time.Second))
	}
	fmt.Fprintln(w, "\npaper's Table I for reference:")
	fmt.Fprintln(w, "  η=140 → 0.916 / 16 rounds / 71.3%")
	fmt.Fprintln(w, "  η=220 → 0.929 / 23 rounds / 72.2%")
	fmt.Fprintln(w, "  η=300 → 0.938 / 31 rounds / 72.7%")
	fmt.Fprintln(w, "  η=380 → 0.943 / 34 rounds / 73.4%")
	return nil
}
