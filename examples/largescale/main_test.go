package main

import (
	"io"
	"testing"
)

// TestRunSmoke runs the Table I sweep with one tiny budget and a small
// fleet, keeping the example exercised without the paper-scale cost.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 4, 2, []float64{40}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
