package main

import (
	"io"
	"testing"

	"chiron/internal/experiment"
)

// TestRunSmoke runs the Table I sweep with one tiny budget and a small
// fleet, keeping the example exercised without the paper-scale cost.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 4, 2, []float64{40}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunFleetSmoke exercises the -fleet mode on a reduced ladder.
func TestRunFleetSmoke(t *testing.T) {
	cases := []experiment.FleetBenchCase{{Nodes: 256, Rounds: 4}, {Nodes: 1024, Rounds: 2}}
	if err := runFleet(io.Discard, cases); err != nil {
		t.Fatalf("runFleet: %v", err)
	}
}
