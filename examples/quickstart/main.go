// Quickstart: train Chiron on the paper's small-scale setting — five edge
// nodes, the MNIST-difficulty task, budget η=300 — then evaluate the
// learned pricing policy deterministically and compare it against both
// comparison mechanisms from the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"chiron"
	"chiron/internal/core"
)

func main() {
	if err := run(os.Stdout, 5, 200, 3, 300); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes, episodes, evalEps int, budget float64) error {
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes:   nodes,
		Dataset: chiron.DatasetMNIST,
		Budget:  budget,
		Seed:    7,
	})
	if err != nil {
		return err
	}

	// Training for ~200 episodes is enough to see the pacing behaviour
	// emerge; the paper trains 500.
	fmt.Fprintf(w, "training Chiron for %d episodes on %d nodes (budget %.0f)...\n",
		episodes, sys.Env().NumNodes(), sys.Env().Ledger().Budget())
	_, err = sys.Train(episodes, func(r chiron.EpisodeResult) {
		if r.Episode%40 == 0 {
			fmt.Fprintf(w, "  episode %3d: rounds=%3d accuracy=%.3f reward=%8.1f\n",
				r.Episode, r.Rounds, r.FinalAccuracy, r.ExteriorReturn)
		}
	})
	if err != nil {
		return err
	}

	// Evaluate all three mechanisms under the identical budget.
	chironRes, err := sys.Evaluate(evalEps)
	if err != nil {
		return err
	}
	drl, err := sys.NewBaselineDRL()
	if err != nil {
		return err
	}
	if _, err := drl.Train(episodes, nil); err != nil {
		return err
	}
	drlRes, err := core.EvaluateMechanism(drl, evalEps)
	if err != nil {
		return err
	}
	greedy, err := sys.NewBaselineGreedy()
	if err != nil {
		return err
	}
	if _, err := greedy.Train(episodes, nil); err != nil {
		return err
	}
	greedyRes, err := core.EvaluateMechanism(greedy, evalEps)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\nsame budget, three mechanisms:")
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s\n", "mechanism", "accuracy", "rounds", "time-eff", "utility")
	for _, row := range []struct {
		name string
		r    chiron.EpisodeResult
	}{
		{"Chiron", chironRes},
		{"DRL-based", drlRes},
		{"Greedy", greedyRes},
	} {
		fmt.Fprintf(w, "%-12s %10.3f %8d %9.1f%% %10.1f\n",
			row.name, row.r.FinalAccuracy, row.r.Rounds, 100*row.r.TimeEfficiency, row.r.ServerUtility)
	}
	fmt.Fprintln(w, "\nChiron paces the budget across more training rounds, ending with the")
	fmt.Fprintln(w, "best model under the same total payment (the paper's Fig. 4 behaviour).")
	return nil
}
