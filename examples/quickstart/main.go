// Quickstart: train Chiron on the paper's small-scale setting — five edge
// nodes, the MNIST-difficulty task, budget η=300 — then evaluate the
// learned pricing policy deterministically and compare it against both
// comparison mechanisms from the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"chiron"
	"chiron/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes:   5,
		Dataset: chiron.DatasetMNIST,
		Budget:  300,
		Seed:    7,
	})
	if err != nil {
		return err
	}

	// Train the hierarchical agent. 200 episodes is enough to see the
	// pacing behaviour emerge; the paper trains 500.
	const episodes = 200
	fmt.Printf("training Chiron for %d episodes on %d nodes (budget %.0f)...\n",
		episodes, sys.Env().NumNodes(), sys.Env().Ledger().Budget())
	_, err = sys.Train(episodes, func(r chiron.EpisodeResult) {
		if r.Episode%40 == 0 {
			fmt.Printf("  episode %3d: rounds=%3d accuracy=%.3f reward=%8.1f\n",
				r.Episode, r.Rounds, r.FinalAccuracy, r.ExteriorReturn)
		}
	})
	if err != nil {
		return err
	}

	// Evaluate all three mechanisms under the identical budget.
	chironRes, err := sys.Evaluate(3)
	if err != nil {
		return err
	}
	drl, err := sys.NewBaselineDRL()
	if err != nil {
		return err
	}
	if _, err := drl.Train(episodes, nil); err != nil {
		return err
	}
	drlRes, err := core.EvaluateMechanism(drl, 3)
	if err != nil {
		return err
	}
	greedy, err := sys.NewBaselineGreedy()
	if err != nil {
		return err
	}
	if _, err := greedy.Train(episodes, nil); err != nil {
		return err
	}
	greedyRes, err := core.EvaluateMechanism(greedy, 3)
	if err != nil {
		return err
	}

	fmt.Println("\nsame budget, three mechanisms:")
	fmt.Printf("%-12s %10s %8s %10s %10s\n", "mechanism", "accuracy", "rounds", "time-eff", "utility")
	for _, row := range []struct {
		name string
		r    chiron.EpisodeResult
	}{
		{"Chiron", chironRes},
		{"DRL-based", drlRes},
		{"Greedy", greedyRes},
	} {
		fmt.Printf("%-12s %10.3f %8d %9.1f%% %10.1f\n",
			row.name, row.r.FinalAccuracy, row.r.Rounds, 100*row.r.TimeEfficiency, row.r.ServerUtility)
	}
	fmt.Println("\nChiron paces the budget across more training rounds, ending with the")
	fmt.Println("best model under the same total payment (the paper's Fig. 4 behaviour).")
	return nil
}
