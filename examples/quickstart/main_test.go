package main

import (
	"io"
	"testing"
)

// TestRunSmoke drives the full quickstart flow — train Chiron, train both
// learned baselines, evaluate all three — at smoke scale, so the example
// keeps compiling and running as the APIs underneath it evolve.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 3, 3, 1, 40); err != nil {
		t.Fatalf("run: %v", err)
	}
}
