// Realtraining exercises the complete paper pipeline with no surrogate:
// every environment round runs actual FedAvg over pure-Go neural networks
// — each participating node trains a classifier for σ local epochs on its
// shard of a synthetic image dataset, the server aggregates the parameter
// vectors (Eqn. 4), and the exterior reward consumes the measured test
// accuracy.
//
// This is the "only through real model training can we precisely obtain
// the correct model accuracy" path of Sec. III. It is slower than the
// surrogate, so the example trains fewer episodes.
//
// Run with:
//
//	go run ./examples/realtraining
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"chiron"
)

func main() {
	if err := run(os.Stdout, 15, 1, 150); err != nil {
		fmt.Fprintf(os.Stderr, "realtraining: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, episodes, evalEps int, budget float64) error {
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes:        5,
		Dataset:      chiron.DatasetMNIST,
		Budget:       budget,
		Seed:         7,
		RealTraining: true, // FedAvg over real Go neural networks
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "training Chiron with REAL federated neural training, %d episodes\n", episodes)
	fmt.Fprintln(w, "(each round: 5 nodes × 5 local epochs of mini-batch SGD + FedAvg + test-set eval)")
	start := time.Now()
	_, err = sys.Train(episodes, func(r chiron.EpisodeResult) {
		fmt.Fprintf(w, "  episode %2d: rounds=%2d measured accuracy=%.3f reward=%7.1f time-eff=%5.1f%%\n",
			r.Episode, r.Rounds, r.FinalAccuracy, r.ExteriorReturn, 100*r.TimeEfficiency)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trained in %v\n\n", time.Since(start).Round(time.Second))

	res, err := sys.Evaluate(evalEps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "deterministic episode: %d rounds, measured accuracy %.3f, spent %.1f of budget\n",
		res.Rounds, res.FinalAccuracy, res.BudgetSpent)
	fmt.Fprintln(w, "\nthe accuracy signal here is computed from a live parameter server")
	fmt.Fprintln(w, "aggregating real gradient-descent updates — the same measurement the")
	fmt.Fprintln(w, "paper's PyTorch simulator made, built on this repo's nn/fl substrates.")
	return nil
}
