package main

import (
	"io"
	"testing"
)

// TestRunSmoke runs one short real-FedAvg episode: the slowest example,
// but the only one exercising the live neural-training accuracy path.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 1, 1, 30); err != nil {
		t.Fatalf("run: %v", err)
	}
}
