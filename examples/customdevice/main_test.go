package main

import (
	"io"
	"testing"
)

// TestRunSmoke exercises the hand-built fleet walkthrough — best-response
// inspection, training, and the learned-allocation printout — at smoke
// scale.
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 3, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
