// Customdevice shows how to plug a hand-built heterogeneous fleet into the
// public API instead of using the paper's randomly generated one, and how
// to inspect each node's best-response economics (Eqns. 6–12) directly.
//
// The scenario: a deliberately skewed fleet — two datacenter-class nodes,
// two mid-range phones, and one very slow node with a fat data shard —
// where time consistency (Lemma 1) is hard and the inner agent's
// allocation matters most.
//
// Run with:
//
//	go run ./examples/customdevice
package main

import (
	"fmt"
	"io"
	"os"

	"chiron"
)

func main() {
	if err := run(os.Stdout, 250, 3); err != nil {
		fmt.Fprintf(os.Stderr, "customdevice: %v\n", err)
		os.Exit(1)
	}
}

func buildFleet() []*chiron.Node {
	base := chiron.Node{
		CyclesPerBit:   20,    // c_i, paper constant
		Capacitance:    2e-28, // α_i, paper constant
		CommEnergyRate: 0.01,
		Epochs:         5,
		FreqMin:        1e8,
	}
	mk := func(id int, dataBits, freqMax, commTime, reserve float64, samples int) *chiron.Node {
		n := base
		n.ID = id
		n.DataBits = dataBits
		n.FreqMax = freqMax
		n.CommTime = commTime
		n.Reserve = reserve
		n.SampleCount = samples
		return &n
	}
	return []*chiron.Node{
		// Two datacenter-class nodes: fast CPU, fast uplink.
		mk(0, 4.0e7, 2.0e9, 10, 0.02, 800),
		mk(1, 4.0e7, 1.9e9, 11, 0.02, 700),
		// Two mid-range phones.
		mk(2, 3.5e7, 1.2e9, 16, 0.04, 500),
		mk(3, 3.6e7, 1.1e9, 18, 0.04, 500),
		// One slow node holding the biggest data shard.
		mk(4, 5.5e7, 1.0e9, 20, 0.05, 1200),
	}
}

func run(w io.Writer, episodes, evalEps int) error {
	nodes := buildFleet()

	// Inspect the closed-form best responses before training: what does
	// each node do when offered the price that would drive it flat out?
	fmt.Fprintln(w, "per-node best responses at each node's own full-speed price:")
	fmt.Fprintf(w, "%-4s %12s %12s %10s %10s %10s\n", "id", "ζ* (GHz)", "T_i (s)", "payment", "energy", "utility")
	for _, n := range nodes {
		resp := n.BestResponse(n.PriceForFreq(n.FreqMax))
		fmt.Fprintf(w, "%-4d %12.2f %12.1f %10.2f %10.2f %10.2f\n",
			n.ID, resp.Freq/1e9, resp.Time, resp.Payment, resp.Energy, resp.Utility)
	}

	sys, err := chiron.NewSystem(chiron.SystemConfig{
		CustomNodes: nodes,
		Dataset:     chiron.DatasetFashionMNIST,
		Budget:      250,
		Seed:        11,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\ntraining Chiron on the custom fleet for %d episodes...\n", episodes)
	if _, err := sys.Train(episodes, nil); err != nil {
		return err
	}
	res, err := sys.Evaluate(evalEps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "result: %d rounds, accuracy %.3f, time efficiency %.1f%%, utility %.1f\n",
		res.Rounds, res.FinalAccuracy, 100*res.TimeEfficiency, res.ServerUtility)

	// Show the learned allocation: run one deterministic round and print
	// what each node was paid and how long it took.
	env := sys.Env()
	if err := env.Reset(); err != nil {
		return err
	}
	prices, err := sys.Agent().PriceVector()
	if err != nil {
		return err
	}
	step, err := env.Step(prices)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nlearned first-round allocation:")
	fmt.Fprintf(w, "%-4s %12s %12s %12s\n", "id", "price share", "ζ (GHz)", "T_i (s)")
	total := 0.0
	for _, p := range prices {
		total += p
	}
	for i := range nodes {
		fmt.Fprintf(w, "%-4d %11.1f%% %12.2f %12.1f\n",
			i, 100*prices[i]/total, step.Round.Freqs[i]/1e9, step.Round.Times[i])
	}
	fmt.Fprintf(w, "round time %.1fs, idle time %.1fs, time efficiency %.1f%%\n",
		step.Round.RoundTime(), step.Round.IdleTime(), 100*step.Round.TimeEfficiency())
	fmt.Fprintln(w, "\nnote how slower nodes receive larger price shares so their compute")
	fmt.Fprintln(w, "time shrinks toward the fleet's common finish time (Lemma 1).")
	return nil
}
