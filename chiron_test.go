package chiron_test

import (
	"math"
	"strings"
	"testing"

	"chiron"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := chiron.NewSystem(chiron.SystemConfig{Budget: 100}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := chiron.NewSystem(chiron.SystemConfig{Nodes: 3}); err == nil {
		t.Fatal("accepted zero budget")
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := chiron.NewSystem(chiron.SystemConfig{Nodes: 3, Budget: 100})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Env().NumNodes() != 3 {
		t.Fatalf("nodes %d", sys.Env().NumNodes())
	}
	if sys.Env().Config().Lambda != 2000 {
		t.Fatalf("lambda %v, want paper default 2000", sys.Env().Config().Lambda)
	}
}

func TestSystemTrainAndEvaluate(t *testing.T) {
	sys, err := chiron.NewSystem(chiron.SystemConfig{Nodes: 3, Budget: 80, Seed: 7})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var seen int
	if _, err := sys.Train(3, func(chiron.EpisodeResult) { seen++ }); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if seen != 3 {
		t.Fatalf("callbacks %d", seen)
	}
	res, err := sys.Evaluate(2)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Rounds <= 0 || res.BudgetSpent > 80+1e-9 {
		t.Fatalf("evaluation %+v", res)
	}
}

func TestSystemBaselinesShareFleet(t *testing.T) {
	sys, err := chiron.NewSystem(chiron.SystemConfig{Nodes: 4, Budget: 100, Seed: 9})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	drl, err := sys.NewBaselineDRL()
	if err != nil {
		t.Fatalf("NewBaselineDRL: %v", err)
	}
	greedy, err := sys.NewBaselineGreedy()
	if err != nil {
		t.Fatalf("NewBaselineGreedy: %v", err)
	}
	// Same node population, independent environments.
	for i, n := range sys.Env().Nodes() {
		if drl.Env().Nodes()[i].DataBits != n.DataBits {
			t.Fatal("DRL baseline fleet differs")
		}
		if greedy.Env().Nodes()[i].CommTime != n.CommTime {
			t.Fatal("Greedy baseline fleet differs")
		}
	}
	if drl.Env() == sys.Env() || greedy.Env() == sys.Env() {
		t.Fatal("baseline shares the agent's environment instance")
	}
	if _, err := drl.RunEpisode(false); err != nil {
		t.Fatalf("drl episode: %v", err)
	}
	if _, err := greedy.RunEpisode(false); err != nil {
		t.Fatalf("greedy episode: %v", err)
	}
}

func TestSystemCustomNodes(t *testing.T) {
	base := chiron.Node{
		CyclesPerBit: 20, Capacitance: 2e-28, CommEnergyRate: 0.002,
		Epochs: 5, FreqMin: 1.5e8, FreqMax: 1.5e9, DataBits: 4e7,
		CommTime: 12, SampleCount: 500,
	}
	nodes := make([]*chiron.Node, 3)
	for i := range nodes {
		n := base
		n.ID = i
		nodes[i] = &n
	}
	sys, err := chiron.NewSystem(chiron.SystemConfig{CustomNodes: nodes, Budget: 60, Seed: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Env().NumNodes() != 3 {
		t.Fatalf("nodes %d", sys.Env().NumNodes())
	}
	if _, err := sys.Agent().RunEpisode(false); err != nil {
		t.Fatalf("episode: %v", err)
	}
}

func TestSystemRealTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("real training skipped in -short mode")
	}
	sys, err := chiron.NewSystem(chiron.SystemConfig{
		Nodes: 3, Budget: 40, Seed: 3, RealTraining: true,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	res, err := sys.Agent().RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if res.Rounds <= 0 {
		t.Fatal("real-training episode played no rounds")
	}
	// Real FedAvg training must move accuracy above random guessing.
	if res.FinalAccuracy < 0.2 {
		t.Fatalf("measured accuracy %v after %d real rounds", res.FinalAccuracy, res.Rounds)
	}
}

func TestDatasetNames(t *testing.T) {
	if chiron.DatasetMNIST.String() != "mnist" ||
		chiron.DatasetFashionMNIST.String() != "fashion-mnist" ||
		chiron.DatasetCIFAR10.String() != "cifar-10" {
		t.Fatal("dataset names wrong")
	}
	if !strings.Contains(chiron.Dataset(0).String(), "unknown") {
		t.Fatal("zero dataset should stringify as unknown")
	}
}

func TestArtifactsExposed(t *testing.T) {
	arts := chiron.Artifacts()
	if len(arts) != 7 {
		t.Fatalf("artifacts %d, want 7", len(arts))
	}
	for _, a := range arts {
		if chiron.DescribeArtifact(a) == "" {
			t.Fatalf("artifact %s undescribed", a)
		}
	}
}

func TestRunArtifactTinyScale(t *testing.T) {
	// Exercise one full artifact pipeline end to end at minimum scale.
	report, err := chiron.RunArtifact(chiron.Fig3, 0.002) // 1 episode
	if err != nil {
		t.Fatalf("RunArtifact: %v", err)
	}
	if !strings.Contains(report, "Fig. 3") {
		t.Fatalf("report missing title:\n%s", report)
	}
}

func TestDefaultFleetSpecMatchesPaperConstants(t *testing.T) {
	spec := chiron.DefaultFleetSpec(5)
	if spec.CyclesPerBit != 20 {
		t.Fatalf("c_i = %v, want 20 cycles/bit", spec.CyclesPerBit)
	}
	if spec.FreqMaxLow != 1e9 || spec.FreqMaxHigh != 2e9 {
		t.Fatalf("ζmax range [%v,%v], want [1,2] GHz", spec.FreqMaxLow, spec.FreqMaxHigh)
	}
	if spec.CommTimeMin != 10 || spec.CommTimeMax != 20 {
		t.Fatalf("comm range [%v,%v], want [10,20] s", spec.CommTimeMin, spec.CommTimeMax)
	}
	if spec.Capacitance != 2e-28 {
		t.Fatalf("α = %v, want 2e-28", spec.Capacitance)
	}
	if spec.Epochs != 5 {
		t.Fatalf("σ = %d, want 5", spec.Epochs)
	}
}

func TestDefaultTrainConfigMatchesPaper(t *testing.T) {
	cfg := chiron.DefaultTrainConfig()
	if cfg.Epochs != 5 || cfg.BatchSize != 10 {
		t.Fatalf("train config %+v, want σ=5 batch=10", cfg)
	}
}

func TestNodeEconomicsThroughPublicAPI(t *testing.T) {
	spec := chiron.DefaultFleetSpec(1)
	sys, err := chiron.NewSystem(chiron.SystemConfig{Nodes: 1, Fleet: &spec, Budget: 50, Seed: 4})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	n := sys.Env().Nodes()[0]
	price := n.PriceForFreq(n.FreqMax)
	resp := n.BestResponse(price)
	if !resp.Participating {
		t.Fatal("node declined its own full-speed price")
	}
	if math.Abs(resp.Freq-n.FreqMax) > 1 {
		t.Fatalf("best response %v, want FreqMax %v", resp.Freq, n.FreqMax)
	}
}
