package chiron_test

// Compute micro-benchmarks for the numeric stack that every hot loop of the
// reproduction funnels through: the RealTraining MLP step, the MNIST-CNN
// Conv2D im2col path, and one full PPO update. All report allocs/op so that
// regressions in the destination-passing path (which should keep steady-state
// allocations near zero) are visible straight from `go test -bench=Compute
// -benchmem`. CI runs exactly these and uploads the results as
// BENCH_compute.json.

import (
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/core"
	"chiron/internal/dataset"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/fl"
	"chiron/internal/mat"
	"chiron/internal/mechanism"
	"chiron/internal/nn"
	"chiron/internal/rl"
)

// BenchmarkComputeMLPForwardBackward measures one RealTraining-shaped MLP
// training step (forward, softmax cross-entropy, backward) on a batch of 10 —
// the exact inner loop of fl.Client.TrainRound.
func BenchmarkComputeMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	net, err := nn.NewClassifierMLP(rng, 64, 32, 10)
	if err != nil {
		b.Fatal(err)
	}
	x := mat.New(10, 64)
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	grad := mat.New(10, 10)
	probs := make([]float64, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, err := net.Forward(x)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nn.SoftmaxCrossEntropyTo(grad, logits, labels, probs); err != nil {
			b.Fatal(err)
		}
		net.ZeroGrad()
		if err := net.BackwardParamsOnly(grad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeConv2DForwardBackward measures the im2col Conv2D path in
// isolation: one forward plus the parameter-gradient backward of the MNIST
// CNN's first convolution (1→10 channels, 5×5) on a batch of 10 — as the
// network's first layer its input gradient has no consumer, so the trained
// hot path skips it.
func BenchmarkComputeConv2DForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	conv, err := nn.NewConv2D(rng, nn.Shape3{C: 1, H: 28, W: 28}, 10, 5)
	if err != nil {
		b.Fatal(err)
	}
	x := mat.New(10, 28*28)
	x.Randomize(rng, 1)
	grad := mat.New(10, conv.OutShape().Size())
	grad.Randomize(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x); err != nil {
			b.Fatal(err)
		}
		if err := conv.BackwardParamsOnly(grad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputePPOUpdate measures one full PPO update (M=10 epochs of
// critic regression + clipped-surrogate actor pass) over a 32-transition
// episode at Chiron's exterior dimensions.
func BenchmarkComputePPOUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	stateDim := 3*5*4 + 2
	agent, err := rl.NewPPO(rng, stateDim, 1, rl.DefaultPPOConfig())
	if err != nil {
		b.Fatal(err)
	}
	buf := &rl.Buffer{}
	state := make([]float64, stateDim)
	for i := range state {
		state[i] = rng.Float64()
	}
	for i := 0; i < 32; i++ {
		act, lp, err := agent.Act(rng, state)
		if err != nil {
			b.Fatal(err)
		}
		buf.Add(rl.Transition{State: state, Action: act, Reward: rng.Float64(), NextState: state, Done: i == 31, LogProb: lp})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Update(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFrozenGrid builds a frozen-checkpoint evaluation grid: `cells`
// Chiron agents sharing one donor's policy weights, each bound to its own
// environment — the setup of the robustness and fault-sweep ablations.
func benchFrozenGrid(b *testing.B, cells int) []*core.Chiron {
	b.Helper()
	const nodes = 5
	newEnv := func(seed int64) *edgeenv.Env {
		fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(nodes))
		if err != nil {
			b.Fatal(err)
		}
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
		if err != nil {
			b.Fatal(err)
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, 150)
		cfg.MaxRounds = 30
		env, err := edgeenv.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return env
	}
	donor, err := core.New(newEnv(17), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ck := donor.Checkpoint()
	agents := make([]*core.Chiron, cells)
	for i := range agents {
		agent, err := core.New(newEnv(17+int64(i)*10), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := agent.Restore(ck); err != nil {
			b.Fatal(err)
		}
		agents[i] = agent
	}
	return agents
}

// BenchmarkComputePolicyEvalSequential measures a 16-cell frozen-policy
// evaluation grid the sequential way: one deterministic episode per cell,
// each round running two 1×d policy forwards — the ablation runners' shape
// before the lockstep evaluator.
func BenchmarkComputePolicyEvalSequential(b *testing.B) {
	agents := benchFrozenGrid(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, agent := range agents {
			if _, err := mechanism.Evaluate(agent, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkComputePolicyEvalLockstep measures the same 16-cell grid through
// core.EvaluateLockstep: all cells advance together and each round's
// decisions evaluate with ONE batched forward per policy network. Results
// are bit-identical to the sequential path (the propcheck lockstep property
// pins this); only the GEMM shapes change.
func BenchmarkComputePolicyEvalLockstep(b *testing.B) {
	agents := benchFrozenGrid(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateLockstep(agents, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeClientTrainRound measures one client's σ=5 local epochs of
// mini-batch SGD over a 400-sample shard — the RealTraining unit of work the
// incentive mechanism prices per round per node.
func BenchmarkComputeClientTrainRound(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	full, err := dataset.Generate(rng, dataset.SynthMNIST(500))
	if err != nil {
		b.Fatal(err)
	}
	factory := func(r *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(r, full.Dim(), 32, 10)
	}
	client, err := fl.NewClient(0, full, factory, fl.DefaultConfig(), rand.New(rand.NewSource(15)))
	if err != nil {
		b.Fatal(err)
	}
	ref, err := factory(rand.New(rand.NewSource(16)))
	if err != nil {
		b.Fatal(err)
	}
	global := ref.FlattenParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.TrainRound(global); err != nil {
			b.Fatal(err)
		}
	}
}
