// Package chiron is a from-scratch Go reproduction of "Incentive-Driven
// Long-term Optimization for Edge Learning by Hierarchical Reinforcement
// Mechanism" (ICDCS 2021).
//
// Chiron is an incentive mechanism run by a federated-learning parameter
// server: each round it prices every edge node's CPU-cycle contribution
// out of a fixed budget η; nodes best-respond with a utility-maximizing
// CPU frequency; a two-layer (hierarchical) PPO agent learns the pricing
// policy. The exterior agent paces the budget across rounds (long-term
// goal); the inner agent splits each round's total price across nodes to
// equalize their finish times (short-term goal, Lemma 1).
//
// The package exposes the full system: the device/economic model with the
// paper's constants, the FedAvg training substrate (with both a real
// pure-Go neural-network trainer and a calibrated surrogate accuracy
// model), the hierarchical agent, the paper's two comparison mechanisms,
// and the experiment harness that regenerates every table and figure of
// the evaluation section. Start with NewSystem:
//
//	sys, err := chiron.NewSystem(chiron.SystemConfig{
//		Nodes:   5,
//		Dataset: chiron.DatasetMNIST,
//		Budget:  300,
//		Seed:    7,
//	})
//	if err != nil { ... }
//	results, err := sys.Train(500, nil)
//	summary, err := sys.Evaluate(5)
package chiron

import (
	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/dataset"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/experiment"
	"chiron/internal/faults"
	"chiron/internal/fl"
	"chiron/internal/market"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public names.
type (
	// Node is one edge node's hardware and economic profile (Sec. III).
	Node = device.Node
	// FleetSpec configures random fleet generation (Sec. VI-A constants).
	FleetSpec = device.FleetSpec
	// NodeResponse is a node's best response to a posted price (Eqn. 11).
	NodeResponse = device.Response

	// EpisodeResult summarizes one edge-learning episode.
	EpisodeResult = mechanism.EpisodeResult
	// Mechanism is the contract shared by Chiron and the baselines.
	Mechanism = mechanism.Mechanism

	// Env is the edge-learning MDP (fleet + accuracy model + budget).
	Env = edgeenv.Env
	// EnvConfig parameterizes the environment.
	EnvConfig = edgeenv.Config
	// StepResult reports one environment round.
	StepResult = edgeenv.StepResult
	// Round is the per-round market record {ζ_k, p_k, T_k, payment}.
	Round = market.Round
	// Ledger tracks the budget and round history of an episode.
	Ledger = market.Ledger

	// Agent is the hierarchical DRL incentive mechanism (the paper's
	// primary contribution).
	Agent = core.Chiron
	// AgentConfig parameterizes the hierarchical agent.
	AgentConfig = core.Config
	// PPOConfig holds the PPO hyperparameters of a single layer.
	PPOConfig = rl.PPOConfig

	// DRLBased is the single-agent myopic comparison mechanism.
	DRLBased = baselines.DRLBased
	// DRLBasedConfig parameterizes the DRL-based baseline.
	DRLBasedConfig = baselines.DRLBasedConfig
	// Greedy is the replay-buffer comparison mechanism.
	Greedy = baselines.Greedy
	// GreedyConfig parameterizes the Greedy baseline.
	GreedyConfig = baselines.GreedyConfig

	// ChurnSchedule decides fleet membership per round: which nodes are
	// present at a round's offer and which depart mid-round.
	ChurnSchedule = faults.ChurnSchedule
	// ChurnScript is an explicit scripted arrival/departure plan.
	ChurnScript = faults.ChurnScript
	// ChurnEvent is one scripted arrival or departure.
	ChurnEvent = faults.ChurnEvent
	// ChurnRates parameterizes the seed-deterministic Markov churn sampler.
	ChurnRates = faults.ChurnRates
	// ChurnSampler draws per-node membership chains from ChurnRates.
	ChurnSampler = faults.ChurnSampler
	// Backoff is the unified retry/backoff policy (upload retries, crash
	// restarts).
	Backoff = faults.Backoff

	// AccuracyModel produces the A(ω_k) trajectory of a learning task.
	AccuracyModel = accuracy.Model
	// SurrogateCurve is the calibrated analytic accuracy model.
	SurrogateCurve = accuracy.SurrogateCurve
	// RealTrainer measures accuracy by actually running FedAvg over pure-Go
	// neural networks.
	RealTrainer = accuracy.RealTrainer
	// RealTrainerConfig parameterizes a RealTrainer.
	RealTrainerConfig = accuracy.RealTrainerConfig

	// SynthSpec describes a synthetic dataset.
	SynthSpec = dataset.SynthSpec
	// TrainConfig holds the local-SGD hyperparameters of federated training.
	TrainConfig = fl.Config

	// Artifact names one reproduced table or figure (fig3 … tab1).
	Artifact = experiment.Artifact
	// ComparisonParams configures a budget-sweep experiment.
	ComparisonParams = experiment.ComparisonParams
	// Comparison is a budget sweep's results.
	Comparison = experiment.Comparison
	// ConvergenceParams configures a learning-curve experiment.
	ConvergenceParams = experiment.ConvergenceParams
	// Convergence is a learning-curve run's results.
	Convergence = experiment.Convergence
)

// ParseChurnScript parses the compact churn-plan notation: "+NODE@ROUND"
// schedules an arrival, "-NODE@ROUND" a departure, separated by commas,
// semicolons, or whitespace (e.g. "-3@5,+3@9" departs node 3 at round 5
// and returns it at round 9). A node whose first event is an arrival
// starts outside the fleet.
func ParseChurnScript(spec string) (*ChurnScript, error) {
	return faults.ParseChurnScript(spec)
}

// NewChurnSampler builds the seed-deterministic Markov churn schedule:
// each present node departs with rates.Depart per round, each absent node
// returns with rates.Arrive.
func NewChurnSampler(rates ChurnRates, seed int64) (*ChurnSampler, error) {
	return faults.NewChurnSampler(rates, seed)
}

// Dataset identifies one of the paper's three evaluation tasks.
type Dataset int

// The evaluation datasets. The offline reproduction substitutes calibrated
// synthetic equivalents; see DESIGN.md.
const (
	DatasetMNIST Dataset = iota + 1
	DatasetFashionMNIST
	DatasetCIFAR10
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	switch d {
	case DatasetMNIST:
		return "mnist"
	case DatasetFashionMNIST:
		return "fashion-mnist"
	case DatasetCIFAR10:
		return "cifar-10"
	default:
		return "dataset(unknown)"
	}
}

// Experiment artifacts, re-exported for CLI and benchmark callers.
const (
	Fig3  = experiment.Fig3
	Fig4  = experiment.Fig4
	Fig5  = experiment.Fig5
	Fig6  = experiment.Fig6
	Fig7a = experiment.Fig7a
	Fig7b = experiment.Fig7b
	Tab1  = experiment.Tab1
)

// Artifacts lists every reproduced paper artifact in paper order.
func Artifacts() []Artifact { return experiment.Artifacts() }

// ExtraArtifacts lists the ablation studies shipped beyond the paper's
// own evaluation.
func ExtraArtifacts() []Artifact { return experiment.ExtraArtifacts() }

// DescribeArtifact returns a one-line description of a paper artifact or
// ablation study.
func DescribeArtifact(a Artifact) string {
	if experiment.IsExtra(a) {
		return experiment.DescribeExtra(a)
	}
	return experiment.Describe(a)
}

// RunArtifact executes one paper artifact serially at the given scale
// (1.0 = the paper's full episode counts) and returns a rendered text
// report.
func RunArtifact(a Artifact, scale float64) (string, error) {
	return experiment.Run(a, scale)
}

// RunArtifactJobs is RunArtifact with a worker bound for the artifact's
// grid of independent jobs (1 = serial, 0 = GOMAXPROCS). Reports are
// byte-identical at any worker count.
func RunArtifactJobs(a Artifact, scale float64, jobs int) (string, error) {
	return experiment.RunJobs(a, scale, jobs)
}

// DefaultFleetSpec returns the paper's Sec. VI-A device constants for n
// nodes.
func DefaultFleetSpec(n int) FleetSpec { return device.DefaultFleetSpec(n) }

// DefaultAgentConfig returns the paper's hyperparameters for both agent
// layers, including the reproduction's documented inner-agent tuning.
func DefaultAgentConfig(seed int64) AgentConfig {
	return experiment.TunedChironConfig(seed)
}

// DefaultTrainConfig mirrors the paper's local-training settings
// (σ=5 epochs, batch size 10).
func DefaultTrainConfig() TrainConfig { return fl.DefaultConfig() }
