package chiron_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each BenchmarkFig*/BenchmarkTable* below runs the
// same experiment pipeline as `chiron-bench`, scaled down by -benchscale
// (default 0.02 → 10 training episodes per learner) so `go test -bench=.`
// finishes in minutes; pass -benchscale=1.0 for the paper's full 500
// episodes. Headline numbers are emitted as custom benchmark metrics
// (accuracy, rounds, time-eff%), so regression in the *shape* of a result
// is visible straight from benchmark output.
//
// Ablation benchmarks cover the design choices called out in DESIGN.md:
// the hierarchical split vs a single agent, the history window L, the
// Eqn. 9 vs literal Eqn. 14 reward weighting, and surrogate vs real
// accuracy measurement.

import (
	"flag"
	"math/rand"
	"testing"

	"chiron"
	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/dataset"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/experiment"
	"chiron/internal/fl"
	"chiron/internal/mat"
	"chiron/internal/nn"
	"chiron/internal/rl"
)

var benchScale = flag.Float64("benchscale", 0.02, "experiment scale for paper-artifact benchmarks (1.0 = full paper runs)")

// reportComparison surfaces the Chiron row of the largest budget as
// benchmark metrics.
func reportComparison(b *testing.B, cmp *experiment.Comparison) {
	b.Helper()
	if len(cmp.Points) == 0 {
		return
	}
	last := cmp.Points[len(cmp.Points)-1]
	for name, r := range last.Results {
		if name != "Chiron" {
			continue
		}
		b.ReportMetric(r.FinalAccuracy, "accuracy")
		b.ReportMetric(float64(r.Rounds), "rounds")
		b.ReportMetric(100*r.TimeEfficiency, "time-eff%")
	}
}

func benchComparison(b *testing.B, a experiment.Artifact) {
	b.Helper()
	params, err := experiment.ComparisonDefaults(a)
	if err != nil {
		b.Fatal(err)
	}
	scaled := params.Scale(*benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.RunComparison(scaled)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, cmp)
		}
	}
}

func benchConvergence(b *testing.B, a experiment.Artifact) {
	b.Helper()
	params, err := experiment.ConvergenceDefaults(a)
	if err != nil {
		b.Fatal(err)
	}
	scaled := params.Scale(*benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv, err := experiment.RunConvergence(scaled)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := conv.Episodes[len(conv.Episodes)-1]
			b.ReportMetric(conv.SmoothedReward[len(conv.SmoothedReward)-1], "reward")
			b.ReportMetric(float64(last.Rounds), "rounds")
		}
	}
}

// BenchmarkFig3ConvergenceMNIST regenerates Fig. 3: Chiron's episode-reward
// learning curve on MNIST with 5 nodes, η=300.
func BenchmarkFig3ConvergenceMNIST(b *testing.B) { benchConvergence(b, experiment.Fig3) }

// BenchmarkFig4MNIST regenerates Fig. 4(a–c): final accuracy, rounds, and
// time efficiency vs budget on MNIST for Chiron, DRL-based, and Greedy.
func BenchmarkFig4MNIST(b *testing.B) { benchComparison(b, experiment.Fig4) }

// BenchmarkFig5FashionMNIST regenerates Fig. 5(a–c) on Fashion-MNIST.
func BenchmarkFig5FashionMNIST(b *testing.B) { benchComparison(b, experiment.Fig5) }

// BenchmarkFig6CIFAR10 regenerates Fig. 6(a–c) on CIFAR-10 with the
// paper's larger budgets.
func BenchmarkFig6CIFAR10(b *testing.B) { benchComparison(b, experiment.Fig6) }

// BenchmarkFig7aLargeScaleChiron regenerates Fig. 7(a): Chiron's exterior
// convergence with 100 edge nodes.
func BenchmarkFig7aLargeScaleChiron(b *testing.B) { benchConvergence(b, experiment.Fig7a) }

// BenchmarkFig7bLargeScaleDRLBased regenerates Fig. 7(b): the single-agent
// DRL-based approach at 100 nodes (the paper's non-convergence case).
func BenchmarkFig7bLargeScaleDRLBased(b *testing.B) { benchConvergence(b, experiment.Fig7b) }

// BenchmarkTable1LargeScale regenerates Table I: Chiron at 100 nodes
// across budgets 140–380.
func BenchmarkTable1LargeScale(b *testing.B) { benchComparison(b, experiment.Tab1) }

// ---------------------------------------------------------------------------
// Ablation benchmarks (design choices from DESIGN.md).

// ablationEnv builds the standard 5-node MNIST environment.
func ablationEnv(b *testing.B, timeWeight float64, historyLen int) *edgeenv.Env {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(5))
	if err != nil {
		b.Fatal(err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, 5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 300)
	if timeWeight > 0 {
		cfg.TimeWeight = timeWeight
	}
	if historyLen > 0 {
		cfg.HistoryLen = historyLen
	}
	env, err := edgeenv.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func ablationEpisodes() int {
	n := int(500 * *benchScale)
	if n < 3 {
		n = 3
	}
	return n
}

func runChironAblation(b *testing.B, env *edgeenv.Env) {
	b.Helper()
	episodes := ablationEpisodes()
	for i := 0; i < b.N; i++ {
		ch, err := core.New(env, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Train(episodes, nil); err != nil {
			b.Fatal(err)
		}
		res, err := ch.Evaluate(2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FinalAccuracy, "accuracy")
			b.ReportMetric(100*res.TimeEfficiency, "time-eff%")
		}
	}
}

// BenchmarkAblationHierarchicalAgent trains the full two-layer agent — the
// reference point for BenchmarkAblationSingleAgent.
func BenchmarkAblationHierarchicalAgent(b *testing.B) {
	runChironAblation(b, ablationEnv(b, 0, 0))
}

// BenchmarkAblationSingleAgent trains a single flat PPO agent (budget-blind
// price vector, as in the DRL-based architecture) on the same environment,
// quantifying what the hierarchy buys.
func BenchmarkAblationSingleAgent(b *testing.B) {
	env := ablationEnv(b, 0, 0)
	episodes := ablationEpisodes()
	for i := 0; i < b.N; i++ {
		cfg := baselines.DefaultDRLBasedConfig()
		cfg.PPO.Gamma = 0.95 // same horizon as Chiron; only the architecture differs
		cfg.PPO.CriticLR = 3e-4
		d, err := baselines.NewDRLBased(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Train(episodes, nil); err != nil {
			b.Fatal(err)
		}
		res, err := core.EvaluateMechanism(d, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FinalAccuracy, "accuracy")
			b.ReportMetric(100*res.TimeEfficiency, "time-eff%")
		}
	}
}

// BenchmarkAblationHistoryL1 shrinks the exterior state's history window
// to a single round (the paper uses L=4).
func BenchmarkAblationHistoryL1(b *testing.B) {
	runChironAblation(b, ablationEnv(b, 0, 1))
}

// BenchmarkAblationHistoryL8 doubles the history window to L=8.
func BenchmarkAblationHistoryL8(b *testing.B) {
	runChironAblation(b, ablationEnv(b, 0, 8))
}

// BenchmarkAblationEqn14Literal uses the literal Eqn. 14 reward
// r^E = λΔA − λT_k instead of the Eqn. 9-consistent weighting.
func BenchmarkAblationEqn14Literal(b *testing.B) {
	runChironAblation(b, ablationEnv(b, 2000, 0))
}

// BenchmarkAblationRealTraining swaps the surrogate accuracy model for
// actual FedAvg neural training (the full paper pipeline).
func BenchmarkAblationRealTraining(b *testing.B) {
	episodes := ablationEpisodes() / 4
	if episodes < 2 {
		episodes = 2
	}
	for i := 0; i < b.N; i++ {
		sys, err := chiron.NewSystem(chiron.SystemConfig{
			Nodes: 5, Budget: 100, Seed: 7, RealTraining: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Train(episodes, nil); err != nil {
			b.Fatal(err)
		}
		res, err := sys.Evaluate(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FinalAccuracy, "accuracy")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkEnvStep measures one environment round (best responses, FedAvg
// surrogate, ledger commit) at N=5.
func BenchmarkEnvStep(b *testing.B) {
	env := ablationEnv(b, 0, 0)
	if err := env.Reset(); err != nil {
		b.Fatal(err)
	}
	prices := make([]float64, env.NumNodes())
	for i, n := range env.Nodes() {
		prices[i] = n.PriceForFreq(n.FreqMax) * 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Step(prices)
		if err != nil {
			b.Fatal(err)
		}
		if res.Done {
			b.StopTimer()
			if err := env.Reset(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkBestResponse measures the closed-form Eqn. 11 node decision.
func BenchmarkBestResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nodes, err := device.NewFleet(rng, device.DefaultFleetSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	n := nodes[0]
	price := n.PriceForFreq(1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := n.BestResponse(price)
		if !resp.Participating {
			b.Fatal("node declined")
		}
	}
}

// BenchmarkPPOUpdate measures one full PPO update (M epochs) over a
// 32-transition episode at Chiron's exterior dimensions (N=5, L=4).
func BenchmarkPPOUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	stateDim := 3*5*4 + 2
	agent, err := rl.NewPPO(rng, stateDim, 1, rl.DefaultPPOConfig())
	if err != nil {
		b.Fatal(err)
	}
	buf := &rl.Buffer{}
	state := make([]float64, stateDim)
	for i := range state {
		state[i] = rng.Float64()
	}
	for i := 0; i < 32; i++ {
		act, lp, err := agent.Act(rng, state)
		if err != nil {
			b.Fatal(err)
		}
		buf.Add(rl.Transition{State: state, Action: act, Reward: rng.Float64(), NextState: state, Done: i == 31, LogProb: lp})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Update(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedAvgRound measures one real federated round: 3 clients × σ=5
// local epochs of MLP SGD plus aggregation and evaluation.
func BenchmarkFedAvgRound(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	full, err := dataset.Generate(rng, dataset.SynthMNIST(600))
	if err != nil {
		b.Fatal(err)
	}
	train, test, err := full.Split(rng, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := dataset.IID{}.Partition(rng, train, 3)
	if err != nil {
		b.Fatal(err)
	}
	factory := func(r *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(r, full.Dim(), 32, 10)
	}
	srv, err := fl.NewServer(test, factory, rng)
	if err != nil {
		b.Fatal(err)
	}
	clients := make([]*fl.Client, 3)
	for i, idx := range parts {
		local, err := train.Subset(idx)
		if err != nil {
			b.Fatal(err)
		}
		clients[i], err = fl.NewClient(i, local, factory, fl.DefaultConfig(), rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		global := srv.Global()
		updates := make([]fl.Update, 0, len(clients))
		for _, c := range clients {
			params, _, err := c.TrainRound(global)
			if err != nil {
				b.Fatal(err)
			}
			updates = append(updates, fl.Update{Params: params, Samples: c.NumSamples()})
		}
		if err := srv.Aggregate(updates); err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMNISTCNNForward measures a forward pass of the paper's 21,840
// parameter MNIST CNN on a batch of 10.
func BenchmarkMNISTCNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net, err := nn.NewMNISTCNN(rng)
	if err != nil {
		b.Fatal(err)
	}
	x := mat.New(10, 28*28)
	x.Randomize(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeNetForwardBackward measures a full training step of the
// paper's 62,006-parameter CIFAR-10 LeNet on a batch of 10.
func BenchmarkLeNetForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net, err := nn.NewLeNet(rng)
	if err != nil {
		b.Fatal(err)
	}
	x := mat.New(10, 3*32*32)
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, err := net.Forward(x)
		if err != nil {
			b.Fatal(err)
		}
		_, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			b.Fatal(err)
		}
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			b.Fatal(err)
		}
	}
}
