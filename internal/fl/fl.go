// Package fl implements the federated-learning substrate the incentive
// mechanism prices: a parameter server, per-node local SGD training over σ
// epochs, and the FedAvg weighted aggregation of Eqn. (4).
//
// The engine is synchronous and deterministic given its RNG, matching the
// round-by-round model of the paper: download global parameters, run σ
// local epochs, upload, aggregate by sample count.
package fl

import (
	"fmt"
	"math/rand"

	"chiron/internal/dataset"
	"chiron/internal/mat"
	"chiron/internal/nn"
)

// ModelFactory constructs a fresh, identically shaped model; each edge node
// and the server evaluation harness instantiate their own copy and exchange
// flat parameter vectors.
type ModelFactory func(rng *rand.Rand) (*nn.Network, error)

// Config parameterizes a federated training engine.
type Config struct {
	// Epochs is σ, the local epochs per round (paper: 5).
	Epochs int
	// BatchSize is the local mini-batch size (paper: 10).
	BatchSize int
	// LearningRate is the local SGD step size.
	LearningRate float64
	// Momentum is the local SGD momentum (0 disables).
	Momentum float64
}

// DefaultConfig mirrors the paper's local-training settings.
func DefaultConfig() Config {
	return Config{Epochs: 5, BatchSize: 10, LearningRate: 0.05, Momentum: 0.5}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("fl: epochs %d, want > 0", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: batch size %d, want > 0", c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("fl: learning rate %v, want > 0", c.LearningRate)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("fl: momentum %v, want [0,1)", c.Momentum)
	}
	return nil
}

// Client is one edge node's training state.
type Client struct {
	id    int
	data  *dataset.Dataset
	model *nn.Network
	cfg   Config
	rng   *rand.Rand
	opt   *nn.SGD

	// Recycled per-round buffers: softmax cross-entropy gradient and
	// probability scratch, and the uploaded flat parameter vector.
	grad  *mat.Matrix
	probs []float64
	flat  []float64
}

// NewClient builds a client over its local dataset. The model is created
// from factory but its parameters are always overwritten by the server's
// global vector at the start of each round.
func NewClient(id int, data *dataset.Dataset, factory ModelFactory, cfg Config, rng *rand.Rand) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("fl: client %d has no data", id)
	}
	model, err := factory(rng)
	if err != nil {
		return nil, fmt.Errorf("fl: client %d model: %w", id, err)
	}
	opt := nn.NewSGD(model.Params(), cfg.LearningRate, cfg.Momentum)
	return &Client{id: id, data: data, model: model, cfg: cfg, rng: rng, opt: opt}, nil
}

// ID returns the client identifier.
func (c *Client) ID() int { return c.id }

// NumSamples returns |D_i|, the FedAvg weight.
func (c *Client) NumSamples() int { return c.data.Len() }

// TrainRound downloads the global parameters, runs σ local epochs of
// mini-batch SGD (ω ← ω − μ∇F_i), and returns the updated flat parameter
// vector along with the mean training loss of the final epoch.
//
// The returned slice is a recycled buffer owned by the client: it stays
// valid until this client's next TrainRound call, which is enough for the
// synchronous upload-then-aggregate round pipeline. Callers that retain a
// client's upload across rounds must copy it.
func (c *Client) TrainRound(global []float64) ([]float64, float64, error) {
	if err := c.model.LoadParams(global); err != nil {
		return nil, 0, fmt.Errorf("fl: client %d load: %w", c.id, err)
	}
	// The optimizer is persistent but its momentum state is not: each round
	// starts from fresh velocity, matching a per-round optimizer.
	c.opt.Reset()
	var lastLoss float64
	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		c.data.Shuffle(c.rng)
		var epochLoss float64
		var batches int
		err := c.data.Batches(c.cfg.BatchSize, func(x *mat.Matrix, y []int) error {
			logits, err := c.model.Forward(x)
			if err != nil {
				return err
			}
			c.grad = mat.Ensure(c.grad, logits.Rows(), logits.Cols())
			c.probs = mat.EnsureVec(c.probs, logits.Cols())
			loss, err := nn.SoftmaxCrossEntropyTo(c.grad, logits, y, c.probs)
			if err != nil {
				return err
			}
			c.model.ZeroGrad()
			if err := c.model.BackwardParamsOnly(c.grad); err != nil {
				return err
			}
			if err := c.opt.Step(); err != nil {
				return err
			}
			epochLoss += loss
			batches++
			return nil
		})
		if err != nil {
			return nil, 0, fmt.Errorf("fl: client %d epoch %d: %w", c.id, epoch, err)
		}
		if batches > 0 {
			lastLoss = epochLoss / float64(batches)
		}
	}
	c.flat = mat.EnsureVec(c.flat, c.model.NumParams())
	if err := c.model.FlattenParamsInto(c.flat); err != nil {
		return nil, 0, fmt.Errorf("fl: client %d upload: %w", c.id, err)
	}
	return c.flat, lastLoss, nil
}

// Server is the FedAvg parameter server.
type Server struct {
	global []float64
	// scratch is the aggregation accumulator; after a successful round it
	// swaps roles with global so neither round allocates.
	scratch []float64
	test    *dataset.Dataset
	eval    *nn.Network
}

// NewServer builds a server holding the initial global model (from factory)
// and an evaluation copy scored against the held-out test set.
func NewServer(test *dataset.Dataset, factory ModelFactory, rng *rand.Rand) (*Server, error) {
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("fl: server needs a non-empty test set")
	}
	model, err := factory(rng)
	if err != nil {
		return nil, fmt.Errorf("fl: server model: %w", err)
	}
	return &Server{global: model.FlattenParams(), test: test, eval: model}, nil
}

// Global returns a copy of the current global parameter vector.
func (s *Server) Global() []float64 {
	cp := make([]float64, len(s.global))
	copy(cp, s.global)
	return cp
}

// GlobalInto copies the current global parameter vector into dst, growing
// it if the length differs, and returns the (possibly reallocated) slice —
// the allocation-free counterpart of Global for per-round download loops.
func (s *Server) GlobalInto(dst []float64) []float64 {
	dst = mat.EnsureVec(dst, len(s.global))
	copy(dst, s.global)
	return dst
}

// Update is one client's round contribution.
type Update struct {
	// Client identifies the uploading client, so rejections can name the
	// offender.
	Client int
	Params []float64
	// Samples is |D_i|, the FedAvg weight.
	Samples int
}

// Aggregate applies FedAvg (Eqn. 4): the new global model is the
// sample-count-weighted average of the uploaded parameter vectors. Updates
// with no samples, mismatched sizes, or non-finite (NaN/±Inf) parameters
// are rejected — a single poisoned vector would otherwise silently spread
// through the weighted average into the global model. Non-finite updates
// surface as a *CorruptUpdateError naming the offending client, and the
// global model is left untouched on any error.
func (s *Server) Aggregate(updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("fl: aggregate with no updates")
	}
	var total float64
	for i, u := range updates {
		if len(u.Params) != len(s.global) {
			return fmt.Errorf("fl: update %d has %d params, want %d", i, len(u.Params), len(s.global))
		}
		if u.Samples <= 0 {
			return fmt.Errorf("fl: update %d has %d samples", i, u.Samples)
		}
		if j, bad := firstNonFinite(u.Params); bad {
			return &CorruptUpdateError{Client: u.Client, Reason: fmt.Sprintf("non-finite parameter %v at index %d", u.Params[j], j)}
		}
		total += float64(u.Samples)
	}
	s.scratch = mat.EnsureVec(s.scratch, len(s.global))
	next := s.scratch
	for j := range next {
		next[j] = 0
	}
	for _, u := range updates {
		w := float64(u.Samples) / total
		for j, v := range u.Params {
			next[j] += w * v
		}
	}
	// Swap rather than copy: the old global becomes next round's scratch.
	s.global, s.scratch = next, s.global
	return nil
}

// Evaluate scores the current global model on the held-out test set and
// returns its top-1 accuracy A(ω).
func (s *Server) Evaluate() (float64, error) {
	if err := s.eval.LoadParams(s.global); err != nil {
		return 0, fmt.Errorf("fl: evaluate load: %w", err)
	}
	var correctWeighted float64
	var n int
	err := s.test.Batches(256, func(x *mat.Matrix, y []int) error {
		logits, err := s.eval.Forward(x)
		if err != nil {
			return err
		}
		acc, err := nn.Accuracy(logits, y)
		if err != nil {
			return err
		}
		correctWeighted += acc * float64(len(y))
		n += len(y)
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("fl: evaluate: %w", err)
	}
	if n == 0 {
		return 0, fmt.Errorf("fl: evaluate on empty test set")
	}
	return correctWeighted / float64(n), nil
}
