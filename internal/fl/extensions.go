package fl

import (
	"fmt"
	"math/rand"

	"chiron/internal/mat"
)

// MomentumServer wraps a Server with server-side momentum (FedAvgM):
// instead of replacing the global model with the weighted client average,
// it applies the averaged pseudo-gradient through a momentum buffer, which
// accelerates convergence on heterogeneous data. Momentum 0 reduces to
// plain FedAvg.
type MomentumServer struct {
	server   *Server
	momentum float64
	velocity []float64
	before   []float64 // recycled pre-aggregation snapshot of the global model
}

// NewMomentumServer wraps server with FedAvgM momentum β ∈ [0,1).
func NewMomentumServer(server *Server, momentum float64) (*MomentumServer, error) {
	if server == nil {
		return nil, fmt.Errorf("fl: momentum server needs a server")
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("fl: server momentum %v outside [0,1)", momentum)
	}
	return &MomentumServer{
		server:   server,
		momentum: momentum,
		velocity: make([]float64, len(server.Global())),
	}, nil
}

// Global returns a copy of the current global parameter vector.
func (m *MomentumServer) Global() []float64 { return m.server.Global() }

// Evaluate scores the current global model on the held-out test set.
func (m *MomentumServer) Evaluate() (float64, error) { return m.server.Evaluate() }

// Aggregate applies FedAvgM: Δ = avg(updates) − ω; v ← βv + Δ; ω ← ω + v.
// Non-finite updates are rejected with a *CorruptUpdateError before either
// the velocity buffer or the global model is touched, matching the plain
// server's guard.
func (m *MomentumServer) Aggregate(updates []Update) error {
	for _, u := range updates {
		if j, bad := firstNonFinite(u.Params); bad {
			return &CorruptUpdateError{Client: u.Client, Reason: fmt.Sprintf("non-finite parameter %v at index %d", u.Params[j], j)}
		}
	}
	m.before = mat.EnsureVec(m.before, len(m.server.global))
	copy(m.before, m.server.global)
	if err := m.server.Aggregate(updates); err != nil {
		return err
	}
	// Recover the pseudo-gradient and re-apply it through momentum, writing
	// the result back into the freshly aggregated global model in place.
	after := m.server.global
	for i := range after {
		delta := after[i] - m.before[i]
		m.velocity[i] = m.momentum*m.velocity[i] + delta
		after[i] = m.before[i] + m.velocity[i]
	}
	return nil
}

// SampleClients selects a uniform random subset of k client indices out of
// n without replacement — the client-sampling step of the original FedAvg
// paper ("select a random fraction C of clients each round"). It returns
// all indices when k >= n and errors on non-positive k.
func SampleClients(rng *rand.Rand, n, k int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fl: sample from %d clients", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("fl: sample size %d, want > 0", k)
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	return rng.Perm(n)[:k], nil
}
