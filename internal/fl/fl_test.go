package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/dataset"
	"chiron/internal/nn"
)

func mlpFactory(in, hidden, classes int) ModelFactory {
	return func(rng *rand.Rand) (*nn.Network, error) {
		return nn.NewClassifierMLP(rng, in, hidden, classes)
	}
}

func testData(t *testing.T, samples int, seed int64) *dataset.Dataset {
	t.Helper()
	spec := dataset.SynthMNIST(samples)
	d, err := dataset.Generate(rand.New(rand.NewSource(seed)), spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{Epochs: 0, BatchSize: 10, LearningRate: 0.1},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1},
		{Epochs: 1, BatchSize: 10, LearningRate: 0},
		{Epochs: 1, BatchSize: 10, LearningRate: 0.1, Momentum: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Epochs != 5 {
		t.Fatalf("epochs %d, want σ=5", cfg.Epochs)
	}
	if cfg.BatchSize != 10 {
		t.Fatalf("batch size %d, want 10", cfg.BatchSize)
	}
}

func TestNewClientValidation(t *testing.T) {
	d := testData(t, 50, 1)
	rng := rand.New(rand.NewSource(2))
	if _, err := NewClient(0, nil, mlpFactory(d.Dim(), 8, 10), DefaultConfig(), rng); err == nil {
		t.Fatal("accepted nil data")
	}
	if _, err := NewClient(0, d, mlpFactory(d.Dim(), 8, 10), Config{}, rng); err == nil {
		t.Fatal("accepted invalid config")
	}
	c, err := NewClient(3, d, mlpFactory(d.Dim(), 8, 10), DefaultConfig(), rng)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if c.ID() != 3 || c.NumSamples() != 50 {
		t.Fatalf("client id %d samples %d", c.ID(), c.NumSamples())
	}
}

func TestTrainRoundImprovesLocalLoss(t *testing.T) {
	d := testData(t, 300, 3)
	rng := rand.New(rand.NewSource(4))
	factory := mlpFactory(d.Dim(), 16, 10)
	client, err := NewClient(0, d, factory, DefaultConfig(), rng)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ref, err := factory(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	global := ref.FlattenParams()
	params1, loss1, err := client.TrainRound(global)
	if err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if len(params1) != len(global) {
		t.Fatalf("param count %d, want %d", len(params1), len(global))
	}
	_, loss2, err := client.TrainRound(params1)
	if err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if loss2 >= loss1 {
		t.Fatalf("training loss did not improve: %v -> %v", loss1, loss2)
	}
}

func TestServerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewServer(nil, mlpFactory(4, 4, 2), rng); err == nil {
		t.Fatal("accepted nil test set")
	}
}

func TestAggregateWeightedMean(t *testing.T) {
	d := testData(t, 40, 7)
	rng := rand.New(rand.NewSource(8))
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rng)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	dim := len(srv.Global())
	a := make([]float64, dim)
	b := make([]float64, dim)
	for i := range a {
		a[i] = 1
		b[i] = 4
	}
	// Weights 1:2 → mean (1·1 + 4·2)/3 = 3.
	err = srv.Aggregate([]Update{
		{Params: a, Samples: 100},
		{Params: b, Samples: 200},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	for i, v := range srv.Global() {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("global[%d] = %v, want 3", i, v)
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	d := testData(t, 40, 9)
	rng := rand.New(rand.NewSource(10))
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rng)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Aggregate(nil); err == nil {
		t.Fatal("accepted empty update set")
	}
	if err := srv.Aggregate([]Update{{Params: []float64{1}, Samples: 1}}); err == nil {
		t.Fatal("accepted wrong-size update")
	}
	good := srv.Global()
	if err := srv.Aggregate([]Update{{Params: good, Samples: 0}}); err == nil {
		t.Fatal("accepted zero-sample update")
	}
}

func TestGlobalReturnsCopy(t *testing.T) {
	d := testData(t, 40, 11)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	g := srv.Global()
	g[0] = 1e9
	if srv.Global()[0] == 1e9 {
		t.Fatal("Global returns a live reference")
	}
}

// TestFederatedRoundImprovesAccuracy runs three full FedAvg rounds over
// three clients and checks test accuracy improves substantially over the
// untrained model.
func TestFederatedRoundImprovesAccuracy(t *testing.T) {
	full := testData(t, 900, 13)
	rng := rand.New(rand.NewSource(14))
	train, test, err := full.Split(rng, 0.25)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	parts, err := dataset.IID{}.Partition(rng, train, 3)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	factory := mlpFactory(full.Dim(), 24, 10)
	srv, err := NewServer(test, factory, rng)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	before, err := srv.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	clients := make([]*Client, 3)
	for i, idx := range parts {
		local, err := train.Subset(idx)
		if err != nil {
			t.Fatalf("Subset: %v", err)
		}
		clients[i], err = NewClient(i, local, factory, DefaultConfig(), rand.New(rand.NewSource(int64(20+i))))
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
	}
	for round := 0; round < 3; round++ {
		global := srv.Global()
		var updates []Update
		for _, c := range clients {
			params, _, err := c.TrainRound(global)
			if err != nil {
				t.Fatalf("TrainRound: %v", err)
			}
			updates = append(updates, Update{Params: params, Samples: c.NumSamples()})
		}
		if err := srv.Aggregate(updates); err != nil {
			t.Fatalf("Aggregate: %v", err)
		}
	}
	after, err := srv.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if after < before+0.3 {
		t.Fatalf("FedAvg failed to learn: %v -> %v", before, after)
	}
}

// Property (FedAvg algebra, Eqn. 4): aggregating identical updates is the
// identity, and aggregation is invariant to scaling all sample counts.
func TestAggregateAlgebraProperty(t *testing.T) {
	d := testData(t, 40, 15)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rng)
		if err != nil {
			return false
		}
		dim := len(srv.Global())
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if err := srv.Aggregate([]Update{{Params: v, Samples: 7}, {Params: v, Samples: 13}}); err != nil {
			return false
		}
		got := srv.Global()
		for i := range got {
			if math.Abs(got[i]-v[i]) > 1e-12 {
				return false
			}
		}
		// Scale-invariance of weights.
		a, b := make([]float64, dim), make([]float64, dim)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		srv1, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		srv2, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if err := srv1.Aggregate([]Update{{Params: a, Samples: 3}, {Params: b, Samples: 5}}); err != nil {
			return false
		}
		if err := srv2.Aggregate([]Update{{Params: a, Samples: 30}, {Params: b, Samples: 50}}); err != nil {
			return false
		}
		g1, g2 := srv1.Global(), srv2.Global()
		for i := range g1 {
			if math.Abs(g1[i]-g2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
