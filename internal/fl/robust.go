package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// CorruptUpdateError reports a client upload rejected by sanitization; it
// names the offending client so the caller can exclude, refuse payment to,
// or log it.
type CorruptUpdateError struct {
	Client int
	Reason string
}

// Error implements error.
func (e *CorruptUpdateError) Error() string {
	return fmt.Sprintf("fl: corrupt update from client %d: %s", e.Client, e.Reason)
}

// ErrQuorum is returned by AggregateRobust when fewer updates survive
// sanitization than the configured minimum quorum. The global model is
// left untouched; the caller skips the round and carries on.
var ErrQuorum = errors.New("fl: aggregation quorum not met")

// firstNonFinite returns the index of the first NaN/±Inf entry, if any.
func firstNonFinite(params []float64) (int, bool) {
	for i, v := range params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i, true
		}
	}
	return 0, false
}

// RobustConfig parameterizes sanitize-then-aggregate.
type RobustConfig struct {
	// MinQuorum is the minimum number of accepted updates required to
	// touch the global model. Zero selects the default quorum of 1.
	MinQuorum int
	// MaxDeltaNorm rejects any update whose L2 distance from the current
	// global model exceeds this bound — the norm-blowup screen. Zero
	// disables the check.
	MaxDeltaNorm float64
}

// Validate reports whether the configuration is usable.
func (c RobustConfig) Validate() error {
	if c.MinQuorum < 0 {
		return fmt.Errorf("fl: min quorum %d, want >= 0", c.MinQuorum)
	}
	if c.MaxDeltaNorm < 0 || math.IsNaN(c.MaxDeltaNorm) {
		return fmt.Errorf("fl: max delta norm %v, want >= 0", c.MaxDeltaNorm)
	}
	return nil
}

// Rejection records one update excluded by sanitization.
type Rejection struct {
	Client int
	Reason string
}

// Sanitize splits updates into the ones safe to aggregate and the ones
// rejected: wrong length, non-positive samples, non-finite parameters, or
// (when maxDeltaNorm > 0) an L2 distance from global beyond the bound.
// The accepted slice preserves input order.
func Sanitize(updates []Update, global []float64, maxDeltaNorm float64) (accepted []Update, rejected []Rejection) {
	for _, u := range updates {
		switch {
		case len(u.Params) != len(global):
			rejected = append(rejected, Rejection{Client: u.Client,
				Reason: fmt.Sprintf("%d params, want %d", len(u.Params), len(global))})
		case u.Samples <= 0:
			rejected = append(rejected, Rejection{Client: u.Client,
				Reason: fmt.Sprintf("%d samples", u.Samples)})
		default:
			if j, bad := firstNonFinite(u.Params); bad {
				rejected = append(rejected, Rejection{Client: u.Client,
					Reason: fmt.Sprintf("non-finite parameter %v at index %d", u.Params[j], j)})
				continue
			}
			if maxDeltaNorm > 0 {
				var sq float64
				for i, v := range u.Params {
					d := v - global[i]
					sq += d * d
				}
				if norm := math.Sqrt(sq); norm > maxDeltaNorm {
					rejected = append(rejected, Rejection{Client: u.Client,
						Reason: fmt.Sprintf("update norm %.3g exceeds bound %.3g", norm, maxDeltaNorm)})
					continue
				}
			}
			accepted = append(accepted, u)
		}
	}
	return accepted, rejected
}

// AggregateRobust sanitizes the updates, enforces the quorum, and FedAvgs
// the survivors. It returns the rejections (possibly empty) alongside any
// error; on ErrQuorum the global model is unchanged and the rejections
// explain which uploads were lost.
func (s *Server) AggregateRobust(updates []Update, cfg RobustConfig) ([]Rejection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	accepted, rejected := Sanitize(updates, s.global, cfg.MaxDeltaNorm)
	minQuorum := cfg.MinQuorum
	if minQuorum <= 0 {
		minQuorum = 1
	}
	if len(accepted) < minQuorum {
		return rejected, fmt.Errorf("%w: %d accepted of %d uploaded, need %d",
			ErrQuorum, len(accepted), len(updates), minQuorum)
	}
	return rejected, s.Aggregate(accepted)
}

// AggregateRobust is the MomentumServer counterpart: sanitization and the
// quorum gate run against the inner server's global model, then the
// surviving updates pass through the FedAvgM momentum step.
func (m *MomentumServer) AggregateRobust(updates []Update, cfg RobustConfig) ([]Rejection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	accepted, rejected := Sanitize(updates, m.server.global, cfg.MaxDeltaNorm)
	minQuorum := cfg.MinQuorum
	if minQuorum <= 0 {
		minQuorum = 1
	}
	if len(accepted) < minQuorum {
		return rejected, fmt.Errorf("%w: %d accepted of %d uploaded, need %d",
			ErrQuorum, len(accepted), len(updates), minQuorum)
	}
	return rejected, m.Aggregate(accepted)
}

// Uplink simulates an unreliable client→server upload channel with bounded
// retry: each attempt independently fails with DropRate, and the server
// re-requests up to MaxRetries times before abandoning the upload. All
// randomness flows through the injected rng, so a seeded run is exactly
// reproducible.
type Uplink struct {
	dropRate   float64
	maxRetries int
	rng        *rand.Rand
}

// NewUplink builds an uplink. dropRate must lie in [0,1); maxRetries >= 0.
func NewUplink(dropRate float64, maxRetries int, rng *rand.Rand) (*Uplink, error) {
	switch {
	case dropRate < 0 || dropRate >= 1 || math.IsNaN(dropRate):
		return nil, fmt.Errorf("fl: uplink drop rate %v outside [0,1)", dropRate)
	case maxRetries < 0:
		return nil, fmt.Errorf("fl: uplink max retries %d, want >= 0", maxRetries)
	case dropRate > 0 && rng == nil:
		return nil, fmt.Errorf("fl: uplink with drop rate needs a rng")
	}
	return &Uplink{dropRate: dropRate, maxRetries: maxRetries, rng: rng}, nil
}

// Send plays one upload: it returns how many attempts were consumed and
// whether the update ultimately landed. Attempts is always in
// [1, maxRetries+1].
func (u *Uplink) Send() (attempts int, ok bool) {
	for attempts = 1; ; attempts++ {
		if u.dropRate == 0 || u.rng.Float64() >= u.dropRate {
			return attempts, true
		}
		if attempts > u.maxRetries {
			return attempts, false
		}
	}
}
