package fl

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAggregateRejectsNonFinite(t *testing.T) {
	d := testData(t, 40, 31)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	before := srv.Global()
	for name, poison := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		bad := srv.Global()
		bad[3] = poison
		err := srv.Aggregate([]Update{
			{Client: 0, Params: srv.Global(), Samples: 10},
			{Client: 7, Params: bad, Samples: 10},
		})
		if err == nil {
			t.Fatalf("%s update accepted", name)
		}
		var corrupt *CorruptUpdateError
		if !errors.As(err, &corrupt) {
			t.Fatalf("%s: error %T, want *CorruptUpdateError", name, err)
		}
		if corrupt.Client != 7 {
			t.Fatalf("%s: blamed client %d, want 7", name, corrupt.Client)
		}
		if !strings.Contains(err.Error(), "client 7") {
			t.Fatalf("%s: message does not name the client: %v", name, err)
		}
		if !vecEqual(srv.Global(), before) {
			t.Fatalf("%s: rejected aggregation mutated the global model", name)
		}
	}
}

func TestMomentumAggregateRejectsNonFiniteUntouched(t *testing.T) {
	d := testData(t, 40, 33)
	base, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	m, err := NewMomentumServer(base, 0.9)
	if err != nil {
		t.Fatalf("NewMomentumServer: %v", err)
	}
	// Seed the velocity buffer with one clean step.
	clean := m.Global()
	for i := range clean {
		clean[i] += 0.5
	}
	if err := m.Aggregate([]Update{{Client: 0, Params: clean, Samples: 10}}); err != nil {
		t.Fatalf("clean Aggregate: %v", err)
	}
	globalBefore := m.Global()
	velocityBefore := append([]float64(nil), m.velocity...)

	bad := m.Global()
	bad[0] = math.NaN()
	err = m.Aggregate([]Update{{Client: 3, Params: bad, Samples: 10}})
	var corrupt *CorruptUpdateError
	if !errors.As(err, &corrupt) || corrupt.Client != 3 {
		t.Fatalf("error %v, want *CorruptUpdateError for client 3", err)
	}
	if !vecEqual(m.Global(), globalBefore) {
		t.Fatal("rejected update mutated the global model")
	}
	if !vecEqual(m.velocity, velocityBefore) {
		t.Fatal("rejected update mutated the velocity buffer")
	}
}

func TestSanitizeReasons(t *testing.T) {
	global := []float64{0, 0, 0, 0}
	updates := []Update{
		{Client: 0, Params: []float64{1, 1, 1, 1}, Samples: 5},          // fine
		{Client: 1, Params: []float64{1, 1}, Samples: 5},                // wrong length
		{Client: 2, Params: []float64{1, 1, 1, 1}, Samples: 0},          // no samples
		{Client: 3, Params: []float64{1, math.NaN(), 1, 1}, Samples: 5}, // non-finite
		{Client: 4, Params: []float64{1e9, 0, 0, 0}, Samples: 5},        // norm blowup
	}
	accepted, rejected := Sanitize(updates, global, 100)
	if len(accepted) != 1 || accepted[0].Client != 0 {
		t.Fatalf("accepted %v, want only client 0", accepted)
	}
	if len(rejected) != 4 {
		t.Fatalf("rejected %d updates, want 4", len(rejected))
	}
	wantReason := map[int]string{1: "params", 2: "samples", 3: "non-finite", 4: "norm"}
	for _, r := range rejected {
		want, ok := wantReason[r.Client]
		if !ok {
			t.Fatalf("unexpected rejection of client %d", r.Client)
		}
		if !strings.Contains(r.Reason, want) {
			t.Fatalf("client %d reason %q missing %q", r.Client, r.Reason, want)
		}
	}
	// MaxDeltaNorm 0 disables the norm screen only.
	accepted, _ = Sanitize(updates, global, 0)
	if len(accepted) != 2 {
		t.Fatalf("norm screen off: accepted %d, want 2", len(accepted))
	}
}

func TestAggregateRobustQuorum(t *testing.T) {
	d := testData(t, 40, 35)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(36)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	before := srv.Global()
	bad := srv.Global()
	bad[0] = math.Inf(1)
	good := srv.Global()
	for i := range good {
		good[i] += 0.1
	}
	// One survivor against a quorum of two: the round must be refused.
	rej, err := srv.AggregateRobust([]Update{
		{Client: 0, Params: good, Samples: 10},
		{Client: 1, Params: bad, Samples: 10},
	}, RobustConfig{MinQuorum: 2})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("error %v, want ErrQuorum", err)
	}
	if len(rej) != 1 || rej[0].Client != 1 {
		t.Fatalf("rejections %v, want client 1", rej)
	}
	if !vecEqual(srv.Global(), before) {
		t.Fatal("quorum-failed round mutated the global model")
	}
	// With quorum 1 the survivor is enough and the bad update is screened.
	rej, err = srv.AggregateRobust([]Update{
		{Client: 0, Params: good, Samples: 10},
		{Client: 1, Params: bad, Samples: 10},
	}, RobustConfig{MinQuorum: 1})
	if err != nil {
		t.Fatalf("AggregateRobust: %v", err)
	}
	if len(rej) != 1 {
		t.Fatalf("rejections %d, want 1", len(rej))
	}
	if !vecEqual(srv.Global(), good) {
		t.Fatal("surviving update was not aggregated")
	}
}

func TestAggregateRobustNormScreen(t *testing.T) {
	d := testData(t, 40, 37)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(38)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	blown := srv.Global()
	for i := range blown {
		blown[i] *= 1e9
	}
	rej, err := srv.AggregateRobust([]Update{
		{Client: 5, Params: blown, Samples: 10},
	}, RobustConfig{MaxDeltaNorm: 1e6})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("error %v, want ErrQuorum after norm rejection", err)
	}
	if len(rej) != 1 || rej[0].Client != 5 {
		t.Fatalf("rejections %v, want client 5", rej)
	}
}

func TestMomentumAggregateRobust(t *testing.T) {
	d := testData(t, 40, 39)
	base, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(40)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	m, err := NewMomentumServer(base, 0.5)
	if err != nil {
		t.Fatalf("NewMomentumServer: %v", err)
	}
	before := m.Global()
	bad := m.Global()
	bad[1] = math.NaN()
	rej, err := m.AggregateRobust([]Update{{Client: 2, Params: bad, Samples: 10}}, RobustConfig{})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("error %v, want ErrQuorum", err)
	}
	if len(rej) != 1 || rej[0].Client != 2 {
		t.Fatalf("rejections %v, want client 2", rej)
	}
	if !vecEqual(m.Global(), before) {
		t.Fatal("quorum-failed momentum round mutated the global model")
	}
	good := m.Global()
	for i := range good {
		good[i] += 0.2
	}
	if _, err := m.AggregateRobust([]Update{{Client: 0, Params: good, Samples: 10}}, RobustConfig{}); err != nil {
		t.Fatalf("clean AggregateRobust: %v", err)
	}
	if vecEqual(m.Global(), before) {
		t.Fatal("clean momentum round left the global model unchanged")
	}
}

func TestRobustConfigValidate(t *testing.T) {
	if err := (RobustConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (RobustConfig{MinQuorum: -1}).Validate(); err == nil {
		t.Fatal("negative quorum accepted")
	}
	if err := (RobustConfig{MaxDeltaNorm: -1}).Validate(); err == nil {
		t.Fatal("negative norm bound accepted")
	}
	if err := (RobustConfig{MaxDeltaNorm: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN norm bound accepted")
	}
}

func TestUplinkValidation(t *testing.T) {
	if _, err := NewUplink(1.0, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("drop rate 1 accepted")
	}
	if _, err := NewUplink(-0.1, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("negative drop rate accepted")
	}
	if _, err := NewUplink(0.5, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := NewUplink(0.5, 2, nil); err == nil {
		t.Fatal("lossy uplink without rng accepted")
	}
	if _, err := NewUplink(0, 0, nil); err != nil {
		t.Fatalf("lossless uplink rejected: %v", err)
	}
}

func TestUplinkDeterministicAndBounded(t *testing.T) {
	const maxRetries = 3
	run := func(seed int64) ([]int, []bool) {
		u, err := NewUplink(0.4, maxRetries, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("NewUplink: %v", err)
		}
		attempts := make([]int, 200)
		oks := make([]bool, 200)
		for i := range attempts {
			attempts[i], oks[i] = u.Send()
		}
		return attempts, oks
	}
	a1, ok1 := run(9)
	a2, ok2 := run(9)
	var anyDrop, anyOK bool
	for i := range a1 {
		if a1[i] != a2[i] || ok1[i] != ok2[i] {
			t.Fatalf("send %d differs across identically-seeded uplinks", i)
		}
		if a1[i] < 1 || a1[i] > maxRetries+1 {
			t.Fatalf("attempts %d outside [1,%d]", a1[i], maxRetries+1)
		}
		if !ok1[i] {
			anyDrop = true
			if a1[i] != maxRetries+1 {
				t.Fatalf("failed send used %d attempts, want the full %d", a1[i], maxRetries+1)
			}
		} else {
			anyOK = true
		}
	}
	if !anyDrop || !anyOK {
		t.Fatal("40% drop rate over 200 sends produced no mix of outcomes")
	}

	// A lossless uplink always lands first try.
	u, err := NewUplink(0, 5, nil)
	if err != nil {
		t.Fatalf("NewUplink: %v", err)
	}
	for i := 0; i < 10; i++ {
		if attempts, ok := u.Send(); !ok || attempts != 1 {
			t.Fatalf("lossless send: %d attempts, ok=%v", attempts, ok)
		}
	}
}
