package fl

import (
	"math"
	"math/rand"
	"testing"
)

func TestMomentumServerValidation(t *testing.T) {
	d := testData(t, 40, 20)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := NewMomentumServer(nil, 0.5); err == nil {
		t.Fatal("accepted nil server")
	}
	if _, err := NewMomentumServer(srv, 1.0); err == nil {
		t.Fatal("accepted momentum 1.0")
	}
	if _, err := NewMomentumServer(srv, -0.1); err == nil {
		t.Fatal("accepted negative momentum")
	}
}

func TestMomentumZeroIsPlainFedAvg(t *testing.T) {
	d := testData(t, 40, 22)
	mkServer := func() *Server {
		srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		return srv
	}
	plain := mkServer()
	wrapped, err := NewMomentumServer(mkServer(), 0)
	if err != nil {
		t.Fatalf("NewMomentumServer: %v", err)
	}
	dim := len(plain.Global())
	update := make([]float64, dim)
	rng := rand.New(rand.NewSource(24))
	for i := range update {
		update[i] = rng.NormFloat64()
	}
	if err := plain.Aggregate([]Update{{Params: update, Samples: 5}}); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if err := wrapped.Aggregate([]Update{{Params: update, Samples: 5}}); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	a, b := plain.Global(), wrapped.Global()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("momentum 0 diverges from plain FedAvg")
		}
	}
}

func TestMomentumAcceleratesRepeatedDirection(t *testing.T) {
	d := testData(t, 40, 25)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(26)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ms, err := NewMomentumServer(srv, 0.9)
	if err != nil {
		t.Fatalf("NewMomentumServer: %v", err)
	}
	start := ms.Global()
	dim := len(start)
	// Clients repeatedly report the model shifted by +1 in coordinate 0.
	step := func() {
		target := ms.Global()
		target[0]++
		if err := ms.Aggregate([]Update{{Params: target, Samples: 1}}); err != nil {
			t.Fatalf("Aggregate: %v", err)
		}
	}
	step()
	afterOne := ms.Global()[0] - start[0]
	step()
	afterTwo := ms.Global()[0] - start[0] - afterOne
	// With momentum the second step must exceed the first (velocity built).
	if afterTwo <= afterOne {
		t.Fatalf("momentum did not accelerate: step1 %v step2 %v", afterOne, afterTwo)
	}
	_ = dim
}

func TestMomentumServerEvaluate(t *testing.T) {
	d := testData(t, 60, 27)
	srv, err := NewServer(d, mlpFactory(d.Dim(), 4, 10), rand.New(rand.NewSource(28)))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ms, err := NewMomentumServer(srv, 0.5)
	if err != nil {
		t.Fatalf("NewMomentumServer: %v", err)
	}
	acc, err := ms.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestSampleClients(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	sample, err := SampleClients(rng, 10, 4)
	if err != nil {
		t.Fatalf("SampleClients: %v", err)
	}
	if len(sample) != 4 {
		t.Fatalf("sample size %d", len(sample))
	}
	seen := map[int]bool{}
	for _, idx := range sample {
		if idx < 0 || idx >= 10 {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	// k >= n returns everyone.
	all, err := SampleClients(rng, 3, 10)
	if err != nil {
		t.Fatalf("SampleClients: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("full sample size %d", len(all))
	}
	if _, err := SampleClients(rng, 0, 1); err == nil {
		t.Fatal("accepted zero clients")
	}
	if _, err := SampleClients(rng, 5, 0); err == nil {
		t.Fatal("accepted zero sample size")
	}
}
