package fl

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSanitizeUpdate decodes arbitrary bytes into client updates and runs
// them through the sanitizer. Whatever the bytes say, Sanitize must never
// panic, must account for every input exactly once, must only accept
// finite, right-sized, norm-bounded updates, and must give every rejection
// a reason.
func FuzzSanitizeUpdate(f *testing.F) {
	f.Add([]byte{}, uint8(4), float64(10))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f}, uint8(1), float64(10))         // +Inf parameter
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xf8, 0x7f, 2, 2, 2, 2}, uint8(1), float64(0)) // NaN + short tail
	f.Add([]byte{64, 64, 64, 64, 64, 64, 64, 64}, uint8(1), float64(1e-12))    // norm blowup

	f.Fuzz(func(t *testing.T, data []byte, dim uint8, maxDeltaNorm float64) {
		n := int(dim%8) + 1 // global model size 1..8
		global := make([]float64, n)
		// Slice the fuzz bytes into updates of varying shapes: parameter
		// values come straight from the raw bits, so NaN, Inf, denormals,
		// and huge magnitudes all occur.
		var updates []Update
		for client := 0; len(data) >= 8 && client < 16; client++ {
			params := make([]float64, 0, n+1)
			take := client%(n+2) + 1 // deliberately wrong lengths too
			for i := 0; i < take && len(data) >= 8; i++ {
				params = append(params, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
				data = data[8:]
			}
			samples := client - 2 // negatives and zeros included
			updates = append(updates, Update{Client: client, Params: params, Samples: samples})
		}
		accepted, rejected := Sanitize(updates, global, math.Abs(maxDeltaNorm))
		if len(accepted)+len(rejected) != len(updates) {
			t.Fatalf("%d in, %d accepted + %d rejected", len(updates), len(accepted), len(rejected))
		}
		for _, rej := range rejected {
			if rej.Reason == "" {
				t.Fatalf("client %d rejected without a reason", rej.Client)
			}
		}
		bound := math.Abs(maxDeltaNorm)
		for _, u := range accepted {
			if len(u.Params) != n {
				t.Fatalf("accepted update with %d params, model has %d", len(u.Params), n)
			}
			if u.Samples <= 0 {
				t.Fatalf("accepted update with %d samples", u.Samples)
			}
			var sq float64
			for i, v := range u.Params {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite parameter %v", v)
				}
				d := v - global[i]
				sq += d * d
			}
			if bound > 0 && math.Sqrt(sq) > bound*(1+1e-12) {
				t.Fatalf("accepted norm %v beyond bound %v", math.Sqrt(sq), bound)
			}
		}
	})
}
