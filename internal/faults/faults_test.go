package faults

import (
	"math"
	"math/rand"
	"testing"
)

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		fault Fault
		ok    bool
	}{
		{Fault{Kind: None}, true},
		{Fault{Kind: Crash}, true},
		{Fault{Kind: Corrupt, Mode: CorruptBlowup}, true},
		{Fault{Kind: Straggle, Slowdown: 2}, true},
		{Fault{Kind: Straggle, Slowdown: 0.5}, false},
		{Fault{Kind: Straggle, Slowdown: math.Inf(1)}, false},
		{Fault{Kind: Drop, Attempts: 1}, true},
		{Fault{Kind: Drop, Attempts: 0}, false},
		{Fault{Kind: Kind(99)}, false},
	}
	for _, c := range cases {
		if err := c.fault.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.fault, err, c.ok)
		}
	}
}

func TestRatesValidate(t *testing.T) {
	if err := (Rates{Crash: 0.1, Straggle: 0.2, Drop: 0.1, Corrupt: 0.05}).Validate(); err != nil {
		t.Fatalf("valid rates rejected: %v", err)
	}
	if err := (Rates{Crash: -0.1}).Validate(); err == nil {
		t.Fatal("accepted negative rate")
	}
	if err := (Rates{Crash: 0.5, Straggle: 0.6}).Validate(); err == nil {
		t.Fatal("accepted rates summing past 1")
	}
	if err := (Rates{Straggle: 0.1, StraggleFactor: 1.1}).Validate(); err == nil {
		t.Fatal("accepted straggle factor below 1.5")
	}
}

func TestRatesScale(t *testing.T) {
	r := Rates{Crash: 0.05, Straggle: 0.1, Drop: 0.15, Corrupt: 0.025}
	s := r.Scale(2)
	if s.Crash != 0.1 || s.Straggle != 0.2 || s.Drop != 0.3 || s.Corrupt != 0.05 {
		t.Fatalf("Scale(2) = %+v", s)
	}
	if capped := (Rates{Crash: 0.8}).Scale(5); capped.Crash != 1 {
		t.Fatalf("scaling past 1 not clamped: %v", capped.Crash)
	}
	if zero := r.Scale(0); zero.Any() {
		t.Fatalf("Scale(0) still fires: %+v", zero)
	}
	// Saturating a mix renormalizes instead of producing an invalid split.
	sat := (Rates{Crash: 0.03, Straggle: 0.06, Drop: 0.05, Corrupt: 0.03}).Scale(6)
	if err := sat.Validate(); err != nil {
		t.Fatalf("saturated scale invalid: %v", err)
	}
	if sum := sat.Crash + sat.Straggle + sat.Drop + sat.Corrupt; math.Abs(sum-1) > 1e-12 {
		t.Fatalf("saturated sum %v, want 1", sum)
	}
	if math.Abs(sat.Straggle/sat.Crash-2) > 1e-12 {
		t.Fatalf("saturation distorted the mix proportions: %+v", sat)
	}
}

func TestScriptAt(t *testing.T) {
	s := Script{
		3: {1: {Kind: Crash}, 2: {Kind: None}},
	}
	if f, ok := s.At(3, 1); !ok || f.Kind != Crash {
		t.Fatalf("At(3,1) = %+v, %v", f, ok)
	}
	if _, ok := s.At(3, 2); ok {
		t.Fatal("a scripted None fault fired")
	}
	if _, ok := s.At(3, 0); ok {
		t.Fatal("unscripted node fired")
	}
	if _, ok := s.At(4, 1); ok {
		t.Fatal("unscripted round fired")
	}
}

func TestScriptValidate(t *testing.T) {
	good := Script{1: {0: {Kind: Straggle, Slowdown: 3}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	bad := Script{1: {0: {Kind: Drop, Attempts: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid script accepted")
	}
}

func TestSamplerDeterministicAndOrderIndependent(t *testing.T) {
	rates := Rates{Crash: 0.1, Straggle: 0.2, Drop: 0.2, Corrupt: 0.1}
	a, err := NewSampler(rates, 42)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	b, err := NewSampler(rates, 42)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	type cell struct {
		f  Fault
		ok bool
	}
	const rounds, nodes = 50, 10
	forward := make(map[[2]int]cell)
	for k := 1; k <= rounds; k++ {
		for i := 0; i < nodes; i++ {
			f, ok := a.At(k, i)
			forward[[2]int{k, i}] = cell{f, ok}
		}
	}
	// Query b in reverse order: every cell must match a's answer exactly.
	for k := rounds; k >= 1; k-- {
		for i := nodes - 1; i >= 0; i-- {
			f, ok := b.At(k, i)
			want := forward[[2]int{k, i}]
			if ok != want.ok || f != want.f {
				t.Fatalf("cell (%d,%d): %+v/%v vs %+v/%v", k, i, f, ok, want.f, want.ok)
			}
		}
	}
	// Re-querying the same sampler must also be stable.
	for k := 1; k <= rounds; k++ {
		for i := 0; i < nodes; i++ {
			f, ok := a.At(k, i)
			want := forward[[2]int{k, i}]
			if ok != want.ok || f != want.f {
				t.Fatalf("re-query cell (%d,%d) drifted", k, i)
			}
		}
	}
}

func TestSamplerSeedsDiffer(t *testing.T) {
	rates := Rates{Crash: 0.3, Corrupt: 0.3}
	a, _ := NewSampler(rates, 1)
	b, _ := NewSampler(rates, 2)
	var differ bool
	for k := 1; k <= 40 && !differ; k++ {
		for i := 0; i < 5; i++ {
			fa, oka := a.At(k, i)
			fb, okb := b.At(k, i)
			if oka != okb || fa != fb {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("two seeds produced identical 200-cell schedules")
	}
}

func TestSamplerMarginalRates(t *testing.T) {
	rates := Rates{Crash: 0.1, Straggle: 0.15, Drop: 0.2, Corrupt: 0.05}
	s, _ := NewSampler(rates, 7)
	counts := make(map[Kind]int)
	const n = 20000
	for i := 0; i < n; i++ {
		if f, ok := s.At(i/100+1, i%100); ok {
			counts[f.Kind]++
		}
	}
	check := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v rate %.3f, want %.2f ± 0.02", kind, got, want)
		}
	}
	check(Crash, 0.1)
	check(Straggle, 0.15)
	check(Drop, 0.2)
	check(Corrupt, 0.05)
}

func TestSamplerFaultFieldsWellFormed(t *testing.T) {
	s, _ := NewSampler(Rates{Straggle: 0.5, Drop: 0.5}, 11)
	for k := 1; k <= 100; k++ {
		for i := 0; i < 5; i++ {
			f, ok := s.At(k, i)
			if !ok {
				continue
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("sampled invalid fault %+v: %v", f, err)
			}
			if f.Kind == Straggle && (f.Slowdown < 1.5 || f.Slowdown > 4) {
				t.Fatalf("slowdown %v outside [1.5,4]", f.Slowdown)
			}
			if f.Kind == Drop && (f.Attempts < 1 || f.Attempts > 6) {
				t.Fatalf("attempts %d outside [1,6]", f.Attempts)
			}
		}
	}
}

func TestSamplerZeroRatesNeverFire(t *testing.T) {
	s, _ := NewSampler(Rates{}, 3)
	for k := 1; k <= 50; k++ {
		for i := 0; i < 5; i++ {
			if _, ok := s.At(k, i); ok {
				t.Fatal("zero-rate sampler fired")
			}
		}
	}
}

func hasNonFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func TestCorruptParamsModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := func() []float64 {
		p := make([]float64, 64)
		for i := range p {
			p[i] = 0.01 * float64(i)
		}
		return p
	}

	nan := base()
	CorruptParams(nan, CorruptNaN, rng)
	var sawNaN bool
	for _, v := range nan {
		if math.IsNaN(v) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Fatal("CorruptNaN introduced no NaN")
	}

	inf := base()
	CorruptParams(inf, CorruptInf, rng)
	var sawInf bool
	for _, v := range inf {
		if math.IsInf(v, 0) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatal("CorruptInf introduced no Inf")
	}

	blow := base()
	CorruptParams(blow, CorruptBlowup, rng)
	if hasNonFinite(blow) {
		t.Fatal("CorruptBlowup produced non-finite values; it must evade the finite check")
	}
	var normSq float64
	for _, v := range blow {
		normSq += v * v
	}
	if math.Sqrt(normSq) < 1e6 {
		t.Fatalf("blowup norm %v too small to trip norm screening", math.Sqrt(normSq))
	}

	// Empty vectors must not panic.
	CorruptParams(nil, CorruptNaN, rng)
}

func TestKindAndModeStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Crash: "crash", Straggle: "straggle", Drop: "drop", Corrupt: "corrupt",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	for m, want := range map[CorruptionMode]string{
		CorruptNaN: "nan", CorruptInf: "inf", CorruptBlowup: "blowup",
	} {
		if m.String() != want {
			t.Errorf("mode %d = %q, want %q", m, m.String(), want)
		}
	}
}
