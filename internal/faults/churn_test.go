package faults

import (
	"math"
	"testing"
)

func TestChurnScriptMembership(t *testing.T) {
	// Node 0: departs mid-round 3, rejoins at 7.
	// Node 1: absent from the start, arrives at 5.
	// Node 2: no events — present throughout.
	s, err := NewChurnScript([]ChurnEvent{
		{Round: 3, Node: 0, Kind: ChurnDepart},
		{Round: 7, Node: 0, Kind: ChurnArrive},
		{Round: 5, Node: 1, Kind: ChurnArrive},
	})
	if err != nil {
		t.Fatalf("NewChurnScript: %v", err)
	}
	cases := []struct {
		round, node      int
		present, departs bool
	}{
		{1, 0, true, false},
		{2, 0, true, false},
		{3, 0, true, true}, // present at Offer, gone mid-round
		{4, 0, false, false},
		{6, 0, false, false},
		{7, 0, true, false}, // rejoined
		{9, 0, true, false},
		{1, 1, false, false},
		{4, 1, false, false},
		{5, 1, true, false},
		{8, 1, true, false},
		{1, 2, true, false},
		{100, 2, true, false},
		{0, 0, false, false},  // rounds are 1-based
		{5, -1, false, false}, // negative node is never present
		{5, 99, true, false},  // unknown node defaults to present
	}
	for _, c := range cases {
		p, d := s.Membership(c.round, c.node)
		if p != c.present || d != c.departs {
			t.Errorf("Membership(%d, %d) = (%v, %v), want (%v, %v)",
				c.round, c.node, p, d, c.present, c.departs)
		}
	}
}

func TestChurnScriptValidation(t *testing.T) {
	cases := []struct {
		name   string
		events []ChurnEvent
		ok     bool
	}{
		{"empty", nil, true},
		{"depart then arrive", []ChurnEvent{
			{Round: 2, Node: 0, Kind: ChurnDepart}, {Round: 5, Node: 0, Kind: ChurnArrive}}, true},
		{"arrive first implies absent start", []ChurnEvent{
			{Round: 4, Node: 1, Kind: ChurnArrive}}, true},
		{"round zero", []ChurnEvent{{Round: 0, Node: 0, Kind: ChurnDepart}}, false},
		{"negative round", []ChurnEvent{{Round: -3, Node: 0, Kind: ChurnDepart}}, false},
		{"negative node", []ChurnEvent{{Round: 1, Node: -1, Kind: ChurnDepart}}, false},
		{"bad kind", []ChurnEvent{{Round: 1, Node: 0, Kind: ChurnKind(9)}}, false},
		{"duplicate cell", []ChurnEvent{
			{Round: 2, Node: 0, Kind: ChurnDepart}, {Round: 2, Node: 0, Kind: ChurnArrive}}, false},
		{"double depart", []ChurnEvent{
			{Round: 2, Node: 0, Kind: ChurnDepart}, {Round: 5, Node: 0, Kind: ChurnDepart}}, false},
		{"double arrive", []ChurnEvent{
			{Round: 2, Node: 0, Kind: ChurnArrive}, {Round: 5, Node: 0, Kind: ChurnArrive}}, false},
	}
	for _, c := range cases {
		_, err := NewChurnScript(c.events)
		if (err == nil) != c.ok {
			t.Errorf("%s: NewChurnScript = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestChurnScriptValidateFleetSize(t *testing.T) {
	s, err := NewChurnScript([]ChurnEvent{
		{Round: 2, Node: 0, Kind: ChurnDepart},
		{Round: 3, Node: 4, Kind: ChurnDepart},
	})
	if err != nil {
		t.Fatalf("NewChurnScript: %v", err)
	}
	if err := s.Validate(5); err != nil {
		t.Errorf("Validate(5) = %v, want nil (node 4 is in range)", err)
	}
	if err := s.Validate(4); err == nil {
		t.Error("Validate(4) = nil, want error (node 4 can never match)")
	}
}

func TestParseChurnScript(t *testing.T) {
	s, err := ParseChurnScript("-2@5, +2@9; +7@3")
	if err != nil {
		t.Fatalf("ParseChurnScript: %v", err)
	}
	if p, d := s.Membership(5, 2); !p || !d {
		t.Errorf("node 2 at round 5 = (%v, %v), want departing", p, d)
	}
	if p, _ := s.Membership(9, 2); !p {
		t.Error("node 2 should rejoin at round 9")
	}
	if p, _ := s.Membership(2, 7); p {
		t.Error("node 7 should be absent before its arrival")
	}
	if p, _ := s.Membership(3, 7); !p {
		t.Error("node 7 should be present from round 3")
	}

	// Canonical round-trip: format → parse → format is stable.
	text := FormatChurnScript(s)
	if text != "-2@5,+2@9,+7@3" {
		t.Errorf("FormatChurnScript = %q", text)
	}
	s2, err := ParseChurnScript(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if got := FormatChurnScript(s2); got != text {
		t.Errorf("round-trip format = %q, want %q", got, text)
	}

	if _, err := ParseChurnScript(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
	for _, bad := range []string{"2@5", "+x@5", "+2@y", "+2", "@5", "+2@5,+2@5"} {
		if _, err := ParseChurnScript(bad); err == nil {
			t.Errorf("ParseChurnScript(%q) accepted", bad)
		}
	}
}

func TestChurnRatesValidate(t *testing.T) {
	if err := (ChurnRates{Depart: 0.1, Arrive: 0.3, InitialAbsent: 0.2}).Validate(); err != nil {
		t.Fatalf("valid rates rejected: %v", err)
	}
	for _, bad := range []ChurnRates{
		{Depart: -0.1}, {Arrive: 1.5}, {InitialAbsent: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
	if (ChurnRates{}).Any() {
		t.Error("zero rates report Any")
	}
	if !(ChurnRates{Arrive: 0.01}).Any() {
		t.Error("nonzero rates report !Any")
	}
}

// TestChurnSamplerDeterminism: same seed ⇒ identical membership, different
// seed ⇒ (with these rates) some difference, and query order never matters
// because each query replays the chain from round 1.
func TestChurnSamplerDeterminism(t *testing.T) {
	rates := ChurnRates{Depart: 0.15, Arrive: 0.25, InitialAbsent: 0.3}
	a, err := NewChurnSampler(rates, 42)
	if err != nil {
		t.Fatalf("NewChurnSampler: %v", err)
	}
	b, _ := NewChurnSampler(rates, 42)
	c, _ := NewChurnSampler(rates, 43)

	type cell struct{ p, d bool }
	grid := func(s *ChurnSampler, reverse bool) map[[2]int]cell {
		m := make(map[[2]int]cell)
		for r := 1; r <= 40; r++ {
			for n := 0; n < 6; n++ {
				rr, nn := r, n
				if reverse {
					rr, nn = 41-r, 5-n
				}
				p, d := s.Membership(rr, nn)
				m[[2]int{rr, nn}] = cell{p, d}
			}
		}
		return m
	}
	ga, gb := grid(a, false), grid(b, true)
	if len(ga) != len(gb) {
		t.Fatalf("grid sizes differ")
	}
	same := true
	for k, v := range ga {
		if gb[k] != v {
			t.Fatalf("same seed, different membership at %v: %v vs %v", k, v, gb[k])
		}
	}
	for k, v := range grid(c, false) {
		if ga[k] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical membership grids")
	}
}

// TestChurnSamplerChainConsistency: the sampled process is a legal chain —
// the departs flag only ever fires on a present node, and an absent node
// never shows a departs flag (Markov legality; a depart at r followed by a
// fresh arrival at r+1 is legal rejoining, not an inconsistency).
func TestChurnSamplerChainConsistency(t *testing.T) {
	s, err := NewChurnSampler(ChurnRates{Depart: 0.3, Arrive: 0.4, InitialAbsent: 0.5}, 7)
	if err != nil {
		t.Fatalf("NewChurnSampler: %v", err)
	}
	for n := 0; n < 8; n++ {
		for r := 1; r <= 60; r++ {
			if p, d := s.Membership(r, n); d && !p {
				t.Fatalf("node %d round %d: departs while absent", n, r)
			}
		}
	}
	// Zero rates leave the chain frozen at its initial state forever.
	frozen, _ := NewChurnSampler(ChurnRates{InitialAbsent: 0.5}, 7)
	for n := 0; n < 8; n++ {
		first, _ := frozen.Membership(1, n)
		for r := 2; r <= 30; r++ {
			p, d := frozen.Membership(r, n)
			if p != first || d {
				t.Fatalf("node %d round %d: zero-rate chain moved (%v, %v)", n, r, p, d)
			}
		}
	}
}

// TestChurnSamplerRates sanity-checks the marginal transition frequencies
// against the configured rates over a large sample. The post-round state
// s_r is present exactly when the node was present at r's Offer and did
// not depart: s_r = p_r ∧ ¬d_r.
func TestChurnSamplerRates(t *testing.T) {
	rates := ChurnRates{Depart: 0.2, Arrive: 0.35, InitialAbsent: 0.4}
	s, err := NewChurnSampler(rates, 11)
	if err != nil {
		t.Fatalf("NewChurnSampler: %v", err)
	}
	var departOpp, departs, arriveOpp, arrives, absentStart int
	const nodes, rounds = 400, 50
	for n := 0; n < nodes; n++ {
		p, d := s.Membership(1, n)
		prev := p && !d
		for r := 2; r <= rounds; r++ {
			p, d = s.Membership(r, n)
			if prev {
				departOpp++
				if d {
					departs++
				}
			} else {
				arriveOpp++
				if p {
					arrives++
				}
			}
			prev = p && !d
		}
	}
	// With both transition rates zero the chain is frozen, so round 1
	// exposes the initial-presence draw directly.
	frozen, _ := NewChurnSampler(ChurnRates{InitialAbsent: rates.InitialAbsent}, 11)
	for n := 0; n < nodes; n++ {
		if p, _ := frozen.Membership(1, n); !p {
			absentStart++
		}
	}
	checks := []struct {
		name     string
		got      float64
		want     float64
		tolerate float64
	}{
		{"depart", float64(departs) / float64(departOpp), rates.Depart, 0.05},
		{"arrive", float64(arrives) / float64(arriveOpp), rates.Arrive, 0.05},
		{"initial absent", float64(absentStart) / nodes, rates.InitialAbsent, 0.07},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tolerate {
			t.Errorf("%s frequency %v, want %v ± %v", c.name, c.got, c.want, c.tolerate)
		}
	}
}
