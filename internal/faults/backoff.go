package faults

import (
	"fmt"
	"math"
)

// Backoff is the one retry/backoff policy shared by every layer that
// re-attempts failed work: the round pipeline's dropped-upload retries
// (internal/round Execute), and the episode supervisor's crash-recovery
// restarts (internal/supervise). It replaces the ad-hoc flat
// MaxRetries+RetryBackoff pairs that used to live in each caller.
//
// Delays are in the simulation's time unit (seconds). The zero value is a
// valid "no retries, no delay" policy.
type Backoff struct {
	// Base is the delay before the first retry attempt.
	Base float64
	// Factor multiplies the delay on each further attempt (geometric
	// backoff). 0 or 1 selects a constant delay of Base per attempt.
	Factor float64
	// Max caps any single delay (0 = uncapped). With Factor > 1 the cap is
	// also the overflow guard: delays saturate at Max instead of running to
	// +Inf at large attempt counts.
	Max float64
	// MaxRetries bounds how many retry attempts are made at all (0 = the
	// first failure is terminal).
	MaxRetries int
}

// Constant returns the flat policy the pre-consolidation round pipeline
// used: up to retries attempts, each preceded by the same base pause.
func Constant(base float64, retries int) Backoff {
	return Backoff{Base: base, Factor: 1, MaxRetries: retries}
}

// Validate reports whether the policy is usable.
func (b Backoff) Validate() error {
	switch {
	case b.Base < 0 || math.IsNaN(b.Base) || math.IsInf(b.Base, 0):
		return fmt.Errorf("faults: backoff base %v, want finite >= 0", b.Base)
	case b.Factor < 0 || math.IsNaN(b.Factor) || math.IsInf(b.Factor, 0):
		return fmt.Errorf("faults: backoff factor %v, want finite >= 0", b.Factor)
	case b.Max < 0 || math.IsNaN(b.Max) || math.IsInf(b.Max, 0):
		return fmt.Errorf("faults: backoff max %v, want finite >= 0", b.Max)
	case b.MaxRetries < 0:
		return fmt.Errorf("faults: backoff max retries %d, want >= 0", b.MaxRetries)
	}
	return nil
}

// flat reports whether every attempt's delay is exactly Base — the case
// where callers may use the closed-form retries·(work+Base) arithmetic.
// Flatness requires a non-binding cap so Delay and the closed form agree.
func (b Backoff) flat() bool {
	return (b.Factor == 0 || b.Factor == 1) && (b.Max == 0 || b.Max >= b.Base)
}

// Delay returns the pause before the attempt-th retry (1-based).
// Non-positive attempts cost nothing. The result is always finite: with
// geometric growth the delay saturates at Max (or MaxFloat64 when no cap is
// set) instead of overflowing to +Inf at large attempt counts.
func (b Backoff) Delay(attempt int) float64 {
	if attempt <= 0 || b.Base <= 0 {
		return 0
	}
	d := b.Base
	if b.Factor > 0 && b.Factor != 1 && attempt > 1 {
		d = b.Base * math.Pow(b.Factor, float64(attempt-1))
	}
	if b.Max > 0 && (d > b.Max || math.IsInf(d, 1)) {
		d = b.Max
	}
	if math.IsInf(d, 1) {
		d = math.MaxFloat64
	}
	return d
}

// Total returns the summed delay of the first n retry attempts. The flat
// case uses the same closed form the pre-consolidation pipeline computed —
// n·Base as a single multiply — so seeded traces stay bit-identical.
func (b Backoff) Total(n int) float64 {
	if n <= 0 || b.Base <= 0 {
		return 0
	}
	if b.flat() {
		return float64(n) * b.Base
	}
	var sum float64
	for a := 1; a <= n; a++ {
		sum += b.Delay(a)
		if math.IsInf(sum, 1) {
			return math.MaxFloat64
		}
	}
	return sum
}

// RetryTime returns the wall-clock cost of n re-upload attempts that each
// pay commTime plus the attempt's backoff delay. Flat policies use the
// single-multiply closed form n·(commTime+Base) the pre-consolidation
// round pipeline computed, so seeded traces stay bit-identical; geometric
// policies sum per attempt and saturate at MaxFloat64 instead of
// overflowing to +Inf.
func (b Backoff) RetryTime(commTime float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	if b.flat() {
		return float64(n) * (commTime + b.Base)
	}
	var sum float64
	for a := 1; a <= n; a++ {
		sum += commTime + b.Delay(a)
		if math.IsInf(sum, 1) {
			return math.MaxFloat64
		}
	}
	return sum
}
