package faults

import (
	"math"
	"testing"
)

func TestBackoffValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		ok   bool
	}{
		{"zero value", Backoff{}, true},
		{"flat constant", Constant(0.5, 3), true},
		{"geometric capped", Backoff{Base: 1, Factor: 2, Max: 30, MaxRetries: 10}, true},
		{"negative base", Backoff{Base: -1}, false},
		{"nan base", Backoff{Base: math.NaN()}, false},
		{"inf base", Backoff{Base: math.Inf(1)}, false},
		{"negative factor", Backoff{Factor: -2}, false},
		{"nan factor", Backoff{Factor: math.NaN()}, false},
		{"negative max", Backoff{Max: -1}, false},
		{"inf max", Backoff{Max: math.Inf(1)}, false},
		{"negative retries", Backoff{MaxRetries: -1}, false},
	}
	for _, c := range cases {
		if err := c.b.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate(%+v) = %v, want ok=%v", c.name, c.b, err, c.ok)
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	flat := Constant(0.5, 5)
	for a := 1; a <= 5; a++ {
		if got := flat.Delay(a); got != 0.5 {
			t.Errorf("flat Delay(%d) = %v, want 0.5", a, got)
		}
	}
	if got := flat.Delay(0); got != 0 {
		t.Errorf("Delay(0) = %v, want 0", got)
	}
	if got := flat.Delay(-3); got != 0 {
		t.Errorf("Delay(-3) = %v, want 0", got)
	}

	geo := Backoff{Base: 1, Factor: 2, MaxRetries: 10}
	for a, want := range map[int]float64{1: 1, 2: 2, 3: 4, 4: 8} {
		if got := geo.Delay(a); got != want {
			t.Errorf("geometric Delay(%d) = %v, want %v", a, got, want)
		}
	}

	capped := Backoff{Base: 1, Factor: 2, Max: 5}
	if got := capped.Delay(10); got != 5 {
		t.Errorf("capped Delay(10) = %v, want 5", got)
	}
	// A cap below Base binds immediately.
	tight := Backoff{Base: 3, Factor: 1, Max: 1}
	if got := tight.Delay(1); got != 1 {
		t.Errorf("tight-cap Delay(1) = %v, want 1", got)
	}
}

// TestBackoffOverflow drives the geometric policy far past float64 range:
// delays and totals must saturate finite (Max or MaxFloat64), never Inf or
// NaN, even at absurd retry counts.
func TestBackoffOverflow(t *testing.T) {
	uncapped := Backoff{Base: 1, Factor: 10}
	for _, a := range []int{300, 1000, 1 << 20, math.MaxInt32} {
		d := uncapped.Delay(a)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("uncapped Delay(%d) = %v, want finite", a, d)
		}
	}
	// 10^(a−1) overflows float64 past a = 309: the delay must saturate.
	for _, a := range []int{1000, 1 << 20, math.MaxInt32} {
		if d := uncapped.Delay(a); d != math.MaxFloat64 {
			t.Fatalf("uncapped Delay(%d) = %v, want saturation at MaxFloat64", a, d)
		}
	}
	capped := Backoff{Base: 1, Factor: 10, Max: 60}
	if d := capped.Delay(math.MaxInt32); d != 60 {
		t.Fatalf("capped Delay(huge) = %v, want 60", d)
	}

	total := uncapped.Total(5000)
	if math.IsInf(total, 0) || math.IsNaN(total) || total != math.MaxFloat64 {
		t.Fatalf("uncapped Total(5000) = %v, want MaxFloat64 saturation", total)
	}
	rt := uncapped.RetryTime(12.5, 5000)
	if math.IsInf(rt, 0) || math.IsNaN(rt) || rt != math.MaxFloat64 {
		t.Fatalf("uncapped RetryTime(12.5, 5000) = %v, want MaxFloat64 saturation", rt)
	}

	// Monotone in the attempt count until saturation.
	prev := 0.0
	for n := 1; n <= 400; n++ {
		tot := capped.Total(n)
		if tot < prev {
			t.Fatalf("Total(%d) = %v < Total(%d) = %v", n, tot, n-1, prev)
		}
		prev = tot
	}
}

// TestBackoffFlatClosedForm pins the bit-identity contract: the flat
// policy's Total and RetryTime are the exact single-multiply closed forms
// the pre-consolidation round pipeline computed.
func TestBackoffFlatClosedForm(t *testing.T) {
	const base, comm = 0.3, 7.7
	for _, factor := range []float64{0, 1} {
		b := Backoff{Base: base, Factor: factor, MaxRetries: 9}
		for n := 0; n <= 9; n++ {
			if got, want := b.Total(n), float64(n)*base; got != want {
				t.Errorf("factor %v: Total(%d) = %v, want %v", factor, n, got, want)
			}
			if got, want := b.RetryTime(comm, n), float64(n)*(comm+base); got != want {
				t.Errorf("factor %v: RetryTime(%d) = %v, want %v", factor, n, got, want)
			}
		}
	}
	// A binding cap (Max < Base) disables the closed form: each attempt
	// pays the capped delay instead.
	bound := Backoff{Base: 2, Factor: 1, Max: 0.5}
	if got, want := bound.RetryTime(comm, 2), (comm+0.5)+(comm+0.5); got != want {
		t.Errorf("binding cap RetryTime = %v, want %v", got, want)
	}
}
