package faults

import (
	"math"
	"testing"
)

// FuzzChurnSchedule throws arbitrary text at the churn-script parser and
// arbitrary floats/seeds at the churn sampler. The parser must never
// accept a script that violates the alternation invariants (negative
// rounds/nodes, duplicate (node, round) cells, double departures), and an
// accepted script must round-trip through its canonical text form. The
// sampler must reject NaN and out-of-range rates, and an accepted sampler
// must obey the membership laws at every queried cell: deterministic
// repeat queries, departs ⇒ present, and out-of-domain queries answering
// absent.
func FuzzChurnSchedule(f *testing.F) {
	f.Add("-2@5,+2@9,+7@3", 0.1, 0.2, 0.3, int64(1))
	f.Add("", 0.0, 0.0, 0.0, int64(42))
	f.Add("+0@1;-0@2 +0@9", 1.0, 1.0, 1.0, int64(-7))
	f.Add("-1@-4", math.NaN(), 0.5, 0.5, int64(0))
	f.Add("+3@1,+3@1", 0.5, math.Inf(1), -0.5, int64(99))
	f.Add("--1@2", 2.0, 0.0, 1.0, int64(3))

	f.Fuzz(func(t *testing.T, spec string, depart, arrive, initAbsent float64, seed int64) {
		if s, err := ParseChurnScript(spec); err == nil {
			events := s.Events()
			seen := make(map[[2]int]bool, len(events))
			lastKind := make(map[int]ChurnKind)
			for _, ev := range events {
				if ev.Round < 1 {
					t.Fatalf("accepted event with round %d", ev.Round)
				}
				if ev.Node < 0 {
					t.Fatalf("accepted event with node %d", ev.Node)
				}
				cell := [2]int{ev.Node, ev.Round}
				if seen[cell] {
					t.Fatalf("accepted duplicate event for node %d round %d", ev.Node, ev.Round)
				}
				seen[cell] = true
				if prev, ok := lastKind[ev.Node]; ok && prev == ev.Kind {
					t.Fatalf("accepted consecutive %v events for node %d", ev.Kind, ev.Node)
				}
				lastKind[ev.Node] = ev.Kind
			}
			// Canonical text form round-trips to the same schedule.
			text := FormatChurnScript(s)
			s2, err := ParseChurnScript(text)
			if err != nil {
				t.Fatalf("canonical form %q rejected: %v", text, err)
			}
			if got := FormatChurnScript(s2); got != text {
				t.Fatalf("round-trip format %q != %q", got, text)
			}
			checkMembershipLaws(t, s)
		}

		rates := ChurnRates{Depart: depart, Arrive: arrive, InitialAbsent: initAbsent}
		sampler, err := NewChurnSampler(rates, seed)
		valid := rates.Validate() == nil
		if valid != (err == nil) {
			t.Fatalf("NewChurnSampler(%+v) = %v, want valid=%v", rates, err, valid)
		}
		if err == nil {
			for _, p := range []float64{depart, arrive, initAbsent} {
				if math.IsNaN(p) || p < 0 || p > 1 {
					t.Fatalf("sampler accepted rate %v", p)
				}
			}
			checkMembershipLaws(t, sampler)
		}
	})
}

// checkMembershipLaws probes a schedule over a small grid and asserts the
// ChurnSchedule contract: determinism, departs ⇒ present, and absent
// answers outside the domain (round < 1, node < 0).
func checkMembershipLaws(t *testing.T, s ChurnSchedule) {
	t.Helper()
	for r := -1; r <= 12; r++ {
		for n := -1; n <= 6; n++ {
			p, d := s.Membership(r, n)
			if p2, d2 := s.Membership(r, n); p2 != p || d2 != d {
				t.Fatalf("Membership(%d, %d) not deterministic", r, n)
			}
			if d && !p {
				t.Fatalf("Membership(%d, %d): departs while absent", r, n)
			}
			if (r < 1 || n < 0) && (p || d) {
				t.Fatalf("Membership(%d, %d) = (%v, %v) outside the domain", r, n, p, d)
			}
		}
	}
}
