package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Churn models fleet membership over an episode: nodes arriving into and
// departing from the recruitment pool mid-training, the participation
// dynamics real edge deployments exhibit on top of the per-round faults
// above. The contract mirrors Schedule: answers are a pure function of
// (round, node) so churn-enabled runs are exactly reproducible.
//
// Semantics, aligned with the round pipeline's stages:
//
//   - A present node is in the Offer-stage recruitment pool at that round
//     and plays its Eqn. (11) best response as usual.
//   - An arrival at round k means the node enters the pool at round k's
//     Offer stage (it was absent before).
//   - A departure at round k means the node is still present at round k's
//     Offer — it can accept the offer — but leaves mid-round: if it joined,
//     it goes silent like a crash and settles under the failure-payment
//     rule. From round k+1 on it is absent until a later arrival.

// ChurnKind classifies a membership event.
type ChurnKind uint8

// The churn event kinds.
const (
	// ChurnArrive brings a node into the recruitment pool at the event's
	// round.
	ChurnArrive ChurnKind = iota
	// ChurnDepart removes a node mid-round at the event's round.
	ChurnDepart
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnArrive:
		return "arrive"
	case ChurnDepart:
		return "depart"
	default:
		return fmt.Sprintf("churnkind(%d)", uint8(k))
	}
}

// ChurnEvent is one scripted membership change for one node.
type ChurnEvent struct {
	Round int
	Node  int
	Kind  ChurnKind
}

// ChurnSchedule answers the fleet-membership question per (round, node):
// whether the node is in the recruitment pool at round's Offer stage, and
// whether it departs mid-round. Implementations must be deterministic and
// query-order-independent, like fault Schedules.
type ChurnSchedule interface {
	Membership(round, node int) (present, departs bool)
}

// ChurnScript is an explicit churn schedule for exact reproduction: a
// validated event list per node. Nodes with no events are present for the
// whole episode; a node whose first event is an arrival starts absent.
type ChurnScript struct {
	events          map[int][]ChurnEvent
	initiallyAbsent map[int]bool
}

var _ ChurnSchedule = (*ChurnScript)(nil)

// NewChurnScript validates events and builds a script over them. Rules:
// rounds are 1-based, node IDs non-negative, at most one event per
// (round, node), and each node's event sequence must alternate
// depart/arrive consistently with its implied initial state (present
// unless its first event is an arrival).
func NewChurnScript(events []ChurnEvent) (*ChurnScript, error) {
	s := &ChurnScript{
		events:          make(map[int][]ChurnEvent),
		initiallyAbsent: make(map[int]bool),
	}
	for _, ev := range events {
		if ev.Round < 1 {
			return nil, fmt.Errorf("faults: churn event round %d, want >= 1", ev.Round)
		}
		if ev.Node < 0 {
			return nil, fmt.Errorf("faults: churn event node %d, want >= 0", ev.Node)
		}
		if ev.Kind != ChurnArrive && ev.Kind != ChurnDepart {
			return nil, fmt.Errorf("faults: unknown churn kind %d", ev.Kind)
		}
		s.events[ev.Node] = append(s.events[ev.Node], ev)
	}
	for node, evs := range s.events {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Round < evs[j].Round })
		for i := 1; i < len(evs); i++ {
			if evs[i].Round == evs[i-1].Round {
				return nil, fmt.Errorf("faults: node %d has two churn events at round %d", node, evs[i].Round)
			}
		}
		// The implied initial state makes the sequence unambiguous: a node
		// whose story starts with an arrival was outside the fleet before.
		present := evs[0].Kind != ChurnArrive
		s.initiallyAbsent[node] = !present
		for _, ev := range evs {
			switch ev.Kind {
			case ChurnArrive:
				if present {
					return nil, fmt.Errorf("faults: node %d arrives at round %d while already present", node, ev.Round)
				}
				present = true
			case ChurnDepart:
				if !present {
					return nil, fmt.Errorf("faults: node %d departs at round %d while already absent", node, ev.Round)
				}
				present = false
			}
		}
	}
	return s, nil
}

// Membership implements ChurnSchedule by replaying the node's event
// sequence up to round.
func (s *ChurnScript) Membership(round, node int) (present, departs bool) {
	if round < 1 || node < 0 {
		return false, false
	}
	present = !s.initiallyAbsent[node]
	for _, ev := range s.events[node] {
		if ev.Round > round {
			break
		}
		switch ev.Kind {
		case ChurnArrive:
			present = true
		case ChurnDepart:
			if ev.Round == round {
				// Present at this round's Offer, gone mid-round.
				return true, true
			}
			present = false
		}
	}
	return present, false
}

// Validate reports an error if the script names a node outside [0, nodes):
// such an event can never match a Membership query, so a typo'd node ID
// would otherwise be silently inert.
func (s *ChurnScript) Validate(nodes int) error {
	for node := range s.events {
		if node >= nodes {
			return fmt.Errorf("faults: churn script names node %d, but the fleet has %d nodes (IDs 0..%d)",
				node, nodes, nodes-1)
		}
	}
	return nil
}

// Events returns the script's validated events in (node, round) order —
// the canonical form FormatChurnScript renders.
func (s *ChurnScript) Events() []ChurnEvent {
	nodes := make([]int, 0, len(s.events))
	for node := range s.events {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	var out []ChurnEvent
	for _, node := range nodes {
		out = append(out, s.events[node]...)
	}
	return out
}

// ParseChurnScript parses the CLI/text form of a churn script: events
// separated by commas, semicolons, or whitespace, each "+NODE@ROUND" (an
// arrival) or "-NODE@ROUND" (a departure). Example: "-2@5,+2@9,+7@3" —
// node 2 departs mid-round 5 and rejoins at round 9; node 7 (absent at
// episode start) arrives at round 3. An empty spec yields an empty script
// (a fixed fleet).
func ParseChurnScript(spec string) (*ChurnScript, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	events := make([]ChurnEvent, 0, len(fields))
	for _, tok := range fields {
		var kind ChurnKind
		switch {
		case strings.HasPrefix(tok, "+"):
			kind = ChurnArrive
		case strings.HasPrefix(tok, "-"):
			kind = ChurnDepart
		default:
			return nil, fmt.Errorf("faults: churn event %q must start with + (arrive) or - (depart)", tok)
		}
		body := tok[1:]
		at := strings.IndexByte(body, '@')
		if at < 0 {
			return nil, fmt.Errorf("faults: churn event %q missing @ROUND", tok)
		}
		node, err := strconv.Atoi(body[:at])
		if err != nil {
			return nil, fmt.Errorf("faults: churn event %q: bad node: %v", tok, err)
		}
		round, err := strconv.Atoi(body[at+1:])
		if err != nil {
			return nil, fmt.Errorf("faults: churn event %q: bad round: %v", tok, err)
		}
		events = append(events, ChurnEvent{Round: round, Node: node, Kind: kind})
	}
	return NewChurnScript(events)
}

// FormatChurnScript renders a script back into the ParseChurnScript text
// form (round-trip stable for validated scripts).
func FormatChurnScript(s *ChurnScript) string {
	evs := s.Events()
	parts := make([]string, len(evs))
	for i, ev := range evs {
		sign := "+"
		if ev.Kind == ChurnDepart {
			sign = "-"
		}
		parts[i] = fmt.Sprintf("%s%d@%d", sign, ev.Node, ev.Round)
	}
	return strings.Join(parts, ",")
}

// ChurnRates parameterizes a sampled churn schedule as a per-node two-state
// Markov chain over rounds.
type ChurnRates struct {
	// Depart is the per-round hazard that a present node departs mid-round.
	Depart float64
	// Arrive is the per-round probability that an absent node (re)enters
	// the pool at that round's Offer stage.
	Arrive float64
	// InitialAbsent is the probability a node starts the episode outside
	// the pool (it then needs an Arrive draw to ever participate).
	InitialAbsent float64
}

// Validate reports whether the rates are usable.
func (r ChurnRates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"depart", r.Depart}, {"arrive", r.Arrive}, {"initial-absent", r.InitialAbsent},
	} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("faults: churn %s rate %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// Any reports whether the rates can ever change fleet membership.
func (r ChurnRates) Any() bool {
	return r.Depart > 0 || r.Arrive > 0 || r.InitialAbsent > 0
}

// ChurnSampler is a seed-deterministic sampled ChurnSchedule. Each
// (round, node) cell's uniform draw derives from (seed, round, node) — the
// same discipline as the fault Sampler — so membership never depends on
// query order. A query walks the node's chain from round 1, making the
// sampler stateless and safe to share across parallel environments.
type ChurnSampler struct {
	rates ChurnRates
	seed  int64
}

var _ ChurnSchedule = (*ChurnSampler)(nil)

// NewChurnSampler validates rates and builds a sampler over them.
func NewChurnSampler(rates ChurnRates, seed int64) (*ChurnSampler, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	return &ChurnSampler{rates: rates, seed: seed}, nil
}

// Rates returns the sampler's churn rates.
func (s *ChurnSampler) Rates() ChurnRates { return s.rates }

// churnSalt decorrelates churn cells from fault-Sampler cells at the same
// seed, so the two schedules never reuse a uniform draw.
const churnSalt = 0xda3e39cb94b95bdb

// unit returns the cell's uniform draw in [0,1). Round 0 carries the
// initial-presence draw.
func (s *ChurnSampler) unit(round, node int) float64 {
	h := splitmix64(uint64(s.seed) ^ churnSalt)
	h = splitmix64(h ^ uint64(round)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(node)*0xbf58476d1ce4e5b9)
	return float64(h>>11) / (1 << 53)
}

// Membership implements ChurnSchedule: the node's presence chain is
// replayed from round 1 with one uniform draw per round, so each round's
// marginal depart/arrive probability matches the configured rate exactly.
func (s *ChurnSampler) Membership(round, node int) (present, departs bool) {
	if round < 1 || node < 0 {
		return false, false
	}
	present = s.unit(0, node) >= s.rates.InitialAbsent
	for r := 1; r <= round; r++ {
		u := s.unit(r, node)
		if present {
			if u < s.rates.Depart {
				if r == round {
					return true, true
				}
				present = false
			}
		} else if u < s.rates.Arrive {
			present = true
		}
	}
	return present, false
}
