// Package faults injects node failures into the edge-learning round
// pipeline. The paper's round model (T_k = max_i T_{i,k}, Eqn. 8) assumes
// every recruited node finishes; real edge fleets crash mid-round, straggle
// far beyond the clean cost model, drop uploads, and occasionally return
// corrupted parameter vectors. This package expresses those failures as
// per-node, per-round fault schedules that are either scripted (for exact
// reproduction in tests) or sampled from rates with a seed-deterministic
// derivation, so two runs with the same seed see byte-identical fault
// sequences regardless of how many other random draws happen in between.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies an injected fault.
type Kind uint8

// The fault taxonomy. At most one fault fires per node per round.
const (
	// None is the zero value: no fault.
	None Kind = iota
	// Crash kills the node mid-round: it goes silent, uploads nothing,
	// and the server only detects the failure by timeout.
	Crash
	// Straggle multiplies the node's round time by Fault.Slowdown,
	// modeling thermal throttling, background load, or a degraded link.
	Straggle
	// Drop loses the node's upload Fault.Attempts times; each failed
	// attempt costs a re-upload plus backoff, and the node is abandoned
	// once the server's retry budget is exhausted.
	Drop
	// Corrupt delivers the upload on time but with a damaged parameter
	// vector (NaN/Inf entries or a norm blowup, per Fault.Mode).
	Corrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Straggle:
		return "straggle"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CorruptionMode selects how a Corrupt fault damages the parameter vector.
type CorruptionMode uint8

// The corruption modes.
const (
	// CorruptNaN overwrites a subset of parameters with NaN.
	CorruptNaN CorruptionMode = iota
	// CorruptInf overwrites a subset of parameters with ±Inf.
	CorruptInf
	// CorruptBlowup scales the whole vector by a huge factor — every
	// entry stays finite, so only norm screening catches it.
	CorruptBlowup
)

// String implements fmt.Stringer.
func (m CorruptionMode) String() string {
	switch m {
	case CorruptNaN:
		return "nan"
	case CorruptInf:
		return "inf"
	case CorruptBlowup:
		return "blowup"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Fault is one injected failure for one node in one round.
type Fault struct {
	Kind Kind
	// Slowdown multiplies the node's round time (Straggle only, ≥ 1).
	Slowdown float64
	// Attempts is how many consecutive uploads are lost (Drop only, ≥ 1).
	Attempts int
	// Mode selects the corruption flavor (Corrupt only).
	Mode CorruptionMode
}

// Validate reports whether the fault is well formed.
func (f Fault) Validate() error {
	switch f.Kind {
	case None, Crash, Corrupt:
		return nil
	case Straggle:
		if f.Slowdown < 1 || math.IsInf(f.Slowdown, 0) || math.IsNaN(f.Slowdown) {
			return fmt.Errorf("faults: straggle slowdown %v, want finite >= 1", f.Slowdown)
		}
		return nil
	case Drop:
		if f.Attempts < 1 {
			return fmt.Errorf("faults: drop attempts %d, want >= 1", f.Attempts)
		}
		return nil
	default:
		return fmt.Errorf("faults: unknown kind %d", f.Kind)
	}
}

// Schedule answers "which fault, if any, hits node i in round k". Rounds
// and nodes are the environment's indices (rounds 1-based, nodes 0-based).
// Implementations must be deterministic: At(k, i) always returns the same
// answer for the same schedule.
type Schedule interface {
	At(round, node int) (Fault, bool)
}

// Script is an explicit schedule — round → node → fault — for exact
// reproduction in tests and regression traces.
type Script map[int]map[int]Fault

// At implements Schedule.
func (s Script) At(round, node int) (Fault, bool) {
	f, ok := s[round][node]
	if !ok || f.Kind == None {
		return Fault{}, false
	}
	return f, true
}

// Validate checks every scripted fault.
func (s Script) Validate() error {
	for round, nodes := range s {
		for node, f := range nodes {
			if err := f.Validate(); err != nil {
				return fmt.Errorf("faults: script round %d node %d: %w", round, node, err)
			}
		}
	}
	return nil
}

// Rates parameterizes a sampled fault schedule: each is the per-node,
// per-round probability that the corresponding fault fires. At most one
// fault fires per (round, node); the rates must sum to at most 1.
type Rates struct {
	Crash    float64
	Straggle float64
	Drop     float64
	Corrupt  float64
	// StraggleFactor bounds the sampled slowdown: Straggle faults draw a
	// slowdown uniformly from [1.5, StraggleFactor]. Zero selects the
	// default 4.
	StraggleFactor float64
}

// Validate reports whether the rates are usable.
func (r Rates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"crash", r.Crash}, {"straggle", r.Straggle},
		{"drop", r.Drop}, {"corrupt", r.Corrupt},
	} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", p.name, p.v)
		}
	}
	if total := r.Crash + r.Straggle + r.Drop + r.Corrupt; total > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", total)
	}
	if r.StraggleFactor != 0 && r.StraggleFactor < 1.5 {
		return fmt.Errorf("faults: straggle factor %v, want 0 (default) or >= 1.5", r.StraggleFactor)
	}
	return nil
}

// Any reports whether any fault can fire at these rates.
func (r Rates) Any() bool {
	return r.Crash > 0 || r.Straggle > 0 || r.Drop > 0 || r.Corrupt > 0
}

// Scale returns the rates multiplied by f, letting sweeps express "the
// same fault mix at increasing intensity". When the scaled rates would sum
// past 1 — no longer a valid probability split — they are renormalized to
// sum to exactly 1, preserving the mix's proportions at saturation.
func (r Rates) Scale(f float64) Rates {
	clamp := func(v float64) float64 {
		v *= f
		if v < 0 {
			return 0
		}
		return v
	}
	out := r
	out.Crash = clamp(r.Crash)
	out.Straggle = clamp(r.Straggle)
	out.Drop = clamp(r.Drop)
	out.Corrupt = clamp(r.Corrupt)
	if sum := out.Crash + out.Straggle + out.Drop + out.Corrupt; sum > 1 {
		out.Crash /= sum
		out.Straggle /= sum
		out.Drop /= sum
		out.Corrupt /= sum
	}
	return out
}

// Sampler is a seed-deterministic sampled Schedule. Every (round, node)
// cell derives its own RNG from (seed, round, node), so the answer for a
// cell never depends on query order or on how many cells were queried —
// the property that makes sampled fault runs exactly reproducible.
type Sampler struct {
	rates Rates
	seed  int64
}

// NewSampler validates rates and builds a sampler over them.
func NewSampler(rates Rates, seed int64) (*Sampler, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	return &Sampler{rates: rates, seed: seed}, nil
}

// Rates returns the sampler's fault rates.
func (s *Sampler) Rates() Rates { return s.rates }

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash that
// turns (seed, round, node) into an independent RNG stream per cell.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *Sampler) cellRng(round, node int) *rand.Rand {
	h := splitmix64(uint64(s.seed))
	h = splitmix64(h ^ uint64(round)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(node)*0xbf58476d1ce4e5b9)
	return rand.New(rand.NewSource(int64(h & math.MaxInt64)))
}

// At implements Schedule: a single uniform draw per cell is compared
// against the cumulative rates, so the marginal probability of each fault
// kind matches its configured rate exactly.
func (s *Sampler) At(round, node int) (Fault, bool) {
	if !s.rates.Any() {
		return Fault{}, false
	}
	rng := s.cellRng(round, node)
	u := rng.Float64()
	switch {
	case u < s.rates.Crash:
		return Fault{Kind: Crash}, true
	case u < s.rates.Crash+s.rates.Straggle:
		factor := s.rates.StraggleFactor
		if factor == 0 {
			factor = 4
		}
		return Fault{Kind: Straggle, Slowdown: 1.5 + rng.Float64()*(factor-1.5)}, true
	case u < s.rates.Crash+s.rates.Straggle+s.rates.Drop:
		// Geometric tail: each extra lost attempt halves in probability,
		// capped so a single fault can't stall a round forever.
		attempts := 1
		for attempts < 6 && rng.Float64() < 0.5 {
			attempts++
		}
		return Fault{Kind: Drop, Attempts: attempts}, true
	case u < s.rates.Crash+s.rates.Straggle+s.rates.Drop+s.rates.Corrupt:
		return Fault{Kind: Corrupt, Mode: CorruptionMode(rng.Intn(3))}, true
	default:
		return Fault{}, false
	}
}

// CorruptParams damages params in place according to mode, using rng for
// the damaged positions. It is the reference corruption used by the fault
// harnesses; the sanitization layer in internal/fl must catch all three
// modes.
func CorruptParams(params []float64, mode CorruptionMode, rng *rand.Rand) {
	if len(params) == 0 {
		return
	}
	switch mode {
	case CorruptNaN, CorruptInf:
		bad := math.NaN()
		if mode == CorruptInf {
			bad = math.Inf(1)
			if rng.Intn(2) == 1 {
				bad = math.Inf(-1)
			}
		}
		// Damage a handful of entries — enough that any aggregation that
		// touches the vector is poisoned, sparse enough to be realistic
		// bit-rot rather than a zeroed buffer.
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			params[rng.Intn(len(params))] = bad
		}
	case CorruptBlowup:
		scale := 1e9 * (1 + rng.Float64())
		for i := range params {
			params[i] *= scale
		}
	}
}
