// Package round decomposes one federated training round into an explicit
// stage chain:
//
//	Offer → Respond → Execute → Settle → Commit
//
// Each stage is a small type with its own inputs and outputs, operating on
// a shared State blackboard:
//
//   - Offer validates the posted price vector and sizes the round record.
//   - Respond plays every node's best response (Eqn. 11), including the
//     availability and bandwidth-jitter draws of the churn model.
//   - Execute applies the injected fault schedule (crash, straggle, drop,
//     corrupt) and the server's round deadline to the joined nodes.
//   - Settle computes the budget side: the actual payment under the
//     failure-payment rule, the completion quorum inputs, the empty-offer
//     waste charge, and the worst-case (contracted) budget feasibility
//     check of Sec. V-A.
//   - Commit advances the accuracy model when the quorum is met and
//     records the round in the ledger.
//
// The chain reproduces edgeenv's original monolithic Step bit-for-bit:
// stages iterate nodes in index order, consume the shared RNG in the same
// sequence (availability before jitter, per node), and accumulate payments
// in the same floating-point order. edgeenv retains the MDP wrapper
// (states, rewards, termination) on top of this pipeline; experiment
// sweeps therefore parallelize across environments without touching the
// per-round economics.
//
// # Fleet-scale batch execution
//
// Internally the stages are vectorized over the struct-of-arrays
// device.Fleet: Respond's Eqn. (11) best response and Execute's failure
// pipeline are elementwise per node, so they shard over the bounded worker
// pool (mat.ParallelRange) — bit-identical at any worker count because
// each element is computed exactly once, independent of banding. Every
// reduction (participant count, contracted-payment sum, the actual
// payment, and the streamed T_k = max_i T_{i,k} / Σ_i T_{i,k} aggregates)
// runs as a single sequential pass in ascending node order — the fixed
// reduction order that keeps seeded traces byte-identical whether the
// elementwise work ran on one worker or sixteen. RNG-consuming churn
// draws always run in a sequential pre-pass, preserving the draw stream.
//
// In compact mode (Config.Compact) the per-node record vectors are not
// materialized at all: stages write into reusable State scratch columns
// and the committed market.Round carries only streamed aggregates, so the
// steady state allocates nothing proportional to N — the property that
// makes million-node rounds tractable (see DESIGN.md §13).
package round

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/mat"
)

// respondFlopsPerNode estimates the scalar-operation cost of one node's
// best response, the work hint ParallelRange uses to decide whether the
// node axis is worth sharding.
const respondFlopsPerNode = 24

// executeFlopsPerNode estimates one node's failure-pipeline cost.
const executeFlopsPerNode = 8

// Status reports how a round left the pipeline.
type Status int

// The terminal pipeline statuses. StatusPending marks a State still
// flowing through the chain.
const (
	StatusPending Status = iota
	// StatusCommitted: the round trained (or missed quorum), was paid for,
	// and is recorded in the ledger.
	StatusCommitted
	// StatusEmpty: the offer attracted no participants; the server's
	// timeout was charged as waste and no round was recorded.
	StatusEmpty
	// StatusBudgetExhausted: the worst-case contracted payment exceeds the
	// remaining budget; the round is discarded wholesale (Sec. V-A).
	StatusBudgetExhausted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusCommitted:
		return "committed"
	case StatusEmpty:
		return "empty"
	case StatusBudgetExhausted:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// State is the blackboard one round's data flows through. Stages populate
// it in chain order; the fields each stage owns are documented on the
// stage types. A State is reusable: Reset repositions it for the next
// round without reallocating its per-node buffers, which is what keeps
// steady-state allocations independent of the fleet size.
type State struct {
	// Index is k, the 1-based round number (drives the fault schedule).
	Index int
	// Prices is the per-node offer posted by the mechanism.
	Prices []float64
	// PrevAccuracy is A(ω_{k−1}); Commit leaves the post-round accuracy in
	// Record.Accuracy (unchanged when the quorum is missed).
	PrevAccuracy float64

	// Record is the market round being assembled. In compact mode it
	// carries only streamed aggregates (NumNodes/MaxTime/SumTime plus the
	// scalar counters); otherwise it holds the full per-node vectors.
	Record market.Round
	// Compact marks the record as aggregate-only; it is set by the Offer
	// stage from its configuration.
	Compact bool
	// Joined marks nodes whose best response accepted the offer.
	Joined []bool
	// Departing marks nodes the churn schedule removes mid-round: present
	// at the Offer stage, gone before their upload lands.
	Departing []bool
	// ContractPay holds each joiner's full contracted payment p_i·ζ_i.
	ContractPay []float64
	// CommTimes holds each joiner's (possibly jittered) upload time, the
	// unit of retry churn in Execute.
	CommTimes []float64
	// Contracted is Σ ContractPay: the worst-case round payment the budget
	// feasibility check uses.
	Contracted float64
	// Completed lists node indices whose updates entered aggregation.
	Completed []int
	// Status is the round's terminal disposition (set by Settle or Commit).
	Status Status

	// Compact-mode scratch columns: the per-node working set that replaces
	// the record vectors. They are sized by Offer and reused across
	// rounds.
	scrFreqs, scrTimes []float64
	scrOutcomes        []market.Outcome
	// Churn-draw scratch for Respond's sequential RNG pre-pass.
	scrEligible []bool
	scrComm     []float64
}

// NewState positions a fresh blackboard for round index over n nodes.
// prices is retained by reference until Offer clones it into the record.
func NewState(index int, prices []float64, prevAccuracy float64, n int) *State {
	st := &State{}
	st.Reset(index, prices, prevAccuracy, n)
	return st
}

// Reset repositions the blackboard for a new round over n nodes, reusing
// every buffer that already has the right length — after the first round
// of an episode, Reset allocates nothing. prices is retained by reference
// until Offer clones it into the record (vector mode) or reads it in
// place (compact mode).
func (st *State) Reset(index int, prices []float64, prevAccuracy float64, n int) {
	st.Index = index
	st.Prices = prices
	st.PrevAccuracy = prevAccuracy
	st.Record = market.Round{}
	st.Status = StatusPending
	st.Contracted = 0
	st.Completed = st.Completed[:0]
	st.Joined = ensureBools(st.Joined, n)
	st.Departing = ensureBools(st.Departing, n)
	st.ContractPay = mat.EnsureVec(st.ContractPay, n)
	st.CommTimes = mat.EnsureVec(st.CommTimes, n)
	// Joined, ContractPay, and the frequency/time columns are fully
	// overwritten by Respond's elementwise pass; Departing and CommTimes
	// are written sparsely (present/joined nodes only), so stale entries
	// from the previous round must be cleared here.
	for i := range st.Departing {
		st.Departing[i] = false
	}
	for i := range st.CommTimes {
		st.CommTimes[i] = 0
	}
}

// ensureBools returns v when it already has length n, else a fresh mask.
func ensureBools(v []bool, n int) []bool {
	if len(v) == n {
		return v
	}
	return make([]bool, n)
}

// freqs returns the active per-node frequency column: the record's own
// vector in vector mode, reusable scratch in compact mode.
func (st *State) freqs() []float64 {
	if st.Compact {
		return st.scrFreqs
	}
	return st.Record.Freqs
}

// times returns the active per-node round-time column.
func (st *State) times() []float64 {
	if st.Compact {
		return st.scrTimes
	}
	return st.Record.Times
}

// outcomes returns the active per-node outcome column.
func (st *State) outcomes() []market.Outcome {
	if st.Compact {
		return st.scrOutcomes
	}
	return st.Record.Outcomes
}

// Freqs exposes the active frequency column (record vector or compact
// scratch) for inspection by tests and metric extractors. Callers must
// not retain it across rounds in compact mode — the buffer is reused.
func (st *State) Freqs() []float64 { return st.freqs() }

// Times exposes the active round-time column under the same aliasing
// caveat as Freqs.
func (st *State) Times() []float64 { return st.times() }

// Outcomes exposes the active outcome column under the same aliasing
// caveat as Freqs.
func (st *State) Outcomes() []market.Outcome { return st.outcomes() }

// Stage is one link of the round chain. Run mutates the State in place;
// an error aborts the round (the caller decides episode semantics).
type Stage interface {
	// Name identifies the stage in errors and logs.
	Name() string
	// Run executes the stage against the blackboard.
	Run(st *State) error
}

// Offer opens the round: it validates the posted price vector against the
// fleet size and sizes the record's per-node vectors (vector mode) or the
// blackboard's reusable scratch columns (compact mode).
type Offer struct {
	// NumNodes is the fleet size N every offer must cover.
	NumNodes int
	// Compact switches the round to aggregate-only records: no per-node
	// vectors are allocated, the committed market.Round carries streamed
	// reductions, and the posted prices are read in place instead of
	// cloned.
	Compact bool
}

// Name implements Stage.
func (o Offer) Name() string { return "offer" }

// Run implements Stage.
func (o Offer) Run(st *State) error {
	if len(st.Prices) != o.NumNodes {
		return fmt.Errorf("%d prices for %d nodes", len(st.Prices), o.NumNodes)
	}
	if o.Compact {
		st.Compact = true
		st.Record = market.Round{NumNodes: o.NumNodes}
		st.scrFreqs = mat.EnsureVec(st.scrFreqs, o.NumNodes)
		st.scrTimes = mat.EnsureVec(st.scrTimes, o.NumNodes)
		if len(st.scrOutcomes) != o.NumNodes {
			st.scrOutcomes = make([]market.Outcome, o.NumNodes)
		}
		// Freqs/Times are fully overwritten by Respond; Outcomes is
		// written sparsely, so clear stale entries from the last round.
		for i := range st.scrOutcomes {
			st.scrOutcomes[i] = market.OutcomeAbsent
		}
		return nil
	}
	st.Compact = false
	st.Record = market.Round{
		Prices:   mat.CloneVec(st.Prices),
		Freqs:    make([]float64, o.NumNodes),
		Times:    make([]float64, o.NumNodes),
		Outcomes: make([]market.Outcome, o.NumNodes),
	}
	return nil
}

// BandwidthSchedule models a time-varying uplink regime: Factor(round)
// scales every node's nominal upload time for that round, before the
// per-node jitter draw. Implementations must be pure functions of the
// round index so scheduled regimes replay exactly. Factor must return a
// positive value; 1 is the nominal bandwidth.
type BandwidthSchedule interface {
	Factor(round int) float64
}

// DrawSource replays recorded environment draws: instead of consulting the
// churn schedule and the RNG, Respond asks the source for the round's
// resolved (eligible, departing, commTimes) columns. Eligible marks nodes
// that receive the offer (present and available), Departing the mid-round
// departures, and CommTimes each eligible node's post-jitter upload time.
// The returned slices are read for the current round only and must each
// have length n. A source may synthesize draws for rounds beyond its
// recording (counterfactual replays can outlive the recorded episode) or
// return an error to fail the round.
type DrawSource interface {
	RoundDraws(round, n int) (eligible, departing []bool, commTimes []float64, err error)
}

// DrawRecorder observes each round's resolved draw columns — the exact
// inputs a DrawSource must reproduce. The slices are owned by the pipeline
// and reused across rounds; implementations must copy. CommTimes entries of
// non-eligible nodes are zeroed before the call so recordings carry no
// stale scratch values.
type DrawRecorder interface {
	RecordDraws(round int, eligible, departing []bool, commTimes []float64)
}

// Respond plays the fleet's side of the round: per node, a fleet-membership
// lookup against the churn schedule, an availability draw, a bandwidth-
// jitter draw, and the Eqn. (11) best response to the posted price. It
// fills Joined, Departing, Freqs, the nominal Times (compute + jittered
// upload), ContractPay, CommTimes, Contracted, and Participants.
//
// RNG discipline: the draw pre-pass visits nodes in index order; each
// available node consumes its availability draw before its jitter draw,
// and offline nodes consume no jitter draw — the exact sequence the
// monolithic Step used, so seeded traces stay bit-identical. Churn-absent
// nodes are skipped before any draw — they consume nothing, exactly like
// offline nodes — so a nil churn schedule leaves the draw stream
// untouched. With no churn schedule and no draws enabled, the pre-pass is
// skipped entirely and the fleet's nominal comm-time column is used as
// is.
//
// The best response itself is the batched device.Fleet kernel sharded
// over the worker pool; the participant count and contracted-payment sum
// are then reduced in a single ascending-index pass, so the result is
// bit-identical to the per-node scalar loop at any worker count.
type Respond struct {
	// Fleet is the struct-of-arrays fleet the batch kernels run over.
	// When nil, it is derived from Nodes on each Run (a compatibility
	// path for directly constructed stages; the pipeline always sets it).
	Fleet *device.Fleet
	// Nodes is the per-node fleet view (never mutated). Optional when
	// Fleet is set.
	Nodes []*device.Node
	// Churn is the fleet-membership schedule (nil = fixed fleet). A node
	// absent at this round's Offer stage is skipped entirely; a node the
	// schedule departs mid-round still responds (it is present at the
	// Offer) and is marked Departing for Execute to fail.
	Churn faults.ChurnSchedule
	// Availability is the per-round probability a node is reachable; 0 or 1
	// disables the draw (always available).
	Availability float64
	// CommJitter scales each node's upload time by a uniform factor in
	// [1−CommJitter, 1+CommJitter]; 0 disables the draw.
	CommJitter float64
	// Rng drives the availability and jitter draws. Required when either
	// is enabled, unless Draws replays them instead.
	Rng *rand.Rand
	// Bandwidth scales the fleet's nominal upload times per round (nil =
	// constant nominal bandwidth). The factor applies before the jitter
	// draw, so jitter stays a relative perturbation of the regime.
	Bandwidth BandwidthSchedule
	// Draws, when non-nil, replaces the entire draw pre-pass: membership,
	// availability, and jitter come from the source verbatim and the RNG,
	// churn schedule, and bandwidth regime are not consulted. The replay
	// hook.
	Draws DrawSource
	// Recorder, when non-nil, observes every round's resolved draw columns
	// (forcing the pre-pass so the columns exist even for a clean fleet).
	// The record hook.
	Recorder DrawRecorder
}

// Name implements Stage.
func (r Respond) Name() string { return "respond" }

// Run implements Stage.
func (r Respond) Run(st *State) error {
	fleet := r.Fleet
	if fleet == nil {
		fleet = device.FromNodes(r.Nodes)
	}
	n := fleet.Len()

	// Phase 1 — sequential churn/draw pre-pass. Only this phase consumes
	// RNG, so it must visit nodes in index order; it is skipped wholesale
	// when the round has no membership schedule and no draws, leaving the
	// nominal comm-time column to be read in place. A DrawSource replaces
	// the pre-pass entirely: the replayed columns carry the resolved
	// membership, availability, and jitter of the recorded run, so the RNG
	// is never touched. A DrawRecorder forces the pre-pass (consuming no
	// extra RNG) so the columns exist even for a clean fleet.
	availOn := r.Availability > 0 && r.Availability < 1
	jitterOn := r.CommJitter > 0
	commTimes := fleet.CommTime
	var eligible []bool
	if r.Draws != nil {
		elig, departing, comm, err := r.Draws.RoundDraws(st.Index, n)
		if err != nil {
			return fmt.Errorf("replay draws for round %d: %w", st.Index, err)
		}
		if len(elig) != n || len(comm) != n || (departing != nil && len(departing) != n) {
			return fmt.Errorf("replay draws for round %d: columns sized %d/%d/%d, want %d",
				st.Index, len(elig), len(departing), len(comm), n)
		}
		eligible, commTimes = elig, comm
		if departing != nil {
			copy(st.Departing, departing)
		}
	} else if r.Churn != nil || availOn || jitterOn || r.Bandwidth != nil || r.Recorder != nil {
		bw := 1.0
		if r.Bandwidth != nil {
			if bw = r.Bandwidth.Factor(st.Index); bw <= 0 {
				return fmt.Errorf("bandwidth factor %v at round %d, want > 0", bw, st.Index)
			}
		}
		st.scrEligible = ensureBools(st.scrEligible, n)
		st.scrComm = mat.EnsureVec(st.scrComm, n)
		eligible = st.scrEligible
		commTimes = st.scrComm
		for i := 0; i < n; i++ {
			eligible[i] = false
			commTimes[i] = 0
			if r.Churn != nil {
				present, departs := r.Churn.Membership(st.Index, i)
				if !present {
					continue // outside the fleet this round: no draws, no offer
				}
				st.Departing[i] = departs
			}
			if availOn && r.Rng.Float64() >= r.Availability {
				continue // node offline this round
			}
			commTime := fleet.CommTime[i] * bw
			if jitterOn {
				commTime *= 1 + (r.Rng.Float64()*2-1)*r.CommJitter
			}
			commTimes[i] = commTime
			eligible[i] = true
		}
	}
	if r.Recorder != nil && r.Draws == nil {
		r.Recorder.RecordDraws(st.Index, eligible, st.Departing, commTimes)
	}

	// Phase 2 — the batched Eqn. (11) best response, sharded over the
	// worker pool. Elementwise: bit-identical at any worker count.
	out := device.BatchResponse{
		Joined:  st.Joined,
		Freq:    st.freqs(),
		Time:    st.times(),
		Payment: st.ContractPay,
	}
	prices := st.Prices
	mat.ParallelRange(n, n*respondFlopsPerNode, func(lo, hi int) {
		fleet.BestResponseRange(lo, hi, prices, commTimes, eligible, &out)
	})

	// Phase 3 — streaming reduction in ascending node order: the fixed
	// order that keeps Contracted bit-identical to the scalar loop.
	outcomes := st.outcomes()
	participants := 0
	var contracted float64
	for i := 0; i < n; i++ {
		if !st.Joined[i] {
			continue
		}
		participants++
		outcomes[i] = market.OutcomeCompleted
		st.CommTimes[i] = commTimes[i]
		contracted += st.ContractPay[i]
	}
	st.Record.Participants = participants
	st.Contracted = contracted
	return nil
}

// Execute runs the joined nodes through the failure pipeline: a mid-round
// departure first (the node left the fleet — it goes silent like a crash,
// preempting whatever fault was scheduled for it), then the injected fault
// schedule (a Crash silences the node until the deadline or its nominal
// finish, a Straggle multiplies its time, a Drop burns retry churn and
// abandons the node past the retry budget, a Corrupt upload is rejected at
// sanitization), then the server's straggler deadline, which cuts any node
// still running. It rewrites Times and Outcomes in place.
//
// The per-node failure transform is pure (fault schedules answer
// hash-derived, read-only queries), so it shards over the worker pool;
// each node's time and outcome are written exactly once, keeping the
// result bit-identical at any worker count.
type Execute struct {
	// Faults schedules per-node, per-round failures (nil disables).
	Faults faults.Schedule
	// Deadline is the server's straggler cutoff in seconds (0 disables).
	Deadline float64
	// Retry is the dropped-upload retry policy: MaxRetries bounds
	// re-requests, Base/Factor/Max shape the per-attempt backoff pause.
	Retry faults.Backoff
}

// Name implements Stage.
func (x Execute) Name() string { return "execute" }

// Run implements Stage.
func (x Execute) Run(st *State) error {
	times := st.times()
	outcomes := st.outcomes()
	index := st.Index
	n := len(st.Joined)
	mat.ParallelRange(n, n*executeFlopsPerNode, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !st.Joined[i] {
				continue
			}
			t := times[i]
			outcome := market.OutcomeCompleted
			if st.Departing != nil && st.Departing[i] {
				// The node accepted the offer, then left the fleet
				// mid-round: like a crash, the server learns only by
				// waiting — until the deadline when one is set, else the
				// node's expected finish.
				outcome = market.OutcomeDeparted
				if x.Deadline > 0 {
					t = x.Deadline
				}
			} else if x.Faults != nil {
				if f, ok := x.Faults.At(index, i); ok {
					switch f.Kind {
					case faults.Crash:
						outcome = market.OutcomeCrashed
						// A crashed node goes silent: the server learns of
						// the failure only by waiting — until the deadline
						// when one is set, else until the node's expected
						// finish time.
						if x.Deadline > 0 {
							t = x.Deadline
						}
					case faults.Straggle:
						if f.Slowdown > 1 {
							t *= f.Slowdown
						}
					case faults.Drop:
						// Each lost upload costs a re-upload plus backoff;
						// the node is abandoned once the retry budget runs
						// out.
						retries := f.Attempts
						if retries > x.Retry.MaxRetries {
							retries = x.Retry.MaxRetries
							outcome = market.OutcomeDropped
						}
						t += x.Retry.RetryTime(st.CommTimes[i], retries)
						if outcome == market.OutcomeDropped {
							// The final, abandoned attempt still burned its
							// upload time before the server gave up.
							t += st.CommTimes[i]
						}
					case faults.Corrupt:
						// The upload lands on time but fails sanitization.
						outcome = market.OutcomeCorrupted
					}
				}
			}
			if x.Deadline > 0 && t > x.Deadline {
				t = x.Deadline
				if outcome == market.OutcomeCompleted {
					outcome = market.OutcomeDeadlineCut
				}
			}
			times[i] = t
			outcomes[i] = outcome
		}
	})
	return nil
}

// Settle closes the round's economics. An offer nobody accepted charges
// the server EmptyTimeout of wall-clock waste and ends the round
// (StatusEmpty). Otherwise the worst-case contracted payment is checked
// against the remaining budget — an overrunning round is discarded
// wholesale per Sec. V-A (StatusBudgetExhausted) — and the actual payment
// is accumulated in node order: full price·frequency for completed nodes,
// the FailurePayment fraction for failed ones, keeping the ledger exact
// under churn. Settle also fills Completed, the quorum input Commit needs,
// and — in compact mode — streams the T_k = max_i T_{i,k} and Σ_i T_{i,k}
// reductions into the record in the same single ascending pass, so no
// per-node outcome ever needs to be materialized.
type Settle struct {
	// FailurePayment ∈ [0,1] is the fraction of a failed node's contracted
	// payment the server still pays.
	FailurePayment float64
	// EmptyTimeout is the wall-clock cost of an offer with no takers.
	EmptyTimeout float64
	// Ledger is the episode budget ledger (waste and feasibility).
	Ledger *market.Ledger
}

// Name implements Stage.
func (s Settle) Name() string { return "settle" }

// Run implements Stage.
func (s Settle) Run(st *State) error {
	// An offer that attracts no participants trains nothing but still
	// costs the server a full offer timeout of wall-clock time before it
	// can repost — otherwise "price everyone out" would be a free skip a
	// degenerate policy could idle on.
	if st.Record.Participants == 0 {
		if err := s.Ledger.AddWaste(s.EmptyTimeout); err != nil {
			return fmt.Errorf("empty round: %w", err)
		}
		st.Status = StatusEmpty
		return nil
	}
	// Budget check happens before any training: it uses the full
	// contracted payment — what the server owes if every joiner completes
	// — so the commitment is affordable in the worst case; the actual
	// payment (failures refunded) can only be smaller.
	if st.Contracted > s.Ledger.Remaining() {
		st.Status = StatusBudgetExhausted
		return nil
	}
	times := st.times()
	outcomes := st.outcomes()
	var maxTime, sumTime float64
	for i := range st.Joined {
		if !st.Joined[i] {
			continue
		}
		if outcomes[i] == market.OutcomeCompleted {
			st.Record.Payment += st.ContractPay[i]
			st.Completed = append(st.Completed, i)
		} else {
			st.Record.Payment += st.ContractPay[i] * s.FailurePayment
		}
		t := times[i]
		if t > maxTime {
			maxTime = t
		}
		sumTime += t
	}
	st.Record.Completed = len(st.Completed)
	if st.Compact {
		// Declined nodes contribute T_{i,k} = 0, so reducing over the
		// joined set only is exact: x + 0 = x in every term the full-fleet
		// scan would add.
		st.Record.MaxTime = maxTime
		st.Record.SumTime = sumTime
	}
	return nil
}

// Commit finishes the round: when the completion quorum is met the
// accuracy model advances on the completed cohort, otherwise the global
// model (and accuracy) stays where it was; either way the round — its
// time spent and failure payments owed — is recorded in the ledger.
type Commit struct {
	// Accuracy produces A(ω_k) from the completed cohort.
	Accuracy accuracy.Model
	// Ledger records the round and deducts its payment.
	Ledger *market.Ledger
	// MinQuorum is the minimum completed updates for model progress (≥ 1).
	MinQuorum int
}

// Name implements Stage.
func (c Commit) Name() string { return "commit" }

// Run implements Stage.
func (c Commit) Run(st *State) error {
	acc := st.PrevAccuracy
	if len(st.Completed) >= c.MinQuorum {
		var err error
		acc, err = c.Accuracy.Advance(st.Completed)
		if err != nil {
			return fmt.Errorf("advance accuracy: %w", err)
		}
	}
	st.Record.Accuracy = acc
	if err := c.Ledger.Commit(st.Record); err != nil {
		// Unreachable given Settle's pre-check, but surface it rather
		// than panic.
		return fmt.Errorf("commit: %w", err)
	}
	st.Status = StatusCommitted
	return nil
}
