// Package round decomposes one federated training round into an explicit
// stage chain:
//
//	Offer → Respond → Execute → Settle → Commit
//
// Each stage is a small type with its own inputs and outputs, operating on
// a shared State blackboard:
//
//   - Offer validates the posted price vector and sizes the round record.
//   - Respond plays every node's best response (Eqn. 11), including the
//     availability and bandwidth-jitter draws of the churn model.
//   - Execute applies the injected fault schedule (crash, straggle, drop,
//     corrupt) and the server's round deadline to the joined nodes.
//   - Settle computes the budget side: the actual payment under the
//     failure-payment rule, the completion quorum inputs, the empty-offer
//     waste charge, and the worst-case (contracted) budget feasibility
//     check of Sec. V-A.
//   - Commit advances the accuracy model when the quorum is met and
//     records the round in the ledger.
//
// The chain reproduces edgeenv's original monolithic Step bit-for-bit:
// stages iterate nodes in index order, consume the shared RNG in the same
// sequence (availability before jitter, per node), and accumulate payments
// in the same floating-point order. edgeenv retains the MDP wrapper
// (states, rewards, termination) on top of this pipeline; experiment
// sweeps therefore parallelize across environments without touching the
// per-round economics.
package round

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/mat"
)

// Status reports how a round left the pipeline.
type Status int

// The terminal pipeline statuses. StatusPending marks a State still
// flowing through the chain.
const (
	StatusPending Status = iota
	// StatusCommitted: the round trained (or missed quorum), was paid for,
	// and is recorded in the ledger.
	StatusCommitted
	// StatusEmpty: the offer attracted no participants; the server's
	// timeout was charged as waste and no round was recorded.
	StatusEmpty
	// StatusBudgetExhausted: the worst-case contracted payment exceeds the
	// remaining budget; the round is discarded wholesale (Sec. V-A).
	StatusBudgetExhausted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusCommitted:
		return "committed"
	case StatusEmpty:
		return "empty"
	case StatusBudgetExhausted:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// State is the blackboard one round's data flows through. Stages populate
// it in chain order; the fields each stage owns are documented on the
// stage types.
type State struct {
	// Index is k, the 1-based round number (drives the fault schedule).
	Index int
	// Prices is the per-node offer posted by the mechanism.
	Prices []float64
	// PrevAccuracy is A(ω_{k−1}); Commit leaves the post-round accuracy in
	// Record.Accuracy (unchanged when the quorum is missed).
	PrevAccuracy float64

	// Record is the market round being assembled.
	Record market.Round
	// Joined marks nodes whose best response accepted the offer.
	Joined []bool
	// Departing marks nodes the churn schedule removes mid-round: present
	// at the Offer stage, gone before their upload lands.
	Departing []bool
	// ContractPay holds each joiner's full contracted payment p_i·ζ_i.
	ContractPay []float64
	// CommTimes holds each joiner's (possibly jittered) upload time, the
	// unit of retry churn in Execute.
	CommTimes []float64
	// Contracted is Σ ContractPay: the worst-case round payment the budget
	// feasibility check uses.
	Contracted float64
	// Completed lists node indices whose updates entered aggregation.
	Completed []int
	// Status is the round's terminal disposition (set by Settle or Commit).
	Status Status
}

// NewState positions a fresh blackboard for round index over n nodes.
// prices is retained by reference until Offer clones it into the record.
func NewState(index int, prices []float64, prevAccuracy float64, n int) *State {
	return &State{
		Index:        index,
		Prices:       prices,
		PrevAccuracy: prevAccuracy,
		Joined:       make([]bool, n),
		Departing:    make([]bool, n),
		ContractPay:  make([]float64, n),
		CommTimes:    make([]float64, n),
	}
}

// Stage is one link of the round chain. Run mutates the State in place;
// an error aborts the round (the caller decides episode semantics).
type Stage interface {
	// Name identifies the stage in errors and logs.
	Name() string
	// Run executes the stage against the blackboard.
	Run(st *State) error
}

// Offer opens the round: it validates the posted price vector against the
// fleet size and sizes the record's per-node vectors.
type Offer struct {
	// NumNodes is the fleet size N every offer must cover.
	NumNodes int
}

// Name implements Stage.
func (o Offer) Name() string { return "offer" }

// Run implements Stage.
func (o Offer) Run(st *State) error {
	if len(st.Prices) != o.NumNodes {
		return fmt.Errorf("%d prices for %d nodes", len(st.Prices), o.NumNodes)
	}
	st.Record = market.Round{
		Prices:   mat.CloneVec(st.Prices),
		Freqs:    make([]float64, o.NumNodes),
		Times:    make([]float64, o.NumNodes),
		Outcomes: make([]market.Outcome, o.NumNodes),
	}
	return nil
}

// Respond plays the fleet's side of the round: per node, a fleet-membership
// lookup against the churn schedule, an availability draw, a bandwidth-
// jitter draw, and the Eqn. (11) best response to the posted price. It
// fills Joined, Departing, Freqs, the nominal Times (compute + jittered
// upload), ContractPay, CommTimes, Contracted, and Participants.
//
// RNG discipline: nodes are visited in index order; each available node
// consumes its availability draw before its jitter draw, and offline nodes
// consume no jitter draw — the exact sequence the monolithic Step used, so
// seeded traces stay bit-identical. Churn-absent nodes are skipped before
// any draw — they consume nothing, exactly like offline nodes — so a nil
// churn schedule leaves the draw stream untouched.
type Respond struct {
	// Nodes is the fleet (never mutated).
	Nodes []*device.Node
	// Churn is the fleet-membership schedule (nil = fixed fleet). A node
	// absent at this round's Offer stage is skipped entirely; a node the
	// schedule departs mid-round still responds (it is present at the
	// Offer) and is marked Departing for Execute to fail.
	Churn faults.ChurnSchedule
	// Availability is the per-round probability a node is reachable; 0 or 1
	// disables the draw (always available).
	Availability float64
	// CommJitter scales each node's upload time by a uniform factor in
	// [1−CommJitter, 1+CommJitter]; 0 disables the draw.
	CommJitter float64
	// Rng drives the availability and jitter draws. Required when either
	// is enabled.
	Rng *rand.Rand
}

// Name implements Stage.
func (r Respond) Name() string { return "respond" }

// Run implements Stage.
func (r Respond) Run(st *State) error {
	for i, node := range r.Nodes {
		if r.Churn != nil {
			present, departs := r.Churn.Membership(st.Index, i)
			if !present {
				continue // outside the fleet this round: no draws, no offer
			}
			st.Departing[i] = departs
		}
		if r.Availability > 0 && r.Availability < 1 && r.Rng.Float64() >= r.Availability {
			continue // node offline this round
		}
		commTime := node.CommTime
		if r.CommJitter > 0 {
			commTime *= 1 + (r.Rng.Float64()*2-1)*r.CommJitter
		}
		resp := node.BestResponseWithComm(st.Prices[i], commTime)
		if !resp.Participating {
			continue
		}
		st.Record.Participants++
		st.Record.Freqs[i] = resp.Freq
		st.Record.Times[i] = resp.Time
		st.Record.Outcomes[i] = market.OutcomeCompleted
		st.Joined[i] = true
		st.ContractPay[i] = resp.Payment
		st.CommTimes[i] = commTime
		st.Contracted += resp.Payment
	}
	return nil
}

// Execute runs the joined nodes through the failure pipeline: a mid-round
// departure first (the node left the fleet — it goes silent like a crash,
// preempting whatever fault was scheduled for it), then the injected fault
// schedule (a Crash silences the node until the deadline or its nominal
// finish, a Straggle multiplies its time, a Drop burns retry churn and
// abandons the node past the retry budget, a Corrupt upload is rejected at
// sanitization), then the server's straggler deadline, which cuts any node
// still running. It rewrites Times and Outcomes in place.
type Execute struct {
	// Faults schedules per-node, per-round failures (nil disables).
	Faults faults.Schedule
	// Deadline is the server's straggler cutoff in seconds (0 disables).
	Deadline float64
	// Retry is the dropped-upload retry policy: MaxRetries bounds
	// re-requests, Base/Factor/Max shape the per-attempt backoff pause.
	Retry faults.Backoff
}

// Name implements Stage.
func (x Execute) Name() string { return "execute" }

// Run implements Stage.
func (x Execute) Run(st *State) error {
	for i := range st.Joined {
		if !st.Joined[i] {
			continue
		}
		t := st.Record.Times[i]
		outcome := market.OutcomeCompleted
		if st.Departing != nil && st.Departing[i] {
			// The node accepted the offer, then left the fleet mid-round:
			// like a crash, the server learns only by waiting — until the
			// deadline when one is set, else the node's expected finish.
			outcome = market.OutcomeDeparted
			if x.Deadline > 0 {
				t = x.Deadline
			}
		} else if x.Faults != nil {
			if f, ok := x.Faults.At(st.Index, i); ok {
				switch f.Kind {
				case faults.Crash:
					outcome = market.OutcomeCrashed
					// A crashed node goes silent: the server learns of the
					// failure only by waiting — until the deadline when one
					// is set, else until the node's expected finish time.
					if x.Deadline > 0 {
						t = x.Deadline
					}
				case faults.Straggle:
					if f.Slowdown > 1 {
						t *= f.Slowdown
					}
				case faults.Drop:
					// Each lost upload costs a re-upload plus backoff; the
					// node is abandoned once the retry budget runs out.
					retries := f.Attempts
					if retries > x.Retry.MaxRetries {
						retries = x.Retry.MaxRetries
						outcome = market.OutcomeDropped
					}
					t += x.Retry.RetryTime(st.CommTimes[i], retries)
					if outcome == market.OutcomeDropped {
						// The final, abandoned attempt still burned its
						// upload time before the server gave up.
						t += st.CommTimes[i]
					}
				case faults.Corrupt:
					// The upload lands on time but fails sanitization.
					outcome = market.OutcomeCorrupted
				}
			}
		}
		if x.Deadline > 0 && t > x.Deadline {
			t = x.Deadline
			if outcome == market.OutcomeCompleted {
				outcome = market.OutcomeDeadlineCut
			}
		}
		st.Record.Times[i] = t
		st.Record.Outcomes[i] = outcome
	}
	return nil
}

// Settle closes the round's economics. An offer nobody accepted charges
// the server EmptyTimeout of wall-clock waste and ends the round
// (StatusEmpty). Otherwise the worst-case contracted payment is checked
// against the remaining budget — an overrunning round is discarded
// wholesale per Sec. V-A (StatusBudgetExhausted) — and the actual payment
// is accumulated in node order: full price·frequency for completed nodes,
// the FailurePayment fraction for failed ones, keeping the ledger exact
// under churn. Settle also fills Completed, the quorum input Commit needs.
type Settle struct {
	// FailurePayment ∈ [0,1] is the fraction of a failed node's contracted
	// payment the server still pays.
	FailurePayment float64
	// EmptyTimeout is the wall-clock cost of an offer with no takers.
	EmptyTimeout float64
	// Ledger is the episode budget ledger (waste and feasibility).
	Ledger *market.Ledger
}

// Name implements Stage.
func (s Settle) Name() string { return "settle" }

// Run implements Stage.
func (s Settle) Run(st *State) error {
	// An offer that attracts no participants trains nothing but still
	// costs the server a full offer timeout of wall-clock time before it
	// can repost — otherwise "price everyone out" would be a free skip a
	// degenerate policy could idle on.
	if st.Record.Participants == 0 {
		if err := s.Ledger.AddWaste(s.EmptyTimeout); err != nil {
			return fmt.Errorf("empty round: %w", err)
		}
		st.Status = StatusEmpty
		return nil
	}
	// Budget check happens before any training: it uses the full
	// contracted payment — what the server owes if every joiner completes
	// — so the commitment is affordable in the worst case; the actual
	// payment (failures refunded) can only be smaller.
	if st.Contracted > s.Ledger.Remaining() {
		st.Status = StatusBudgetExhausted
		return nil
	}
	for i := range st.Joined {
		if !st.Joined[i] {
			continue
		}
		if st.Record.Outcomes[i] == market.OutcomeCompleted {
			st.Record.Payment += st.ContractPay[i]
			st.Completed = append(st.Completed, i)
		} else {
			st.Record.Payment += st.ContractPay[i] * s.FailurePayment
		}
	}
	st.Record.Completed = len(st.Completed)
	return nil
}

// Commit finishes the round: when the completion quorum is met the
// accuracy model advances on the completed cohort, otherwise the global
// model (and accuracy) stays where it was; either way the round — its
// time spent and failure payments owed — is recorded in the ledger.
type Commit struct {
	// Accuracy produces A(ω_k) from the completed cohort.
	Accuracy accuracy.Model
	// Ledger records the round and deducts its payment.
	Ledger *market.Ledger
	// MinQuorum is the minimum completed updates for model progress (≥ 1).
	MinQuorum int
}

// Name implements Stage.
func (c Commit) Name() string { return "commit" }

// Run implements Stage.
func (c Commit) Run(st *State) error {
	acc := st.PrevAccuracy
	if len(st.Completed) >= c.MinQuorum {
		var err error
		acc, err = c.Accuracy.Advance(st.Completed)
		if err != nil {
			return fmt.Errorf("advance accuracy: %w", err)
		}
	}
	st.Record.Accuracy = acc
	if err := c.Ledger.Commit(st.Record); err != nil {
		// Unreachable given Settle's pre-check, but surface it rather
		// than panic.
		return fmt.Errorf("commit: %w", err)
	}
	st.Status = StatusCommitted
	return nil
}
