package round

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
)

// Config assembles a Pipeline. All knobs mirror the environment's failure
// and churn model; the zero-value extensions reproduce the paper's clean
// assumptions. Values are expected to be pre-validated and pre-resolved by
// the caller (edgeenv resolves the default quorum and empty-round timeout
// before building the pipeline).
type Config struct {
	// Nodes is the fleet (never mutated by the pipeline).
	Nodes []*device.Node
	// Churn is the fleet-membership schedule Respond consults (nil = the
	// paper's fixed fleet).
	Churn faults.ChurnSchedule
	// Availability and CommJitter parameterize the churn draws of Respond.
	Availability float64
	CommJitter   float64
	// Rng drives the churn draws (required when either is enabled).
	Rng *rand.Rand
	// Faults, Deadline, and Retry parameterize Execute.
	Faults   faults.Schedule
	Deadline float64
	// Retry is the dropped-upload retry/backoff policy.
	Retry faults.Backoff
	// FailurePayment and EmptyTimeout parameterize Settle.
	FailurePayment float64
	EmptyTimeout   float64
	// MinQuorum is Commit's completion quorum (must be ≥ 1).
	MinQuorum int
	// Accuracy and Ledger are the learning task and episode budget the
	// Settle/Commit stages act on.
	Accuracy accuracy.Model
	Ledger   *market.Ledger
}

// Pipeline is the assembled stage chain for one environment. It is not
// safe for concurrent use (stages share the State and the churn RNG);
// independent environments each own an independent pipeline, which is what
// lets experiment sweeps run grid cells in parallel.
type Pipeline struct {
	Offer   Offer
	Respond Respond
	Execute Execute
	Settle  Settle
	Commit  Commit
}

// New validates cfg's pipeline-critical fields and assembles the chain.
func New(cfg Config) (*Pipeline, error) {
	switch {
	case len(cfg.Nodes) == 0:
		return nil, fmt.Errorf("round: no nodes")
	case cfg.Accuracy == nil:
		return nil, fmt.Errorf("round: no accuracy model")
	case cfg.Ledger == nil:
		return nil, fmt.Errorf("round: no ledger")
	case cfg.MinQuorum < 1:
		return nil, fmt.Errorf("round: min quorum %d, want >= 1", cfg.MinQuorum)
	case cfg.EmptyTimeout <= 0:
		return nil, fmt.Errorf("round: empty-round timeout %v, want > 0", cfg.EmptyTimeout)
	case (cfg.CommJitter > 0 || (cfg.Availability > 0 && cfg.Availability < 1)) && cfg.Rng == nil:
		return nil, fmt.Errorf("round: churn draws require a Rng")
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("round: %w", err)
	}
	return &Pipeline{
		Offer: Offer{NumNodes: len(cfg.Nodes)},
		Respond: Respond{
			Nodes:        cfg.Nodes,
			Churn:        cfg.Churn,
			Availability: cfg.Availability,
			CommJitter:   cfg.CommJitter,
			Rng:          cfg.Rng,
		},
		Execute: Execute{
			Faults:   cfg.Faults,
			Deadline: cfg.Deadline,
			Retry:    cfg.Retry,
		},
		Settle: Settle{
			FailurePayment: cfg.FailurePayment,
			EmptyTimeout:   cfg.EmptyTimeout,
			Ledger:         cfg.Ledger,
		},
		Commit: Commit{
			Accuracy:  cfg.Accuracy,
			Ledger:    cfg.Ledger,
			MinQuorum: cfg.MinQuorum,
		},
	}, nil
}

// Stages returns the chain in execution order.
func (p *Pipeline) Stages() []Stage {
	return []Stage{p.Offer, p.Respond, p.Execute, p.Settle, p.Commit}
}

// Run drives st through the stage chain, stopping at the first terminal
// status (an empty offer or a budget-infeasible round skips the remaining
// stages). Errors are wrapped with the failing stage's name.
func (p *Pipeline) Run(st *State) error {
	for _, s := range p.Stages() {
		if err := s.Run(st); err != nil {
			return fmt.Errorf("round: %s: %w", s.Name(), err)
		}
		if st.Status != StatusPending {
			return nil
		}
	}
	return nil
}
