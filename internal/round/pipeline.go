package round

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
)

// Config assembles a Pipeline. All knobs mirror the environment's failure
// and churn model; the zero-value extensions reproduce the paper's clean
// assumptions. Values are expected to be pre-validated and pre-resolved by
// the caller (edgeenv resolves the default quorum and empty-round timeout
// before building the pipeline).
type Config struct {
	// Fleet is the struct-of-arrays fleet the batch stages run over. When
	// nil it is packed once from Nodes. At fleet scale, construct the
	// Fleet directly (device.NewFleetBatch) and leave Nodes nil — the
	// pipeline never needs per-node structs.
	Fleet *device.Fleet
	// Nodes is the per-node fleet view (never mutated by the pipeline).
	// Optional when Fleet is set.
	Nodes []*device.Node
	// Compact switches the pipeline to aggregate-only round records: no
	// per-node vectors are allocated per round, and committed
	// market.Rounds carry the streamed T_k/ΣT reductions instead. The
	// fleet-scale mode; see DESIGN.md §13.
	Compact bool
	// Churn is the fleet-membership schedule Respond consults (nil = the
	// paper's fixed fleet).
	Churn faults.ChurnSchedule
	// Availability and CommJitter parameterize the churn draws of Respond.
	Availability float64
	CommJitter   float64
	// Rng drives the churn draws (required when either is enabled, unless
	// Draws replays them).
	Rng *rand.Rand
	// Bandwidth is the per-round uplink regime (nil = nominal bandwidth).
	Bandwidth BandwidthSchedule
	// Draws replays recorded environment draws instead of consulting the
	// churn schedule and RNG (see Respond.Draws).
	Draws DrawSource
	// Recorder observes every round's resolved draw columns (see
	// Respond.Recorder).
	Recorder DrawRecorder
	// Faults, Deadline, and Retry parameterize Execute.
	Faults   faults.Schedule
	Deadline float64
	// Retry is the dropped-upload retry/backoff policy.
	Retry faults.Backoff
	// FailurePayment and EmptyTimeout parameterize Settle.
	FailurePayment float64
	EmptyTimeout   float64
	// MinQuorum is Commit's completion quorum (must be ≥ 1).
	MinQuorum int
	// Accuracy and Ledger are the learning task and episode budget the
	// Settle/Commit stages act on.
	Accuracy accuracy.Model
	Ledger   *market.Ledger
}

// Pipeline is the assembled stage chain for one environment. It is not
// safe for concurrent use (stages share the State and the churn RNG);
// independent environments each own an independent pipeline, which is what
// lets experiment sweeps run grid cells in parallel. (The node axis inside
// Respond/Execute shards over the compute worker pool, but that
// parallelism is internal to a single Run.)
type Pipeline struct {
	Offer   Offer
	Respond Respond
	Execute Execute
	Settle  Settle
	Commit  Commit
}

// New validates cfg's pipeline-critical fields and assembles the chain.
func New(cfg Config) (*Pipeline, error) {
	fleet := cfg.Fleet
	if fleet == nil && len(cfg.Nodes) > 0 {
		fleet = device.FromNodes(cfg.Nodes)
	}
	switch {
	case fleet == nil || fleet.Len() == 0:
		return nil, fmt.Errorf("round: no nodes")
	case cfg.Accuracy == nil:
		return nil, fmt.Errorf("round: no accuracy model")
	case cfg.Ledger == nil:
		return nil, fmt.Errorf("round: no ledger")
	case cfg.MinQuorum < 1:
		return nil, fmt.Errorf("round: min quorum %d, want >= 1", cfg.MinQuorum)
	case cfg.EmptyTimeout <= 0:
		return nil, fmt.Errorf("round: empty-round timeout %v, want > 0", cfg.EmptyTimeout)
	case (cfg.CommJitter > 0 || (cfg.Availability > 0 && cfg.Availability < 1)) && cfg.Rng == nil && cfg.Draws == nil:
		return nil, fmt.Errorf("round: churn draws require a Rng")
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("round: %w", err)
	}
	return &Pipeline{
		Offer: Offer{NumNodes: fleet.Len(), Compact: cfg.Compact},
		Respond: Respond{
			Fleet:        fleet,
			Nodes:        cfg.Nodes,
			Churn:        cfg.Churn,
			Availability: cfg.Availability,
			CommJitter:   cfg.CommJitter,
			Rng:          cfg.Rng,
			Bandwidth:    cfg.Bandwidth,
			Draws:        cfg.Draws,
			Recorder:     cfg.Recorder,
		},
		Execute: Execute{
			Faults:   cfg.Faults,
			Deadline: cfg.Deadline,
			Retry:    cfg.Retry,
		},
		Settle: Settle{
			FailurePayment: cfg.FailurePayment,
			EmptyTimeout:   cfg.EmptyTimeout,
			Ledger:         cfg.Ledger,
		},
		Commit: Commit{
			Accuracy:  cfg.Accuracy,
			Ledger:    cfg.Ledger,
			MinQuorum: cfg.MinQuorum,
		},
	}, nil
}

// Fleet returns the struct-of-arrays fleet the pipeline runs over.
func (p *Pipeline) Fleet() *device.Fleet { return p.Respond.Fleet }

// Stages returns the chain in execution order.
func (p *Pipeline) Stages() []Stage {
	return []Stage{p.Offer, p.Respond, p.Execute, p.Settle, p.Commit}
}

// Run drives st through the stage chain, stopping at the first terminal
// status (an empty offer or a budget-infeasible round skips the remaining
// stages). Errors are wrapped with the failing stage's name.
func (p *Pipeline) Run(st *State) error {
	for _, s := range p.Stages() {
		if err := s.Run(st); err != nil {
			return fmt.Errorf("round: %s: %w", s.Name(), err)
		}
		if st.Status != StatusPending {
			return nil
		}
	}
	return nil
}
