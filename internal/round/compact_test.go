// Compact-mode (fleet-scale) pipeline tests: aggregate equivalence with
// the vector-record path, worker-count invariance, and the steady-state
// allocation contract.
package round_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/mat"
)

// flatModel is a stubModel that records nothing, so environment-level
// allocation measurements see only the pipeline's own behavior.
type flatModel struct{ acc, step float64 }

func (m *flatModel) Reset() (float64, error) { return m.acc, nil }

func (m *flatModel) Advance(participants []int) (float64, error) {
	m.acc += m.step
	return m.acc, nil
}

func (m *flatModel) Accuracy() float64 { return m.acc }

// stressedConfigs builds a vector-record and a compact twin of the same
// stressed environment: churn, availability, jitter, faults, deadline,
// retries, failure payment, and a quorum all enabled. The compact config
// exercises the Fleet-only construction path (no per-node structs).
func stressedConfigs(t *testing.T, n int, seed int64) (vec, compact edgeenv.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes, err := device.NewFleet(rng, device.DefaultFleetSpec(n))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	churn, err := faults.NewChurnSampler(faults.ChurnRates{Depart: 0.1, Arrive: 0.7}, seed+1)
	if err != nil {
		t.Fatalf("NewChurnSampler: %v", err)
	}
	sampler, err := faults.NewSampler(faults.Rates{Crash: 0.05, Straggle: 0.1, Drop: 0.08, Corrupt: 0.03}, seed+2)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	base := func() edgeenv.Config {
		cfg := edgeenv.DefaultConfig(nodes, &stubModel{acc: 0.1, step: 0.02}, 500)
		cfg.MaxRounds = 12
		cfg.CommJitter = 0.2
		cfg.Availability = 0.9
		cfg.Churn = churn
		cfg.Faults = sampler
		cfg.RoundDeadline = 60
		cfg.MaxRetries = 2
		cfg.RetryBackoff = 0.5
		cfg.FailurePayment = 0.3
		cfg.MinQuorum = 2
		return cfg
	}
	vec = base()
	vec.Rng = rand.New(rand.NewSource(seed + 3))
	compact = base()
	compact.Rng = rand.New(rand.NewSource(seed + 3))
	compact.Nodes = nil
	compact.Fleet = device.FromNodes(nodes)
	compact.CompactRounds = true
	// Each config needs its own accuracy model instance (stateful).
	vec.Accuracy = &stubModel{acc: 0.1, step: 0.02}
	compact.Accuracy = &stubModel{acc: 0.1, step: 0.02}
	return vec, compact
}

// TestCompactMatchesVectorPipeline pins the streaming-reduction contract:
// a compact episode reproduces the vector-record episode's aggregates —
// payments and round times exactly, the reassociated idle-time sum to
// within float tolerance — under the full failure model.
func TestCompactMatchesVectorPipeline(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		vecCfg, compactCfg := stressedConfigs(t, 24, 100+seed*17)
		vecEnv, err := edgeenv.New(vecCfg)
		if err != nil {
			t.Fatalf("vector env: %v", err)
		}
		compactEnv, err := edgeenv.New(compactCfg)
		if err != nil {
			t.Fatalf("compact env: %v", err)
		}
		if err := vecEnv.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := compactEnv.Reset(); err != nil {
			t.Fatal(err)
		}
		priceRng := rand.New(rand.NewSource(200 + seed))
		for k := 0; !vecEnv.Done(); k++ {
			prices := vecEnv.RandomPrices(priceRng)
			rv, err := vecEnv.Step(prices)
			if err != nil {
				t.Fatalf("seed %d round %d vector step: %v", seed, k, err)
			}
			rc, err := compactEnv.Step(prices)
			if err != nil {
				t.Fatalf("seed %d round %d compact step: %v", seed, k, err)
			}
			ctx := fmt.Sprintf("seed %d round %d", seed, k)
			if rv.Done != rc.Done || rv.Truncated != rc.Truncated {
				t.Fatalf("%s: termination (%v,%v) != (%v,%v)", ctx, rc.Done, rc.Truncated, rv.Done, rv.Truncated)
			}
			if !rc.Round.Compact() && rc.Round.NumNodes != 0 {
				t.Fatalf("%s: compact env emitted non-compact record", ctx)
			}
			if rv.Round.Payment != rc.Round.Payment {
				t.Fatalf("%s: payment %v != %v", ctx, rc.Round.Payment, rv.Round.Payment)
			}
			if rv.Round.Accuracy != rc.Round.Accuracy {
				t.Fatalf("%s: accuracy %v != %v", ctx, rc.Round.Accuracy, rv.Round.Accuracy)
			}
			if rv.Round.Participants != rc.Round.Participants || rv.Round.Completed != rc.Round.Completed {
				t.Fatalf("%s: participants %d/%d != %d/%d", ctx,
					rc.Round.Participants, rc.Round.Completed, rv.Round.Participants, rv.Round.Completed)
			}
			if rv.Round.RoundTime() != rc.Round.RoundTime() {
				t.Fatalf("%s: round time %v != %v", ctx, rc.Round.RoundTime(), rv.Round.RoundTime())
			}
			if rv.Round.TimeEfficiency() != rc.Round.TimeEfficiency() {
				t.Fatalf("%s: efficiency %v != %v", ctx, rc.Round.TimeEfficiency(), rv.Round.TimeEfficiency())
			}
			if rv.ExteriorReward != rc.ExteriorReward {
				t.Fatalf("%s: exterior reward %v != %v", ctx, rc.ExteriorReward, rv.ExteriorReward)
			}
			// IdleTime is Σ(T−T_i) in vector form and N·T − ΣT_i in
			// streamed form — same value, different association.
			scale := math.Max(1, math.Abs(rv.InnerReward))
			if math.Abs(rv.InnerReward-rc.InnerReward) > 1e-9*scale {
				t.Fatalf("%s: inner reward %v != %v", ctx, rc.InnerReward, rv.InnerReward)
			}
		}
		if !compactEnv.Done() {
			t.Fatalf("seed %d: compact episode still running after vector episode ended", seed)
		}
		lv, lc := vecEnv.Ledger(), compactEnv.Ledger()
		if lv.TotalSpent() != lc.TotalSpent() || lv.NumRounds() != lc.NumRounds() {
			t.Fatalf("seed %d: ledgers diverged: spent %v/%v rounds %d/%d",
				seed, lc.TotalSpent(), lv.TotalSpent(), lc.NumRounds(), lv.NumRounds())
		}
		if lv.TotalTime() != lc.TotalTime() {
			t.Fatalf("seed %d: total time %v != %v", seed, lc.TotalTime(), lv.TotalTime())
		}
	}
}

// episodeDigest runs one full compact episode and returns every committed
// aggregate, the raw material for the worker-invariance comparison.
func episodeDigest(t *testing.T, workers int) []float64 {
	t.Helper()
	mat.SetWorkers(workers)
	defer mat.SetWorkers(0)
	_, cfg := stressedConfigs(t, 64, 4242)
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	priceRng := rand.New(rand.NewSource(99))
	var digest []float64
	for !env.Done() {
		res, err := env.Step(env.RandomPrices(priceRng))
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		digest = append(digest, res.Round.Payment, res.Round.MaxTime, res.Round.SumTime,
			float64(res.Round.Participants), float64(res.Round.Completed),
			res.ExteriorReward, res.InnerReward)
	}
	return digest
}

// TestCompactWorkerInvariance pins bit-determinism of the sharded batch
// stages: the full aggregate stream of an episode is identical at any
// worker count.
func TestCompactWorkerInvariance(t *testing.T) {
	ref := episodeDigest(t, 1)
	for _, workers := range []int{2, 4, 8} {
		got := episodeDigest(t, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: digest length %d != %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: digest[%d] = %b != %b", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestCompactSteadyStateAllocs pins the fleet-scale memory contract: after
// warm-up, a full compact round through the reused State performs only a
// small constant number of allocations — and the count does not grow with
// the fleet. (The constant covers the worker-pool closure headers and the
// ledger's amortized round append; nothing is O(N).)
func TestCompactSteadyStateAllocs(t *testing.T) {
	measure := func(n int) float64 {
		fleet, err := device.NewFleetBatch(rand.New(rand.NewSource(7)), device.DefaultFleetSpec(n))
		if err != nil {
			t.Fatalf("NewFleetBatch: %v", err)
		}
		cfg := edgeenv.DefaultFleetConfig(fleet, &flatModel{acc: 0.1, step: 0.001}, 1e12)
		env, err := edgeenv.New(cfg)
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		if err := env.Reset(); err != nil {
			t.Fatal(err)
		}
		prices := make([]float64, n)
		for i := range prices {
			prices[i] = fleet.PriceForFreq(i, fleet.FreqMax[i]) * 0.8
		}
		// Warm-up sizes the State scratch and the ledger's round slice.
		for k := 0; k < 3; k++ {
			if _, err := env.Step(prices); err != nil {
				t.Fatalf("warm-up step: %v", err)
			}
		}
		return testing.AllocsPerRun(32, func() {
			if _, err := env.Step(prices); err != nil {
				t.Fatalf("step: %v", err)
			}
		})
	}
	small := measure(64)
	large := measure(2048)
	if small > 8 {
		t.Errorf("steady-state allocs at N=64: %v, want <= 8", small)
	}
	if large > small+2 {
		t.Errorf("allocs grew with fleet size: N=64 → %v, N=2048 → %v", small, large)
	}
}
