// Churn-stage tests: fleet membership through Respond, mid-round
// departures through Execute/Settle, and the retry/quorum edge cases the
// survivability layer must hold exactly.
package round_test

import (
	"math/rand"
	"testing"

	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/round"
)

func churnScript(t *testing.T, spec string) *faults.ChurnScript {
	t.Helper()
	s, err := faults.ParseChurnScript(spec)
	if err != nil {
		t.Fatalf("ParseChurnScript(%q): %v", spec, err)
	}
	return s
}

// TestRespondChurnAbsence: an absent node is skipped before any RNG draw —
// it neither joins nor consumes availability/jitter draws — and a departing
// node still plays its best response (it is present at the Offer stage).
func TestRespondChurnAbsence(t *testing.T) {
	const n = 4
	nodes := make([]*device.Node, n)
	for i := range nodes {
		nodes[i] = testNode(i)
	}
	price := nodes[0].PriceForFreq(1e9)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}
	// Node 1 absent from the start; node 2 departs mid-round 1.
	churn := churnScript(t, "+1@5,-2@1")

	const seed, jitter = 7, 0.25
	st := round.NewState(1, prices, 0, n)
	if err := (round.Offer{NumNodes: n}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	resp := round.Respond{
		Nodes:      nodes,
		Churn:      churn,
		CommJitter: jitter,
		Rng:        rand.New(rand.NewSource(seed)),
	}
	if err := resp.Run(st); err != nil {
		t.Fatalf("Respond: %v", err)
	}

	if st.Joined[1] || st.Record.Outcomes[1] != market.OutcomeAbsent {
		t.Fatalf("absent node 1 joined: outcome %v", st.Record.Outcomes[1])
	}
	if !st.Joined[2] || !st.Departing[2] {
		t.Fatalf("departing node 2: joined=%v departing=%v, want true/true",
			st.Joined[2], st.Departing[2])
	}
	if st.Departing[0] || st.Departing[3] {
		t.Fatal("staying nodes marked departing")
	}
	if st.Record.Participants != 3 {
		t.Fatalf("Participants = %d, want 3", st.Record.Participants)
	}

	// The absent node consumed no jitter draw: the reference stream draws
	// jitter only for nodes 0, 2, 3 in index order.
	ref := rand.New(rand.NewSource(seed))
	for _, i := range []int{0, 2, 3} {
		comm := nodes[i].CommTime * (1 + (ref.Float64()*2-1)*jitter)
		if st.CommTimes[i] != comm {
			t.Fatalf("node %d comm %v, reference %v — absent node shifted the draw stream",
				i, st.CommTimes[i], comm)
		}
	}
}

// TestRespondNilChurnKeepsStream: a nil churn schedule must leave the RNG
// stream and join pattern exactly as before the churn feature existed.
func TestRespondNilChurnKeepsStream(t *testing.T) {
	const n, seed = 6, 99
	nodes := make([]*device.Node, n)
	for i := range nodes {
		nodes[i] = testNode(i)
	}
	price := nodes[0].PriceForFreq(1e9)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}
	run := func(churn faults.ChurnSchedule) *round.State {
		st := round.NewState(1, prices, 0, n)
		if err := (round.Offer{NumNodes: n}).Run(st); err != nil {
			t.Fatalf("Offer: %v", err)
		}
		resp := round.Respond{
			Nodes:        nodes,
			Churn:        churn,
			Availability: 0.6,
			CommJitter:   0.2,
			Rng:          rand.New(rand.NewSource(seed)),
		}
		if err := resp.Run(st); err != nil {
			t.Fatalf("Respond: %v", err)
		}
		return st
	}
	empty := churnScript(t, "")
	a, b := run(nil), run(empty)
	for i := 0; i < n; i++ {
		if a.Joined[i] != b.Joined[i] || a.CommTimes[i] != b.CommTimes[i] ||
			a.Record.Times[i] != b.Record.Times[i] {
			t.Fatalf("node %d: nil churn and empty script diverge", i)
		}
	}
}

// TestExecuteDeparture: a departing joined node fails like a crash — the
// server waits out the deadline (or the node's nominal finish without one)
// — and departure preempts whatever fault was scheduled for the node.
func TestExecuteDeparture(t *testing.T) {
	const nominal, deadline = 4.0, 10.0
	for _, tc := range []struct {
		name     string
		deadline float64
		fault    faults.Schedule
		wantTime float64
	}{
		{"no deadline waits nominal", 0, nil, nominal},
		{"deadline waited out", deadline, nil, deadline},
		{"departure preempts scheduled fault", deadline,
			faults.Script{1: {0: {Kind: faults.Straggle, Slowdown: 1.5}}}, deadline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := round.NewState(1, []float64{1}, 0, 1)
			if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
				t.Fatalf("Offer: %v", err)
			}
			st.Joined[0] = true
			st.Departing[0] = true
			st.Record.Participants = 1
			st.Record.Times[0] = nominal
			st.Record.Outcomes[0] = market.OutcomeCompleted
			st.CommTimes[0] = 1

			x := round.Execute{Faults: tc.fault, Deadline: tc.deadline}
			if err := x.Run(st); err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if st.Record.Outcomes[0] != market.OutcomeDeparted {
				t.Fatalf("outcome = %v, want departed", st.Record.Outcomes[0])
			}
			if st.Record.Times[0] != tc.wantTime {
				t.Fatalf("time = %v, want %v", st.Record.Times[0], tc.wantTime)
			}
		})
	}
}

// TestExecuteDeadlineTie pins the strict-inequality cut: a node finishing
// exactly at the deadline completes — only t > deadline is cut.
func TestExecuteDeadlineTie(t *testing.T) {
	const deadline = 10.0
	st := round.NewState(1, []float64{1}, 0, 1)
	if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	st.Joined[0] = true
	st.Record.Participants = 1
	st.Record.Times[0] = deadline // exactly on the wire
	st.Record.Outcomes[0] = market.OutcomeCompleted

	x := round.Execute{Deadline: deadline}
	if err := x.Run(st); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if st.Record.Outcomes[0] != market.OutcomeCompleted {
		t.Fatalf("outcome = %v, want completed: ties go to the node", st.Record.Outcomes[0])
	}
	if st.Record.Times[0] != deadline {
		t.Fatalf("time = %v, want %v", st.Record.Times[0], deadline)
	}

	// One ULP past the wire is cut.
	st2 := round.NewState(1, []float64{1}, 0, 1)
	if err := (round.Offer{NumNodes: 1}).Run(st2); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	st2.Joined[0] = true
	st2.Record.Participants = 1
	st2.Record.Times[0] = deadline * (1 + 1e-15)
	st2.Record.Outcomes[0] = market.OutcomeCompleted
	if err := x.Run(st2); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if st2.Record.Outcomes[0] != market.OutcomeDeadlineCut {
		t.Fatalf("outcome = %v, want deadline-cut", st2.Record.Outcomes[0])
	}
}

// TestPipelineDepartureSettlement drives a full chain where one node
// departs mid-round: it earns exactly the FailurePayment fraction of its
// contracted payment and the ledger stays exact.
func TestPipelineDepartureSettlement(t *testing.T) {
	const failurePayment = 0.25
	nodes := []*device.Node{testNode(0), testNode(1)}
	price := nodes[0].PriceForFreq(1e9)
	ledger := testLedger(t, 1e6)
	model := &stubModel{acc: 0.3, step: 0.01}
	p, err := round.New(round.Config{
		Nodes:          nodes,
		Churn:          churnScript(t, "-1@1"),
		FailurePayment: failurePayment,
		EmptyTimeout:   5,
		MinQuorum:      1,
		Accuracy:       model,
		Ledger:         ledger,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := round.NewState(1, []float64{price, price}, 0.3, 2)
	if err := p.Run(st); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Status != round.StatusCommitted {
		t.Fatalf("status = %v, want committed", st.Status)
	}
	if st.Record.Outcomes[1] != market.OutcomeDeparted {
		t.Fatalf("node 1 outcome = %v, want departed", st.Record.Outcomes[1])
	}
	want := st.ContractPay[0] + failurePayment*st.ContractPay[1]
	if st.Record.Payment != want {
		t.Fatalf("payment = %v, want completed + %v·departed = %v",
			st.Record.Payment, failurePayment, want)
	}
	if got := ledger.Remaining(); got != 1e6-want {
		t.Fatalf("ledger remaining %v, want %v", got, 1e6-want)
	}
	// The departed node is out of the completed cohort.
	if len(model.calls) != 1 || len(model.calls[0]) != 1 || model.calls[0][0] != 0 {
		t.Fatalf("Advance cohort = %v, want [0]", model.calls)
	}
}

// TestPipelineZeroSurvivorsQuorum: every joiner fails, so the completed
// set is empty — below any quorum. The round must still commit (failure
// payments and time are real costs), but the model must not advance.
func TestPipelineZeroSurvivorsQuorum(t *testing.T) {
	const failurePayment = 0.5
	nodes := []*device.Node{testNode(0), testNode(1)}
	price := nodes[0].PriceForFreq(1e9)
	ledger := testLedger(t, 1e6)
	model := &stubModel{acc: 0.3, step: 0.01}
	p, err := round.New(round.Config{
		Nodes:          nodes,
		Churn:          churnScript(t, "-0@1"),
		Faults:         faults.Script{1: {1: {Kind: faults.Crash}}},
		FailurePayment: failurePayment,
		EmptyTimeout:   5,
		MinQuorum:      1,
		Accuracy:       model,
		Ledger:         ledger,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := round.NewState(1, []float64{price, price}, 0.3, 2)
	if err := p.Run(st); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Status != round.StatusCommitted {
		t.Fatalf("status = %v, want committed", st.Status)
	}
	if len(st.Completed) != 0 {
		t.Fatalf("completed = %v, want none", st.Completed)
	}
	if len(model.calls) != 0 {
		t.Fatal("model advanced below quorum")
	}
	if st.Record.Accuracy != 0.3 {
		t.Fatalf("accuracy = %v, want unchanged 0.3", st.Record.Accuracy)
	}
	want := st.ContractPay[0]*failurePayment + st.ContractPay[1]*failurePayment
	if st.Record.Payment != want {
		t.Fatalf("payment = %v, want %v", st.Record.Payment, want)
	}
	if ledger.NumRounds() != 1 {
		t.Fatalf("ledger rounds = %d, want 1 (failed rounds are still recorded)", ledger.NumRounds())
	}
}
