// Per-stage unit tests for the round pipeline, plus a chain-level property
// test that reuses the propcheck economic-law checkers. The package is
// round_test (not round) so it can import propcheck, which depends on
// edgeenv and therefore on round itself.
package round_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/propcheck"
	"chiron/internal/round"
)

// testNode returns a node with round numbers: workload 1e8 cycles, so the
// interior optimum and compute time are easy to reason about by hand.
func testNode(id int) *device.Node {
	return &device.Node{
		ID:           id,
		CyclesPerBit: 10,
		DataBits:     1e7,
		FreqMin:      1e8,
		FreqMax:      1e10,
		Capacitance:  1e-28,
		CommTime:     1,
		Epochs:       1,
		SampleCount:  100,
	}
}

func testLedger(t *testing.T, budget float64) *market.Ledger {
	t.Helper()
	l, err := market.NewLedger(budget)
	if err != nil {
		t.Fatalf("NewLedger(%v): %v", budget, err)
	}
	return l
}

// stubModel is an accuracy.Model that counts Advance calls, so Commit's
// quorum gating is observable without a surrogate curve in the way.
type stubModel struct {
	acc   float64
	step  float64
	calls [][]int
}

func (m *stubModel) Reset() (float64, error) { return m.acc, nil }

func (m *stubModel) Advance(participants []int) (float64, error) {
	m.calls = append(m.calls, append([]int(nil), participants...))
	m.acc += m.step
	return m.acc, nil
}

func (m *stubModel) Accuracy() float64 { return m.acc }

func TestOfferValidatesPriceLength(t *testing.T) {
	st := round.NewState(1, []float64{1, 2}, 0, 3)
	if err := (round.Offer{NumNodes: 3}).Run(st); err == nil {
		t.Fatal("Offer accepted 2 prices for 3 nodes")
	}
}

func TestOfferSizesAndClonesRecord(t *testing.T) {
	prices := []float64{1, 2, 3}
	st := round.NewState(1, prices, 0, 3)
	if err := (round.Offer{NumNodes: 3}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	if len(st.Record.Prices) != 3 || len(st.Record.Freqs) != 3 ||
		len(st.Record.Times) != 3 || len(st.Record.Outcomes) != 3 {
		t.Fatalf("record vectors not sized to fleet: %+v", st.Record)
	}
	prices[0] = 99
	if st.Record.Prices[0] != 1 {
		t.Fatal("Offer aliased the caller's price slice instead of cloning it")
	}
}

func TestRespondPlaysBestResponse(t *testing.T) {
	nodes := []*device.Node{testNode(0), testNode(1), testNode(2)}
	nodes[2].Reserve = math.MaxFloat64 // node 2 always declines
	price := nodes[0].PriceForFreq(1e9)
	prices := []float64{price, price, price}

	st := round.NewState(1, prices, 0, 3)
	if err := (round.Offer{NumNodes: 3}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	if err := (round.Respond{Nodes: nodes}).Run(st); err != nil {
		t.Fatalf("Respond: %v", err)
	}

	if st.Record.Participants != 2 {
		t.Fatalf("Participants = %d, want 2", st.Record.Participants)
	}
	var contracted float64
	for i := 0; i < 2; i++ {
		want := nodes[i].BestResponse(price)
		if !st.Joined[i] {
			t.Fatalf("node %d should have joined", i)
		}
		if st.Record.Freqs[i] != want.Freq || st.Record.Times[i] != want.Time ||
			st.ContractPay[i] != want.Payment {
			t.Fatalf("node %d: got (ζ=%v, T=%v, pay=%v), best response says (%v, %v, %v)",
				i, st.Record.Freqs[i], st.Record.Times[i], st.ContractPay[i],
				want.Freq, want.Time, want.Payment)
		}
		if st.Record.Outcomes[i] != market.OutcomeCompleted {
			t.Fatalf("node %d outcome %v before Execute", i, st.Record.Outcomes[i])
		}
		if st.CommTimes[i] != nodes[i].CommTime {
			t.Fatalf("node %d comm time %v, want nominal %v", i, st.CommTimes[i], nodes[i].CommTime)
		}
		contracted += want.Payment
	}
	if st.Joined[2] || st.Record.Freqs[2] != 0 || st.Record.Outcomes[2] != market.OutcomeAbsent {
		t.Fatalf("declining node 2 left a mark on the record: %+v", st.Record)
	}
	if st.Contracted != contracted {
		t.Fatalf("Contracted = %v, want Σ payments = %v", st.Contracted, contracted)
	}
}

// TestRespondChurnRNGOrder pins the RNG discipline that keeps seeded traces
// bit-identical: nodes are visited in index order, each online node draws
// availability then jitter, and offline nodes consume no jitter draw. The
// reference loop replays the same source independently.
func TestRespondChurnRNGOrder(t *testing.T) {
	const (
		seed         = 42
		availability = 0.5
		jitter       = 0.3
		n            = 8
	)
	nodes := make([]*device.Node, n)
	for i := range nodes {
		nodes[i] = testNode(i)
	}
	price := nodes[0].PriceForFreq(1e9)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}

	st := round.NewState(1, prices, 0, n)
	if err := (round.Offer{NumNodes: n}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	resp := round.Respond{
		Nodes:        nodes,
		Availability: availability,
		CommJitter:   jitter,
		Rng:          rand.New(rand.NewSource(seed)),
	}
	if err := resp.Run(st); err != nil {
		t.Fatalf("Respond: %v", err)
	}

	ref := rand.New(rand.NewSource(seed))
	sawOffline, sawOnline := false, false
	for i, node := range nodes {
		if ref.Float64() >= availability {
			sawOffline = true
			if st.Joined[i] || st.Record.Freqs[i] != 0 {
				t.Fatalf("offline node %d joined", i)
			}
			continue // offline nodes must not consume a jitter draw
		}
		sawOnline = true
		comm := node.CommTime * (1 + (ref.Float64()*2-1)*jitter)
		want := node.BestResponseWithComm(price, comm)
		if st.Joined[i] != want.Participating {
			t.Fatalf("node %d joined=%v, reference says %v", i, st.Joined[i], want.Participating)
		}
		if st.Record.Times[i] != want.Time || st.CommTimes[i] != comm {
			t.Fatalf("node %d: time %v comm %v, reference %v / %v — RNG draw order drifted",
				i, st.Record.Times[i], st.CommTimes[i], want.Time, comm)
		}
	}
	if !sawOffline || !sawOnline {
		t.Fatalf("seed %d exercises only one branch (offline=%v online=%v); pick another",
			seed, sawOffline, sawOnline)
	}
}

func TestExecuteFaultMatrix(t *testing.T) {
	const (
		nominal  = 4.0
		comm     = 1.0
		deadline = 10.0
		backoff  = 0.5
	)
	cases := []struct {
		name        string
		fault       faults.Fault
		haveFault   bool
		deadline    float64
		time        float64
		wantTime    float64
		wantOutcome market.Outcome
	}{
		{
			name: "clean", deadline: deadline, time: nominal,
			wantTime: nominal, wantOutcome: market.OutcomeCompleted,
		},
		{
			name: "crash waits out the deadline", haveFault: true,
			fault: faults.Fault{Kind: faults.Crash}, deadline: deadline, time: nominal,
			wantTime: deadline, wantOutcome: market.OutcomeCrashed,
		},
		{
			name: "crash without deadline keeps nominal time", haveFault: true,
			fault: faults.Fault{Kind: faults.Crash}, time: nominal,
			wantTime: nominal, wantOutcome: market.OutcomeCrashed,
		},
		{
			name: "straggle multiplies time", haveFault: true,
			fault: faults.Fault{Kind: faults.Straggle, Slowdown: 2}, deadline: deadline, time: nominal,
			wantTime: 2 * nominal, wantOutcome: market.OutcomeCompleted,
		},
		{
			name: "straggle past the deadline is cut", haveFault: true,
			fault: faults.Fault{Kind: faults.Straggle, Slowdown: 4}, deadline: deadline, time: nominal,
			wantTime: deadline, wantOutcome: market.OutcomeDeadlineCut,
		},
		{
			name: "drop within retry budget recovers", haveFault: true,
			fault: faults.Fault{Kind: faults.Drop, Attempts: 2}, deadline: deadline, time: nominal,
			wantTime: nominal + 2*(comm+backoff), wantOutcome: market.OutcomeCompleted,
		},
		{
			name: "drop past retry budget is abandoned", haveFault: true,
			fault: faults.Fault{Kind: faults.Drop, Attempts: 5}, deadline: deadline, time: nominal,
			// MaxRetries re-uploads plus the final abandoned attempt's upload.
			wantTime: nominal + 2*(comm+backoff) + comm, wantOutcome: market.OutcomeDropped,
		},
		{
			name: "corrupt lands on time", haveFault: true,
			fault: faults.Fault{Kind: faults.Corrupt}, deadline: deadline, time: nominal,
			wantTime: nominal, wantOutcome: market.OutcomeCorrupted,
		},
		{
			name: "slow clean node is deadline-cut", deadline: deadline, time: deadline + 3,
			wantTime: deadline, wantOutcome: market.OutcomeDeadlineCut,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := round.NewState(1, []float64{1}, 0, 1)
			if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
				t.Fatalf("Offer: %v", err)
			}
			st.Joined[0] = true
			st.Record.Participants = 1
			st.Record.Times[0] = tc.time
			st.Record.Outcomes[0] = market.OutcomeCompleted
			st.CommTimes[0] = comm

			var sched faults.Schedule
			if tc.haveFault {
				sched = faults.Script{1: {0: tc.fault}}
			}
			x := round.Execute{Faults: sched, Deadline: tc.deadline, Retry: faults.Constant(backoff, 2)}
			if err := x.Run(st); err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if st.Record.Times[0] != tc.wantTime {
				t.Errorf("time = %v, want %v", st.Record.Times[0], tc.wantTime)
			}
			if st.Record.Outcomes[0] != tc.wantOutcome {
				t.Errorf("outcome = %v, want %v", st.Record.Outcomes[0], tc.wantOutcome)
			}
		})
	}
}

func TestExecuteSkipsAbsentNodes(t *testing.T) {
	st := round.NewState(1, []float64{1}, 0, 1)
	if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	// Node 0 declined; a scripted fault against it must not resurrect it.
	x := round.Execute{Faults: faults.Script{1: {0: {Kind: faults.Crash}}}, Deadline: 10}
	if err := x.Run(st); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if st.Record.Times[0] != 0 || st.Record.Outcomes[0] != market.OutcomeAbsent {
		t.Fatalf("fault applied to absent node: time %v, outcome %v",
			st.Record.Times[0], st.Record.Outcomes[0])
	}
}

func TestSettleEmptyOfferChargesWaste(t *testing.T) {
	const timeout = 7.5
	ledger := testLedger(t, 100)
	st := round.NewState(1, []float64{0}, 0, 1)
	if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	s := round.Settle{FailurePayment: 0.5, EmptyTimeout: timeout, Ledger: ledger}
	if err := s.Run(st); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if st.Status != round.StatusEmpty {
		t.Fatalf("status = %v, want %v", st.Status, round.StatusEmpty)
	}
	if ledger.WastedTime() != timeout {
		t.Fatalf("wasted time %v, want the %v empty-offer timeout", ledger.WastedTime(), timeout)
	}
	if ledger.NumRounds() != 0 || ledger.Remaining() != 100 {
		t.Fatalf("empty round touched the ledger: %d rounds, %v remaining",
			ledger.NumRounds(), ledger.Remaining())
	}
	if err := propcheck.CheckLedger(ledger); err != nil {
		t.Fatalf("ledger law violated after empty round: %v", err)
	}
}

func TestSettleBudgetExhaustion(t *testing.T) {
	ledger := testLedger(t, 10)
	st := round.NewState(1, []float64{1}, 0, 1)
	if err := (round.Offer{NumNodes: 1}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	st.Joined[0] = true
	st.Record.Participants = 1
	st.Record.Times[0] = 1
	st.Record.Outcomes[0] = market.OutcomeCompleted
	st.ContractPay[0] = 10.5 // worst case exceeds the remaining 10
	st.Contracted = 10.5

	s := round.Settle{FailurePayment: 0.5, EmptyTimeout: 1, Ledger: ledger}
	if err := s.Run(st); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if st.Status != round.StatusBudgetExhausted {
		t.Fatalf("status = %v, want %v", st.Status, round.StatusBudgetExhausted)
	}
	if st.Record.Payment != 0 || ledger.Remaining() != 10 || ledger.NumRounds() != 0 {
		t.Fatalf("discarded round still spent money: payment %v, remaining %v, rounds %d",
			st.Record.Payment, ledger.Remaining(), ledger.NumRounds())
	}
}

func TestSettleFailurePaymentAccounting(t *testing.T) {
	const failurePayment = 0.25
	ledger := testLedger(t, 100)
	st := round.NewState(1, []float64{2, 3, 4}, 0, 3)
	if err := (round.Offer{NumNodes: 3}).Run(st); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	// Node 0 completed, node 1 crashed, node 2 declined.
	st.Joined[0], st.Joined[1] = true, true
	st.Record.Participants = 2
	st.Record.Freqs[0], st.Record.Freqs[1] = 1.5, 2.5
	st.Record.Times[0], st.Record.Times[1] = 3, 5
	st.Record.Outcomes[0] = market.OutcomeCompleted
	st.Record.Outcomes[1] = market.OutcomeCrashed
	st.ContractPay[0] = st.Record.Prices[0] * st.Record.Freqs[0]
	st.ContractPay[1] = st.Record.Prices[1] * st.Record.Freqs[1]
	st.Contracted = st.ContractPay[0] + st.ContractPay[1]

	s := round.Settle{FailurePayment: failurePayment, EmptyTimeout: 1, Ledger: ledger}
	if err := s.Run(st); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	if st.Status != round.StatusPending {
		t.Fatalf("settled round left the chain early: status %v", st.Status)
	}
	want := st.ContractPay[0] + failurePayment*st.ContractPay[1]
	if st.Record.Payment != want {
		t.Fatalf("payment %v, want completed + %v·failed = %v", st.Record.Payment, failurePayment, want)
	}
	if len(st.Completed) != 1 || st.Completed[0] != 0 || st.Record.Completed != 1 {
		t.Fatalf("completed cohort %v (count %d), want [0]", st.Completed, st.Record.Completed)
	}
	if err := propcheck.CheckRoundAccounting(&st.Record, failurePayment); err != nil {
		t.Fatalf("round accounting law violated: %v", err)
	}
}

func TestCommitQuorumGate(t *testing.T) {
	const prevAcc = 0.4
	for _, tc := range []struct {
		name      string
		completed []int
		quorum    int
		wantCalls int
		wantAcc   float64
	}{
		{name: "quorum missed holds accuracy", completed: []int{0}, quorum: 2, wantCalls: 0, wantAcc: prevAcc},
		{name: "quorum met advances", completed: []int{0, 2}, quorum: 2, wantCalls: 1, wantAcc: 0.6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ledger := testLedger(t, 100)
			model := &stubModel{acc: 0.5, step: 0.1}
			st := round.NewState(1, []float64{1, 1, 1}, prevAcc, 3)
			if err := (round.Offer{NumNodes: 3}).Run(st); err != nil {
				t.Fatalf("Offer: %v", err)
			}
			for _, i := range tc.completed {
				st.Joined[i] = true
				st.Record.Participants++
				st.Record.Freqs[i], st.Record.Times[i] = 1, 1
				st.Record.Outcomes[i] = market.OutcomeCompleted
			}
			st.Completed = tc.completed
			st.Record.Completed = len(tc.completed)

			c := round.Commit{Accuracy: model, Ledger: ledger, MinQuorum: tc.quorum}
			if err := c.Run(st); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if st.Status != round.StatusCommitted {
				t.Fatalf("status = %v, want %v", st.Status, round.StatusCommitted)
			}
			if len(model.calls) != tc.wantCalls {
				t.Fatalf("accuracy model advanced %d times, want %d", len(model.calls), tc.wantCalls)
			}
			if st.Record.Accuracy != tc.wantAcc {
				t.Fatalf("recorded accuracy %v, want %v", st.Record.Accuracy, tc.wantAcc)
			}
			if ledger.NumRounds() != 1 {
				t.Fatalf("ledger recorded %d rounds, want 1 (missed quorum still commits)", ledger.NumRounds())
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	nodes := []*device.Node{testNode(0)}
	model := &stubModel{}
	ledger := testLedger(t, 10)
	valid := round.Config{
		Nodes: nodes, Accuracy: model, Ledger: ledger,
		MinQuorum: 1, EmptyTimeout: 1,
	}
	if _, err := round.New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*round.Config)
		want   string
	}{
		{"no nodes", func(c *round.Config) { c.Nodes = nil }, "no nodes"},
		{"no accuracy", func(c *round.Config) { c.Accuracy = nil }, "no accuracy"},
		{"no ledger", func(c *round.Config) { c.Ledger = nil }, "no ledger"},
		{"bad quorum", func(c *round.Config) { c.MinQuorum = 0 }, "quorum"},
		{"bad timeout", func(c *round.Config) { c.EmptyTimeout = 0 }, "timeout"},
		{"churn without rng", func(c *round.Config) { c.Availability = 0.5 }, "Rng"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			_, err := round.New(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New() error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestPipelineStopsAtTerminalStatus(t *testing.T) {
	nodes := []*device.Node{testNode(0), testNode(1)}
	model := &stubModel{acc: 0.5, step: 0.1}
	ledger := testLedger(t, 100)
	p, err := round.New(round.Config{
		Nodes: nodes, Accuracy: model, Ledger: ledger,
		MinQuorum: 1, EmptyTimeout: 3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A zero price attracts nobody: Settle must end the round and Commit
	// must never see it.
	st := round.NewState(1, []float64{0, 0}, 0.5, 2)
	if err := p.Run(st); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Status != round.StatusEmpty {
		t.Fatalf("status = %v, want %v", st.Status, round.StatusEmpty)
	}
	if len(model.calls) != 0 || ledger.NumRounds() != 0 {
		t.Fatalf("terminal status leaked into Commit: %d advances, %d ledger rounds",
			len(model.calls), ledger.NumRounds())
	}
	if ledger.WastedTime() != 3 {
		t.Fatalf("wasted time %v, want the empty-offer timeout 3", ledger.WastedTime())
	}
}

func TestStagesOrder(t *testing.T) {
	p, err := round.New(round.Config{
		Nodes: []*device.Node{testNode(0)}, Accuracy: &stubModel{},
		Ledger: testLedger(t, 1), MinQuorum: 1, EmptyTimeout: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []string{"offer", "respond", "execute", "settle", "commit"}
	stages := p.Stages()
	if len(stages) != len(want) {
		t.Fatalf("%d stages, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.Name() != want[i] {
			t.Fatalf("stage %d is %q, want %q", i, s.Name(), want[i])
		}
	}
}

// TestPipelineEconomicLaws drives randomized fleets, prices, churn, and
// fault schedules through the full chain and checks every committed round
// against the propcheck economic laws (accounting, time) and the final
// ledger against budget feasibility.
func TestPipelineEconomicLaws(t *testing.T) {
	propcheck.Trials(t, 0x70697065, 60, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 2 + rng.Intn(5)
		nodes := propcheck.RandomFleet(rng, n)

		availability := 1.0
		if rng.Intn(2) == 0 {
			availability = propcheck.Uniform(rng, 0.3, 0.95)
		}
		jitter := 0.0
		if rng.Intn(2) == 0 {
			jitter = propcheck.Uniform(rng, 0.05, 0.5)
		}
		var sched faults.Schedule
		if rates := propcheck.RandomRates(rng); rates.Any() {
			sampler, err := faults.NewSampler(rates, rng.Int63())
			if err != nil {
				t.Fatalf("NewSampler: %v", err)
			}
			sched = sampler
		}
		deadline := 0.0
		if rng.Intn(2) == 0 {
			deadline = propcheck.Uniform(rng, 5, 120)
		}
		failurePayment := propcheck.Uniform(rng, 0, 1)
		ledger := testLedger(t, propcheck.Uniform(rng, 10, 500))
		cfg := round.Config{
			Nodes:          nodes,
			Availability:   availability,
			CommJitter:     jitter,
			Rng:            rand.New(rand.NewSource(rng.Int63())),
			Faults:         sched,
			Deadline:       deadline,
			Retry:          faults.Constant(propcheck.Uniform(rng, 0, 2), rng.Intn(4)),
			FailurePayment: failurePayment,
			EmptyTimeout:   propcheck.Uniform(rng, 1, 60),
			MinQuorum:      1 + rng.Intn(n),
			Accuracy:       &stubModel{acc: 0.3, step: 0.01},
			Ledger:         ledger,
		}
		p, err := round.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		lastAcc := 0.3
		for k := 1; k <= 25; k++ {
			prices := make([]float64, n)
			for i, node := range nodes {
				// Mix interior prices with deliberate zero offers so empty
				// and partially-joined rounds both occur.
				if rng.Intn(5) == 0 {
					continue
				}
				prices[i] = node.PriceForFreq(propcheck.Uniform(rng, node.FreqMin, node.FreqMax))
			}
			st := round.NewState(k, prices, lastAcc, n)
			if err := p.Run(st); err != nil {
				t.Fatalf("round %d: %v", k, err)
			}
			switch st.Status {
			case round.StatusCommitted:
				if err := propcheck.CheckRoundAccounting(&st.Record, failurePayment); err != nil {
					t.Fatalf("round %d accounting: %v", k, err)
				}
				if err := propcheck.CheckTimeLaws(&st.Record); err != nil {
					t.Fatalf("round %d time laws: %v", k, err)
				}
				lastAcc = st.Record.Accuracy
			case round.StatusEmpty:
				// Nothing recorded; the waste charge is checked by CheckLedger.
			case round.StatusBudgetExhausted:
				k = 26 // episode over
			default:
				t.Fatalf("round %d ended with non-terminal status %v", k, st.Status)
			}
		}
		if err := propcheck.CheckLedger(ledger); err != nil {
			t.Fatalf("ledger laws: %v", err)
		}
	})
}
