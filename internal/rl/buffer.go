// Package rl implements the reinforcement-learning machinery of the
// reproduction: diagonal-Gaussian stochastic policies over internal/nn
// networks, episode trajectory buffers, and Proximal Policy Optimization
// with the clipped surrogate objective — plus the learner core shared by
// every trainable mechanism (rollout buffers with Reset-reuse, the
// policy+buffer Pair, the end-of-episode update Scheduler, and unified
// checkpointing with exact-resume RNG accounting).
package rl

import "fmt"

// Transition is one (s, a, r, s', done) tuple plus the behavior policy's
// log-probability of the action, needed for the PPO importance ratio.
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
	LogProb   float64
}

// Buffer accumulates the transitions of one or more episodes between PPO
// updates — the experience replay buffers D^E and D^I of Algorithm 1.
//
// Add copies the caller's slices into recycled per-slot storage, so a
// buffer that is Reset between episodes reaches a steady state where
// storing a transition allocates nothing.
type Buffer struct {
	transitions []Transition
}

// Add appends a copy of t, reusing a recycled slot's backing slices when
// one is available from an earlier Reset.
func (b *Buffer) Add(t Transition) {
	var slot *Transition
	if len(b.transitions) < cap(b.transitions) {
		b.transitions = b.transitions[:len(b.transitions)+1]
		slot = &b.transitions[len(b.transitions)-1]
	} else {
		b.transitions = append(b.transitions, Transition{})
		slot = &b.transitions[len(b.transitions)-1]
	}
	slot.State = append(slot.State[:0], t.State...)
	slot.Action = append(slot.Action[:0], t.Action...)
	slot.NextState = append(slot.NextState[:0], t.NextState...)
	slot.Reward = t.Reward
	slot.Done = t.Done
	slot.LogProb = t.LogProb
}

// Len reports the number of stored transitions.
func (b *Buffer) Len() int { return len(b.transitions) }

// Transitions returns the stored transitions (shared slice; callers must
// not mutate, and the slots are recycled by the next Reset).
func (b *Buffer) Transitions() []Transition { return b.transitions }

// Reset empties the buffer, retaining both the slice capacity and every
// slot's backing arrays for reuse by subsequent Adds.
func (b *Buffer) Reset() { b.transitions = b.transitions[:0] }

// MarkLastDone flags the most recent transition as terminal. Mechanisms
// call this when the episode ends on the budget check: the attempted round
// is discarded (Sec. V-A), so the last committed round was in fact the
// final one and its value must not bootstrap into a phantom future.
func (b *Buffer) MarkLastDone() {
	if n := len(b.transitions); n > 0 {
		b.transitions[n-1].Done = true
	}
}

// Validate checks that all transitions have consistent dimensions.
func (b *Buffer) Validate() error {
	if len(b.transitions) == 0 {
		return fmt.Errorf("rl: empty buffer")
	}
	sd := len(b.transitions[0].State)
	ad := len(b.transitions[0].Action)
	for i, t := range b.transitions {
		if len(t.State) != sd || len(t.NextState) != sd {
			return fmt.Errorf("rl: transition %d state dims %d/%d, want %d", i, len(t.State), len(t.NextState), sd)
		}
		if len(t.Action) != ad {
			return fmt.Errorf("rl: transition %d action dim %d, want %d", i, len(t.Action), ad)
		}
	}
	return nil
}
