package rl

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
	"chiron/internal/nn"
)

const (
	logStdMin = -5.0
	logStdMax = 2.0
	// log(2π), the Gaussian log-density constant.
	log2Pi = 1.8378770664093453
)

// GaussianPolicy is a diagonal-Gaussian stochastic policy π_θ(a|s) =
// N(μ_θ(s), diag(exp(logσ)²)) with a state-independent learnable log
// standard deviation. Actions are sampled in unbounded pre-squash space;
// callers map them into the environment's action set (sigmoid to a price
// range, softmax to the allocation simplex) — a deterministic transform
// that leaves the policy-gradient estimator unchanged.
type GaussianPolicy struct {
	net       *nn.Network
	logStd    nn.Param
	actionDim int
	params    []nn.Param  // cached: mean network params + logStd
	xBuf      *mat.Matrix // recycled single-state input batch
}

// NewGaussianPolicy builds a policy whose mean network is an MLP with the
// given hidden widths and tanh activations (the conventional PPO trunk).
func NewGaussianPolicy(rng *rand.Rand, stateDim, actionDim int, hidden []int, initLogStd float64) (*GaussianPolicy, error) {
	if stateDim <= 0 || actionDim <= 0 {
		return nil, fmt.Errorf("rl: policy dims state=%d action=%d", stateDim, actionDim)
	}
	widths := append(append([]int{stateDim}, hidden...), actionDim)
	net, err := nn.NewMLP(rng, nn.ActTanh, widths...)
	if err != nil {
		return nil, fmt.Errorf("rl: policy network: %w", err)
	}
	p := &GaussianPolicy{
		net:       net,
		actionDim: actionDim,
		logStd:    nn.Param{Value: mat.New(1, actionDim), Grad: mat.New(1, actionDim)},
	}
	p.logStd.Value.Fill(mat.Clamp(initLogStd, logStdMin, logStdMax))
	p.params = append(p.params, net.Params()...)
	p.params = append(p.params, p.logStd)
	return p, nil
}

// ActionDim reports the action dimensionality.
func (p *GaussianPolicy) ActionDim() int { return p.actionDim }

// Params returns the mean network's parameters plus the log-std vector, in
// a stable order for the optimizer. The slice is cached and shared across
// calls; callers must not modify it.
func (p *GaussianPolicy) Params() []nn.Param {
	return p.params
}

// ZeroGrad clears all parameter gradients.
func (p *GaussianPolicy) ZeroGrad() {
	p.net.ZeroGrad()
	p.logStd.Grad.Zero()
}

// ClampLogStd keeps the log standard deviation inside a numerically safe
// band; call after each optimizer step.
func (p *GaussianPolicy) ClampLogStd() {
	d := p.logStd.Value.Data()
	for i, v := range d {
		d[i] = mat.Clamp(v, logStdMin, logStdMax)
	}
}

// Mean runs the mean network on a single state. The result is a fresh
// slice the caller owns.
func (p *GaussianPolicy) Mean(state []float64) ([]float64, error) {
	p.xBuf = mat.Ensure(p.xBuf, 1, len(state))
	copy(p.xBuf.Row(0), state)
	out, err := p.net.Forward(p.xBuf)
	if err != nil {
		return nil, fmt.Errorf("rl: policy mean: %w", err)
	}
	return mat.CloneVec(out.Row(0)), nil
}

// MeanBatch runs the mean network on a batch of states (one per row). The
// returned matrix is the network's recycled output buffer; it is valid
// until the next forward pass through the policy.
func (p *GaussianPolicy) MeanBatch(states *mat.Matrix) (*mat.Matrix, error) {
	return p.net.Forward(states)
}

// MeanNet exposes the mean network. Callers use it to build precision-
// lowered twins (nn.Fuse32) for tolerance-validated batched inference; the
// float64 network remains the training state.
func (p *GaussianPolicy) MeanNet() *nn.Network { return p.net }

// BackwardMean propagates a gradient with respect to the batch means back
// through the mean network, accumulating parameter gradients. The gradient
// with respect to the states themselves is never needed, so the input-grad
// GEMM is skipped.
func (p *GaussianPolicy) BackwardMean(grad *mat.Matrix) error {
	return p.net.BackwardParamsOnly(grad)
}

// Std returns the current standard deviation vector.
func (p *GaussianPolicy) Std() []float64 {
	out := make([]float64, p.actionDim)
	for i, v := range p.logStd.Value.Data() {
		out[i] = math.Exp(v)
	}
	return out
}

// Sample draws an action from π(·|state) and returns it with its
// log-probability under the current parameters.
func (p *GaussianPolicy) Sample(rng *rand.Rand, state []float64) (action []float64, logProb float64, err error) {
	mean, err := p.Mean(state)
	if err != nil {
		return nil, 0, err
	}
	std := p.Std()
	action = make([]float64, p.actionDim)
	for i := range action {
		action[i] = mean[i] + std[i]*rng.NormFloat64()
	}
	logProb = p.logProb(mean, action)
	return action, logProb, nil
}

// LogProb returns log π(action|state) under the current parameters.
func (p *GaussianPolicy) LogProb(state, action []float64) (float64, error) {
	if len(action) != p.actionDim {
		return 0, fmt.Errorf("rl: logprob action dim %d, want %d", len(action), p.actionDim)
	}
	mean, err := p.Mean(state)
	if err != nil {
		return 0, err
	}
	return p.logProb(mean, action), nil
}

// logProb evaluates the diagonal-Gaussian log-density.
func (p *GaussianPolicy) logProb(mean, action []float64) float64 {
	ls := p.logStd.Value.Data()
	var lp float64
	for i := range action {
		std := math.Exp(ls[i])
		z := (action[i] - mean[i]) / std
		lp += -0.5*z*z - ls[i] - 0.5*log2Pi
	}
	return lp
}

// Entropy returns the policy entropy Σ(logσ + ½log(2πe)), which depends
// only on the log-std parameters.
func (p *GaussianPolicy) Entropy() float64 {
	var h float64
	for _, v := range p.logStd.Value.Data() {
		h += v + 0.5*(log2Pi+1)
	}
	return h
}
