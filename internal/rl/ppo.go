package rl

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
	"chiron/internal/nn"
)

// PPOConfig holds the Proximal Policy Optimization hyperparameters.
type PPOConfig struct {
	// Gamma is the reward discount factor (paper: 0.95).
	Gamma float64
	// GAELambda enables Generalized Advantage Estimation with the given λ
	// when positive; 0 keeps the paper's plain TD(0) advantages. GAE
	// trades bias for variance and is the conventional PPO pairing.
	GAELambda float64
	// ClipEps is the PPO clipping radius ε (standard: 0.2).
	ClipEps float64
	// ActorLR and CriticLR are the Adam learning rates (paper: 3e-5 both).
	ActorLR, CriticLR float64
	// UpdateEpochs is M, the optimization passes per update (Algorithm 1).
	UpdateEpochs int
	// EntropyCoef weights the exploration entropy bonus.
	EntropyCoef float64
	// MaxGradNorm clips the global gradient norm (0 disables).
	MaxGradNorm float64
	// LRDecayFactor and LRDecayEvery implement the paper's "decays by 95%
	// every 20 episodes" schedule; LRDecayEvery of 0 disables decay.
	LRDecayFactor float64
	LRDecayEvery  int
	// InitLogStd initializes the policy's log standard deviation.
	InitLogStd float64
	// Hidden lists the MLP hidden-layer widths for actor and critic.
	Hidden []int
}

// DefaultPPOConfig returns the paper's DRL hyperparameters (Sec. VI-A):
// γ=0.95, actor/critic learning rate 3e-5 decaying by ×0.95 every 20
// episodes, and conventional PPO clipping of 0.2.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:         0.95,
		ClipEps:       0.2,
		ActorLR:       3e-5,
		CriticLR:      3e-5,
		UpdateEpochs:  10,
		EntropyCoef:   1e-3,
		MaxGradNorm:   0.5,
		LRDecayFactor: 0.95,
		LRDecayEvery:  20,
		InitLogStd:    -0.5,
		Hidden:        []int{64, 64},
	}
}

// Validate reports whether the configuration is usable.
func (c PPOConfig) Validate() error {
	switch {
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("rl: gamma %v outside [0,1]", c.Gamma)
	case c.GAELambda < 0 || c.GAELambda > 1:
		return fmt.Errorf("rl: gae lambda %v outside [0,1]", c.GAELambda)
	case c.ClipEps <= 0 || c.ClipEps >= 1:
		return fmt.Errorf("rl: clip epsilon %v outside (0,1)", c.ClipEps)
	case c.ActorLR <= 0 || c.CriticLR <= 0:
		return fmt.Errorf("rl: learning rates %v/%v, want > 0", c.ActorLR, c.CriticLR)
	case c.UpdateEpochs <= 0:
		return fmt.Errorf("rl: update epochs %d, want > 0", c.UpdateEpochs)
	case c.EntropyCoef < 0:
		return fmt.Errorf("rl: entropy coef %v, want >= 0", c.EntropyCoef)
	case c.MaxGradNorm < 0:
		return fmt.Errorf("rl: max grad norm %v, want >= 0", c.MaxGradNorm)
	case c.LRDecayEvery < 0:
		return fmt.Errorf("rl: lr decay interval %d, want >= 0", c.LRDecayEvery)
	case len(c.Hidden) == 0:
		return fmt.Errorf("rl: no hidden layers")
	}
	return nil
}

// UpdateStats summarizes one PPO update for logging and tests.
type UpdateStats struct {
	ActorLoss  float64
	CriticLoss float64
	Entropy    float64
	MeanRatio  float64
	ClipFrac   float64
	NumSamples int
	ActorLR    float64
	CriticLR   float64
}

// PPO is an actor-critic PPO learner over a Gaussian policy. It is not
// safe for concurrent use.
type PPO struct {
	cfg     PPOConfig
	actor   *GaussianPolicy
	critic  *nn.Network
	optA    *nn.Adam
	optC    *nn.Adam
	episode int

	// Recycled update scratch: batched states, the V(s) copy taken before
	// the V(s') forward pass overwrites the critic's output buffer, TD
	// targets plus the critic loss gradient, and the actor mean gradient.
	// Reused across Update calls so steady-state training allocates nothing.
	states, nextStates *mat.Matrix
	targets, cgrad     *mat.Matrix
	meanGrad           *mat.Matrix
	oneState           *mat.Matrix
	vBuf, adv          []float64
}

// NewPPO builds an agent for the given state/action dimensions.
func NewPPO(rng *rand.Rand, stateDim, actionDim int, cfg PPOConfig) (*PPO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	actor, err := NewGaussianPolicy(rng, stateDim, actionDim, cfg.Hidden, cfg.InitLogStd)
	if err != nil {
		return nil, err
	}
	widths := append(append([]int{stateDim}, cfg.Hidden...), 1)
	critic, err := nn.NewMLP(rng, nn.ActTanh, widths...)
	if err != nil {
		return nil, fmt.Errorf("rl: critic network: %w", err)
	}
	return &PPO{
		cfg:    cfg,
		actor:  actor,
		critic: critic,
		optA:   nn.NewAdam(actor.Params(), cfg.ActorLR),
		optC:   nn.NewAdam(critic.Params(), cfg.CriticLR),
	}, nil
}

// Policy exposes the actor for action selection.
func (p *PPO) Policy() *GaussianPolicy { return p.actor }

// Config returns the agent's hyperparameters.
func (p *PPO) Config() PPOConfig { return p.cfg }

// Act samples a pre-squash action and its log-probability.
func (p *PPO) Act(rng *rand.Rand, state []float64) (action []float64, logProb float64, err error) {
	return p.actor.Sample(rng, state)
}

// ActDeterministic returns the policy mean, used for greedy evaluation.
func (p *PPO) ActDeterministic(state []float64) ([]float64, error) {
	return p.actor.Mean(state)
}

// ActDeterministicBatch evaluates the policy mean for a batch of states
// (one per row) with a single fused forward pass. Every destination element
// of the underlying GEMMs accumulates over its own reduction independently,
// so row r is bit-identical to ActDeterministic(states.Row(r)) — batching
// decisions across hosted episodes is invisible to the results. The
// returned matrix is the policy's recycled output buffer.
func (p *PPO) ActDeterministicBatch(states *mat.Matrix) (*mat.Matrix, error) {
	return p.actor.MeanBatch(states)
}

// Value estimates V(s) for a single state.
func (p *PPO) Value(state []float64) (float64, error) {
	p.oneState = mat.Ensure(p.oneState, 1, len(state))
	copy(p.oneState.Row(0), state)
	out, err := p.critic.Forward(p.oneState)
	if err != nil {
		return 0, fmt.Errorf("rl: value: %w", err)
	}
	return out.At(0, 0), nil
}

// EndEpisode advances the learning-rate decay schedule by one episode and
// returns the actor learning rate now in force.
func (p *PPO) EndEpisode() float64 {
	p.episode++
	if p.cfg.LRDecayEvery > 0 && p.episode%p.cfg.LRDecayEvery == 0 {
		p.optA.SetLR(p.optA.LR() * p.cfg.LRDecayFactor)
		p.optC.SetLR(p.optC.LR() * p.cfg.LRDecayFactor)
	}
	return p.optA.LR()
}

// Update runs M epochs of clipped-surrogate PPO over the buffered episode
// (lines 17–27 of Algorithm 1): the critic regresses TD(0) targets and the
// actor ascends the clipped importance-weighted advantage.
func (p *PPO) Update(buf *Buffer) (UpdateStats, error) {
	if err := buf.Validate(); err != nil {
		return UpdateStats{}, err
	}
	trans := buf.Transitions()
	n := len(trans)
	stateDim := len(trans[0].State)

	p.states = mat.Ensure(p.states, n, stateDim)
	p.nextStates = mat.Ensure(p.nextStates, n, stateDim)
	states, nextStates := p.states, p.nextStates
	for i, t := range trans {
		copy(states.Row(i), t.State)
		copy(nextStates.Row(i), t.NextState)
	}

	// Advantages from the pre-update critic, normalized across the batch
	// for stable scaling: plain TD(0) residuals by default (Algorithm 1),
	// or their GAE(λ) accumulation when configured.
	adv, err := p.tdAdvantages(trans, states, nextStates)
	if err != nil {
		return UpdateStats{}, err
	}
	if p.cfg.GAELambda > 0 {
		accumulateGAE(trans, adv, p.cfg.Gamma, p.cfg.GAELambda)
	}
	normalizeAdvantages(adv)

	stats := UpdateStats{NumSamples: n}
	for epoch := 0; epoch < p.cfg.UpdateEpochs; epoch++ {
		criticLoss, err := p.updateCritic(trans, states, nextStates)
		if err != nil {
			return UpdateStats{}, fmt.Errorf("rl: critic update: %w", err)
		}
		actorLoss, meanRatio, clipFrac, err := p.updateActor(trans, states, adv)
		if err != nil {
			return UpdateStats{}, fmt.Errorf("rl: actor update: %w", err)
		}
		stats.CriticLoss = criticLoss
		stats.ActorLoss = actorLoss
		stats.MeanRatio = meanRatio
		stats.ClipFrac = clipFrac
	}
	stats.Entropy = p.actor.Entropy()
	stats.ActorLR = p.optA.LR()
	stats.CriticLR = p.optC.LR()
	return stats, nil
}

// tdAdvantages computes r + γV(s')(1−done) − V(s) with the current critic.
// The returned slice is owned by the agent and reused by the next call.
func (p *PPO) tdAdvantages(trans []Transition, states, nextStates *mat.Matrix) ([]float64, error) {
	v, err := p.critic.Forward(states)
	if err != nil {
		return nil, err
	}
	// The critic recycles its output buffer, so V(s) must be copied out
	// before the V(s') pass overwrites it.
	p.vBuf = mat.EnsureVec(p.vBuf, len(trans))
	for i := range trans {
		p.vBuf[i] = v.At(i, 0)
	}
	vn, err := p.critic.Forward(nextStates)
	if err != nil {
		return nil, err
	}
	p.adv = mat.EnsureVec(p.adv, len(trans))
	adv := p.adv
	for i, t := range trans {
		next := vn.At(i, 0)
		if t.Done {
			next = 0
		}
		adv[i] = t.Reward + p.cfg.Gamma*next - p.vBuf[i]
	}
	return adv, nil
}

// accumulateGAE folds TD residuals δ_t in place into GAE(λ) advantages
// Â_t = Σ_l (γλ)^l δ_{t+l}, restarting at episode boundaries. The input
// residuals must be in trajectory order, which is how the mechanisms fill
// their buffers. The backward sweep reads each δ_i exactly once before
// overwriting it, so deltas doubles as the output (also returned for
// convenience).
func accumulateGAE(trans []Transition, deltas []float64, gamma, lambda float64) []float64 {
	var running float64
	for i := len(deltas) - 1; i >= 0; i-- {
		if trans[i].Done {
			running = 0
		}
		running = deltas[i] + gamma*lambda*running
		deltas[i] = running
	}
	return deltas
}

func normalizeAdvantages(adv []float64) {
	mean := mat.MeanVec(adv)
	std := mat.StdVec(adv)
	if std < 1e-8 {
		std = 1e-8
	}
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}
}

// updateCritic performs one semi-gradient TD(0) regression pass: targets
// r + γV(s') are recomputed with the current critic and treated as
// constants, per line 19 of Algorithm 1.
func (p *PPO) updateCritic(trans []Transition, states, nextStates *mat.Matrix) (float64, error) {
	vn, err := p.critic.Forward(nextStates)
	if err != nil {
		return 0, err
	}
	n := len(trans)
	p.targets = mat.Ensure(p.targets, n, 1)
	targets := p.targets
	for i, t := range trans {
		next := vn.At(i, 0)
		if t.Done {
			next = 0
		}
		targets.Set(i, 0, t.Reward+p.cfg.Gamma*next)
	}
	pred, err := p.critic.Forward(states)
	if err != nil {
		return 0, err
	}
	p.cgrad = mat.Ensure(p.cgrad, n, 1)
	loss, err := nn.MSETo(p.cgrad, pred, targets)
	if err != nil {
		return 0, err
	}
	p.critic.ZeroGrad()
	if err := p.critic.BackwardParamsOnly(p.cgrad); err != nil {
		return 0, err
	}
	if p.cfg.MaxGradNorm > 0 {
		p.critic.ClipGradNorm(p.cfg.MaxGradNorm)
	}
	if err := p.optC.Step(); err != nil {
		return 0, err
	}
	return loss, nil
}

// updateActor performs one clipped-surrogate pass:
// L = −E[min(ρ·Â, clip(ρ,1±ε)·Â)] − c_H·H(π).
func (p *PPO) updateActor(trans []Transition, states *mat.Matrix, adv []float64) (loss, meanRatio, clipFrac float64, err error) {
	n := len(trans)
	actDim := p.actor.ActionDim()
	means, err := p.actor.MeanBatch(states)
	if err != nil {
		return 0, 0, 0, err
	}
	ls := p.actor.logStd.Value.Data()
	p.meanGrad = mat.Ensure(p.meanGrad, n, actDim)
	meanGrad := p.meanGrad
	meanGrad.Zero() // only the unclipped branch writes entries
	logStdGrad := p.actor.logStd.Grad.Data()
	p.actor.ZeroGrad()

	invN := 1 / float64(n)
	var clipped int
	for i, t := range trans {
		// New log-probability under current parameters.
		var lp float64
		for j := 0; j < actDim; j++ {
			std := math.Exp(ls[j])
			z := (t.Action[j] - means.At(i, j)) / std
			lp += -0.5*z*z - ls[j] - 0.5*log2Pi
		}
		ratio := math.Exp(lp - t.LogProb)
		meanRatio += ratio * invN
		surr1 := ratio * adv[i]
		surr2 := mat.Clamp(ratio, 1-p.cfg.ClipEps, 1+p.cfg.ClipEps) * adv[i]
		if surr1 <= surr2 {
			// Gradient flows through the unclipped branch:
			// dL/dlogπ = −Â·ρ/n, then chain into μ and logσ.
			gradLP := -adv[i] * ratio * invN
			for j := 0; j < actDim; j++ {
				std := math.Exp(ls[j])
				diff := t.Action[j] - means.At(i, j)
				// ∂logπ/∂μ_j = (a_j − μ_j)/σ_j²
				meanGrad.Set(i, j, gradLP*diff/(std*std))
				// ∂logπ/∂logσ_j = (a_j − μ_j)²/σ_j² − 1
				logStdGrad[j] += gradLP * (diff*diff/(std*std) - 1)
			}
			loss -= surr1 * invN
		} else {
			clipped++
			loss -= surr2 * invN
		}
	}
	// Entropy bonus: H = Σ(logσ_j + const); ∂H/∂logσ_j = 1.
	if p.cfg.EntropyCoef > 0 {
		for j := 0; j < actDim; j++ {
			logStdGrad[j] -= p.cfg.EntropyCoef
		}
		loss -= p.cfg.EntropyCoef * p.actor.Entropy()
	}
	if err := p.actor.BackwardMean(meanGrad); err != nil {
		return 0, 0, 0, err
	}
	if p.cfg.MaxGradNorm > 0 {
		clipPolicyGradNorm(p.actor, p.cfg.MaxGradNorm)
	}
	if err := p.optA.Step(); err != nil {
		return 0, 0, 0, err
	}
	p.actor.ClampLogStd()
	return loss, meanRatio, float64(clipped) / float64(n), nil
}

// clipPolicyGradNorm applies global-norm clipping across the mean network
// and the log-std vector together.
func clipPolicyGradNorm(pol *GaussianPolicy, maxNorm float64) {
	var sq float64
	params := pol.Params()
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}
