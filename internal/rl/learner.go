package rl

import "fmt"

// Pair couples a PPO learner with its rollout buffer and reward
// conditioning — one "policy+learner pair" of the unified agent stack.
// Chiron composes two (exterior and inner), the DRL-based baseline one.
type Pair struct {
	// Name identifies the pair in checkpoints ("exterior", "inner", ...).
	Name string
	// Agent is the PPO learner.
	Agent *PPO
	// Buf is the pair's rollout buffer.
	Buf *Buffer
	// RewardScale rescales rewards to O(1) before they enter the buffer
	// (learner conditioning only; reported metrics stay in paper units).
	RewardScale float64
}

// NewPair builds a pair with an empty buffer.
func NewPair(name string, agent *PPO, rewardScale float64) *Pair {
	return &Pair{Name: name, Agent: agent, Buf: &Buffer{}, RewardScale: rewardScale}
}

// Store scales t's reward by RewardScale and adds it to the buffer.
func (p *Pair) Store(t Transition) {
	t.Reward = t.Reward * p.RewardScale
	p.Buf.Add(t)
}

// Scheduler runs the end-of-episode learner work for a set of pairs: the
// learning-rate decay ticks, the MinSamples batching gate, the PPO updates
// in pair order, and the buffer resets. The two decay orders in the zoo are
// both modeled exactly because they are numerically distinct (the learning
// rate in force during an update differs):
//
//   - DecayFirst (Chiron, Algorithm 1 lines 17–27): every agent's decay
//     schedule advances each episode; when the gate buffer is still below
//     MinSamples the update is deferred and experience keeps accumulating
//     across episodes (the clipped importance ratio handles the slight
//     off-policy staleness).
//   - update-then-decay (the DRL-based baseline): nothing happens on an
//     episode that produced no samples; otherwise update, reset, and only
//     then tick the decay schedule.
type Scheduler struct {
	// Pairs is the update order (Chiron: inner before exterior).
	Pairs []*Pair
	// Gate selects the pair whose buffer length is compared against
	// MinSamples; negative gates on the last pair.
	Gate int
	// MinSamples defers updates until the gate buffer holds at least this
	// many transitions, batching consecutive short episodes together. In
	// update-then-decay mode it is raised to 1, the "any samples at all"
	// gate.
	MinSamples int
	// DecayFirst selects the Chiron ordering above.
	DecayFirst bool
}

// gateLen reports the gate buffer's current length.
func (s *Scheduler) gateLen() int {
	g := s.Gate
	if g < 0 || g >= len(s.Pairs) {
		g = len(s.Pairs) - 1
	}
	return s.Pairs[g].Buf.Len()
}

// EndEpisode runs the configured end-of-episode schedule once.
func (s *Scheduler) EndEpisode() error {
	if len(s.Pairs) == 0 {
		return fmt.Errorf("rl: scheduler with no pairs")
	}
	if s.DecayFirst {
		for _, p := range s.Pairs {
			p.Agent.EndEpisode()
		}
		if s.gateLen() < s.MinSamples {
			return nil
		}
		if err := s.flush(); err != nil {
			return err
		}
		return nil
	}
	need := s.MinSamples
	if need < 1 {
		need = 1
	}
	if s.gateLen() < need {
		return nil
	}
	if err := s.flush(); err != nil {
		return err
	}
	for _, p := range s.Pairs {
		p.Agent.EndEpisode()
	}
	return nil
}

// flush updates every pair with a non-empty buffer, in pair order, then
// resets all buffers.
func (s *Scheduler) flush() error {
	for _, p := range s.Pairs {
		if p.Buf.Len() == 0 {
			continue
		}
		if _, err := p.Agent.Update(p.Buf); err != nil {
			return fmt.Errorf("rl: %s update: %w", p.Name, err)
		}
	}
	for _, p := range s.Pairs {
		p.Buf.Reset()
	}
	return nil
}
