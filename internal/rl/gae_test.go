package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccumulateGAESingleEpisode(t *testing.T) {
	trans := []Transition{
		{Done: false}, {Done: false}, {Done: true},
	}
	deltas := []float64{1, 2, 3}
	gamma, lambda := 0.9, 0.8
	got := accumulateGAE(trans, deltas, gamma, lambda)
	gl := gamma * lambda
	want2 := 3.0
	want1 := 2 + gl*want2
	want0 := 1 + gl*want1
	for i, w := range []float64{want0, want1, want2} {
		if math.Abs(got[i]-w) > 1e-12 {
			t.Fatalf("gae[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestAccumulateGAERestartsAtBoundaries(t *testing.T) {
	trans := []Transition{
		{Done: true}, {Done: false}, {Done: true},
	}
	deltas := []float64{5, 1, 2}
	got := accumulateGAE(trans, deltas, 0.9, 0.9)
	// Episode 1 is the single first transition; its advantage is its delta.
	if got[0] != 5 {
		t.Fatalf("gae[0] = %v, want 5 (no leakage across Done)", got[0])
	}
	// Episode 2: index 1 accumulates index 2.
	want1 := 1 + 0.81*2
	if math.Abs(got[1]-want1) > 1e-12 {
		t.Fatalf("gae[1] = %v, want %v", got[1], want1)
	}
}

func TestAccumulateGAELambdaZeroIsTD(t *testing.T) {
	trans := []Transition{{Done: false}, {Done: true}}
	deltas := []float64{3, 7}
	// accumulateGAE works in place, so snapshot the TD residuals first.
	want := []float64{3, 7}
	got := accumulateGAE(trans, deltas, 0.95, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("λ=0 GAE differs from TD at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPPOConfigRejectsBadGAELambda(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.GAELambda = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted GAE lambda > 1")
	}
	cfg.GAELambda = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted negative GAE lambda")
	}
}

// TestPPOWithGAELearnsBandit mirrors the TD(0) bandit test with GAE
// enabled, ensuring the code path trains end to end.
func TestPPOWithGAELearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultPPOConfig()
	cfg.ActorLR = 3e-3
	cfg.CriticLR = 3e-3
	cfg.LRDecayEvery = 0
	cfg.GAELambda = 0.95
	cfg.Hidden = []int{16}
	agent, err := NewPPO(rng, 1, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	const target = 0.3
	var first, last float64
	for ep := 0; ep < 150; ep++ {
		buf, mean := ppoBanditEpisode(rng, agent, target)
		if ep == 0 {
			first = mean
		}
		last = mean
		if _, err := agent.Update(buf); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if last < first {
		t.Fatalf("GAE PPO did not improve: %v -> %v", first, last)
	}
}
