package rl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrCorruptCheckpoint reports a checkpoint that cannot be restored:
// truncated mid-write, invalid JSON, or structurally incomplete (missing an
// agent snapshot the mechanism requires). Callers distinguish it from shape
// mismatches and I/O errors with errors.Is.
var ErrCorruptCheckpoint = errors.New("rl: corrupt checkpoint")

// ErrShapeMismatch reports a structurally valid checkpoint whose pins do
// not match the restoring mechanism: a different mechanism tag, fleet
// size, or observation width. It marks a stale file from another
// configuration — recoverable by falling back to an older checkpoint,
// unlike a hard I/O error.
var ErrShapeMismatch = errors.New("rl: checkpoint shape mismatch")

// AgentState is one agent's slice of a checkpoint: its learnable snapshot
// plus any rollout experience carried across episodes by MinSamples
// batching, so a resumed run updates on exactly the batch the uninterrupted
// run would have.
type AgentState struct {
	Name     string       `json:"name"`
	Snapshot *Snapshot    `json:"snapshot"`
	Buffer   []Transition `json:"buffer,omitempty"`
}

// Checkpoint is the unified serializable training state shared by every
// learnable mechanism: the per-agent snapshots and buffers, the episode
// counter, the mechanism RNG position, and an environment-shape pin so a
// mismatched restore fails loudly instead of silently loading weights into
// the wrong architecture. Extra carries mechanism-specific state (e.g. the
// Greedy replay buffer).
type Checkpoint struct {
	Mechanism string `json:"mechanism,omitempty"`
	// Nodes and StateDim pin the environment shape the checkpoint was
	// trained against (StateDim is the primary agent's observation width;
	// 0 for mechanisms without a network).
	Nodes    int             `json:"nodes"`
	StateDim int             `json:"state_dim"`
	Episode  int             `json:"episode"`
	RNG      *RNGState       `json:"rng,omitempty"`
	Agents   []AgentState    `json:"agents,omitempty"`
	Extra    json.RawMessage `json:"extra,omitempty"`
}

// Agent returns the named agent's state, or nil when absent.
func (c *Checkpoint) Agent(name string) *AgentState {
	for i := range c.Agents {
		if c.Agents[i].Name == name {
			return &c.Agents[i]
		}
	}
	return nil
}

// PairState captures a pair's agent snapshot and buffered experience under
// the pair's name.
func PairState(p *Pair) AgentState {
	st := AgentState{Name: p.Name, Snapshot: p.Agent.Snapshot()}
	if n := p.Buf.Len(); n > 0 {
		st.Buffer = make([]Transition, n)
		for i, t := range p.Buf.Transitions() {
			st.Buffer[i] = Transition{
				State:     append([]float64(nil), t.State...),
				Action:    append([]float64(nil), t.Action...),
				Reward:    t.Reward,
				NextState: append([]float64(nil), t.NextState...),
				Done:      t.Done,
				LogProb:   t.LogProb,
			}
		}
	}
	return st
}

// RestorePair overwrites a pair's agent and buffer from st. The snapshot
// must be present; its absence marks a corrupt checkpoint.
func RestorePair(p *Pair, st *AgentState) error {
	if st == nil || st.Snapshot == nil {
		return fmt.Errorf("%w: missing %q agent snapshot", ErrCorruptCheckpoint, p.Name)
	}
	if err := p.Agent.Restore(st.Snapshot); err != nil {
		return fmt.Errorf("rl: restore %s: %w", p.Name, err)
	}
	p.Buf.Reset()
	for _, t := range st.Buffer {
		p.Buf.Add(t)
	}
	return nil
}

// SaveCheckpoint writes ck as JSON to path, crash-safely: the bytes land
// in a temporary file in path's directory and are renamed into place, so a
// crash mid-write can never leave a torn checkpoint at the target path —
// the reader sees either the old complete file or the new one. (Rename is
// atomic only within a filesystem, which staging in the same directory
// guarantees.)
func SaveCheckpoint(path string, ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("rl: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("rl: stage checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		// CreateTemp's 0600 would tighten the 0644 the pre-atomic writer
		// produced; keep checkpoints world-readable as before.
		werr = os.Chmod(tmpName, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("rl: write checkpoint: %w", werr)
	}
	return nil
}

// LoadCheckpoint reads a JSON checkpoint written by SaveCheckpoint. A file
// truncated mid-write or otherwise unparseable fails with an error wrapping
// ErrCorruptCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rl: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("%w: parse %s: %v", ErrCorruptCheckpoint, path, err)
	}
	return &ck, nil
}
