package rl

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")

	old := &Checkpoint{Mechanism: "chiron", Nodes: 3, StateDim: 7, Episode: 1}
	if err := SaveCheckpoint(path, old); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	next := &Checkpoint{Mechanism: "chiron", Nodes: 3, StateDim: 7, Episode: 2}
	if err := SaveCheckpoint(path, next); err != nil {
		t.Fatalf("SaveCheckpoint overwrite: %v", err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.Episode != 2 {
		t.Fatalf("episode = %d, want 2", got.Episode)
	}

	// The staging file must not survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("staging file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the checkpoint", len(entries))
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("checkpoint mode %v, want 0644", perm)
	}
}

// TestSaveCheckpointFailureKeepsOld: when the save cannot complete (the
// target directory is gone), the error must surface and no partial state
// may replace an existing checkpoint elsewhere.
func TestSaveCheckpointFailureKeepsOld(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope", "ck.json")
	if err := SaveCheckpoint(missing, &Checkpoint{Episode: 1}); err == nil {
		t.Fatal("SaveCheckpoint into a missing directory succeeded")
	}
}

func TestLoadCheckpointTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := SaveCheckpoint(path, &Checkpoint{Episode: 5}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Truncate mid-JSON, as a crash between write and rename of a
	// non-atomic writer would have.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("LoadCheckpoint(truncated) = %v, want ErrCorruptCheckpoint", err)
	}
}
