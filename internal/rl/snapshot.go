package rl

import (
	"fmt"

	"chiron/internal/nn"
)

// Snapshot is a serializable copy of a PPO agent's learnable state: every
// actor parameter tensor (including the log-std vector), every critic
// parameter tensor, and the optimizer's episode/learning-rate position in
// the decay schedule. Adam moment estimates are deliberately not captured:
// a restored agent restarts its optimizer, which is the conventional
// checkpoint semantic for evaluation and fine-tuning.
type Snapshot struct {
	Actor    [][]float64 `json:"actor"`
	Critic   [][]float64 `json:"critic"`
	Episode  int         `json:"episode"`
	ActorLR  float64     `json:"actor_lr"`
	CriticLR float64     `json:"critic_lr"`
}

// Snapshot captures the agent's current learnable state.
func (p *PPO) Snapshot() *Snapshot {
	return &Snapshot{
		Actor:    copyParams(p.actor.Params()),
		Critic:   copyParams(p.critic.Params()),
		Episode:  p.episode,
		ActorLR:  p.optA.LR(),
		CriticLR: p.optC.LR(),
	}
}

// Restore overwrites the agent's learnable state from a snapshot taken on
// an identically configured agent. The optimizers keep their moment state
// but adopt the snapshot's learning rates and episode position.
func (p *PPO) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("rl: restore from nil snapshot")
	}
	if err := loadParams(p.actor.Params(), s.Actor); err != nil {
		return fmt.Errorf("rl: restore actor: %w", err)
	}
	if err := loadParams(p.critic.Params(), s.Critic); err != nil {
		return fmt.Errorf("rl: restore critic: %w", err)
	}
	p.episode = s.Episode
	if s.ActorLR > 0 {
		p.optA.SetLR(s.ActorLR)
	}
	if s.CriticLR > 0 {
		p.optC.SetLR(s.CriticLR)
	}
	p.actor.ClampLogStd()
	return nil
}

func copyParams(params []nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data()...)
	}
	return out
}

func loadParams(params []nn.Param, src [][]float64) error {
	if len(src) != len(params) {
		return fmt.Errorf("rl: %d tensors for %d parameters", len(src), len(params))
	}
	for i, p := range params {
		if len(src[i]) != p.Value.Size() {
			return fmt.Errorf("rl: tensor %d has %d values, want %d", i, len(src[i]), p.Value.Size())
		}
		copy(p.Value.Data(), src[i])
	}
	return nil
}
