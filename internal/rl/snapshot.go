package rl

import (
	"fmt"

	"chiron/internal/nn"
)

// OptState is a serializable copy of an Adam optimizer's position: the step
// count and both moment estimates per parameter tensor.
type OptState struct {
	T int         `json:"t"`
	M [][]float64 `json:"m"`
	V [][]float64 `json:"v"`
}

// Snapshot is a serializable copy of a PPO agent's learnable state: every
// actor parameter tensor (including the log-std vector), every critic
// parameter tensor, the optimizer's episode/learning-rate position in the
// decay schedule, and — when captured for exact resume — both optimizers'
// Adam moment estimates. Snapshots without optimizer state (older captures)
// restore with the conventional semantic of restarting the optimizer.
type Snapshot struct {
	Actor     [][]float64 `json:"actor"`
	Critic    [][]float64 `json:"critic"`
	Episode   int         `json:"episode"`
	ActorLR   float64     `json:"actor_lr"`
	CriticLR  float64     `json:"critic_lr"`
	ActorOpt  *OptState   `json:"actor_opt,omitempty"`
	CriticOpt *OptState   `json:"critic_opt,omitempty"`
}

// Snapshot captures the agent's current learnable state, including the
// Adam moments needed to resume training bit-identically.
func (p *PPO) Snapshot() *Snapshot {
	return &Snapshot{
		Actor:     copyParams(p.actor.Params()),
		Critic:    copyParams(p.critic.Params()),
		Episode:   p.episode,
		ActorLR:   p.optA.LR(),
		CriticLR:  p.optC.LR(),
		ActorOpt:  captureOpt(p.optA),
		CriticOpt: captureOpt(p.optC),
	}
}

// Restore overwrites the agent's learnable state from a snapshot taken on
// an identically configured agent. The optimizers adopt the snapshot's
// learning rates, episode position, and — when present — Adam moments;
// snapshots without optimizer state leave the moments untouched.
func (p *PPO) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("rl: restore from nil snapshot")
	}
	if err := loadParams(p.actor.Params(), s.Actor); err != nil {
		return fmt.Errorf("rl: restore actor: %w", err)
	}
	if err := loadParams(p.critic.Params(), s.Critic); err != nil {
		return fmt.Errorf("rl: restore critic: %w", err)
	}
	if s.ActorOpt != nil {
		if err := p.optA.SetState(s.ActorOpt.T, s.ActorOpt.M, s.ActorOpt.V); err != nil {
			return fmt.Errorf("rl: restore actor optimizer: %w", err)
		}
	}
	if s.CriticOpt != nil {
		if err := p.optC.SetState(s.CriticOpt.T, s.CriticOpt.M, s.CriticOpt.V); err != nil {
			return fmt.Errorf("rl: restore critic optimizer: %w", err)
		}
	}
	p.episode = s.Episode
	if s.ActorLR > 0 {
		p.optA.SetLR(s.ActorLR)
	}
	if s.CriticLR > 0 {
		p.optC.SetLR(s.CriticLR)
	}
	p.actor.ClampLogStd()
	return nil
}

func captureOpt(a *nn.Adam) *OptState {
	t, m, v := a.State()
	return &OptState{T: t, M: m, V: v}
}

func copyParams(params []nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data()...)
	}
	return out
}

func loadParams(params []nn.Param, src [][]float64) error {
	if len(src) != len(params) {
		return fmt.Errorf("rl: %d tensors for %d parameters", len(src), len(params))
	}
	for i, p := range params {
		if len(src[i]) != p.Value.Size() {
			return fmt.Errorf("rl: tensor %d has %d values, want %d", i, len(src[i]), p.Value.Size())
		}
		copy(p.Value.Data(), src[i])
	}
	return nil
}
