package rl

import (
	"fmt"
	"math/rand"
)

// RNGState is the serializable position of a counting RNG source: the seed
// plus the number of draws consumed since seeding. Together they identify
// the generator's exact state without serializing its internals.
type RNGState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// CountingSource wraps the standard math/rand source with a draw counter.
// Every source call (Int63 or Uint64) advances the underlying generator by
// exactly one step, so {Seed, Draws} reconstructs the state exactly: reseed
// and discard Draws values. Mechanisms feed a CountingSource to rand.New so
// their checkpoints can resume the action-sampling stream bit-identically —
// the wrapped stream is the same one rand.NewSource(seed) produces.
//
// It is not safe for concurrent use, matching math/rand sources.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

var _ rand.Source64 = (*CountingSource)(nil)

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, restarting the draw counter.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// State reports the source's serializable position.
func (s *CountingSource) State() RNGState {
	return RNGState{Seed: s.seed, Draws: s.draws}
}

// Restore repositions the source at st by reseeding and discarding
// st.Draws values — after it, the source produces exactly the stream it
// would have produced had it run uninterrupted.
func (s *CountingSource) Restore(st RNGState) error {
	src, ok := rand.NewSource(st.Seed).(rand.Source64)
	if !ok {
		return fmt.Errorf("rl: rand source is not a Source64")
	}
	for i := uint64(0); i < st.Draws; i++ {
		src.Uint64()
	}
	s.src = src
	s.seed = st.Seed
	s.draws = st.Draws
	return nil
}
