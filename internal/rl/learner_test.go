package rl

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func smallPair(t *testing.T, name string, seed int64, cfg PPOConfig) *Pair {
	t.Helper()
	agent, err := NewPPO(rand.New(rand.NewSource(seed)), 2, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	return NewPair(name, agent, 1)
}

func smallCfg() PPOConfig {
	cfg := DefaultPPOConfig()
	cfg.Hidden = []int{4}
	cfg.UpdateEpochs = 1
	return cfg
}

func sampleTransition(reward float64, done bool) Transition {
	return Transition{
		State:     []float64{0.1, 0.2},
		Action:    []float64{0.3},
		Reward:    reward,
		NextState: []float64{0.4, 0.5},
		Done:      done,
		LogProb:   -0.7,
	}
}

// ---------------------------------------------------------------------------
// Buffer reuse.

func TestBufferResetReusesStorage(t *testing.T) {
	var b Buffer
	tr := sampleTransition(1, false)
	// Warm up to steady state: one episode's worth of slots, then Reset.
	for i := 0; i < 8; i++ {
		b.Add(tr)
	}
	b.Reset()
	allocs := testing.AllocsPerRun(200, func() {
		if b.Len() == 8 {
			b.Reset()
		}
		b.Add(tr)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates %v times per run, want 0", allocs)
	}
}

func TestBufferAddCopiesSlices(t *testing.T) {
	var b Buffer
	tr := sampleTransition(1, false)
	b.Add(tr)
	tr.State[0] = 99
	if b.Transitions()[0].State[0] == 99 {
		t.Fatal("buffer aliased the caller's state slice")
	}
}

func TestBufferMarkLastDone(t *testing.T) {
	var b Buffer
	b.MarkLastDone() // no-op on empty
	b.Add(sampleTransition(1, false))
	b.Add(sampleTransition(2, false))
	b.MarkLastDone()
	tr := b.Transitions()
	if tr[0].Done || !tr[1].Done {
		t.Fatalf("done flags %v/%v, want false/true", tr[0].Done, tr[1].Done)
	}
}

// ---------------------------------------------------------------------------
// Counting RNG source.

func TestCountingSourceMatchesStdStream(t *testing.T) {
	a := rand.New(NewCountingSource(5))
	b := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

func TestCountingSourceRestoreResumesExactly(t *testing.T) {
	src := NewCountingSource(11)
	rng := rand.New(src)
	for i := 0; i < 7; i++ {
		rng.Float64()
	}
	st := src.State()
	if st.Seed != 11 || st.Draws == 0 {
		t.Fatalf("state %+v", st)
	}
	want := make([]float64, 5)
	for i := range want {
		want[i] = rng.Float64()
	}

	restored := NewCountingSource(0)
	if err := restored.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	rng2 := rand.New(restored)
	for i := range want {
		if got := rng2.Float64(); got != want[i] {
			t.Fatalf("resumed draw %d: %v != %v", i, got, want[i])
		}
	}
	if restored.State() != src.State() {
		t.Fatalf("draw counters diverged: %+v vs %+v", restored.State(), src.State())
	}
}

func TestCountingSourceSeedResetsCounter(t *testing.T) {
	src := NewCountingSource(1)
	rand.New(src).Float64()
	src.Seed(2)
	if st := src.State(); st.Seed != 2 || st.Draws != 0 {
		t.Fatalf("state after reseed %+v", st)
	}
}

// ---------------------------------------------------------------------------
// Pair and Scheduler.

func TestPairStoreScalesReward(t *testing.T) {
	p := smallPair(t, "agent", 1, smallCfg())
	p.RewardScale = 0.5
	p.Store(sampleTransition(4, false))
	if got := p.Buf.Transitions()[0].Reward; got != 2 {
		t.Fatalf("stored reward %v, want 2", got)
	}
}

func TestSchedulerDecayFirstBatchesAcrossEpisodes(t *testing.T) {
	cfg := smallCfg()
	cfg.LRDecayEvery = 1
	cfg.LRDecayFactor = 0.5
	inner := smallPair(t, "inner", 1, cfg)
	exterior := smallPair(t, "exterior", 2, cfg)
	s := &Scheduler{Pairs: []*Pair{inner, exterior}, Gate: 1, MinSamples: 4, DecayFirst: true}

	lr0 := exterior.Agent.Snapshot().ActorLR
	// Below the gate: decay ticks, experience is retained.
	exterior.Store(sampleTransition(1, true))
	exterior.Store(sampleTransition(1, true))
	if err := s.EndEpisode(); err != nil {
		t.Fatalf("EndEpisode: %v", err)
	}
	if got := exterior.Agent.Snapshot().ActorLR; got != lr0*0.5 {
		t.Fatalf("decay-first LR %v, want %v", got, lr0*0.5)
	}
	if exterior.Buf.Len() != 2 {
		t.Fatalf("gated episode flushed the buffer (len %d)", exterior.Buf.Len())
	}
	// Reaching the gate flushes every non-empty pair and resets all buffers.
	exterior.Store(sampleTransition(1, true))
	exterior.Store(sampleTransition(1, true))
	inner.Store(sampleTransition(1, true))
	if err := s.EndEpisode(); err != nil {
		t.Fatalf("EndEpisode: %v", err)
	}
	if exterior.Buf.Len() != 0 || inner.Buf.Len() != 0 {
		t.Fatalf("buffers not reset: %d/%d", exterior.Buf.Len(), inner.Buf.Len())
	}
}

func TestSchedulerUpdateThenDecaySkipsEmptyEpisodes(t *testing.T) {
	cfg := smallCfg()
	cfg.LRDecayEvery = 1
	cfg.LRDecayFactor = 0.5
	p := smallPair(t, "agent", 1, cfg)
	s := &Scheduler{Pairs: []*Pair{p}, Gate: 0, MinSamples: 1}

	lr0 := p.Agent.Snapshot().ActorLR
	// Empty episode: no update, and crucially no decay tick either.
	if err := s.EndEpisode(); err != nil {
		t.Fatalf("EndEpisode: %v", err)
	}
	if got := p.Agent.Snapshot().ActorLR; got != lr0 {
		t.Fatalf("empty episode ticked decay: LR %v, want %v", got, lr0)
	}
	p.Store(sampleTransition(1, true))
	if err := s.EndEpisode(); err != nil {
		t.Fatalf("EndEpisode: %v", err)
	}
	if got := p.Agent.Snapshot().ActorLR; got != lr0*0.5 {
		t.Fatalf("update-then-decay LR %v, want %v", got, lr0*0.5)
	}
	if p.Buf.Len() != 0 {
		t.Fatalf("buffer not reset after update: %d", p.Buf.Len())
	}
}

func TestSchedulerRejectsNoPairs(t *testing.T) {
	s := &Scheduler{}
	if err := s.EndEpisode(); err == nil {
		t.Fatal("scheduler with no pairs did not error")
	}
}

// ---------------------------------------------------------------------------
// Unified checkpoint.

func snapshotJSON(t *testing.T, s *Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return string(data)
}

func TestPairStateRoundTrip(t *testing.T) {
	cfg := smallCfg()
	src := smallPair(t, "agent", 3, cfg)
	src.Store(sampleTransition(1, false))
	src.Store(sampleTransition(2, true))
	st := PairState(src)
	if st.Name != "agent" || st.Snapshot == nil || len(st.Buffer) != 2 {
		t.Fatalf("pair state %+v", st)
	}

	dst := smallPair(t, "agent", 4, cfg) // different init weights
	if err := RestorePair(dst, &st); err != nil {
		t.Fatalf("RestorePair: %v", err)
	}
	if got, want := snapshotJSON(t, dst.Agent.Snapshot()), snapshotJSON(t, src.Agent.Snapshot()); got != want {
		t.Fatal("restored agent snapshot differs from source")
	}
	if dst.Buf.Len() != 2 || dst.Buf.Transitions()[1].Reward != 2 {
		t.Fatalf("restored buffer %d transitions", dst.Buf.Len())
	}
	// The carried buffer must be a deep copy, not an alias of the source.
	src.Buf.Transitions()[1].State[0] = 42
	if dst.Buf.Transitions()[1].State[0] == 42 {
		t.Fatal("restored buffer aliases the checkpoint state")
	}

	if err := RestorePair(dst, nil); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("nil state: err %v, want ErrCorruptCheckpoint", err)
	}
	if err := RestorePair(dst, &AgentState{Name: "agent"}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("nil snapshot: err %v, want ErrCorruptCheckpoint", err)
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	p := smallPair(t, "agent", 3, smallCfg())
	p.Store(sampleTransition(1, true))
	ck := &Checkpoint{
		Mechanism: "test",
		Nodes:     2,
		StateDim:  2,
		Episode:   7,
		RNG:       &RNGState{Seed: 3, Draws: 11},
		Agents:    []AgentState{PairState(p)},
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.Mechanism != "test" || got.Nodes != 2 || got.Episode != 7 || got.RNG == nil || got.RNG.Draws != 11 {
		t.Fatalf("loaded header %+v", got)
	}
	if a := got.Agent("agent"); a == nil || a.Snapshot == nil || len(a.Buffer) != 1 {
		t.Fatalf("loaded agent %+v", got.Agent("agent"))
	}
	if got.Agent("missing") != nil {
		t.Fatal("Agent lookup invented an agent")
	}
}

func TestLoadCheckpointCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{\"agents\": ["), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err %v, want ErrCorruptCheckpoint", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json")); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("missing file: err %v, want plain I/O error", err)
	}
}
