package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestGaussianPolicyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGaussianPolicy(rng, 0, 2, []int{8}, -1); err == nil {
		t.Fatal("accepted zero state dim")
	}
	if _, err := NewGaussianPolicy(rng, 3, 0, []int{8}, -1); err == nil {
		t.Fatal("accepted zero action dim")
	}
}

func TestSampleLogProbConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewGaussianPolicy(rng, 4, 3, []int{16}, -0.5)
	if err != nil {
		t.Fatalf("NewGaussianPolicy: %v", err)
	}
	state := []float64{0.1, -0.2, 0.5, 0.9}
	action, lp, err := p.Sample(rng, state)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(action) != 3 {
		t.Fatalf("action dim %d", len(action))
	}
	lp2, err := p.LogProb(state, action)
	if err != nil {
		t.Fatalf("LogProb: %v", err)
	}
	if math.Abs(lp-lp2) > 1e-12 {
		t.Fatalf("Sample logprob %v != LogProb %v", lp, lp2)
	}
	if _, err := p.LogProb(state, []float64{1}); err == nil {
		t.Fatal("LogProb accepted wrong action dim")
	}
}

func TestLogProbMaximalAtMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := NewGaussianPolicy(rng, 2, 2, []int{8}, 0)
	if err != nil {
		t.Fatalf("NewGaussianPolicy: %v", err)
	}
	state := []float64{0.3, -0.7}
	mean, err := p.Mean(state)
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	atMean, err := p.LogProb(state, mean)
	if err != nil {
		t.Fatalf("LogProb: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		off := append([]float64(nil), mean...)
		for i := range off {
			off[i] += rng.NormFloat64()
		}
		lp, err := p.LogProb(state, off)
		if err != nil {
			t.Fatalf("LogProb: %v", err)
		}
		if lp > atMean+1e-12 {
			t.Fatalf("logprob off mean %v > at mean %v", lp, atMean)
		}
	}
}

func TestClampLogStd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := NewGaussianPolicy(rng, 2, 2, []int{4}, 100) // clamped at init
	if err != nil {
		t.Fatalf("NewGaussianPolicy: %v", err)
	}
	for _, std := range p.Std() {
		if std > math.Exp(logStdMax)+1e-9 {
			t.Fatalf("init std %v above clamp", std)
		}
	}
	p.logStd.Value.Fill(-100)
	p.ClampLogStd()
	for _, v := range p.logStd.Value.Data() {
		if v < logStdMin {
			t.Fatalf("logstd %v below clamp", v)
		}
	}
}

func TestEntropyIncreasesWithStd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	narrow, err := NewGaussianPolicy(rng, 2, 3, []int{4}, -2)
	if err != nil {
		t.Fatalf("NewGaussianPolicy: %v", err)
	}
	wide, err := NewGaussianPolicy(rng, 2, 3, []int{4}, 0)
	if err != nil {
		t.Fatalf("NewGaussianPolicy: %v", err)
	}
	if narrow.Entropy() >= wide.Entropy() {
		t.Fatalf("entropy ordering wrong: %v >= %v", narrow.Entropy(), wide.Entropy())
	}
}

func TestBufferValidation(t *testing.T) {
	var b Buffer
	if err := b.Validate(); err == nil {
		t.Fatal("empty buffer validated")
	}
	b.Add(Transition{State: []float64{1, 2}, Action: []float64{1}, NextState: []float64{1, 2}})
	if err := b.Validate(); err != nil {
		t.Fatalf("valid buffer rejected: %v", err)
	}
	b.Add(Transition{State: []float64{1}, Action: []float64{1}, NextState: []float64{1}})
	if err := b.Validate(); err == nil {
		t.Fatal("inconsistent buffer validated")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMarkLastDone(t *testing.T) {
	var b Buffer
	b.MarkLastDone() // no-op on empty
	b.Add(Transition{State: []float64{1}, Action: []float64{1}, NextState: []float64{1}})
	b.Add(Transition{State: []float64{2}, Action: []float64{2}, NextState: []float64{2}})
	b.MarkLastDone()
	trans := b.Transitions()
	if trans[0].Done || !trans[1].Done {
		t.Fatalf("MarkLastDone wrong: %+v", trans)
	}
}
