package rl

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/policy"
)

func TestPPOConfigValidation(t *testing.T) {
	if err := DefaultPPOConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []func(*PPOConfig){
		func(c *PPOConfig) { c.Gamma = -0.1 },
		func(c *PPOConfig) { c.Gamma = 1.1 },
		func(c *PPOConfig) { c.ClipEps = 0 },
		func(c *PPOConfig) { c.ClipEps = 1 },
		func(c *PPOConfig) { c.ActorLR = 0 },
		func(c *PPOConfig) { c.CriticLR = -1 },
		func(c *PPOConfig) { c.UpdateEpochs = 0 },
		func(c *PPOConfig) { c.EntropyCoef = -1 },
		func(c *PPOConfig) { c.MaxGradNorm = -1 },
		func(c *PPOConfig) { c.LRDecayEvery = -1 },
		func(c *PPOConfig) { c.Hidden = nil },
	}
	for i, mutate := range mutations {
		cfg := DefaultPPOConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestPPOGammaZeroAllowed(t *testing.T) {
	// γ=0 is the myopic DRL-based baseline's setting and must validate.
	cfg := DefaultPPOConfig()
	cfg.Gamma = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("gamma 0 rejected: %v", err)
	}
}

func TestPPODefaultsMatchPaper(t *testing.T) {
	cfg := DefaultPPOConfig()
	if cfg.Gamma != 0.95 {
		t.Fatalf("gamma %v, want 0.95", cfg.Gamma)
	}
	if cfg.ActorLR != 3e-5 || cfg.CriticLR != 3e-5 {
		t.Fatalf("lr %v/%v, want 3e-5", cfg.ActorLR, cfg.CriticLR)
	}
	if cfg.LRDecayFactor != 0.95 || cfg.LRDecayEvery != 20 {
		t.Fatalf("decay %v/%d, want 0.95/20", cfg.LRDecayFactor, cfg.LRDecayEvery)
	}
}

func TestEndEpisodeDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultPPOConfig()
	cfg.LRDecayEvery = 2
	agent, err := NewPPO(rng, 3, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	agent.EndEpisode()
	if lr := agent.EndEpisode(); math.Abs(lr-cfg.ActorLR*0.95) > 1e-15 {
		t.Fatalf("lr after 2 episodes %v, want %v", lr, cfg.ActorLR*0.95)
	}
}

func TestUpdateRejectsEmptyBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	agent, err := NewPPO(rng, 2, 1, DefaultPPOConfig())
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	if _, err := agent.Update(&Buffer{}); err == nil {
		t.Fatal("Update accepted empty buffer")
	}
}

// ppoBanditEpisode collects one episode of a 1-step continuous bandit whose
// reward is -(squash(a) - target)²: the optimum is a known action.
func ppoBanditEpisode(rng *rand.Rand, agent *PPO, target float64) (*Buffer, float64) {
	buf := &Buffer{}
	state := []float64{1}
	var total float64
	for i := 0; i < 16; i++ {
		act, lp, _ := agent.Act(rng, state)
		a := policy.Squash(act[0], 0, 1)
		r := -(a - target) * (a - target)
		total += r
		buf.Add(Transition{
			State: state, Action: act, Reward: r,
			NextState: state, Done: true, LogProb: lp,
		})
	}
	return buf, total / 16
}

// TestPPOLearnsBandit trains on the bandit and checks the policy mean
// converges toward the optimal action.
func TestPPOLearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultPPOConfig()
	cfg.ActorLR = 3e-3
	cfg.CriticLR = 3e-3
	cfg.LRDecayEvery = 0
	cfg.Hidden = []int{16}
	agent, err := NewPPO(rng, 1, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	const target = 0.8
	var first, last float64
	for ep := 0; ep < 150; ep++ {
		buf, mean := ppoBanditEpisode(rng, agent, target)
		if ep == 0 {
			first = mean
		}
		last = mean
		if _, err := agent.Update(buf); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if last < first {
		t.Fatalf("PPO did not improve: %v -> %v", first, last)
	}
	act, err := agent.ActDeterministic([]float64{1})
	if err != nil {
		t.Fatalf("ActDeterministic: %v", err)
	}
	if got := policy.Squash(act[0], 0, 1); math.Abs(got-target) > 0.2 {
		t.Fatalf("learned action %v, want ≈%v", got, target)
	}
}

func TestUpdateStatsSane(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultPPOConfig()
	agent, err := NewPPO(rng, 2, 2, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	buf := &Buffer{}
	state := []float64{0.5, -0.5}
	for i := 0; i < 10; i++ {
		act, lp, _ := agent.Act(rng, state)
		buf.Add(Transition{
			State: state, Action: act, Reward: rng.Float64(),
			NextState: state, Done: i == 9, LogProb: lp,
		})
	}
	stats, err := agent.Update(buf)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if stats.NumSamples != 10 {
		t.Fatalf("NumSamples %d", stats.NumSamples)
	}
	if stats.ClipFrac < 0 || stats.ClipFrac > 1 {
		t.Fatalf("ClipFrac %v", stats.ClipFrac)
	}
	if math.IsNaN(stats.ActorLoss) || math.IsNaN(stats.CriticLoss) {
		t.Fatal("NaN losses")
	}
	if stats.MeanRatio < 0.1 || stats.MeanRatio > 10 {
		t.Fatalf("MeanRatio %v wildly off 1", stats.MeanRatio)
	}
}

// TestCriticLearnsValue regresses the critic toward a constant-reward
// terminal process: V(s) should approach r.
func TestCriticLearnsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultPPOConfig()
	cfg.CriticLR = 1e-2
	cfg.ActorLR = 1e-6 // hold the policy still
	cfg.LRDecayEvery = 0
	cfg.Hidden = []int{8}
	agent, err := NewPPO(rng, 1, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	state := []float64{0.7}
	const reward = 2.5
	for ep := 0; ep < 60; ep++ {
		buf := &Buffer{}
		for i := 0; i < 8; i++ {
			act, lp, _ := agent.Act(rng, state)
			buf.Add(Transition{State: state, Action: act, Reward: reward, NextState: state, Done: true, LogProb: lp})
		}
		if _, err := agent.Update(buf); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	v, err := agent.Value(state)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if math.Abs(v-reward) > 0.5 {
		t.Fatalf("critic value %v, want ≈%v", v, reward)
	}
}

// TestPPORatioClipBound verifies the clipped surrogate never lets the
// importance ratio's gradient act outside [1−ε, 1+ε] in the loss value.
func TestPPOClipFracGrowsWithStaleness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultPPOConfig()
	cfg.ActorLR = 1e-2 // deliberately large to force policy drift
	cfg.UpdateEpochs = 30
	agent, err := NewPPO(rng, 1, 1, cfg)
	if err != nil {
		t.Fatalf("NewPPO: %v", err)
	}
	buf := &Buffer{}
	state := []float64{0.2}
	for i := 0; i < 12; i++ {
		act, lp, _ := agent.Act(rng, state)
		buf.Add(Transition{State: state, Action: act, Reward: float64(i), NextState: state, Done: true, LogProb: lp})
	}
	stats, err := agent.Update(buf)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	// After 30 aggressive epochs on one batch some samples must clip.
	if stats.ClipFrac == 0 {
		t.Fatal("no clipping after aggressive updates; clip logic suspect")
	}
}
