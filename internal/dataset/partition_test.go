package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkPartitionInvariants verifies the contract every partitioner must
// satisfy: exact cover, no duplicates, no empty nodes.
func checkPartitionInvariants(t *testing.T, d *Dataset, parts [][]int, n int) {
	t.Helper()
	if len(parts) != n {
		t.Fatalf("got %d parts, want %d", len(parts), n)
	}
	seen := make(map[int]bool, d.Len())
	for node, idx := range parts {
		if len(idx) == 0 {
			t.Fatalf("node %d received no samples", node)
		}
		for _, i := range idx {
			if i < 0 || i >= d.Len() {
				t.Fatalf("node %d got out-of-range index %d", node, i)
			}
			if seen[i] {
				t.Fatalf("sample %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != d.Len() {
		t.Fatalf("%d samples assigned, want %d", len(seen), d.Len())
	}
}

func TestIIDPartition(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(103), 1)
	parts, err := IID{}.Partition(rand.New(rand.NewSource(2)), d, 5)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	checkPartitionInvariants(t, d, parts, 5)
	// IID split should be nearly balanced.
	for node, idx := range parts {
		if len(idx) < 20 || len(idx) > 21 {
			t.Fatalf("node %d has %d samples, want 20-21", node, len(idx))
		}
	}
}

func TestIIDPartitionErrors(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(3), 1)
	if _, err := (IID{}).Partition(rand.New(rand.NewSource(1)), d, 0); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := (IID{}).Partition(rand.New(rand.NewSource(1)), d, 10); err == nil {
		t.Fatal("accepted more nodes than samples")
	}
}

func TestDirichletPartition(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(600), 3)
	parts, err := Dirichlet{Alpha: 0.5}.Partition(rand.New(rand.NewSource(4)), d, 8)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	checkPartitionInvariants(t, d, parts, 8)
}

func TestDirichletSkewIncreasesWithSmallAlpha(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(3000), 5)
	skew := func(alpha float64) float64 {
		parts, err := Dirichlet{Alpha: alpha}.Partition(rand.New(rand.NewSource(6)), d, 10)
		if err != nil {
			t.Fatalf("Partition(%v): %v", alpha, err)
		}
		// Mean per-node label-distribution distance from uniform.
		var total float64
		for _, idx := range parts {
			counts := make([]float64, d.Classes)
			for _, i := range idx {
				counts[d.Y[i]]++
			}
			var dist float64
			for _, c := range counts {
				p := c / float64(len(idx))
				dist += math.Abs(p - 1.0/float64(d.Classes))
			}
			total += dist
		}
		return total / float64(len(parts))
	}
	lowAlpha := skew(0.1)
	highAlpha := skew(100)
	if lowAlpha <= highAlpha {
		t.Fatalf("Dirichlet skew not decreasing in alpha: %v (α=0.1) <= %v (α=100)", lowAlpha, highAlpha)
	}
}

func TestDirichletRejectsBadAlpha(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(100), 7)
	if _, err := (Dirichlet{Alpha: 0}).Partition(rand.New(rand.NewSource(1)), d, 4); err == nil {
		t.Fatal("accepted alpha 0")
	}
}

func TestShardsPartition(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(400), 8)
	parts, err := Shards{ShardsPerNode: 2}.Partition(rand.New(rand.NewSource(9)), d, 10)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	checkPartitionInvariants(t, d, parts, 10)
	// Shard splits are pathologically non-IID: most nodes should hold few
	// distinct labels.
	var fewLabelNodes int
	for _, idx := range parts {
		labels := make(map[int]bool)
		for _, i := range idx {
			labels[d.Y[i]] = true
		}
		if len(labels) <= 4 {
			fewLabelNodes++
		}
	}
	if fewLabelNodes < 5 {
		t.Fatalf("only %d/10 nodes are label-concentrated; shards split looks IID", fewLabelNodes)
	}
}

func TestShardsDefaultsAndErrors(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(50), 10)
	// Default ShardsPerNode (2) with 5 nodes needs 10 shards of 5 samples.
	parts, err := Shards{}.Partition(rand.New(rand.NewSource(11)), d, 5)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	checkPartitionInvariants(t, d, parts, 5)
	if _, err := (Shards{ShardsPerNode: 100}).Partition(rand.New(rand.NewSource(11)), d, 5); err == nil {
		t.Fatal("accepted more shards than samples")
	}
}

// Property: the partition invariants hold for random sizes across all
// partitioners.
func TestPartitionInvariantsProperty(t *testing.T) {
	partitioners := []Partitioner{IID{}, Dirichlet{Alpha: 0.5}, Shards{ShardsPerNode: 2}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		samples := n*20 + r.Intn(100)
		d, err := Generate(rand.New(rand.NewSource(seed+1)), SynthMNIST(samples))
		if err != nil {
			return false
		}
		for _, p := range partitioners {
			parts, err := p.Partition(r, d, n)
			if err != nil {
				return false
			}
			seen := make(map[int]bool)
			for _, idx := range parts {
				if len(idx) == 0 {
					return false
				}
				for _, i := range idx {
					if seen[i] {
						return false
					}
					seen[i] = true
				}
			}
			if len(seen) != d.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaSampleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, shape := range []float64{0.3, 1, 2.5, 10} {
		var sum float64
		const n = 4000
		for i := 0; i < n; i++ {
			v := gammaSample(rng, shape)
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("gammaSample(%v) = %v", shape, v)
			}
			sum += v
		}
		mean := sum / n
		// Gamma(shape,1) has mean == shape; allow generous sampling slack.
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Fatalf("gammaSample(%v) mean %v, want ≈%v", shape, mean, shape)
		}
	}
}

func TestDirichletSampleSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		w := dirichletSample(rng, 0.5, 7)
		var sum float64
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative weight %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}
