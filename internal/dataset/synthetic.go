package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
)

// SynthSpec parameterizes a synthetic image-classification task. Samples of
// class y are rendered as a class prototype pattern plus per-sample
// geometric jitter and pixel noise; harder presets overlap prototypes and
// flip labels, lowering the achievable accuracy the way CIFAR-10 does
// relative to MNIST.
type SynthSpec struct {
	Name       string
	Channels   int
	Side       int // images are Side×Side per channel
	Classes    int
	Samples    int
	Noise      float64 // stddev of additive pixel noise
	Jitter     int     // max translation of the prototype, in pixels
	Overlap    float64 // 0 = disjoint prototypes, 1 = heavily shared structure
	LabelNoise float64 // fraction of labels flipped uniformly at random
}

// Dim reports the flattened feature dimensionality.
func (s SynthSpec) Dim() int { return s.Channels * s.Side * s.Side }

// Validate reports whether the spec is well formed.
func (s SynthSpec) Validate() error {
	switch {
	case s.Channels <= 0:
		return fmt.Errorf("dataset: spec %q: channels %d", s.Name, s.Channels)
	case s.Side < 4:
		return fmt.Errorf("dataset: spec %q: side %d, want >= 4", s.Name, s.Side)
	case s.Classes < 2:
		return fmt.Errorf("dataset: spec %q: classes %d, want >= 2", s.Name, s.Classes)
	case s.Samples <= 0:
		return fmt.Errorf("dataset: spec %q: samples %d, want > 0", s.Name, s.Samples)
	case s.Noise < 0 || s.Overlap < 0 || s.Overlap > 1 || s.LabelNoise < 0 || s.LabelNoise > 1:
		return fmt.Errorf("dataset: spec %q: invalid noise/overlap parameters", s.Name)
	case s.Jitter < 0 || s.Jitter >= s.Side/2:
		return fmt.Errorf("dataset: spec %q: jitter %d out of range", s.Name, s.Jitter)
	}
	return nil
}

// SynthMNIST mirrors the MNIST task at reduced resolution: a clean,
// well-separated 10-class problem that a small model learns quickly.
func SynthMNIST(samples int) SynthSpec {
	return SynthSpec{
		Name: "synth-mnist", Channels: 1, Side: 12, Classes: 10,
		Samples: samples, Noise: 0.25, Jitter: 1, Overlap: 0.05, LabelNoise: 0,
	}
}

// SynthFashion mirrors Fashion-MNIST: same shape as MNIST but with more
// intra-class variation and inter-class overlap, capping accuracy lower.
func SynthFashion(samples int) SynthSpec {
	return SynthSpec{
		Name: "synth-fashion", Channels: 1, Side: 12, Classes: 10,
		Samples: samples, Noise: 0.45, Jitter: 2, Overlap: 0.25, LabelNoise: 0.02,
	}
}

// SynthCIFAR mirrors CIFAR-10: three channels, heavy noise and overlap, a
// markedly harder problem that converges more slowly and plateaus lower.
func SynthCIFAR(samples int) SynthSpec {
	return SynthSpec{
		Name: "synth-cifar", Channels: 3, Side: 12, Classes: 10,
		Samples: samples, Noise: 0.7, Jitter: 2, Overlap: 0.5, LabelNoise: 0.05,
	}
}

// Generate renders a dataset from the spec using rng. Class prototypes are
// deterministic functions of the class index and the spec's Overlap, so
// two calls with independent RNGs produce different samples of the same
// underlying task.
func Generate(rng *rand.Rand, spec SynthSpec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	protos := prototypes(spec)
	d := &Dataset{
		X:       mat.New(spec.Samples, spec.Dim()),
		Y:       make([]int, spec.Samples),
		Classes: spec.Classes,
	}
	for i := 0; i < spec.Samples; i++ {
		class := rng.Intn(spec.Classes)
		renderSample(rng, spec, protos[class], d.X.Row(i))
		if spec.LabelNoise > 0 && rng.Float64() < spec.LabelNoise {
			class = rng.Intn(spec.Classes)
		}
		d.Y[i] = class
	}
	return d, nil
}

// prototypes builds one Side×Side×Channels pattern per class. Each class
// pattern is a superposition of oriented sinusoid gratings whose phase and
// frequency are class-specific; Overlap mixes in a shared component so
// classes become harder to tell apart.
func prototypes(spec SynthSpec) [][]float64 {
	out := make([][]float64, spec.Classes)
	shared := grating(spec, 1.0, 0.5, 0.0)
	for c := 0; c < spec.Classes; c++ {
		angle := math.Pi * float64(c) / float64(spec.Classes)
		freq := 1.0 + float64(c%5)*0.5
		phase := float64(c) * 0.7
		own := grating(spec, freq, angle, phase)
		p := make([]float64, spec.Dim())
		for i := range p {
			p[i] = (1-spec.Overlap)*own[i] + spec.Overlap*shared[i]
		}
		out[c] = p
	}
	return out
}

// grating renders an oriented sinusoid across all channels, phase-shifted
// per channel so multi-channel specs carry channel structure.
func grating(spec SynthSpec, freq, angle, phase float64) []float64 {
	p := make([]float64, spec.Dim())
	kx := math.Cos(angle) * freq * 2 * math.Pi / float64(spec.Side)
	ky := math.Sin(angle) * freq * 2 * math.Pi / float64(spec.Side)
	for ch := 0; ch < spec.Channels; ch++ {
		chPhase := phase + float64(ch)*0.9
		base := ch * spec.Side * spec.Side
		for y := 0; y < spec.Side; y++ {
			for x := 0; x < spec.Side; x++ {
				p[base+y*spec.Side+x] = math.Sin(kx*float64(x) + ky*float64(y) + chPhase)
			}
		}
	}
	return p
}

// renderSample writes one noisy, jittered copy of proto into dst.
func renderSample(rng *rand.Rand, spec SynthSpec, proto []float64, dst []float64) {
	dx, dy := 0, 0
	if spec.Jitter > 0 {
		dx = rng.Intn(2*spec.Jitter+1) - spec.Jitter
		dy = rng.Intn(2*spec.Jitter+1) - spec.Jitter
	}
	for ch := 0; ch < spec.Channels; ch++ {
		base := ch * spec.Side * spec.Side
		for y := 0; y < spec.Side; y++ {
			sy := clampInt(y+dy, 0, spec.Side-1)
			for x := 0; x < spec.Side; x++ {
				sx := clampInt(x+dx, 0, spec.Side-1)
				dst[base+y*spec.Side+x] = proto[base+sy*spec.Side+sx] + rng.NormFloat64()*spec.Noise
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
