package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/mat"
)

func mustGenerate(t *testing.T, spec SynthSpec, seed int64) *Dataset {
	t.Helper()
	d, err := Generate(rand.New(rand.NewSource(seed)), spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestGenerateShapes(t *testing.T) {
	spec := SynthMNIST(200)
	d := mustGenerate(t, spec, 1)
	if d.Len() != 200 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Dim() != spec.Dim() {
		t.Fatalf("Dim = %d, want %d", d.Dim(), spec.Dim())
	}
	for i, y := range d.Y {
		if y < 0 || y >= spec.Classes {
			t.Fatalf("label %d = %d out of range", i, y)
		}
	}
}

func TestGenerateCoversAllClasses(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(2000), 2)
	for cls, count := range d.ClassCounts() {
		if count == 0 {
			t.Fatalf("class %d has no samples", cls)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []SynthSpec{
		{Channels: 0, Side: 12, Classes: 10, Samples: 10},
		{Channels: 1, Side: 2, Classes: 10, Samples: 10},
		{Channels: 1, Side: 12, Classes: 1, Samples: 10},
		{Channels: 1, Side: 12, Classes: 10, Samples: 0},
		{Channels: 1, Side: 12, Classes: 10, Samples: 10, Noise: -1},
		{Channels: 1, Side: 12, Classes: 10, Samples: 10, Overlap: 1.5},
		{Channels: 1, Side: 12, Classes: 10, Samples: 10, Jitter: 6},
		{Channels: 1, Side: 12, Classes: 10, Samples: 10, LabelNoise: 2},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %d validated unexpectedly", i)
		}
	}
	if err := SynthCIFAR(100).Validate(); err != nil {
		t.Fatalf("SynthCIFAR invalid: %v", err)
	}
}

func TestGenerateDeterministicGivenSeed(t *testing.T) {
	a := mustGenerate(t, SynthFashion(50), 42)
	b := mustGenerate(t, SynthFashion(50), 42)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
	for i, v := range a.X.Data() {
		if b.X.Data()[i] != v {
			t.Fatal("features differ across identical seeds")
		}
	}
}

func TestSubset(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(20), 3)
	sub, err := d.Subset([]int{0, 5, 19})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.Len() != 3 || sub.Y[1] != d.Y[5] {
		t.Fatalf("subset mismatch")
	}
	// Copies, not views.
	sub.X.Set(0, 0, 1234)
	if d.X.At(0, 0) == 1234 {
		t.Fatal("Subset aliases parent features")
	}
	if _, err := d.Subset([]int{99}); err == nil {
		t.Fatal("Subset accepted out-of-range index")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(60), 4)
	// Fingerprint each sample's features keyed by a strong hash of the row.
	key := func(row []float64) float64 {
		var h float64
		for i, v := range row {
			h += v * float64(i+1)
		}
		return h
	}
	before := make(map[int][]float64)
	for i := 0; i < d.Len(); i++ {
		before[d.Y[i]] = append(before[d.Y[i]], key(d.X.Row(i)))
	}
	d.Shuffle(rand.New(rand.NewSource(5)))
	after := make(map[int][]float64)
	for i := 0; i < d.Len(); i++ {
		after[d.Y[i]] = append(after[d.Y[i]], key(d.X.Row(i)))
	}
	for cls, keys := range before {
		if len(after[cls]) != len(keys) {
			t.Fatalf("class %d count changed after shuffle", cls)
		}
		sum := func(v []float64) float64 {
			var s float64
			for _, x := range v {
				s += x
			}
			return s
		}
		if math.Abs(sum(keys)-sum(after[cls])) > 1e-6 {
			t.Fatalf("class %d feature fingerprints changed after shuffle", cls)
		}
	}
}

func TestSplit(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(100), 6)
	train, test, err := d.Split(rand.New(rand.NewSource(7)), 0.2)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if train.Len()+test.Len() != 100 {
		t.Fatalf("split sizes %d+%d", train.Len(), test.Len())
	}
	if test.Len() != 20 {
		t.Fatalf("test size %d, want 20", test.Len())
	}
	if _, _, err := d.Split(rand.New(rand.NewSource(8)), 1.0); err == nil {
		t.Fatal("Split accepted fraction 1.0")
	}
}

func TestBatches(t *testing.T) {
	d := mustGenerate(t, SynthMNIST(25), 9)
	var sizes []int
	err := d.Batches(10, func(x *mat.Matrix, y []int) error {
		if x.Rows() != len(y) {
			t.Fatalf("batch rows %d labels %d", x.Rows(), len(y))
		}
		sizes = append(sizes, len(y))
		return nil
	})
	if err != nil {
		t.Fatalf("Batches: %v", err)
	}
	if len(sizes) != 3 || sizes[0] != 10 || sizes[2] != 5 {
		t.Fatalf("batch sizes %v", sizes)
	}
	if err := d.Batches(0, nil); err == nil {
		t.Fatal("Batches accepted size 0")
	}
}

func TestDifficultyOrdering(t *testing.T) {
	// A nearest-prototype classifier should find MNIST-like data easier
	// than CIFAR-like data, mirroring the real datasets' ordering.
	errRate := func(spec SynthSpec) float64 {
		d := mustGenerate(t, spec, 10)
		protos := prototypes(spec)
		var wrong int
		for i := 0; i < d.Len(); i++ {
			best, bestDist := -1, math.Inf(1)
			for c, p := range protos {
				var dist float64
				row := d.X.Row(i)
				for j := range p {
					diff := row[j] - p[j]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if best != d.Y[i] {
				wrong++
			}
		}
		return float64(wrong) / float64(d.Len())
	}
	mnist := errRate(SynthMNIST(1000))
	cifar := errRate(SynthCIFAR(1000))
	if mnist >= cifar {
		t.Fatalf("difficulty inverted: mnist err %v >= cifar err %v", mnist, cifar)
	}
}

// Property: every generated sample has finite feature values.
func TestGenerateFiniteFeatures(t *testing.T) {
	f := func(seed int64) bool {
		spec := SynthFashion(30)
		d, err := Generate(rand.New(rand.NewSource(seed)), spec)
		if err != nil {
			return false
		}
		for _, v := range d.X.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
