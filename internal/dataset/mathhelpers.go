package dataset

import "math"

func powFloat(x, y float64) float64 { return math.Pow(x, y) }
func sqrtFloat(x float64) float64   { return math.Sqrt(x) }
func logFloat(x float64) float64    { return math.Log(x) }
