// Package dataset provides procedurally generated stand-ins for the three
// image-classification datasets the paper evaluates on (MNIST,
// Fashion-MNIST, CIFAR-10), plus the IID and non-IID partitioners that
// split them across edge nodes.
//
// Real archives are unavailable in this offline reproduction, so each
// synthetic dataset draws samples from class-conditional structured
// patterns with tunable intra-class variation, label noise, and class
// overlap; the three presets are calibrated so their relative learning
// difficulty matches the originals (MNIST easiest, CIFAR-10 hardest),
// which is the property the incentive mechanism actually consumes.
package dataset

import (
	"fmt"
	"math/rand"

	"chiron/internal/mat"
)

// Dataset is a labeled classification sample set with a fixed feature
// layout (one flattened sample per matrix row).
type Dataset struct {
	X       *mat.Matrix
	Y       []int
	Classes int

	// Recycled Batches buffers: one for full-size batches, one for the
	// short tail batch, so an epoch of mini-batching allocates nothing
	// after the first pass.
	batchBuf, tailBuf *mat.Matrix
}

// Len reports the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim reports the feature dimensionality.
func (d *Dataset) Dim() int {
	if d.X == nil {
		return 0
	}
	return d.X.Cols()
}

// Subset returns a dataset view containing the given sample indices. The
// feature rows are copied so the subset is independent of the parent.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	sub := &Dataset{X: mat.New(len(indices), d.Dim()), Y: make([]int, len(indices)), Classes: d.Classes}
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", idx, d.Len())
		}
		copy(sub.X.Row(i), d.X.Row(idx))
		sub.Y[i] = d.Y[idx]
	}
	return sub, nil
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	tmp := make([]float64, d.Dim())
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		ri, rj := d.X.Row(i), d.X.Row(j)
		copy(tmp, ri)
		copy(ri, rj)
		copy(rj, tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Split divides the dataset into a training and test set, with testFrac of
// the samples (rounded down, at least one when possible) in the test set.
func (d *Dataset) Split(rng *rand.Rand, testFrac float64) (train, test *Dataset, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v outside [0,1)", testFrac)
	}
	perm := rng.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	test, err = d.Subset(perm[:nTest])
	if err != nil {
		return nil, nil, err
	}
	train, err = d.Subset(perm[nTest:])
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// Batches cuts the dataset into consecutive mini-batches of the given size
// (the final batch may be short) and calls fn for each. Shuffle first for
// stochastic gradient descent. The batch matrix passed to fn is a recycled
// buffer owned by the dataset: it is valid only for the duration of the
// callback and is overwritten by the next batch.
func (d *Dataset) Batches(size int, fn func(x *mat.Matrix, y []int) error) error {
	if size <= 0 {
		return fmt.Errorf("dataset: batch size %d, want > 0", size)
	}
	for start := 0; start < d.Len(); start += size {
		end := start + size
		if end > d.Len() {
			end = d.Len()
		}
		rows := end - start
		var x *mat.Matrix
		if rows == size {
			d.batchBuf = mat.Ensure(d.batchBuf, rows, d.Dim())
			x = d.batchBuf
		} else {
			d.tailBuf = mat.Ensure(d.tailBuf, rows, d.Dim())
			x = d.tailBuf
		}
		for r := 0; r < rows; r++ {
			copy(x.Row(r), d.X.Row(start+r))
		}
		if err := fn(x, d.Y[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// ClassCounts returns the per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}
