package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partitioner splits a dataset's sample indices across n edge nodes.
type Partitioner interface {
	// Partition returns one index slice per node. Every sample is assigned
	// to exactly one node and every node receives at least one sample.
	Partition(rng *rand.Rand, d *Dataset, n int) ([][]int, error)
}

// IID assigns samples uniformly at random, the paper's "randomly
// distributed among the edge nodes" setting.
type IID struct{}

var _ Partitioner = IID{}

// Partition implements Partitioner.
func (IID) Partition(rng *rand.Rand, d *Dataset, n int) ([][]int, error) {
	if err := checkPartitionArgs(d, n); err != nil {
		return nil, err
	}
	perm := rng.Perm(d.Len())
	out := make([][]int, n)
	for i, idx := range perm {
		node := i % n
		out[node] = append(out[node], idx)
	}
	return out, nil
}

// Dirichlet assigns each class's samples across nodes with proportions
// drawn from a symmetric Dirichlet(α) distribution — the standard
// federated-learning non-IID benchmark. Small α yields highly skewed
// label distributions.
type Dirichlet struct {
	Alpha float64
}

var _ Partitioner = Dirichlet{}

// Partition implements Partitioner.
func (p Dirichlet) Partition(rng *rand.Rand, d *Dataset, n int) ([][]int, error) {
	if err := checkPartitionArgs(d, n); err != nil {
		return nil, err
	}
	if p.Alpha <= 0 {
		return nil, fmt.Errorf("dataset: dirichlet alpha %v, want > 0", p.Alpha)
	}
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	out := make([][]int, n)
	for _, indices := range byClass {
		if len(indices) == 0 {
			continue
		}
		rng.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		weights := dirichletSample(rng, p.Alpha, n)
		// Convert weights into cumulative cut points over this class.
		start := 0
		var cum float64
		for node := 0; node < n; node++ {
			cum += weights[node]
			end := int(cum * float64(len(indices)))
			if node == n-1 {
				end = len(indices)
			}
			if end > start {
				out[node] = append(out[node], indices[start:end]...)
				start = end
			}
		}
	}
	// Guarantee every node holds at least one sample by stealing from the
	// richest node.
	for node := range out {
		if len(out[node]) > 0 {
			continue
		}
		richest := 0
		for j := range out {
			if len(out[j]) > len(out[richest]) {
				richest = j
			}
		}
		if len(out[richest]) < 2 {
			return nil, fmt.Errorf("dataset: too few samples (%d) for %d nodes", d.Len(), n)
		}
		last := len(out[richest]) - 1
		out[node] = append(out[node], out[richest][last])
		out[richest] = out[richest][:last]
	}
	return out, nil
}

// Shards sorts samples by label, cuts them into ShardsPerNode×n contiguous
// shards, and deals shards to nodes — the pathological non-IID split from
// the original FedAvg paper.
type Shards struct {
	ShardsPerNode int
}

var _ Partitioner = Shards{}

// Partition implements Partitioner.
func (p Shards) Partition(rng *rand.Rand, d *Dataset, n int) ([][]int, error) {
	if err := checkPartitionArgs(d, n); err != nil {
		return nil, err
	}
	spn := p.ShardsPerNode
	if spn <= 0 {
		spn = 2
	}
	total := spn * n
	if d.Len() < total {
		return nil, fmt.Errorf("dataset: %d samples cannot fill %d shards", d.Len(), total)
	}
	indices := make([]int, d.Len())
	for i := range indices {
		indices[i] = i
	}
	sort.SliceStable(indices, func(a, b int) bool { return d.Y[indices[a]] < d.Y[indices[b]] })
	shardSize := d.Len() / total
	order := rng.Perm(total)
	out := make([][]int, n)
	for s, shard := range order {
		node := s / spn
		start := shard * shardSize
		end := start + shardSize
		if shard == total-1 {
			end = d.Len()
		}
		out[node] = append(out[node], indices[start:end]...)
	}
	return out, nil
}

func checkPartitionArgs(d *Dataset, n int) error {
	if n <= 0 {
		return fmt.Errorf("dataset: partition over %d nodes", n)
	}
	if d.Len() < n {
		return fmt.Errorf("dataset: %d samples for %d nodes", d.Len(), n)
	}
	return nil
}

// dirichletSample draws one symmetric Dirichlet(alpha) vector of length n
// via normalized Gamma(alpha,1) marginals.
func dirichletSample(rng *rand.Rand, alpha float64, n int) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = gammaSample(rng, alpha)
		sum += w[i]
	}
	if sum <= 0 {
		u := 1 / float64(n)
		for i := range w {
			w[i] = u
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gammaSample draws Gamma(shape,1) using Marsaglia–Tsang, with the boost
// trick for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * powFloat(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / sqrtFloat(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && logFloat(u) < 0.5*x*x+d*(1-v+logFloat(v)) {
			return d * v
		}
	}
}
