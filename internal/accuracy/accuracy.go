// Package accuracy supplies the A(ω_k) signal the exterior agent's reward
// consumes. Two interchangeable implementations exist:
//
//   - SurrogateCurve: an analytic saturating-exponential accuracy model
//     calibrated against the paper's own reported numbers, used in the
//     500-episode DRL sweeps where real neural training would dominate
//     wall-clock without changing the mechanism under study.
//   - RealTrainer: an adapter over internal/fl that actually trains a Go
//     neural network with FedAvg each round and measures test accuracy,
//     used in examples and integration tests to exercise the full
//     pipeline the way the paper's PyTorch simulator did.
//
// Both implement Model and are reset between episodes.
package accuracy

import (
	"fmt"
	"math"
	"math/rand"
)

// Model produces the global-model accuracy trajectory of one edge-learning
// episode. Implementations must be deterministic given their RNG.
type Model interface {
	// Reset reinitializes the learning task for a new episode and returns
	// the accuracy of the untrained global model.
	Reset() (float64, error)
	// Advance runs one federated training round and returns the new global
	// model accuracy A(ω_k). participants lists the node IDs that trained
	// this round; a round with no participants leaves accuracy unchanged.
	Advance(participants []int) (float64, error)
	// Accuracy returns the current A(ω) without advancing.
	Accuracy() float64
}

// SurrogateCurve models A(k) = AInf − B·exp(−k_eff/Tau) − B2·exp(−k_eff/Tau2)
// plus noise: the saturating learning curve of FedAvg image classification,
// optionally with a second exponential term so a fast early climb and a
// slow late tail can be fit simultaneously (the shape of the paper's
// Table I). k_eff counts rounds weighted by the participating fraction of
// nodes, so rounds with partial participation move the model
// proportionally less — the property that makes node participation worth
// paying for.
type SurrogateCurve struct {
	// AInf is the asymptotic accuracy of the task.
	AInf float64
	// B is the initial accuracy deficit of the primary term.
	B float64
	// Tau is the round constant of the primary term.
	Tau float64
	// B2 and Tau2 define the optional second exponential term (B2=0
	// disables it). A(0) = AInf − B − B2.
	B2   float64
	Tau2 float64
	// NoiseStd adds zero-mean Gaussian measurement noise per round.
	NoiseStd float64
	// TotalNodes is the fleet size used to weight partial participation.
	TotalNodes int

	rng  *rand.Rand
	kEff float64
	acc  float64
}

var _ Model = (*SurrogateCurve)(nil)

// NewSurrogateCurve validates the parameters and binds the RNG.
func NewSurrogateCurve(rng *rand.Rand, aInf, b, tau, noiseStd float64, totalNodes int) (*SurrogateCurve, error) {
	switch {
	case aInf <= 0 || aInf > 1:
		return nil, fmt.Errorf("accuracy: AInf %v outside (0,1]", aInf)
	case b <= 0 || b >= aInf:
		return nil, fmt.Errorf("accuracy: B %v outside (0,AInf)", b)
	case tau <= 0:
		return nil, fmt.Errorf("accuracy: Tau %v, want > 0", tau)
	case noiseStd < 0:
		return nil, fmt.Errorf("accuracy: noise std %v, want >= 0", noiseStd)
	case totalNodes <= 0:
		return nil, fmt.Errorf("accuracy: total nodes %d, want > 0", totalNodes)
	}
	s := &SurrogateCurve{AInf: aInf, B: b, Tau: tau, NoiseStd: noiseStd, TotalNodes: totalNodes, rng: rng}
	if _, err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewTwoTermCurve builds a surrogate with both exponential terms. The
// second term must keep A(0) = AInf − B − B2 nonnegative.
func NewTwoTermCurve(rng *rand.Rand, aInf, b, tau, b2, tau2, noiseStd float64, totalNodes int) (*SurrogateCurve, error) {
	s, err := NewSurrogateCurve(rng, aInf, b, tau, noiseStd, totalNodes)
	if err != nil {
		return nil, err
	}
	if b2 < 0 || tau2 <= 0 {
		return nil, fmt.Errorf("accuracy: second term B2=%v Tau2=%v", b2, tau2)
	}
	if aInf-b-b2 < 0 {
		return nil, fmt.Errorf("accuracy: A(0) = %v negative with both terms", aInf-b-b2)
	}
	s.B2, s.Tau2 = b2, tau2
	if _, err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset implements Model.
func (s *SurrogateCurve) Reset() (float64, error) {
	s.kEff = 0
	s.acc = s.value()
	return s.acc, nil
}

// Advance implements Model.
func (s *SurrogateCurve) Advance(participants []int) (float64, error) {
	if len(participants) > s.TotalNodes {
		return 0, fmt.Errorf("accuracy: %d participants for %d nodes", len(participants), s.TotalNodes)
	}
	s.kEff += float64(len(participants)) / float64(s.TotalNodes)
	v := s.value()
	if s.NoiseStd > 0 {
		v += s.rng.NormFloat64() * s.NoiseStd
	}
	// Accuracy is monotone in expectation; clamp noise to a sane band.
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	s.acc = v
	return s.acc, nil
}

// Accuracy implements Model.
func (s *SurrogateCurve) Accuracy() float64 { return s.acc }

func (s *SurrogateCurve) value() float64 {
	v := s.AInf - s.B*math.Exp(-s.kEff/s.Tau)
	if s.B2 > 0 {
		v -= s.B2 * math.Exp(-s.kEff/s.Tau2)
	}
	return v
}

// Preset identifies a calibrated surrogate parameterization.
type Preset int

// Calibrated presets. MNISTLarge is fit directly to the paper's Table I
// (0.916@16, 0.929@23, 0.938@31, 0.943@34 rounds); the others preserve the
// relative task difficulty of the paper's Figs. 4–6.
const (
	PresetMNIST Preset = iota + 1
	PresetFashion
	PresetCIFAR
	PresetMNISTLarge
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case PresetMNIST:
		return "mnist"
	case PresetFashion:
		return "fashion-mnist"
	case PresetCIFAR:
		return "cifar-10"
	case PresetMNISTLarge:
		return "mnist-100nodes"
	default:
		return fmt.Sprintf("preset(%d)", int(p))
	}
}

// NewPresetCurve returns the calibrated surrogate for a dataset preset and
// fleet size.
func NewPresetCurve(rng *rand.Rand, p Preset, totalNodes int) (*SurrogateCurve, error) {
	switch p {
	case PresetMNIST:
		return NewSurrogateCurve(rng, 0.99, 0.89, 8.0, 0.002, totalNodes)
	case PresetFashion:
		return NewSurrogateCurve(rng, 0.90, 0.80, 10.0, 0.003, totalNodes)
	case PresetCIFAR:
		return NewSurrogateCurve(rng, 0.65, 0.55, 16.0, 0.004, totalNodes)
	case PresetMNISTLarge:
		// Two-term fit to Table I: the slow tail 0.138·exp(−k/11.4) alone
		// reproduces 0.916@16 / 0.929@23 / 0.938@31 / 0.943@34, and the
		// fast term 0.712·exp(−k/3) restores the early climb from random
		// guessing (A(0) ≈ 0.10) that the tail-only fit would erase.
		return NewTwoTermCurve(rng, 0.95, 0.138, 11.4, 0.712, 3.0, 0.002, totalNodes)
	default:
		return nil, fmt.Errorf("accuracy: unknown preset %v", p)
	}
}
