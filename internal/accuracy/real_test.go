package accuracy

import (
	"math/rand"
	"testing"

	"chiron/internal/dataset"
	"chiron/internal/fl"
	"chiron/internal/nn"
)

func testTrainerConfig(nodes int) RealTrainerConfig {
	spec := dataset.SynthMNIST(300)
	return RealTrainerConfig{
		Spec: spec,
		Factory: func(rng *rand.Rand) (*nn.Network, error) {
			return nn.NewClassifierMLP(rng, spec.Dim(), 12, spec.Classes)
		},
		Train:        fl.Config{Epochs: 2, BatchSize: 10, LearningRate: 0.05, Momentum: 0.5},
		NumNodes:     nodes,
		TestFraction: 0.2,
		Seed:         5,
	}
}

func TestRealTrainerValidation(t *testing.T) {
	cfg := testTrainerConfig(3)
	cfg.Factory = nil
	if _, err := NewRealTrainer(cfg); err == nil {
		t.Fatal("accepted nil factory")
	}
	cfg = testTrainerConfig(0)
	if _, err := NewRealTrainer(cfg); err == nil {
		t.Fatal("accepted zero nodes")
	}
	cfg = testTrainerConfig(3)
	cfg.TestFraction = 1
	if _, err := NewRealTrainer(cfg); err == nil {
		t.Fatal("accepted test fraction 1")
	}
}

func TestRealTrainerLearns(t *testing.T) {
	rt, err := NewRealTrainer(testTrainerConfig(3))
	if err != nil {
		t.Fatalf("NewRealTrainer: %v", err)
	}
	start := rt.Accuracy()
	if start > 0.35 {
		t.Fatalf("untrained accuracy %v suspiciously high", start)
	}
	all := []int{0, 1, 2}
	var acc float64
	for k := 0; k < 4; k++ {
		acc, err = rt.Advance(all)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	if acc < start+0.3 {
		t.Fatalf("real training failed to learn: %v -> %v", start, acc)
	}
}

func TestRealTrainerEmptyRound(t *testing.T) {
	rt, err := NewRealTrainer(testTrainerConfig(2))
	if err != nil {
		t.Fatalf("NewRealTrainer: %v", err)
	}
	before := rt.Accuracy()
	acc, err := rt.Advance(nil)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if acc != before {
		t.Fatalf("empty round changed accuracy %v -> %v", before, acc)
	}
}

func TestRealTrainerRejectsBadParticipant(t *testing.T) {
	rt, err := NewRealTrainer(testTrainerConfig(2))
	if err != nil {
		t.Fatalf("NewRealTrainer: %v", err)
	}
	if _, err := rt.Advance([]int{5}); err == nil {
		t.Fatal("accepted out-of-range participant")
	}
	if _, err := rt.Advance([]int{-1}); err == nil {
		t.Fatal("accepted negative participant")
	}
}

func TestRealTrainerResetStartsFreshEpisode(t *testing.T) {
	rt, err := NewRealTrainer(testTrainerConfig(2))
	if err != nil {
		t.Fatalf("NewRealTrainer: %v", err)
	}
	all := []int{0, 1}
	for k := 0; k < 3; k++ {
		if _, err := rt.Advance(all); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	trained := rt.Accuracy()
	fresh, err := rt.Reset()
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if fresh >= trained {
		t.Fatalf("reset did not reinitialize: fresh %v >= trained %v", fresh, trained)
	}
}
