package accuracy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCurve(t *testing.T, nodes int) *SurrogateCurve {
	t.Helper()
	c, err := NewSurrogateCurve(rand.New(rand.NewSource(1)), 0.95, 0.138, 11.4, 0, nodes)
	if err != nil {
		t.Fatalf("NewSurrogateCurve: %v", err)
	}
	return c
}

func TestSurrogateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []struct {
		aInf, b, tau, noise float64
		nodes               int
	}{
		{0, 0.1, 5, 0, 5},
		{1.5, 0.1, 5, 0, 5},
		{0.9, 0, 5, 0, 5},
		{0.9, 0.95, 5, 0, 5},
		{0.9, 0.5, 0, 0, 5},
		{0.9, 0.5, 5, -1, 5},
		{0.9, 0.5, 5, 0, 0},
	}
	for i, c := range bad {
		if _, err := NewSurrogateCurve(rng, c.aInf, c.b, c.tau, c.noise, c.nodes); err == nil {
			t.Fatalf("bad curve %d accepted", i)
		}
	}
}

func TestSurrogateMatchesTable1Calibration(t *testing.T) {
	// A(k) = 0.95 − 0.138·exp(−k/11.4) fit to the paper's Table I.
	c := newCurve(t, 100)
	all := make([]int, 100)
	for i := range all {
		all[i] = i
	}
	want := map[int]float64{16: 0.916, 23: 0.929, 31: 0.938, 34: 0.943}
	var acc float64
	for k := 1; k <= 34; k++ {
		var err error
		acc, err = c.Advance(all)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if target, ok := want[k]; ok {
			if math.Abs(acc-target) > 0.004 {
				t.Fatalf("A(%d) = %.4f, want ≈%.3f (Table I)", k, acc, target)
			}
		}
	}
}

func TestSurrogateMonotoneNoiseless(t *testing.T) {
	c := newCurve(t, 10)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	prev := c.Accuracy()
	for k := 0; k < 50; k++ {
		acc, err := c.Advance(all)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if acc < prev {
			t.Fatalf("accuracy decreased at round %d: %v -> %v", k, prev, acc)
		}
		prev = acc
	}
	if prev >= c.AInf {
		t.Fatalf("accuracy %v exceeded asymptote %v", prev, c.AInf)
	}
}

func TestSurrogatePartialParticipationSlower(t *testing.T) {
	full := newCurve(t, 10)
	half := newCurve(t, 10)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	some := []int{0, 1, 2, 3, 4}
	for k := 0; k < 20; k++ {
		if _, err := full.Advance(all); err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if _, err := half.Advance(some); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	if half.Accuracy() >= full.Accuracy() {
		t.Fatalf("partial participation not slower: %v >= %v", half.Accuracy(), full.Accuracy())
	}
}

func TestSurrogateEmptyRoundNoProgress(t *testing.T) {
	c := newCurve(t, 5)
	before := c.Accuracy()
	acc, err := c.Advance(nil)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if acc != before {
		t.Fatalf("empty round moved accuracy %v -> %v", before, acc)
	}
}

func TestSurrogateTooManyParticipants(t *testing.T) {
	c := newCurve(t, 3)
	if _, err := c.Advance([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("accepted more participants than nodes")
	}
}

func TestSurrogateResetRestoresStart(t *testing.T) {
	c := newCurve(t, 5)
	start := c.Accuracy()
	for k := 0; k < 10; k++ {
		if _, err := c.Advance([]int{0, 1, 2, 3, 4}); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	got, err := c.Reset()
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got != start {
		t.Fatalf("Reset accuracy %v, want %v", got, start)
	}
}

func TestPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []Preset{PresetMNIST, PresetFashion, PresetCIFAR} {
		c, err := NewPresetCurve(rng, p, 10)
		if err != nil {
			t.Fatalf("preset %v: %v", p, err)
		}
		if c.Accuracy() < 0 || c.Accuracy() > 0.2 {
			t.Fatalf("preset %v initial accuracy %v, want near random", p, c.Accuracy())
		}
	}
	// PresetMNISTLarge is a two-term fit to Table I; its A(0) is random
	// guessing like the others (0.95 − 0.712 − 0.138 = 0.10).
	large, err := NewPresetCurve(rng, PresetMNISTLarge, 100)
	if err != nil {
		t.Fatalf("preset large: %v", err)
	}
	if large.Accuracy() < 0.05 || large.Accuracy() > 0.2 {
		t.Fatalf("large preset A(0) = %v, want ≈0.10", large.Accuracy())
	}
	if _, err := NewPresetCurve(rng, Preset(99), 10); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetDifficultyOrdering(t *testing.T) {
	// After the same number of full-participation rounds, MNIST should be
	// most accurate and CIFAR least, matching the real datasets.
	run := func(p Preset) float64 {
		c, err := NewPresetCurve(rand.New(rand.NewSource(3)), p, 5)
		if err != nil {
			t.Fatalf("preset %v: %v", p, err)
		}
		c.NoiseStd = 0
		all := []int{0, 1, 2, 3, 4}
		var acc float64
		for k := 0; k < 25; k++ {
			acc, err = c.Advance(all)
			if err != nil {
				t.Fatalf("Advance: %v", err)
			}
		}
		return acc
	}
	mnist, fashion, cifar := run(PresetMNIST), run(PresetFashion), run(PresetCIFAR)
	if !(mnist > fashion && fashion > cifar) {
		t.Fatalf("difficulty ordering violated: mnist %v fashion %v cifar %v", mnist, fashion, cifar)
	}
}

func TestPresetString(t *testing.T) {
	if PresetMNIST.String() != "mnist" || PresetCIFAR.String() != "cifar-10" {
		t.Fatal("preset names wrong")
	}
}

// Property: with noise enabled the accuracy stays within [0,1] no matter
// the participation pattern.
func TestSurrogateBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewSurrogateCurve(rng, 0.9, 0.8, 5, 0.05, 8)
		if err != nil {
			return false
		}
		for k := 0; k < 60; k++ {
			n := rng.Intn(9)
			parts := make([]int, n)
			for i := range parts {
				parts[i] = i
			}
			acc, err := c.Advance(parts)
			if err != nil || acc < 0 || acc > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTermCurveTable1Fit(t *testing.T) {
	// The full Table I fit: random-guess start, fast early climb, and the
	// paper's reported points on the slow tail.
	c, err := NewTwoTermCurve(rand.New(rand.NewSource(4)), 0.95, 0.138, 11.4, 0.712, 3.0, 0, 100)
	if err != nil {
		t.Fatalf("NewTwoTermCurve: %v", err)
	}
	if math.Abs(c.Accuracy()-0.10) > 1e-9 {
		t.Fatalf("A(0) = %v, want 0.10", c.Accuracy())
	}
	all := make([]int, 100)
	for i := range all {
		all[i] = i
	}
	want := map[int]float64{16: 0.916, 23: 0.929, 31: 0.938, 34: 0.943}
	var acc float64
	for k := 1; k <= 34; k++ {
		if acc, err = c.Advance(all); err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if target, ok := want[k]; ok && math.Abs(acc-target) > 0.006 {
			t.Fatalf("A(%d) = %.4f, want ≈%.3f", k, acc, target)
		}
	}
}

func TestTwoTermCurveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewTwoTermCurve(rng, 0.95, 0.5, 5, 0.6, 3, 0, 10); err == nil {
		t.Fatal("accepted negative A(0)")
	}
	if _, err := NewTwoTermCurve(rng, 0.95, 0.5, 5, 0.1, 0, 0, 10); err == nil {
		t.Fatal("accepted Tau2 = 0")
	}
	if _, err := NewTwoTermCurve(rng, 0.95, 0.5, 5, -0.1, 3, 0, 10); err == nil {
		t.Fatal("accepted negative B2")
	}
}
