package accuracy

import (
	"fmt"
	"math/rand"

	"chiron/internal/dataset"
	"chiron/internal/fl"
)

// RealTrainer measures A(ω_k) by actually running federated training: each
// Advance performs one FedAvg round over the participating clients and
// evaluates the aggregated global model on a held-out test set. This is the
// paper's "only through real model training can we precisely obtain the
// correct model accuracy" path, built on the pure-Go nn/fl substrates.
type RealTrainer struct {
	spec     dataset.SynthSpec
	parts    dataset.Partitioner
	factory  fl.ModelFactory
	cfg      fl.Config
	numNodes int
	testFrac float64
	seedBase int64
	episode  int
	clients  []*fl.Client
	server   *fl.Server
	acc      float64

	// Recycled per-round buffers for the global download and the upload
	// batch, so Advance allocates nothing in steady state.
	globalBuf []float64
	updates   []fl.Update
}

// RealTrainerConfig bundles the construction parameters for a RealTrainer.
type RealTrainerConfig struct {
	// Spec describes the synthetic dataset to generate per episode.
	Spec dataset.SynthSpec
	// Partitioner splits training data across nodes (nil means IID).
	Partitioner dataset.Partitioner
	// Factory builds the model architecture every participant trains.
	Factory fl.ModelFactory
	// Train holds the local-SGD hyperparameters.
	Train fl.Config
	// NumNodes is the fleet size.
	NumNodes int
	// TestFraction is the held-out share for accuracy measurement.
	TestFraction float64
	// Seed derives the per-episode RNG streams.
	Seed int64
}

// NewRealTrainer validates the configuration and prepares the first
// episode.
func NewRealTrainer(cfg RealTrainerConfig) (*RealTrainer, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("accuracy: real trainer needs a model factory")
	}
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("accuracy: real trainer nodes %d, want > 0", cfg.NumNodes)
	}
	if cfg.TestFraction <= 0 || cfg.TestFraction >= 1 {
		return nil, fmt.Errorf("accuracy: test fraction %v outside (0,1)", cfg.TestFraction)
	}
	if err := cfg.Train.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	parts := cfg.Partitioner
	if parts == nil {
		parts = dataset.IID{}
	}
	t := &RealTrainer{
		spec:     cfg.Spec,
		parts:    parts,
		factory:  cfg.Factory,
		cfg:      cfg.Train,
		numNodes: cfg.NumNodes,
		testFrac: cfg.TestFraction,
		seedBase: cfg.Seed,
	}
	if _, err := t.Reset(); err != nil {
		return nil, err
	}
	return t, nil
}

var _ Model = (*RealTrainer)(nil)

// Reset implements Model: it regenerates the dataset, repartitions it, and
// reinitializes the global model for a fresh episode.
func (t *RealTrainer) Reset() (float64, error) {
	t.episode++
	rng := rand.New(rand.NewSource(t.seedBase + int64(t.episode)*7919))
	full, err := dataset.Generate(rng, t.spec)
	if err != nil {
		return 0, fmt.Errorf("accuracy: real trainer dataset: %w", err)
	}
	train, test, err := full.Split(rng, t.testFrac)
	if err != nil {
		return 0, fmt.Errorf("accuracy: real trainer split: %w", err)
	}
	partIdx, err := t.parts.Partition(rng, train, t.numNodes)
	if err != nil {
		return 0, fmt.Errorf("accuracy: real trainer partition: %w", err)
	}
	t.clients = make([]*fl.Client, t.numNodes)
	for i, idx := range partIdx {
		local, err := train.Subset(idx)
		if err != nil {
			return 0, fmt.Errorf("accuracy: real trainer node %d subset: %w", i, err)
		}
		client, err := fl.NewClient(i, local, t.factory, t.cfg, rand.New(rand.NewSource(t.seedBase+int64(t.episode)*104729+int64(i))))
		if err != nil {
			return 0, err
		}
		t.clients[i] = client
	}
	t.server, err = fl.NewServer(test, t.factory, rng)
	if err != nil {
		return 0, err
	}
	t.acc, err = t.server.Evaluate()
	if err != nil {
		return 0, err
	}
	return t.acc, nil
}

// Advance implements Model: the listed participants each run σ local
// epochs from the current global model, the server aggregates with FedAvg,
// and the new global accuracy is measured on the test set.
func (t *RealTrainer) Advance(participants []int) (float64, error) {
	if len(participants) == 0 {
		return t.acc, nil
	}
	t.globalBuf = t.server.GlobalInto(t.globalBuf)
	global := t.globalBuf
	updates := t.updates[:0]
	for _, id := range participants {
		if id < 0 || id >= len(t.clients) {
			return 0, fmt.Errorf("accuracy: participant %d out of range [0,%d)", id, len(t.clients))
		}
		params, _, err := t.clients[id].TrainRound(global)
		if err != nil {
			return 0, err
		}
		updates = append(updates, fl.Update{Params: params, Samples: t.clients[id].NumSamples()})
	}
	t.updates = updates
	if err := t.server.Aggregate(updates); err != nil {
		return 0, err
	}
	acc, err := t.server.Evaluate()
	if err != nil {
		return 0, err
	}
	t.acc = acc
	return acc, nil
}

// Accuracy implements Model.
func (t *RealTrainer) Accuracy() float64 { return t.acc }
