package session

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBusy is returned by Pool.Admit when both the worker slots and the
// backlog are full — the signal the HTTP layer translates into
// 429 + Retry-After.
var ErrBusy = errors.New("session: pool at capacity")

// Pool is the server's admission and backpressure control, the same
// bounded-worker discipline experiment.Plan applies inside one run lifted
// to whole sessions: at most workers sessions execute at once, at most
// queue more wait in line, and everything beyond that is refused at
// admission time rather than silently piling up.
//
// A session reserves its admission slot at New (Admit), trades it for a
// worker slot when its run goroutine reaches the front (acquire), and
// frees both on terminal transition. A queued session that is stopped
// abandons the line without ever holding a worker.
type Pool struct {
	mu       sync.Mutex
	admitted int
	capacity int // workers + queue
	slots    chan struct{}
	retry    time.Duration
}

// NewPool builds a pool of workers executing slots with queue waiting
// positions behind them. retryAfter is the back-off hint served with
// ErrBusy refusals (0 = a 1s default).
func NewPool(workers, queue int, retryAfter time.Duration) (*Pool, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("session: pool workers %d, want > 0", workers)
	}
	if queue < 0 {
		return nil, fmt.Errorf("session: pool queue %d, want >= 0", queue)
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &Pool{
		capacity: workers + queue,
		slots:    make(chan struct{}, workers),
		retry:    retryAfter,
	}, nil
}

// Admit reserves an admission slot, ErrBusy when none is free. Every
// successful Admit must eventually be paired with one release (the
// session's terminal transition).
func (p *Pool) Admit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.admitted >= p.capacity {
		return ErrBusy
	}
	p.admitted++
	return nil
}

// RetryAfter is the wait hint to serve alongside an ErrBusy refusal.
func (p *Pool) RetryAfter() time.Duration { return p.retry }

// forfeit returns an admission slot without ever having held a worker —
// a session stopped before or while queued.
func (p *Pool) forfeit() {
	p.mu.Lock()
	p.admitted--
	p.mu.Unlock()
}

// acquire blocks until a worker slot frees up or stop closes; a stopped
// wait returns ErrStopped without holding a worker slot.
func (p *Pool) acquire(stop <-chan struct{}) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-stop:
		return ErrStopped
	}
}

// releaseWorker frees a held worker slot and the admission slot.
func (p *Pool) releaseWorker() {
	<-p.slots
	p.forfeit()
}
