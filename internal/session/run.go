package session

import (
	"errors"

	"chiron/internal/mechanism"
	"chiron/internal/scenario"
	"chiron/internal/supervise"
)

// run executes the session's mode on its own goroutine: acquire a worker
// slot (queued sessions wait here), drive the episodes through the gate,
// and map the outcome onto a terminal state. spec is the latched spec —
// the config's spec plus any registry-derived churn script.
func (s *Session) run(spec *scenario.Spec) {
	if p := s.cfg.Pool; p != nil {
		if err := p.acquire(s.stopCh); err != nil {
			p.forfeit()
			s.finish(err)
			return
		}
		defer p.releaseWorker()
	}
	s.mu.Lock()
	// A pause or stop issued while queued stays in force; only an
	// untouched queued session proceeds straight to running.
	if s.state == StateQueued {
		s.state = StateRunning
	}
	s.mu.Unlock()

	var err error
	switch {
	case s.cfg.Train != nil:
		err = s.runTrain()
	case s.cfg.Record != nil:
		err = s.runRecord(spec)
	default:
		err = s.runGrid(spec)
	}
	s.finish(err)
}

// finish performs the terminal transition. The experiment scheduler wraps
// job errors, so the stop sentinel is matched with errors.Is.
func (s *Session) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.state = StateDone
	case errors.Is(err, ErrStopped):
		s.state = StateStopped
	default:
		s.state = StateFailed
		s.err = err
	}
	s.finishLocked()
}

// runGrid runs the spec's full mechanism × budget grid through the same
// scenario.RunGated path the CLI's scenario.Run uses, with the session
// gate and episode observer threaded into every cell.
func (s *Session) runGrid(spec *scenario.Spec) error {
	res, err := scenario.RunGated(spec, s.cfg.Workers, scenario.CellHooks{
		Gate:    s.gate,
		Episode: s.observe,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.result = res
	s.mu.Unlock()
	return nil
}

// runRecord records one cell to the configured trace writer, pausing and
// stopping at episode boundaries like the grid path.
func (s *Session) runRecord(spec *scenario.Spec) error {
	run, err := scenario.StartRecord(spec, s.cfg.Record.Mechanism, s.cfg.Record.Budget, s.cfg.Record.Writer)
	if err != nil {
		return err
	}
	cell := scenario.Cell{Mechanism: run.Mechanism().Name(), Budget: s.cfg.Record.Budget}
	for run.TrainRemaining() > 0 {
		if err := s.gate(); err != nil {
			return err
		}
		res, err := run.TrainEpisode()
		if err != nil {
			return err
		}
		s.observe(cell, res, false)
	}
	for ep := 1; ep <= run.Episodes(); ep++ {
		if err := s.gate(); err != nil {
			return err
		}
		res, err := run.RecordEpisode(ep)
		if err != nil {
			return err
		}
		s.observe(cell, res, true)
	}
	rec, err := run.Finish()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.recorded = rec
	s.mu.Unlock()
	return nil
}

// runTrain drives a supervise.Runner with the session gate installed: a
// pause parks the runner between checkpoint chunks, and a stop makes the
// runner flush a final checkpoint before the gate sentinel surfaces.
func (s *Session) runTrain() error {
	cfg := s.cfg.Train.Supervise
	cfg.Gate = s.gate
	runner, err := supervise.New(s.cfg.Train.Factory, cfg)
	if err != nil {
		return err
	}
	_, report, err := runner.Run(s.cfg.Train.Episodes, func(res mechanism.EpisodeResult) {
		s.observe(scenario.Cell{}, res, false)
	})
	s.mu.Lock()
	s.report = report
	s.mu.Unlock()
	return err
}
