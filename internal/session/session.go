// Package session is the serving layer's unit of work: one Session owns a
// compiled scenario (or a supervised training target), drives it through
// the same code paths the CLI uses, and exposes the lifecycle a long-lived
// server needs — Start, Pause, Resume, Snapshot, Stop — with exact-resume
// checkpointing inherited from internal/supervise.
//
// The package enforces a strict split between the two clocks a server
// mixes:
//
//   - The simulation clock is episode and round counters plus seeded RNG
//     streams. Everything that touches a result flows from it, which is
//     why a server-hosted session's run digest is bit-identical to a CLI
//     run of the same spec and seed — the contract the propcheck property
//     pins at 200 trials.
//   - Wall-clock concerns — heartbeat deadlines, restart backoff, queue
//     waits — may delay when simulation happens but never what it
//     computes. Live node membership (Registry) is wall-clock only while
//     a session holds in StateNew; Start latches it into a deterministic
//     faults.ChurnScript applied uniformly to every episode, exactly as
//     if the same script had been passed to `chiron run -churn`.
//
// Pause and Stop act at episode boundaries: every execution path consults
// a gate before each episode, so a paused session holds between episodes
// with all deterministic state intact, and a stopped supervised session
// flushes a final checkpoint before exiting.
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"chiron/internal/faults"
	"chiron/internal/mechanism"
	"chiron/internal/scenario"
	"chiron/internal/supervise"
	"chiron/internal/trace"
)

// State is a session's lifecycle position.
type State int

// The session lifecycle. Transitions: New → Queued → Running ⇄ Paused →
// one of Done / Stopped / Failed. Stop is legal from every non-terminal
// state; terminal states are absorbing.
const (
	// StateNew is the hold phase: the session is admitted but not started,
	// and its live-node registry (if any) is still accepting registrations.
	StateNew State = iota
	// StateQueued means Start was called but the pool has no free worker
	// slot yet — wall-clock waiting that cannot affect results.
	StateQueued
	// StateRunning means episodes are executing.
	StateRunning
	// StatePaused means the session holds at the next episode boundary
	// until Resume or Stop.
	StatePaused
	// StateDone is terminal success: the result and digest are final.
	StateDone
	// StateStopped is terminal cancellation via Stop.
	StateStopped
	// StateFailed is terminal error; Err() holds the cause.
	StateFailed
)

// String implements fmt.Stringer with the wire names the HTTP API serves.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is absorbing.
func (s State) Terminal() bool {
	return s == StateDone || s == StateStopped || s == StateFailed
}

// ErrStopped is the gate sentinel a Stop injects; run paths surface it
// (possibly wrapped by the experiment scheduler) and the session maps it
// back to StateStopped rather than StateFailed.
var ErrStopped = errors.New("session: stopped")

// Clock abstracts wall-clock time so heartbeat-deadline tests are
// deterministic. It must never influence simulation results.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RecordConfig selects record mode: instead of running the spec's full
// grid, the session records one (mechanism, budget) cell's environment
// draws to a replayable trace, exactly as `chiron run -scenario -record`.
type RecordConfig struct {
	// Writer receives the trace. The caller owns Close.
	Writer *trace.Writer
	// Mechanism picks the recorded mechanism ("" = the spec's first).
	Mechanism string
	// Budget picks the recorded cell (0 = the spec's first).
	Budget float64
}

// TrainConfig selects supervised-training mode: the session drives a
// supervise.Runner over a raw mechanism target with periodic atomic
// checkpoints, crash restarts, and a stop that flushes a final checkpoint.
type TrainConfig struct {
	// Factory builds a fresh target per recovery attempt.
	Factory supervise.Factory
	// Episodes is the training length.
	Episodes int
	// Supervise parameterizes checkpointing and restarts. Its Gate field
	// must be unset — the session installs its own pause/stop gate.
	Supervise supervise.Config
}

// Config parameterizes a Session. Exactly one mode applies: Train when
// TrainConfig is set; otherwise Spec is required and Record (when set)
// narrows the run to one recorded cell; otherwise the full grid runs.
type Config struct {
	// Spec is the scenario to run (grid and record modes). The session
	// deep-copies nothing: callers must not mutate it after New.
	Spec *scenario.Spec
	// Workers bounds grid concurrency inside the session (1 = serial,
	// 0 = GOMAXPROCS). Results are identical at any setting.
	Workers int
	// Record, when non-nil, selects record mode.
	Record *RecordConfig
	// Train, when non-nil, selects supervised-training mode.
	Train *TrainConfig
	// OnEpisode, when non-nil, observes every episode event synchronously
	// from the worker that produced it (the CLI's progress printing hook).
	OnEpisode func(EpisodeEvent)
	// Clock supplies wall-clock time (nil = real time).
	Clock Clock
	// Pool, when non-nil, provides admission control: New reserves a
	// backlog slot (ErrBusy when full) and Start waits for a worker slot.
	Pool *Pool
	// HeartbeatTimeout arms a live-node Registry: nodes that register must
	// heartbeat at least this often during the hold phase or they are
	// latched as departing at their last declared round. Zero disables the
	// registry.
	HeartbeatTimeout time.Duration
}

// EpisodeEvent is one observed episode: a training episode or a final
// evaluation, tagged with the grid cell it came from and a session-wide
// sequence number for cursor-style streaming.
type EpisodeEvent struct {
	// Seq numbers events from 1 in observation order.
	Seq int `json:"seq"`
	// Mechanism and Budget identify the grid cell ("" / 0 in train mode).
	Mechanism string  `json:"mechanism,omitempty"`
	Budget    float64 `json:"budget,omitempty"`
	// Eval marks a cell's final averaged evaluation rather than a single
	// training episode.
	Eval bool `json:"eval,omitempty"`
	// Result is the episode summary.
	Result mechanism.EpisodeResult `json:"result"`
}

// Status is a point-in-time session snapshot.
type Status struct {
	// State is the lifecycle position.
	State State `json:"-"`
	// StateName is State's wire form.
	StateName string `json:"state"`
	// Error carries the failure cause in StateFailed.
	Error string `json:"error,omitempty"`
	// Episodes counts observed episode events so far.
	Episodes int `json:"episodes"`
	// Cells counts the spec's grid cells (0 in train mode).
	Cells int `json:"cells,omitempty"`
	// Digest is the final run digest, set only in StateDone.
	Digest string `json:"digest,omitempty"`
	// Churn is the latched churn script in its CLI text form ("" = none),
	// set once Start has latched the registry.
	Churn string `json:"churn,omitempty"`
	// Nodes counts currently-live registered nodes during the hold phase.
	Nodes int `json:"nodes,omitempty"`
	// Report summarizes a supervised run (train mode, terminal states).
	Report *supervise.Report `json:"report,omitempty"`
}

// Session is one hosted run. All methods are safe for concurrent use.
type Session struct {
	cfg      Config
	clock    Clock
	registry *Registry

	mu       sync.Mutex
	cond     *sync.Cond
	state    State
	err      error
	stopCh   chan struct{} // closed by Stop; unblocks queue waits
	done     chan struct{} // closed on terminal transition
	events   []EpisodeEvent
	churn    string // latched churn script (text form), set by Start
	result   *scenario.Result
	recorded *scenario.EpisodeSet
	report   *supervise.Report
	cells    int
}

// New validates cfg, reserves a pool slot when admission control is on,
// and returns a Session in StateNew.
func New(cfg Config) (*Session, error) {
	modes := 0
	if cfg.Train != nil {
		modes++
		if cfg.Train.Factory == nil {
			return nil, fmt.Errorf("session: train mode needs a target factory")
		}
		if cfg.Train.Episodes <= 0 {
			return nil, fmt.Errorf("session: train %d episodes, want > 0", cfg.Train.Episodes)
		}
		if cfg.Train.Supervise.Gate != nil {
			return nil, fmt.Errorf("session: train mode owns the supervise gate")
		}
		if cfg.Spec != nil || cfg.Record != nil {
			return nil, fmt.Errorf("session: train mode excludes a scenario spec")
		}
	}
	if cfg.Spec != nil {
		modes++
		if err := cfg.Spec.Validate(); err != nil {
			return nil, err
		}
	} else if cfg.Record != nil {
		return nil, fmt.Errorf("session: record mode needs a scenario spec")
	}
	if cfg.Record != nil && cfg.Record.Writer == nil {
		return nil, fmt.Errorf("session: record mode needs a trace writer")
	}
	if modes != 1 {
		return nil, fmt.Errorf("session: exactly one of Spec or Train is required")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("session: workers %d, want >= 0", cfg.Workers)
	}
	if cfg.HeartbeatTimeout < 0 {
		return nil, fmt.Errorf("session: heartbeat timeout %v, want >= 0", cfg.HeartbeatTimeout)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	s := &Session{
		cfg:    cfg,
		clock:  clock,
		state:  StateNew,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.HeartbeatTimeout > 0 {
		if cfg.Spec == nil {
			return nil, fmt.Errorf("session: a live-node registry needs a scenario spec")
		}
		if cfg.Spec.Churn != nil {
			return nil, fmt.Errorf("session: scenario %s already declares churn; live registration would contradict it", cfg.Spec.Name)
		}
		s.registry = newRegistry(clock, cfg.HeartbeatTimeout, cfg.Spec.NumNodes(), cfg.Spec.EpisodeRounds())
	}
	if cfg.Spec != nil {
		cells, err := cfg.Spec.Cells()
		if err != nil {
			return nil, err
		}
		s.cells = len(cells)
		if cfg.Record != nil {
			s.cells = 1
		}
	}
	if cfg.Pool != nil {
		if err := cfg.Pool.Admit(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Registry returns the live-node registry, nil unless HeartbeatTimeout
// armed one. It accepts mutations only while the session is in StateNew.
func (s *Session) Registry() *Registry { return s.registry }

// Start latches the registry (live membership becomes a deterministic
// churn script merged into the spec), transitions New → Queued, and runs
// the session on its own goroutine. Calling Start twice, or after Stop,
// is an error.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateNew {
		return fmt.Errorf("session: start in state %s", s.state)
	}
	spec := s.cfg.Spec
	if s.registry != nil {
		script, err := s.registry.Latch()
		if err != nil {
			return err
		}
		if text := faults.FormatChurnScript(script); text != "" {
			// Merge as the CLI text form: the running spec is now literally
			// the original plus `-churn "<text>"`, the session's CLI twin.
			merged := *spec
			merged.Churn = &scenario.ChurnSpec{Script: text}
			if err := merged.Validate(); err != nil {
				return err
			}
			spec = &merged
			s.churn = text
		}
	}
	s.state = StateQueued
	go s.run(spec)
	return nil
}

// Pause requests a hold at the next episode boundary. Legal while queued,
// running, or already paused; a no-op in the latter case.
func (s *Session) Pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateQueued, StateRunning, StatePaused:
		s.state = StatePaused
		return nil
	default:
		return fmt.Errorf("session: pause in state %s", s.state)
	}
}

// Resume lifts a pause. A no-op when already running.
func (s *Session) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StatePaused:
		s.state = StateRunning
		s.cond.Broadcast()
		return nil
	case StateQueued, StateRunning:
		return nil
	default:
		return fmt.Errorf("session: resume in state %s", s.state)
	}
}

// Stop cancels the session: a never-started session terminates
// immediately; a queued or running one stops at the next episode boundary
// (flushing a final checkpoint in train mode). Stop is idempotent — a
// second Stop, or a Stop after Done, is a no-op. Stop does not wait; use
// Wait.
func (s *Session) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.stopCh:
		return // already stopping
	default:
	}
	switch s.state {
	case StateNew:
		s.state = StateStopped
		close(s.stopCh)
		if s.cfg.Pool != nil {
			// The run goroutine never starts, so the admission slot is
			// returned here.
			s.cfg.Pool.forfeit()
		}
		s.finishLocked()
	case StateQueued, StateRunning, StatePaused:
		// The gate observes the closed channel; a paused session is also
		// woken so it can exit through the gate.
		close(s.stopCh)
		s.cond.Broadcast()
	}
}

// Wait blocks until the session reaches a terminal state and returns it.
func (s *Session) Wait() State {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Done returns a channel closed on terminal transition.
func (s *Session) Done() <-chan struct{} { return s.done }

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the failure cause in StateFailed, else nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Snapshot returns a point-in-time status.
func (s *Session) Snapshot() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		State:     s.state,
		StateName: s.state.String(),
		Episodes:  len(s.events),
		Cells:     s.cells,
		Churn:     s.churn,
		Report:    s.report,
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	if s.state == StateDone {
		st.Digest = s.digestLocked()
	}
	if s.registry != nil && s.state == StateNew {
		st.Nodes = s.registry.Live()
	}
	return st
}

// digestLocked returns the terminal run digest for whichever mode ran.
func (s *Session) digestLocked() string {
	switch {
	case s.result != nil:
		return s.result.Digest()
	case s.recorded != nil:
		return s.recorded.Digest()
	default:
		return ""
	}
}

// Result returns the grid result once the session is Done.
func (s *Session) Result() (*scenario.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.result == nil {
		return nil, fmt.Errorf("session: no result in state %s", s.state)
	}
	return s.result, nil
}

// Recorded returns the recorded episode set once a record-mode session is
// Done.
func (s *Session) Recorded() (*scenario.EpisodeSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recorded == nil {
		return nil, fmt.Errorf("session: no recording in state %s", s.state)
	}
	return s.recorded, nil
}

// Report returns the supervise report once a train-mode session reaches a
// terminal state (including a stop, whose report covers the flushed
// partial run).
func (s *Session) Report() (*supervise.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.report == nil {
		return nil, fmt.Errorf("session: no report in state %s", s.state)
	}
	return s.report, nil
}

// Episodes returns the episode events with Seq > since, the cursor form
// the HTTP metrics endpoint streams.
func (s *Session) Episodes(since int) []EpisodeEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < 0 {
		since = 0
	}
	if since >= len(s.events) {
		return nil
	}
	out := make([]EpisodeEvent, len(s.events)-since)
	copy(out, s.events[since:])
	return out
}

// observe appends one episode event and forwards it to the config hook.
func (s *Session) observe(cell scenario.Cell, res mechanism.EpisodeResult, eval bool) {
	s.mu.Lock()
	ev := EpisodeEvent{
		Seq:       len(s.events) + 1,
		Mechanism: cell.Mechanism,
		Budget:    cell.Budget,
		Eval:      eval,
		Result:    res,
	}
	s.events = append(s.events, ev)
	s.mu.Unlock()
	if s.cfg.OnEpisode != nil {
		s.cfg.OnEpisode(ev)
	}
}

// gate is the episode-boundary control point every run path consults: it
// returns ErrStopped once Stop has been called and blocks while paused.
func (s *Session) gate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		select {
		case <-s.stopCh:
			return ErrStopped
		default:
		}
		if s.state != StatePaused {
			return nil
		}
		s.cond.Wait()
	}
}

// finishLocked closes done exactly once. Callers hold s.mu.
func (s *Session) finishLocked() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.cond.Broadcast()
}
