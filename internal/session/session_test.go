package session

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"chiron/internal/faults"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
	"chiron/internal/scenario"
	"chiron/internal/supervise"
	"chiron/internal/trace"
)

// quickSpec is a small static-mechanism scenario that runs in milliseconds
// but still exercises the full grid path.
func quickSpec(name string, seed int64) *scenario.Spec {
	return &scenario.Spec{
		Name:    name,
		Dataset: "mnist",
		Seed:    seed,
		Classes: []scenario.DeviceClass{
			{Profile: scenario.ProfileNames()[0], Count: 3},
		},
		Budgets:      []float64{60, 90},
		Mechanisms:   []string{"uniform", "equal-time"},
		EvalEpisodes: 2,
		MaxRounds:    30,
	}
}

// stepTarget is a minimal supervise.Target whose whole training state is
// its episode counter; tests park it deterministically by pausing the
// session from the episode callback, which guarantees the worker holds at
// the next gate. crashAt scripts one training failure.
type stepTarget struct {
	episode int
	crashAt int // crash when training this episode (0 = never)
	crashed *bool
}

func (f *stepTarget) Episode() int { return f.episode }

func (f *stepTarget) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	var out []mechanism.EpisodeResult
	for i := 0; i < episodes; i++ {
		next := f.episode + 1
		if f.crashAt == next && f.crashed != nil && !*f.crashed {
			*f.crashed = true
			return out, fmt.Errorf("steptarget: scripted crash at episode %d", next)
		}
		f.episode = next
		res := mechanism.EpisodeResult{Episode: next, Rounds: next}
		if callback != nil {
			callback(res)
		}
		out = append(out, res)
	}
	return out, nil
}

func (f *stepTarget) SaveCheckpoint(path string) error {
	return rl.SaveCheckpoint(path, &rl.Checkpoint{Mechanism: "step", Nodes: 1, Episode: f.episode})
}

func (f *stepTarget) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if ck.Mechanism != "step" {
		return fmt.Errorf("%w: checkpoint for %q, want \"step\"", rl.ErrShapeMismatch, ck.Mechanism)
	}
	f.episode = ck.Episode
	return nil
}

func stepFactory(crashAt int, crashed *bool) supervise.Factory {
	return func() (supervise.Target, error) {
		return &stepTarget{crashAt: crashAt, crashed: crashed}, nil
	}
}

// pauseAt returns an OnEpisode hook that pauses the session at the given
// event sequence numbers — the deterministic way to park a session at an
// episode boundary (the pause lands before the worker reaches the gate).
func pauseAt(s **Session, seqs ...int) func(EpisodeEvent) {
	return func(ev EpisodeEvent) {
		for _, seq := range seqs {
			if ev.Seq == seq {
				(*s).Pause()
			}
		}
	}
}

// waitState polls until the session reaches want or the deadline passes.
func waitState(t *testing.T, s *Session, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("session never reached %s (stuck at %s)", want, s.State())
}

func TestNewValidation(t *testing.T) {
	spec := quickSpec("validate", 3)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no mode", Config{}},
		{"two modes", Config{Spec: spec, Train: &TrainConfig{Factory: stepFactory(0, nil), Episodes: 1}}},
		{"record without spec", Config{Record: &RecordConfig{Writer: trace.NewWriter(&bytes.Buffer{})}}},
		{"record without writer", Config{Spec: spec, Record: &RecordConfig{}}},
		{"train without factory", Config{Train: &TrainConfig{Episodes: 1}}},
		{"train without episodes", Config{Train: &TrainConfig{Factory: stepFactory(0, nil)}}},
		{"negative workers", Config{Spec: spec, Workers: -1}},
		{"negative heartbeat", Config{Spec: spec, HeartbeatTimeout: -time.Second}},
		{"registry without spec", Config{Train: &TrainConfig{Factory: stepFactory(0, nil), Episodes: 1}, HeartbeatTimeout: time.Second}},
		{"foreign supervise gate", Config{Train: &TrainConfig{
			Factory: stepFactory(0, nil), Episodes: 1,
			Supervise: supervise.Config{Dir: t.TempDir(), Gate: func() error { return nil }},
		}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestGridMatchesCLIDigest(t *testing.T) {
	spec := quickSpec("grid-twin", 11)
	want, err := scenario.Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Spec: quickSpec("grid-twin", 11), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateDone {
		t.Fatalf("final state %s (err %v), want done", got, s.Err())
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest() != want.Digest() {
		t.Fatalf("session digest %s != CLI digest %s", res.Digest(), want.Digest())
	}
	st := s.Snapshot()
	if st.Digest != want.Digest() || st.State != StateDone {
		t.Fatalf("snapshot %+v lacks terminal digest", st)
	}
	// 4 cells × (2 eval-averaged events? no: per-cell one eval event) —
	// static mechanisms emit exactly one eval event per cell.
	events := s.Episodes(0)
	if len(events) != 4 {
		t.Fatalf("observed %d events, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i+1 || !ev.Eval {
			t.Fatalf("event %d = %+v, want Seq=%d Eval=true", i, ev, i+1)
		}
	}
	if tail := s.Episodes(3); len(tail) != 1 || tail[0].Seq != 4 {
		t.Fatalf("cursor Episodes(3) = %+v, want just seq 4", tail)
	}
	if s.Episodes(4) != nil {
		t.Fatal("cursor past the end should return nil")
	}
}

func TestPauseResumeKeepsDigest(t *testing.T) {
	spec := quickSpec("pause-twin", 23)
	want, err := scenario.Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	var s *Session
	s, err = New(Config{
		Spec:    quickSpec("pause-twin", 23),
		Workers: 1,
		OnEpisode: func(ev EpisodeEvent) {
			if ev.Seq == 2 {
				if err := s.Pause(); err != nil {
					t.Errorf("mid-run pause: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, StatePaused)
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateDone {
		t.Fatalf("final state %s (err %v), want done", got, s.Err())
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest() != want.Digest() {
		t.Fatalf("paused/resumed digest %s != uninterrupted %s", res.Digest(), want.Digest())
	}
}

func TestRecordMatchesCLIRecord(t *testing.T) {
	var cliBuf bytes.Buffer
	want, err := scenario.Record(quickSpec("rec-twin", 31), "", 0, trace.NewWriter(&cliBuf))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s, err := New(Config{
		Spec:   quickSpec("rec-twin", 31),
		Record: &RecordConfig{Writer: trace.NewWriter(&buf)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateDone {
		t.Fatalf("final state %s (err %v), want done", got, s.Err())
	}
	rec, err := s.Recorded()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Digest() != want.Digest() {
		t.Fatalf("session recording digest %s != CLI %s", rec.Digest(), want.Digest())
	}
	if !bytes.Equal(buf.Bytes(), cliBuf.Bytes()) {
		t.Fatal("session trace bytes differ from the CLI recording")
	}
}

func TestLifecycleTable(t *testing.T) {
	cases := []struct {
		name     string
		pauseSeq []int
		drive    func(t *testing.T, s *Session)
		want     State
	}{
		{"start-pause-resume-stop", []int{1, 2}, func(t *testing.T, s *Session) {
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			waitState(t, s, StatePaused) // parked after episode 1
			if err := s.Resume(); err != nil {
				t.Fatal(err)
			}
			waitState(t, s, StatePaused) // parked after episode 2
			s.Stop()
		}, StateStopped},
		{"pause-then-stop", []int{1}, func(t *testing.T, s *Session) {
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			waitState(t, s, StatePaused)
			s.Stop()
		}, StateStopped},
		{"stop-before-start", nil, func(t *testing.T, s *Session) {
			s.Stop()
			if err := s.Start(); err == nil {
				t.Fatal("Start after Stop succeeded")
			}
		}, StateStopped},
		{"double-stop", []int{1}, func(t *testing.T, s *Session) {
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			waitState(t, s, StatePaused)
			s.Stop()
			s.Stop()
			s.Stop()
		}, StateStopped},
		{"run-to-done", nil, func(t *testing.T, s *Session) {
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
		}, StateDone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s *Session
			var err error
			s, err = New(Config{
				OnEpisode: pauseAt(&s, tc.pauseSeq...),
				Train: &TrainConfig{
					Factory:   stepFactory(0, nil),
					Episodes:  3,
					Supervise: supervise.Config{Dir: t.TempDir(), Every: 1},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			tc.drive(t, s)
			if got := s.Wait(); got != tc.want {
				t.Fatalf("final state %s (err %v), want %s", got, s.Err(), tc.want)
			}
			// Terminal states absorb every verb.
			if err := s.Start(); err == nil {
				t.Error("Start in terminal state succeeded")
			}
			if err := s.Pause(); err == nil {
				t.Error("Pause in terminal state succeeded")
			}
			if err := s.Resume(); err == nil {
				t.Error("Resume in terminal state succeeded")
			}
			s.Stop() // still a no-op, never a panic
		})
	}
}

func TestTrainStopFlushesAndResumes(t *testing.T) {
	dir := t.TempDir()
	var s *Session
	var err error
	s, err = New(Config{
		OnEpisode: pauseAt(&s, 2),
		Train: &TrainConfig{
			Factory:   stepFactory(0, nil),
			Episodes:  5,
			Supervise: supervise.Config{Dir: dir, Every: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// The session parks at the boundary after episode 2; stop there.
	waitState(t, s, StatePaused)
	s.Stop()
	if got := s.Wait(); got != StateStopped {
		t.Fatalf("final state %s (err %v), want stopped", got, s.Err())
	}
	report, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Episodes) != 2 {
		t.Fatalf("stopped report has %d episodes, want 2", len(report.Episodes))
	}

	// A fresh session over the same directory resumes from the flushed
	// checkpoint and finishes the remaining episodes.
	s2, err := New(Config{Train: &TrainConfig{
		Factory:   stepFactory(0, nil),
		Episodes:  5,
		Supervise: supervise.Config{Dir: dir, Every: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Wait(); got != StateDone {
		t.Fatalf("resumed session state %s (err %v), want done", got, s2.Err())
	}
	report2, err := s2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if report2.ResumedFrom != 2 {
		t.Fatalf("resumed from %d, want 2", report2.ResumedFrom)
	}
}

func TestTrainResumeAfterCrash(t *testing.T) {
	crashed := false
	s, err := New(Config{Train: &TrainConfig{
		Factory:  stepFactory(3, &crashed),
		Episodes: 5,
		Supervise: supervise.Config{
			Dir: t.TempDir(), Every: 1,
			Retry: faults.Backoff{MaxRetries: 2},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateDone {
		t.Fatalf("final state %s (err %v), want done", got, s.Err())
	}
	report, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts != 1 {
		t.Fatalf("restarts %d, want 1", report.Restarts)
	}
	if n := len(report.Episodes); n != 5 {
		t.Fatalf("final lineage has %d episodes, want 5", n)
	}
}

func TestTrainFailureState(t *testing.T) {
	crashed := false
	s, err := New(Config{Train: &TrainConfig{
		Factory:   stepFactory(2, &crashed),
		Episodes:  5,
		Supervise: supervise.Config{Dir: t.TempDir(), Every: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-retry policy: the scripted crash is terminal.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateFailed {
		t.Fatalf("final state %s, want failed", got)
	}
	if s.Err() == nil {
		t.Fatal("failed session has no error")
	}
	if st := s.Snapshot(); st.Error == "" {
		t.Fatal("snapshot of failed session lacks the error")
	}
}

func TestPoolAdmissionAndBackpressure(t *testing.T) {
	pool, err := NewPool(1, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pool.RetryAfter() != 2*time.Second {
		t.Fatalf("RetryAfter %v", pool.RetryAfter())
	}
	newTrain := func(hook func(EpisodeEvent)) (*Session, error) {
		return New(Config{Pool: pool, OnEpisode: hook, Train: &TrainConfig{
			Factory:   stepFactory(0, nil),
			Episodes:  2,
			Supervise: supervise.Config{Dir: t.TempDir(), Every: 1},
		}})
	}
	// s1 pauses after its first episode, holding the pool's only worker
	// slot while parked — the documented simplification.
	var s1 *Session
	s1, err = newTrain(pauseAt(&s1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := newTrain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newTrain(nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("third admission error %v, want ErrBusy", err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, StatePaused)
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	// s1 holds the only worker (parked at its gate); s2 stays queued.
	time.Sleep(10 * time.Millisecond)
	if got := s2.State(); got != StateQueued {
		t.Fatalf("second session state %s, want queued", got)
	}
	// Stopping the queued session abandons the line.
	s2.Stop()
	if got := s2.Wait(); got != StateStopped {
		t.Fatalf("queued stop: state %s", got)
	}
	// Its admission slot is back: a new session is admitted.
	s3, err := newTrain(nil)
	if err != nil {
		t.Fatalf("admission after queued stop: %v", err)
	}
	if err := s3.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Resume(); err != nil { // let s1 finish; its slot passes to s3
		t.Fatal(err)
	}
	if got := s1.Wait(); got != StateDone {
		t.Fatalf("first session state %s (err %v)", got, s1.Err())
	}
	if got := s3.Wait(); got != StateDone {
		t.Fatalf("third session state %s (err %v)", got, s3.Err())
	}
	// Everything released: a full admit round is possible again.
	for i := 0; i < 2; i++ {
		if err := pool.Admit(); err != nil {
			t.Fatalf("admit %d after drain: %v", i, err)
		}
	}
	if err := pool.Admit(); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-admit error %v, want ErrBusy", err)
	}
}
