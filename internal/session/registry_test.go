package session

import (
	"testing"
	"time"

	"chiron/internal/faults"
	"chiron/internal/scenario"
)

func registrySpec(seed int64) *scenario.Spec {
	s := quickSpec("registry", seed)
	s.Classes = []scenario.DeviceClass{{Profile: scenario.ProfileNames()[0], Count: 5}}
	return s
}

func TestRegistryLatchScript(t *testing.T) {
	clock := NewManualClock(time.Unix(1000, 0))
	s, err := New(Config{
		Spec:             registrySpec(5),
		Clock:            clock,
		HeartbeatTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	if reg == nil {
		t.Fatal("heartbeat timeout did not arm a registry")
	}
	// Node 0: present from the start, healthy heartbeats → no events.
	// Node 1: arrives at round 4, healthy → "+1@4".
	// Node 2: present from the start, declares progress through round 7,
	//         then its heartbeat lapses → "-2@7".
	// Node 3: arrives at round 6, deregisters explicitly at round 9 →
	//         "+3@6,-3@9".
	// Node 4: never registers → full member, no events.
	for node, from := range map[int]int{0: 1, 1: 4, 2: 1, 3: 6} {
		if err := reg.Register(node, from); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Heartbeat(2, 7); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	for _, node := range []int{0, 1} {
		if err := reg.Heartbeat(node, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Deregister(3, 9); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second) // node 2's deadline passes
	if err := reg.Heartbeat(2, 9); err == nil {
		t.Fatal("lapsed node heartbeat accepted")
	}
	if got := reg.Live(); got != 2 {
		t.Fatalf("live nodes %d, want 2 (nodes 0 and 1)", got)
	}

	script, err := reg.Latch()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := faults.FormatChurnScript(script), "+1@4,-2@7,+3@6,-3@9"; got != want {
		t.Fatalf("latched script %q, want %q", got, want)
	}
	if err := reg.Register(4, 1); err == nil {
		t.Fatal("registration accepted after latch")
	}
	if err := reg.Heartbeat(0, 0); err == nil {
		t.Fatal("heartbeat accepted after latch")
	}
}

func TestRegistryValidation(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	reg := newRegistry(clock, time.Second, 3, 20)
	if err := reg.Register(3, 1); err == nil {
		t.Error("out-of-fleet node registered")
	}
	if err := reg.Register(-1, 1); err == nil {
		t.Error("negative node registered")
	}
	if err := reg.Register(0, 25); err == nil {
		t.Error("arrival beyond the round cap accepted")
	}
	if err := reg.Heartbeat(1, 0); err == nil {
		t.Error("heartbeat from unregistered node accepted")
	}
	if err := reg.Deregister(1, 0); err == nil {
		t.Error("deregister of unregistered node accepted")
	}
	if err := reg.Register(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := reg.Deregister(1, 3); err == nil {
		t.Error("departure before arrival accepted")
	}
}

func TestRegistryLapseBeforeArrivalNeverJoins(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	reg := newRegistry(clock, time.Second, 3, 20)
	// Node 1 announces a late arrival at round 8 and then vanishes before
	// declaring any progress: it must never enter the pool at all.
	if err := reg.Register(1, 8); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	script, err := reg.Latch()
	if err != nil {
		t.Fatal(err)
	}
	present, _ := script.Membership(8, 1)
	if present {
		t.Fatal("lapsed-before-arrival node present at its arrival round")
	}
	for round := 1; round <= 20; round++ {
		if p, _ := script.Membership(round, 1); p {
			t.Fatalf("lapsed-before-arrival node present at round %d", round)
		}
	}
}

// TestRegistrySessionMatchesCLITwin is the live-churn half of the
// bit-identity contract: a session whose membership came from live
// registration and a missed heartbeat produces exactly the digest of a
// CLI run whose spec carries the latched script verbatim.
func TestRegistrySessionMatchesCLITwin(t *testing.T) {
	clock := NewManualClock(time.Unix(2000, 0))
	s, err := New(Config{
		Spec:             registrySpec(17),
		Clock:            clock,
		HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	if err := reg.Register(1, 3); err != nil { // late arrival
		t.Fatal(err)
	}
	if err := reg.Register(2, 1); err != nil { // will miss its heartbeat
		t.Fatal(err)
	}
	if err := reg.Heartbeat(2, 6); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Second)
	if err := reg.Heartbeat(1, 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(4 * time.Second) // node 2 lapses; node 1 stays fresh
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(); got != StateDone {
		t.Fatalf("final state %s (err %v)", got, s.Err())
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	script := s.Snapshot().Churn
	if script != "+1@3,-2@6" {
		t.Fatalf("latched script %q, want \"+1@3,-2@6\"", script)
	}

	twin := registrySpec(17)
	twin.Churn = &scenario.ChurnSpec{Script: script}
	want, err := scenario.Run(twin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest() != want.Digest() {
		t.Fatalf("live-churn session digest %s != CLI twin %s", res.Digest(), want.Digest())
	}

	// The churn genuinely changed the run: the no-churn digest differs.
	base, err := scenario.Run(registrySpec(17), 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Digest() == res.Digest() {
		t.Fatal("latched churn had no effect on the run")
	}
}
