package session

import (
	"fmt"
	"sync"
	"time"

	"chiron/internal/faults"
)

// Registry tracks live node membership during a session's hold phase and
// compiles it into a deterministic churn script at Start. This is the
// boundary between the two clocks: registration and heartbeat deadlines
// are wall-clock, but what they produce — arrival and departure *rounds*
// declared by the nodes themselves — is pure simulation time, so the
// latched script replays identically in every episode and in the CLI twin
// (`chiron run -scenario ... -churn "<script>"`).
//
// Node protocol: a node registers with the simulation round it arrives at
// (1 = present from the start) and keeps heartbeating, each beat declaring
// the highest round it commits to covering. A node whose heartbeat lapses
// — or that deregisters explicitly — departs mid-round at its last
// declared round, forfeiting that round's payment under the standard churn
// settlement. A node that lapses before its own arrival round never joins
// at all.
type Registry struct {
	mu       sync.Mutex
	clock    Clock
	timeout  time.Duration
	numNodes int
	rounds   int // episode round cap; bounds declared rounds
	latched  bool
	nodes    map[int]*liveNode
}

// liveNode is one registered node's wall-clock and declared-round state.
type liveNode struct {
	from     int // declared arrival round
	through  int // highest declared covered round
	deadline time.Time
	departed bool // explicit deregister or lapsed heartbeat
}

// newRegistry builds a registry for a fleet of numNodes over episodes of
// at most rounds rounds.
func newRegistry(clock Clock, timeout time.Duration, numNodes, rounds int) *Registry {
	return &Registry{
		clock:    clock,
		timeout:  timeout,
		numNodes: numNodes,
		rounds:   rounds,
		nodes:    make(map[int]*liveNode),
	}
}

// check validates a mutation's node ID and the registry's phase.
func (r *Registry) check(node int) error {
	if r.latched {
		return fmt.Errorf("session: registry is latched; membership is fixed once the session starts")
	}
	if node < 0 || node >= r.numNodes {
		return fmt.Errorf("session: node %d outside fleet [0,%d)", node, r.numNodes)
	}
	return nil
}

// clampRound folds a declared round into [1, rounds].
func (r *Registry) clampRound(round int) int {
	if round < 1 {
		return 1
	}
	if round > r.rounds {
		return r.rounds
	}
	return round
}

// Register adds (or re-arms) a node. fromRound is the simulation round the
// node arrives at (0 or 1 = present from the episode start). Registering
// again resets the node's heartbeat deadline and departure state.
func (r *Registry) Register(node, fromRound int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.check(node); err != nil {
		return err
	}
	if fromRound < 0 || fromRound > r.rounds {
		return fmt.Errorf("session: arrival round %d outside [0,%d]", fromRound, r.rounds)
	}
	from := r.clampRound(fromRound)
	r.nodes[node] = &liveNode{
		from:     from,
		through:  from,
		deadline: r.clock.Now().Add(r.timeout),
	}
	return nil
}

// Heartbeat re-arms a node's deadline and raises (never lowers) the
// highest round it commits to covering. throughRound 0 keeps the current
// commitment.
func (r *Registry) Heartbeat(node, throughRound int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.check(node); err != nil {
		return err
	}
	n, ok := r.nodes[node]
	if !ok {
		return fmt.Errorf("session: heartbeat from unregistered node %d", node)
	}
	if n.departed {
		return fmt.Errorf("session: heartbeat from departed node %d", node)
	}
	r.sweepLocked()
	if n.departed {
		return fmt.Errorf("session: node %d heartbeat arrived after its deadline", node)
	}
	n.deadline = r.clock.Now().Add(r.timeout)
	if t := r.clampRound(throughRound); throughRound > 0 && t > n.through {
		n.through = t
	}
	return nil
}

// Deregister announces a node's departure at the given simulation round
// (0 = its last declared round).
func (r *Registry) Deregister(node, round int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.check(node); err != nil {
		return err
	}
	n, ok := r.nodes[node]
	if !ok {
		return fmt.Errorf("session: deregister of unregistered node %d", node)
	}
	if round > 0 {
		t := r.clampRound(round)
		if t < n.from {
			return fmt.Errorf("session: node %d departs at round %d before arriving at %d", node, t, n.from)
		}
		n.through = t
	}
	n.departed = true
	return nil
}

// sweepLocked marks nodes whose heartbeat deadline has passed as departed.
// Departure is permanent: a later heartbeat is rejected, but a fresh
// Register may re-arm the node (its story restarts).
func (r *Registry) sweepLocked() {
	now := r.clock.Now()
	for _, n := range r.nodes {
		if !n.departed && now.After(n.deadline) {
			n.departed = true
		}
	}
}

// Live counts registered nodes that are neither departed nor lapsed.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	live := 0
	for _, n := range r.nodes {
		if !n.departed {
			live++
		}
	}
	return live
}

// Latch freezes membership into a validated churn script and closes the
// registry to further mutation. Nodes that never registered are treated as
// fleet members present for the whole episode — the spec's fleet is the
// universe; the registry only narrates deviations from full presence:
//
//   - alive, from round 1: no events (present throughout);
//   - alive, from round k>1: arrival at k;
//   - departed or lapsed: departure mid-round at its last declared round,
//     preceded by its arrival when it joined late — unless the two
//     coincide, in which case the node simply never joins.
func (r *Registry) Latch() (*faults.ChurnScript, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	r.latched = true
	var events []faults.ChurnEvent
	for node, n := range r.nodes {
		switch {
		case !n.departed:
			if n.from > 1 {
				events = append(events, faults.ChurnEvent{Round: n.from, Node: node, Kind: faults.ChurnArrive})
			}
		case n.from > 1 && n.through == n.from:
			// Arrive-and-depart in the same round is not expressible (and
			// economically void): the node never enters the pool.
			events = append(events, faults.ChurnEvent{Round: r.rounds + 1, Node: node, Kind: faults.ChurnArrive})
		default:
			if n.from > 1 {
				events = append(events, faults.ChurnEvent{Round: n.from, Node: node, Kind: faults.ChurnArrive})
			}
			events = append(events, faults.ChurnEvent{Round: n.through, Node: node, Kind: faults.ChurnDepart})
		}
	}
	script, err := faults.NewChurnScript(events)
	if err != nil {
		return nil, fmt.Errorf("session: latch registry: %w", err)
	}
	return script, nil
}

// ManualClock is a test Clock advanced by hand.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock {
	return &ManualClock{now: t}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
