package edgeenv

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
)

func robustEnv(t *testing.T, jitter, availability float64) *Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(5))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, 5)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := DefaultConfig(fleet, acc, 500)
	cfg.CommJitter = jitter
	cfg.Availability = availability
	cfg.Rng = rand.New(rand.NewSource(9))
	env, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return env
}

func TestRobustnessConfigValidation(t *testing.T) {
	env := robustEnv(t, 0, 0)
	cfg := env.Config()
	cfg.CommJitter = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted jitter 1.0")
	}
	cfg = env.Config()
	cfg.Availability = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted negative availability")
	}
	cfg = env.Config()
	cfg.CommJitter = 0.2
	cfg.Rng = nil
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted jitter without rng")
	}
}

func TestCommJitterVariesRoundTimes(t *testing.T) {
	env := robustEnv(t, 0.3, 0)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := fullPrices(env)
	times := make(map[int]map[float64]bool) // node -> distinct times seen
	for i := range env.Nodes() {
		times[i] = make(map[float64]bool)
	}
	for k := 0; k < 6 && !env.Done(); k++ {
		res, err := env.Step(prices)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if res.Done {
			break
		}
		for i, tt := range res.Round.Times {
			if tt > 0 {
				times[i][math.Round(tt*1e6)/1e6] = true
			}
		}
	}
	var varied bool
	for _, set := range times {
		if len(set) > 1 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("comm jitter produced identical round times every round")
	}
}

func TestCommJitterBoundsRoundTime(t *testing.T) {
	env := robustEnv(t, 0.25, 0)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := fullPrices(env)
	for k := 0; k < 8 && !env.Done(); k++ {
		res, err := env.Step(prices)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if res.Done {
			break
		}
		for i, node := range env.Nodes() {
			tt := res.Round.Times[i]
			if tt == 0 {
				continue
			}
			lo := node.ComputeTime(node.FreqMax) + node.CommTime*0.75 - 1e-9
			hi := node.ComputeTime(node.FreqMin) + node.CommTime*1.25 + 1e-9
			if tt < lo || tt > hi {
				t.Fatalf("node %d time %v outside jittered bounds [%v,%v]", i, tt, lo, hi)
			}
		}
	}
}

func TestAvailabilityDropsNodes(t *testing.T) {
	env := robustEnv(t, 0, 0.5)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := fullPrices(env)
	var totalParticipants, rounds int
	for k := 0; k < 20 && !env.Done(); k++ {
		res, err := env.Step(prices)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if res.Done {
			break
		}
		totalParticipants += res.Round.Participants
		rounds++
	}
	if rounds == 0 {
		t.Fatal("no rounds played")
	}
	mean := float64(totalParticipants) / float64(rounds)
	// Expect roughly half the fleet per round; allow wide slack.
	if mean < 1 || mean > 4.5 {
		t.Fatalf("mean participants %v with 50%% availability on 5 nodes", mean)
	}
}

func TestFullAvailabilityMatchesBaseline(t *testing.T) {
	// Availability 1.0 must behave exactly like the default (always on).
	env := robustEnv(t, 0, 1.0)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Round.Participants != env.NumNodes() {
		t.Fatalf("participants %d, want all %d", res.Round.Participants, env.NumNodes())
	}
}
