// Package edgeenv assembles the device fleet, accuracy model, and budget
// ledger into the edge-learning Markov decision process the hierarchical
// agent interacts with (Fig. 2 of the paper).
//
// One Step corresponds to one federated training round: the caller posts a
// per-node price vector, every node best-responds with a CPU frequency,
// participants train, FedAvg runs (through the accuracy model), payments
// are deducted, and the exterior/inner rewards are emitted. An episode
// terminates when a round's payment would exceed the remaining budget —
// that round is discarded per Sec. V-A — or when the MaxRounds safety cap
// is hit.
//
// Beyond the paper's clean assumptions, the environment carries a failure
// model (see DESIGN.md, "Failure model"): an injected fault schedule
// (internal/faults) can crash, slow, drop, or corrupt recruited nodes; a
// round deadline cuts stragglers; a completion quorum gates model
// progress; and failed nodes earn a configurable fraction of their
// contracted payment, keeping the ledger exact under churn.
//
// At fleet scale the environment runs on the struct-of-arrays path: pass
// Config.Fleet (a device.Fleet built with device.NewFleetBatch) instead of
// Config.Nodes and set CompactRounds, and every Step streams whole columns
// through the batch kernels with zero steady-state allocation — per-node
// structs and per-round vectors are never materialized. See DESIGN.md §13.
package edgeenv

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/mat"
	"chiron/internal/round"
)

// Config parameterizes the environment.
type Config struct {
	// Nodes is the edge fleet. The environment never mutates nodes.
	// Optional when Fleet is set.
	Nodes []*device.Node
	// Fleet is the struct-of-arrays form of the fleet. When nil it is
	// packed once from Nodes; at fleet scale construct it directly
	// (device.NewFleetBatch) and leave Nodes nil so per-node structs are
	// never materialized. When both are set, column i must describe
	// Nodes[i] — the environment trusts the caller and reads only Fleet.
	Fleet *device.Fleet
	// CompactRounds switches committed round records to streamed
	// aggregates (market.Round with NumNodes/MaxTime/SumTime instead of
	// per-node Prices/Freqs/Times/Outcomes vectors), keeping the ledger
	// history O(1) per round. Required for million-node episodes; leave
	// false where callers inspect per-node outcomes.
	CompactRounds bool
	// Accuracy produces A(ω_k); it is Reset at every episode start.
	Accuracy accuracy.Model
	// Budget is η, the total payment budget per episode.
	Budget float64
	// Lambda is λ, the accuracy-preference coefficient (paper: 2000).
	Lambda float64
	// TimeWeight scales the time term of the exterior reward. 1 gives the
	// Eqn. (9)-consistent r^E = λΔA − T_k; setting it to Lambda recovers
	// the literal Eqn. (14). See DESIGN.md.
	TimeWeight float64
	// HistoryLen is L, the number of past rounds in the exterior state.
	HistoryLen int
	// MaxRounds caps episode length against degenerate zero-payment loops.
	MaxRounds int
	// EmptyRoundTimeout is the wall-clock cost of an offer that attracts no
	// participants: the server waits this long before reposting. Zero
	// selects the automatic default (the slowest conceivable round time of
	// the fleet), which keeps "price everyone out" from being a free skip.
	EmptyRoundTimeout float64
	// CommJitter models per-round bandwidth variation (the paper's
	// B_{i,k}): each node's upload time is scaled each round by a uniform
	// factor in [1−CommJitter, 1+CommJitter]. Zero disables jitter.
	CommJitter float64
	// Availability is the per-round probability that a node is reachable
	// at all; an unavailable node declines regardless of price. 0 means
	// always available (the paper's assumption); values in (0,1) inject
	// the churn real edge fleets exhibit.
	Availability float64
	// Rng drives CommJitter and Availability draws. Required when either
	// is enabled, unless Draws replays them instead.
	Rng *rand.Rand
	// Bandwidth is a time-varying uplink regime: each round, every node's
	// nominal upload time is scaled by Bandwidth.Factor(round) before the
	// jitter draw. Nil keeps the constant nominal bandwidth.
	Bandwidth round.BandwidthSchedule
	// Draws, when non-nil, replays recorded environment draws: membership,
	// availability, and jitter come from the source verbatim and the RNG,
	// churn schedule, and bandwidth regime are never consulted. The
	// counterfactual-replay hook (internal/scenario layers a trace-backed
	// source over this).
	Draws round.DrawSource
	// DrawRecorder, when non-nil, observes every round's resolved draw
	// columns — the exact inputs a Draws source must later reproduce.
	DrawRecorder round.DrawRecorder
	// Faults schedules per-node, per-round failures (crash, straggle,
	// upload drop, update corruption). Nil disables fault injection; a
	// faults.Sampler keeps sampled runs seed-deterministic and a
	// faults.Script reproduces an exact failure sequence.
	Faults faults.Schedule
	// RoundDeadline is the server's straggler cutoff in seconds: any node
	// still running when it expires is cut, so the round time becomes
	// min(RoundDeadline, max_i T_{i,k}). Zero disables the deadline (the
	// paper's assumption — the server waits for the slowest node).
	RoundDeadline float64
	// MaxRetries bounds how many times the server re-requests a dropped
	// upload before abandoning the node for the round. Zero means no
	// retries: the first lost upload drops the node.
	MaxRetries int
	// RetryBackoff is the extra wall-clock pause (seconds) the server
	// waits before each re-upload attempt, on top of the node's upload
	// time itself.
	RetryBackoff float64
	// Retry, when non-nil, overrides MaxRetries and RetryBackoff with a
	// full faults.Backoff policy (geometric growth, per-delay cap). Nil
	// keeps the flat policy the two scalar knobs describe.
	Retry *faults.Backoff
	// Churn schedules node arrivals and departures across the episode
	// (faults.ChurnScript for exact sequences, faults.ChurnSampler for
	// seed-deterministic sampling). Nil keeps the paper's fixed fleet. An
	// absent node is outside the recruitment pool entirely; a node
	// departing mid-round forfeits payment per the failure-payment rule
	// and re-enters the Eqn. (11) best-response pool at the Offer stage
	// after its next arrival.
	Churn faults.ChurnSchedule
	// FailurePayment ∈ [0,1] is the fraction of a failed node's
	// contracted payment the server still pays (crash, deadline cut,
	// drop, or corruption). 0 — the default — pays failed nodes nothing,
	// keeping the ledger's budget accounting exact under churn.
	FailurePayment float64
	// MinQuorum is the minimum number of completed updates required for
	// the round to advance the global model. Rounds below quorum still
	// cost time and failure payments but leave accuracy unchanged. Zero
	// selects the default quorum of 1.
	MinQuorum int
}

// DefaultMaxRounds is the episode round cap the default configurations
// install — the value scenario specs inherit when they do not override
// MaxRounds.
const DefaultMaxRounds = 200

// DefaultConfig returns the paper's settings (λ=2000, L=4) for the given
// fleet and accuracy model. TimeWeight is calibrated to 0.3 so that the
// second-scale round times of the Sec. VI-A device constants balance the
// unit-scale accuracy term the way the paper's dimensionless utility does;
// see DESIGN.md for the analysis.
func DefaultConfig(nodes []*device.Node, acc accuracy.Model, budget float64) Config {
	return Config{
		Nodes:      nodes,
		Accuracy:   acc,
		Budget:     budget,
		Lambda:     2000,
		TimeWeight: 0.3,
		HistoryLen: 4,
		MaxRounds:  DefaultMaxRounds,
	}
}

// DefaultFleetConfig is DefaultConfig for a struct-of-arrays fleet: the
// paper's settings plus CompactRounds, the configuration million-node
// benchmarks run under. Per-node structs are never materialized.
func DefaultFleetConfig(fleet *device.Fleet, acc accuracy.Model, budget float64) Config {
	return Config{
		Fleet:         fleet,
		CompactRounds: true,
		Accuracy:      acc,
		Budget:        budget,
		Lambda:        2000,
		TimeWeight:    0.3,
		HistoryLen:    4,
		MaxRounds:     DefaultMaxRounds,
	}
}

// numNodes resolves the fleet size from whichever layout the config carries.
func (c Config) numNodes() int {
	if c.Fleet != nil {
		return c.Fleet.Len()
	}
	return len(c.Nodes)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.numNodes() == 0:
		return fmt.Errorf("edgeenv: no nodes")
	case c.Accuracy == nil:
		return fmt.Errorf("edgeenv: no accuracy model")
	case c.Budget <= 0:
		return fmt.Errorf("edgeenv: budget %v, want > 0", c.Budget)
	case c.Lambda <= 0:
		return fmt.Errorf("edgeenv: lambda %v, want > 0", c.Lambda)
	case c.TimeWeight < 0:
		return fmt.Errorf("edgeenv: time weight %v, want >= 0", c.TimeWeight)
	case c.HistoryLen <= 0:
		return fmt.Errorf("edgeenv: history length %d, want > 0", c.HistoryLen)
	case c.MaxRounds <= 0:
		return fmt.Errorf("edgeenv: max rounds %d, want > 0", c.MaxRounds)
	case c.EmptyRoundTimeout < 0:
		return fmt.Errorf("edgeenv: empty-round timeout %v, want >= 0", c.EmptyRoundTimeout)
	case c.CommJitter < 0 || c.CommJitter >= 1:
		return fmt.Errorf("edgeenv: comm jitter %v outside [0,1)", c.CommJitter)
	case c.Availability < 0 || c.Availability > 1:
		return fmt.Errorf("edgeenv: availability %v outside [0,1]", c.Availability)
	case (c.CommJitter > 0 || (c.Availability > 0 && c.Availability < 1)) && c.Rng == nil && c.Draws == nil:
		return fmt.Errorf("edgeenv: CommJitter/Availability require a Rng")
	case c.RoundDeadline < 0:
		return fmt.Errorf("edgeenv: round deadline %v, want >= 0", c.RoundDeadline)
	case c.MaxRetries < 0:
		return fmt.Errorf("edgeenv: max retries %d, want >= 0", c.MaxRetries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("edgeenv: retry backoff %v, want >= 0", c.RetryBackoff)
	case c.FailurePayment < 0 || c.FailurePayment > 1:
		return fmt.Errorf("edgeenv: failure payment %v outside [0,1]", c.FailurePayment)
	case c.MinQuorum < 0:
		return fmt.Errorf("edgeenv: min quorum %d, want >= 0", c.MinQuorum)
	case c.MinQuorum > c.numNodes():
		return fmt.Errorf("edgeenv: min quorum %d exceeds fleet size %d", c.MinQuorum, c.numNodes())
	}
	if c.Retry != nil {
		if err := c.Retry.Validate(); err != nil {
			return fmt.Errorf("edgeenv: %w", err)
		}
	}
	if c.Fleet != nil {
		return c.Fleet.Validate()
	}
	for _, n := range c.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StepResult reports the outcome of one environment step.
type StepResult struct {
	// Round is the committed round record (zero-valued when Done is set by
	// budget exhaustion, since the overrunning round is discarded). Its
	// Outcomes field carries the per-node completed / crashed /
	// deadline-cut / dropped / corrupted status; under CompactRounds the
	// record carries streamed aggregates instead of per-node vectors.
	Round market.Round
	// ExteriorReward is r^E_k = λΔA − TimeWeight·T_k (Eqn. 14).
	ExteriorReward float64
	// InnerReward is r^I_k = −Σ(T_k − T_{i,k}) (Eqn. 15).
	InnerReward float64
	// Done reports episode termination (budget exhausted or round cap).
	Done bool
	// Truncated distinguishes the MaxRounds cap from budget exhaustion.
	Truncated bool
}

// Env is the edge-learning environment. It is not safe for concurrent use.
type Env struct {
	cfg       Config
	fleet     *device.Fleet
	nodes     []*device.Node // lazily materialized from fleet when nil
	ledger    *market.Ledger
	pipe      *round.Pipeline
	st        *round.State // reused across Steps; see round.State.Reset
	freqNorm  float64      // max ζ_max across fleet, for state normalization
	priceNorm float64      // per-node price driving the fastest node flat out
	timeNorm  float64      // slowest conceivable round time
	round     int
	lastAcc   float64
	done      bool
}

// New validates cfg and returns a fresh environment positioned before the
// first episode; call Reset before Step.
func New(cfg Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.Budget)
	if err != nil {
		return nil, err
	}
	fleet := cfg.Fleet
	if fleet == nil {
		fleet = device.FromNodes(cfg.Nodes)
	}
	e := &Env{cfg: cfg, fleet: fleet, nodes: cfg.Nodes, ledger: ledger, done: true}
	// Normalization constants stream over the columns; the expressions
	// match the old per-node loop exactly (PriceForFreq's association is
	// the fleet's priceCoef·ζ).
	for i := 0; i < fleet.Len(); i++ {
		if fleet.FreqMax[i] > e.freqNorm {
			e.freqNorm = fleet.FreqMax[i]
		}
		if p := fleet.PriceForFreq(i, fleet.FreqMax[i]); p > e.priceNorm {
			e.priceNorm = p
		}
		if t := fleet.Workload(i)/fleet.FreqMin[i] + fleet.CommTime[i]*(1+cfg.CommJitter); t > e.timeNorm {
			e.timeNorm = t
		}
	}
	// Resolve the config's zero-value defaults before handing the round
	// economics to the stage pipeline.
	minQuorum := cfg.MinQuorum
	if minQuorum <= 0 {
		minQuorum = 1
	}
	emptyTimeout := cfg.EmptyRoundTimeout
	if emptyTimeout == 0 {
		emptyTimeout = e.timeNorm
	}
	// The two scalar retry knobs describe the flat policy; a full Backoff
	// overrides them.
	retry := faults.Constant(cfg.RetryBackoff, cfg.MaxRetries)
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	e.pipe, err = round.New(round.Config{
		Fleet:          fleet,
		Nodes:          cfg.Nodes,
		Compact:        cfg.CompactRounds,
		Churn:          cfg.Churn,
		Availability:   cfg.Availability,
		CommJitter:     cfg.CommJitter,
		Rng:            cfg.Rng,
		Bandwidth:      cfg.Bandwidth,
		Draws:          cfg.Draws,
		Recorder:       cfg.DrawRecorder,
		Faults:         cfg.Faults,
		Deadline:       cfg.RoundDeadline,
		Retry:          retry,
		FailurePayment: cfg.FailurePayment,
		EmptyTimeout:   emptyTimeout,
		MinQuorum:      minQuorum,
		Accuracy:       cfg.Accuracy,
		Ledger:         ledger,
	})
	if err != nil {
		return nil, fmt.Errorf("edgeenv: %w", err)
	}
	return e, nil
}

// Pipeline exposes the staged round chain the environment drives — useful
// for stage-level inspection and tests. Callers must not run it
// concurrently with Step.
func (e *Env) Pipeline() *round.Pipeline { return e.pipe }

// NumNodes returns the fleet size N.
func (e *Env) NumNodes() int { return e.fleet.Len() }

// Fleet returns the struct-of-arrays fleet (callers must not mutate the
// columns).
func (e *Env) Fleet() *device.Fleet { return e.fleet }

// Nodes returns the per-node fleet view (callers must not mutate the
// nodes). On a Fleet-only environment the structs are materialized lazily
// on first call and cached — an O(N) cost fleet-scale callers avoid by
// staying on Fleet's columns.
func (e *Env) Nodes() []*device.Node {
	if e.nodes == nil {
		e.nodes = e.fleet.Nodes()
	}
	return e.nodes
}

// Ledger exposes the episode ledger for metric extraction.
func (e *Env) Ledger() *market.Ledger { return e.ledger }

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Round returns the index of the next round to be played (1-based after
// Reset).
func (e *Env) Round() int { return e.round }

// Done reports whether the current episode has terminated.
func (e *Env) Done() bool { return e.done }

// MaxTotalPrice returns Σ_i p_i(ζ_i^max): the total per-round price that
// drives every node at its maximum frequency. The exterior action space is
// (0, MaxTotalPrice].
func (e *Env) MaxTotalPrice() float64 { return e.fleet.MaxTotalPrice() }

// Norms returns the fleet's state-normalization constants: the maximum
// ζ_max across the fleet, the per-node price driving the fastest node flat
// out, and the slowest conceivable round time. The agent stack's
// observation encoders (internal/policy) divide raw history entries by
// these so the policy networks stay well conditioned; the state layout
// itself lives with the encoders, not the environment.
func (e *Env) Norms() (freq, price, time float64) {
	return e.freqNorm, e.priceNorm, e.timeNorm
}

// Reset begins a new episode: the ledger refills and the learning task
// restarts. Observations are produced by the mechanism's encoders
// (internal/policy), which read the freshly reset ledger on demand.
func (e *Env) Reset() error {
	e.ledger.Reset()
	acc, err := e.cfg.Accuracy.Reset()
	if err != nil {
		return fmt.Errorf("edgeenv: reset accuracy: %w", err)
	}
	e.lastAcc = acc
	e.round = 1
	e.done = false
	return nil
}

// Step plays one round with the given per-node price vector by driving the
// staged pipeline (internal/round: Offer → Respond → Execute → Settle →
// Commit) and wrapping its terminal status in MDP semantics — rewards,
// episode termination, and the MaxRounds truncation cap. It returns the
// rewards and whether the episode terminated. Stepping a finished episode
// is an error; call Reset first.
//
// The round State is owned by the environment and reused across Steps, so
// a steady-state Step performs no per-node allocation (under
// CompactRounds; vector-record mode still allocates the committed record's
// per-node vectors, which the ledger history retains by design).
//
// With a fault schedule configured, each recruited node passes through the
// Execute stage's failure pipeline: a Crash silences it (the server waits
// out the deadline, or the node's nominal finish time when no deadline is
// set), a Straggle multiplies its round time, a Drop costs retry churn and
// abandons the node once MaxRetries is exhausted, and a Corrupt upload is
// rejected at sanitization. Any node still running at RoundDeadline is cut,
// so the round time is min(deadline, max_i T_{i,k}). Failed nodes earn
// FailurePayment·payment (0 by default); the Settle stage's budget
// pre-check uses the full contracted payment so the ledger can never
// overdraw even if every node completes.
func (e *Env) Step(prices []float64) (StepResult, error) {
	if e.done {
		return StepResult{}, fmt.Errorf("edgeenv: step on finished episode")
	}
	n := e.fleet.Len()
	if e.st == nil {
		e.st = round.NewState(e.round, prices, e.lastAcc, n)
	} else {
		e.st.Reset(e.round, prices, e.lastAcc, n)
	}
	st := e.st
	if err := e.pipe.Run(st); err != nil {
		return StepResult{}, fmt.Errorf("edgeenv: %w", err)
	}
	switch st.Status {
	case round.StatusEmpty:
		// The failed offer is not a training round: Settle charged it as
		// waste, both rewards carry the timeout penalty, and the episode
		// continues (only MaxRounds bounds it).
		timeout := e.pipe.Settle.EmptyTimeout
		res := StepResult{
			ExteriorReward: -e.cfg.TimeWeight * timeout,
			InnerReward:    -float64(n) * timeout,
		}
		e.advanceRound(&res)
		return res, nil
	case round.StatusBudgetExhausted:
		// The overrunning round is discarded wholesale and the episode
		// ends (Sec. V-A).
		e.done = true
		return StepResult{Done: true}, nil
	}

	res := StepResult{
		Round:          st.Record,
		ExteriorReward: e.cfg.Lambda*(st.Record.Accuracy-e.lastAcc) - e.cfg.TimeWeight*st.Record.RoundTime(),
		InnerReward:    -st.Record.IdleTime(),
	}
	e.lastAcc = st.Record.Accuracy
	e.advanceRound(&res)
	return res, nil
}

// advanceRound moves to the next round index and applies the MaxRounds
// truncation cap to the step result.
func (e *Env) advanceRound(res *StepResult) {
	e.round++
	if e.round > e.cfg.MaxRounds {
		res.Done = true
		res.Truncated = true
		e.done = true
	}
}

// RandomPrices produces a feasible random per-node price vector whose total
// is a uniform fraction of MaxTotalPrice — used by the Greedy baseline's
// exploration and in tests.
func (e *Env) RandomPrices(rng *rand.Rand) []float64 {
	n := e.fleet.Len()
	total := rng.Float64() * e.MaxTotalPrice()
	props := make([]float64, n)
	for i := range props {
		props[i] = rng.Float64() + 1e-9
	}
	mat.Normalize(props)
	for i := range props {
		props[i] *= total
	}
	return props
}
