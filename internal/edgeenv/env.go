// Package edgeenv assembles the device fleet, accuracy model, and budget
// ledger into the edge-learning Markov decision process the hierarchical
// agent interacts with (Fig. 2 of the paper).
//
// One Step corresponds to one federated training round: the caller posts a
// per-node price vector, every node best-responds with a CPU frequency,
// participants train, FedAvg runs (through the accuracy model), payments
// are deducted, and the exterior/inner rewards are emitted. An episode
// terminates when a round's payment would exceed the remaining budget —
// that round is discarded per Sec. V-A — or when the MaxRounds safety cap
// is hit.
//
// Beyond the paper's clean assumptions, the environment carries a failure
// model (see DESIGN.md, "Failure model"): an injected fault schedule
// (internal/faults) can crash, slow, drop, or corrupt recruited nodes; a
// round deadline cuts stragglers; a completion quorum gates model
// progress; and failed nodes earn a configurable fraction of their
// contracted payment, keeping the ledger exact under churn.
package edgeenv

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/mat"
	"chiron/internal/round"
)

// Config parameterizes the environment.
type Config struct {
	// Nodes is the edge fleet. The environment never mutates nodes.
	Nodes []*device.Node
	// Accuracy produces A(ω_k); it is Reset at every episode start.
	Accuracy accuracy.Model
	// Budget is η, the total payment budget per episode.
	Budget float64
	// Lambda is λ, the accuracy-preference coefficient (paper: 2000).
	Lambda float64
	// TimeWeight scales the time term of the exterior reward. 1 gives the
	// Eqn. (9)-consistent r^E = λΔA − T_k; setting it to Lambda recovers
	// the literal Eqn. (14). See DESIGN.md.
	TimeWeight float64
	// HistoryLen is L, the number of past rounds in the exterior state.
	HistoryLen int
	// MaxRounds caps episode length against degenerate zero-payment loops.
	MaxRounds int
	// EmptyRoundTimeout is the wall-clock cost of an offer that attracts no
	// participants: the server waits this long before reposting. Zero
	// selects the automatic default (the slowest conceivable round time of
	// the fleet), which keeps "price everyone out" from being a free skip.
	EmptyRoundTimeout float64
	// CommJitter models per-round bandwidth variation (the paper's
	// B_{i,k}): each node's upload time is scaled each round by a uniform
	// factor in [1−CommJitter, 1+CommJitter]. Zero disables jitter.
	CommJitter float64
	// Availability is the per-round probability that a node is reachable
	// at all; an unavailable node declines regardless of price. 0 means
	// always available (the paper's assumption); values in (0,1) inject
	// the churn real edge fleets exhibit.
	Availability float64
	// Rng drives CommJitter and Availability draws. Required when either
	// is enabled.
	Rng *rand.Rand
	// Faults schedules per-node, per-round failures (crash, straggle,
	// upload drop, update corruption). Nil disables fault injection; a
	// faults.Sampler keeps sampled runs seed-deterministic and a
	// faults.Script reproduces an exact failure sequence.
	Faults faults.Schedule
	// RoundDeadline is the server's straggler cutoff in seconds: any node
	// still running when it expires is cut, so the round time becomes
	// min(RoundDeadline, max_i T_{i,k}). Zero disables the deadline (the
	// paper's assumption — the server waits for the slowest node).
	RoundDeadline float64
	// MaxRetries bounds how many times the server re-requests a dropped
	// upload before abandoning the node for the round. Zero means no
	// retries: the first lost upload drops the node.
	MaxRetries int
	// RetryBackoff is the extra wall-clock pause (seconds) the server
	// waits before each re-upload attempt, on top of the node's upload
	// time itself.
	RetryBackoff float64
	// Retry, when non-nil, overrides MaxRetries and RetryBackoff with a
	// full faults.Backoff policy (geometric growth, per-delay cap). Nil
	// keeps the flat policy the two scalar knobs describe.
	Retry *faults.Backoff
	// Churn schedules node arrivals and departures across the episode
	// (faults.ChurnScript for exact sequences, faults.ChurnSampler for
	// seed-deterministic sampling). Nil keeps the paper's fixed fleet. An
	// absent node is outside the recruitment pool entirely; a node
	// departing mid-round forfeits payment per the failure-payment rule
	// and re-enters the Eqn. (11) best-response pool at the Offer stage
	// after its next arrival.
	Churn faults.ChurnSchedule
	// FailurePayment ∈ [0,1] is the fraction of a failed node's
	// contracted payment the server still pays (crash, deadline cut,
	// drop, or corruption). 0 — the default — pays failed nodes nothing,
	// keeping the ledger's budget accounting exact under churn.
	FailurePayment float64
	// MinQuorum is the minimum number of completed updates required for
	// the round to advance the global model. Rounds below quorum still
	// cost time and failure payments but leave accuracy unchanged. Zero
	// selects the default quorum of 1.
	MinQuorum int
}

// DefaultConfig returns the paper's settings (λ=2000, L=4) for the given
// fleet and accuracy model. TimeWeight is calibrated to 0.3 so that the
// second-scale round times of the Sec. VI-A device constants balance the
// unit-scale accuracy term the way the paper's dimensionless utility does;
// see DESIGN.md for the analysis.
func DefaultConfig(nodes []*device.Node, acc accuracy.Model, budget float64) Config {
	return Config{
		Nodes:      nodes,
		Accuracy:   acc,
		Budget:     budget,
		Lambda:     2000,
		TimeWeight: 0.3,
		HistoryLen: 4,
		MaxRounds:  200,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case len(c.Nodes) == 0:
		return fmt.Errorf("edgeenv: no nodes")
	case c.Accuracy == nil:
		return fmt.Errorf("edgeenv: no accuracy model")
	case c.Budget <= 0:
		return fmt.Errorf("edgeenv: budget %v, want > 0", c.Budget)
	case c.Lambda <= 0:
		return fmt.Errorf("edgeenv: lambda %v, want > 0", c.Lambda)
	case c.TimeWeight < 0:
		return fmt.Errorf("edgeenv: time weight %v, want >= 0", c.TimeWeight)
	case c.HistoryLen <= 0:
		return fmt.Errorf("edgeenv: history length %d, want > 0", c.HistoryLen)
	case c.MaxRounds <= 0:
		return fmt.Errorf("edgeenv: max rounds %d, want > 0", c.MaxRounds)
	case c.EmptyRoundTimeout < 0:
		return fmt.Errorf("edgeenv: empty-round timeout %v, want >= 0", c.EmptyRoundTimeout)
	case c.CommJitter < 0 || c.CommJitter >= 1:
		return fmt.Errorf("edgeenv: comm jitter %v outside [0,1)", c.CommJitter)
	case c.Availability < 0 || c.Availability > 1:
		return fmt.Errorf("edgeenv: availability %v outside [0,1]", c.Availability)
	case (c.CommJitter > 0 || (c.Availability > 0 && c.Availability < 1)) && c.Rng == nil:
		return fmt.Errorf("edgeenv: CommJitter/Availability require a Rng")
	case c.RoundDeadline < 0:
		return fmt.Errorf("edgeenv: round deadline %v, want >= 0", c.RoundDeadline)
	case c.MaxRetries < 0:
		return fmt.Errorf("edgeenv: max retries %d, want >= 0", c.MaxRetries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("edgeenv: retry backoff %v, want >= 0", c.RetryBackoff)
	case c.FailurePayment < 0 || c.FailurePayment > 1:
		return fmt.Errorf("edgeenv: failure payment %v outside [0,1]", c.FailurePayment)
	case c.MinQuorum < 0:
		return fmt.Errorf("edgeenv: min quorum %d, want >= 0", c.MinQuorum)
	case c.MinQuorum > len(c.Nodes):
		return fmt.Errorf("edgeenv: min quorum %d exceeds fleet size %d", c.MinQuorum, len(c.Nodes))
	}
	if c.Retry != nil {
		if err := c.Retry.Validate(); err != nil {
			return fmt.Errorf("edgeenv: %w", err)
		}
	}
	for _, n := range c.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StepResult reports the outcome of one environment step.
type StepResult struct {
	// Round is the committed round record (zero-valued when Done is set by
	// budget exhaustion, since the overrunning round is discarded). Its
	// Outcomes field carries the per-node completed / crashed /
	// deadline-cut / dropped / corrupted status.
	Round market.Round
	// ExteriorReward is r^E_k = λΔA − TimeWeight·T_k (Eqn. 14).
	ExteriorReward float64
	// InnerReward is r^I_k = −Σ(T_k − T_{i,k}) (Eqn. 15).
	InnerReward float64
	// Done reports episode termination (budget exhausted or round cap).
	Done bool
	// Truncated distinguishes the MaxRounds cap from budget exhaustion.
	Truncated bool
}

// Env is the edge-learning environment. It is not safe for concurrent use.
type Env struct {
	cfg       Config
	ledger    *market.Ledger
	pipe      *round.Pipeline
	freqNorm  float64 // max ζ_max across fleet, for state normalization
	priceNorm float64 // per-node price driving the fastest node flat out
	timeNorm  float64 // slowest conceivable round time
	round     int
	lastAcc   float64
	done      bool
}

// New validates cfg and returns a fresh environment positioned before the
// first episode; call Reset before Step.
func New(cfg Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.Budget)
	if err != nil {
		return nil, err
	}
	e := &Env{cfg: cfg, ledger: ledger, done: true}
	for _, n := range cfg.Nodes {
		if n.FreqMax > e.freqNorm {
			e.freqNorm = n.FreqMax
		}
		if p := n.PriceForFreq(n.FreqMax); p > e.priceNorm {
			e.priceNorm = p
		}
		if t := n.ComputeTime(n.FreqMin) + n.CommTime*(1+cfg.CommJitter); t > e.timeNorm {
			e.timeNorm = t
		}
	}
	// Resolve the config's zero-value defaults before handing the round
	// economics to the stage pipeline.
	minQuorum := cfg.MinQuorum
	if minQuorum <= 0 {
		minQuorum = 1
	}
	emptyTimeout := cfg.EmptyRoundTimeout
	if emptyTimeout == 0 {
		emptyTimeout = e.timeNorm
	}
	// The two scalar retry knobs describe the flat policy; a full Backoff
	// overrides them.
	retry := faults.Constant(cfg.RetryBackoff, cfg.MaxRetries)
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	e.pipe, err = round.New(round.Config{
		Nodes:          cfg.Nodes,
		Churn:          cfg.Churn,
		Availability:   cfg.Availability,
		CommJitter:     cfg.CommJitter,
		Rng:            cfg.Rng,
		Faults:         cfg.Faults,
		Deadline:       cfg.RoundDeadline,
		Retry:          retry,
		FailurePayment: cfg.FailurePayment,
		EmptyTimeout:   emptyTimeout,
		MinQuorum:      minQuorum,
		Accuracy:       cfg.Accuracy,
		Ledger:         ledger,
	})
	if err != nil {
		return nil, fmt.Errorf("edgeenv: %w", err)
	}
	return e, nil
}

// Pipeline exposes the staged round chain the environment drives — useful
// for stage-level inspection and tests. Callers must not run it
// concurrently with Step.
func (e *Env) Pipeline() *round.Pipeline { return e.pipe }

// NumNodes returns the fleet size N.
func (e *Env) NumNodes() int { return len(e.cfg.Nodes) }

// Nodes returns the fleet (callers must not mutate the nodes).
func (e *Env) Nodes() []*device.Node { return e.cfg.Nodes }

// Ledger exposes the episode ledger for metric extraction.
func (e *Env) Ledger() *market.Ledger { return e.ledger }

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Round returns the index of the next round to be played (1-based after
// Reset).
func (e *Env) Round() int { return e.round }

// Done reports whether the current episode has terminated.
func (e *Env) Done() bool { return e.done }

// MaxTotalPrice returns Σ_i p_i(ζ_i^max): the total per-round price that
// drives every node at its maximum frequency. The exterior action space is
// (0, MaxTotalPrice].
func (e *Env) MaxTotalPrice() float64 {
	var sum float64
	for _, n := range e.cfg.Nodes {
		sum += n.PriceForFreq(n.FreqMax)
	}
	return sum
}

// Norms returns the fleet's state-normalization constants: the maximum
// ζ_max across the fleet, the per-node price driving the fastest node flat
// out, and the slowest conceivable round time. The agent stack's
// observation encoders (internal/policy) divide raw history entries by
// these so the policy networks stay well conditioned; the state layout
// itself lives with the encoders, not the environment.
func (e *Env) Norms() (freq, price, time float64) {
	return e.freqNorm, e.priceNorm, e.timeNorm
}

// Reset begins a new episode: the ledger refills and the learning task
// restarts. Observations are produced by the mechanism's encoders
// (internal/policy), which read the freshly reset ledger on demand.
func (e *Env) Reset() error {
	e.ledger.Reset()
	acc, err := e.cfg.Accuracy.Reset()
	if err != nil {
		return fmt.Errorf("edgeenv: reset accuracy: %w", err)
	}
	e.lastAcc = acc
	e.round = 1
	e.done = false
	return nil
}

// Step plays one round with the given per-node price vector by driving the
// staged pipeline (internal/round: Offer → Respond → Execute → Settle →
// Commit) and wrapping its terminal status in MDP semantics — rewards,
// episode termination, and the MaxRounds truncation cap. It returns the
// rewards and whether the episode terminated. Stepping a finished episode
// is an error; call Reset first.
//
// With a fault schedule configured, each recruited node passes through the
// Execute stage's failure pipeline: a Crash silences it (the server waits
// out the deadline, or the node's nominal finish time when no deadline is
// set), a Straggle multiplies its round time, a Drop costs retry churn and
// abandons the node once MaxRetries is exhausted, and a Corrupt upload is
// rejected at sanitization. Any node still running at RoundDeadline is cut,
// so the round time is min(deadline, max_i T_{i,k}). Failed nodes earn
// FailurePayment·payment (0 by default); the Settle stage's budget
// pre-check uses the full contracted payment so the ledger can never
// overdraw even if every node completes.
func (e *Env) Step(prices []float64) (StepResult, error) {
	if e.done {
		return StepResult{}, fmt.Errorf("edgeenv: step on finished episode")
	}
	n := len(e.cfg.Nodes)
	st := round.NewState(e.round, prices, e.lastAcc, n)
	if err := e.pipe.Run(st); err != nil {
		return StepResult{}, fmt.Errorf("edgeenv: %w", err)
	}
	switch st.Status {
	case round.StatusEmpty:
		// The failed offer is not a training round: Settle charged it as
		// waste, both rewards carry the timeout penalty, and the episode
		// continues (only MaxRounds bounds it).
		timeout := e.pipe.Settle.EmptyTimeout
		res := StepResult{
			ExteriorReward: -e.cfg.TimeWeight * timeout,
			InnerReward:    -float64(n) * timeout,
		}
		e.advanceRound(&res)
		return res, nil
	case round.StatusBudgetExhausted:
		// The overrunning round is discarded wholesale and the episode
		// ends (Sec. V-A).
		e.done = true
		return StepResult{Done: true}, nil
	}

	res := StepResult{
		Round:          st.Record,
		ExteriorReward: e.cfg.Lambda*(st.Record.Accuracy-e.lastAcc) - e.cfg.TimeWeight*st.Record.RoundTime(),
		InnerReward:    -st.Record.IdleTime(),
	}
	e.lastAcc = st.Record.Accuracy
	e.advanceRound(&res)
	return res, nil
}

// advanceRound moves to the next round index and applies the MaxRounds
// truncation cap to the step result.
func (e *Env) advanceRound(res *StepResult) {
	e.round++
	if e.round > e.cfg.MaxRounds {
		res.Done = true
		res.Truncated = true
		e.done = true
	}
}

// RandomPrices produces a feasible random per-node price vector whose total
// is a uniform fraction of MaxTotalPrice — used by the Greedy baseline's
// exploration and in tests.
func (e *Env) RandomPrices(rng *rand.Rand) []float64 {
	n := len(e.cfg.Nodes)
	total := rng.Float64() * e.MaxTotalPrice()
	props := make([]float64, n)
	for i := range props {
		props[i] = rng.Float64() + 1e-9
	}
	mat.Normalize(props)
	for i := range props {
		props[i] *= total
	}
	return props
}
