// Reproducibility acceptance test for the fault subsystem. It lives in an
// external test package because it serializes rounds through internal/trace,
// which (via mechanism) imports edgeenv.
package edgeenv_test

import (
	"bytes"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/trace"
)

// faultedEpisodeTrace plays one full episode under a sampled fault schedule
// and returns the serialized round trace plus the number of node failures.
func faultedEpisodeTrace(t *testing.T, seed int64) ([]byte, int) {
	t.Helper()
	fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(4))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, 4)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	var deadline float64
	for _, n := range fleet {
		if tt := n.ComputeTime(n.FreqMin) + n.CommTime; tt*1.2 > deadline {
			deadline = tt * 1.2
		}
	}
	// Rates high enough that a short episode is guaranteed to hit faults.
	sampler, err := faults.NewSampler(faults.Rates{
		Crash: 0.1, Straggle: 0.15, Drop: 0.15, Corrupt: 0.1,
	}, seed+2)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 500)
	cfg.Faults = sampler
	cfg.RoundDeadline = deadline
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 1
	cfg.MaxRounds = 40
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := make([]float64, env.NumNodes())
	for i, n := range env.Nodes() {
		prices[i] = n.PriceForFreq(n.FreqMax)
	}
	for !env.Done() {
		if _, err := env.Step(prices); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	failures := 0
	for i := range env.Ledger().Rounds() {
		r := &env.Ledger().Rounds()[i]
		failures += r.Failures()
		if err := w.WriteRound(1, r); err != nil {
			t.Fatalf("WriteRound: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), failures
}

// Two runs with the same seed and fault schedule must produce byte-identical
// trace output — the acceptance criterion for deterministic fault injection.
func TestFaultedEpisodeByteReproducible(t *testing.T) {
	a, failuresA := faultedEpisodeTrace(t, 11)
	b, failuresB := faultedEpisodeTrace(t, 11)
	if failuresA == 0 {
		t.Fatal("episode saw no failures; reproducibility test is vacuous")
	}
	if failuresA != failuresB {
		t.Fatalf("failure counts differ: %d vs %d", failuresA, failuresB)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different trace bytes")
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}

	// A different seed must yield a different schedule (and thus trace).
	c, _ := faultedEpisodeTrace(t, 12)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}

	// The serialized rounds must survive a read back, outcomes intact.
	trc, err := trace.Read(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(trc.Rounds) == 0 {
		t.Fatal("no rounds read back")
	}
	var sawOutcome bool
	for _, r := range trc.Rounds {
		if len(r.Outcomes) > 0 {
			sawOutcome = true
		}
	}
	if !sawOutcome {
		t.Fatal("no round carried outcomes despite injected failures")
	}
}
