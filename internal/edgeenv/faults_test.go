package edgeenv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/faults"
	"chiron/internal/market"
)

// faultEnv builds an env on the same deterministic fleet as testEnv but lets
// the caller adjust the config (fault schedule, deadline, quorum, ...) first.
func faultEnv(t *testing.T, nodes int, budget float64, mutate func(*Config)) *Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := DefaultConfig(fleet, acc, budget)
	if mutate != nil {
		mutate(&cfg)
	}
	env, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return env
}

// cleanRound plays one full-price round on a fault-free env and returns it,
// as the baseline the fault tests compare payments and times against.
func cleanRound(t *testing.T, nodes int, budget float64) market.Round {
	t.Helper()
	env := testEnv(t, nodes, budget)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	return res.Round
}

func TestFaultConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(2))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rng, accuracy.PresetMNIST, 2)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.RoundDeadline = -1 },
		func(c *Config) { c.MaxRetries = -1 },
		func(c *Config) { c.RetryBackoff = -1 },
		func(c *Config) { c.FailurePayment = -0.1 },
		func(c *Config) { c.FailurePayment = 1.1 },
		func(c *Config) { c.MinQuorum = -1 },
		func(c *Config) { c.MinQuorum = 3 }, // exceeds fleet size
	}
	for i, mutate := range mutations {
		bad := DefaultConfig(fleet, acc, 100)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("fault-config mutation %d accepted", i)
		}
	}
}

func TestScriptedCrashEarnsNoPayment(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Crash}}}
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	r := res.Round
	if r.Outcomes[0] != market.OutcomeCrashed {
		t.Fatalf("outcome[0] = %v, want crashed", r.Outcomes[0])
	}
	if r.Outcomes[1] != market.OutcomeCompleted || r.Outcomes[2] != market.OutcomeCompleted {
		t.Fatalf("healthy outcomes %v, %v", r.Outcomes[1], r.Outcomes[2])
	}
	if r.Completed != 2 || r.Failures() != 1 {
		t.Fatalf("completed %d failures %d, want 2 and 1", r.Completed, r.Failures())
	}
	// The crashed node earns nothing: payment drops by exactly its p·ζ.
	crashedPay := clean.Prices[0] * clean.Freqs[0]
	if crashedPay <= 0 {
		t.Fatal("baseline node 0 earned nothing; test is vacuous")
	}
	if math.Abs(r.Payment-(clean.Payment-crashedPay)) > 1e-9 {
		t.Fatalf("payment %v, want %v", r.Payment, clean.Payment-crashedPay)
	}
	if math.Abs(env.Ledger().TotalSpent()-r.Payment) > 1e-9 {
		t.Fatalf("ledger charged %v for a %v round", env.Ledger().TotalSpent(), r.Payment)
	}
	// Without a deadline the server waits the crashed node's nominal finish.
	if math.Abs(r.Times[0]-clean.Times[0]) > 1e-9 {
		t.Fatalf("crash time %v, want nominal %v", r.Times[0], clean.Times[0])
	}
}

func TestCrashWaitsOutDeadline(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	deadline := clean.RoundTime() * 1.2
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Crash}}}
		c.RoundDeadline = deadline
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Round.Times[0] != deadline {
		t.Fatalf("crash wait %v, want deadline %v", res.Round.Times[0], deadline)
	}
	if res.Round.RoundTime() != deadline {
		t.Fatalf("round time %v, want deadline %v", res.Round.RoundTime(), deadline)
	}
}

func TestDeadlineCutsStraggler(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	// Straggle the slowest node so its 3x-slowed run overshoots a deadline
	// the healthy nodes comfortably meet.
	slowest := 0
	for i, tt := range clean.Times {
		if tt > clean.Times[slowest] {
			slowest = i
		}
	}
	deadline := clean.RoundTime() * 1.2
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {slowest: {Kind: faults.Straggle, Slowdown: 3}}}
		c.RoundDeadline = deadline
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	r := res.Round
	if r.Outcomes[slowest] != market.OutcomeDeadlineCut {
		t.Fatalf("outcome %v, want deadline-cut", r.Outcomes[slowest])
	}
	if r.Times[slowest] != deadline {
		t.Fatalf("cut node time %v, want deadline %v", r.Times[slowest], deadline)
	}
	if r.RoundTime() != deadline {
		t.Fatalf("round time %v, want min(deadline, max T) = %v", r.RoundTime(), deadline)
	}
	// The cut node forfeits its payment under the default zero FailurePayment.
	cutPay := clean.Prices[slowest] * clean.Freqs[slowest]
	if math.Abs(r.Payment-(clean.Payment-cutPay)) > 1e-9 {
		t.Fatalf("payment %v, want %v", r.Payment, clean.Payment-cutPay)
	}
}

func TestSlowStragglerKeptWithoutDeadline(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {1: {Kind: faults.Straggle, Slowdown: 3}}}
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	r := res.Round
	if r.Outcomes[1] != market.OutcomeCompleted {
		t.Fatalf("slowed node outcome %v, want completed (no deadline set)", r.Outcomes[1])
	}
	if math.Abs(r.Times[1]-3*clean.Times[1]) > 1e-9 {
		t.Fatalf("slowed time %v, want %v", r.Times[1], 3*clean.Times[1])
	}
	// Full payment: the update arrived, just late.
	if math.Abs(r.Payment-clean.Payment) > 1e-9 {
		t.Fatalf("payment %v, want clean %v", r.Payment, clean.Payment)
	}
}

func TestFailurePaymentRefundsFraction(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Crash}}}
		c.FailurePayment = 0.5
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	crashedPay := clean.Prices[0] * clean.Freqs[0]
	want := clean.Payment - 0.5*crashedPay
	if math.Abs(res.Round.Payment-want) > 1e-9 {
		t.Fatalf("payment %v, want %v (half refund)", res.Round.Payment, want)
	}
}

func TestDropRetriesCostTimeAndExhaustionDropsNode(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	const backoff = 1.0

	// Within the retry budget: the node completes, but each lost upload
	// costs a re-upload plus backoff.
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Drop, Attempts: 1}}}
		c.MaxRetries = 2
		c.RetryBackoff = backoff
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	comm := env.Nodes()[0].CommTime
	if res.Round.Outcomes[0] != market.OutcomeCompleted {
		t.Fatalf("retried node outcome %v, want completed", res.Round.Outcomes[0])
	}
	want := clean.Times[0] + (comm + backoff)
	if math.Abs(res.Round.Times[0]-want) > 1e-9 {
		t.Fatalf("retried time %v, want %v", res.Round.Times[0], want)
	}
	if math.Abs(res.Round.Payment-clean.Payment) > 1e-9 {
		t.Fatalf("completed-after-retry payment %v, want clean %v", res.Round.Payment, clean.Payment)
	}

	// Beyond the retry budget: the node is abandoned and unpaid.
	env = faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Drop, Attempts: 5}}}
		c.MaxRetries = 2
		c.RetryBackoff = backoff
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if res, err = env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Round.Outcomes[0] != market.OutcomeDropped {
		t.Fatalf("exhausted node outcome %v, want dropped", res.Round.Outcomes[0])
	}
	// Two retries (comm+backoff each) plus the final abandoned upload.
	want = clean.Times[0] + 2*(comm+backoff) + comm
	if math.Abs(res.Round.Times[0]-want) > 1e-9 {
		t.Fatalf("dropped time %v, want %v", res.Round.Times[0], want)
	}
	droppedPay := clean.Prices[0] * clean.Freqs[0]
	if math.Abs(res.Round.Payment-(clean.Payment-droppedPay)) > 1e-9 {
		t.Fatalf("dropped payment %v, want %v", res.Round.Payment, clean.Payment-droppedPay)
	}
}

func TestCorruptUpdateRejectedUnpaid(t *testing.T) {
	clean := cleanRound(t, 3, 1000)
	env := faultEnv(t, 3, 1000, func(c *Config) {
		c.Faults = faults.Script{1: {2: {Kind: faults.Corrupt, Mode: faults.CorruptNaN}}}
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	r := res.Round
	if r.Outcomes[2] != market.OutcomeCorrupted {
		t.Fatalf("outcome %v, want corrupted", r.Outcomes[2])
	}
	// The upload arrived on schedule — only the payment is withheld.
	if math.Abs(r.Times[2]-clean.Times[2]) > 1e-9 {
		t.Fatalf("corrupt time %v, want nominal %v", r.Times[2], clean.Times[2])
	}
	badPay := clean.Prices[2] * clean.Freqs[2]
	if math.Abs(r.Payment-(clean.Payment-badPay)) > 1e-9 {
		t.Fatalf("payment %v, want %v", r.Payment, clean.Payment-badPay)
	}
}

func TestQuorumFailureHoldsAccuracyButEpisodeContinues(t *testing.T) {
	env := faultEnv(t, 3, 1e6, func(c *Config) {
		c.Faults = faults.Script{1: {0: {Kind: faults.Crash}}}
		c.MinQuorum = 3
	})
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Done {
		t.Fatal("quorum-failed round ended the episode")
	}
	if env.Ledger().NumRounds() != 1 {
		t.Fatal("quorum-failed round was not committed")
	}
	// ΔA = 0, so the exterior reward is the pure time penalty.
	wantReward := -env.Config().TimeWeight * res.Round.RoundTime()
	if math.Abs(res.ExteriorReward-wantReward) > 1e-9 {
		t.Fatalf("exterior reward %v, want time-only %v", res.ExteriorReward, wantReward)
	}
	held := res.Round.Accuracy

	// The next, fault-free round makes quorum and resumes the climb from
	// exactly where the model was held.
	res2, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step 2: %v", err)
	}
	if res2.Round.Completed != 3 {
		t.Fatalf("round 2 completed %d, want 3", res2.Round.Completed)
	}
	if res2.Round.Accuracy <= held {
		t.Fatalf("accuracy did not resume climbing: %v -> %v", held, res2.Round.Accuracy)
	}
}

// Property: under sampled crashes, stragglers, drops, and corruptions — with
// a deadline and partial failure payments enabled — total payments never
// exceed the budget η, every committed round's outcome bookkeeping is
// consistent, and episodes terminate.
func TestBudgetInvariantUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(3))
		if err != nil {
			return false
		}
		acc, err := accuracy.NewPresetCurve(rng, accuracy.PresetMNIST, 3)
		if err != nil {
			return false
		}
		var deadline float64
		for _, n := range fleet {
			if t := n.ComputeTime(n.FreqMin) + n.CommTime; t*1.2 > deadline {
				deadline = t * 1.2
			}
		}
		sampler, err := faults.NewSampler(faults.Rates{
			Crash: 0.1, Straggle: 0.1, Drop: 0.1, Corrupt: 0.1,
		}, seed)
		if err != nil {
			return false
		}
		cfg := DefaultConfig(fleet, acc, 20+rng.Float64()*100)
		cfg.MaxRounds = 50
		cfg.Faults = sampler
		cfg.RoundDeadline = deadline
		cfg.MaxRetries = 2
		cfg.RetryBackoff = 1
		cfg.FailurePayment = rng.Float64()
		cfg.MinQuorum = 2
		env, err := New(cfg)
		if err != nil {
			return false
		}
		if err := env.Reset(); err != nil {
			return false
		}
		steps := 0
		for !env.Done() {
			if _, err := env.Step(env.RandomPrices(rng)); err != nil {
				return false
			}
			steps++
			if steps > cfg.MaxRounds+1 {
				return false
			}
		}
		if env.Ledger().TotalSpent() > cfg.Budget+1e-9 || env.Ledger().Remaining() < -1e-9 {
			return false
		}
		for _, r := range env.Ledger().Rounds() {
			nCompleted := 0
			for _, o := range r.Outcomes {
				if o == market.OutcomeCompleted {
					nCompleted++
				}
			}
			if nCompleted != r.Completed {
				return false
			}
			if r.Completed+r.Failures() != r.Participants {
				return false
			}
			if deadline > 0 && r.RoundTime() > deadline+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
