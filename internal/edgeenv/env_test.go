package edgeenv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/accuracy"
	"chiron/internal/device"
)

func testEnv(t *testing.T, nodes int, budget float64) *Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	env, err := New(DefaultConfig(fleet, acc, budget))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return env
}

// fullPrices returns a price vector driving every node near its max.
func fullPrices(env *Env) []float64 {
	prices := make([]float64, env.NumNodes())
	for i, n := range env.Nodes() {
		prices[i] = n.PriceForFreq(n.FreqMax)
	}
	return prices
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(2))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rng, accuracy.PresetMNIST, 2)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	good := DefaultConfig(fleet, acc, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Accuracy = nil },
		func(c *Config) { c.Budget = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.TimeWeight = -1 },
		func(c *Config) { c.HistoryLen = 0 },
		func(c *Config) { c.MaxRounds = 0 },
	}
	for i, mutate := range mutations {
		bad := DefaultConfig(fleet, acc, 100)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestNormsArePositive(t *testing.T) {
	env := testEnv(t, 4, 100)
	fn, pn, tn := env.Norms()
	if fn <= 0 || pn <= 0 || tn <= 0 {
		t.Fatalf("Norms = %v, %v, %v, want all > 0", fn, pn, tn)
	}
}

func TestStepRequiresReset(t *testing.T) {
	env := testEnv(t, 2, 100)
	if _, err := env.Step([]float64{1e-9, 1e-9}); err == nil {
		t.Fatal("Step before Reset succeeded")
	}
}

func TestStepRejectsWrongPriceCount(t *testing.T) {
	env := testEnv(t, 3, 100)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := env.Step([]float64{1e-9}); err == nil {
		t.Fatal("Step accepted wrong price vector length")
	}
}

func TestStepAccountingAndRewards(t *testing.T) {
	env := testEnv(t, 3, 1000)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := fullPrices(env)
	res, err := env.Step(prices)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Done {
		t.Fatal("episode ended on the first affordable round")
	}
	if res.Round.Participants != 3 {
		t.Fatalf("participants %d, want 3", res.Round.Participants)
	}
	// Payment must match Σ p·ζ.
	var want float64
	for i := range prices {
		want += prices[i] * res.Round.Freqs[i]
	}
	if math.Abs(res.Round.Payment-want) > 1e-9 {
		t.Fatalf("payment %v, want %v", res.Round.Payment, want)
	}
	if math.Abs(env.Ledger().Remaining()-(1000-want)) > 1e-9 {
		t.Fatalf("remaining %v", env.Ledger().Remaining())
	}
	// Exterior reward = λΔA − w·T.
	cfg := env.Config()
	if res.ExteriorReward > cfg.Lambda || res.ExteriorReward < -cfg.TimeWeight*res.Round.RoundTime()-1 {
		t.Fatalf("exterior reward %v out of plausible range", res.ExteriorReward)
	}
	if res.InnerReward > 0 {
		t.Fatalf("inner reward %v, want <= 0", res.InnerReward)
	}
	if math.Abs(res.InnerReward+res.Round.IdleTime()) > 1e-9 {
		t.Fatalf("inner reward %v != -idle %v", res.InnerReward, -res.Round.IdleTime())
	}
}

func TestBudgetExhaustionDiscardsRound(t *testing.T) {
	env := testEnv(t, 3, 5) // tiny budget: first full-price round overruns
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := env.Step(fullPrices(env))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !res.Done {
		t.Fatal("overrunning round did not end the episode")
	}
	if env.Ledger().NumRounds() != 0 {
		t.Fatal("overrunning round was recorded")
	}
	if env.Ledger().Remaining() != 5 {
		t.Fatalf("budget charged for a discarded round: %v", env.Ledger().Remaining())
	}
	if !env.Done() {
		t.Fatal("env not marked done")
	}
	if _, err := env.Step(fullPrices(env)); err == nil {
		t.Fatal("Step on finished episode succeeded")
	}
}

func TestEpisodeTerminatesAtMaxRounds(t *testing.T) {
	env := testEnv(t, 2, 1e9) // effectively unlimited budget
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := fullPrices(env)
	steps := 0
	for !env.Done() {
		res, err := env.Step(prices)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		steps++
		if res.Done {
			if !res.Truncated {
				t.Fatal("round-cap termination not flagged Truncated")
			}
			break
		}
		if steps > env.Config().MaxRounds+1 {
			t.Fatal("episode exceeded MaxRounds")
		}
	}
	if steps != env.Config().MaxRounds {
		t.Fatalf("episode length %d, want MaxRounds %d", steps, env.Config().MaxRounds)
	}
}

func TestResetStartsFresh(t *testing.T) {
	env := testEnv(t, 2, 100)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if env.Ledger().NumRounds() != 0 || env.Round() != 1 {
		t.Fatal("Reset did not clear episode state")
	}
	if env.Ledger().Remaining() != env.Ledger().Budget() {
		t.Fatal("Reset did not restore the budget")
	}
}

func TestRandomPricesFeasible(t *testing.T) {
	env := testEnv(t, 5, 100)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		prices := env.RandomPrices(rng)
		if len(prices) != 5 {
			t.Fatalf("price count %d", len(prices))
		}
		var sum float64
		for _, p := range prices {
			if p < 0 {
				t.Fatalf("negative price %v", p)
			}
			sum += p
		}
		if sum > env.MaxTotalPrice()*1.0001 {
			t.Fatalf("total %v exceeds MaxTotalPrice %v", sum, env.MaxTotalPrice())
		}
	}
}

// Property: an episode driven by arbitrary nonnegative prices never drives
// the ledger negative and always terminates.
func TestEpisodeSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(3))
		if err != nil {
			return false
		}
		acc, err := accuracy.NewPresetCurve(rng, accuracy.PresetMNIST, 3)
		if err != nil {
			return false
		}
		cfg := DefaultConfig(fleet, acc, 20+rng.Float64()*100)
		cfg.MaxRounds = 50
		env, err := New(cfg)
		if err != nil {
			return false
		}
		if err := env.Reset(); err != nil {
			return false
		}
		steps := 0
		for !env.Done() {
			if _, err := env.Step(env.RandomPrices(rng)); err != nil {
				return false
			}
			steps++
			if steps > cfg.MaxRounds+1 {
				return false
			}
		}
		return env.Ledger().Remaining() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
