package nn

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mat"
)

func TestCrossEntropyUniformLogits(t *testing.T) {
	logits := mat.New(1, 4) // all-zero logits = uniform distribution
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{2})
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient: softmax − onehot = 0.25 everywhere except −0.75 at label.
	want := []float64{0.25, 0.25, -0.75, 0.25}
	for i, g := range grad.Row(0) {
		if math.Abs(g-want[i]) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", i, g, want[i])
		}
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := mat.New(5, 7)
	logits.Randomize(rng, 3)
	labels := []int{0, 6, 3, 2, 1}
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	for r := 0; r < grad.Rows(); r++ {
		var sum float64
		for _, g := range grad.Row(r) {
			sum += g
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d gradient sums to %v, want 0", r, sum)
		}
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	logits := mat.New(2, 3)
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 5}); err == nil {
		t.Fatal("accepted out-of-range label")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, -1}); err == nil {
		t.Fatal("accepted negative label")
	}
}

func TestCrossEntropyEmptyBatch(t *testing.T) {
	loss, grad, err := SoftmaxCrossEntropy(mat.New(0, 3), nil)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if loss != 0 || grad.Rows() != 0 {
		t.Fatalf("empty batch loss %v rows %d", loss, grad.Rows())
	}
}

func TestMSE(t *testing.T) {
	pred, _ := mat.NewFromData(1, 2, []float64{1, 3})
	target, _ := mat.NewFromData(1, 2, []float64{0, 0})
	loss, grad, err := MSE(pred, target)
	if err != nil {
		t.Fatalf("MSE: %v", err)
	}
	if math.Abs(loss-5) > 1e-12 { // (1+9)/2
		t.Fatalf("loss = %v, want 5", loss)
	}
	if math.Abs(grad.At(0, 0)-1) > 1e-12 || math.Abs(grad.At(0, 1)-3) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data())
	}
}

func TestMSEShapeError(t *testing.T) {
	if _, _, err := MSE(mat.New(1, 2), mat.New(2, 1)); err == nil {
		t.Fatal("MSE accepted mismatched shapes")
	}
}

func TestAccuracy(t *testing.T) {
	logits, _ := mat.NewFromData(3, 2, []float64{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	})
	acc, err := Accuracy(logits, []int{0, 1, 0})
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	if _, err := Accuracy(logits, []int{0}); err == nil {
		t.Fatal("Accuracy accepted mismatched labels")
	}
	empty, err := Accuracy(mat.New(0, 2), nil)
	if err != nil || empty != 0 {
		t.Fatalf("empty accuracy = %v, %v", empty, err)
	}
}
