package nn

import (
	"fmt"
	"math/rand"
)

// MNISTCNNParams is the trainable-parameter count of the paper's MNIST /
// Fashion-MNIST CNN (two 5×5 conv layers with 10 and 20 channels, each
// followed by 2×2 max pooling, then 320→50→10 dense layers).
const MNISTCNNParams = 21840

// LeNetParams is the trainable-parameter count of the paper's CIFAR-10
// LeNet (5×5 convs with 6 and 16 channels, 400→120→84→10 dense head).
const LeNetParams = 62006

// NewMNISTCNN builds the exact CNN the paper trains on MNIST and
// Fashion-MNIST: conv(1→10,5×5) → pool2 → relu → conv(10→20,5×5) → pool2 →
// relu → dense(320→50) → relu → dense(50→10), 21,840 parameters.
func NewMNISTCNN(rng *rand.Rand) (*Network, error) {
	in := Shape3{C: 1, H: 28, W: 28}
	conv1, err := NewConv2D(rng, in, 10, 5)
	if err != nil {
		return nil, fmt.Errorf("nn: mnist cnn conv1: %w", err)
	}
	pool1, err := NewMaxPool2D(conv1.OutShape(), 2)
	if err != nil {
		return nil, fmt.Errorf("nn: mnist cnn pool1: %w", err)
	}
	conv2, err := NewConv2D(rng, pool1.OutShape(), 20, 5)
	if err != nil {
		return nil, fmt.Errorf("nn: mnist cnn conv2: %w", err)
	}
	pool2, err := NewMaxPool2D(conv2.OutShape(), 2)
	if err != nil {
		return nil, fmt.Errorf("nn: mnist cnn pool2: %w", err)
	}
	flat := pool2.OutShape().Size()
	net := NewNetwork(
		conv1, pool1, NewActivate(ActReLU),
		conv2, pool2, NewActivate(ActReLU),
		NewDense(rng, flat, 50), NewActivate(ActReLU),
		NewDense(rng, 50, 10),
	)
	if got := net.NumParams(); got != MNISTCNNParams {
		return nil, fmt.Errorf("nn: mnist cnn has %d params, want %d", got, MNISTCNNParams)
	}
	return net, nil
}

// NewLeNet builds the paper's CIFAR-10 LeNet: conv(3→6,5×5) → pool2 → relu
// → conv(6→16,5×5) → pool2 → relu → dense(400→120) → relu → dense(120→84)
// → relu → dense(84→10), 62,006 parameters.
func NewLeNet(rng *rand.Rand) (*Network, error) {
	in := Shape3{C: 3, H: 32, W: 32}
	conv1, err := NewConv2D(rng, in, 6, 5)
	if err != nil {
		return nil, fmt.Errorf("nn: lenet conv1: %w", err)
	}
	pool1, err := NewMaxPool2D(conv1.OutShape(), 2)
	if err != nil {
		return nil, fmt.Errorf("nn: lenet pool1: %w", err)
	}
	conv2, err := NewConv2D(rng, pool1.OutShape(), 16, 5)
	if err != nil {
		return nil, fmt.Errorf("nn: lenet conv2: %w", err)
	}
	pool2, err := NewMaxPool2D(conv2.OutShape(), 2)
	if err != nil {
		return nil, fmt.Errorf("nn: lenet pool2: %w", err)
	}
	flat := pool2.OutShape().Size()
	net := NewNetwork(
		conv1, pool1, NewActivate(ActReLU),
		conv2, pool2, NewActivate(ActReLU),
		NewDense(rng, flat, 120), NewActivate(ActReLU),
		NewDense(rng, 120, 84), NewActivate(ActReLU),
		NewDense(rng, 84, 10),
	)
	if got := net.NumParams(); got != LeNetParams {
		return nil, fmt.Errorf("nn: lenet has %d params, want %d", got, LeNetParams)
	}
	return net, nil
}

// NewClassifierMLP builds a compact MLP classifier used with the downscaled
// synthetic datasets, where full 28×28 CNN training would dominate the DRL
// sweep wall-clock without changing the mechanism under study.
func NewClassifierMLP(rng *rand.Rand, inputDim, hidden, classes int) (*Network, error) {
	return NewMLP(rng, ActReLU, inputDim, hidden, classes)
}
