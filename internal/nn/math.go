package nn

import "math"

func mathTanh(v float64) float64 { return math.Tanh(v) }

func sqrt(v float64) float64 { return math.Sqrt(v) }

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}
