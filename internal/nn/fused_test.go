package nn_test

// Fused-path pins. The float64 fused plan claims bit-identity with layered
// execution, so these tests compare it against running the same layer
// objects one by one — exact equality, no tolerances. The float32 plan
// claims tolerance-equivalence with the float64 reference, so its checks go
// through mat.Float32Backend.Within and a loosened numeric gradient check.
// Every comparison runs twice (fresh workspaces, then recycled) and again
// under a 4-worker kernel pool.

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mat"
	"chiron/internal/nn"
)

// layeredForwardBackward runs the network's layers one by one, bypassing the
// fused plan, and returns a copy of the output and the flattened gradients.
func layeredForwardBackward(t *testing.T, net *nn.Network, x, grad *mat.Matrix) (*mat.Matrix, []float64) {
	t.Helper()
	cur := x
	var err error
	for i, l := range net.Layers() {
		if cur, err = l.Forward(cur); err != nil {
			t.Fatalf("layer %d forward: %v", i, err)
		}
	}
	out := cur.Clone()
	net.ZeroGrad()
	g := grad
	layers := net.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		if g, err = layers[i].Backward(g); err != nil {
			t.Fatalf("layer %d backward: %v", i, err)
		}
	}
	return out, net.FlattenGrads()
}

// TestFusedVsLayeredBitIdentical pins the fused plan's core claim: forward
// outputs and parameter gradients are bit-for-bit equal to layered
// execution over the same layer objects.
func TestFusedVsLayeredBitIdentical(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh, nn.ActSigmoid} {
		rng := rand.New(rand.NewSource(31))
		net, err := nn.NewMLP(rng, act, 6, 8, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		fused := net.Fused()
		if fused == nil {
			t.Fatal("MLP stack did not fuse")
		}
		x := mat.New(7, 6)
		x.Randomize(rng, 1)
		grad := mat.New(7, 3)
		grad.Randomize(rng, 1)

		for pass := 0; pass < 2; pass++ { // fresh workspaces, then recycled
			wantY, wantG := layeredForwardBackward(t, net, x, grad)
			gotY, err := fused.Forward(x)
			if err != nil {
				t.Fatalf("act %v pass %d: fused forward: %v", act, pass, err)
			}
			for i, w := range wantY.Data() {
				if gotY.Data()[i] != w {
					t.Fatalf("act %v pass %d: output[%d] fused %v layered %v", act, pass, i, gotY.Data()[i], w)
				}
			}
			net.ZeroGrad()
			if _, err := fused.Backward(grad, true); err != nil {
				t.Fatalf("act %v pass %d: fused backward: %v", act, pass, err)
			}
			for i, w := range wantG {
				if g := net.FlattenGrads()[i]; g != w {
					t.Fatalf("act %v pass %d: grad[%d] fused %v layered %v", act, pass, i, g, w)
				}
			}
		}
	}
}

// TestFusedBackwardParamsOnlyMatchesFull pins that skipping the first
// unit's input-gradient GEMM changes nothing observable: parameter
// gradients are bit-identical to the full backward pass.
func TestFusedBackwardParamsOnlyMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	net, err := nn.NewMLP(rng, nn.ActTanh, 5, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(6, 5)
	x.Randomize(rng, 1)
	grad := mat.New(6, 4)
	grad.Randomize(rng, 1)

	for pass := 0; pass < 2; pass++ {
		if _, err := net.Forward(x); err != nil {
			t.Fatal(err)
		}
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		want := net.FlattenGrads()
		net.ZeroGrad()
		if err := net.BackwardParamsOnly(grad); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if g := net.FlattenGrads()[i]; g != w {
				t.Fatalf("pass %d: grad[%d] params-only %v full %v", pass, i, g, w)
			}
		}
	}
}

// TestConvBackwardParamsOnlyMatchesFull pins the same claim for the Conv2D
// first-layer skip used by the MNIST CNN.
func TestConvBackwardParamsOnlyMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	shape := nn.Shape3{C: 1, H: 8, W: 8}
	conv, err := nn.NewConv2D(rng, shape, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	dense := nn.NewDense(rng, conv.OutShape().Size(), 4)
	net := nn.NewNetwork(conv, nn.NewActivate(nn.ActTanh), dense)
	x := mat.New(3, shape.Size())
	x.Randomize(rng, 1)
	grad := mat.New(3, 4)
	grad.Randomize(rng, 1)

	for pass := 0; pass < 2; pass++ {
		if _, err := net.Forward(x); err != nil {
			t.Fatal(err)
		}
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		want := net.FlattenGrads()
		if _, err := net.Forward(x); err != nil {
			t.Fatal(err)
		}
		net.ZeroGrad()
		if err := net.BackwardParamsOnly(grad); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if g := net.FlattenGrads()[i]; g != w {
				t.Fatalf("pass %d: grad[%d] params-only %v full %v", pass, i, g, w)
			}
		}
	}
}

// TestFusedVsLayeredParallelWorkers repeats the bit-identity pin under a
// 4-worker kernel pool: row banding must not open any fused/layered gap.
func TestFusedVsLayeredParallelWorkers(t *testing.T) {
	mat.SetWorkers(4)
	defer mat.SetWorkers(0)
	rng := rand.New(rand.NewSource(34))
	net, err := nn.NewMLP(rng, nn.ActTanh, 16, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(24, 16)
	x.Randomize(rng, 1)
	grad := mat.New(24, 8)
	grad.Randomize(rng, 1)
	for pass := 0; pass < 2; pass++ {
		wantY, wantG := layeredForwardBackward(t, net, x, grad)
		gotY, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range wantY.Data() {
			if gotY.Data()[i] != w {
				t.Fatalf("pass %d: output[%d] fused %v layered %v", pass, i, gotY.Data()[i], w)
			}
		}
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		for i, w := range wantG {
			if g := net.FlattenGrads()[i]; g != w {
				t.Fatalf("pass %d: grad[%d] fused %v layered %v", pass, i, g, w)
			}
		}
	}
}

// fused32Loss forwards the float32 plan and evaluates softmax cross-entropy
// on the widened logits, the scalar objective for the float32 gradcheck.
func fused32Loss(t *testing.T, f *nn.FusedMLP32, x *mat.Matrix32, labels []int) (float64, *mat.Matrix) {
	t.Helper()
	out, err := f.Forward(x)
	if err != nil {
		t.Fatalf("fused32 forward: %v", err)
	}
	logits := mat.New(out.Rows(), out.Cols())
	for i, v := range out.Data() {
		logits.Data()[i] = float64(v)
	}
	loss, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	_ = loss
	l, err := nn.SoftmaxCrossEntropyTo(grad, logits, labels, make([]float64, logits.Cols()))
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	return l, grad
}

// numericVsBackprop32 is the float32 gradient check: analytic gradients from
// the fused32 backward pass against central differences of the widened
// loss, with tolerances loosened for single-precision arithmetic. eps is
// the finite-difference step: large enough to clear the float32 rounding
// noise floor, but for ReLU networks small enough that the step rarely
// crosses an activation kink (where central differences are simply wrong).
func numericVsBackprop32(t *testing.T, f *nn.FusedMLP32, x *mat.Matrix32, labels []int, eps float64) {
	t.Helper()
	_, grad := fused32Loss(t, f, x, labels)
	grad32 := mat.New32(grad.Rows(), grad.Cols())
	if err := grad32.SetFrom(grad); err != nil {
		t.Fatal(err)
	}
	f.ZeroGrad()
	if _, err := f.Backward(grad32, false); err != nil {
		t.Fatalf("fused32 backward: %v", err)
	}

	// Noise floor: widened-loss values carry ~1e-6 relative float32 error,
	// so the difference quotient carries ~1e-6/eps absolute error — covered
	// by the 2e-3 absolute term for every eps used here.
	for pi, p := range f.Params32() {
		data := p.Value.Data()
		gd := p.Grad.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + float32(eps)
			lp, _ := fused32Loss(t, f, x, labels)
			data[i] = orig - float32(eps)
			lm, _ := fused32Loss(t, f, x, labels)
			data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(gd[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Abs(numeric) + math.Abs(analytic)
			if diff > 2e-3+1e-2*scale {
				// Before failing, test for a ReLU kink inside the stencil: a
				// kink at distance t from the center skews the quotient by
				// |Δslope|·(eps−t)/(2eps), which is exactly the second
				// difference over 2eps. When that term explains most of the
				// disagreement the stencil is straddling a kink — central
				// differences are simply wrong there — so skip. A genuine
				// backprop bug leaves the second difference near zero and
				// still fails.
				l0, _ := fused32Loss(t, f, x, labels)
				if math.Abs(lp+lm-2*l0)/(2*eps) > 0.5*diff {
					continue
				}
				t.Fatalf("param %d[%d]: numeric %v vs backprop %v (diff %v)", pi, i, numeric, analytic, diff)
			}
		}
	}
}

func TestGradCheckFused32(t *testing.T) {
	for _, tc := range []struct {
		name string
		act  nn.Activation
		eps  float64
	}{
		{"relu", nn.ActReLU, 1e-3},
		{"tanh", nn.ActTanh, 1e-2},
		{"sigmoid", nn.ActSigmoid, 1e-2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(35))
			net, err := nn.NewMLP(rng, tc.act, 4, 6, 3)
			if err != nil {
				t.Fatal(err)
			}
			f32, ok := nn.Fuse32(net)
			if !ok {
				t.Fatal("MLP stack did not fuse")
			}
			x64 := mat.New(5, 4)
			x64.Randomize(rng, 1)
			x, err := f32.Stage(x64)
			if err != nil {
				t.Fatal(err)
			}
			labels := []int{0, 1, 2, 0, 1}
			// First pass exercises fresh buffers, second the recycled ones.
			numericVsBackprop32(t, f32, x, labels, tc.eps)
			numericVsBackprop32(t, f32, x, labels, tc.eps)
		})
	}
}

func TestGradCheckFused32ParallelWorkers(t *testing.T) {
	mat.SetWorkers(4)
	defer mat.SetWorkers(0)
	rng := rand.New(rand.NewSource(36))
	net, err := nn.NewMLP(rng, nn.ActTanh, 6, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	f32, ok := nn.Fuse32(net)
	if !ok {
		t.Fatal("MLP stack did not fuse")
	}
	x64 := mat.New(7, 6)
	x64.Randomize(rng, 1)
	x, err := f32.Stage(x64)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 2, 3, 0, 1, 2}
	numericVsBackprop32(t, f32, x, labels, 1e-2)
	numericVsBackprop32(t, f32, x, labels, 1e-2)
}

// TestFused32WithinToleranceOfFloat64 pins the backend contract: float32
// forward outputs stay within mat.Float32Backend.Within of the float64
// reference, including after the float64 side trains and Refresh re-syncs.
func TestFused32WithinToleranceOfFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net, err := nn.NewMLP(rng, nn.ActTanh, 8, 16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	f32, ok := nn.Fuse32(net)
	if !ok {
		t.Fatal("MLP stack did not fuse")
	}
	backend := f32.Backend()
	x := mat.New(10, 8)

	check := func(round int) {
		t.Helper()
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		x32, err := f32.Stage(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f32.Forward(x32)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want.Data() {
			if g := float64(got.Data()[i]); !backend.Within(g, w) {
				t.Fatalf("round %d: output[%d] float32 %v vs float64 %v exceeds %+v", round, i, g, w, backend)
			}
		}
	}

	opt := nn.NewSGD(net.Params(), 0.05, 0)
	grad := mat.New(10, 4)
	for round := 0; round < 3; round++ {
		x.Randomize(rng, 1)
		check(round)
		// Train the float64 side a step, re-sync, and check again.
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nn.SoftmaxCrossEntropyTo(grad, out, []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}, make([]float64, 4)); err != nil {
			t.Fatal(err)
		}
		net.ZeroGrad()
		if err := net.BackwardParamsOnly(grad); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(); err != nil {
			t.Fatal(err)
		}
		f32.Refresh()
		check(round)
	}
}
