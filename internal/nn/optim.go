package nn

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// Optimizer applies accumulated gradients to a set of parameters.
type Optimizer interface {
	// Step applies one update using the current gradients. It does not
	// clear gradients; call Network.ZeroGrad between steps.
	Step() error
	// SetLR changes the learning rate (used by decay schedules).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with optional momentum, the
// optimizer the paper's edge nodes use for local training.
type SGD struct {
	params   []Param
	lr       float64
	momentum float64
	velocity []*mat.Matrix
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer over params. momentum of 0 disables the
// velocity term.
func NewSGD(params []Param, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([]*mat.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = mat.New(p.Value.Rows(), p.Value.Cols())
		}
	}
	return s
}

// Reset zeroes the momentum state, as if the optimizer were freshly
// constructed. Federated clients reuse one optimizer across rounds and call
// Reset at each round start, matching the semantics of a per-round fresh
// optimizer without reallocating the velocity buffers.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// Step implements Optimizer.
func (s *SGD) Step() error {
	for i, p := range s.params {
		if s.momentum == 0 {
			if err := p.Value.AddScaled(p.Grad, -s.lr); err != nil {
				return fmt.Errorf("nn: sgd step: %w", err)
			}
			continue
		}
		v := s.velocity[i]
		v.Scale(s.momentum)
		if err := v.AddScaled(p.Grad, 1); err != nil {
			return fmt.Errorf("nn: sgd momentum: %w", err)
		}
		if err := p.Value.AddScaled(v, -s.lr); err != nil {
			return fmt.Errorf("nn: sgd step: %w", err)
		}
	}
	return nil
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam implements the Adam optimizer used for the PPO actor and critic
// networks.
type Adam struct {
	params []Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   []*mat.Matrix
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(params []Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*mat.Matrix, len(params))
	a.v = make([]*mat.Matrix, len(params))
	for i, p := range params {
		a.m[i] = mat.New(p.Value.Rows(), p.Value.Cols())
		a.v[i] = mat.New(p.Value.Rows(), p.Value.Cols())
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() error {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	// Hoist every field read out of the element loop: the compiler cannot
	// prove the moment-buffer writes don't alias the receiver, so without
	// locals it reloads beta/lr/eps on each iteration of the hot loop.
	b1, b2 := a.beta1, a.beta2
	c1, c2 := 1-a.beta1, 1-a.beta2
	lr, eps := a.lr, a.eps
	for i, p := range a.params {
		md, vd := a.m[i].Data(), a.v[i].Data()
		gd, pd := p.Grad.Data(), p.Value.Data()
		if len(gd) != len(md) {
			return fmt.Errorf("nn: adam step: param %d grad size %d state size %d", i, len(gd), len(md))
		}
		for j, g := range gd {
			m := b1*md[j] + c1*g
			v := b2*vd[j] + c2*g*g
			md[j] = m
			vd[j] = v
			mhat := m / bc1
			vhat := v / bc2
			pd[j] -= lr * mhat / (math.Sqrt(vhat) + eps)
		}
	}
	return nil
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// State returns a deep copy of the optimizer's moment estimates and step
// count, for exact-resume checkpointing.
func (a *Adam) State() (t int, m, v [][]float64) {
	m = make([][]float64, len(a.m))
	v = make([][]float64, len(a.v))
	for i := range a.m {
		m[i] = append([]float64(nil), a.m[i].Data()...)
		v[i] = append([]float64(nil), a.v[i].Data()...)
	}
	return a.t, m, v
}

// SetState overwrites the optimizer's moment estimates and step count from
// a State() capture taken on an identically shaped parameter set.
func (a *Adam) SetState(t int, m, v [][]float64) error {
	if t < 0 {
		return fmt.Errorf("nn: adam state step %d, want >= 0", t)
	}
	if len(m) != len(a.m) || len(v) != len(a.v) {
		return fmt.Errorf("nn: adam state has %d/%d tensors, want %d", len(m), len(v), len(a.m))
	}
	for i := range a.m {
		if len(m[i]) != a.m[i].Size() || len(v[i]) != a.v[i].Size() {
			return fmt.Errorf("nn: adam state tensor %d has %d/%d values, want %d", i, len(m[i]), len(v[i]), a.m[i].Size())
		}
	}
	a.t = t
	for i := range a.m {
		copy(a.m[i].Data(), m[i])
		copy(a.v[i].Data(), v[i])
	}
	return nil
}

// ExpDecay multiplies the optimizer learning rate by factor every interval
// steps, the paper's "decays by 95% every 20 episodes" schedule.
type ExpDecay struct {
	opt      Optimizer
	factor   float64
	interval int
	count    int
}

// NewExpDecay wraps opt with an exponential decay schedule. interval must
// be positive; factor is the multiplier applied at each boundary.
func NewExpDecay(opt Optimizer, factor float64, interval int) (*ExpDecay, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("nn: exp decay interval %d, want > 0", interval)
	}
	return &ExpDecay{opt: opt, factor: factor, interval: interval}, nil
}

// Tick advances the schedule by one unit (an episode, in Chiron's usage)
// and applies the decay when a boundary is crossed. It returns the learning
// rate in force after the tick.
func (e *ExpDecay) Tick() float64 {
	e.count++
	if e.count%e.interval == 0 {
		e.opt.SetLR(e.opt.LR() * e.factor)
	}
	return e.opt.LR()
}
