package nn

import (
	"fmt"
	"math/rand"

	"chiron/internal/mat"
)

// Dropout randomly zeroes activations during training with probability
// Rate, scaling survivors by 1/(1−Rate) (inverted dropout) so evaluation
// needs no rescaling. Call SetTraining(false) for deterministic inference.
type Dropout struct {
	rate     float64
	rng      *rand.Rand
	training bool
	lastMask *mat.Matrix
	y, dx    *mat.Matrix
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with the given drop probability in
// [0,1). The layer starts in training mode.
func NewDropout(rng *rand.Rand, rate float64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %v outside [0,1)", rate)
	}
	return &Dropout{rate: rate, rng: rng, training: true}, nil
}

// SetTraining toggles between stochastic (training) and identity
// (evaluation) behaviour.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Training reports the current mode.
func (d *Dropout) Training() bool { return d.training }

// Forward implements Layer.
func (d *Dropout) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	if !d.training || d.rate == 0 {
		d.lastMask = nil
		return x, nil
	}
	keep := 1 - d.rate
	scale := 1 / keep
	mask := ensureMat(d.lastMask, x.Rows(), x.Cols())
	d.y = ensureMat(d.y, x.Rows(), x.Cols())
	y := d.y
	md, yd, xd := mask.Data(), y.Data(), x.Data()
	for i := range xd {
		if d.rng.Float64() < keep {
			md[i] = scale
			yd[i] = xd[i] * scale
		} else {
			md[i] = 0
			yd[i] = 0
		}
	}
	d.lastMask = mask
	return y, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	if d.lastMask == nil {
		return grad, nil
	}
	if grad.Rows() != d.lastMask.Rows() || grad.Cols() != d.lastMask.Cols() {
		return nil, fmt.Errorf("nn: dropout backward: grad %dx%d mask %dx%d",
			grad.Rows(), grad.Cols(), d.lastMask.Rows(), d.lastMask.Cols())
	}
	d.dx = ensureMat(d.dx, grad.Rows(), grad.Cols())
	dx := d.dx
	md, gd, xd := d.lastMask.Data(), grad.Data(), dx.Data()
	for i := range xd {
		xd[i] = gd[i] * md[i]
	}
	return dx, nil
}

// Params implements Layer.
func (d *Dropout) Params() []Param { return nil }

// SetTrainingMode walks a network and switches every mode-aware layer
// (currently Dropout) between training and evaluation behaviour.
func SetTrainingMode(n *Network, training bool) {
	for _, l := range n.Layers() {
		if d, ok := l.(*Dropout); ok {
			d.SetTraining(training)
		}
	}
}
