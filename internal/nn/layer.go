// Package nn is a from-scratch neural-network library built for the Chiron
// reproduction. It provides the dense and convolutional layers, losses, and
// optimizers needed both by the federated-learning workload models (the
// paper's MNIST CNN and LeNet) and by the PPO actor/critic networks of the
// hierarchical reinforcement mechanism.
//
// Design: layers implement forward/backward over mini-batches stored as
// row-major mat.Matrix values (one sample per row). Parameters are exposed
// as (param, grad) pairs so that optimizers and the FedAvg parameter-vector
// codec can treat every model uniformly.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
)

// Param couples a trainable tensor with its gradient accumulator.
type Param struct {
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// Layer is a differentiable computation over a batch of samples.
//
// Layers run on the destination-passing compute path: the matrices returned
// by Forward and Backward are owned by the layer and recycled on its next
// Forward/Backward call. Callers that need a result to survive past the next
// pass must copy it (Clone, CopyData, CopyRow).
type Layer interface {
	// Forward consumes a batch (one sample per row) and returns the layer
	// output. Implementations may retain the input for the backward pass
	// and reuse the returned matrix on subsequent calls.
	Forward(x *mat.Matrix) (*mat.Matrix, error)
	// Backward consumes the gradient of the loss with respect to the layer
	// output and returns the gradient with respect to the layer input,
	// accumulating parameter gradients along the way. The returned matrix
	// is reused on subsequent calls.
	Backward(grad *mat.Matrix) (*mat.Matrix, error)
	// Params returns the trainable parameters, or nil for stateless layers.
	Params() []Param
}

// Dense is a fully connected layer computing y = x·W + b.
type Dense struct {
	in, out int
	w, b    Param
	lastX   *mat.Matrix
	// Recycled buffers: output, input gradient, dW scratch, bias sums.
	y, dx, dw *mat.Matrix
	sums      []float64
}

var _ Layer = (*Dense)(nil)

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		in:  in,
		out: out,
		w:   Param{Value: mat.New(in, out), Grad: mat.New(in, out)},
		b:   Param{Value: mat.New(1, out), Grad: mat.New(1, out)},
	}
	d.w.Value.XavierInit(rng, in, out)
	return d
}

// In reports the input width.
func (d *Dense) In() int { return d.in }

// Out reports the output width.
func (d *Dense) Out() int { return d.out }

// Forward implements Layer.
func (d *Dense) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != d.in {
		return nil, fmt.Errorf("nn: dense forward: input width %d, want %d", x.Cols(), d.in)
	}
	d.lastX = x
	d.y = ensureMat(d.y, x.Rows(), d.out)
	if err := mat.MulTo(d.y, x, d.w.Value); err != nil {
		return nil, fmt.Errorf("nn: dense forward: %w", err)
	}
	if err := mat.AddRowVector(d.y, d.b.Value.Row(0)); err != nil {
		return nil, fmt.Errorf("nn: dense forward bias: %w", err)
	}
	return d.y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("nn: dense backward before forward")
	}
	// dW += xᵀ·grad
	d.dw = ensureMat(d.dw, d.in, d.out)
	if err := mat.MulTransATo(d.dw, d.lastX, grad); err != nil {
		return nil, fmt.Errorf("nn: dense backward dW: %w", err)
	}
	if err := d.w.Grad.AddScaled(d.dw, 1); err != nil {
		return nil, fmt.Errorf("nn: dense backward accumulate dW: %w", err)
	}
	// db += column sums of grad
	bias := d.b.Grad.Row(0)
	d.sums = ensureVec(d.sums, d.out)
	if err := grad.SumRowsTo(d.sums); err != nil {
		return nil, fmt.Errorf("nn: dense backward db: %w", err)
	}
	for i, v := range d.sums {
		bias[i] += v
	}
	// dx = grad·Wᵀ
	d.dx = ensureMat(d.dx, grad.Rows(), d.in)
	if err := mat.MulTransBTo(d.dx, grad, d.w.Value); err != nil {
		return nil, fmt.Errorf("nn: dense backward dx: %w", err)
	}
	return d.dx, nil
}

// Params implements Layer.
func (d *Dense) Params() []Param { return []Param{d.w, d.b} }

// Activation identifies an elementwise nonlinearity.
type Activation int

// Supported activations. Enums start at one so the zero value is invalid.
const (
	ActReLU Activation = iota + 1
	ActTanh
	ActSigmoid
	ActIdentity
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	case ActIdentity:
		return "identity"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// Activate is an elementwise activation layer.
type Activate struct {
	kind  Activation
	lastY *mat.Matrix
	dx    *mat.Matrix
}

var _ Layer = (*Activate)(nil)

// NewActivate returns an activation layer of the given kind.
func NewActivate(kind Activation) *Activate { return &Activate{kind: kind} }

// Forward implements Layer.
func (a *Activate) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	y := ensureMat(a.lastY, x.Rows(), x.Cols())
	var err error
	switch a.kind {
	case ActReLU:
		err = mat.ApplyTo(y, x, relu)
	case ActTanh:
		err = mat.ApplyTo(y, x, tanh)
	case ActSigmoid:
		err = mat.ApplyTo(y, x, mat.Sigmoid)
	case ActIdentity:
		err = y.CopyFrom(x)
	default:
		return nil, fmt.Errorf("nn: unknown activation %v", a.kind)
	}
	if err != nil {
		return nil, fmt.Errorf("nn: activation forward: %w", err)
	}
	a.lastY = y
	return y, nil
}

// Backward implements Layer.
func (a *Activate) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	if a.lastY == nil {
		return nil, fmt.Errorf("nn: activation backward before forward")
	}
	a.dx = ensureMat(a.dx, grad.Rows(), grad.Cols())
	dx := a.dx
	if err := dx.CopyFrom(grad); err != nil {
		return nil, fmt.Errorf("nn: activation backward: %w", err)
	}
	yd := a.lastY.Data()
	xd := dx.Data()
	switch a.kind {
	case ActReLU:
		for i := range xd {
			if yd[i] <= 0 {
				xd[i] = 0
			}
		}
	case ActTanh:
		for i := range xd {
			xd[i] *= 1 - yd[i]*yd[i]
		}
	case ActSigmoid:
		for i := range xd {
			xd[i] *= yd[i] * (1 - yd[i])
		}
	case ActIdentity:
	default:
		return nil, fmt.Errorf("nn: unknown activation %v", a.kind)
	}
	return dx, nil
}

// Params implements Layer.
func (a *Activate) Params() []Param { return nil }

func tanh(v float64) float64 {
	// math.Tanh is accurate and fast enough for our layer sizes.
	return math.Tanh(v)
}

func relu(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
