package nn

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mat"
)

// numericGradCheck compares the analytic parameter gradients of a network
// against central finite differences of a scalar loss.
func numericGradCheck(t *testing.T, net *Network, x *mat.Matrix, labels []int, tol float64) {
	t.Helper()
	loss := func() float64 {
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		l, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return l
	}
	// Analytic gradients.
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	net.ZeroGrad()
	if _, err := net.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	const eps = 1e-5
	for pi, p := range net.Params() {
		data := p.Value.Data()
		gd := p.Grad.Data()
		// Check a subset of coordinates to keep the test fast.
		step := len(data)/7 + 1
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + eps
			up := loss()
			data[i] = orig - eps
			down := loss()
			data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-gd[i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d coord %d: analytic %v numeric %v", pi, i, gd[i], numeric)
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewMLP(rng, ActTanh, 6, 5, 3)
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	x := mat.New(4, 6)
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2, 1}
	numericGradCheck(t, net, x, labels, 1e-4)
}

func TestReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := NewMLP(rng, ActReLU, 5, 8, 3)
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	x := mat.New(3, 5)
	x.Randomize(rng, 1)
	numericGradCheck(t, net, x, []int{2, 0, 1}, 1e-4)
}

func TestSigmoidGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(
		NewDense(rng, 4, 6),
		NewActivate(ActSigmoid),
		NewDense(rng, 6, 2),
	)
	x := mat.New(3, 4)
	x.Randomize(rng, 1)
	numericGradCheck(t, net, x, []int{0, 1, 0}, 1e-4)
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv, err := NewConv2D(rng, Shape3{C: 1, H: 6, W: 6}, 2, 3)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	pool, err := NewMaxPool2D(conv.OutShape(), 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	net := NewNetwork(conv, pool, NewActivate(ActReLU), NewDense(rng, pool.OutShape().Size(), 3))
	x := mat.New(2, 36)
	x.Randomize(rng, 1)
	numericGradCheck(t, net, x, []int{1, 2}, 1e-3)
}

func TestDenseForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 3, 2)
	if d.In() != 3 || d.Out() != 2 {
		t.Fatalf("dims %d/%d", d.In(), d.Out())
	}
	x := mat.New(4, 3)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if y.Rows() != 4 || y.Cols() != 2 {
		t.Fatalf("output %dx%d", y.Rows(), y.Cols())
	}
	if _, err := d.Forward(mat.New(1, 5)); err == nil {
		t.Fatal("Forward accepted wrong width")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDense(rng, 2, 2)
	if _, err := d.Backward(mat.New(1, 2)); err == nil {
		t.Fatal("Dense.Backward before Forward should error")
	}
	a := NewActivate(ActReLU)
	if _, err := a.Backward(mat.New(1, 2)); err == nil {
		t.Fatal("Activate.Backward before Forward should error")
	}
}

func TestActivationString(t *testing.T) {
	cases := map[Activation]string{
		ActReLU: "relu", ActTanh: "tanh", ActSigmoid: "sigmoid", ActIdentity: "identity",
	}
	for act, want := range cases {
		if act.String() != want {
			t.Fatalf("%d.String() = %q, want %q", act, act.String(), want)
		}
	}
}

func TestReLUForward(t *testing.T) {
	a := NewActivate(ActReLU)
	x, _ := mat.NewFromData(1, 3, []float64{-1, 0, 2})
	y, err := a.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float64{0, 0, 2}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("relu[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Input must not be mutated.
	if x.At(0, 0) != -1 {
		t.Fatal("activation mutated its input")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	pool, err := NewMaxPool2D(Shape3{C: 1, H: 2, W: 2}, 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	x, _ := mat.NewFromData(1, 4, []float64{1, 5, 3, 2})
	y, err := pool.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if y.Cols() != 1 || y.At(0, 0) != 5 {
		t.Fatalf("maxpool output %v", y.Data())
	}
	grad, _ := mat.NewFromData(1, 1, []float64{7})
	dx, err := pool.Backward(grad)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	want := []float64{0, 7, 0, 0}
	for i, v := range dx.Data() {
		if v != want[i] {
			t.Fatalf("maxpool grad[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMaxPoolRejectsIndivisible(t *testing.T) {
	if _, err := NewMaxPool2D(Shape3{C: 1, H: 3, W: 4}, 2); err == nil {
		t.Fatal("NewMaxPool2D accepted indivisible height")
	}
}

func TestConvRejectsSmallInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewConv2D(rng, Shape3{C: 1, H: 2, W: 2}, 1, 3); err == nil {
		t.Fatal("NewConv2D accepted input smaller than kernel")
	}
}

func TestConvKnownValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv, err := NewConv2D(rng, Shape3{C: 1, H: 3, W: 3}, 1, 3)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	// Set kernel to all ones and bias to 0.5: output = sum(input) + 0.5.
	conv.w.Value.Fill(1)
	conv.b.Value.Fill(0.5)
	x, _ := mat.NewFromData(1, 9, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	y, err := conv.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if y.Size() != 1 || math.Abs(y.At(0, 0)-45.5) > 1e-12 {
		t.Fatalf("conv output = %v, want 45.5", y.Data())
	}
}
