package nn

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss for a
// batch of logits (one sample per row) against integer class labels, along
// with the gradient of the loss with respect to the logits.
//
// The gradient is already divided by the batch size, so callers can feed it
// straight into Network.Backward. It is the allocating wrapper over
// SoftmaxCrossEntropyTo.
func SoftmaxCrossEntropy(logits *mat.Matrix, labels []int) (loss float64, grad *mat.Matrix, err error) {
	grad = mat.New(logits.Rows(), logits.Cols())
	loss, err = SoftmaxCrossEntropyTo(grad, logits, labels, nil)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// SoftmaxCrossEntropyTo is the destination-passing form of
// SoftmaxCrossEntropy: the gradient is written into grad (same shape as
// logits) and probs, when non-nil, supplies a length-Cols scratch slice so
// steady-state training loops allocate nothing.
func SoftmaxCrossEntropyTo(grad, logits *mat.Matrix, labels []int, probs []float64) (loss float64, err error) {
	n := logits.Rows()
	if n != len(labels) {
		return 0, fmt.Errorf("nn: cross-entropy: %d rows, %d labels", n, len(labels))
	}
	if grad == nil || grad.Rows() != n || grad.Cols() != logits.Cols() {
		return 0, fmt.Errorf("nn: cross-entropy: grad buffer does not match %dx%d logits", n, logits.Cols())
	}
	if n == 0 {
		return 0, nil
	}
	classes := logits.Cols()
	if len(probs) != classes {
		probs = make([]float64, classes)
	}
	inv := 1 / float64(n)
	for r := 0; r < n; r++ {
		y := labels[r]
		if y < 0 || y >= classes {
			return 0, fmt.Errorf("nn: cross-entropy: label %d out of range [0,%d)", y, classes)
		}
		row := logits.Row(r)
		if _, err := mat.Softmax(probs, row); err != nil {
			return 0, fmt.Errorf("nn: cross-entropy softmax: %w", err)
		}
		p := probs[y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		g := grad.Row(r)
		for c := 0; c < classes; c++ {
			g[c] = probs[c] * inv
		}
		g[y] -= inv
	}
	return loss * inv, nil
}

// MSE computes the mean squared error between pred and target along with
// the gradient with respect to pred (already divided by the element count).
// It is the allocating wrapper over MSETo.
func MSE(pred, target *mat.Matrix) (loss float64, grad *mat.Matrix, err error) {
	grad = mat.New(pred.Rows(), pred.Cols())
	loss, err = MSETo(grad, pred, target)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// MSETo is the destination-passing form of MSE: the gradient is written
// into grad, which must match pred's shape.
func MSETo(grad, pred, target *mat.Matrix) (loss float64, err error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, fmt.Errorf("nn: mse: pred %dx%d target %dx%d",
			pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	if grad == nil || grad.Rows() != pred.Rows() || grad.Cols() != pred.Cols() {
		return 0, fmt.Errorf("nn: mse: grad buffer does not match %dx%d pred", pred.Rows(), pred.Cols())
	}
	n := pred.Size()
	if n == 0 {
		return 0, nil
	}
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1 / float64(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, nil
}

// Accuracy reports the fraction of rows of logits whose argmax matches the
// corresponding label.
func Accuracy(logits *mat.Matrix, labels []int) (float64, error) {
	n := logits.Rows()
	if n != len(labels) {
		return 0, fmt.Errorf("nn: accuracy: %d rows, %d labels", n, len(labels))
	}
	if n == 0 {
		return 0, nil
	}
	var correct int
	for r := 0; r < n; r++ {
		_, idx := mat.MaxVec(logits.Row(r))
		if idx == labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}
