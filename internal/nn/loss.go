package nn

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss for a
// batch of logits (one sample per row) against integer class labels, along
// with the gradient of the loss with respect to the logits.
//
// The gradient is already divided by the batch size, so callers can feed it
// straight into Network.Backward.
func SoftmaxCrossEntropy(logits *mat.Matrix, labels []int) (loss float64, grad *mat.Matrix, err error) {
	n := logits.Rows()
	if n != len(labels) {
		return 0, nil, fmt.Errorf("nn: cross-entropy: %d rows, %d labels", n, len(labels))
	}
	if n == 0 {
		return 0, mat.New(0, logits.Cols()), nil
	}
	classes := logits.Cols()
	grad = mat.New(n, classes)
	probs := make([]float64, classes)
	inv := 1 / float64(n)
	for r := 0; r < n; r++ {
		y := labels[r]
		if y < 0 || y >= classes {
			return 0, nil, fmt.Errorf("nn: cross-entropy: label %d out of range [0,%d)", y, classes)
		}
		row := logits.Row(r)
		if _, err := mat.Softmax(probs, row); err != nil {
			return 0, nil, fmt.Errorf("nn: cross-entropy softmax: %w", err)
		}
		p := probs[y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		g := grad.Row(r)
		for c := 0; c < classes; c++ {
			g[c] = probs[c] * inv
		}
		g[y] -= inv
	}
	return loss * inv, grad, nil
}

// MSE computes the mean squared error between pred and target along with
// the gradient with respect to pred (already divided by the element count).
func MSE(pred, target *mat.Matrix) (loss float64, grad *mat.Matrix, err error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, nil, fmt.Errorf("nn: mse: pred %dx%d target %dx%d",
			pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	n := pred.Size()
	grad = mat.New(pred.Rows(), pred.Cols())
	if n == 0 {
		return 0, grad, nil
	}
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1 / float64(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, grad, nil
}

// Accuracy reports the fraction of rows of logits whose argmax matches the
// corresponding label.
func Accuracy(logits *mat.Matrix, labels []int) (float64, error) {
	n := logits.Rows()
	if n != len(labels) {
		return 0, fmt.Errorf("nn: accuracy: %d rows, %d labels", n, len(labels))
	}
	if n == 0 {
		return 0, nil
	}
	var correct int
	for r := 0; r < n; r++ {
		_, idx := mat.MaxVec(logits.Row(r))
		if idx == labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}
