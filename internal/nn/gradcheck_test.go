package nn_test

// Numeric gradient checks: backprop gradients are compared against central
// finite differences of the loss for every trainable scalar. Each network is
// checked twice — the first pass runs on freshly allocated layer buffers,
// the second on the recycled ones — and once under a multi-worker kernel
// pool, so the destination-passing refactor cannot silently corrupt
// gradients in any of those modes.

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mat"
	"chiron/internal/nn"
)

// numericVsBackprop computes analytic gradients with one backward pass and
// compares every component against (L(θ+ε)−L(θ−ε))/2ε.
func numericVsBackprop(t *testing.T, net *nn.Network, x *mat.Matrix, labels []int) {
	t.Helper()

	logits, err := net.Forward(x)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	// Allocating loss form on the analytic pass, destination-passing form on
	// the numeric evaluations below, so both stay covered.
	_, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	net.ZeroGrad()
	if _, err := net.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	analytic := net.FlattenGrads()

	theta := net.FlattenParams()
	lossGrad := mat.New(logits.Rows(), logits.Cols())
	probs := make([]float64, logits.Cols())
	lossAt := func() float64 {
		if err := net.LoadParams(theta); err != nil {
			t.Fatalf("load params: %v", err)
		}
		out, err := net.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		loss, err := nn.SoftmaxCrossEntropyTo(lossGrad, out, labels, probs)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return loss
	}

	const eps = 1e-5
	for i := range theta {
		orig := theta[i]
		theta[i] = orig + eps
		lp := lossAt()
		theta[i] = orig - eps
		lm := lossAt()
		theta[i] = orig
		numeric := (lp - lm) / (2 * eps)
		diff := math.Abs(numeric - analytic[i])
		scale := math.Abs(numeric) + math.Abs(analytic[i])
		if diff > 1e-6+1e-4*scale {
			t.Fatalf("param %d: numeric %v vs backprop %v (diff %v)", i, numeric, analytic[i], diff)
		}
	}
	if err := net.LoadParams(theta); err != nil {
		t.Fatalf("restore params: %v", err)
	}
}

func TestGradCheckDenseMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := nn.NewMLP(rng, nn.ActTanh, 4, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(5, 4)
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2, 0, 1}
	// First pass exercises fresh buffers, second the recycled ones.
	numericVsBackprop(t, net, x, labels)
	numericVsBackprop(t, net, x, labels)
}

func TestGradCheckActivations(t *testing.T) {
	for _, tc := range []struct {
		name string
		act  nn.Activation
	}{
		{"relu", nn.ActReLU},
		{"tanh", nn.ActTanh},
		{"sigmoid", nn.ActSigmoid},
		{"identity", nn.ActIdentity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(22))
			net := nn.NewNetwork(
				nn.NewDense(rng, 3, 8),
				nn.NewActivate(tc.act),
				nn.NewDense(rng, 8, 2),
			)
			x := mat.New(4, 3)
			x.Randomize(rng, 1)
			labels := []int{0, 1, 1, 0}
			numericVsBackprop(t, net, x, labels)
			numericVsBackprop(t, net, x, labels)
		})
	}
}

func TestGradCheckConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shape := nn.Shape3{C: 1, H: 6, W: 6}
	conv, err := nn.NewConv2D(rng, shape, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := nn.NewMaxPool2D(conv.OutShape(), 2)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewNetwork(
		conv,
		nn.NewActivate(nn.ActTanh),
		pool,
		nn.NewDense(rng, pool.OutShape().Size(), 3),
	)
	x := mat.New(3, shape.Size())
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2}
	numericVsBackprop(t, net, x, labels)
	numericVsBackprop(t, net, x, labels)
}

// TestGradCheckParallelWorkers repeats the MLP check with a multi-worker
// kernel pool: gradients must agree with finite differences regardless of
// how GEMM rows are banded across workers.
func TestGradCheckParallelWorkers(t *testing.T) {
	mat.SetWorkers(4)
	defer mat.SetWorkers(0)
	rng := rand.New(rand.NewSource(24))
	net, err := nn.NewMLP(rng, nn.ActTanh, 6, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(7, 6)
	x.Randomize(rng, 1)
	labels := []int{0, 1, 2, 3, 0, 1, 2}
	numericVsBackprop(t, net, x, labels)
	numericVsBackprop(t, net, x, labels)
}
