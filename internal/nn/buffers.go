package nn

import "chiron/internal/mat"

// Layers own their forward/backward result buffers and recycle them across
// calls, so a steady-state training loop allocates nothing. ensureMat and
// ensureVec implement the reuse policy: keep the buffer while the shape
// holds, reallocate when the batch size changes. Buffer contents are NOT
// preserved across calls — callers fully overwrite (or Zero) them.

// ensureMat returns m when it already has the wanted shape, else a fresh
// matrix (see mat.Ensure).
func ensureMat(m *mat.Matrix, rows, cols int) *mat.Matrix {
	return mat.Ensure(m, rows, cols)
}

// ensureVec returns v when it already has length n, else a fresh slice.
func ensureVec(v []float64, n int) []float64 {
	return mat.EnsureVec(v, n)
}

// ensureMat32 is ensureMat for the float32 backend.
func ensureMat32(m *mat.Matrix32, rows, cols int) *mat.Matrix32 {
	if m != nil && m.Rows() == rows && m.Cols() == cols {
		return m
	}
	return mat.New32(rows, cols)
}

// ensureVec32 is ensureVec for the float32 backend.
func ensureVec32(v []float32, n int) []float32 {
	if len(v) == n {
		return v
	}
	return make([]float32, n)
}

// ensureInts returns v when it already has length n, else a fresh slice.
func ensureInts(v []int, n int) []int {
	if len(v) == n {
		return v
	}
	return make([]int, n)
}
