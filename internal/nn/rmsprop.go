package nn

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// RMSProp implements the RMSProp optimizer: per-coordinate learning rates
// derived from an exponential moving average of squared gradients. It is
// provided alongside SGD and Adam so users can reproduce alternative
// training setups.
type RMSProp struct {
	params []Param
	lr     float64
	decay  float64
	eps    float64
	sq     []*mat.Matrix
}

var _ Optimizer = (*RMSProp)(nil)

// NewRMSProp returns an RMSProp optimizer with the conventional decay of
// 0.99 and ε=1e-8.
func NewRMSProp(params []Param, lr float64) *RMSProp {
	r := &RMSProp{params: params, lr: lr, decay: 0.99, eps: 1e-8}
	r.sq = make([]*mat.Matrix, len(params))
	for i, p := range params {
		r.sq[i] = mat.New(p.Value.Rows(), p.Value.Cols())
	}
	return r
}

// Step implements Optimizer.
func (r *RMSProp) Step() error {
	for i, p := range r.params {
		sd := r.sq[i].Data()
		gd, pd := p.Grad.Data(), p.Value.Data()
		if len(gd) != len(sd) {
			return fmt.Errorf("nn: rmsprop step: param %d grad size %d state size %d", i, len(gd), len(sd))
		}
		for j, g := range gd {
			sd[j] = r.decay*sd[j] + (1-r.decay)*g*g
			pd[j] -= r.lr * g / (math.Sqrt(sd[j]) + r.eps)
		}
	}
	return nil
}

// SetLR implements Optimizer.
func (r *RMSProp) SetLR(lr float64) { r.lr = lr }

// LR implements Optimizer.
func (r *RMSProp) LR() float64 { return r.lr }
