package nn

import (
	"fmt"
	"math/rand"

	"chiron/internal/mat"
)

// Shape3 describes a channels×height×width tensor layout for image batches
// stored one flattened sample per matrix row (channel-major).
type Shape3 struct {
	C, H, W int
}

// Size returns the flattened element count.
func (s Shape3) Size() int { return s.C * s.H * s.W }

// Conv2D is a valid-padding, stride-1 2-D convolution layer, the building
// block of the paper's MNIST CNN and LeNet workloads.
type Conv2D struct {
	in      Shape3
	outC    int
	k       int   // square kernel size
	w       Param // shape (outC, inC*k*k)
	b       Param // shape (1, outC)
	lastCol *mat.Matrix
	lastN   int
	// Recycled buffers: forward GEMM product and output, pixel-major grad,
	// dW scratch, column gradient, and input gradient.
	prod, y, gp, dw, dcols, dx *mat.Matrix
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a Conv2D layer with He-initialized kernels. in is the
// input tensor shape, outC the number of output channels, and k the square
// kernel size. Valid padding, stride 1.
func NewConv2D(rng *rand.Rand, in Shape3, outC, k int) (*Conv2D, error) {
	if in.H < k || in.W < k {
		return nil, fmt.Errorf("nn: conv2d: input %dx%d smaller than kernel %d", in.H, in.W, k)
	}
	c := &Conv2D{
		in:   in,
		outC: outC,
		k:    k,
		w:    Param{Value: mat.New(outC, in.C*k*k), Grad: mat.New(outC, in.C*k*k)},
		b:    Param{Value: mat.New(1, outC), Grad: mat.New(1, outC)},
	}
	c.w.Value.HeInit(rng, in.C*k*k)
	return c, nil
}

// OutShape reports the output tensor shape.
func (c *Conv2D) OutShape() Shape3 {
	return Shape3{C: c.outC, H: c.in.H - c.k + 1, W: c.in.W - c.k + 1}
}

// im2col unrolls the batch so each output pixel becomes a row of receptive-
// field values; the convolution is then a single GEMM against the kernels.
// The unrolled matrix is recycled across calls (it doubles as lastCol, the
// backward pass input) and every element is overwritten.
func (c *Conv2D) im2col(x *mat.Matrix) *mat.Matrix {
	out := c.OutShape()
	n := x.Rows()
	cols := ensureMat(c.lastCol, n*out.H*out.W, c.in.C*c.k*c.k)
	for s := 0; s < n; s++ {
		img := x.Row(s)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				row := cols.Row((s*out.H+oy)*out.W + ox)
				idx := 0
				for ch := 0; ch < c.in.C; ch++ {
					base := ch * c.in.H * c.in.W
					for ky := 0; ky < c.k; ky++ {
						src := base + (oy+ky)*c.in.W + ox
						copy(row[idx:idx+c.k], img[src:src+c.k])
						idx += c.k
					}
				}
			}
		}
	}
	return cols
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != c.in.Size() {
		return nil, fmt.Errorf("nn: conv2d forward: input width %d, want %d", x.Cols(), c.in.Size())
	}
	out := c.OutShape()
	n := x.Rows()
	cols := c.im2col(x)
	c.lastCol = cols
	c.lastN = n
	// prod has one row per output pixel, one column per output channel.
	c.prod = ensureMat(c.prod, cols.Rows(), c.outC)
	if err := mat.MulTransBTo(c.prod, cols, c.w.Value); err != nil {
		return nil, fmt.Errorf("nn: conv2d forward gemm: %w", err)
	}
	prod := c.prod
	bias := c.b.Value.Row(0)
	c.y = ensureMat(c.y, n, out.Size())
	y := c.y
	for s := 0; s < n; s++ {
		dst := y.Row(s)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				src := prod.Row((s*out.H+oy)*out.W + ox)
				for ch := 0; ch < out.C; ch++ {
					dst[ch*out.H*out.W+oy*out.W+ox] = src[ch] + bias[ch]
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	return c.backward(grad, true)
}

// BackwardParamsOnly accumulates dW and db but skips the input-gradient
// half of the pass (the dcols GEMM and the col2im fold) — dead work when
// the convolution is a network's first layer, as in the MNIST CNN.
func (c *Conv2D) BackwardParamsOnly(grad *mat.Matrix) error {
	_, err := c.backward(grad, false)
	return err
}

func (c *Conv2D) backward(grad *mat.Matrix, needInputGrad bool) (*mat.Matrix, error) {
	if c.lastCol == nil {
		return nil, fmt.Errorf("nn: conv2d backward before forward")
	}
	out := c.OutShape()
	n := c.lastN
	if grad.Rows() != n || grad.Cols() != out.Size() {
		return nil, fmt.Errorf("nn: conv2d backward: grad %dx%d, want %dx%d", grad.Rows(), grad.Cols(), n, out.Size())
	}
	// Re-layout grad to pixel-major rows matching the im2col product.
	c.gp = ensureMat(c.gp, n*out.H*out.W, out.C)
	gp := c.gp
	biasGrad := c.b.Grad.Row(0)
	for s := 0; s < n; s++ {
		src := grad.Row(s)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				dst := gp.Row((s*out.H+oy)*out.W + ox)
				for ch := 0; ch < out.C; ch++ {
					v := src[ch*out.H*out.W+oy*out.W+ox]
					dst[ch] = v
					biasGrad[ch] += v
				}
			}
		}
	}
	// dW += gpᵀ·cols
	c.dw = ensureMat(c.dw, c.outC, c.in.C*c.k*c.k)
	if err := mat.MulTransATo(c.dw, gp, c.lastCol); err != nil {
		return nil, fmt.Errorf("nn: conv2d backward dW: %w", err)
	}
	if err := c.w.Grad.AddScaled(c.dw, 1); err != nil {
		return nil, fmt.Errorf("nn: conv2d backward accumulate dW: %w", err)
	}
	if !needInputGrad {
		return nil, nil
	}
	// dcols = gp·W, then fold back (col2im) into the input layout.
	c.dcols = ensureMat(c.dcols, gp.Rows(), c.w.Value.Cols())
	if err := mat.MulTo(c.dcols, gp, c.w.Value); err != nil {
		return nil, fmt.Errorf("nn: conv2d backward dcols: %w", err)
	}
	dcols := c.dcols
	c.dx = ensureMat(c.dx, n, c.in.Size())
	dx := c.dx
	dx.Zero() // col2im accumulates into overlapping receptive fields
	for s := 0; s < n; s++ {
		img := dx.Row(s)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				row := dcols.Row((s*out.H+oy)*out.W + ox)
				idx := 0
				for ch := 0; ch < c.in.C; ch++ {
					base := ch * c.in.H * c.in.W
					for ky := 0; ky < c.k; ky++ {
						dst := base + (oy+ky)*c.in.W + ox
						for kx := 0; kx < c.k; kx++ {
							img[dst+kx] += row[idx]
							idx++
						}
					}
				}
			}
		}
	}
	return dx, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []Param { return []Param{c.w, c.b} }

// MaxPool2D is a non-overlapping 2×2-style max-pooling layer with square
// window and stride equal to the window size.
type MaxPool2D struct {
	in      Shape3
	size    int
	lastArg []int // argmax input index per output element, batch-flattened
	lastN   int
	y, dx   *mat.Matrix
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pool layer over windows of size×size. The
// input height and width must be divisible by size.
func NewMaxPool2D(in Shape3, size int) (*MaxPool2D, error) {
	if size <= 0 || in.H%size != 0 || in.W%size != 0 {
		return nil, fmt.Errorf("nn: maxpool: input %dx%d not divisible by window %d", in.H, in.W, size)
	}
	return &MaxPool2D{in: in, size: size}, nil
}

// OutShape reports the output tensor shape.
func (p *MaxPool2D) OutShape() Shape3 {
	return Shape3{C: p.in.C, H: p.in.H / p.size, W: p.in.W / p.size}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != p.in.Size() {
		return nil, fmt.Errorf("nn: maxpool forward: input width %d, want %d", x.Cols(), p.in.Size())
	}
	out := p.OutShape()
	n := x.Rows()
	p.y = ensureMat(p.y, n, out.Size())
	y := p.y
	p.lastArg = ensureInts(p.lastArg, n*out.Size())
	p.lastN = n
	for s := 0; s < n; s++ {
		img := x.Row(s)
		dst := y.Row(s)
		for ch := 0; ch < p.in.C; ch++ {
			base := ch * p.in.H * p.in.W
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					bestIdx := base + oy*p.size*p.in.W + ox*p.size
					best := img[bestIdx]
					for wy := 0; wy < p.size; wy++ {
						for wx := 0; wx < p.size; wx++ {
							idx := base + (oy*p.size+wy)*p.in.W + ox*p.size + wx
							if img[idx] > best {
								best, bestIdx = img[idx], idx
							}
						}
					}
					oidx := ch*out.H*out.W + oy*out.W + ox
					dst[oidx] = best
					p.lastArg[s*out.Size()+oidx] = bestIdx
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	if p.lastArg == nil {
		return nil, fmt.Errorf("nn: maxpool backward before forward")
	}
	out := p.OutShape()
	if grad.Rows() != p.lastN || grad.Cols() != out.Size() {
		return nil, fmt.Errorf("nn: maxpool backward: grad %dx%d, want %dx%d", grad.Rows(), grad.Cols(), p.lastN, out.Size())
	}
	p.dx = ensureMat(p.dx, p.lastN, p.in.Size())
	dx := p.dx
	dx.Zero() // scatter-add routes each output grad to its argmax input
	for s := 0; s < p.lastN; s++ {
		g := grad.Row(s)
		d := dx.Row(s)
		for i, v := range g {
			d[p.lastArg[s*out.Size()+i]] += v
		}
	}
	return dx, nil
}

// Params implements Layer.
func (p *MaxPool2D) Params() []Param { return nil }
