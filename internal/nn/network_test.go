package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/mat"
)

func TestMLPRejectsTooFewWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(rng, ActTanh, 4); err == nil {
		t.Fatal("NewMLP accepted a single width")
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := NewMLP(rng, ActReLU, 4, 6, 3)
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	b, err := NewMLP(rng, ActReLU, 4, 6, 3)
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	flat := a.FlattenParams()
	if len(flat) != a.NumParams() {
		t.Fatalf("flat len %d, want %d", len(flat), a.NumParams())
	}
	if err := b.LoadParams(flat); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	x := mat.New(2, 4)
	x.Randomize(rng, 1)
	ya, err := a.Forward(x)
	if err != nil {
		t.Fatalf("forward a: %v", err)
	}
	yb, err := b.Forward(x)
	if err != nil {
		t.Fatalf("forward b: %v", err)
	}
	for i := range ya.Data() {
		if ya.Data()[i] != yb.Data()[i] {
			t.Fatal("loaded network disagrees with source")
		}
	}
}

func TestLoadParamsSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, _ := NewMLP(rng, ActTanh, 2, 2)
	if err := net.LoadParams(make([]float64, 3)); err == nil {
		t.Fatal("LoadParams accepted wrong size")
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, _ := NewMLP(rng, ActTanh, 3, 4, 2)
	x := mat.New(2, 3)
	x.Randomize(rng, 1)
	logits, _ := net.Forward(x)
	_, grad, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
	if _, err := net.Backward(grad); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	var nonzero bool
	for _, g := range net.FlattenGrads() {
		if g != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("backward produced all-zero gradients")
	}
	net.ZeroGrad()
	for i, g := range net.FlattenGrads() {
		if g != 0 {
			t.Fatalf("grad %d = %v after ZeroGrad", i, g)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _ := NewMLP(rng, ActTanh, 3, 3, 2)
	for _, p := range net.Params() {
		p.Grad.Fill(10)
	}
	before := net.ClipGradNorm(1.0)
	if before <= 1 {
		t.Fatalf("pre-clip norm %v, want > 1", before)
	}
	var sq float64
	for _, g := range net.FlattenGrads() {
		sq += g * g
	}
	if math.Abs(math.Sqrt(sq)-1.0) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(sq))
	}
}

func TestClipGradNormBelowThresholdUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, _ := NewMLP(rng, ActTanh, 2, 2)
	for _, p := range net.Params() {
		p.Grad.Fill(1e-6)
	}
	net.ClipGradNorm(10)
	for _, g := range net.FlattenGrads() {
		if g != 1e-6 {
			t.Fatal("clip modified small gradients")
		}
	}
}

// TestSGDReducesLoss trains a tiny MLP on a separable problem and checks
// the loss drops substantially.
func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, _ := NewMLP(rng, ActTanh, 2, 8, 2)
	x := mat.New(40, 2)
	labels := make([]int, 40)
	for i := 0; i < 40; i++ {
		cls := i % 2
		labels[i] = cls
		x.Set(i, 0, float64(2*cls-1)+rng.NormFloat64()*0.2)
		x.Set(i, 1, float64(1-2*cls)+rng.NormFloat64()*0.2)
	}
	opt := NewSGD(net.Params(), 0.5, 0.9)
	var first, last float64
	for step := 0; step < 60; step++ {
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		loss, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatalf("backward: %v", err)
		}
		if err := opt.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if last > first/4 {
		t.Fatalf("SGD failed to learn: first %v last %v", first, last)
	}
}

// TestAdamReducesLoss mirrors the SGD test with Adam.
func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, _ := NewMLP(rng, ActReLU, 2, 8, 2)
	x := mat.New(30, 2)
	labels := make([]int, 30)
	for i := range labels {
		cls := i % 2
		labels[i] = cls
		x.Set(i, 0, float64(2*cls-1)+rng.NormFloat64()*0.3)
		x.Set(i, 1, rng.NormFloat64()*0.3)
	}
	opt := NewAdam(net.Params(), 0.05)
	var first, last float64
	for step := 0; step < 80; step++ {
		logits, _ := net.Forward(x)
		loss, grad, _ := SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatalf("backward: %v", err)
		}
		if err := opt.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if last > first/4 {
		t.Fatalf("Adam failed to learn: first %v last %v", first, last)
	}
}

func TestExpDecaySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, _ := NewMLP(rng, ActTanh, 2, 2)
	opt := NewAdam(net.Params(), 1.0)
	decay, err := NewExpDecay(opt, 0.95, 20)
	if err != nil {
		t.Fatalf("NewExpDecay: %v", err)
	}
	for i := 0; i < 19; i++ {
		decay.Tick()
	}
	if opt.LR() != 1.0 {
		t.Fatalf("LR decayed early: %v", opt.LR())
	}
	decay.Tick() // 20th
	if math.Abs(opt.LR()-0.95) > 1e-12 {
		t.Fatalf("LR after 20 ticks = %v, want 0.95", opt.LR())
	}
	for i := 0; i < 20; i++ {
		decay.Tick()
	}
	if math.Abs(opt.LR()-0.95*0.95) > 1e-12 {
		t.Fatalf("LR after 40 ticks = %v, want 0.9025", opt.LR())
	}
}

func TestExpDecayRejectsBadInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, _ := NewMLP(rng, ActTanh, 2, 2)
	if _, err := NewExpDecay(NewSGD(net.Params(), 1, 0), 0.9, 0); err == nil {
		t.Fatal("NewExpDecay accepted interval 0")
	}
}

// Property: LoadParams(FlattenParams()) is the identity on network outputs
// for random parameter vectors.
func TestParamVectorRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net, err := NewMLP(r, ActTanh, 3, 4, 2)
		if err != nil {
			return false
		}
		flat := net.FlattenParams()
		// Perturb, load, flatten again: must round-trip exactly.
		for i := range flat {
			flat[i] += r.NormFloat64()
		}
		if err := net.LoadParams(flat); err != nil {
			return false
		}
		got := net.FlattenParams()
		for i := range flat {
			if got[i] != flat[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModelZooParameterCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cnn, err := NewMNISTCNN(rng)
	if err != nil {
		t.Fatalf("NewMNISTCNN: %v", err)
	}
	if cnn.NumParams() != MNISTCNNParams {
		t.Fatalf("MNIST CNN params %d, want %d", cnn.NumParams(), MNISTCNNParams)
	}
	lenet, err := NewLeNet(rng)
	if err != nil {
		t.Fatalf("NewLeNet: %v", err)
	}
	if lenet.NumParams() != LeNetParams {
		t.Fatalf("LeNet params %d, want %d", lenet.NumParams(), LeNetParams)
	}
}

func TestModelZooForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cnn, err := NewMNISTCNN(rng)
	if err != nil {
		t.Fatalf("NewMNISTCNN: %v", err)
	}
	x := mat.New(2, 28*28)
	x.Randomize(rng, 1)
	y, err := cnn.Forward(x)
	if err != nil {
		t.Fatalf("cnn forward: %v", err)
	}
	if y.Rows() != 2 || y.Cols() != 10 {
		t.Fatalf("cnn output %dx%d", y.Rows(), y.Cols())
	}
	lenet, err := NewLeNet(rng)
	if err != nil {
		t.Fatalf("NewLeNet: %v", err)
	}
	x2 := mat.New(2, 3*32*32)
	x2.Randomize(rng, 1)
	y2, err := lenet.Forward(x2)
	if err != nil {
		t.Fatalf("lenet forward: %v", err)
	}
	if y2.Rows() != 2 || y2.Cols() != 10 {
		t.Fatalf("lenet output %dx%d", y2.Rows(), y2.Cols())
	}
}
