package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"chiron/internal/mat"
)

func TestDropoutValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDropout(rng, 1.0); err == nil {
		t.Fatal("accepted rate 1.0")
	}
	if _, err := NewDropout(rng, -0.1); err == nil {
		t.Fatal("accepted negative rate")
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := NewDropout(rng, 0.5)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	x := mat.New(10, 100)
	x.Fill(1)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	var zeros, scaled int
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1-0.5)
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout degenerate: %d zeros, %d scaled", zeros, scaled)
	}
	// Inverted dropout keeps the expectation: survivors ≈ half, scaled ×2.
	frac := float64(zeros) / float64(len(y.Data()))
	if math.Abs(frac-0.5) > 0.08 {
		t.Fatalf("drop fraction %v, want ≈0.5", frac)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := NewDropout(rng, 0.5)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	d.SetTraining(false)
	x := mat.New(2, 4)
	x.Randomize(rng, 1)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for i, v := range y.Data() {
		if v != x.Data()[i] {
			t.Fatal("eval-mode dropout modified values")
		}
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewDropout(rng, 0.5)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	x := mat.New(1, 50)
	x.Fill(1)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	grad := mat.New(1, 50)
	grad.Fill(1)
	dx, err := d.Backward(grad)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	// Gradient must flow exactly where activations flowed, with the same
	// scale.
	for i := range dx.Data() {
		if (y.Data()[i] == 0) != (dx.Data()[i] == 0) {
			t.Fatal("gradient mask disagrees with forward mask")
		}
		if y.Data()[i] != 0 && dx.Data()[i] != 2 {
			t.Fatalf("gradient scale %v, want 2", dx.Data()[i])
		}
	}
}

func TestSetTrainingModeWalksNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	drop, err := NewDropout(rng, 0.3)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	net := NewNetwork(NewDense(rng, 4, 4), drop, NewDense(rng, 4, 2))
	SetTrainingMode(net, false)
	if drop.Training() {
		t.Fatal("SetTrainingMode(false) did not reach the dropout layer")
	}
	SetTrainingMode(net, true)
	if !drop.Training() {
		t.Fatal("SetTrainingMode(true) did not reach the dropout layer")
	}
}

func TestRMSPropReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, _ := NewMLP(rng, ActTanh, 2, 8, 2)
	x := mat.New(30, 2)
	labels := make([]int, 30)
	for i := range labels {
		cls := i % 2
		labels[i] = cls
		x.Set(i, 0, float64(2*cls-1)+rng.NormFloat64()*0.3)
		x.Set(i, 1, rng.NormFloat64()*0.3)
	}
	opt := NewRMSProp(net.Params(), 0.01)
	if opt.LR() != 0.01 {
		t.Fatalf("LR = %v", opt.LR())
	}
	opt.SetLR(0.02)
	var first, last float64
	for step := 0; step < 80; step++ {
		logits, _ := net.Forward(x)
		loss, grad, _ := SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatalf("backward: %v", err)
		}
		if err := opt.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if last > first/4 {
		t.Fatalf("RMSProp failed to learn: %v -> %v", first, last)
	}
}

func TestModelStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := NewMLP(rng, ActReLU, 3, 5, 2)
	b, _ := NewMLP(rng, ActReLU, 3, 5, 2)
	if err := b.LoadState(a.State()); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	fa, fb := a.FlattenParams(), b.FlattenParams()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("state round trip lost values")
		}
	}
}

func TestModelStateShapeChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, _ := NewMLP(rng, ActReLU, 3, 5, 2)
	wrong, _ := NewMLP(rng, ActReLU, 3, 6, 2)
	if err := wrong.LoadState(a.State()); err == nil {
		t.Fatal("loaded state across mismatched shapes")
	}
	if err := a.LoadState(nil); err == nil {
		t.Fatal("loaded nil state")
	}
	// Corrupted tensor payload.
	st := a.State()
	st.Tensors[0].Data = st.Tensors[0].Data[:1]
	if err := a.LoadState(st); err == nil {
		t.Fatal("loaded truncated tensor")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, _ := NewMLP(rng, ActTanh, 4, 6, 3)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := a.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	b, _ := NewMLP(rng, ActTanh, 4, 6, 3)
	if err := b.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	x := mat.New(2, 4)
	x.Randomize(rng, 1)
	ya, _ := a.Forward(x)
	yb, _ := b.Forward(x)
	for i := range ya.Data() {
		if ya.Data()[i] != yb.Data()[i] {
			t.Fatal("file round trip changed behaviour")
		}
	}
	if err := b.LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestDropoutInTrainingPipeline(t *testing.T) {
	// A net with dropout must still learn (gradient check not applicable
	// due to stochasticity, so assert loss reduction end to end).
	rng := rand.New(rand.NewSource(10))
	drop, err := NewDropout(rng, 0.2)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	net := NewNetwork(
		NewDense(rng, 2, 16), NewActivate(ActReLU), drop,
		NewDense(rng, 16, 2),
	)
	x := mat.New(40, 2)
	labels := make([]int, 40)
	for i := range labels {
		cls := i % 2
		labels[i] = cls
		x.Set(i, 0, float64(2*cls-1)+rng.NormFloat64()*0.2)
		x.Set(i, 1, rng.NormFloat64()*0.2)
	}
	opt := NewAdam(net.Params(), 0.02)
	var first, last float64
	for step := 0; step < 100; step++ {
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		loss, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrad()
		if _, err := net.Backward(grad); err != nil {
			t.Fatalf("backward: %v", err)
		}
		if err := opt.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if last > first/2 {
		t.Fatalf("dropout net failed to learn: %v -> %v", first, last)
	}
}
