package nn

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// FusedMLP is a fused forward+backward execution plan for a stack of Dense
// and Activate layers (the small policy MLPs and the federated classifier).
// One forward pass computes each layer's GEMM and then folds the bias add
// and activation into a single epilogue sweep; one backward pass folds the
// activation derivative into the incoming gradient while it is produced,
// then runs the three layer GEMMs (dW, db, dx) directly — no per-layer
// interface dispatch, no gradient copies, and every intermediate lives in a
// preallocated workspace recycled across calls.
//
// The fused plan is bit-identical to running the layers one by one: the
// epilogue computes act(gemm[i][j] + b[j]) exactly as the AddRowVector /
// ApplyTo pair did per element, and the backward pass invokes the same mat
// kernels on the same values in the same per-element order. It shares the
// layers' Param tensors, so optimizers, checkpointing, and serialization
// observe fused and layered execution identically.
type FusedMLP struct {
	units []fusedUnit
	lastX *mat.Matrix
	// Recycled workspaces, one per unit: post-activation outputs, local
	// gradients (delta), dW scratch, and the per-unit input gradients.
	ys    []*mat.Matrix
	delta []*mat.Matrix
	dw    []*mat.Matrix
	dxs   []*mat.Matrix
	sums  [][]float64
}

// fusedUnit is one Dense layer plus the activation fused onto its output
// (ActIdentity when the Dense output feeds the next layer or loss directly).
type fusedUnit struct {
	dense *Dense
	act   Activation
}

// Fuse builds a fused execution plan for the network's layer stack. It
// reports false when the stack contains anything other than Dense layers
// optionally followed by activations — such networks (conv stacks, dropout
// stacks) keep the general layered path.
func Fuse(n *Network) (*FusedMLP, bool) {
	return fuseLayers(n.layers)
}

func fuseLayers(layers []Layer) (*FusedMLP, bool) {
	var units []fusedUnit
	for i := 0; i < len(layers); i++ {
		d, ok := layers[i].(*Dense)
		if !ok {
			return nil, false
		}
		u := fusedUnit{dense: d, act: ActIdentity}
		if i+1 < len(layers) {
			if a, ok := layers[i+1].(*Activate); ok {
				u.act = a.kind
				i++
			}
		}
		units = append(units, u)
	}
	if len(units) == 0 {
		return nil, false
	}
	return &FusedMLP{
		units: units,
		ys:    make([]*mat.Matrix, len(units)),
		delta: make([]*mat.Matrix, len(units)),
		dw:    make([]*mat.Matrix, len(units)),
		dxs:   make([]*mat.Matrix, len(units)),
		sums:  make([][]float64, len(units)),
	}, true
}

// Forward runs the batch through every unit: GEMM, then one epilogue sweep
// adding the bias and applying the activation in place. The returned matrix
// is a workspace reused by the next call.
func (f *FusedMLP) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	f.lastX = x
	for l := range f.units {
		u := &f.units[l]
		d := u.dense
		if x.Cols() != d.in {
			return nil, fmt.Errorf("nn: fused forward unit %d: input width %d, want %d", l, x.Cols(), d.in)
		}
		y := ensureMat(f.ys[l], x.Rows(), d.out)
		f.ys[l] = y
		if err := mat.MulTo(y, x, d.w.Value); err != nil {
			return nil, fmt.Errorf("nn: fused forward unit %d: %w", l, err)
		}
		epilogue(y, d.b.Value.Row(0), u.act)
		x = y
	}
	return x, nil
}

// epilogue adds the bias row vector and applies the activation in one sweep
// over y. Per element this computes act(y[i][j] + bias[j]), the exact value
// (and floating-point operation order) of the separate bias and activation
// passes it fuses.
func epilogue(y *mat.Matrix, bias []float64, act Activation) {
	rows, cols := y.Rows(), y.Cols()
	data := y.Data()
	for r := 0; r < rows; r++ {
		yrow := data[r*cols : (r+1)*cols]
		switch act {
		case ActTanh:
			for j, bv := range bias {
				yrow[j] = math.Tanh(yrow[j] + bv)
			}
		case ActReLU:
			for j, bv := range bias {
				if v := yrow[j] + bv; v < 0 {
					yrow[j] = 0
				} else {
					yrow[j] = v
				}
			}
		case ActSigmoid:
			for j, bv := range bias {
				yrow[j] = mat.Sigmoid(yrow[j] + bv)
			}
		default:
			for j, bv := range bias {
				yrow[j] += bv
			}
		}
	}
}

// Backward propagates grad back through every unit, accumulating parameter
// gradients into the shared Param tensors. The activation derivative is
// folded into the production of each unit's local gradient, so no layer
// boundary copies a matrix. When needInputGrad is false the input-gradient
// GEMM of the first unit — dead work for every training loop in this
// repository — is skipped and Backward returns nil.
func (f *FusedMLP) Backward(grad *mat.Matrix, needInputGrad bool) (*mat.Matrix, error) {
	if f.lastX == nil {
		return nil, fmt.Errorf("nn: fused backward before forward")
	}
	g := grad
	for l := len(f.units) - 1; l >= 0; l-- {
		u := &f.units[l]
		d := u.dense
		if g.Rows() != f.ys[l].Rows() || g.Cols() != d.out {
			return nil, fmt.Errorf("nn: fused backward unit %d: grad %dx%d, want %dx%d", l, g.Rows(), g.Cols(), f.ys[l].Rows(), d.out)
		}
		delta := g
		if u.act != ActIdentity {
			dm := ensureMat(f.delta[l], g.Rows(), g.Cols())
			f.delta[l] = dm
			dd, gd, yd := dm.Data(), g.Data(), f.ys[l].Data()
			switch u.act {
			case ActReLU:
				for i, y := range yd {
					if y <= 0 {
						dd[i] = 0
					} else {
						dd[i] = gd[i]
					}
				}
			case ActTanh:
				for i, y := range yd {
					dd[i] = gd[i] * (1 - y*y)
				}
			case ActSigmoid:
				for i, y := range yd {
					dd[i] = gd[i] * (y * (1 - y))
				}
			default:
				return nil, fmt.Errorf("nn: fused backward: unknown activation %v", u.act)
			}
			delta = dm
		}
		x := f.lastX
		if l > 0 {
			x = f.ys[l-1]
		}
		dw := ensureMat(f.dw[l], d.in, d.out)
		f.dw[l] = dw
		if err := mat.MulTransATo(dw, x, delta); err != nil {
			return nil, fmt.Errorf("nn: fused backward unit %d dW: %w", l, err)
		}
		if err := d.w.Grad.AddScaled(dw, 1); err != nil {
			return nil, fmt.Errorf("nn: fused backward unit %d accumulate dW: %w", l, err)
		}
		f.sums[l] = ensureVec(f.sums[l], d.out)
		if err := delta.SumRowsTo(f.sums[l]); err != nil {
			return nil, fmt.Errorf("nn: fused backward unit %d db: %w", l, err)
		}
		bias := d.b.Grad.Row(0)
		for i, v := range f.sums[l] {
			bias[i] += v
		}
		if l == 0 && !needInputGrad {
			return nil, nil
		}
		dx := ensureMat(f.dxs[l], delta.Rows(), d.in)
		f.dxs[l] = dx
		if err := mat.MulTransBTo(dx, delta, d.w.Value); err != nil {
			return nil, fmt.Errorf("nn: fused backward unit %d dx: %w", l, err)
		}
		g = dx
	}
	return g, nil
}
