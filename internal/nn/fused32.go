package nn

import (
	"fmt"

	"chiron/internal/mat"
)

// Param32 couples a float32 parameter tensor with its gradient accumulator —
// the reduced-precision twin of Param, owned by a FusedMLP32 rather than by
// a layer (the float64 layers stay the source of truth for training state).
type Param32 struct {
	Value *mat.Matrix32
	Grad  *mat.Matrix32
}

// FusedMLP32 is the float32 twin of FusedMLP: the same single-pass fused
// forward+backward plan, running every GEMM and epilogue in float32. It is
// built from a float64 Network (Fuse32) by down-converting that network's
// parameters; Refresh re-converts after the float64 side trains. Gradients
// accumulate into the plan's own Param32 tensors — the float64 network
// never observes float32 arithmetic.
//
// Unlike the float64 plan, nothing here is pinned by bit-exact digests.
// The contract is the tolerance one: outputs and gradients stay within
// mat.Float32Backend.Within of the float64 reference for the repository's
// network sizes, which the gradcheck and propcheck suites enforce.
type FusedMLP32 struct {
	units   []fusedUnit32
	backend mat.Backend
	lastX   *mat.Matrix32
	xbuf    *mat.Matrix32 // staging buffer for float64 inputs
	ys      []*mat.Matrix32
	delta   []*mat.Matrix32
	dw      []*mat.Matrix32
	dxs     []*mat.Matrix32
	sums    [][]float32
}

// fusedUnit32 is one down-converted Dense layer plus its fused activation.
type fusedUnit32 struct {
	src     *Dense // float64 source, re-read by Refresh
	w, b    Param32
	act     Activation
	in, out int
}

// Fuse32 builds a float32 fused plan from the network's layer stack. Like
// Fuse it reports false when the stack is not a pure Dense/Activate MLP.
// The returned plan holds down-converted copies of the network's current
// parameters; call Refresh after the float64 network takes optimizer steps.
func Fuse32(n *Network) (*FusedMLP32, bool) {
	plan, ok := fuseLayers(n.layers)
	if !ok {
		return nil, false
	}
	units := make([]fusedUnit32, len(plan.units))
	for i, u := range plan.units {
		d := u.dense
		units[i] = fusedUnit32{
			src: d,
			w: Param32{
				Value: mat.New32(d.w.Value.Rows(), d.w.Value.Cols()),
				Grad:  mat.New32(d.w.Grad.Rows(), d.w.Grad.Cols()),
			},
			b: Param32{
				Value: mat.New32(d.b.Value.Rows(), d.b.Value.Cols()),
				Grad:  mat.New32(d.b.Grad.Rows(), d.b.Grad.Cols()),
			},
			act: u.act,
			in:  d.in,
			out: d.out,
		}
	}
	f := &FusedMLP32{
		units:   units,
		backend: mat.Float32Backend,
		ys:      make([]*mat.Matrix32, len(units)),
		delta:   make([]*mat.Matrix32, len(units)),
		dw:      make([]*mat.Matrix32, len(units)),
		dxs:     make([]*mat.Matrix32, len(units)),
		sums:    make([][]float32, len(units)),
	}
	f.Refresh()
	return f, true
}

// Backend reports the plan's backend (precision plus tolerances).
func (f *FusedMLP32) Backend() mat.Backend { return f.backend }

// Refresh re-downcasts every parameter from the float64 source network —
// the one boundary where float64 training state enters the float32 world.
func (f *FusedMLP32) Refresh() {
	for i := range f.units {
		u := &f.units[i]
		// SetFrom cannot fail here: the tensors were sized from the source.
		_ = u.w.Value.SetFrom(u.src.w.Value)
		_ = u.b.Value.SetFrom(u.src.b.Value)
	}
}

// Params32 returns the plan's float32 parameters in layer order (w, b per
// unit), for gradient checks and float32-side optimizers.
func (f *FusedMLP32) Params32() []Param32 {
	out := make([]Param32, 0, 2*len(f.units))
	for i := range f.units {
		out = append(out, f.units[i].w, f.units[i].b)
	}
	return out
}

// ZeroGrad clears the plan's float32 gradient accumulators.
func (f *FusedMLP32) ZeroGrad() {
	for i := range f.units {
		f.units[i].w.Grad.Zero()
		f.units[i].b.Grad.Zero()
	}
}

// Stage down-converts a float64 batch into the plan's input staging buffer,
// reused across calls.
func (f *FusedMLP32) Stage(x *mat.Matrix) (*mat.Matrix32, error) {
	f.xbuf = ensureMat32(f.xbuf, x.Rows(), x.Cols())
	if err := f.xbuf.SetFrom(x); err != nil {
		return nil, fmt.Errorf("nn: fused32 stage: %w", err)
	}
	return f.xbuf, nil
}

// Forward runs the batch through every unit in float32: GEMM, then one
// epilogue sweep adding the bias and applying the activation. The returned
// matrix is a workspace reused by the next call.
func (f *FusedMLP32) Forward(x *mat.Matrix32) (*mat.Matrix32, error) {
	f.lastX = x
	for l := range f.units {
		u := &f.units[l]
		if x.Cols() != u.in {
			return nil, fmt.Errorf("nn: fused32 forward unit %d: input width %d, want %d", l, x.Cols(), u.in)
		}
		y := ensureMat32(f.ys[l], x.Rows(), u.out)
		f.ys[l] = y
		if err := mat.MulTo32(y, x, u.w.Value); err != nil {
			return nil, fmt.Errorf("nn: fused32 forward unit %d: %w", l, err)
		}
		epilogue32(y, u.b.Value.Row(0), u.act)
		x = y
	}
	return x, nil
}

// epilogue32 adds the bias row vector and applies the activation in one
// sweep over y. The transcendental activations widen through float64
// (mat.Tanh32/Sigmoid32) so the only float32 rounding is the final store.
func epilogue32(y *mat.Matrix32, bias []float32, act Activation) {
	rows, cols := y.Rows(), y.Cols()
	data := y.Data()
	for r := 0; r < rows; r++ {
		yrow := data[r*cols : (r+1)*cols]
		switch act {
		case ActTanh:
			for j, bv := range bias {
				yrow[j] = mat.Tanh32(yrow[j] + bv)
			}
		case ActReLU:
			for j, bv := range bias {
				if v := yrow[j] + bv; v < 0 {
					yrow[j] = 0
				} else {
					yrow[j] = v
				}
			}
		case ActSigmoid:
			for j, bv := range bias {
				yrow[j] = mat.Sigmoid32(yrow[j] + bv)
			}
		default:
			for j, bv := range bias {
				yrow[j] += bv
			}
		}
	}
}

// Backward propagates grad back through every unit, accumulating into the
// plan's Param32 gradients. Mirrors FusedMLP.Backward: the activation
// derivative folds into the delta production, and when needInputGrad is
// false the first unit's input-gradient GEMM is skipped.
func (f *FusedMLP32) Backward(grad *mat.Matrix32, needInputGrad bool) (*mat.Matrix32, error) {
	if f.lastX == nil {
		return nil, fmt.Errorf("nn: fused32 backward before forward")
	}
	g := grad
	for l := len(f.units) - 1; l >= 0; l-- {
		u := &f.units[l]
		if g.Rows() != f.ys[l].Rows() || g.Cols() != u.out {
			return nil, fmt.Errorf("nn: fused32 backward unit %d: grad %dx%d, want %dx%d", l, g.Rows(), g.Cols(), f.ys[l].Rows(), u.out)
		}
		delta := g
		if u.act != ActIdentity {
			dm := ensureMat32(f.delta[l], g.Rows(), g.Cols())
			f.delta[l] = dm
			dd, gd, yd := dm.Data(), g.Data(), f.ys[l].Data()
			switch u.act {
			case ActReLU:
				for i, y := range yd {
					if y <= 0 {
						dd[i] = 0
					} else {
						dd[i] = gd[i]
					}
				}
			case ActTanh:
				for i, y := range yd {
					dd[i] = gd[i] * (1 - y*y)
				}
			case ActSigmoid:
				for i, y := range yd {
					dd[i] = gd[i] * (y * (1 - y))
				}
			default:
				return nil, fmt.Errorf("nn: fused32 backward: unknown activation %v", u.act)
			}
			delta = dm
		}
		x := f.lastX
		if l > 0 {
			x = f.ys[l-1]
		}
		dw := ensureMat32(f.dw[l], u.in, u.out)
		f.dw[l] = dw
		if err := mat.MulTransATo32(dw, x, delta); err != nil {
			return nil, fmt.Errorf("nn: fused32 backward unit %d dW: %w", l, err)
		}
		if err := u.w.Grad.AddScaled(dw, 1); err != nil {
			return nil, fmt.Errorf("nn: fused32 backward unit %d accumulate dW: %w", l, err)
		}
		f.sums[l] = ensureVec32(f.sums[l], u.out)
		if err := delta.SumRowsTo(f.sums[l]); err != nil {
			return nil, fmt.Errorf("nn: fused32 backward unit %d db: %w", l, err)
		}
		bias := u.b.Grad.Row(0)
		for i, v := range f.sums[l] {
			bias[i] += v
		}
		if l == 0 && !needInputGrad {
			return nil, nil
		}
		dx := ensureMat32(f.dxs[l], delta.Rows(), u.in)
		f.dxs[l] = dx
		if err := mat.MulTransBTo32(dx, delta, u.w.Value); err != nil {
			return nil, fmt.Errorf("nn: fused32 backward unit %d dx: %w", l, err)
		}
		g = dx
	}
	return g, nil
}
