package nn

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
)

// Network is an ordered stack of layers trained end to end.
type Network struct {
	layers []Layer
	params []Param // cached: the layer stack is immutable after construction
	// fused is the single-pass execution plan used when the stack is a pure
	// Dense/Activate MLP; nil for stacks (conv, dropout) that run layered.
	// Fused and layered execution are bit-identical (see fused.go), so
	// which one runs is invisible to callers.
	fused *FusedMLP
}

// NewNetwork builds a network from the given layers in order.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{layers: layers}
	for _, l := range layers {
		n.params = append(n.params, l.Params()...)
	}
	// Re-slice to exact length so callers appending to the returned slice
	// (to add their own parameters) always reallocate instead of scribbling
	// over a shared backing array.
	n.params = n.params[:len(n.params):len(n.params)]
	n.fused, _ = fuseLayers(layers)
	return n
}

// NewMLP builds a multilayer perceptron with the given layer widths
// (input, hidden..., output) and the same hidden activation between each
// pair of Dense layers. The output layer is linear.
func NewMLP(rng *rand.Rand, act Activation, widths ...int) (*Network, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output widths, got %d", len(widths))
	}
	var layers []Layer
	for i := 0; i+1 < len(widths); i++ {
		layers = append(layers, NewDense(rng, widths[i], widths[i+1]))
		if i+2 < len(widths) {
			layers = append(layers, NewActivate(act))
		}
	}
	return NewNetwork(layers...), nil
}

// Layers returns the network's layers in forward order. The returned slice
// is a copy; mutating it does not alter the network.
func (n *Network) Layers() []Layer {
	out := make([]Layer, len(n.layers))
	copy(out, n.layers)
	return out
}

// Forward runs a batch through every layer.
//
// The returned matrix is owned by the network's final layer and is reused
// by the next Forward call, so callers that need two forward results alive
// at once (e.g. V(s) and V(s')) must copy the first before computing the
// second.
func (n *Network) Forward(x *mat.Matrix) (*mat.Matrix, error) {
	if n.fused != nil {
		return n.fused.Forward(x)
	}
	var err error
	for i, l := range n.layers {
		if x, err = l.Forward(x); err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err)
		}
	}
	return x, nil
}

// Backward propagates the output gradient back through every layer,
// accumulating parameter gradients, and returns the input gradient.
func (n *Network) Backward(grad *mat.Matrix) (*mat.Matrix, error) {
	if n.fused != nil {
		return n.fused.Backward(grad, true)
	}
	var err error
	for i := len(n.layers) - 1; i >= 0; i-- {
		if grad, err = n.layers[i].Backward(grad); err != nil {
			return nil, fmt.Errorf("nn: layer %d backward: %w", i, err)
		}
	}
	return grad, nil
}

// paramsOnlyBackward is implemented by layers that can skip producing their
// input gradient — worthwhile only for a network's first layer, where that
// gradient has no consumer.
type paramsOnlyBackward interface {
	BackwardParamsOnly(grad *mat.Matrix) error
}

// BackwardParamsOnly accumulates parameter gradients like Backward but
// skips computing the gradient with respect to the network input — dead
// work for every optimizer-driven training loop. On a fused MLP (or a
// first layer implementing the skip, like Conv2D) a whole GEMM is saved
// per pass.
func (n *Network) BackwardParamsOnly(grad *mat.Matrix) error {
	if n.fused != nil {
		_, err := n.fused.Backward(grad, false)
		return err
	}
	var err error
	for i := len(n.layers) - 1; i >= 1; i-- {
		if grad, err = n.layers[i].Backward(grad); err != nil {
			return fmt.Errorf("nn: layer %d backward: %w", i, err)
		}
	}
	if len(n.layers) > 0 {
		if po, ok := n.layers[0].(paramsOnlyBackward); ok {
			if err := po.BackwardParamsOnly(grad); err != nil {
				return fmt.Errorf("nn: layer 0 backward: %w", err)
			}
			return nil
		}
		if _, err := n.layers[0].Backward(grad); err != nil {
			return fmt.Errorf("nn: layer 0 backward: %w", err)
		}
	}
	return nil
}

// Fused exposes the network's fused execution plan, or nil when the layer
// stack does not fuse. Callers use it to build precision-lowered twins
// (Fuse32) and in tests that pin fused-vs-layered bit-identity.
func (n *Network) Fused() *FusedMLP { return n.fused }

// Params returns all trainable parameters in layer order. The slice is
// cached and shared across calls — callers must not modify its elements
// (appending is safe: the slice is capacity-clipped).
func (n *Network) Params() []Param {
	return n.params
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams reports the total number of trainable scalars.
func (n *Network) NumParams() int {
	var total int
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// FlattenParams serializes all parameter values into a single vector, the
// representation exchanged between edge nodes and the parameter server.
func (n *Network) FlattenParams() []float64 {
	out := make([]float64, n.NumParams())
	_ = n.FlattenParamsInto(out)
	return out
}

// FlattenParamsInto serializes all parameter values into dst, which must
// have length NumParams. It is the allocation-free form of FlattenParams.
func (n *Network) FlattenParamsInto(dst []float64) error {
	if len(dst) != n.NumParams() {
		return fmt.Errorf("nn: flatten %d params into buffer of %d", n.NumParams(), len(dst))
	}
	off := 0
	for _, p := range n.Params() {
		d := p.Value.Data()
		copy(dst[off:off+len(d)], d)
		off += len(d)
	}
	return nil
}

// LoadParams overwrites all parameter values from a flat vector previously
// produced by FlattenParams on an identically shaped network.
func (n *Network) LoadParams(flat []float64) error {
	if len(flat) != n.NumParams() {
		return fmt.Errorf("nn: load %d params into network with %d", len(flat), n.NumParams())
	}
	off := 0
	for _, p := range n.Params() {
		d := p.Value.Data()
		copy(d, flat[off:off+len(d)])
		off += len(d)
	}
	return nil
}

// FlattenGrads serializes all gradients into a single vector.
func (n *Network) FlattenGrads() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm.
func (n *Network) ClipGradNorm(maxNorm float64) float64 {
	var sq float64
	params := n.Params()
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
