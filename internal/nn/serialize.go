package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ModelState is a shape-checked serialization of a network's parameters:
// one entry per parameter tensor with its dimensions, so loading into a
// mismatched architecture fails loudly instead of silently misaligning.
type ModelState struct {
	Tensors []TensorState `json:"tensors"`
}

// TensorState is one parameter tensor's shape and values.
type TensorState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// State captures the network's current parameters.
func (n *Network) State() *ModelState {
	params := n.Params()
	st := &ModelState{Tensors: make([]TensorState, len(params))}
	for i, p := range params {
		st.Tensors[i] = TensorState{
			Rows: p.Value.Rows(),
			Cols: p.Value.Cols(),
			Data: append([]float64(nil), p.Value.Data()...),
		}
	}
	return st
}

// LoadState overwrites the network's parameters from a state captured on
// an identically shaped network.
func (n *Network) LoadState(st *ModelState) error {
	if st == nil {
		return fmt.Errorf("nn: load nil state")
	}
	params := n.Params()
	if len(st.Tensors) != len(params) {
		return fmt.Errorf("nn: state has %d tensors, network has %d", len(st.Tensors), len(params))
	}
	for i, ts := range st.Tensors {
		p := params[i]
		if ts.Rows != p.Value.Rows() || ts.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: tensor %d is %dx%d, network wants %dx%d",
				i, ts.Rows, ts.Cols, p.Value.Rows(), p.Value.Cols())
		}
		if len(ts.Data) != ts.Rows*ts.Cols {
			return fmt.Errorf("nn: tensor %d has %d values for %dx%d", i, len(ts.Data), ts.Rows, ts.Cols)
		}
	}
	// Validate-then-commit: nothing is written until every tensor checks.
	for i, ts := range st.Tensors {
		copy(params[i].Value.Data(), ts.Data)
	}
	return nil
}

// WriteState serializes the network's parameters as JSON to w.
func (n *Network) WriteState(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(n.State()); err != nil {
		return fmt.Errorf("nn: write state: %w", err)
	}
	return nil
}

// ReadState loads parameters from JSON previously written by WriteState.
func (n *Network) ReadState(r io.Reader) error {
	var st ModelState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: read state: %w", err)
	}
	return n.LoadState(&st)
}

// SaveFile writes the network's parameters to path as JSON.
func (n *Network) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nn: close %s: %w", path, cerr)
		}
	}()
	return n.WriteState(f)
}

// LoadFile reads parameters from a JSON file written by SaveFile.
func (n *Network) LoadFile(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nn: close %s: %w", path, cerr)
		}
	}()
	return n.ReadState(f)
}
