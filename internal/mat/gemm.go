package mat

// Register-tiled GEMM micro-kernels, generic over the two supported scalar
// types. The float64 Matrix kernels (MulTo, MulTransATo, MulTransBTo) and
// the float32 Matrix32 mirrors both lower onto these.
//
// Blocking scheme (DESIGN.md §16): the output is split into contiguous row
// bands (one per worker — the parallel axis), each band into column blocks
// of gemmNR elements held in registers, and deep reductions into k-tiles of
// gemmKC so the streamed operand panels stay cache-resident. The one
// invariant every variant preserves is the reduction-order contract: each
// output element accumulates its k products in ascending k order, exactly
// like the naive ikj loops these kernels replaced. Blocking changes which
// element is computed when — never the order of any element's own
// floating-point additions — so results are bit-identical to the unblocked
// kernels at any worker count.
//
// A k-tile boundary loads the running value back out of dst and continues
// accumulating into registers; the addition sequence per element is the
// same as an unbroken k loop, so tiling is bit-invisible too.

// Elem is the scalar type set of the generic kernels: the precision seam
// the Backend values select between.
type Elem interface {
	~float32 | ~float64
}

const (
	// gemmNR is the register-block width: output columns accumulated in
	// registers per micro-kernel pass. Eight float64 accumulators plus
	// operand temporaries fit the amd64 XMM file and give eight
	// independent FMA chains.
	gemmNR = 8
	// gemmKC is the k-tile depth for the transpose-A kernel, whose k axis
	// can be very deep (im2col weight gradients). A tile of 64 keeps both
	// streamed operand panels (KC×acols of a, KC×bcols of b) L1-resident
	// for the shapes this package serves, so the strided column reads of a
	// hit cache. Tiling is bit-invisible: a tile boundary only moves the
	// running sum through dst, never reorders any element's additions.
	gemmKC = 64
)

// gemmRange computes rows [lo, hi) of dst = a × b. Per dst row the column
// axis is walked in gemmNR-wide register blocks; each block accumulates its
// full k reduction in registers (ascending k, matching the naive kernel)
// and stores once. Rows where an a element is zero skip that k exactly like
// the naive kernel, preserving bit-identity in the presence of Inf/NaN
// operands.
func gemmRange[T Elem](dst []T, dcols int, a []T, acols int, b []T, bcols int, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*acols : (i+1)*acols]
		drow := dst[i*dcols : (i+1)*dcols]
		j := 0
		for ; j+gemmNR <= dcols; j += gemmNR {
			var c0, c1, c2, c3, c4, c5, c6, c7 T
			off := j
			for _, av := range arow {
				if av == 0 {
					off += bcols
					continue
				}
				bb := b[off : off+gemmNR : off+gemmNR]
				c0 += av * bb[0]
				c1 += av * bb[1]
				c2 += av * bb[2]
				c3 += av * bb[3]
				c4 += av * bb[4]
				c5 += av * bb[5]
				c6 += av * bb[6]
				c7 += av * bb[7]
				off += bcols
			}
			dd := drow[j : j+gemmNR : j+gemmNR]
			dd[0], dd[1], dd[2], dd[3] = c0, c1, c2, c3
			dd[4], dd[5], dd[6], dd[7] = c4, c5, c6, c7
		}
		for ; j+4 <= dcols; j += 4 {
			var c0, c1, c2, c3 T
			off := j
			for _, av := range arow {
				if av == 0 {
					off += bcols
					continue
				}
				bb := b[off : off+4 : off+4]
				c0 += av * bb[0]
				c1 += av * bb[1]
				c2 += av * bb[2]
				c3 += av * bb[3]
				off += bcols
			}
			dd := drow[j : j+4 : j+4]
			dd[0], dd[1], dd[2], dd[3] = c0, c1, c2, c3
		}
		for ; j < dcols; j++ {
			var c T
			off := j
			for _, av := range arow {
				if av != 0 {
					c += av * b[off]
				}
				off += bcols
			}
			drow[j] = c
		}
	}
}

// gemmTransBRange computes rows [lo, hi) of dst = a × bᵀ as register-blocked
// row dot products: eight output columns (rows of b) accumulate concurrently,
// each over k ascending, sharing every arow load.
func gemmTransBRange[T Elem](dst []T, dcols int, a []T, acols int, b []T, brows int, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*acols : (i+1)*acols : (i+1)*acols]
		drow := dst[i*dcols : (i+1)*dcols]
		j := 0
		for ; j+8 <= brows; j += 8 {
			b0 := b[j*acols : (j+1)*acols : (j+1)*acols]
			b1 := b[(j+1)*acols : (j+2)*acols : (j+2)*acols]
			b2 := b[(j+2)*acols : (j+3)*acols : (j+3)*acols]
			b3 := b[(j+3)*acols : (j+4)*acols : (j+4)*acols]
			b4 := b[(j+4)*acols : (j+5)*acols : (j+5)*acols]
			b5 := b[(j+5)*acols : (j+6)*acols : (j+6)*acols]
			b6 := b[(j+6)*acols : (j+7)*acols : (j+7)*acols]
			b7 := b[(j+7)*acols : (j+8)*acols : (j+8)*acols]
			var s0, s1, s2, s3, s4, s5, s6, s7 T
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
				s4 += av * b4[k]
				s5 += av * b5[k]
				s6 += av * b6[k]
				s7 += av * b7[k]
			}
			dd := drow[j : j+8 : j+8]
			dd[0], dd[1], dd[2], dd[3] = s0, s1, s2, s3
			dd[4], dd[5], dd[6], dd[7] = s4, s5, s6, s7
		}
		for ; j+2 <= brows; j += 2 {
			b0 := b[j*acols : (j+1)*acols : (j+1)*acols]
			b1 := b[(j+1)*acols : (j+2)*acols : (j+2)*acols]
			var s0, s1 T
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
			}
			dd := drow[j : j+2 : j+2]
			dd[0], dd[1] = s0, s1
		}
		for ; j < brows; j++ {
			brow := b[j*acols : (j+1)*acols : (j+1)*acols]
			var sum T
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// gemmTransARange computes rows [lo, hi) of dst = aᵀ × b (output row i reads
// column i of a). The k axis is tiled at gemmKC: within a tile, a gemmNR
// register block accumulates ascending-k products on top of the running dst
// values loaded at tile entry, so the per-element addition sequence is the
// unbroken ascending-k chain of the naive kernel. The a[k][i]==0 skip of the
// naive kernel is preserved.
func gemmTransARange[T Elem](dst []T, dcols int, a []T, acols, arows int, b []T, bcols int, lo, hi int) {
	for k0 := 0; k0 < arows; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > arows {
			k1 = arows
		}
		first := k0 == 0
		for i := lo; i < hi; i++ {
			drow := dst[i*dcols : (i+1)*dcols]
			j := 0
			for ; j+gemmNR <= dcols; j += gemmNR {
				var c0, c1, c2, c3, c4, c5, c6, c7 T
				if !first {
					dd := drow[j : j+gemmNR : j+gemmNR]
					c0, c1, c2, c3 = dd[0], dd[1], dd[2], dd[3]
					c4, c5, c6, c7 = dd[4], dd[5], dd[6], dd[7]
				}
				aoff := k0*acols + i
				boff := k0*bcols + j
				for k := k0; k < k1; k++ {
					av := a[aoff]
					aoff += acols
					if av == 0 {
						boff += bcols
						continue
					}
					bb := b[boff : boff+gemmNR : boff+gemmNR]
					c0 += av * bb[0]
					c1 += av * bb[1]
					c2 += av * bb[2]
					c3 += av * bb[3]
					c4 += av * bb[4]
					c5 += av * bb[5]
					c6 += av * bb[6]
					c7 += av * bb[7]
					boff += bcols
				}
				dd := drow[j : j+gemmNR : j+gemmNR]
				dd[0], dd[1], dd[2], dd[3] = c0, c1, c2, c3
				dd[4], dd[5], dd[6], dd[7] = c4, c5, c6, c7
			}
			for ; j < dcols; j++ {
				var c T
				if !first {
					c = drow[j]
				}
				aoff := k0*acols + i
				boff := k0*bcols + j
				for k := k0; k < k1; k++ {
					av := a[aoff]
					aoff += acols
					if av != 0 {
						c += av * b[boff]
					}
					boff += bcols
				}
				drow[j] = c
			}
		}
	}
}
