// Package mat provides the dense float64 matrix and vector kernels used by
// the neural-network, reinforcement-learning, and federated-learning layers
// of the Chiron reproduction. It is deliberately small: row-major dense
// matrices, the handful of BLAS-like routines the upper layers need, and
// deterministic random initialization driven by an explicit *rand.Rand.
//
// The compute core is destination-passing: the *To kernels (MulTo, AddTo,
// ApplyTo, ...) write into caller-supplied matrices and allocate nothing,
// and a Workspace arena lets hot loops recycle scratch buffers across
// passes. Large GEMMs are row-blocked across a bounded worker pool
// (SetWorkers; default GOMAXPROCS) with a fixed per-element reduction
// order, so results are bit-identical at any parallelism.
package mat

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrShape is returned (wrapped) by operations whose operands have
// incompatible dimensions.
var ErrShape = errors.New("mat: shape mismatch")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix; use New or NewFromData to construct a
// usable one. Methods never retain caller-provided slices unless documented.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromData returns a rows×cols matrix backed by a copy of data.
// It returns an error if len(data) != rows*cols.
func NewFromData(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d values for %dx%d matrix", ErrShape, len(data), rows, cols)
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	return &Matrix{rows: rows, cols: cols, data: cp}, nil
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Size reports the total number of elements.
func (m *Matrix) Size() int { return len(m.data) }

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.data[r*m.cols+c] }

// Set assigns v to the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.data[r*m.cols+c] = v }

// Data exposes the underlying row-major backing slice.
//
// Aliasing contract: the returned slice IS the matrix storage — mutating it
// mutates the matrix, and any other view obtained from Data or Row of the
// same matrix observes the change immediately. Holding a returned slice
// across an operation that writes the matrix (a *To kernel targeting it, an
// optimizer step, a reused layer buffer) reads the new values, not a
// snapshot. Callers that need isolation must copy: use CopyData, CopyRow,
// or Clone.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns a view of row r (shared backing array). The aliasing contract
// of Data applies: the view stays live, so mutations through the matrix are
// visible in the slice and vice versa. Use CopyRow for a snapshot.
func (m *Matrix) Row(r int) []float64 { return m.data[r*m.cols : (r+1)*m.cols] }

// CopyData returns a fresh copy of the row-major backing data, isolated
// from later mutations of m.
func (m *Matrix) CopyData() []float64 {
	cp := make([]float64, len(m.data))
	copy(cp, m.data)
	return cp
}

// CopyRow returns a fresh copy of row r, isolated from later mutations of
// m.
func (m *Matrix) CopyRow(r int) []float64 {
	cp := make([]float64, m.cols)
	copy(cp, m.data[r*m.cols:(r+1)*m.cols])
	return cp
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	cp := New(m.rows, m.cols)
	copy(cp.data, m.data)
	return cp
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// CopyFrom copies src into m. The shapes must match exactly.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: copy %dx%d into %dx%d", ErrShape, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Randomize fills m with uniform values in [-scale, scale) drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// RandomizeNormal fills m with N(0, std²) values drawn from rng.
func (m *Matrix) RandomizeNormal(rng *rand.Rand, std float64) {
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * std
	}
}

// XavierInit fills m using Glorot/Xavier uniform initialization for a layer
// with the given fan-in and fan-out.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.Randomize(rng, limit)
}

// HeInit fills m using He/Kaiming normal initialization for ReLU networks.
func (m *Matrix) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	m.RandomizeNormal(rng, std)
}

// Mul computes dst = a × b and returns dst. If dst is nil a new matrix is
// allocated. dst must not alias a or b. It is the allocating wrapper over
// MulTo.
func Mul(dst, a, b *Matrix) (*Matrix, error) {
	if dst == nil {
		if a.cols != b.rows {
			return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
		}
		dst = New(a.rows, b.cols)
	}
	if err := MulTo(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// MulTransB computes dst = a × bᵀ and returns dst. If dst is nil a new
// matrix is allocated. It is the allocating wrapper over MulTransBTo.
func MulTransB(dst, a, b *Matrix) (*Matrix, error) {
	if dst == nil {
		if a.cols != b.cols {
			return nil, fmt.Errorf("%w: mulTransB %dx%d by (%dx%d)T", ErrShape, a.rows, a.cols, b.rows, b.cols)
		}
		dst = New(a.rows, b.rows)
	}
	if err := MulTransBTo(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// MulTransA computes dst = aᵀ × b and returns dst. If dst is nil a new
// matrix is allocated. It is the allocating wrapper over MulTransATo.
func MulTransA(dst, a, b *Matrix) (*Matrix, error) {
	if dst == nil {
		if a.rows != b.rows {
			return nil, fmt.Errorf("%w: mulTransA (%dx%d)T by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
		}
		dst = New(a.cols, b.cols)
	}
	if err := MulTransATo(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// Add computes dst = a + b elementwise and returns dst. If dst is nil a new
// matrix is allocated. It is the allocating wrapper over AddTo.
func Add(dst, a, b *Matrix) (*Matrix, error) {
	if dst == nil {
		if a.rows != b.rows || a.cols != b.cols {
			return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
		}
		dst = New(a.rows, a.cols)
	}
	if err := AddTo(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// Sub computes dst = a − b elementwise and returns dst. If dst is nil a new
// matrix is allocated. It is the allocating wrapper over SubTo.
func Sub(dst, a, b *Matrix) (*Matrix, error) {
	if dst == nil {
		if a.rows != b.rows || a.cols != b.cols {
			return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
		}
		dst = New(a.rows, a.cols)
	}
	if err := SubTo(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Matrix, v []float64) error {
	if len(v) != m.cols {
		return fmt.Errorf("%w: row vector len %d for %d cols", ErrShape, len(v), m.cols)
	}
	for r := 0; r < m.rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v[c]
		}
	}
	return nil
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled performs m += s·other in place (axpy).
func (m *Matrix) AddScaled(other *Matrix, s float64) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: addScaled %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i, v := range other.data {
		m.data[i] += s * v
	}
	return nil
}

// Apply replaces each element x of m with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// SumRows sums each column across rows, returning a length-Cols slice. It
// is the allocating wrapper over SumRowsTo.
func (m *Matrix) SumRows() []float64 {
	out := make([]float64, m.cols)
	_ = m.SumRowsTo(out)
	return out
}

// MaxNorm returns the largest absolute element of m (0 for empty matrices).
func (m *Matrix) MaxNorm() float64 {
	var best float64
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.data {
		sum += v * v
	}
	return math.Sqrt(sum)
}
