package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM kernels in this package are row-blocked: the output matrix is
// split into contiguous bands of rows and each band is computed by one
// worker. Because every output element is owned by exactly one band and the
// per-element accumulation always runs over k in ascending order, the result
// is bit-identical at any worker count — parallelism changes only which
// goroutine computes a band, never the floating-point reduction order.

// workerSetting holds the configured worker count. Values <= 0 select
// GOMAXPROCS at call time (the default).
var workerSetting atomic.Int64

// SetWorkers sets the number of workers GEMM kernels may fan out to.
// n <= 0 restores the default of GOMAXPROCS. It is safe to call
// concurrently with running kernels; in-flight operations keep the count
// they started with.
func SetWorkers(n int) { workerSetting.Store(int64(n)) }

// Workers reports the worker count currently in force.
func Workers() int {
	if n := workerSetting.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMinFlops is the smallest multiply-accumulate count worth fanning
// out: below this the goroutine handoff costs more than it saves.
const parallelMinFlops = 32 * 1024

// blockTask is one row band handed to the pool.
type blockTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan blockTask
)

// startPool lazily launches the persistent worker goroutines. The pool is
// sized at max(NumCPU, 4) so tests exercising -workers=4 genuinely run
// concurrent bands even on small machines; the effective parallelism of any
// single operation stays bounded by Workers().
func startPool() {
	size := runtime.NumCPU()
	if size < 4 {
		size = 4
	}
	poolCh = make(chan blockTask, 4*size)
	for i := 0; i < size; i++ {
		go func() {
			for t := range poolCh {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// serialRows reports whether a kernel over rows with the given flop count
// should run inline on the caller rather than fan out. Kernels use it to
// skip closure construction entirely on the serial path, keeping small
// operations allocation-free.
func serialRows(rows, flops int) bool {
	return Workers() <= 1 || rows < 2 || flops < parallelMinFlops
}

// ParallelRange runs fn over contiguous index blocks covering [0, n) on
// the package's bounded worker pool — the node-axis sharding primitive for
// batch stages outside this package (the struct-of-arrays round pipeline).
// work estimates the total scalar-operation count; small jobs, n < 2, and
// Workers() <= 1 run inline on the caller with no synchronization.
//
// fn must be safe to call concurrently on disjoint ranges and must write
// only elements it owns. Elementwise kernels are bit-identical at any
// worker count by construction (each element is computed exactly once,
// independent of banding); reductions must NOT be accumulated across
// blocks inside fn — compute per-block partials and combine them in
// block-ascending order instead, or stream the reduction sequentially.
func ParallelRange(n, work int, fn func(lo, hi int)) {
	parallelRows(n, work, fn)
}

// parallelRows runs fn over contiguous blocks covering [0, rows). flops
// estimates the total multiply-accumulate work; small jobs, rows < 2, and
// Workers() <= 1 run inline on the caller with no synchronization. The
// caller always computes the first block itself so a worker pool stall can
// never leave the operation making no progress.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	nw := Workers()
	if nw > rows {
		nw = rows
	}
	if nw <= 1 || flops < parallelMinFlops {
		if rows > 0 {
			fn(0, rows)
		}
		return
	}
	poolOnce.Do(startPool)
	chunk := (rows + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		poolCh <- blockTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}
