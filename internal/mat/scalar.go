package mat

import "math"

// Scalar activation helpers shared by the nn layers and the fused execution
// plans in both precisions. They live here (rather than in nn) so the
// float64 and float32 compute paths dedupe on one definition — a precision
// bug in a re-implemented sigmoid is exactly the kind of drift the Backend
// tolerance properties exist to catch.

// Sigmoid is the numerically stable logistic function 1/(1+e⁻ᵛ): the
// positive branch avoids overflow in exp, the negative branch avoids
// catastrophic cancellation for large |v|.
func Sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Sigmoid32 computes the logistic function for the float32 backend: the
// argument is widened to float64, evaluated by the same branch-stable
// formula, and rounded once on the way out — one rounding, not a chain.
func Sigmoid32(v float32) float32 {
	return float32(Sigmoid(float64(v)))
}

// Tanh32 computes tanh for the float32 backend, widening through float64
// like Sigmoid32 so the only float32 rounding is the final store.
func Tanh32(v float32) float32 {
	return float32(math.Tanh(float64(v)))
}
