package mat

import (
	"errors"
	"math/rand"
	"testing"
)

// TestToKernelsMatchAllocatingForms checks every destination-passing kernel
// against its allocating wrapper over random shapes — the two paths must be
// bit-identical, not merely close.
func TestToKernelsMatchAllocatingForms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		r, k, c := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := New(r, k)
		b := New(k, c)
		a.Randomize(rng, 2)
		b.Randomize(rng, 2)

		want, err := Mul(nil, a, b)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		dst := New(r, c)
		dst.Fill(999) // stale contents must be fully overwritten
		if err := MulTo(dst, a, b); err != nil {
			t.Fatalf("MulTo: %v", err)
		}
		assertIdentical(t, "MulTo", dst, want)

		at := transpose(a)
		wantTA, err := MulTransA(nil, at, b)
		if err != nil {
			t.Fatalf("MulTransA: %v", err)
		}
		dstTA := New(r, c)
		dstTA.Fill(999)
		if err := MulTransATo(dstTA, at, b); err != nil {
			t.Fatalf("MulTransATo: %v", err)
		}
		assertIdentical(t, "MulTransATo", dstTA, wantTA)

		bt := transpose(b)
		wantTB, err := MulTransB(nil, a, bt)
		if err != nil {
			t.Fatalf("MulTransB: %v", err)
		}
		dstTB := New(r, c)
		dstTB.Fill(999)
		if err := MulTransBTo(dstTB, a, bt); err != nil {
			t.Fatalf("MulTransBTo: %v", err)
		}
		assertIdentical(t, "MulTransBTo", dstTB, wantTB)
	}
}

func assertIdentical(t *testing.T, op string, got, want *Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", op, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)", op, i, g[i], w[i])
		}
	}
}

func TestElementwiseToKernels(t *testing.T) {
	a, _ := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewFromData(2, 2, []float64{10, 20, 30, 40})
	dst := New(2, 2)
	if err := AddTo(dst, a, b); err != nil {
		t.Fatalf("AddTo: %v", err)
	}
	if dst.At(1, 1) != 44 {
		t.Fatalf("AddTo = %v", dst.Data())
	}
	if err := SubTo(dst, b, a); err != nil {
		t.Fatalf("SubTo: %v", err)
	}
	if dst.At(0, 0) != 9 {
		t.Fatalf("SubTo = %v", dst.Data())
	}
	if err := ScaleTo(dst, a, 3); err != nil {
		t.Fatalf("ScaleTo: %v", err)
	}
	if dst.At(1, 0) != 9 {
		t.Fatalf("ScaleTo = %v", dst.Data())
	}
	if err := ApplyTo(dst, a, func(v float64) float64 { return -v }); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	if dst.At(0, 1) != -2 {
		t.Fatalf("ApplyTo = %v", dst.Data())
	}
	// Aliased destination is allowed for the elementwise kernels.
	if err := AddTo(a, a, b); err != nil {
		t.Fatalf("aliased AddTo: %v", err)
	}
	if a.At(0, 0) != 11 {
		t.Fatalf("aliased AddTo = %v", a.Data())
	}
}

func TestToKernelShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	if err := MulTo(nil, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("nil dst error = %v, want ErrShape", err)
	}
	if err := MulTo(New(3, 3), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst error = %v, want ErrShape", err)
	}
	if err := MulTo(New(2, 2), a, New(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("operand error = %v, want ErrShape", err)
	}
	if err := AddTo(New(2, 3), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("AddTo error = %v, want ErrShape", err)
	}
	if err := New(2, 3).SumRowsTo(make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("SumRowsTo error = %v, want ErrShape", err)
	}
}

// TestParallelGEMMBitIdentical runs the three GEMM kernels at several worker
// counts on shapes large enough to cross the parallel threshold and demands
// bit-identical results — the determinism contract of the row-blocked pool.
func TestParallelGEMMBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(2))
	a := New(97, 61)
	b := New(61, 53)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	at := transpose(a)
	bt := transpose(b)

	SetWorkers(1)
	m1, err := Mul(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	ta1, err := MulTransA(nil, at, b)
	if err != nil {
		t.Fatal(err)
	}
	tb1, err := MulTransB(nil, a, bt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 7} {
		SetWorkers(workers)
		m, err := Mul(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "Mul", m, m1)
		ta, err := MulTransA(nil, at, b)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "MulTransA", ta, ta1)
		tb, err := MulTransB(nil, a, bt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "MulTransB", tb, tb1)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", got)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(3, 4)
	if m1.Rows() != 3 || m1.Cols() != 4 {
		t.Fatalf("Get(3,4) = %dx%d", m1.Rows(), m1.Cols())
	}
	ws.Put(m1)
	m2 := ws.Get(3, 4)
	if m2 != m1 {
		t.Fatal("workspace did not recycle the returned matrix")
	}
	if m3 := ws.Get(3, 4); m3 == m2 {
		t.Fatal("workspace handed out a checked-out matrix twice")
	}
	v1 := ws.GetVec(5)
	ws.PutVec(v1)
	v2 := ws.GetVec(5)
	if &v1[0] != &v2[0] {
		t.Fatal("workspace did not recycle the returned vector")
	}
	ws.Put(nil)     // must not panic
	ws.PutVec(nil)  // must not panic
	_ = ws.Get(0, 0) // degenerate shapes are fine
}

func TestCopyDataCopyRowIsolation(t *testing.T) {
	m, _ := NewFromData(2, 2, []float64{1, 2, 3, 4})
	d := m.CopyData()
	r := m.CopyRow(1)
	m.Set(0, 0, 99)
	m.Set(1, 0, 99)
	if d[0] != 1 || r[0] != 3 {
		t.Fatalf("copies alias the matrix: data %v row %v", d, r)
	}
	// And the documented live views do alias.
	if m.Data()[0] != 99 || m.Row(1)[0] != 99 {
		t.Fatal("Data/Row must remain live views")
	}
}
