package mat

import "fmt"

// Matrix32 is a dense, row-major float32 matrix — the storage type of the
// opt-in reduced-precision backend (see backend.go). It intentionally
// exposes only the surface the float32 compute path needs: construction,
// element access, down-conversion from the float64 Matrix, and the three
// GEMM forms plus the elementwise helpers the fused network pass uses. The
// float64 Matrix remains the package's primary type and the reference
// semantics; float32 results are validated against it by tolerance
// properties, never by bit-exact digests.
//
// The GEMM kernels are the same generic register-tiled routines that power
// the float64 path (gemm.go), stenciled by the compiler for float32, so the
// reduction-order contract carries over: each destination element
// accumulates over k strictly ascending, and results are bit-identical at
// any worker count within the float32 path itself.
type Matrix32 struct {
	rows, cols int
	data       []float32
}

// New32 returns a zeroed rows×cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: New32(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// Rows reports the number of rows.
func (m *Matrix32) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix32) Cols() int { return m.cols }

// Size reports the total element count.
func (m *Matrix32) Size() int { return len(m.data) }

// At returns the element at row r, column c.
func (m *Matrix32) At(r, c int) float32 { return m.data[r*m.cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix32) Set(r, c int, v float32) { m.data[r*m.cols+c] = v }

// Data exposes the backing slice in row-major order. Mutations are visible
// to the matrix.
func (m *Matrix32) Data() []float32 { return m.data }

// Row returns row r as a slice sharing the matrix's backing storage.
func (m *Matrix32) Row(r int) []float32 { return m.data[r*m.cols : (r+1)*m.cols] }

// Zero clears every element.
func (m *Matrix32) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix32) Scale(s float32) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// CopyFrom overwrites m with src. Shapes must match.
func (m *Matrix32) CopyFrom(src *Matrix32) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: copy32 %dx%d from %dx%d", ErrShape, m.rows, m.cols, src.rows, src.cols)
	}
	copy(m.data, src.data)
	return nil
}

// SetFrom overwrites m with src down-converted element by element — the
// boundary crossing from the float64 reference world into the float32
// backend (weight refresh, input staging). Shapes must match.
func (m *Matrix32) SetFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: set32 %dx%d from %dx%d", ErrShape, m.rows, m.cols, src.rows, src.cols)
	}
	for i, v := range src.data {
		m.data[i] = float32(v)
	}
	return nil
}

// AddScaled computes m += s·other elementwise. Shapes must match.
func (m *Matrix32) AddScaled(other *Matrix32, s float32) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: addScaled32 %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i, v := range other.data {
		m.data[i] += s * v
	}
	return nil
}

// SumRowsTo sums each column across rows into out, which must have length
// Cols.
func (m *Matrix32) SumRowsTo(out []float32) error {
	if len(out) != m.cols {
		return fmt.Errorf("%w: sumRows32 out len %d for %d cols", ErrShape, len(out), m.cols)
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.cols : (r+1)*m.cols]
		for c, v := range row {
			out[c] += v
		}
	}
	return nil
}

// checkDst32 validates a float32 destination shape.
func checkDst32(op string, dst *Matrix32, rows, cols int) error {
	if dst == nil {
		return fmt.Errorf("%w: %s nil dst, want %dx%d", ErrShape, op, rows, cols)
	}
	if dst.rows != rows || dst.cols != cols {
		return fmt.Errorf("%w: %s dst %dx%d want %dx%d", ErrShape, op, dst.rows, dst.cols, rows, cols)
	}
	return nil
}

// MulTo32 computes dst = a × b without allocating; the float32 twin of
// MulTo, sharing its kernel, banding, and aliasing rules.
func MulTo32(dst, a, b *Matrix32) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: mul32 %dx%d by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst32("mul32", dst, a.rows, b.cols); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.cols; serialRows(a.rows, flops) {
		gemmRange(dst.data, dst.cols, a.data, a.cols, b.data, b.cols, 0, a.rows)
	} else {
		parallelRows(a.rows, flops, func(lo, hi int) {
			gemmRange(dst.data, dst.cols, a.data, a.cols, b.data, b.cols, lo, hi)
		})
	}
	return nil
}

// MulTransATo32 computes dst = aᵀ × b without allocating; the float32 twin
// of MulTransATo.
func MulTransATo32(dst, a, b *Matrix32) error {
	if a.rows != b.rows {
		return fmt.Errorf("%w: mulTransA32 (%dx%d)T by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst32("mulTransA32", dst, a.cols, b.cols); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.cols; serialRows(a.cols, flops) {
		gemmTransARange(dst.data, dst.cols, a.data, a.cols, a.rows, b.data, b.cols, 0, a.cols)
	} else {
		parallelRows(a.cols, flops, func(lo, hi int) {
			gemmTransARange(dst.data, dst.cols, a.data, a.cols, a.rows, b.data, b.cols, lo, hi)
		})
	}
	return nil
}

// MulTransBTo32 computes dst = a × bᵀ without allocating; the float32 twin
// of MulTransBTo.
func MulTransBTo32(dst, a, b *Matrix32) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: mulTransB32 %dx%d by (%dx%d)T", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst32("mulTransB32", dst, a.rows, b.rows); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.rows; serialRows(a.rows, flops) {
		gemmTransBRange(dst.data, dst.cols, a.data, a.cols, b.data, b.rows, 0, a.rows)
	} else {
		parallelRows(a.rows, flops, func(lo, hi int) {
			gemmTransBRange(dst.data, dst.cols, a.data, a.cols, b.data, b.rows, lo, hi)
		})
	}
	return nil
}
