package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Dot returns the inner product of a and b. It returns an error when the
// lengths differ.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: dot len %d and %d", ErrShape, len(a), len(b))
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum, nil
}

// Axpy performs dst += s·src in place.
func Axpy(dst, src []float64, s float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: axpy len %d and %d", ErrShape, len(dst), len(src))
	}
	for i, v := range src {
		dst[i] += s * v
	}
	return nil
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	cp := make([]float64, len(v))
	copy(cp, v)
	return cp
}

// SumVec returns the sum of the elements of v.
func SumVec(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum
}

// MeanVec returns the arithmetic mean of v, or 0 for an empty slice.
func MeanVec(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// StdVec returns the population standard deviation of v, or 0 when v has
// fewer than two elements.
func StdVec(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mean := MeanVec(v)
	var sum float64
	for _, x := range v {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(v)))
}

// MaxVec returns the maximum element of v and its index; it returns
// (-Inf, -1) for an empty slice.
func MaxVec(v []float64) (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// MinVec returns the minimum element of v and its index; it returns
// (+Inf, -1) for an empty slice.
func MinVec(v []float64) (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Softmax writes the softmax of src into dst (which may alias src) and
// returns dst. It is numerically stable for large logits.
func Softmax(dst, src []float64) ([]float64, error) {
	if dst == nil {
		dst = make([]float64, len(src))
	}
	if len(dst) != len(src) {
		return nil, fmt.Errorf("%w: softmax len %d into %d", ErrShape, len(src), len(dst))
	}
	if len(src) == 0 {
		return dst, nil
	}
	maxv, _ := MaxVec(src)
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst, nil
}

// LogSumExp returns log(Σ exp(v_i)) computed stably.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	maxv, _ := MaxVec(v)
	var sum float64
	for _, x := range v {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampVec clamps every element of v into [lo, hi] in place.
func ClampVec(v []float64, lo, hi float64) {
	for i, x := range v {
		v[i] = Clamp(x, lo, hi)
	}
}

// Normalize rescales v in place so its elements sum to one. When the sum is
// non-positive it falls back to the uniform distribution.
func Normalize(v []float64) {
	if len(v) == 0 {
		return
	}
	sum := SumVec(v)
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	ScaleVec(v, 1/sum)
}

// RandPerm fills a permutation of [0,n) using rng.
func RandPerm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
