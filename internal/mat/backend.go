package mat

// Precision selects the element type of a compute path.
type Precision int

const (
	// Float64 is the reference precision: every result is pinned bit-exactly
	// by golden digests and the determinism properties.
	Float64 Precision = iota
	// Float32 is the opt-in reduced precision: half the memory traffic per
	// element, validated against the float64 reference by tolerance
	// properties rather than digests.
	Float32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return "unknown"
	}
}

// Backend bundles a precision with the tolerances within which that
// precision's results are accepted as equivalent to the float64 reference.
// It is a value type: callers thread it through construction (e.g.
// nn.Fuse32) and tests use Within to phrase tolerance properties uniformly
// across precisions.
type Backend struct {
	Precision Precision
	// AbsTol and RelTol bound the acceptable deviation from the float64
	// reference: |got − want| ≤ AbsTol + RelTol·|want|. Both are zero for
	// the float64 backend, making Within exact equality — the reference
	// semantics really are bit-identical, not merely "close".
	AbsTol, RelTol float64
}

// Float64Backend is the reference backend. Within demands exact equality.
var Float64Backend = Backend{Precision: Float64}

// Float32Backend is the reduced-precision backend. The tolerances cover a
// forward or forward+backward pass of the repository's small policy and
// classifier MLPs (a few chained k≈64 reductions); they are deliberately
// loose enough to be stable across kernel blocking changes and tight enough
// that a precision bug (double rounding, wrong accumulator type) fails them.
var Float32Backend = Backend{Precision: Float32, AbsTol: 1e-4, RelTol: 1e-3}

// Within reports whether got is within the backend's tolerance of want:
// |got − want| ≤ AbsTol + RelTol·|want|.
func (b Backend) Within(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	w := want
	if w < 0 {
		w = -w
	}
	return d <= b.AbsTol+b.RelTol*w
}
