package mat

// Workspace is an arena of reusable scratch matrices and vectors. Hot loops
// (a network forward/backward pass, a PPO update) check buffers out with
// Get/GetVec, use them as destinations for the *To kernels, and return them
// with Put/PutVec when the pass ends; steady state then allocates nothing.
//
// Checked-out buffers have unspecified contents — callers must fully
// overwrite them (every *To kernel does) or call Zero first. A Workspace is
// NOT safe for concurrent use; give each concurrently running pipeline its
// own arena.
type Workspace struct {
	mats map[[2]int][]*Matrix
	vecs map[int][][]float64
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{
		mats: make(map[[2]int][]*Matrix),
		vecs: make(map[int][][]float64),
	}
}

// Get checks out a rows×cols matrix with unspecified contents, reusing a
// previously returned one of the same shape when available.
func (w *Workspace) Get(rows, cols int) *Matrix {
	key := [2]int{rows, cols}
	if free := w.mats[key]; len(free) > 0 {
		m := free[len(free)-1]
		w.mats[key] = free[:len(free)-1]
		return m
	}
	return New(rows, cols)
}

// Put returns a matrix obtained from Get to the arena. The caller must not
// use m afterwards. Put accepts nil and foreign matrices (they simply join
// the arena keyed by their shape).
func (w *Workspace) Put(m *Matrix) {
	if m == nil {
		return
	}
	key := [2]int{m.rows, m.cols}
	w.mats[key] = append(w.mats[key], m)
}

// GetVec checks out a length-n slice with unspecified contents.
func (w *Workspace) GetVec(n int) []float64 {
	if free := w.vecs[n]; len(free) > 0 {
		v := free[len(free)-1]
		w.vecs[n] = free[:len(free)-1]
		return v
	}
	return make([]float64, n)
}

// PutVec returns a slice obtained from GetVec to the arena.
func (w *Workspace) PutVec(v []float64) {
	if v == nil {
		return
	}
	w.vecs[len(v)] = append(w.vecs[len(v)], v)
}

// Ensure returns m when it already has the requested shape and a freshly
// allocated rows×cols matrix otherwise. It is the field-backed counterpart
// of Workspace.Get for code that keeps one long-lived scratch buffer per
// role: contents are unspecified, so callers must fully overwrite (every
// *To kernel does) or Zero first.
func Ensure(m *Matrix, rows, cols int) *Matrix {
	if m != nil && m.rows == rows && m.cols == cols {
		return m
	}
	return New(rows, cols)
}

// EnsureVec is Ensure for flat slices: it returns v when len(v) == n and a
// new slice otherwise, with unspecified contents.
func EnsureVec(v []float64, n int) []float64 {
	if len(v) == n {
		return v
	}
	return make([]float64, n)
}
