package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2}
	if err := Axpy(dst, []float64{10, 20}, 0.5); err != nil {
		t.Fatalf("Axpy: %v", err)
	}
	if dst[0] != 6 || dst[1] != 12 {
		t.Fatalf("Axpy = %v", dst)
	}
	if err := Axpy(dst, []float64{1}, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestScaleCloneSum(t *testing.T) {
	v := []float64{1, 2, 3}
	c := CloneVec(v)
	ScaleVec(v, 2)
	if c[0] != 1 {
		t.Fatal("CloneVec aliases source")
	}
	if SumVec(v) != 12 {
		t.Fatalf("SumVec = %v", SumVec(v))
	}
}

func TestMeanStd(t *testing.T) {
	if MeanVec(nil) != 0 {
		t.Fatal("MeanVec(nil) != 0")
	}
	if StdVec([]float64{5}) != 0 {
		t.Fatal("StdVec(single) != 0")
	}
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if MeanVec(v) != 5 {
		t.Fatalf("MeanVec = %v", MeanVec(v))
	}
	if math.Abs(StdVec(v)-2) > 1e-12 {
		t.Fatalf("StdVec = %v, want 2", StdVec(v))
	}
}

func TestMaxMinVec(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	maxv, maxi := MaxVec(v)
	minv, mini := MinVec(v)
	if maxv != 7 || maxi != 2 {
		t.Fatalf("MaxVec = %v,%d", maxv, maxi)
	}
	if minv != -1 || mini != 1 {
		t.Fatalf("MinVec = %v,%d", minv, mini)
	}
	if _, i := MaxVec(nil); i != -1 {
		t.Fatal("MaxVec(nil) index != -1")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	out, err := Softmax(nil, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Softmax: %v", err)
	}
	var sum float64
	for i, v := range out {
		if v <= 0 {
			t.Fatalf("softmax[%d] = %v, want > 0", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
}

func TestSoftmaxStability(t *testing.T) {
	out, err := Softmax(nil, []float64{1000, 1001, 999})
	if err != nil {
		t.Fatalf("Softmax: %v", err)
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", out)
		}
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	v := []float64{0, 0}
	if _, err := Softmax(v, v); err != nil {
		t.Fatalf("Softmax in place: %v", err)
	}
	if math.Abs(v[0]-0.5) > 1e-12 {
		t.Fatalf("softmax in place = %v", v)
	}
}

// Property: softmax output always sums to one and is invariant to adding a
// constant to all logits.
func TestSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 100 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		v := make([]float64, n)
		shifted := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 5
			shifted[i] = v[i] + shift
		}
		a, err := Softmax(nil, v)
		if err != nil {
			return false
		}
		b, err := Softmax(nil, shifted)
		if err != nil {
			return false
		}
		var sum float64
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
			sum += a[i]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want ln2", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) != -Inf")
	}
	// Stability at large magnitudes.
	if got := LogSumExp([]float64{1e4, 1e4}); math.Abs(got-(1e4+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp large = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
	v := []float64{-2, 0.5, 2}
	ClampVec(v, -1, 1)
	if v[0] != -1 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("ClampVec = %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{1, 3}
	Normalize(v)
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatalf("Normalize = %v", v)
	}
	// Degenerate inputs fall back to uniform.
	z := []float64{0, 0, 0}
	Normalize(z)
	for _, x := range z {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Fatalf("Normalize degenerate = %v", z)
		}
	}
	neg := []float64{-1, -1}
	Normalize(neg)
	if neg[0] != 0.5 {
		t.Fatalf("Normalize negative = %v", neg)
	}
}
