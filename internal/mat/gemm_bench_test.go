package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel-level benchmarks at the shapes the agent stack actually runs: the
// policy/critic MLP layers (batch 32, widths 62→64→64→1) and the im2col
// conv factorization (5760-row panels). These pin the register-tiled
// kernels in gemm.go directly, below the nn layer.

func benchMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkGemmMulTo(b *testing.B) {
	cases := []struct{ m, k, n int }{
		{32, 62, 64},   // policy MLP input layer
		{32, 64, 64},   // policy MLP hidden layer
		{32, 64, 1},    // value head
		{5760, 10, 25}, // conv backward: grad × weights
	}
	for _, cs := range cases {
		b.Run(fmt.Sprintf("%dx%dx%d", cs.m, cs.k, cs.n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := benchMatrix(rng, cs.m, cs.k)
			bb := benchMatrix(rng, cs.k, cs.n)
			dst := New(cs.m, cs.n)
			b.SetBytes(int64(8 * cs.m * cs.k * cs.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MulTo(dst, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGemmMulTransATo(b *testing.B) {
	cases := []struct{ m, k, n int }{
		{62, 32, 64},   // dW of the input layer: xᵀ × grad
		{64, 32, 64},   // dW of a hidden layer
		{10, 5760, 25}, // conv dW: gradᵀ × im2col panel (deep k)
	}
	for _, cs := range cases {
		b.Run(fmt.Sprintf("%dx%dx%d", cs.m, cs.k, cs.n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := benchMatrix(rng, cs.k, cs.m)
			bb := benchMatrix(rng, cs.k, cs.n)
			dst := New(cs.m, cs.n)
			b.SetBytes(int64(8 * cs.m * cs.k * cs.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MulTransATo(dst, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGemmMulTransBTo(b *testing.B) {
	cases := []struct{ m, k, n int }{
		{32, 64, 64},   // dx through a hidden layer: grad × Wᵀ
		{5760, 25, 10}, // conv forward: im2col panel × Wᵀ
	}
	for _, cs := range cases {
		b.Run(fmt.Sprintf("%dx%dx%d", cs.m, cs.k, cs.n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := benchMatrix(rng, cs.m, cs.k)
			bb := benchMatrix(rng, cs.n, cs.k)
			dst := New(cs.m, cs.n)
			b.SetBytes(int64(8 * cs.m * cs.k * cs.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MulTransBTo(dst, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
