package mat

import "fmt"

// Destination-passing vector kernels, the flat-slice counterparts of the
// *To matrix kernels in dst.go: every function writes its full result into
// a caller-supplied dst and allocates nothing, so hot loops can stream
// node-axis columns through them with Workspace- or EnsureVec-managed
// buffers. Unless noted otherwise dst may alias any operand — all kernels
// are elementwise with dst[i] depending only on operand element i.
//
// The arithmetic is deliberately the plain scalar expression per element
// (no reciprocal-multiply or reassociation tricks), so a batched pass over
// a column is bit-identical to the per-element scalar code it replaces —
// the contract the struct-of-arrays fleet kernels in internal/device rely
// on.

// checkVecDst validates that dst and every operand share one length.
func checkVecDst(op string, dst []float64, operands ...[]float64) error {
	for _, v := range operands {
		if len(v) != len(dst) {
			return fmt.Errorf("%w: %s dst len %d, operand len %d", ErrShape, op, len(dst), len(v))
		}
	}
	return nil
}

// ScaleVecTo computes dst[i] = s·src[i].
func ScaleVecTo(dst, src []float64, s float64) error {
	if err := checkVecDst("scaleVec", dst, src); err != nil {
		return err
	}
	for i, v := range src {
		dst[i] = s * v
	}
	return nil
}

// DivScalarVecTo computes dst[i] = src[i]/s — a true per-element division,
// not a multiply by 1/s, so results match scalar code dividing element by
// element to the last ULP.
func DivScalarVecTo(dst, src []float64, s float64) error {
	if err := checkVecDst("divScalarVec", dst, src); err != nil {
		return err
	}
	for i, v := range src {
		dst[i] = v / s
	}
	return nil
}

// AddVecTo computes dst[i] = a[i] + b[i].
func AddVecTo(dst, a, b []float64) error {
	if err := checkVecDst("addVec", dst, a, b); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return nil
}

// MulElemVecTo computes dst[i] = a[i]·b[i].
func MulElemVecTo(dst, a, b []float64) error {
	if err := checkVecDst("mulElemVec", dst, a, b); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
	return nil
}

// DivElemVecTo computes dst[i] = a[i]/b[i].
func DivElemVecTo(dst, a, b []float64) error {
	if err := checkVecDst("divElemVec", dst, a, b); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = a[i] / b[i]
	}
	return nil
}

// ClampVecTo computes dst[i] = Clamp(src[i], lo, hi) against scalar bounds.
func ClampVecTo(dst, src []float64, lo, hi float64) error {
	if err := checkVecDst("clampVec", dst, src); err != nil {
		return err
	}
	for i, v := range src {
		dst[i] = Clamp(v, lo, hi)
	}
	return nil
}

// ClampVecBoundsTo computes dst[i] = Clamp(src[i], lo[i], hi[i]) against
// per-element bounds columns — the box-constraint step of the batched
// Eqn. (11) best response, where every node carries its own [ζ_min, ζ_max].
func ClampVecBoundsTo(dst, src, lo, hi []float64) error {
	if err := checkVecDst("clampVecBounds", dst, src, lo, hi); err != nil {
		return err
	}
	for i, v := range src {
		dst[i] = Clamp(v, lo[i], hi[i])
	}
	return nil
}

// FillVec sets every element of dst to s.
func FillVec(dst []float64, s float64) {
	for i := range dst {
		dst[i] = s
	}
}

// SumVecRange returns Σ v[lo:hi] accumulated in ascending index order —
// the streaming-reduction primitive batch stages use: partial sums over
// fixed ranges, combined by the caller in range-ascending order, are
// bit-deterministic at any worker count.
func SumVecRange(v []float64, lo, hi int) float64 {
	var sum float64
	for _, x := range v[lo:hi] {
		sum += x
	}
	return sum
}

// MaxVecRange returns max(v[lo:hi]) scanned in ascending index order, or
// -Inf for an empty range (mirroring MaxVec).
func MaxVecRange(v []float64, lo, hi int) float64 {
	best, _ := MaxVec(v[lo:hi])
	return best
}
