package mat

import "fmt"

// Destination-passing forms of the package's kernels: every *To function
// writes its result into a caller-supplied dst and allocates nothing. The
// original allocating forms (Mul, Add, ...) are thin wrappers that allocate
// a destination when handed nil and then delegate here, so the two paths
// compute bit-identical results.
//
// dst must not alias any operand unless a function documents otherwise; the
// GEMM kernels read operand rows while streaming writes into dst rows, so
// an aliased destination would corrupt its own inputs mid-computation.

// checkDst validates a destination shape against the required dimensions.
func checkDst(op string, dst *Matrix, rows, cols int) error {
	if dst == nil {
		return fmt.Errorf("%w: %s nil dst, want %dx%d", ErrShape, op, rows, cols)
	}
	if dst.rows != rows || dst.cols != cols {
		return fmt.Errorf("%w: %s dst %dx%d want %dx%d", ErrShape, op, dst.rows, dst.cols, rows, cols)
	}
	return nil
}

// MulTo computes dst = a × b without allocating. dst must be a.Rows()×
// b.Cols() and must not alias a or b. Large products are row-blocked over
// the worker pool; results are bit-identical at any worker count.
func MulTo(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst("mul", dst, a.rows, b.cols); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.cols; serialRows(a.rows, flops) {
		mulRange(dst, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, flops, func(lo, hi int) { mulRange(dst, a, b, lo, hi) })
	}
	return nil
}

// mulRange computes rows [lo, hi) of dst = a × b via the register-tiled
// kernel in gemm.go. Each dst element accumulates over k ascending, so
// banding the rows never changes the reduction order.
func mulRange(dst, a, b *Matrix, lo, hi int) {
	gemmRange(dst.data, dst.cols, a.data, a.cols, b.data, b.cols, lo, hi)
}

// MulTransATo computes dst = aᵀ × b without allocating. dst must be
// a.Cols()×b.Cols() and must not alias a or b.
func MulTransATo(dst, a, b *Matrix) error {
	if a.rows != b.rows {
		return fmt.Errorf("%w: mulTransA (%dx%d)T by %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst("mulTransA", dst, a.cols, b.cols); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.cols; serialRows(a.cols, flops) {
		mulTransARange(dst, a, b, 0, a.cols)
	} else {
		parallelRows(a.cols, flops, func(lo, hi int) { mulTransARange(dst, a, b, lo, hi) })
	}
	return nil
}

// mulTransARange computes rows [lo, hi) of dst = aᵀ × b via the k-tiled
// kernel in gemm.go: output row i reads column i of a against the rows of
// b, accumulating over k ascending, so the serial (full-range) and banded
// forms are bit-identical.
func mulTransARange(dst, a, b *Matrix, lo, hi int) {
	gemmTransARange(dst.data, dst.cols, a.data, a.cols, a.rows, b.data, b.cols, lo, hi)
}

// MulTransBTo computes dst = a × bᵀ without allocating. dst must be
// a.Rows()×b.Rows() and must not alias a or b.
func MulTransBTo(dst, a, b *Matrix) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: mulTransB %dx%d by (%dx%d)T", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst("mulTransB", dst, a.rows, b.rows); err != nil {
		return err
	}
	if flops := a.rows * a.cols * b.rows; serialRows(a.rows, flops) {
		mulTransBRange(dst, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, flops, func(lo, hi int) { mulTransBRange(dst, a, b, lo, hi) })
	}
	return nil
}

// mulTransBRange computes rows [lo, hi) of dst = a × bᵀ as register-blocked
// row-dot-products over k ascending (gemm.go).
func mulTransBRange(dst, a, b *Matrix, lo, hi int) {
	gemmTransBRange(dst.data, dst.cols, a.data, a.cols, b.data, b.rows, lo, hi)
}

// AddTo computes dst = a + b elementwise without allocating. dst may alias
// a or b.
func AddTo(dst, a, b *Matrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst("add", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return nil
}

// SubTo computes dst = a − b elementwise without allocating. dst may alias
// a or b.
func SubTo(dst, a, b *Matrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if err := checkDst("sub", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return nil
}

// ScaleTo computes dst = s·a elementwise without allocating. dst may alias
// a.
func ScaleTo(dst, a *Matrix, s float64) error {
	if err := checkDst("scale", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i, v := range a.data {
		dst.data[i] = s * v
	}
	return nil
}

// ApplyTo computes dst[i] = f(a[i]) elementwise without allocating. dst may
// alias a.
func ApplyTo(dst, a *Matrix, f func(float64) float64) error {
	if err := checkDst("apply", dst, a.rows, a.cols); err != nil {
		return err
	}
	for i, v := range a.data {
		dst.data[i] = f(v)
	}
	return nil
}

// SumRowsTo sums each column across rows into out, which must have length
// Cols. It is the allocation-free form of SumRows.
func (m *Matrix) SumRowsTo(out []float64) error {
	if len(out) != m.cols {
		return fmt.Errorf("%w: sumRows out len %d for %d cols", ErrShape, len(out), m.cols)
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.cols : (r+1)*m.cols]
		for c, v := range row {
			out[c] += v
		}
	}
	return nil
}
