package mat

import (
	"math"
	"math/rand"
	"testing"
)

// rand32Pair draws a float64 matrix and its float32 downcast together.
func rand32Pair(rng *rand.Rand, rows, cols int) (*Matrix, *Matrix32) {
	m := New(rows, cols)
	m.Randomize(rng, 1)
	m32 := New32(rows, cols)
	m32.SetFrom(m)
	return m, m32
}

func TestMatrix32BasicOps(t *testing.T) {
	m := New32(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || m.Size() != 6 {
		t.Fatalf("shape: %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At after Set: %v", m.At(1, 2))
	}
	if m.Row(1)[2] != 5 {
		t.Fatalf("Row view: %v", m.Row(1))
	}
	other := New32(2, 3)
	other.CopyFrom(m)
	other.AddScaled(m, 2)
	if other.At(1, 2) != 15 {
		t.Fatalf("AddScaled: %v", other.At(1, 2))
	}
	other.Scale(0.5)
	if other.At(1, 2) != 7.5 {
		t.Fatalf("Scale: %v", other.At(1, 2))
	}
	sums := make([]float32, 3)
	other.SumRowsTo(sums)
	if sums[2] != 7.5 {
		t.Fatalf("SumRowsTo: %v", sums)
	}
	other.Zero()
	if other.At(1, 2) != 0 {
		t.Fatalf("Zero: %v", other.At(1, 2))
	}
}

// TestMatrix32SetFromRoundTrips checks the downcast: every element is the
// nearest float32 to its float64 source.
func TestMatrix32SetFromRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, dst := rand32Pair(rng, 7, 11)
	for i, v := range src.Data() {
		if dst.Data()[i] != float32(v) {
			t.Fatalf("element %d: %v != float32(%v)", i, dst.Data()[i], v)
		}
	}
}

// TestMatrix32MulWithinToleranceOfFloat64 pins the float32 GEMM kernels to
// the float64 reference within the Float32Backend tolerance — the numeric
// contract the opt-in low-precision path is validated by.
func TestMatrix32MulWithinToleranceOfFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	backend := Float32Backend
	a64, a32 := rand32Pair(rng, 33, 47)
	b64, b32 := rand32Pair(rng, 47, 21)
	want, err := Mul(nil, a64, b64)
	if err != nil {
		t.Fatal(err)
	}
	got := New32(33, 21)
	if err := MulTo32(got, a32, b32); err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Data() {
		g := float64(got.Data()[i])
		if !backend.Within(g, w) {
			t.Fatalf("element %d: float32 %v vs float64 %v (diff %v) outside tolerance", i, g, w, math.Abs(g-w))
		}
	}
}

// transpose32 builds the explicit transpose of m.
func transpose32(m *Matrix32) *Matrix32 {
	out := New32(m.Cols(), m.Rows())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func assertIdentical32(t *testing.T, name string, got, want *Matrix32) {
	t.Helper()
	for i, w := range want.Data() {
		if got.Data()[i] != w {
			t.Fatalf("%s element %d: %v != %v (not bit-identical)", name, i, got.Data()[i], w)
		}
	}
}

// TestMatrix32TransKernelsMatchExplicitTranspose checks MulTransATo32 and
// MulTransBTo32 against MulTo32 on explicitly transposed operands. Equality
// is exact: all three kernels accumulate each destination element over k in
// ascending order, so the operand layout cannot move a single ULP.
func TestMatrix32TransKernelsMatchExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, a := rand32Pair(rng, 19, 23)
	_, b := rand32Pair(rng, 23, 17)
	want := New32(19, 17)
	if err := MulTo32(want, a, b); err != nil {
		t.Fatal(err)
	}
	ta := New32(19, 17)
	if err := MulTransATo32(ta, transpose32(a), b); err != nil {
		t.Fatal(err)
	}
	assertIdentical32(t, "MulTransATo32", ta, want)
	tb := New32(19, 17)
	if err := MulTransBTo32(tb, a, transpose32(b)); err != nil {
		t.Fatal(err)
	}
	assertIdentical32(t, "MulTransBTo32", tb, want)
}

// TestMatrix32ParallelGEMMBitIdentical demands bit-identical float32 GEMM
// results at every worker count — the same row-banding determinism contract
// the float64 kernels carry, on shapes crossing the parallel threshold.
func TestMatrix32ParallelGEMMBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(6))
	_, a := rand32Pair(rng, 97, 61)
	_, b := rand32Pair(rng, 61, 53)
	at := transpose32(a)
	bt := transpose32(b)

	SetWorkers(1)
	m1, ta1, tb1 := New32(97, 53), New32(97, 53), New32(97, 53)
	if err := MulTo32(m1, a, b); err != nil {
		t.Fatal(err)
	}
	if err := MulTransATo32(ta1, at, b); err != nil {
		t.Fatal(err)
	}
	if err := MulTransBTo32(tb1, a, bt); err != nil {
		t.Fatal(err)
	}
	m, ta, tb := New32(97, 53), New32(97, 53), New32(97, 53)
	for _, workers := range []int{2, 3, 4, 7} {
		SetWorkers(workers)
		if err := MulTo32(m, a, b); err != nil {
			t.Fatal(err)
		}
		assertIdentical32(t, "MulTo32", m, m1)
		if err := MulTransATo32(ta, at, b); err != nil {
			t.Fatal(err)
		}
		assertIdentical32(t, "MulTransATo32", ta, ta1)
		if err := MulTransBTo32(tb, a, bt); err != nil {
			t.Fatal(err)
		}
		assertIdentical32(t, "MulTransBTo32", tb, tb1)
	}
}

// TestBackendWithin pins the tolerance semantics of the precision seam.
func TestBackendWithin(t *testing.T) {
	if Float64Backend.Precision.String() != "float64" || Float32Backend.Precision.String() != "float32" {
		t.Fatalf("precision names: %q %q", Float64Backend.Precision.String(), Float32Backend.Precision.String())
	}
	// Float64 backend is exact equality.
	if !Float64Backend.Within(1.0, 1.0) {
		t.Fatal("f64 backend rejects equal values")
	}
	if Float64Backend.Within(1.0, 1.0+1e-15) {
		t.Fatal("f64 backend accepts a ULP-scale difference")
	}
	// Float32 backend: abs + rel band.
	if !Float32Backend.Within(1.00005, 1.0) {
		t.Fatal("f32 backend rejects a within-band difference")
	}
	if Float32Backend.Within(1.1, 1.0) {
		t.Fatal("f32 backend accepts a 10% error")
	}
}
