package mat

import (
	"math"
	"testing"
)

func TestVecDstKernels(t *testing.T) {
	a := []float64{1, -2, 3.5, 0}
	b := []float64{4, 0.5, -1, 8}
	dst := make([]float64, 4)

	if err := ScaleVecTo(dst, a, 3); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != 3*a[i] {
			t.Fatalf("scale[%d] = %v", i, dst[i])
		}
	}
	if err := DivScalarVecTo(dst, a, 7); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != a[i]/7 {
			t.Fatalf("divScalar[%d] = %v", i, dst[i])
		}
	}
	if err := AddVecTo(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != a[i]+b[i] {
			t.Fatalf("add[%d] = %v", i, dst[i])
		}
	}
	if err := MulElemVecTo(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != a[i]*b[i] {
			t.Fatalf("mul[%d] = %v", i, dst[i])
		}
	}
	if err := DivElemVecTo(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != a[i]/b[i] {
			t.Fatalf("div[%d] = %v", i, dst[i])
		}
	}
}

// TestDivScalarVecToIsTrueDivision pins the bit-identity contract: the
// kernel must divide per element, not multiply by a reciprocal — the two
// differ in the last ULP for many operands.
func TestDivScalarVecToIsTrueDivision(t *testing.T) {
	src := []float64{1, 3, 7, 11, 1e300, 5e-324}
	s := 49.0
	dst := make([]float64, len(src))
	if err := DivScalarVecTo(dst, src, s); err != nil {
		t.Fatal(err)
	}
	for i, v := range src {
		if dst[i] != v/s {
			t.Fatalf("dst[%d] = %b, want %b", i, dst[i], v/s)
		}
	}
	// Witness that the reciprocal shortcut would actually diverge here,
	// proving the test discriminates.
	inv := 1 / s
	diverged := false
	for _, v := range src {
		if v*inv != v/s {
			diverged = true
		}
	}
	if !diverged {
		t.Skip("no reciprocal-divergent operand on this platform")
	}
}

func TestClampVecBoundsTo(t *testing.T) {
	src := []float64{0.5, 5, -3, 2}
	lo := []float64{1, 1, 1, 1}
	hi := []float64{4, 4, 4, 4}
	dst := make([]float64, 4)
	if err := ClampVecBoundsTo(dst, src, lo, hi); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 1, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("clampBounds[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := ClampVecTo(dst, src, 0, 1); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0.5 || dst[1] != 1 || dst[2] != 0 {
		t.Fatalf("clamp = %v", dst)
	}
}

func TestVecDstShapeErrors(t *testing.T) {
	short := []float64{1}
	full := []float64{1, 2}
	if err := ScaleVecTo(full, short, 2); err == nil {
		t.Fatal("scale shape mismatch accepted")
	}
	if err := AddVecTo(full, full, short); err == nil {
		t.Fatal("add shape mismatch accepted")
	}
	if err := ClampVecBoundsTo(full, full, short, full); err == nil {
		t.Fatal("clampBounds shape mismatch accepted")
	}
}

func TestVecRangeReductions(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := SumVecRange(v, 2, 6); got != 4+1+5+9 {
		t.Fatalf("SumVecRange = %v", got)
	}
	if got := SumVecRange(v, 3, 3); got != 0 {
		t.Fatalf("empty SumVecRange = %v", got)
	}
	if got := MaxVecRange(v, 0, 5); got != 5 {
		t.Fatalf("MaxVecRange = %v", got)
	}
	if got := MaxVecRange(v, 4, 4); !math.IsInf(got, -1) {
		t.Fatalf("empty MaxVecRange = %v", got)
	}
	FillVec(v, 7)
	for i := range v {
		if v[i] != 7 {
			t.Fatalf("fill[%d] = %v", i, v[i])
		}
	}
}

// TestParallelRangeCoversAllIndices pins that the exported sharding
// primitive partitions [0,n) exactly — every index visited once — for work
// sizes on both sides of the fan-out threshold.
func TestParallelRangeCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, work int }{
		{0, 0}, {1, 10}, {7, 100}, {1000, 1 << 20}, {1024, 1 << 20},
	} {
		visits := make([]int32, tc.n)
		ParallelRange(tc.n, tc.work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				visits[i]++ // disjoint ranges: no atomics needed
			}
		})
		for i, c := range visits {
			if c != 1 {
				t.Fatalf("n=%d work=%d: index %d visited %d times", tc.n, tc.work, i, c)
			}
		}
	}
}

// TestParallelRangeDeterministicSum demonstrates the documented reduction
// recipe: fixed-size per-block partials combined in block-ascending order
// give the same bits at any worker count (the blocking is what fixes the
// association, not the banding).
func TestParallelRangeDeterministicSum(t *testing.T) {
	n := 4096
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(i)) * 1e3
	}
	const block = 512
	blockSum := func() float64 {
		partials := make([]float64, (n+block-1)/block)
		ParallelRange(len(partials), n, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				end := (b + 1) * block
				if end > n {
					end = n
				}
				partials[b] = SumVecRange(v, b*block, end)
			}
		})
		var sum float64
		for _, p := range partials {
			sum += p
		}
		return sum
	}
	defer SetWorkers(0)
	SetWorkers(1)
	ref := blockSum()
	for _, workers := range []int{2, 4, 8} {
		SetWorkers(workers)
		if got := blockSum(); got != ref {
			t.Fatalf("workers=%d: parallel sum %b != single-worker %b", workers, got, ref)
		}
	}
}
