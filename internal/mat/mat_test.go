package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Size() != 12 {
		t.Fatalf("New(3,4) = %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	for i, v := range m.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewNegativeDimensions(t *testing.T) {
	m := New(-1, 5)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("New(-1,5) = %dx%d, want empty", m.Rows(), m.Cols())
	}
}

func TestNewFromData(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6}
	m, err := NewFromData(2, 3, src)
	if err != nil {
		t.Fatalf("NewFromData: %v", err)
	}
	if got := m.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	// The matrix must copy, not alias.
	src[0] = 99
	if got := m.At(0, 0); got != 1 {
		t.Fatalf("matrix aliases caller data: At(0,0) = %v", got)
	}
}

func TestNewFromDataShapeError(t *testing.T) {
	if _, err := NewFromData(2, 3, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 42)
	if got := m.At(1, 0); got != 42 {
		t.Fatalf("At(1,0) = %v, want 42", got)
	}
	if got := m.Row(1)[0]; got != 42 {
		t.Fatalf("Row(1)[0] = %v, want 42", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 2)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := Mul(nil, a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range got.Data() {
		if v != want[i] {
			t.Fatalf("Mul result[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(nil, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestMulDstShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	dst := New(3, 3)
	if _, err := Mul(dst, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

// TestMulTransAgainstExplicitTranspose checks MulTransA/MulTransB against
// naive transposition over random matrices.
func TestMulTransAgainstExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(r, k)
		b := New(r, c) // for MulTransA: aᵀ(k×r) × b(r×c)
		a.Randomize(rng, 2)
		b.Randomize(rng, 2)

		at := transpose(a)
		want, err := Mul(nil, at, b)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		got, err := MulTransA(nil, a, b)
		if err != nil {
			t.Fatalf("MulTransA: %v", err)
		}
		assertClose(t, got, want, 1e-12)

		// MulTransB: a2(r×k) × b2ᵀ(k×c)ᵀ where b2 is c×k.
		b2 := New(c, k)
		b2.Randomize(rng, 2)
		want2, err := Mul(nil, a, transpose(b2))
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		got2, err := MulTransB(nil, a, b2)
		if err != nil {
			t.Fatalf("MulTransB: %v", err)
		}
		assertClose(t, got2, want2, 1e-12)
	}
}

func transpose(m *Matrix) *Matrix {
	out := New(m.Cols(), m.Rows())
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

func assertClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Abs(g[i]-w[i]) > tol {
			t.Fatalf("element %d = %v, want %v", i, g[i], w[i])
		}
	}
}

func TestAddSub(t *testing.T) {
	a, _ := NewFromData(1, 3, []float64{1, 2, 3})
	b, _ := NewFromData(1, 3, []float64{10, 20, 30})
	sum, err := Add(nil, a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	diff, err := Sub(nil, b, a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i := range sum.Data() {
		if sum.Data()[i] != a.Data()[i]+b.Data()[i] {
			t.Fatalf("Add wrong at %d", i)
		}
		if diff.Data()[i] != b.Data()[i]-a.Data()[i] {
			t.Fatalf("Sub wrong at %d", i)
		}
	}
}

func TestAddRowVector(t *testing.T) {
	m, _ := NewFromData(2, 2, []float64{1, 2, 3, 4})
	if err := AddRowVector(m, []float64{10, 20}); err != nil {
		t.Fatalf("AddRowVector: %v", err)
	}
	want := []float64{11, 22, 13, 24}
	for i, v := range m.Data() {
		if v != want[i] {
			t.Fatalf("element %d = %v, want %v", i, v, want[i])
		}
	}
	if err := AddRowVector(m, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("short vector error = %v, want ErrShape", err)
	}
}

func TestScaleAddScaledApply(t *testing.T) {
	m, _ := NewFromData(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	if m.At(0, 2) != 6 {
		t.Fatalf("Scale: got %v", m.At(0, 2))
	}
	other, _ := NewFromData(1, 3, []float64{1, 1, 1})
	if err := m.AddScaled(other, 10); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if m.At(0, 0) != 12 {
		t.Fatalf("AddScaled: got %v", m.At(0, 0))
	}
	m.Apply(func(v float64) float64 { return -v })
	if m.At(0, 0) != -12 {
		t.Fatalf("Apply: got %v", m.At(0, 0))
	}
}

func TestSumRowsNorms(t *testing.T) {
	m, _ := NewFromData(2, 2, []float64{1, -2, 3, 4})
	sums := m.SumRows()
	if sums[0] != 4 || sums[1] != 2 {
		t.Fatalf("SumRows = %v", sums)
	}
	if m.MaxNorm() != 4 {
		t.Fatalf("MaxNorm = %v", m.MaxNorm())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(m.FrobeniusNorm()-want) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want %v", m.FrobeniusNorm(), want)
	}
}

func TestCopyFrom(t *testing.T) {
	a, _ := NewFromData(1, 2, []float64{1, 2})
	b := New(1, 2)
	if err := b.CopyFrom(a); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if b.At(0, 1) != 2 {
		t.Fatalf("CopyFrom result %v", b.Data())
	}
	c := New(2, 2)
	if err := c.CopyFrom(a); !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

func TestRandomizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(10, 10)
	m.Randomize(rng, 0.5)
	for _, v := range m.Data() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("Randomize produced %v outside [-0.5,0.5)", v)
		}
	}
}

func TestInitializersProduceFiniteValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(8, 8)
	m.XavierInit(rng, 8, 8)
	for _, v := range m.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("XavierInit produced %v", v)
		}
	}
	m.HeInit(rng, 8)
	for _, v := range m.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("HeInit produced %v", v)
		}
	}
}

// Property: matrix multiplication distributes over addition:
// a×(b+c) == a×b + a×c.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		a := New(n, m)
		b := New(m, n)
		c := New(m, n)
		a.Randomize(r, 1)
		b.Randomize(r, 1)
		c.Randomize(r, 1)
		bc, _ := Add(nil, b, c)
		left, _ := Mul(nil, a, bc)
		ab, _ := Mul(nil, a, b)
		ac, _ := Mul(nil, a, c)
		right, _ := Add(nil, ab, ac)
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is absolutely homogeneous: ‖s·m‖ == |s|·‖m‖.
func TestFrobeniusHomogeneous(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		m := New(3, 3)
		m.Randomize(r, 1)
		before := m.FrobeniusNorm()
		m.Scale(scale)
		after := m.FrobeniusNorm()
		return math.Abs(after-math.Abs(scale)*before) <= 1e-9*(1+after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
