// Package mechanism defines the common contract every incentive mechanism
// in the reproduction satisfies — Chiron's hierarchical agent and the two
// comparison approaches (DRL-based, Greedy) — so the experiment harness can
// train and evaluate them interchangeably.
package mechanism

import "chiron/internal/edgeenv"

// EpisodeResult summarizes one edge-learning episode (one full budget η).
type EpisodeResult struct {
	// Episode is the 1-based episode index within a training run.
	Episode int
	// Rounds is K, the number of committed training rounds.
	Rounds int
	// FinalAccuracy is A(ω_K) of the last committed round.
	FinalAccuracy float64
	// ExteriorReturn is Σ_k r^E_k (undiscounted).
	ExteriorReturn float64
	// DiscountedReturn is Σ_k γ^{k−1}·r^E_k with the paper's γ=0.95 — the
	// objective the DRL agents actually optimize and the quantity plotted
	// in the convergence figures.
	DiscountedReturn float64
	// InnerReturn is Σ_k r^I_k (the negative total idle time).
	InnerReturn float64
	// TimeEfficiency is the mean of Eqn. (16) across rounds.
	TimeEfficiency float64
	// TotalTime is Σ_k T_k in seconds.
	TotalTime float64
	// BudgetSpent is the payment total across rounds.
	BudgetSpent float64
	// ServerUtility is Eqn. (9): λ·A(ω_K) − Σ_k T_k.
	ServerUtility float64
}

// Mechanism is an incentive mechanism controlling an edge-learning
// environment. Implementations are stateful learners: RunEpisode with
// train=true both acts and updates; with train=false it acts greedily
// without touching learner state.
type Mechanism interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Env returns the environment the mechanism controls.
	Env() *edgeenv.Env
	// RunEpisode plays one full episode and returns its summary.
	RunEpisode(train bool) (EpisodeResult, error)
}

// ReturnGamma is the discount used for DiscountedReturn (paper Sec. VI-A).
const ReturnGamma = 0.95

// Returns accumulates the exterior reward stream of one episode in both
// undiscounted and γ-discounted form.
type Returns struct {
	Undiscounted float64
	Discounted   float64
	factor       float64
}

// NewReturns starts an accumulator at discount factor γ⁰=1.
func NewReturns() *Returns { return &Returns{factor: 1} }

// Add folds one round's exterior reward into both sums.
func (r *Returns) Add(reward float64) {
	r.Undiscounted += reward
	r.Discounted += r.factor * reward
	r.factor *= ReturnGamma
}

// Summarize extracts an EpisodeResult from the environment ledger after an
// episode finishes. episode is the caller's episode counter; the reward
// sums come from the caller because they are mechanism-specific.
func Summarize(env *edgeenv.Env, episode int, ext *Returns, innReturn float64) EpisodeResult {
	ledger := env.Ledger()
	return EpisodeResult{
		Episode:          episode,
		Rounds:           ledger.NumRounds(),
		FinalAccuracy:    ledger.FinalAccuracy(),
		ExteriorReturn:   ext.Undiscounted,
		DiscountedReturn: ext.Discounted,
		InnerReturn:      innReturn,
		TimeEfficiency:   ledger.MeanTimeEfficiency(),
		TotalTime:        ledger.TotalTime(),
		BudgetSpent:      ledger.TotalSpent(),
		ServerUtility:    ledger.ServerUtility(env.Config().Lambda, env.Config().TimeWeight),
	}
}
