package mechanism

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
)

func summarizeEnv(t *testing.T) *edgeenv.Env {
	t.Helper()
	const nodes = 3
	fleet, err := device.NewFleet(rand.New(rand.NewSource(3)), device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(4)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	env, err := edgeenv.New(edgeenv.DefaultConfig(fleet, acc, 80))
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

func TestSummarizeMatchesLedger(t *testing.T) {
	env := summarizeEnv(t)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// Play a short episode by hand, accumulating the reward streams the
	// way a mechanism would.
	rng := rand.New(rand.NewSource(5))
	ext := NewReturns()
	var inner float64
	for i := 0; i < 4 && !env.Done(); i++ {
		res, err := env.Step(env.RandomPrices(rng))
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		ext.Add(res.ExteriorReward)
		inner += res.InnerReward
	}
	got := Summarize(env, 7, ext, inner)
	ledger := env.Ledger()
	cfg := env.Config()
	if got.Episode != 7 {
		t.Errorf("Episode %d, want 7", got.Episode)
	}
	if got.Rounds != ledger.NumRounds() {
		t.Errorf("Rounds %d, ledger has %d", got.Rounds, ledger.NumRounds())
	}
	if got.FinalAccuracy != ledger.FinalAccuracy() {
		t.Errorf("FinalAccuracy %v, ledger says %v", got.FinalAccuracy, ledger.FinalAccuracy())
	}
	if got.ExteriorReturn != ext.Undiscounted || got.DiscountedReturn != ext.Discounted {
		t.Errorf("returns (%v, %v), accumulator says (%v, %v)",
			got.ExteriorReturn, got.DiscountedReturn, ext.Undiscounted, ext.Discounted)
	}
	if got.InnerReturn != inner {
		t.Errorf("InnerReturn %v, want %v", got.InnerReturn, inner)
	}
	if got.TimeEfficiency != ledger.MeanTimeEfficiency() {
		t.Errorf("TimeEfficiency %v, ledger says %v", got.TimeEfficiency, ledger.MeanTimeEfficiency())
	}
	if got.TotalTime != ledger.TotalTime() {
		t.Errorf("TotalTime %v, ledger says %v", got.TotalTime, ledger.TotalTime())
	}
	if got.BudgetSpent != ledger.TotalSpent() {
		t.Errorf("BudgetSpent %v, ledger says %v", got.BudgetSpent, ledger.TotalSpent())
	}
	// The utility field must be the Eqn. (9) identity over the same ledger.
	want := cfg.Lambda*ledger.FinalAccuracy() - cfg.TimeWeight*ledger.TotalTime()
	if math.Abs(got.ServerUtility-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("ServerUtility %v, want λA−wT = %v", got.ServerUtility, want)
	}
}

func TestSummarizeEmptyEpisode(t *testing.T) {
	env := summarizeEnv(t)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got := Summarize(env, 1, NewReturns(), 0)
	if got.Rounds != 0 || got.FinalAccuracy != 0 || got.BudgetSpent != 0 || got.ServerUtility != 0 {
		t.Errorf("empty episode summary not zeroed: %+v", got)
	}
}
