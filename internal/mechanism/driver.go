package mechanism

import (
	"fmt"

	"chiron/internal/edgeenv"
)

// Actor is the per-round decision surface a mechanism plugs into the shared
// episode Driver. Implementations compose internal/policy encoders and
// action heads (and, for learners, internal/rl pairs) — the driver owns the
// episode loop, reward accumulation, and summary so all five mechanisms
// share one control flow.
type Actor interface {
	// Decide returns the per-node price vector for the current environment
	// state. With train set, learners sample stochastically and remember
	// what they need to store the transition in Observe.
	Decide(train bool) ([]float64, error)
	// Observe processes a committed (or empty) round's outcome — storing
	// transitions, scoring replay entries, and so on.
	Observe(res edgeenv.StepResult, train bool) error
	// Discard handles the budget-exhaustion terminal: the attempted round
	// was discarded (Sec. V-A), so the previously committed round was in
	// fact the final one.
	Discard(train bool)
	// EndEpisode runs the actor's end-of-episode learner work (buffer
	// flushes, PPO updates, decay schedules). Called after the episode
	// summary for training and evaluation episodes alike.
	EndEpisode(train bool) error
}

// Driver runs full episodes of one actor against one environment — the
// single episode loop behind every mechanism's RunEpisode and Train.
type Driver struct {
	name      string
	env       *edgeenv.Env
	actor     Actor
	episode   int
	roundHook func(episode, round int) error
}

// NewDriver binds actor to env. name labels training errors.
func NewDriver(name string, env *edgeenv.Env, actor Actor) *Driver {
	return &Driver{name: name, env: env, actor: actor}
}

// Episode returns the number of episodes completed.
func (d *Driver) Episode() int { return d.episode }

// SetEpisode overwrites the episode counter (checkpoint restore).
func (d *Driver) SetEpisode(n int) { d.episode = n }

// SetRoundHook installs a callback invoked before every round's Decide
// with the 0-based episode index in progress and the upcoming 1-based
// round index. A hook error aborts the episode with that error — the
// injection point the supervisor's chaos tests use to kill a run at an
// exact round. Nil removes the hook.
func (d *Driver) SetRoundHook(hook func(episode, round int) error) { d.roundHook = hook }

// RunEpisode plays one full episode: reset, decide/step/observe until the
// environment terminates, summarize from the ledger, then hand the actor
// its end-of-episode learner work.
func (d *Driver) RunEpisode(train bool) (EpisodeResult, error) {
	if err := d.env.Reset(); err != nil {
		return EpisodeResult{}, err
	}
	ext := NewReturns()
	var innReturn float64
	for !d.env.Done() {
		if d.roundHook != nil {
			if err := d.roundHook(d.episode, d.env.Round()); err != nil {
				return EpisodeResult{}, err
			}
		}
		prices, err := d.actor.Decide(train)
		if err != nil {
			return EpisodeResult{}, err
		}
		res, err := d.env.Step(prices)
		if err != nil {
			return EpisodeResult{}, err
		}
		if res.Done && res.Round.Participants == 0 {
			// Budget exhausted: the round was discarded, nothing is recorded
			// (Sec. V-A) and no reward is accumulated for it.
			d.actor.Discard(train)
			break
		}
		ext.Add(res.ExteriorReward)
		innReturn += res.InnerReward
		if err := d.actor.Observe(res, train); err != nil {
			return EpisodeResult{}, err
		}
		if res.Done {
			break
		}
	}
	d.episode++
	result := Summarize(d.env, d.episode, ext, innReturn)
	if err := d.actor.EndEpisode(train); err != nil {
		return EpisodeResult{}, err
	}
	return result, nil
}

// Train runs the outer training loop of Algorithm 1 for the given number of
// episodes, invoking callback (if non-nil) after each, and returns the
// per-episode results — the learning curves of Figs. 3 and 7(a).
func (d *Driver) Train(episodes int, callback func(EpisodeResult)) ([]EpisodeResult, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("mechanism: train %d episodes, want > 0", episodes)
	}
	results := make([]EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		res, err := d.RunEpisode(true)
		if err != nil {
			return results, fmt.Errorf("mechanism: %s episode %d: %w", d.name, ep+1, err)
		}
		results = append(results, res)
		if callback != nil {
			callback(res)
		}
	}
	return results, nil
}

// Checkpointer is the optional save/load surface the learnable mechanisms
// implement on top of Mechanism, all sharing the unified rl.Checkpoint
// format.
type Checkpointer interface {
	// SaveCheckpoint writes the mechanism's training state as JSON to path.
	SaveCheckpoint(path string) error
	// LoadCheckpoint restores the training state from a SaveCheckpoint file.
	LoadCheckpoint(path string) error
	// Episode reports the number of training episodes completed.
	Episode() int
}
