package mechanism

import "fmt"

// Trainable is the optional training surface the learning mechanisms
// (Chiron's hierarchical agent, the DRL-based and Greedy baselines)
// implement on top of Mechanism. Static references (Uniform, EqualTime)
// deliberately do not.
type Trainable interface {
	// Train runs episodes training episodes, invoking callback (when
	// non-nil) after each, and returns the per-episode summaries.
	Train(episodes int, callback func(EpisodeResult)) ([]EpisodeResult, error)
}

// Aggregator folds per-episode results into their running sums and averages
// them on Result. It is the ONE accumulation order for evaluation averages —
// Evaluate and the batched lockstep evaluator both fold through it episode
// by episode, so the floating-point averaging order (and therefore seeded
// CSV output) is identical everywhere.
type Aggregator struct {
	agg EpisodeResult
	n   int
}

// Add folds one episode's result into the running sums.
func (a *Aggregator) Add(res EpisodeResult) {
	a.n++
	a.agg.Rounds += res.Rounds
	a.agg.FinalAccuracy += res.FinalAccuracy
	a.agg.ExteriorReturn += res.ExteriorReturn
	a.agg.DiscountedReturn += res.DiscountedReturn
	a.agg.InnerReturn += res.InnerReturn
	a.agg.TimeEfficiency += res.TimeEfficiency
	a.agg.TotalTime += res.TotalTime
	a.agg.BudgetSpent += res.BudgetSpent
	a.agg.ServerUtility += res.ServerUtility
}

// Result averages the folded episodes. It does not mutate the aggregator.
func (a *Aggregator) Result() EpisodeResult {
	out := a.agg
	inv := 1 / float64(a.n)
	out.Episode = a.n
	out.Rounds = int(float64(out.Rounds)*inv + 0.5)
	out.FinalAccuracy *= inv
	out.ExteriorReturn *= inv
	out.DiscountedReturn *= inv
	out.InnerReturn *= inv
	out.TimeEfficiency *= inv
	out.TotalTime *= inv
	out.BudgetSpent *= inv
	out.ServerUtility *= inv
	return out
}

// Evaluate averages episodes deterministic (train=false) episodes of m.
// Every experiment runner funnels through this one accumulation loop so the
// floating-point averaging order — and therefore seeded CSV output — is
// identical everywhere.
func Evaluate(m Mechanism, episodes int) (EpisodeResult, error) {
	if episodes <= 0 {
		return EpisodeResult{}, fmt.Errorf("mechanism: evaluate %d episodes, want > 0", episodes)
	}
	var agg Aggregator
	for ep := 0; ep < episodes; ep++ {
		res, err := m.RunEpisode(false)
		if err != nil {
			return EpisodeResult{}, fmt.Errorf("mechanism: eval episode %d: %w", ep+1, err)
		}
		agg.Add(res)
	}
	return agg.Result(), nil
}

// TrainAndEvaluate trains m for trainEpisodes when it is Trainable (static
// references skip straight to evaluation) and then averages evalEpisodes
// deterministic episodes. It is the one train-then-evaluate path shared by
// every comparison, convergence, and ablation runner.
func TrainAndEvaluate(m Mechanism, trainEpisodes, evalEpisodes int) (EpisodeResult, error) {
	if t, ok := m.(Trainable); ok && trainEpisodes > 0 {
		if _, err := t.Train(trainEpisodes, nil); err != nil {
			return EpisodeResult{}, fmt.Errorf("mechanism: train %s: %w", m.Name(), err)
		}
	}
	res, err := Evaluate(m, evalEpisodes)
	if err != nil {
		return EpisodeResult{}, fmt.Errorf("mechanism: evaluate %s: %w", m.Name(), err)
	}
	return res, nil
}
