package mechanism

import "fmt"

// Trainable is the optional training surface the learning mechanisms
// (Chiron's hierarchical agent, the DRL-based and Greedy baselines)
// implement on top of Mechanism. Static references (Uniform, EqualTime)
// deliberately do not.
type Trainable interface {
	// Train runs episodes training episodes, invoking callback (when
	// non-nil) after each, and returns the per-episode summaries.
	Train(episodes int, callback func(EpisodeResult)) ([]EpisodeResult, error)
}

// Evaluate averages episodes deterministic (train=false) episodes of m.
// Every experiment runner funnels through this one accumulation loop so the
// floating-point averaging order — and therefore seeded CSV output — is
// identical everywhere.
func Evaluate(m Mechanism, episodes int) (EpisodeResult, error) {
	if episodes <= 0 {
		return EpisodeResult{}, fmt.Errorf("mechanism: evaluate %d episodes, want > 0", episodes)
	}
	var agg EpisodeResult
	for ep := 0; ep < episodes; ep++ {
		res, err := m.RunEpisode(false)
		if err != nil {
			return EpisodeResult{}, fmt.Errorf("mechanism: eval episode %d: %w", ep+1, err)
		}
		agg.Rounds += res.Rounds
		agg.FinalAccuracy += res.FinalAccuracy
		agg.ExteriorReturn += res.ExteriorReturn
		agg.DiscountedReturn += res.DiscountedReturn
		agg.InnerReturn += res.InnerReturn
		agg.TimeEfficiency += res.TimeEfficiency
		agg.TotalTime += res.TotalTime
		agg.BudgetSpent += res.BudgetSpent
		agg.ServerUtility += res.ServerUtility
	}
	inv := 1 / float64(episodes)
	agg.Episode = episodes
	agg.Rounds = int(float64(agg.Rounds)*inv + 0.5)
	agg.FinalAccuracy *= inv
	agg.ExteriorReturn *= inv
	agg.DiscountedReturn *= inv
	agg.InnerReturn *= inv
	agg.TimeEfficiency *= inv
	agg.TotalTime *= inv
	agg.BudgetSpent *= inv
	agg.ServerUtility *= inv
	return agg, nil
}

// TrainAndEvaluate trains m for trainEpisodes when it is Trainable (static
// references skip straight to evaluation) and then averages evalEpisodes
// deterministic episodes. It is the one train-then-evaluate path shared by
// every comparison, convergence, and ablation runner.
func TrainAndEvaluate(m Mechanism, trainEpisodes, evalEpisodes int) (EpisodeResult, error) {
	if t, ok := m.(Trainable); ok && trainEpisodes > 0 {
		if _, err := t.Train(trainEpisodes, nil); err != nil {
			return EpisodeResult{}, fmt.Errorf("mechanism: train %s: %w", m.Name(), err)
		}
	}
	res, err := Evaluate(m, evalEpisodes)
	if err != nil {
		return EpisodeResult{}, fmt.Errorf("mechanism: evaluate %s: %w", m.Name(), err)
	}
	return res, nil
}
