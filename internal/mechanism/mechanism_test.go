package mechanism

import (
	"math"
	"testing"
)

func TestReturnsAccumulator(t *testing.T) {
	r := NewReturns()
	r.Add(10)
	r.Add(10)
	r.Add(10)
	if r.Undiscounted != 30 {
		t.Fatalf("undiscounted %v, want 30", r.Undiscounted)
	}
	want := 10 * (1 + ReturnGamma + ReturnGamma*ReturnGamma)
	if math.Abs(r.Discounted-want) > 1e-12 {
		t.Fatalf("discounted %v, want %v", r.Discounted, want)
	}
}

func TestReturnsGammaIsPaperValue(t *testing.T) {
	if ReturnGamma != 0.95 {
		t.Fatalf("gamma %v, want the paper's 0.95", ReturnGamma)
	}
}

func TestReturnsEmpty(t *testing.T) {
	r := NewReturns()
	if r.Undiscounted != 0 || r.Discounted != 0 {
		t.Fatal("fresh accumulator nonzero")
	}
}

func TestReturnsDiscountedBounded(t *testing.T) {
	// For constant positive rewards the discounted sum is bounded by
	// r/(1−γ) while the undiscounted sum grows linearly.
	r := NewReturns()
	for i := 0; i < 10000; i++ {
		r.Add(1)
	}
	bound := 1 / (1 - ReturnGamma)
	if r.Discounted > bound+1e-9 {
		t.Fatalf("discounted %v exceeds geometric bound %v", r.Discounted, bound)
	}
	if r.Undiscounted != 10000 {
		t.Fatalf("undiscounted %v", r.Undiscounted)
	}
}
