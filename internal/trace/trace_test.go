package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"chiron/internal/market"
	"chiron/internal/mechanism"
)

func sampleRound(idx int) *market.Round {
	return &market.Round{
		Index:        idx,
		Prices:       []float64{1e-9, 2e-9},
		Freqs:        []float64{5e8, 7e8},
		Times:        []float64{20, 18},
		Payment:      1.5,
		Accuracy:     0.8,
		Participants: 2,
	}
}

func sampleEpisode(ep int) mechanism.EpisodeResult {
	return mechanism.EpisodeResult{
		Episode: ep, Rounds: 3, FinalAccuracy: 0.9,
		ExteriorReturn: 1200, DiscountedReturn: 900, InnerReturn: -40,
		TimeEfficiency: 0.85, TotalTime: 60, BudgetSpent: 95, ServerUtility: 1700,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for ep := 1; ep <= 2; ep++ {
		for r := 1; r <= 3; r++ {
			if err := w.WriteRound(ep, sampleRound(r)); err != nil {
				t.Fatalf("WriteRound: %v", err)
			}
		}
		if err := w.WriteEpisode(sampleEpisode(ep)); err != nil {
			t.Fatalf("WriteEpisode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	trc, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(trc.Rounds) != 6 || len(trc.Episodes) != 2 {
		t.Fatalf("parsed %d rounds %d episodes", len(trc.Rounds), len(trc.Episodes))
	}
	if trc.Rounds[0].Kind != KindRound || trc.Rounds[0].Round != 1 {
		t.Fatalf("first round record %+v", trc.Rounds[0])
	}
	if trc.Episodes[1].ServerUtility != 1700 {
		t.Fatalf("episode record %+v", trc.Episodes[1])
	}
	if trc.Rounds[3].Episode != 2 {
		t.Fatalf("round episode tagging wrong: %+v", trc.Rounds[3])
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.WriteEpisode(sampleEpisode(1)); err != nil {
		t.Fatalf("WriteEpisode: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	trc, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(trc.Episodes) != 1 {
		t.Fatalf("episodes %d", len(trc.Episodes))
	}
}

func TestReadSkipsUnknownKinds(t *testing.T) {
	input := `{"kind":"future-thing","x":1}
{"kind":"episode","episode":1,"rounds":2}
`
	trc, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(trc.Episodes) != 1 || len(trc.Rounds) != 0 {
		t.Fatalf("parsed %d/%d", len(trc.Rounds), len(trc.Episodes))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("accepted garbage line")
	}
}

func TestReadEmptyInput(t *testing.T) {
	trc, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(trc.Rounds) != 0 || len(trc.Episodes) != 0 {
		t.Fatal("empty input produced records")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("opened a missing file")
	}
}

func TestHeaderDrawsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	hdr := HeaderRecord{
		Scenario:     []byte(`{"name":"x"}`),
		Mechanism:    "Uniform",
		Budget:       300,
		Seed:         7,
		Nodes:        2,
		EvalEpisodes: 1,
		Checkpoint:   []byte(`{"w":[1,2]}`),
	}
	if err := w.WriteHeader(hdr); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	draws := DrawsRecord{
		Episode:   1,
		Round:     1,
		Eligible:  []bool{true, false},
		Departing: []bool{false, true},
		CommTimes: []float64{12.5, 0},
	}
	if err := w.WriteDraws(draws); err != nil {
		t.Fatalf("WriteDraws: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	trc, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if trc.Header == nil {
		t.Fatal("header lost in round trip")
	}
	if trc.Header.Version != Version {
		t.Errorf("header version %d, want %d (writer must stamp it)", trc.Header.Version, Version)
	}
	if trc.Header.Mechanism != hdr.Mechanism || trc.Header.Budget != hdr.Budget ||
		trc.Header.Seed != hdr.Seed || trc.Header.Nodes != hdr.Nodes ||
		trc.Header.EvalEpisodes != hdr.EvalEpisodes {
		t.Errorf("header round trip drifted: %+v", trc.Header)
	}
	if string(trc.Header.Scenario) != string(hdr.Scenario) ||
		string(trc.Header.Checkpoint) != string(hdr.Checkpoint) {
		t.Errorf("embedded payloads drifted: %s / %s", trc.Header.Scenario, trc.Header.Checkpoint)
	}
	if len(trc.Draws) != 1 {
		t.Fatalf("parsed %d draws records", len(trc.Draws))
	}
	got := trc.Draws[0]
	if got.Episode != 1 || got.Round != 1 ||
		!got.Eligible[0] || got.Eligible[1] ||
		got.Departing[0] || !got.Departing[1] ||
		got.CommTimes[0] != 12.5 {
		t.Errorf("draws round trip drifted: %+v", got)
	}
}

func TestReadRejectsFutureVersion(t *testing.T) {
	input := `{"kind":"header","version":99}` + "\n"
	_, err := Read(strings.NewReader(input))
	if !errors.Is(err, ErrVersion) {
		t.Errorf("future-version header error = %v, want ErrVersion", err)
	}
}

func TestReadKeepsFirstHeader(t *testing.T) {
	input := `{"kind":"header","version":1,"mechanism":"Uniform"}
{"kind":"header","version":1,"mechanism":"Greedy"}
`
	trc, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if trc.Header == nil || trc.Header.Mechanism != "Uniform" {
		t.Errorf("header = %+v, want the first one", trc.Header)
	}
}
