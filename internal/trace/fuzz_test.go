package trace

import (
	"bytes"
	"errors"
	"testing"

	"chiron/internal/market"
	"chiron/internal/mechanism"
)

// FuzzTraceRead throws arbitrary bytes at the JSONL trace parser. Read
// must never panic; a nil error or a torn-tail ErrTruncated must come with
// a usable Trace; and whatever parses must survive a write/re-read round
// trip with the same record counts.
func FuzzTraceRead(f *testing.F) {
	// Seed with a well-formed trace plus its classic failure shapes.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := market.Round{
		Prices:       []float64{1, 0.5},
		Freqs:        []float64{2e8, 0},
		Times:        []float64{3.5, 0},
		Outcomes:     []market.Outcome{market.OutcomeCompleted, market.OutcomeAbsent},
		Payment:      2e8,
		Accuracy:     0.42,
		Participants: 1,
		Completed:    1,
	}
	if err := w.WriteRound(1, &r); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteEpisode(mechanism.EpisodeResult{Episode: 1, Rounds: 1, FinalAccuracy: 0.42}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-7]) // torn tail
	f.Add([]byte(""))
	f.Add([]byte("{\"kind\":\"future-record\"}\n"))
	f.Add([]byte("{\"kind\":\"round\",\"episode\":true}\n"))
	f.Add([]byte("not json at all\n{}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		trc, err := Read(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTruncated) {
			return // hard parse failure: nothing else promised
		}
		if trc == nil {
			t.Fatalf("err %v but nil trace", err)
		}
		// Round-trip: every salvaged record must re-serialize and re-read.
		var out bytes.Buffer
		w := NewWriter(&out)
		for i := range trc.Rounds {
			rec := &trc.Rounds[i]
			if err := w.WriteRound(rec.Episode, &market.Round{
				Index:        rec.Round,
				Prices:       rec.Prices,
				Freqs:        rec.Freqs,
				Times:        rec.Times,
				Payment:      rec.Payment,
				Accuracy:     rec.Accuracy,
				Participants: rec.Participants,
			}); err != nil {
				t.Fatalf("re-write round %d: %v", i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-serialized trace: %v", err)
		}
		if len(again.Rounds) != len(trc.Rounds) {
			t.Fatalf("round-trip lost records: %d → %d", len(trc.Rounds), len(again.Rounds))
		}
	})
}
