package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chiron/internal/market"
)

// faultedRound returns a round with one crashed node, so outcome
// serialization kicks in.
func faultedRound(idx int) *market.Round {
	r := sampleRound(idx)
	r.Outcomes = []market.Outcome{market.OutcomeCompleted, market.OutcomeCrashed}
	r.Completed = 1
	return r
}

func writeRounds(t *testing.T, rounds ...*market.Round) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range rounds {
		if err := w.WriteRound(1, r); err != nil {
			t.Fatalf("WriteRound: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestReadTruncatedTailYieldsPrefix(t *testing.T) {
	full := writeRounds(t, sampleRound(1), sampleRound(2), sampleRound(3))
	lastStart := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	// Cut at several depths inside the final record, including one byte in
	// (torn mid-key) and one byte short of complete (missing brace).
	for _, cut := range []int{lastStart + 1, (lastStart + len(full)) / 2, len(full) - 2} {
		trc, err := Read(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err %v, want ErrTruncated", cut, len(full), err)
		}
		if trc == nil || len(trc.Rounds) != 2 {
			t.Fatalf("cut at %d: salvaged %+v, want the 2-round prefix", cut, trc)
		}
		if trc.Rounds[1].Round != 2 {
			t.Fatalf("cut at %d: wrong prefix content %+v", cut, trc.Rounds[1])
		}
	}
}

func TestReadMidFileCorruptionIsHardFailure(t *testing.T) {
	input := `{"kind":"round","episode":1,"round":1,"prices":[1],"freqs":[1],"times":[1]}
{"kind":"round","epis
{"kind":"episode","episode":1,"rounds":1}
`
	trc, err := Read(strings.NewReader(input))
	if err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-file corruption misreported as a torn tail: %v", err)
	}
	if trc != nil {
		t.Fatal("corrupt trace returned records")
	}
}

func TestReadFileTruncated(t *testing.T) {
	full := writeRounds(t, faultedRound(1), faultedRound(2))
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(path, full[:len(full)-7], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	trc, err := ReadFile(path)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err %v, want ErrTruncated", err)
	}
	if trc == nil || len(trc.Rounds) != 1 {
		t.Fatalf("salvaged %+v, want the 1-round prefix", trc)
	}
}

func TestOutcomesRoundTrip(t *testing.T) {
	data := writeRounds(t, faultedRound(1))
	trc, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(trc.Rounds) != 1 {
		t.Fatalf("rounds %d", len(trc.Rounds))
	}
	r := trc.Rounds[0]
	if r.Completed != 1 {
		t.Fatalf("completed %d, want 1", r.Completed)
	}
	want := []string{"completed", "crashed"}
	if len(r.Outcomes) != len(want) {
		t.Fatalf("outcomes %v, want %v", r.Outcomes, want)
	}
	for i := range want {
		if r.Outcomes[i] != want[i] {
			t.Fatalf("outcome[%d] = %q, want %q", i, r.Outcomes[i], want[i])
		}
	}
}

// Clean rounds must serialize exactly as the pre-failure-model format did:
// no outcome bookkeeping keys at all.
func TestCleanRoundOmitsOutcomeKeys(t *testing.T) {
	clean := sampleRound(1)
	clean.Outcomes = []market.Outcome{market.OutcomeCompleted, market.OutcomeCompleted}
	clean.Completed = 2
	data := writeRounds(t, clean)
	for _, key := range []string{"outcomes", "completed"} {
		if bytes.Contains(data, []byte(key)) {
			t.Fatalf("clean round serialized %q:\n%s", key, data)
		}
	}
}
