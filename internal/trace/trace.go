// Package trace records edge-learning episodes as JSON Lines for post-hoc
// analysis: one record per training round plus one summary record per
// episode. The format is append-only and stream-parseable, so a crashed or
// interrupted run still yields a readable prefix.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"chiron/internal/market"
	"chiron/internal/mechanism"
)

// RecordKind discriminates the JSONL record types.
type RecordKind string

// The record kinds.
const (
	KindRound   RecordKind = "round"
	KindEpisode RecordKind = "episode"
)

// RoundRecord is one training round of one episode. Completed and Outcomes
// carry the failure model's per-node status; both are omitted for clean
// rounds where every participant completed, so pre-failure-model traces
// and fault-free runs serialize identically to the legacy format.
type RoundRecord struct {
	Kind         RecordKind `json:"kind"`
	Episode      int        `json:"episode"`
	Round        int        `json:"round"`
	Prices       []float64  `json:"prices"`
	Freqs        []float64  `json:"freqs"`
	Times        []float64  `json:"times"`
	Payment      float64    `json:"payment"`
	Accuracy     float64    `json:"accuracy"`
	Participants int        `json:"participants"`
	Completed    int        `json:"completed,omitempty"`
	Outcomes     []string   `json:"outcomes,omitempty"`
}

// EpisodeRecord summarizes one finished episode.
type EpisodeRecord struct {
	Kind             RecordKind `json:"kind"`
	Episode          int        `json:"episode"`
	Rounds           int        `json:"rounds"`
	FinalAccuracy    float64    `json:"final_accuracy"`
	ExteriorReturn   float64    `json:"exterior_return"`
	DiscountedReturn float64    `json:"discounted_return"`
	InnerReturn      float64    `json:"inner_return"`
	TimeEfficiency   float64    `json:"time_efficiency"`
	TotalTime        float64    `json:"total_time"`
	BudgetSpent      float64    `json:"budget_spent"`
	ServerUtility    float64    `json:"server_utility"`
}

// Writer streams trace records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewWriter wraps w. If w is also an io.Closer, Close closes it.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	tw := &Writer{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Create opens path for writing (truncating) and returns a Writer over it.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	return NewWriter(f), nil
}

// WriteRound appends one round record. Per-node outcomes are recorded only
// when the round saw at least one failure, keeping clean traces byte-
// compatible with the legacy format.
func (t *Writer) WriteRound(episode int, r *market.Round) error {
	rec := RoundRecord{
		Kind:         KindRound,
		Episode:      episode,
		Round:        r.Index,
		Prices:       r.Prices,
		Freqs:        r.Freqs,
		Times:        r.Times,
		Payment:      r.Payment,
		Accuracy:     r.Accuracy,
		Participants: r.Participants,
	}
	if r.Failures() > 0 {
		rec.Completed = r.Completed
		rec.Outcomes = make([]string, len(r.Outcomes))
		for i, o := range r.Outcomes {
			rec.Outcomes[i] = o.String()
		}
	}
	if err := t.enc.Encode(rec); err != nil {
		return fmt.Errorf("trace: write round: %w", err)
	}
	return nil
}

// WriteEpisode appends one episode summary record.
func (t *Writer) WriteEpisode(res mechanism.EpisodeResult) error {
	rec := EpisodeRecord{
		Kind:             KindEpisode,
		Episode:          res.Episode,
		Rounds:           res.Rounds,
		FinalAccuracy:    res.FinalAccuracy,
		ExteriorReturn:   res.ExteriorReturn,
		DiscountedReturn: res.DiscountedReturn,
		InnerReturn:      res.InnerReturn,
		TimeEfficiency:   res.TimeEfficiency,
		TotalTime:        res.TotalTime,
		BudgetSpent:      res.BudgetSpent,
		ServerUtility:    res.ServerUtility,
	}
	if err := t.enc.Encode(rec); err != nil {
		return fmt.Errorf("trace: write episode: %w", err)
	}
	return nil
}

// Flush forces buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying writer when it is closable.
func (t *Writer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil {
			return fmt.Errorf("trace: close: %w", err)
		}
	}
	return nil
}

// Trace is a fully parsed trace file.
type Trace struct {
	Rounds   []RoundRecord
	Episodes []EpisodeRecord
}

// ErrTruncated reports a trace whose final line is a partial record — the
// tail of a crashed or interrupted run. Read returns the valid prefix
// alongside an error wrapping ErrTruncated, so callers can salvage every
// complete record: errors.Is(err, ErrTruncated) distinguishes a torn tail
// from mid-file corruption, which stays a hard failure.
var ErrTruncated = errors.New("trace: truncated trailing record")

// Read parses a JSONL trace from r. Unknown record kinds are skipped so
// newer traces stay readable by older tooling. An unparseable final line
// yields the valid prefix plus an ErrTruncated-wrapping error; an
// unparseable line anywhere else is a hard failure.
func Read(r io.Reader) (*Trace, error) {
	out := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	// A parse failure is only fatal once a later line proves it wasn't the
	// torn tail of an interrupted write, so the error is held pending for
	// one iteration.
	var pending error
	for sc.Scan() {
		line++
		if pending != nil {
			return nil, pending
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Kind RecordKind `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			pending = fmt.Errorf("trace: line %d: %w", line, err)
			continue
		}
		switch probe.Kind {
		case KindRound:
			var rec RoundRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			out.Rounds = append(out.Rounds, rec)
		case KindEpisode:
			var rec EpisodeRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			out.Episodes = append(out.Episodes, rec)
		default:
			// Forward compatibility: ignore unknown kinds.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if pending != nil {
		return out, fmt.Errorf("%w (line %d): %v", ErrTruncated, line, pending)
	}
	return out, nil
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) (trc *Trace, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return Read(f)
}
