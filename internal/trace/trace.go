// Package trace records edge-learning episodes as JSON Lines for post-hoc
// analysis: one record per training round plus one summary record per
// episode. The format is append-only and stream-parseable, so a crashed or
// interrupted run still yields a readable prefix.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"chiron/internal/market"
	"chiron/internal/mechanism"
)

// RecordKind discriminates the JSONL record types.
type RecordKind string

// The record kinds.
const (
	KindRound   RecordKind = "round"
	KindEpisode RecordKind = "episode"
	KindHeader  RecordKind = "header"
	KindDraws   RecordKind = "draws"
)

// Version is the trace format version written into HeaderRecord. Readers
// accept any version up to their own: the format is append-only (new
// record kinds are skipped by older readers), so a newer version number
// signals a semantic change the reader cannot honor.
const Version = 1

// ErrVersion reports a trace header whose version is newer than this
// reader supports.
var ErrVersion = errors.New("trace: unsupported header version")

// HeaderRecord opens a recorded trace: it names the scenario, mechanism,
// and budget the episodes were produced under, and embeds everything a
// replay needs to rebuild the exact system — the scenario spec itself and
// the mechanism's post-training checkpoint (both as raw JSON, so the trace
// format does not depend on their schemas). Headerless traces stay valid:
// plain `chiron train -trace` output has no header and no draws, it simply
// cannot be replayed.
type HeaderRecord struct {
	Kind RecordKind `json:"kind"`
	// Version is the trace format version (see Version).
	Version int `json:"version"`
	// Scenario is the JSON-encoded scenario spec the run compiled from.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Mechanism names the recorded mechanism (scenario vocabulary).
	Mechanism string `json:"mechanism,omitempty"`
	// Budget is the recorded cell's episode budget η.
	Budget float64 `json:"budget,omitempty"`
	// Seed is the scenario seed the run was compiled with.
	Seed int64 `json:"seed,omitempty"`
	// Nodes is the fleet size N every draws record must match.
	Nodes int `json:"nodes,omitempty"`
	// EvalEpisodes is how many deterministic episodes were recorded.
	EvalEpisodes int `json:"eval_episodes,omitempty"`
	// Checkpoint is the mechanism's post-training checkpoint file (JSON),
	// captured before the first recorded episode. Omitted for static
	// mechanisms that carry no training state.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// DrawsRecord captures one round's resolved environment draws — the
// fleet-membership, availability, and bandwidth-jitter randomness the
// round pipeline consumed — so a replay can pin the environment while a
// different mechanism or budget plays against it. The three columns are
// exactly what round.Respond's draw pre-pass produced: Eligible marks the
// nodes that received the offer, Departing the mid-round departures, and
// CommTimes each eligible node's post-jitter upload time.
type DrawsRecord struct {
	Kind      RecordKind `json:"kind"`
	Episode   int        `json:"episode"`
	Round     int        `json:"round"`
	Eligible  []bool     `json:"eligible"`
	Departing []bool     `json:"departing,omitempty"`
	CommTimes []float64  `json:"comm_times"`
}

// RoundRecord is one training round of one episode. Completed and Outcomes
// carry the failure model's per-node status; both are omitted for clean
// rounds where every participant completed, so pre-failure-model traces
// and fault-free runs serialize identically to the legacy format.
type RoundRecord struct {
	Kind         RecordKind `json:"kind"`
	Episode      int        `json:"episode"`
	Round        int        `json:"round"`
	Prices       []float64  `json:"prices"`
	Freqs        []float64  `json:"freqs"`
	Times        []float64  `json:"times"`
	Payment      float64    `json:"payment"`
	Accuracy     float64    `json:"accuracy"`
	Participants int        `json:"participants"`
	Completed    int        `json:"completed,omitempty"`
	Outcomes     []string   `json:"outcomes,omitempty"`
}

// EpisodeRecord summarizes one finished episode.
type EpisodeRecord struct {
	Kind             RecordKind `json:"kind"`
	Episode          int        `json:"episode"`
	Rounds           int        `json:"rounds"`
	FinalAccuracy    float64    `json:"final_accuracy"`
	ExteriorReturn   float64    `json:"exterior_return"`
	DiscountedReturn float64    `json:"discounted_return"`
	InnerReturn      float64    `json:"inner_return"`
	TimeEfficiency   float64    `json:"time_efficiency"`
	TotalTime        float64    `json:"total_time"`
	BudgetSpent      float64    `json:"budget_spent"`
	ServerUtility    float64    `json:"server_utility"`
}

// Writer streams trace records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewWriter wraps w. If w is also an io.Closer, Close closes it.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	tw := &Writer{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Create opens path for writing (truncating) and returns a Writer over it.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	return NewWriter(f), nil
}

// WriteHeader appends the trace header. Callers write it first so readers
// can gate on the version before interpreting anything else; Write order is
// not enforced, but Read surfaces only the first header it sees.
func (t *Writer) WriteHeader(h HeaderRecord) error {
	h.Kind = KindHeader
	if h.Version == 0 {
		h.Version = Version
	}
	if err := t.enc.Encode(h); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	return nil
}

// WriteDraws appends one round's environment-draw record.
func (t *Writer) WriteDraws(d DrawsRecord) error {
	d.Kind = KindDraws
	if err := t.enc.Encode(d); err != nil {
		return fmt.Errorf("trace: write draws: %w", err)
	}
	return nil
}

// NewRoundRecord converts one committed market round into its trace-record
// form. Per-node outcomes are included only when the round saw at least one
// failure, keeping clean records byte-compatible with the legacy format.
// The record aliases r's per-node vectors — encode or copy it before the
// round is mutated.
func NewRoundRecord(episode int, r *market.Round) RoundRecord {
	rec := RoundRecord{
		Kind:         KindRound,
		Episode:      episode,
		Round:        r.Index,
		Prices:       r.Prices,
		Freqs:        r.Freqs,
		Times:        r.Times,
		Payment:      r.Payment,
		Accuracy:     r.Accuracy,
		Participants: r.Participants,
	}
	if r.Failures() > 0 {
		rec.Completed = r.Completed
		rec.Outcomes = make([]string, len(r.Outcomes))
		for i, o := range r.Outcomes {
			rec.Outcomes[i] = o.String()
		}
	}
	return rec
}

// WriteRound appends one round record (see NewRoundRecord).
func (t *Writer) WriteRound(episode int, r *market.Round) error {
	if err := t.enc.Encode(NewRoundRecord(episode, r)); err != nil {
		return fmt.Errorf("trace: write round: %w", err)
	}
	return nil
}

// WriteEpisode appends one episode summary record.
func (t *Writer) WriteEpisode(res mechanism.EpisodeResult) error {
	rec := EpisodeRecord{
		Kind:             KindEpisode,
		Episode:          res.Episode,
		Rounds:           res.Rounds,
		FinalAccuracy:    res.FinalAccuracy,
		ExteriorReturn:   res.ExteriorReturn,
		DiscountedReturn: res.DiscountedReturn,
		InnerReturn:      res.InnerReturn,
		TimeEfficiency:   res.TimeEfficiency,
		TotalTime:        res.TotalTime,
		BudgetSpent:      res.BudgetSpent,
		ServerUtility:    res.ServerUtility,
	}
	if err := t.enc.Encode(rec); err != nil {
		return fmt.Errorf("trace: write episode: %w", err)
	}
	return nil
}

// Flush forces buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying writer when it is closable.
func (t *Writer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil {
			return fmt.Errorf("trace: close: %w", err)
		}
	}
	return nil
}

// Trace is a fully parsed trace file.
type Trace struct {
	// Header is the first header record of the trace, nil for plain
	// training traces that carry no replay metadata.
	Header   *HeaderRecord
	Rounds   []RoundRecord
	Episodes []EpisodeRecord
	Draws    []DrawsRecord
}

// ErrTruncated reports a trace whose final line is a partial record — the
// tail of a crashed or interrupted run. Read returns the valid prefix
// alongside an error wrapping ErrTruncated, so callers can salvage every
// complete record: errors.Is(err, ErrTruncated) distinguishes a torn tail
// from mid-file corruption, which stays a hard failure.
var ErrTruncated = errors.New("trace: truncated trailing record")

// Read parses a JSONL trace from r. Unknown record kinds are skipped so
// newer traces stay readable by older tooling. An unparseable final line
// yields the valid prefix plus an ErrTruncated-wrapping error; an
// unparseable line anywhere else is a hard failure.
func Read(r io.Reader) (*Trace, error) {
	out := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	// A parse failure is only fatal once a later line proves it wasn't the
	// torn tail of an interrupted write, so the error is held pending for
	// one iteration.
	var pending error
	for sc.Scan() {
		line++
		if pending != nil {
			return nil, pending
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Kind RecordKind `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			pending = fmt.Errorf("trace: line %d: %w", line, err)
			continue
		}
		switch probe.Kind {
		case KindRound:
			var rec RoundRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			out.Rounds = append(out.Rounds, rec)
		case KindEpisode:
			var rec EpisodeRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			out.Episodes = append(out.Episodes, rec)
		case KindHeader:
			var rec HeaderRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			if rec.Version > Version {
				return nil, fmt.Errorf("%w: %d (reader supports <= %d)", ErrVersion, rec.Version, Version)
			}
			if out.Header == nil {
				out.Header = &rec
			}
		case KindDraws:
			var rec DrawsRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				pending = fmt.Errorf("trace: line %d: %w", line, err)
				continue
			}
			out.Draws = append(out.Draws, rec)
		default:
			// Forward compatibility: ignore unknown kinds.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if pending != nil {
		return out, fmt.Errorf("%w (line %d): %v", ErrTruncated, line, pending)
	}
	return out, nil
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) (trc *Trace, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return Read(f)
}
