package device

import (
	"math"
	"math/rand"
	"testing"
)

// TestNewFleetBatchMatchesNewFleet pins the layout contract: the same seed
// yields the bit-identical fleet whether drawn into per-node structs or
// directly into columns.
func TestNewFleetBatchMatchesNewFleet(t *testing.T) {
	spec := DefaultFleetSpec(64)
	nodes, err := NewFleet(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	fleet, err := NewFleetBatch(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatalf("NewFleetBatch: %v", err)
	}
	if fleet.Len() != len(nodes) {
		t.Fatalf("fleet len %d, want %d", fleet.Len(), len(nodes))
	}
	for i, n := range nodes {
		v := fleet.Node(i)
		v.ID = n.ID // NewFleet numbers IDs; the column view uses the index
		if v != *n {
			t.Fatalf("node %d: batch view %+v != struct %+v", i, v, *n)
		}
	}
}

// TestFromNodesRoundTrip pins Fleet ⇄ []*Node conversion.
func TestFromNodesRoundTrip(t *testing.T) {
	nodes, err := NewFleet(rand.New(rand.NewSource(3)), DefaultFleetSpec(17))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	fleet := FromNodes(nodes)
	back := fleet.Nodes()
	for i := range nodes {
		a, b := *nodes[i], *back[i]
		a.ID, b.ID = 0, 0
		if a != b {
			t.Fatalf("node %d: round trip %+v != %+v", i, b, a)
		}
	}
	if err := fleet.Validate(); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
}

// TestBestResponseRangeMatchesScalar pins the tentpole bit-identity
// contract on a dense price grid: the batched kernel must reproduce
// Node.BestResponseWithComm to the last ULP, including the decline paths.
func TestBestResponseRangeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nodes, err := NewFleet(rng, DefaultFleetSpec(40))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	fleet := FromNodes(nodes)
	n := fleet.Len()
	prices := make([]float64, n)
	comm := make([]float64, n)
	out := BatchResponse{Util: []float64{}, Energy: []float64{}}
	out.Resize(n)
	for trial := 0; trial < 50; trial++ {
		for i := 0; i < n; i++ {
			// Cover decline (non-positive price), interior, and both clip
			// branches.
			prices[i] = (rng.Float64()*3 - 0.2) * fleet.PriceForFreq(i, fleet.FreqMax[i])
			comm[i] = fleet.CommTime[i] * (0.5 + rng.Float64())
		}
		fleet.BestResponseRange(0, n, prices, comm, nil, &out)
		for i := 0; i < n; i++ {
			want := nodes[i].BestResponseWithComm(prices[i], comm[i])
			if out.Joined[i] != want.Participating ||
				out.Freq[i] != want.Freq ||
				out.Time[i] != want.Time ||
				out.Payment[i] != want.Payment ||
				out.Util[i] != want.Utility ||
				out.Energy[i] != want.Energy {
				t.Fatalf("trial %d node %d: batch {%v %v %v %v %v %v} != scalar %+v",
					trial, i, out.Joined[i], out.Freq[i], out.Time[i],
					out.Payment[i], out.Util[i], out.Energy[i], want)
			}
		}
	}
}

// TestBestResponseRangeEligibleMask pins that masked nodes zero out
// without reading the price, and stale buffer contents never leak.
func TestBestResponseRangeEligibleMask(t *testing.T) {
	nodes, err := NewFleet(rand.New(rand.NewSource(5)), DefaultFleetSpec(8))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	fleet := FromNodes(nodes)
	n := fleet.Len()
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = fleet.PriceForFreq(i, fleet.FreqMax[i])
	}
	eligible := make([]bool, n)
	for i := range eligible {
		eligible[i] = i%2 == 0
	}
	var out BatchResponse
	out.Resize(n)
	// Poison the buffers to prove declined nodes are rewritten.
	for i := range out.Freq {
		out.Joined[i] = true
		out.Freq[i] = math.NaN()
		out.Time[i] = math.NaN()
		out.Payment[i] = math.NaN()
	}
	fleet.BestResponseRange(0, n, prices, fleet.CommTime, eligible, &out)
	for i := 0; i < n; i++ {
		if !eligible[i] {
			if out.Joined[i] || out.Freq[i] != 0 || out.Time[i] != 0 || out.Payment[i] != 0 {
				t.Fatalf("masked node %d not zeroed: joined=%v freq=%v", i, out.Joined[i], out.Freq[i])
			}
			continue
		}
		want := nodes[i].BestResponseWithComm(prices[i], fleet.CommTime[i])
		if out.Joined[i] != want.Participating || out.Freq[i] != want.Freq {
			t.Fatalf("eligible node %d: %v/%v, want %v/%v", i, out.Joined[i], out.Freq[i], want.Participating, want.Freq)
		}
	}
}

// TestFleetColumns pins the derived-column helpers against the scalar
// methods.
func TestFleetColumns(t *testing.T) {
	nodes, err := NewFleet(rand.New(rand.NewSource(2)), DefaultFleetSpec(12))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	fleet := FromNodes(nodes)
	n := fleet.Len()
	var wantTotal float64
	for i, nd := range nodes {
		if got := fleet.Workload(i); got != float64(nd.Epochs)*nd.CyclesPerBit*nd.DataBits {
			t.Fatalf("workload %d: %v", i, got)
		}
		if got, want := fleet.PriceForFreq(i, 1.3e9), nd.PriceForFreq(1.3e9); got != want {
			t.Fatalf("priceForFreq %d: %v != %v", i, got, want)
		}
		wantTotal += nd.PriceForFreq(nd.FreqMax)
	}
	if got := fleet.MaxTotalPrice(); got != wantTotal {
		t.Fatalf("MaxTotalPrice %v != %v", got, wantTotal)
	}

	freqs := make([]float64, n)
	prices := make([]float64, n)
	ct := make([]float64, n)
	ut := make([]float64, n)
	for i := range freqs {
		freqs[i] = fleet.FreqMin[i] * (1 + float64(i))
		prices[i] = fleet.PriceForFreq(i, freqs[i])
	}
	freqs[0] = 0 // +Inf branch
	fleet.ComputeTimeColumn(0, n, freqs, ct)
	fleet.UtilityColumn(0, n, prices, freqs, ut)
	for i := 0; i < n; i++ {
		if got, want := ct[i], nodes[i].ComputeTime(freqs[i]); got != want {
			t.Fatalf("computeTime %d: %v != %v", i, got, want)
		}
		if got, want := ut[i], nodes[i].Utility(prices[i], freqs[i]); got != want {
			t.Fatalf("utility %d: %v != %v", i, got, want)
		}
	}
}

// TestBatchResponseResize pins buffer-reuse semantics.
func TestBatchResponseResize(t *testing.T) {
	var b BatchResponse
	b.Resize(4)
	if len(b.Joined) != 4 || len(b.Freq) != 4 || b.Util != nil {
		t.Fatalf("resize(4): joined %d freq %d util %v", len(b.Joined), len(b.Freq), b.Util)
	}
	prev := &b.Freq[0]
	b.Resize(4)
	if &b.Freq[0] != prev {
		t.Fatal("same-size resize reallocated")
	}
	b.Util = []float64{}
	b.Resize(6)
	if len(b.Util) != 6 || len(b.Freq) != 6 {
		t.Fatalf("resize(6): util %d freq %d", len(b.Util), len(b.Freq))
	}
}

// TestMemoryFootprint pins the bytes/node constant the benchmark reports.
func TestMemoryFootprint(t *testing.T) {
	fleet := FromNodes([]*Node{testNode(), testNode()})
	perNode := fleet.MemoryFootprint() / 2
	if perNode != 11*8+2*8 {
		t.Fatalf("per-node footprint %d", perNode)
	}
}
