// Package device implements the paper's edge-node hardware and economic
// model: computation and communication time (Eqns. 6–7), the energy model,
// node utility (Eqn. 8), and each node's optimal best response to a posted
// price (Eqns. 11–12), including the reserve-utility participation
// constraint from OP_{i,k}.
//
// All quantities use SI units: CPU frequency in Hz (cycles/s), data in
// bits, time in seconds, energy in joules. Prices are expressed per unit of
// CPU frequency contribution, matching the paper's p_{i,k}·ζ_{i,k} payment.
package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Node models a single edge node's hardware profile and private economics.
type Node struct {
	// ID identifies the node within its fleet.
	ID int
	// CyclesPerBit is c_i, the CPU cycles needed per bit of training data.
	CyclesPerBit float64
	// DataBits is d_i, the bits processed by one local training epoch.
	DataBits float64
	// FreqMin and FreqMax bound the CPU cycle frequency ζ (Hz).
	FreqMin, FreqMax float64
	// Capacitance is α_i, the effective switched-capacitance coefficient.
	Capacitance float64
	// CommTime is the model upload time T^com in seconds (ξ/B_{i,k}).
	CommTime float64
	// CommEnergyRate is ε_i, joules per second of upload.
	CommEnergyRate float64
	// Reserve is μ_i, the minimum per-round utility for participation.
	Reserve float64
	// Epochs is σ, the local epochs per round.
	Epochs int
	// SampleCount is |D_i|, used as the FedAvg aggregation weight.
	SampleCount int
}

// Validate reports whether the node's parameters are physically sensible.
func (n *Node) Validate() error {
	switch {
	case n.CyclesPerBit <= 0:
		return fmt.Errorf("device: node %d: cycles/bit %v, want > 0", n.ID, n.CyclesPerBit)
	case n.DataBits <= 0:
		return fmt.Errorf("device: node %d: data bits %v, want > 0", n.ID, n.DataBits)
	case n.FreqMin <= 0 || n.FreqMax < n.FreqMin:
		return fmt.Errorf("device: node %d: frequency range [%v,%v]", n.ID, n.FreqMin, n.FreqMax)
	case n.Capacitance <= 0:
		return fmt.Errorf("device: node %d: capacitance %v, want > 0", n.ID, n.Capacitance)
	case n.CommTime < 0 || n.CommEnergyRate < 0:
		return fmt.Errorf("device: node %d: negative communication parameters", n.ID)
	case n.Reserve < 0:
		return fmt.Errorf("device: node %d: reserve %v, want >= 0", n.ID, n.Reserve)
	case n.Epochs <= 0:
		return fmt.Errorf("device: node %d: epochs %d, want > 0", n.ID, n.Epochs)
	case n.SampleCount <= 0:
		return fmt.Errorf("device: node %d: samples %d, want > 0", n.ID, n.SampleCount)
	}
	return nil
}

// workload returns σ·c_i·d_i, the CPU cycles of one round of local training.
func (n *Node) workload() float64 {
	return float64(n.Epochs) * n.CyclesPerBit * n.DataBits
}

// ComputeTime returns T^cmp_{i,k} = σ c_i d_i / ζ (Eqn. 6).
func (n *Node) ComputeTime(freq float64) float64 {
	if freq <= 0 {
		return math.Inf(1)
	}
	return n.workload() / freq
}

// RoundTime returns the node's total round time T_{i,k} = T^cmp + T^com.
func (n *Node) RoundTime(freq float64) float64 {
	return n.ComputeTime(freq) + n.CommTime
}

// ComputeEnergy returns E^cmp_{i,k} = σ α_i c_i d_i ζ².
func (n *Node) ComputeEnergy(freq float64) float64 {
	return n.Capacitance * n.workload() * freq * freq
}

// Energy returns the node's total round energy E_{i,k} = E^cmp + E^com.
func (n *Node) Energy(freq float64) float64 {
	return n.ComputeEnergy(freq) + n.CommEnergyRate*n.CommTime
}

// Utility returns u_{i,k} = p·ζ − E_{i,k} (Eqn. 8) for the given price and
// frequency.
func (n *Node) Utility(price, freq float64) float64 {
	return price*freq - n.Energy(freq)
}

// Response is a node's reaction to a posted price.
type Response struct {
	// Participating reports whether the node joins the round (its maximum
	// achievable utility clears the reserve μ_i).
	Participating bool
	// Freq is the chosen CPU frequency ζ*, 0 when not participating.
	Freq float64
	// Utility is the node's realized utility at Freq.
	Utility float64
	// Payment is the parameter-server outlay p·ζ*.
	Payment float64
	// Time is the node's total round time T_{i,k}, 0 when not participating.
	Time float64
	// Energy is the node's total energy draw, 0 when not participating.
	Energy float64
}

// BestResponse computes the node's optimal strategy for OP_{i,k}: the
// utility-maximizing frequency ζ* = p/(2σ α c d) (Eqn. 11) clipped to
// [FreqMin, FreqMax], declining the round if even the optimum cannot reach
// the reserve utility.
func (n *Node) BestResponse(price float64) Response {
	return n.BestResponseWithComm(price, n.CommTime)
}

// BestResponseWithComm is BestResponse with an explicit upload time,
// supporting per-round bandwidth variation (the paper's B_{i,k}): the
// environment draws a round-specific T^com and the node best-responds
// against it. The frequency choice itself is unaffected by T^com (Eqn. 11
// depends only on compute-side terms), but participation, time, energy,
// and utility all are.
func (n *Node) BestResponseWithComm(price, commTime float64) Response {
	if price <= 0 || commTime < 0 {
		return Response{}
	}
	// Unconstrained maximizer of the strictly concave u(ζ).
	interior := price / (2 * n.Capacitance * n.workload())
	freq := interior
	if freq < n.FreqMin {
		freq = n.FreqMin
	} else if freq > n.FreqMax {
		freq = n.FreqMax
	}
	energy := n.ComputeEnergy(freq) + n.CommEnergyRate*commTime
	u := price*freq - energy
	if u < n.Reserve {
		return Response{}
	}
	return Response{
		Participating: true,
		Freq:          freq,
		Utility:       u,
		Payment:       price * freq,
		Time:          n.ComputeTime(freq) + commTime,
		Energy:        energy,
	}
}

// OptimalComputeTime returns t^{cmp,*}_{i,k} = 2 α σ² c² d² / p (Eqn. 12),
// the compute time at the unconstrained interior optimum. It is exposed for
// analysis and tests; BestResponse applies the frequency box constraints.
func (n *Node) OptimalComputeTime(price float64) float64 {
	if price <= 0 {
		return math.Inf(1)
	}
	w := n.workload()
	return 2 * n.Capacitance * w * w / price
}

// PriceForFreq returns the price that makes freq the node's interior best
// response — the inverse of Eqn. 11. Useful for constructing oracle pricing
// strategies in tests and baselines.
func (n *Node) PriceForFreq(freq float64) float64 {
	return 2 * n.Capacitance * n.workload() * freq
}

// MinParticipationPrice returns the smallest price at which the node's best
// response clears its reserve utility, found by bisection (the utility at
// the clipped optimum is nondecreasing in price). It returns +Inf when no
// price below priceCap induces participation.
func (n *Node) MinParticipationPrice(priceCap float64) float64 {
	atCap := n.BestResponse(priceCap)
	if !atCap.Participating {
		return math.Inf(1)
	}
	lo, hi := 0.0, priceCap
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if n.BestResponse(mid).Participating {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// FleetSpec configures random fleet generation following the paper's
// experimental settings (Sec. VI-A).
type FleetSpec struct {
	// N is the number of edge nodes.
	N int
	// CyclesPerBit is c_i (paper: 20 cycles/bit).
	CyclesPerBit float64
	// DataBitsMin/Max bound d_i, the per-epoch training data in bits.
	DataBitsMin, DataBitsMax float64
	// FreqMin is ζ_min for every node (Hz).
	FreqMin float64
	// FreqMaxLow/High bound the random ζ_max (paper: 1.0–2.0 GHz).
	FreqMaxLow, FreqMaxHigh float64
	// CommTimeMin/Max bound the upload time (paper: 10–20 s).
	CommTimeMin, CommTimeMax float64
	// Capacitance is α_i (paper: 2e-28).
	Capacitance float64
	// CommEnergyRate is ε_i in J/s.
	CommEnergyRate float64
	// ReserveMax bounds the random reserve utility μ_i ∈ [0, ReserveMax].
	ReserveMax float64
	// Epochs is σ (paper: 5).
	Epochs int
	// SamplesPerNode is |D_i| for FedAvg weighting.
	SamplesPerNode int
}

// DefaultFleetSpec returns the paper's Sec. VI-A constants for n nodes:
// c=20 cycles/bit, ζ_max ∈ [1,2] GHz, T^com ∈ [10,20] s, α=2·10⁻²⁸, σ=5.
// DataBits is sized so that compute time spans a few seconds at full speed
// to tens of seconds at low frequency, making the pricing decision
// meaningful against the 10–20 s communication time.
func DefaultFleetSpec(n int) FleetSpec {
	return FleetSpec{
		N:              n,
		CyclesPerBit:   20,
		DataBitsMin:    3.2e7, // 4 MB of training data per epoch
		DataBitsMax:    4.8e7, // 6 MB
		FreqMin:        1.5e8, // 0.15 GHz
		FreqMaxLow:     1.0e9,
		FreqMaxHigh:    2.0e9,
		CommTimeMin:    10,
		CommTimeMax:    20,
		Capacitance:    2e-28,
		CommEnergyRate: 0.002,
		ReserveMax:     0.02,
		Epochs:         5,
		SamplesPerNode: 600,
	}
}

// Validate reports whether the spec is well formed.
func (s FleetSpec) Validate() error {
	switch {
	case s.N <= 0:
		return fmt.Errorf("device: fleet size %d, want > 0", s.N)
	case s.CyclesPerBit <= 0:
		return fmt.Errorf("device: cycles/bit %v, want > 0", s.CyclesPerBit)
	case s.DataBitsMin <= 0 || s.DataBitsMax < s.DataBitsMin:
		return fmt.Errorf("device: data bits range [%v,%v]", s.DataBitsMin, s.DataBitsMax)
	case s.FreqMin <= 0 || s.FreqMaxLow < s.FreqMin || s.FreqMaxHigh < s.FreqMaxLow:
		return fmt.Errorf("device: frequency ranges [%v,%v,%v]", s.FreqMin, s.FreqMaxLow, s.FreqMaxHigh)
	case s.CommTimeMin < 0 || s.CommTimeMax < s.CommTimeMin:
		return fmt.Errorf("device: comm time range [%v,%v]", s.CommTimeMin, s.CommTimeMax)
	case s.Capacitance <= 0:
		return fmt.Errorf("device: capacitance %v, want > 0", s.Capacitance)
	case s.CommEnergyRate < 0 || s.ReserveMax < 0:
		return fmt.Errorf("device: negative energy or reserve parameters")
	case s.Epochs <= 0:
		return fmt.Errorf("device: epochs %d, want > 0", s.Epochs)
	case s.SamplesPerNode <= 0:
		return fmt.Errorf("device: samples per node %d, want > 0", s.SamplesPerNode)
	}
	return nil
}

// NewFleet draws a heterogeneous fleet of nodes from the spec using rng.
func NewFleet(rng *rand.Rand, spec FleetSpec) ([]*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	nodes := make([]*Node, spec.N)
	for i := range nodes {
		n := &Node{
			ID:             i,
			CyclesPerBit:   spec.CyclesPerBit,
			DataBits:       uniform(spec.DataBitsMin, spec.DataBitsMax),
			FreqMin:        spec.FreqMin,
			FreqMax:        uniform(spec.FreqMaxLow, spec.FreqMaxHigh),
			Capacitance:    spec.Capacitance,
			CommTime:       uniform(spec.CommTimeMin, spec.CommTimeMax),
			CommEnergyRate: spec.CommEnergyRate,
			Reserve:        uniform(0, spec.ReserveMax),
			Epochs:         spec.Epochs,
			SampleCount:    spec.SamplesPerNode,
		}
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("device: generated invalid node: %w", err)
		}
		nodes[i] = n
	}
	return nodes, nil
}
