package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testNode returns a node with paper-like constants.
func testNode() *Node {
	return &Node{
		ID:             0,
		CyclesPerBit:   20,
		DataBits:       4e7,
		FreqMin:        1e8,
		FreqMax:        1.5e9,
		Capacitance:    2e-28,
		CommTime:       15,
		CommEnergyRate: 0.01,
		Reserve:        0.02,
		Epochs:         5,
		SampleCount:    600,
	}
}

func TestNodeValidate(t *testing.T) {
	n := testNode()
	if err := n.Validate(); err != nil {
		t.Fatalf("valid node rejected: %v", err)
	}
	mutations := []func(*Node){
		func(n *Node) { n.CyclesPerBit = 0 },
		func(n *Node) { n.DataBits = -1 },
		func(n *Node) { n.FreqMin = 0 },
		func(n *Node) { n.FreqMax = n.FreqMin / 2 },
		func(n *Node) { n.Capacitance = 0 },
		func(n *Node) { n.CommTime = -1 },
		func(n *Node) { n.Reserve = -0.1 },
		func(n *Node) { n.Epochs = 0 },
		func(n *Node) { n.SampleCount = 0 },
	}
	for i, mutate := range mutations {
		bad := testNode()
		mutate(bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestComputeTimeEqn6(t *testing.T) {
	n := testNode()
	// T^cmp = σ·c·d/ζ = 5·20·4e7/1e9 = 4 s.
	got := n.ComputeTime(1e9)
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("ComputeTime = %v, want 4", got)
	}
	if !math.IsInf(n.ComputeTime(0), 1) {
		t.Fatal("ComputeTime(0) should be +Inf")
	}
	if got := n.RoundTime(1e9); math.Abs(got-19) > 1e-12 {
		t.Fatalf("RoundTime = %v, want 19", got)
	}
}

func TestEnergyModel(t *testing.T) {
	n := testNode()
	freq := 1e9
	// E^cmp = σ·α·c·d·ζ² = 5·2e-28·20·4e7·1e18 = 0.8 J.
	wantCmp := 0.8
	if got := n.ComputeEnergy(freq); math.Abs(got-wantCmp) > 1e-9 {
		t.Fatalf("ComputeEnergy = %v, want %v", got, wantCmp)
	}
	wantTotal := wantCmp + 0.01*15
	if got := n.Energy(freq); math.Abs(got-wantTotal) > 1e-9 {
		t.Fatalf("Energy = %v, want %v", got, wantTotal)
	}
}

func TestBestResponseInteriorEqn11(t *testing.T) {
	n := testNode()
	// Choose a price whose interior optimum lies strictly inside the
	// frequency box, then verify ζ* = p/(2σαcd).
	target := 1e9
	price := n.PriceForFreq(target)
	resp := n.BestResponse(price)
	if !resp.Participating {
		t.Fatal("node declined a profitable price")
	}
	if math.Abs(resp.Freq-target) > 1 {
		t.Fatalf("ζ* = %v, want %v", resp.Freq, target)
	}
	// Eqn. 12: optimal compute time 2ασ²c²d²/p.
	wantCmp := 2 * n.Capacitance * n.workload() * n.workload() / price
	if math.Abs(n.OptimalComputeTime(price)-wantCmp) > 1e-9 {
		t.Fatalf("OptimalComputeTime = %v, want %v", n.OptimalComputeTime(price), wantCmp)
	}
	if math.Abs(resp.Time-(wantCmp+n.CommTime)) > 1e-9 {
		t.Fatalf("response time = %v, want %v", resp.Time, wantCmp+n.CommTime)
	}
}

func TestBestResponseClipsToBox(t *testing.T) {
	n := testNode()
	// A huge price should clip to FreqMax.
	resp := n.BestResponse(n.PriceForFreq(n.FreqMax) * 100)
	if !resp.Participating || resp.Freq != n.FreqMax {
		t.Fatalf("high price: freq %v, want FreqMax %v", resp.Freq, n.FreqMax)
	}
	// A price below the participation threshold yields a decline.
	resp = n.BestResponse(1e-15)
	if resp.Participating {
		t.Fatal("node participated at a dust price")
	}
	if resp.Freq != 0 || resp.Payment != 0 || resp.Time != 0 {
		t.Fatalf("declined response not zeroed: %+v", resp)
	}
}

func TestBestResponseZeroAndNegativePrice(t *testing.T) {
	n := testNode()
	if n.BestResponse(0).Participating || n.BestResponse(-1).Participating {
		t.Fatal("node participated at non-positive price")
	}
}

// Property (the optimal-strategy analysis of Sec. IV-B): the best-response
// frequency maximizes utility over a dense grid of feasible frequencies.
func TestBestResponseIsMaximizer(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nodes, err := NewFleet(r, DefaultFleetSpec(1))
		if err != nil {
			return false
		}
		n := nodes[0]
		price := n.PriceForFreq(n.FreqMin + r.Float64()*(n.FreqMax-n.FreqMin)*1.5)
		resp := n.BestResponse(price)
		const grid = 400
		bestU := math.Inf(-1)
		for i := 0; i <= grid; i++ {
			freq := n.FreqMin + (n.FreqMax-n.FreqMin)*float64(i)/grid
			if u := n.Utility(price, freq); u > bestU {
				bestU = u
			}
		}
		if !resp.Participating {
			// If it declined, no feasible frequency may clear the reserve.
			return bestU < n.Reserve+1e-9
		}
		// The analytic optimum must match the grid search up to grid error.
		return resp.Utility >= bestU-1e-6*(1+math.Abs(bestU))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: utility at the clipped best response is nondecreasing in price.
func TestBestResponseUtilityMonotoneInPrice(t *testing.T) {
	n := testNode()
	pMax := n.PriceForFreq(n.FreqMax) * 2
	prev := math.Inf(-1)
	for i := 1; i <= 100; i++ {
		price := pMax * float64(i) / 100
		resp := n.BestResponse(price)
		u := resp.Utility
		if !resp.Participating {
			u = 0
		}
		if u < prev-1e-9 {
			t.Fatalf("utility decreased with price at step %d: %v -> %v", i, prev, u)
		}
		prev = u
	}
}

func TestPriceForFreqInvertsEqn11(t *testing.T) {
	n := testNode()
	for _, freq := range []float64{2e8, 7e8, 1.2e9} {
		price := n.PriceForFreq(freq)
		interior := price / (2 * n.Capacitance * n.workload())
		if math.Abs(interior-freq) > 1e-3 {
			t.Fatalf("PriceForFreq not inverse of Eqn 11: %v vs %v", interior, freq)
		}
	}
}

func TestMinParticipationPrice(t *testing.T) {
	n := testNode()
	priceCap := n.PriceForFreq(n.FreqMax)
	mp := n.MinParticipationPrice(priceCap)
	if math.IsInf(mp, 1) {
		t.Fatal("no participation price found below cap")
	}
	if !n.BestResponse(mp).Participating {
		t.Fatal("node declines at its min participation price")
	}
	if below := mp * 0.99; n.BestResponse(below).Participating {
		t.Fatal("node participates below its min participation price")
	}
	// An impossible reserve yields +Inf.
	greedy := testNode()
	greedy.Reserve = 1e12
	if !math.IsInf(greedy.MinParticipationPrice(priceCap), 1) {
		t.Fatal("impossible reserve should yield +Inf")
	}
}

func TestFleetSpecValidate(t *testing.T) {
	if err := DefaultFleetSpec(5).Validate(); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	bad := DefaultFleetSpec(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-node spec accepted")
	}
	bad = DefaultFleetSpec(5)
	bad.CommTimeMax = bad.CommTimeMin - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted comm range accepted")
	}
	bad = DefaultFleetSpec(5)
	bad.FreqMaxHigh = bad.FreqMaxLow / 2
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted freq range accepted")
	}
}

func TestNewFleetRespectsSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := DefaultFleetSpec(50)
	nodes, err := NewFleet(rng, spec)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if len(nodes) != 50 {
		t.Fatalf("fleet size %d", len(nodes))
	}
	for _, n := range nodes {
		if n.FreqMax < spec.FreqMaxLow || n.FreqMax > spec.FreqMaxHigh {
			t.Fatalf("node %d FreqMax %v outside [%v,%v]", n.ID, n.FreqMax, spec.FreqMaxLow, spec.FreqMaxHigh)
		}
		if n.CommTime < spec.CommTimeMin || n.CommTime > spec.CommTimeMax {
			t.Fatalf("node %d CommTime %v outside range", n.ID, n.CommTime)
		}
		if n.DataBits < spec.DataBitsMin || n.DataBits > spec.DataBitsMax {
			t.Fatalf("node %d DataBits %v outside range", n.ID, n.DataBits)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("generated node invalid: %v", err)
		}
	}
}

func TestNewFleetDeterministic(t *testing.T) {
	a, err := NewFleet(rand.New(rand.NewSource(5)), DefaultFleetSpec(10))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	b, err := NewFleet(rand.New(rand.NewSource(5)), DefaultFleetSpec(10))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	for i := range a {
		if a[i].DataBits != b[i].DataBits || a[i].FreqMax != b[i].FreqMax || a[i].CommTime != b[i].CommTime {
			t.Fatalf("fleet generation not deterministic at node %d", i)
		}
	}
}
