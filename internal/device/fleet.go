package device

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mat"
)

// Fleet is the struct-of-arrays batch form of a device fleet: one
// contiguous []float64 column per node parameter, plus the derived columns
// the Eqn. (11)/(12) kernels need, precomputed once at construction. It is
// the data layout that makes million-node rounds tractable — the round
// pipeline streams whole columns through the destination-passing kernels
// instead of chasing per-node struct pointers.
//
// Derived columns are computed with exactly the scalar methods' expression
// order (workload = float64(σ)·c·d, priceCoef = (2·α)·w, energyCoef = α·w),
// so every batch kernel below is bit-identical to the corresponding
// per-node Node method — the contract pinned by the propcheck
// batch-vs-scalar property. A Fleet is immutable after construction and
// therefore safe for concurrent reads from any number of worker shards.
type Fleet struct {
	n int

	// Per-node parameter columns, index-aligned with node IDs 0..n-1.
	CyclesPerBit   []float64 // c_i
	DataBits       []float64 // d_i
	FreqMin        []float64 // ζ_min bound
	FreqMax        []float64 // ζ_max bound
	Capacitance    []float64 // α_i
	CommTime       []float64 // nominal T^com_i
	CommEnergyRate []float64 // ε_i
	Reserve        []float64 // μ_i
	Epochs         []int     // σ_i
	SampleCount    []int     // |D_i|

	// Derived columns (precomputed, never mutated).
	workload   []float64 // σ·c·d, the cycles of one local round
	priceCoef  []float64 // 2·α·w — Eqn. (11) denominator and PriceForFreq slope
	energyCoef []float64 // α·w — the E^cmp coefficient
}

// NewFleetBatch draws a heterogeneous fleet directly into columns using the
// same per-node draw order as NewFleet (DataBits, FreqMax, CommTime,
// Reserve), so a given rng seed yields the bit-identical fleet in either
// layout. Use this instead of NewFleet + FromNodes when N is large enough
// that materializing per-node structs matters.
func NewFleetBatch(rng *rand.Rand, spec FleetSpec) (*Fleet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	f := newEmptyFleet(spec.N)
	for i := 0; i < spec.N; i++ {
		f.CyclesPerBit[i] = spec.CyclesPerBit
		f.DataBits[i] = uniform(spec.DataBitsMin, spec.DataBitsMax)
		f.FreqMin[i] = spec.FreqMin
		f.FreqMax[i] = uniform(spec.FreqMaxLow, spec.FreqMaxHigh)
		f.Capacitance[i] = spec.Capacitance
		f.CommTime[i] = uniform(spec.CommTimeMin, spec.CommTimeMax)
		f.CommEnergyRate[i] = spec.CommEnergyRate
		f.Reserve[i] = uniform(0, spec.ReserveMax)
		f.Epochs[i] = spec.Epochs
		f.SampleCount[i] = spec.SamplesPerNode
	}
	f.derive()
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("device: generated invalid fleet: %w", err)
	}
	return f, nil
}

// FromNodes packs an existing per-node fleet into columns. Node IDs are
// ignored: column index i holds nodes[i].
func FromNodes(nodes []*Node) *Fleet {
	f := newEmptyFleet(len(nodes))
	for i, n := range nodes {
		f.CyclesPerBit[i] = n.CyclesPerBit
		f.DataBits[i] = n.DataBits
		f.FreqMin[i] = n.FreqMin
		f.FreqMax[i] = n.FreqMax
		f.Capacitance[i] = n.Capacitance
		f.CommTime[i] = n.CommTime
		f.CommEnergyRate[i] = n.CommEnergyRate
		f.Reserve[i] = n.Reserve
		f.Epochs[i] = n.Epochs
		f.SampleCount[i] = n.SampleCount
	}
	f.derive()
	return f
}

// newEmptyFleet allocates all columns for n nodes.
func newEmptyFleet(n int) *Fleet {
	return &Fleet{
		n:              n,
		CyclesPerBit:   make([]float64, n),
		DataBits:       make([]float64, n),
		FreqMin:        make([]float64, n),
		FreqMax:        make([]float64, n),
		Capacitance:    make([]float64, n),
		CommTime:       make([]float64, n),
		CommEnergyRate: make([]float64, n),
		Reserve:        make([]float64, n),
		Epochs:         make([]int, n),
		SampleCount:    make([]int, n),
		workload:       make([]float64, n),
		priceCoef:      make([]float64, n),
		energyCoef:     make([]float64, n),
	}
}

// derive fills the precomputed columns. The expressions mirror the scalar
// methods exactly: workload() = float64(σ)*c*d, the Eqn. (11) denominator
// 2*α*w left-associated as (2*α)*w, and the E^cmp coefficient α*w.
func (f *Fleet) derive() {
	for i := 0; i < f.n; i++ {
		w := float64(f.Epochs[i]) * f.CyclesPerBit[i] * f.DataBits[i]
		f.workload[i] = w
		f.priceCoef[i] = 2 * f.Capacitance[i] * w
		f.energyCoef[i] = f.Capacitance[i] * w
	}
}

// Len returns the fleet size N.
func (f *Fleet) Len() int { return f.n }

// Node materializes node i as a value — the thin per-node view over the
// batch that keeps the scalar Node API available for spot checks, tests,
// and small-fleet callers without holding N structs alive.
func (f *Fleet) Node(i int) Node {
	return Node{
		ID:             i,
		CyclesPerBit:   f.CyclesPerBit[i],
		DataBits:       f.DataBits[i],
		FreqMin:        f.FreqMin[i],
		FreqMax:        f.FreqMax[i],
		Capacitance:    f.Capacitance[i],
		CommTime:       f.CommTime[i],
		CommEnergyRate: f.CommEnergyRate[i],
		Reserve:        f.Reserve[i],
		Epochs:         f.Epochs[i],
		SampleCount:    f.SampleCount[i],
	}
}

// Nodes materializes the whole fleet as per-node structs — compatibility
// for callers that still want the AoS view. Cost is O(N) structs; callers
// at fleet scale should stay on the columns.
func (f *Fleet) Nodes() []*Node {
	nodes := make([]*Node, f.n)
	for i := range nodes {
		n := f.Node(i)
		nodes[i] = &n
	}
	return nodes
}

// Validate checks every node's parameters, reporting the first offender.
func (f *Fleet) Validate() error {
	for i := 0; i < f.n; i++ {
		n := f.Node(i)
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Workload returns σ·c·d for node i (exposed for tests and analysis).
func (f *Fleet) Workload(i int) float64 { return f.workload[i] }

// PriceForFreq returns the price making freq node i's interior best
// response — identical to Node.PriceForFreq.
func (f *Fleet) PriceForFreq(i int, freq float64) float64 {
	return f.priceCoef[i] * freq
}

// MaxTotalPrice returns Σ_i p_i(ζ_i^max) accumulated in ascending node
// order — the same reduction order the per-node loop used, so the exterior
// action bound is bit-identical in either layout.
func (f *Fleet) MaxTotalPrice() float64 {
	var sum float64
	for i := 0; i < f.n; i++ {
		sum += f.priceCoef[i] * f.FreqMax[i]
	}
	return sum
}

// ComputeTimeColumn writes T^cmp_i = w_i/freqs[i] (Eqn. 6) for nodes
// [lo,hi) into dst. A non-positive frequency yields +Inf, matching the
// scalar ComputeTime.
func (f *Fleet) ComputeTimeColumn(lo, hi int, freqs, dst []float64) {
	for i := lo; i < hi; i++ {
		if freqs[i] <= 0 {
			dst[i] = math.Inf(1)
			continue
		}
		dst[i] = f.workload[i] / freqs[i]
	}
}

// UtilityColumn writes u_i = p_i·ζ_i − E_i (Eqn. 8) for nodes [lo,hi) into
// dst, using each node's nominal upload time — identical to the scalar
// Utility method.
func (f *Fleet) UtilityColumn(lo, hi int, prices, freqs, dst []float64) {
	for i := lo; i < hi; i++ {
		energy := f.energyCoef[i]*freqs[i]*freqs[i] + f.CommEnergyRate[i]*f.CommTime[i]
		dst[i] = prices[i]*freqs[i] - energy
	}
}

// BatchResponse is the struct-of-arrays form of Response: column i holds
// node i's reaction to the posted price. Joined is the participation
// screen; declined nodes carry zeros in every other column, exactly like
// the scalar zero Response. Util and Energy are optional — leave them nil
// when only the round pipeline's columns (Joined/Freq/Time/Payment) are
// needed.
type BatchResponse struct {
	Joined  []bool
	Freq    []float64
	Time    []float64
	Payment []float64
	Util    []float64 // optional
	Energy  []float64 // optional
}

// Resize grows (or reslices) every non-nil column set to length n. Util
// and Energy are allocated only if already non-nil.
func (b *BatchResponse) Resize(n int) {
	b.Joined = ensureBools(b.Joined, n)
	b.Freq = mat.EnsureVec(b.Freq, n)
	b.Time = mat.EnsureVec(b.Time, n)
	b.Payment = mat.EnsureVec(b.Payment, n)
	if b.Util != nil {
		b.Util = mat.EnsureVec(b.Util, n)
	}
	if b.Energy != nil {
		b.Energy = mat.EnsureVec(b.Energy, n)
	}
}

// ensureBools is EnsureVec for masks.
func ensureBools(v []bool, n int) []bool {
	if len(v) == n {
		return v
	}
	return make([]bool, n)
}

// BestResponseRange plays OP_{i,k} for nodes [lo,hi): the Eqn. (11)
// interior optimum clipped to the frequency box, the Eqn. (8) reserve
// participation screen, and the realized payment/time/energy — the
// vectorized form of Node.BestResponseWithComm, bit-identical to it per
// element (same expression order, no reassociation).
//
// commTimes supplies each node's round-specific upload time (the paper's
// B_{i,k} jitter); eligible masks nodes outside the round (churned away or
// unavailable) — nil means every node is eligible. Declined and ineligible
// nodes are fully zeroed in out, so reused buffers never leak stale state.
// The method only writes indices in [lo,hi) and reads immutable columns,
// so disjoint ranges are safe to compute concurrently — this is the kernel
// the round pipeline shards over the worker pool.
func (f *Fleet) BestResponseRange(lo, hi int, prices, commTimes []float64, eligible []bool, out *BatchResponse) {
	for i := lo; i < hi; i++ {
		price := prices[i]
		commTime := commTimes[i]
		if (eligible != nil && !eligible[i]) || price <= 0 || commTime < 0 {
			f.zeroResponse(i, out)
			continue
		}
		// Unconstrained maximizer of the strictly concave u(ζ), then the
		// box clip — Eqn. (11) exactly as the scalar method computes it.
		freq := price / f.priceCoef[i]
		if freq < f.FreqMin[i] {
			freq = f.FreqMin[i]
		} else if freq > f.FreqMax[i] {
			freq = f.FreqMax[i]
		}
		energy := f.energyCoef[i]*freq*freq + f.CommEnergyRate[i]*commTime
		u := price*freq - energy
		if u < f.Reserve[i] {
			f.zeroResponse(i, out)
			continue
		}
		out.Joined[i] = true
		out.Freq[i] = freq
		out.Time[i] = f.workload[i]/freq + commTime
		out.Payment[i] = price * freq
		if out.Util != nil {
			out.Util[i] = u
		}
		if out.Energy != nil {
			out.Energy[i] = energy
		}
	}
}

// zeroResponse clears node i's columns in out.
func (f *Fleet) zeroResponse(i int, out *BatchResponse) {
	out.Joined[i] = false
	out.Freq[i] = 0
	out.Time[i] = 0
	out.Payment[i] = 0
	if out.Util != nil {
		out.Util[i] = 0
	}
	if out.Energy != nil {
		out.Energy[i] = 0
	}
}

// MemoryFootprint returns the fleet's resident column bytes — the
// denominator-independent part of the bytes/node metric BENCH_fleet
// reports.
func (f *Fleet) MemoryFootprint() int {
	floatCols := 11 // 8 parameter + 3 derived
	intCols := 2
	return f.n * (floatCols*8 + intCols*8)
}
