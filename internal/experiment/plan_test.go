package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPlanExecuteOrdersResults checks that results land in job order at
// every worker count, including workers exceeding the job count.
func TestPlanExecuteOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		plan := Plan[int]{Name: "order", Workers: workers}
		for i := 0; i < 20; i++ {
			plan.Jobs = append(plan.Jobs, Job[int]{
				Label: fmt.Sprintf("job-%d", i),
				Run:   func() (int, error) { return i * i, nil },
			})
		}
		results, err := plan.Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

// TestPlanExecuteAttributesErrors checks the scheduler reports the
// lowest-indexed failing job — deterministically, regardless of which
// worker hit it first — and wraps it with the plan name and the job's
// label (mechanism kind, grid point, seed).
func TestPlanExecuteAttributesErrors(t *testing.T) {
	sentinel := errors.New("cell exploded")
	var ran atomic.Int64
	plan := Plan[int]{Name: "sweep", Workers: 4}
	for i := 0; i < 10; i++ {
		fail := i == 3 || i == 7
		plan.Jobs = append(plan.Jobs, Job[int]{
			Label: fmt.Sprintf("Chiron η=%d seed=11", 100*i),
			Run: func() (int, error) {
				ran.Add(1)
				if fail {
					return 0, sentinel
				}
				return i, nil
			},
		})
	}
	_, err := plan.Execute()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Execute error %v does not wrap the job error", err)
	}
	want := "experiment: sweep job 3 (Chiron η=300 seed=11)"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not attribute the first failing cell %q", err, want)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("%d jobs ran, want all 10 (jobs are independent; one failure must not starve the rest)", got)
	}
}

func TestPlanExecuteEmpty(t *testing.T) {
	results, err := Plan[string]{Name: "empty"}.Execute()
	if err != nil || len(results) != 0 {
		t.Fatalf("empty plan: results=%v err=%v", results, err)
	}
}

func TestResolveWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, jobs, want int }{
		{1, 10, 1},
		{4, 10, 4},
		{8, 3, 3},
		{-1, 0, 1},
	} {
		if got := resolveWorkers(tc.workers, tc.jobs); got != tc.want {
			t.Errorf("resolveWorkers(%d, %d) = %d, want %d", tc.workers, tc.jobs, got, tc.want)
		}
	}
}
