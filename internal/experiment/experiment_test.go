package experiment

import (
	"bytes"
	"strings"
	"testing"

	"chiron/internal/accuracy"
)

func TestBuildEnvValidation(t *testing.T) {
	if _, err := BuildEnv(Setup{Nodes: 0, Preset: accuracy.PresetMNIST, Budget: 100, Seed: 1}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	env, err := BuildEnv(Setup{Nodes: 3, Preset: accuracy.PresetMNIST, Budget: 100, Seed: 1})
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	if env.NumNodes() != 3 || env.Ledger().Budget() != 100 {
		t.Fatalf("env %d nodes budget %v", env.NumNodes(), env.Ledger().Budget())
	}
	// Lambda override.
	env2, err := BuildEnv(Setup{Nodes: 3, Preset: accuracy.PresetMNIST, Budget: 100, Seed: 1, Lambda: 555})
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	if env2.Config().Lambda != 555 {
		t.Fatalf("lambda %v, want 555", env2.Config().Lambda)
	}
}

func TestBuildEnvDeterministic(t *testing.T) {
	a, err := BuildEnv(Setup{Nodes: 4, Preset: accuracy.PresetMNIST, Budget: 100, Seed: 9})
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	b, err := BuildEnv(Setup{Nodes: 4, Preset: accuracy.PresetMNIST, Budget: 100, Seed: 9})
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	for i := range a.Nodes() {
		if a.Nodes()[i].DataBits != b.Nodes()[i].DataBits {
			t.Fatal("fleet not deterministic for equal seeds")
		}
	}
}

func TestBuildMechanismAllKinds(t *testing.T) {
	for _, kind := range []MechanismKind{KindChiron, KindDRLBased, KindGreedy, KindUniform, KindEqualTimeOracle} {
		env, err := BuildEnv(Setup{Nodes: 2, Preset: accuracy.PresetMNIST, Budget: 50, Seed: 2})
		if err != nil {
			t.Fatalf("BuildEnv: %v", err)
		}
		m, err := BuildMechanism(kind, env, 2)
		if err != nil {
			t.Fatalf("BuildMechanism(%v): %v", kind, err)
		}
		if m.Name() != kind.String() {
			t.Fatalf("name %q, want %q", m.Name(), kind.String())
		}
	}
	env, _ := BuildEnv(Setup{Nodes: 2, Preset: accuracy.PresetMNIST, Budget: 50, Seed: 2})
	if _, err := BuildMechanism(MechanismKind(99), env, 2); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestComparisonParamsValidation(t *testing.T) {
	good := ComparisonParams{
		Preset: accuracy.PresetMNIST, Nodes: 2, Budgets: []float64{50},
		Mechanisms: []MechanismKind{KindUniform}, TrainEpisodes: 0, EvalEpisodes: 1, Seed: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := good
	bad.Budgets = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted no budgets")
	}
	bad = good
	bad.Mechanisms = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted no mechanisms")
	}
	bad = good
	bad.EvalEpisodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero eval episodes")
	}
}

func TestScaleClampsToOne(t *testing.T) {
	p := ComparisonParams{TrainEpisodes: 500, EvalEpisodes: 5}
	s := p.Scale(0.001)
	if s.TrainEpisodes != 1 || s.EvalEpisodes != 1 {
		t.Fatalf("scaled to %d/%d, want 1/1", s.TrainEpisodes, s.EvalEpisodes)
	}
	s = p.Scale(0.5)
	if s.TrainEpisodes != 250 {
		t.Fatalf("scaled to %d, want 250", s.TrainEpisodes)
	}
	c := ConvergenceParams{Episodes: 100}
	if c.Scale(0.1).Episodes != 10 {
		t.Fatalf("convergence scale wrong")
	}
}

func TestRunComparisonQuick(t *testing.T) {
	params := ComparisonParams{
		Preset: accuracy.PresetMNIST, Nodes: 3,
		Budgets:      []float64{60, 120},
		Mechanisms:   []MechanismKind{KindUniform, KindEqualTimeOracle},
		EvalEpisodes: 2, Seed: 4,
	}
	cmp, err := RunComparison(params)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	if len(cmp.Points) != 2 {
		t.Fatalf("points %d", len(cmp.Points))
	}
	for _, pt := range cmp.Points {
		if len(pt.Results) != 2 {
			t.Fatalf("budget %v has %d results", pt.Budget, len(pt.Results))
		}
		for name, r := range pt.Results {
			if r.Rounds <= 0 {
				t.Fatalf("%s at %v: %d rounds", name, pt.Budget, r.Rounds)
			}
		}
	}
	// More budget must never hurt the oracle's accuracy.
	a := cmp.Points[0].Results["EqualTime-Oracle"].FinalAccuracy
	b := cmp.Points[1].Results["EqualTime-Oracle"].FinalAccuracy
	if b < a-0.02 {
		t.Fatalf("accuracy fell with budget: %v -> %v", a, b)
	}
}

func TestRunConvergenceQuick(t *testing.T) {
	params := ConvergenceParams{
		Preset: accuracy.PresetMNIST, Nodes: 2, Budget: 60,
		Mechanism: KindChiron, Episodes: 4, Window: 2, Seed: 4,
	}
	conv, err := RunConvergence(params)
	if err != nil {
		t.Fatalf("RunConvergence: %v", err)
	}
	if len(conv.Episodes) != 4 || len(conv.SmoothedReward) != 4 {
		t.Fatalf("lengths %d/%d", len(conv.Episodes), len(conv.SmoothedReward))
	}
	// Static mechanisms cannot produce convergence curves.
	params.Mechanism = KindUniform
	if _, err := RunConvergence(params); err == nil {
		t.Fatal("accepted untrainable mechanism")
	}
}

func TestSmoothWindow(t *testing.T) {
	out := smooth([]float64{1, 2, 3, 4, 5}, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("smooth[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestArtifactRegistry(t *testing.T) {
	if len(Artifacts()) != 7 {
		t.Fatalf("artifact count %d, want 7", len(Artifacts()))
	}
	for _, a := range Artifacts() {
		desc := Describe(a)
		if strings.Contains(desc, "unknown") {
			t.Fatalf("artifact %s has no description", a)
		}
		if IsComparison(a) {
			if _, err := ComparisonDefaults(a); err != nil {
				t.Fatalf("ComparisonDefaults(%s): %v", a, err)
			}
			if _, err := ConvergenceDefaults(a); err == nil {
				t.Fatalf("%s should not have convergence defaults", a)
			}
		} else {
			if _, err := ConvergenceDefaults(a); err != nil {
				t.Fatalf("ConvergenceDefaults(%s): %v", a, err)
			}
		}
	}
	if Describe(Artifact("nope")) == "" {
		t.Fatal("unknown artifact has empty description")
	}
}

func TestDefaultsMatchPaperSettings(t *testing.T) {
	fig4, err := ComparisonDefaults(Fig4)
	if err != nil {
		t.Fatalf("ComparisonDefaults: %v", err)
	}
	if fig4.Nodes != 5 || fig4.TrainEpisodes != 500 {
		t.Fatalf("fig4 defaults %d nodes %d episodes", fig4.Nodes, fig4.TrainEpisodes)
	}
	tab1, err := ComparisonDefaults(Tab1)
	if err != nil {
		t.Fatalf("ComparisonDefaults: %v", err)
	}
	if tab1.Nodes != 100 {
		t.Fatalf("tab1 nodes %d, want 100", tab1.Nodes)
	}
	wantBudgets := []float64{140, 220, 300, 380}
	for i, b := range wantBudgets {
		if tab1.Budgets[i] != b {
			t.Fatalf("tab1 budgets %v, want %v", tab1.Budgets, wantBudgets)
		}
	}
	fig7a, err := ConvergenceDefaults(Fig7a)
	if err != nil {
		t.Fatalf("ConvergenceDefaults: %v", err)
	}
	if fig7a.Nodes != 100 || fig7a.Episodes != 500 {
		t.Fatalf("fig7a defaults %d nodes %d episodes", fig7a.Nodes, fig7a.Episodes)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if _, err := Run(Fig3, 0); err == nil {
		t.Fatal("accepted scale 0")
	}
	if _, err := Run(Fig3, 1.5); err == nil {
		t.Fatal("accepted scale > 1")
	}
}

func TestRenderAndCSV(t *testing.T) {
	params := ComparisonParams{
		Preset: accuracy.PresetMNIST, Nodes: 2, Budgets: []float64{60},
		Mechanisms: []MechanismKind{KindUniform}, EvalEpisodes: 1, Seed: 4,
	}
	cmp, err := RunComparison(params)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	text := RenderComparison(Fig4, cmp)
	if !strings.Contains(text, "Uniform") || !strings.Contains(text, "60") {
		t.Fatalf("render missing content:\n%s", text)
	}
	var buf bytes.Buffer
	if err := WriteComparisonCSV(&buf, cmp); err != nil {
		t.Fatalf("WriteComparisonCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + one row
		t.Fatalf("csv lines %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "budget,mechanism,accuracy") {
		t.Fatalf("csv header %q", lines[0])
	}

	convParams := ConvergenceParams{
		Preset: accuracy.PresetMNIST, Nodes: 2, Budget: 60,
		Mechanism: KindChiron, Episodes: 3, Window: 2, Seed: 4,
	}
	conv, err := RunConvergence(convParams)
	if err != nil {
		t.Fatalf("RunConvergence: %v", err)
	}
	text = RenderConvergence(Fig3, conv)
	if !strings.Contains(text, "episode") {
		t.Fatalf("convergence render missing header:\n%s", text)
	}
	buf.Reset()
	if err := WriteConvergenceCSV(&buf, conv); err != nil {
		t.Fatalf("WriteConvergenceCSV: %v", err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 4 {
		t.Fatalf("convergence csv lines %d", len(lines))
	}
}

func TestSortedNamesChironFirst(t *testing.T) {
	params := ComparisonParams{
		Preset: accuracy.PresetMNIST, Nodes: 2, Budgets: []float64{60},
		Mechanisms:   []MechanismKind{KindUniform, KindEqualTimeOracle},
		EvalEpisodes: 1, Seed: 4,
	}
	cmp, err := RunComparison(params)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	names := sortedNames(cmp.Points[0])
	if len(names) != 2 {
		t.Fatalf("names %v", names)
	}
	if names[0] > names[1] {
		t.Fatalf("names not sorted: %v", names)
	}
}
