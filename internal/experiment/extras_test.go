package experiment

import (
	"strings"
	"testing"
)

func TestExtraRegistry(t *testing.T) {
	extras := ExtraArtifacts()
	if len(extras) != 5 {
		t.Fatalf("extras %d, want 5", len(extras))
	}
	for _, a := range extras {
		if !IsExtra(a) {
			t.Fatalf("%s not recognized as extra", a)
		}
		if strings.Contains(DescribeExtra(a), "unknown") {
			t.Fatalf("%s undescribed", a)
		}
	}
	for _, a := range Artifacts() {
		if IsExtra(a) {
			t.Fatalf("paper artifact %s claimed as extra", a)
		}
	}
}

func TestRunExtraRejectsBadInput(t *testing.T) {
	if _, err := RunExtra(AblLambda, 0); err == nil {
		t.Fatal("accepted scale 0")
	}
	if _, err := RunExtra(Artifact("abl-nope"), 0.5); err == nil {
		t.Fatal("accepted unknown ablation")
	}
}

func TestRunExtraLambdaTiny(t *testing.T) {
	report, err := RunExtra(AblLambda, 0.002) // 1 episode per λ
	if err != nil {
		t.Fatalf("RunExtra: %v", err)
	}
	for _, want := range []string{"lambda", "500", "2000", "8000"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunExtraRewardTiny(t *testing.T) {
	report, err := RunExtra(AblReward, 0.002)
	if err != nil {
		t.Fatalf("RunExtra: %v", err)
	}
	if !strings.Contains(report, "eqn14") {
		t.Fatalf("report missing eqn14 row:\n%s", report)
	}
}

func TestRunExtraRobustTiny(t *testing.T) {
	report, err := RunExtra(AblRobust, 0.002)
	if err != nil {
		t.Fatalf("RunExtra: %v", err)
	}
	for _, want := range []string{"clean", "jitter", "availability"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunExtraNonIIDTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("real training skipped in -short mode")
	}
	report, err := RunExtra(AblNonIID, 0.04) // 1 round per split
	if err != nil {
		t.Fatalf("RunExtra: %v", err)
	}
	for _, want := range []string{"iid", "dirichlet", "shards"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunExtraFaultSweepTiny(t *testing.T) {
	report, err := RunExtra(AblFaults, 0.002)
	if err != nil {
		t.Fatalf("RunExtra: %v", err)
	}
	for _, want := range []string{"clean", "light", "moderate", "severe", "failures"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunDispatchesExtras(t *testing.T) {
	report, err := Run(AblLambda, 0.002)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(report, "lambda") {
		t.Fatalf("Run did not dispatch to the ablation:\n%s", report)
	}
}
