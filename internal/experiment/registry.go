package experiment

import (
	"fmt"
	"sort"

	"chiron/internal/accuracy"
)

// Artifact identifies one table or figure of the paper's evaluation.
type Artifact string

// The reproduced artifacts.
const (
	Fig3  Artifact = "fig3"  // Chiron convergence, MNIST, 5 nodes
	Fig4  Artifact = "fig4"  // accuracy/rounds/time-eff vs budget, MNIST, 5 nodes
	Fig5  Artifact = "fig5"  // same panels, Fashion-MNIST
	Fig6  Artifact = "fig6"  // same panels, CIFAR-10
	Fig7a Artifact = "fig7a" // Chiron convergence, 100 nodes
	Fig7b Artifact = "fig7b" // DRL-based convergence, 100 nodes
	Tab1  Artifact = "tab1"  // Chiron at 100 nodes across budgets
)

// Artifacts lists every reproduced artifact in paper order.
func Artifacts() []Artifact {
	return []Artifact{Fig3, Fig4, Fig5, Fig6, Fig7a, Fig7b, Tab1}
}

// Describe returns a one-line description of an artifact.
func Describe(a Artifact) string {
	switch a {
	case Fig3:
		return "Fig. 3: Chiron episode-reward convergence (MNIST, 5 nodes, η=300)"
	case Fig4:
		return "Fig. 4: accuracy / rounds / time efficiency vs budget (MNIST, 5 nodes)"
	case Fig5:
		return "Fig. 5: accuracy / rounds / time efficiency vs budget (Fashion-MNIST, 5 nodes)"
	case Fig6:
		return "Fig. 6: accuracy / rounds / time efficiency vs budget (CIFAR-10, 5 nodes)"
	case Fig7a:
		return "Fig. 7(a): Chiron exterior-agent convergence (MNIST, 100 nodes, η=300)"
	case Fig7b:
		return "Fig. 7(b): DRL-based convergence failure (MNIST, 100 nodes, η=300)"
	case Tab1:
		return "Table I: Chiron under MNIST with 100 edge nodes across budgets"
	default:
		return fmt.Sprintf("unknown artifact %q", a)
	}
}

// ComparisonDefaults returns the full-scale parameters for a comparison
// artifact (fig4, fig5, fig6, tab1).
func ComparisonDefaults(a Artifact) (ComparisonParams, error) {
	threeWay := []MechanismKind{KindChiron, KindDRLBased, KindGreedy}
	switch a {
	case Fig4:
		return ComparisonParams{
			Preset: accuracy.PresetMNIST, Nodes: 5,
			Budgets:    []float64{100, 200, 300, 400, 500},
			Mechanisms: threeWay, TrainEpisodes: 500, EvalEpisodes: 5, Seed: 7,
		}, nil
	case Fig5:
		return ComparisonParams{
			Preset: accuracy.PresetFashion, Nodes: 5,
			Budgets:    []float64{100, 200, 300, 400, 500},
			Mechanisms: threeWay, TrainEpisodes: 500, EvalEpisodes: 5, Seed: 7,
		}, nil
	case Fig6:
		// CIFAR-10 converges more slowly, so the paper uses larger budgets.
		return ComparisonParams{
			Preset: accuracy.PresetCIFAR, Nodes: 5,
			Budgets:    []float64{200, 400, 600, 800, 1000},
			Mechanisms: threeWay, TrainEpisodes: 500, EvalEpisodes: 5, Seed: 7,
		}, nil
	case Tab1:
		return ComparisonParams{
			Preset: accuracy.PresetMNISTLarge, Nodes: 100,
			Budgets:    []float64{140, 220, 300, 380},
			Mechanisms: []MechanismKind{KindChiron}, TrainEpisodes: 500, EvalEpisodes: 3, Seed: 7,
			TimeWeight: 0.075,
		}, nil
	default:
		return ComparisonParams{}, fmt.Errorf("experiment: %q is not a comparison artifact", a)
	}
}

// ConvergenceDefaults returns the full-scale parameters for a convergence
// artifact (fig3, fig7a, fig7b).
func ConvergenceDefaults(a Artifact) (ConvergenceParams, error) {
	switch a {
	case Fig3:
		return ConvergenceParams{
			Preset: accuracy.PresetMNIST, Nodes: 5, Budget: 300,
			Mechanism: KindChiron, Episodes: 500, Window: 20, Seed: 7,
		}, nil
	case Fig7a:
		return ConvergenceParams{
			Preset: accuracy.PresetMNISTLarge, Nodes: 100, Budget: 300,
			Mechanism: KindChiron, Episodes: 500, Window: 20, Seed: 7,
			TimeWeight: 0.075,
		}, nil
	case Fig7b:
		return ConvergenceParams{
			Preset: accuracy.PresetMNISTLarge, Nodes: 100, Budget: 300,
			Mechanism: KindDRLBased, Episodes: 500, Window: 20, Seed: 7,
			TimeWeight: 0.075,
		}, nil
	default:
		return ConvergenceParams{}, fmt.Errorf("experiment: %q is not a convergence artifact", a)
	}
}

// IsComparison reports whether the artifact is a budget-sweep comparison.
func IsComparison(a Artifact) bool {
	switch a {
	case Fig4, Fig5, Fig6, Tab1:
		return true
	default:
		return false
	}
}

// Run executes an artifact serially at the given scale (1.0 = full paper
// scale) and returns a rendered text report.
func Run(a Artifact, scale float64) (string, error) {
	return RunJobs(a, scale, 1)
}

// RunJobs is Run with a worker bound for the artifact's job plan (1 =
// serial, 0 = GOMAXPROCS). It is the single entry point used by the CLI
// and the benchmark harness; it also resolves ablation artifacts. Reports
// are byte-identical at any worker count.
func RunJobs(a Artifact, scale float64, jobs int) (string, error) {
	if scale <= 0 || scale > 1 {
		return "", fmt.Errorf("experiment: scale %v outside (0,1]", scale)
	}
	if IsExtra(a) {
		return RunExtraJobs(a, scale, jobs)
	}
	if IsComparison(a) {
		params, err := ComparisonDefaults(a)
		if err != nil {
			return "", err
		}
		params.Jobs = jobs
		cmp, err := RunComparison(params.Scale(scale))
		if err != nil {
			return "", err
		}
		return RenderComparison(a, cmp), nil
	}
	params, err := ConvergenceDefaults(a)
	if err != nil {
		return "", err
	}
	params.Jobs = jobs
	conv, err := RunConvergence(params.Scale(scale))
	if err != nil {
		return "", err
	}
	return RenderConvergence(a, conv), nil
}

// sortedNames returns the mechanism names of a point in deterministic
// (Chiron-first, then alphabetical) order.
func sortedNames(p BudgetPoint) []string {
	names := make([]string, 0, len(p.Results))
	for name := range p.Results {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i] == "Chiron" {
			return true
		}
		if names[j] == "Chiron" {
			return false
		}
		return names[i] < names[j]
	})
	return names
}
