package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderComparison formats a budget sweep as the rows the paper's figure
// or table reports: one block per budget, one line per mechanism.
func RenderComparison(a Artifact, c *Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", Describe(a))
	fmt.Fprintf(&b, "%-8s %-18s %10s %8s %10s %12s %10s\n",
		"budget", "mechanism", "accuracy", "rounds", "time-eff", "utility", "spent")
	for _, point := range c.Points {
		for _, name := range sortedNames(point) {
			r := point.Results[name]
			fmt.Fprintf(&b, "%-8.0f %-18s %10.3f %8d %10.1f%% %12.1f %10.1f\n",
				point.Budget, name, r.FinalAccuracy, r.Rounds, 100*r.TimeEfficiency, r.ServerUtility, r.BudgetSpent)
		}
	}
	return b.String()
}

// RenderConvergence formats a learning curve, sampling the smoothed reward
// at regular intervals so the trend is visible in a terminal.
func RenderConvergence(a Artifact, c *Convergence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", Describe(a))
	fmt.Fprintf(&b, "%-10s %14s %10s %8s %10s\n", "episode", "reward(avg)", "accuracy", "rounds", "time-eff")
	n := len(c.Episodes)
	step := n / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		r := c.Episodes[i]
		fmt.Fprintf(&b, "%-10d %14.1f %10.3f %8d %10.1f%%\n",
			r.Episode, c.SmoothedReward[i], r.FinalAccuracy, r.Rounds, 100*r.TimeEfficiency)
	}
	last := c.Episodes[n-1]
	fmt.Fprintf(&b, "%-10s %14.1f %10.3f %8d %10.1f%%\n",
		"final", c.SmoothedReward[n-1], last.FinalAccuracy, last.Rounds, 100*last.TimeEfficiency)
	return b.String()
}

// WriteComparisonCSV emits the sweep as CSV for external plotting.
func WriteComparisonCSV(w io.Writer, c *Comparison) error {
	cw := csv.NewWriter(w)
	header := []string{"budget", "mechanism", "accuracy", "rounds", "time_efficiency", "server_utility", "budget_spent", "total_time"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: csv header: %w", err)
	}
	for _, point := range c.Points {
		for _, name := range sortedNames(point) {
			r := point.Results[name]
			rec := []string{
				strconv.FormatFloat(point.Budget, 'f', -1, 64),
				name,
				strconv.FormatFloat(r.FinalAccuracy, 'f', 4, 64),
				strconv.Itoa(r.Rounds),
				strconv.FormatFloat(r.TimeEfficiency, 'f', 4, 64),
				strconv.FormatFloat(r.ServerUtility, 'f', 2, 64),
				strconv.FormatFloat(r.BudgetSpent, 'f', 2, 64),
				strconv.FormatFloat(r.TotalTime, 'f', 1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiment: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteConvergenceCSV emits the learning curve as CSV for external plotting.
func WriteConvergenceCSV(w io.Writer, c *Convergence) error {
	cw := csv.NewWriter(w)
	header := []string{"episode", "exterior_return", "discounted_return", "smoothed_return", "inner_return", "accuracy", "rounds", "time_efficiency"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: csv header: %w", err)
	}
	for i, r := range c.Episodes {
		rec := []string{
			strconv.Itoa(r.Episode),
			strconv.FormatFloat(r.ExteriorReturn, 'f', 2, 64),
			strconv.FormatFloat(r.DiscountedReturn, 'f', 2, 64),
			strconv.FormatFloat(c.SmoothedReward[i], 'f', 2, 64),
			strconv.FormatFloat(r.InnerReturn, 'f', 2, 64),
			strconv.FormatFloat(r.FinalAccuracy, 'f', 4, 64),
			strconv.Itoa(r.Rounds),
			strconv.FormatFloat(r.TimeEfficiency, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
