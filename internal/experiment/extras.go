package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"chiron/internal/accuracy"
	"chiron/internal/core"
	"chiron/internal/dataset"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/fl"
	"chiron/internal/mechanism"
	"chiron/internal/nn"
)

// Extra ablation studies beyond the paper's artifacts, runnable through
// the same CLI. Each probes one design choice documented in DESIGN.md.
const (
	AblLambda Artifact = "abl-lambda" // preference coefficient λ sweep
	AblReward Artifact = "abl-reward" // Eqn. 9 vs literal Eqn. 14 time weighting
	AblRobust Artifact = "abl-robust" // frozen policy under bandwidth jitter / node churn
	AblNonIID Artifact = "abl-noniid" // real FedAvg training, IID vs Dirichlet splits
	AblFaults Artifact = "abl-faults" // frozen policy under escalating injected faults
)

// ExtraArtifacts lists the ablation studies.
func ExtraArtifacts() []Artifact {
	return []Artifact{AblLambda, AblReward, AblRobust, AblNonIID, AblFaults}
}

// IsExtra reports whether the artifact is an ablation study rather than a
// paper figure/table.
func IsExtra(a Artifact) bool {
	switch a {
	case AblLambda, AblReward, AblRobust, AblNonIID, AblFaults:
		return true
	default:
		return false
	}
}

// DescribeExtra returns a one-line description of an ablation artifact.
func DescribeExtra(a Artifact) string {
	switch a {
	case AblLambda:
		return "Ablation: preference coefficient λ sweep (accuracy-vs-time trade-off)"
	case AblReward:
		return "Ablation: Eqn. 9-consistent vs literal Eqn. 14 exterior reward"
	case AblRobust:
		return "Ablation: trained policy under bandwidth jitter and node churn"
	case AblNonIID:
		return "Ablation: real FedAvg training under IID vs Dirichlet non-IID splits"
	case AblFaults:
		return "Ablation: trained policy under escalating crash/straggler/drop/corruption faults"
	default:
		return fmt.Sprintf("unknown ablation %q", a)
	}
}

// RunExtra executes an ablation study serially at the given scale and
// returns a rendered report.
func RunExtra(a Artifact, scale float64) (string, error) {
	return RunExtraJobs(a, scale, 1)
}

// RunExtraJobs is RunExtra with a worker bound for the study's job plan
// (1 = serial, 0 = GOMAXPROCS). Reports are byte-identical at any setting.
func RunExtraJobs(a Artifact, scale float64, jobs int) (string, error) {
	if scale <= 0 || scale > 1 {
		return "", fmt.Errorf("experiment: scale %v outside (0,1]", scale)
	}
	switch a {
	case AblLambda:
		return runLambdaAblation(scale, jobs)
	case AblReward:
		return runRewardAblation(scale, jobs)
	case AblRobust:
		return runRobustnessAblation(scale, jobs)
	case AblNonIID:
		return runNonIIDAblation(scale, jobs)
	case AblFaults:
		return runFaultSweep(scale, jobs)
	default:
		return "", fmt.Errorf("experiment: unknown ablation %q", a)
	}
}

// chironEvalRow builds and trains a Chiron agent on env through the shared
// mechanism.TrainAndEvaluate path and condenses its evaluation to one table
// row.
func chironEvalRow(env *edgeenv.Env, seed int64, scale float64, evalEpisodes int) (evalResult, error) {
	ch, err := core.New(env, TunedChironConfig(seed))
	if err != nil {
		return evalResult{}, err
	}
	summary, err := mechanism.TrainAndEvaluate(ch, ScaleCount(500, scale), evalEpisodes)
	if err != nil {
		return evalResult{}, err
	}
	return evalResult{
		Accuracy:       summary.FinalAccuracy,
		Rounds:         summary.Rounds,
		TimeEfficiency: summary.TimeEfficiency,
		Utility:        summary.ServerUtility,
	}, nil
}

// evalResult is the condensed row every ablation table reports.
type evalResult struct {
	Accuracy       float64
	Rounds         int
	TimeEfficiency float64
	Utility        float64
}

func renderRows(title string, header string, rows []string) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintln(&b, header)
	for _, r := range rows {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

// runLambdaAblation sweeps the preference coefficient λ: larger λ should
// push the learned policy toward more rounds and higher final accuracy at
// the cost of total time. One job per λ.
func runLambdaAblation(scale float64, jobs int) (string, error) {
	lambdas := []float64{500, 2000, 8000}
	plan := Plan[evalResult]{Name: "abl-lambda", Workers: jobs}
	for _, lambda := range lambdas {
		plan.Jobs = append(plan.Jobs, Job[evalResult]{
			Label: fmt.Sprintf("Chiron λ=%v seed=7", lambda),
			Run: func() (evalResult, error) {
				env, err := BuildEnv(Setup{Preset: accuracy.PresetMNIST, Nodes: 5, Budget: 300, Seed: 7, Lambda: lambda})
				if err != nil {
					return evalResult{}, err
				}
				return chironEvalRow(env, 7, scale, 3)
			},
		})
	}
	results, err := plan.Execute()
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(lambdas))
	for i, lambda := range lambdas {
		res := results[i]
		rows = append(rows, fmt.Sprintf("%-8.0f %10.3f %8d %10.1f%% %12.1f",
			lambda, res.Accuracy, res.Rounds, 100*res.TimeEfficiency, res.Utility))
	}
	return renderRows(
		DescribeExtra(AblLambda),
		fmt.Sprintf("%-8s %10s %8s %10s %12s", "lambda", "accuracy", "rounds", "time-eff", "utility"),
		rows), nil
}

// runRewardAblation compares the exterior time weighting: the calibrated
// Eqn. 9-consistent default, the raw w=1, and the literal Eqn. 14 (w=λ).
// One job per weighting.
func runRewardAblation(scale float64, jobs int) (string, error) {
	weights := []struct {
		name string
		w    float64
	}{
		{"calibrated (0.3)", 0.3},
		{"unit (1.0)", 1.0},
		{"eqn14 literal (λ)", 2000},
	}
	plan := Plan[evalResult]{Name: "abl-reward", Workers: jobs}
	for _, tw := range weights {
		plan.Jobs = append(plan.Jobs, Job[evalResult]{
			Label: fmt.Sprintf("Chiron w=%v seed=7", tw.w),
			Run: func() (evalResult, error) {
				env, err := BuildEnv(Setup{Preset: accuracy.PresetMNIST, Nodes: 5, Budget: 300, Seed: 7, TimeWeight: tw.w})
				if err != nil {
					return evalResult{}, err
				}
				return chironEvalRow(env, 7, scale, 3)
			},
		})
	}
	results, err := plan.Execute()
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(weights))
	for i, tw := range weights {
		res := results[i]
		rows = append(rows, fmt.Sprintf("%-20s %10.3f %8d %10.1f%%",
			tw.name, res.Accuracy, res.Rounds, 100*res.TimeEfficiency))
	}
	return renderRows(
		DescribeExtra(AblReward),
		fmt.Sprintf("%-20s %10s %8s %10s", "time weight", "accuracy", "rounds", "time-eff"),
		rows), nil
}

// trainFrozenChiron trains a Chiron agent on the clean 5-node η=300 MNIST
// environment and returns its checkpoint plus the (read-only) fleet the
// frozen-policy studies re-create their perturbed environments around.
func trainFrozenChiron(seed int64, scale float64) (*core.Checkpoint, []*device.Node, error) {
	clean, err := BuildEnv(Setup{Preset: accuracy.PresetMNIST, Nodes: 5, Budget: 300, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	ch, err := core.New(clean, TunedChironConfig(seed))
	if err != nil {
		return nil, nil, err
	}
	if _, err := ch.Train(ScaleCount(500, scale), nil); err != nil {
		return nil, nil, err
	}
	fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(5))
	if err != nil {
		return nil, nil, err
	}
	return ch.Checkpoint(), fleet, nil
}

// evalFrozenChironLockstep restores ck into one fresh agent per environment
// and evaluates every cell in lockstep — the shared tail of the
// frozen-policy studies. All cells share the frozen weights, so each
// round's decisions across every scenario are computed with one batched
// forward per policy network instead of one per cell; results are
// bit-identical to evaluating each agent sequentially (see core.EvaluateLockstep).
func evalFrozenChironLockstep(envs []*edgeenv.Env, ck *core.Checkpoint, seed int64) ([]mechanism.EpisodeResult, error) {
	agents := make([]*core.Chiron, len(envs))
	for i, env := range envs {
		agent, err := core.New(env, TunedChironConfig(seed))
		if err != nil {
			return nil, err
		}
		if err := agent.Restore(ck); err != nil {
			return nil, err
		}
		agents[i] = agent
	}
	return core.EvaluateLockstep(agents, 3)
}

// runRobustnessAblation trains once on the clean environment and evaluates
// the frozen policy under increasing churn. The scenarios are not separate
// jobs: every cell shares the frozen weights, so the lockstep evaluator
// batches all five scenarios' per-round policy forwards into single GEMM
// sweeps. Each scenario still owns its environment and churn RNG.
func runRobustnessAblation(scale float64, jobs int) (string, error) {
	_ = jobs // the lockstep evaluator IS the batching; env setup is cheap
	const seed = 7
	ck, fleet, err := trainFrozenChiron(seed, scale)
	if err != nil {
		return "", err
	}
	scenarios := []struct {
		name         string
		jitter       float64
		availability float64
	}{
		{"clean", 0, 0},
		{"jitter 10%", 0.10, 0},
		{"jitter 30%", 0.30, 0},
		{"availability 80%", 0, 0.80},
		{"jitter 30% + avail 80%", 0.30, 0.80},
	}
	envs := make([]*edgeenv.Env, 0, len(scenarios))
	for _, sc := range scenarios {
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, 5)
		if err != nil {
			return "", err
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, 300)
		cfg.CommJitter = sc.jitter
		cfg.Availability = sc.availability
		if sc.jitter > 0 || (sc.availability > 0 && sc.availability < 1) {
			cfg.Rng = rand.New(rand.NewSource(seed + 2))
		}
		env, err := edgeenv.New(cfg)
		if err != nil {
			return "", err
		}
		envs = append(envs, env)
	}
	results, err := evalFrozenChironLockstep(envs, ck, seed)
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(scenarios))
	for i, sc := range scenarios {
		res := results[i]
		rows = append(rows, fmt.Sprintf("%-26s %10.3f %8d %10.1f%%",
			sc.name, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency))
	}
	return renderRows(
		DescribeExtra(AblRobust),
		fmt.Sprintf("%-26s %10s %8s %10s", "scenario", "accuracy", "rounds", "time-eff"),
		rows), nil
}

// FleetDeadline returns the round deadline the fault experiments use: 20%
// above the slowest clean response the fleet can produce (minimum
// frequency, nominal upload), so no healthy node is ever cut but crashed
// nodes time out and ≥1.5× stragglers lose the round.
func FleetDeadline(nodes []*device.Node) float64 {
	var worst float64
	for _, n := range nodes {
		if t := n.ComputeTime(n.FreqMin) + n.CommTime; t > worst {
			worst = t
		}
	}
	return worst * 1.2
}

// runFaultSweep trains Chiron on the clean environment once, then
// evaluates the frozen policy under escalating injected fault rates — the
// degradation table for crash, straggler, upload-drop, and corruption
// failures combined with a round deadline and zero failure payment. The
// fault levels evaluate together through the lockstep evaluator (one
// batched forward per policy per round across all levels).
func runFaultSweep(scale float64, jobs int) (string, error) {
	_ = jobs // the lockstep evaluator IS the batching; env setup is cheap
	const seed = 7
	ck, fleet, err := trainFrozenChiron(seed, scale)
	if err != nil {
		return "", err
	}
	base := faults.Rates{Crash: 0.02, Straggle: 0.05, Drop: 0.05, Corrupt: 0.02}
	levels := []struct {
		name  string
		rates faults.Rates
	}{
		{"clean", faults.Rates{}},
		{"light (1x)", base},
		{"moderate (3x)", base.Scale(3)},
		{"severe (6x)", base.Scale(6)},
	}
	deadline := FleetDeadline(fleet)
	envs := make([]*edgeenv.Env, 0, len(levels))
	for _, lv := range levels {
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, 5)
		if err != nil {
			return "", err
		}
		cfg := edgeenv.DefaultConfig(fleet, acc, 300)
		if lv.rates.Any() {
			sampler, err := faults.NewSampler(lv.rates, seed+3)
			if err != nil {
				return "", err
			}
			cfg.Faults = sampler
			cfg.RoundDeadline = deadline
			cfg.MaxRetries = 2
			cfg.RetryBackoff = 1
		}
		env, err := edgeenv.New(cfg)
		if err != nil {
			return "", err
		}
		envs = append(envs, env)
	}
	results, err := evalFrozenChironLockstep(envs, ck, seed)
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(levels))
	for i, lv := range levels {
		res := results[i]
		// The ledger still holds the last evaluation episode, so its
		// per-round outcomes give a representative failure count.
		var failures int
		for _, r := range envs[i].Ledger().Rounds() {
			failures += r.Failures()
		}
		rows = append(rows, fmt.Sprintf("%-16s %10.3f %8d %10.1f%% %10d",
			lv.name, res.FinalAccuracy, res.Rounds, 100*res.TimeEfficiency, failures))
	}
	return renderRows(
		DescribeExtra(AblFaults),
		fmt.Sprintf("%-16s %10s %8s %10s %10s", "fault level", "accuracy", "rounds", "time-eff", "failures*"),
		rows) + "(*failures counted over the final evaluation episode)\n", nil
}

// runNonIIDAblation runs real FedAvg training (no surrogate) with IID and
// Dirichlet splits, reporting the measured accuracy after a fixed number
// of federated rounds per split. One job per split, each owning its own
// trainer and seeded dataset.
func runNonIIDAblation(scale float64, jobs int) (string, error) {
	rounds := ScaleCount(30, scale)
	splits := []struct {
		name string
		part dataset.Partitioner
	}{
		{"iid", dataset.IID{}},
		{"dirichlet α=0.5", dataset.Dirichlet{Alpha: 0.5}},
		{"dirichlet α=0.1", dataset.Dirichlet{Alpha: 0.1}},
		{"shards (2/node)", dataset.Shards{ShardsPerNode: 2}},
	}
	spec := dataset.SynthMNIST(1500)
	spec.Noise = 0.9
	spec.Overlap = 0.2
	spec.Jitter = 2
	plan := Plan[float64]{Name: "abl-noniid", Workers: jobs}
	for _, sp := range splits {
		plan.Jobs = append(plan.Jobs, Job[float64]{
			Label: fmt.Sprintf("FedAvg %s seed=11", sp.name),
			Run: func() (float64, error) {
				trainer, err := accuracy.NewRealTrainer(accuracy.RealTrainerConfig{
					Spec:        spec,
					Partitioner: sp.part,
					Factory: func(rng *rand.Rand) (*nn.Network, error) {
						return nn.NewClassifierMLP(rng, spec.Dim(), 32, spec.Classes)
					},
					Train:        fl.DefaultConfig(),
					NumNodes:     5,
					TestFraction: 0.2,
					Seed:         11,
				})
				if err != nil {
					return 0, err
				}
				participants := []int{0, 1, 2, 3, 4}
				var acc float64
				for k := 0; k < rounds; k++ {
					if acc, err = trainer.Advance(participants); err != nil {
						return 0, err
					}
				}
				return acc, nil
			},
		})
	}
	results, err := plan.Execute()
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(splits))
	for i, sp := range splits {
		rows = append(rows, fmt.Sprintf("%-18s %10.3f", sp.name, results[i]))
	}
	return renderRows(
		fmt.Sprintf("%s (%d real FedAvg rounds each)", DescribeExtra(AblNonIID), rounds),
		fmt.Sprintf("%-18s %10s", "split", "accuracy"),
		rows), nil
}
