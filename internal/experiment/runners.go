package experiment

import (
	"fmt"

	"chiron/internal/accuracy"
	"chiron/internal/mechanism"
)

// ComparisonParams configures a Fig. 4/5/6-style budget sweep comparing
// mechanisms on one dataset.
type ComparisonParams struct {
	// Preset selects the dataset.
	Preset accuracy.Preset
	// Nodes is the fleet size.
	Nodes int
	// Budgets is the η sweep (the figure's x axis).
	Budgets []float64
	// Mechanisms lists the mechanisms to compare.
	Mechanisms []MechanismKind
	// TrainEpisodes is E per (mechanism, budget) pair (paper: 500).
	TrainEpisodes int
	// EvalEpisodes averages the deterministic evaluation.
	EvalEpisodes int
	// Seed drives everything.
	Seed int64
	// TimeWeight overrides the environment's exterior time weighting
	// (0 = calibrated default).
	TimeWeight float64
	// Jobs bounds concurrent grid cells (1 = serial, 0 = GOMAXPROCS).
	// Output is byte-identical at any setting.
	Jobs int
}

// Validate reports whether the parameters are usable.
func (p ComparisonParams) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("experiment: comparison nodes %d", p.Nodes)
	case len(p.Budgets) == 0:
		return fmt.Errorf("experiment: comparison has no budgets")
	case len(p.Mechanisms) == 0:
		return fmt.Errorf("experiment: comparison has no mechanisms")
	case p.TrainEpisodes < 0 || p.EvalEpisodes <= 0:
		return fmt.Errorf("experiment: comparison episodes train=%d eval=%d", p.TrainEpisodes, p.EvalEpisodes)
	}
	return nil
}

// Scale returns a copy with episode counts multiplied by f (minimum 1),
// letting benchmarks run reduced versions of the full experiment.
func (p ComparisonParams) Scale(f float64) ComparisonParams {
	scaled := p
	scaled.TrainEpisodes = ScaleCount(p.TrainEpisodes, f)
	scaled.EvalEpisodes = ScaleCount(p.EvalEpisodes, f)
	return scaled
}

// ScaleCount multiplies an episode count by f, clamping nonzero counts to a
// minimum of 1 — the shared scaling rule every parameter set (and the
// scenario compiler) applies so reduced runs still train and evaluate.
func ScaleCount(n int, f float64) int {
	if n == 0 {
		return 0
	}
	s := int(float64(n) * f)
	if s < 1 {
		s = 1
	}
	return s
}

// BudgetPoint holds one budget's evaluation for every mechanism.
type BudgetPoint struct {
	Budget  float64
	Results map[string]mechanism.EpisodeResult
}

// Comparison is the output of a budget sweep — the data behind one of the
// paper's three-panel figures (accuracy, rounds, time efficiency vs η).
type Comparison struct {
	Params ComparisonParams
	Points []BudgetPoint
}

// comparisonJob builds the self-contained job for one (budget, mechanism)
// grid cell. Everything stochastic inside the closure is re-seeded from the
// sweep seed, so cells are independent and can run on any worker.
func comparisonJob(p ComparisonParams, budget float64, kind MechanismKind) Job[mechanism.EpisodeResult] {
	return Job[mechanism.EpisodeResult]{
		Label: fmt.Sprintf("%s η=%v seed=%d", kind, budget, p.Seed),
		Run: func() (mechanism.EpisodeResult, error) {
			env, err := BuildEnv(Setup{Preset: p.Preset, Nodes: p.Nodes, Budget: budget, Seed: p.Seed, TimeWeight: p.TimeWeight})
			if err != nil {
				return mechanism.EpisodeResult{}, err
			}
			m, err := BuildMechanism(kind, env, p.Seed)
			if err != nil {
				return mechanism.EpisodeResult{}, err
			}
			return mechanism.TrainAndEvaluate(m, p.TrainEpisodes, p.EvalEpisodes)
		},
	}
}

// RunComparison executes the sweep as a plan of independent jobs, one per
// (budget, mechanism) cell: each is trained from scratch on its own
// environment copy (same fleet seed, so all mechanisms face identical node
// populations) and then evaluated. p.Jobs cells run concurrently; the
// result is byte-identical at any worker count.
func RunComparison(p ComparisonParams) (*Comparison, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]Job[mechanism.EpisodeResult], 0, len(p.Budgets)*len(p.Mechanisms))
	for _, budget := range p.Budgets {
		for _, kind := range p.Mechanisms {
			jobs = append(jobs, comparisonJob(p, budget, kind))
		}
	}
	results, err := Plan[mechanism.EpisodeResult]{Name: "comparison", Jobs: jobs, Workers: p.Jobs}.Execute()
	if err != nil {
		return nil, err
	}
	out := &Comparison{Params: p}
	i := 0
	for _, budget := range p.Budgets {
		point := BudgetPoint{Budget: budget, Results: make(map[string]mechanism.EpisodeResult, len(p.Mechanisms))}
		for _, kind := range p.Mechanisms {
			point.Results[kind.String()] = results[i]
			i++
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}

// ConvergenceParams configures a Fig. 3/7-style learning-curve run.
type ConvergenceParams struct {
	// Preset selects the dataset.
	Preset accuracy.Preset
	// Nodes is the fleet size.
	Nodes int
	// Budget is η.
	Budget float64
	// Mechanism selects the learner whose curve is recorded.
	Mechanism MechanismKind
	// Episodes is the training length (paper: 500).
	Episodes int
	// Window smooths the reported reward with a trailing moving average.
	Window int
	// Seed drives everything.
	Seed int64
	// TimeWeight overrides the environment's exterior time weighting
	// (0 = calibrated default).
	TimeWeight float64
	// Jobs bounds concurrent plan jobs (1 = serial, 0 = GOMAXPROCS). A
	// single convergence run is one job, so this only matters when the run
	// is embedded in a larger plan.
	Jobs int
}

// Validate reports whether the parameters are usable.
func (p ConvergenceParams) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("experiment: convergence nodes %d", p.Nodes)
	case p.Budget <= 0:
		return fmt.Errorf("experiment: convergence budget %v", p.Budget)
	case p.Episodes <= 0:
		return fmt.Errorf("experiment: convergence episodes %d", p.Episodes)
	case p.Window <= 0:
		return fmt.Errorf("experiment: convergence window %d", p.Window)
	}
	return nil
}

// Scale returns a copy with the episode count multiplied by f (minimum 1).
func (p ConvergenceParams) Scale(f float64) ConvergenceParams {
	scaled := p
	scaled.Episodes = ScaleCount(p.Episodes, f)
	return scaled
}

// Convergence is a learning curve: one entry per training episode.
type Convergence struct {
	Params   ConvergenceParams
	Episodes []mechanism.EpisodeResult
	// SmoothedReward is the Window-episode trailing mean of the episode
	// exterior return Σ_k r^E_k, the series plotted in Figs. 3 and 7.
	SmoothedReward []float64
}

// RunConvergence trains the mechanism and records its per-episode results.
// The run is a one-job plan so it shares the scheduler's error-attribution
// path with the sweeps.
func RunConvergence(p ConvergenceParams) (*Convergence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	job := Job[[]mechanism.EpisodeResult]{
		Label: fmt.Sprintf("%s η=%v seed=%d", p.Mechanism, p.Budget, p.Seed),
		Run: func() ([]mechanism.EpisodeResult, error) {
			env, err := BuildEnv(Setup{Preset: p.Preset, Nodes: p.Nodes, Budget: p.Budget, Seed: p.Seed, TimeWeight: p.TimeWeight})
			if err != nil {
				return nil, err
			}
			m, err := BuildMechanism(p.Mechanism, env, p.Seed)
			if err != nil {
				return nil, err
			}
			t, ok := m.(mechanism.Trainable)
			if !ok {
				return nil, fmt.Errorf("mechanism %s is not trainable", m.Name())
			}
			return t.Train(p.Episodes, nil)
		},
	}
	curves, err := Plan[[]mechanism.EpisodeResult]{Name: "convergence", Jobs: []Job[[]mechanism.EpisodeResult]{job}, Workers: p.Jobs}.Execute()
	if err != nil {
		return nil, err
	}
	out := &Convergence{Params: p, Episodes: curves[0]}
	out.SmoothedReward = smooth(extReturns(curves[0]), p.Window)
	return out, nil
}

func extReturns(results []mechanism.EpisodeResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.ExteriorReturn
	}
	return out
}

// smooth computes a trailing moving average with the given window.
func smooth(series []float64, window int) []float64 {
	out := make([]float64, len(series))
	var sum float64
	for i, v := range series {
		sum += v
		if i >= window {
			sum -= series[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}
