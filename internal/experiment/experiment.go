// Package experiment contains the harness that regenerates every table and
// figure of the paper's evaluation (Sec. VI): environment builders wired to
// the paper's constants, comparison sweeps across budgets for the three
// mechanisms, convergence (learning-curve) runs, and text/CSV emitters.
//
// Each experiment is registered under the paper artifact it reproduces
// (fig3 … fig7, tab1) and accepts a Scale factor so tests and benchmarks
// can run reduced versions of the same code path.
package experiment

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
)

// Setup describes one experiment environment: a dataset preset, fleet size,
// and budget.
type Setup struct {
	// Preset selects the calibrated accuracy curve (dataset).
	Preset accuracy.Preset
	// Nodes is the fleet size N.
	Nodes int
	// Budget is η.
	Budget float64
	// Seed drives fleet generation and all agent stochasticity.
	Seed int64
	// Lambda is λ (0 means the paper default 2000).
	Lambda float64
	// TimeWeight overrides the exterior reward's time weighting (0 keeps
	// the calibrated default). The large-scale (N=100) experiments use a
	// smaller weight so the dimensionless utility balances the way
	// Table I's budget-limited round counts imply; see DESIGN.md.
	TimeWeight float64
}

// BuildEnv constructs the edge-learning environment for a setup, using the
// paper's Sec. VI-A device constants.
func BuildEnv(s Setup) (*edgeenv.Env, error) {
	if s.Nodes <= 0 {
		return nil, fmt.Errorf("experiment: nodes %d, want > 0", s.Nodes)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	nodes, err := device.NewFleet(rng, device.DefaultFleetSpec(s.Nodes))
	if err != nil {
		return nil, fmt.Errorf("experiment: fleet: %w", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(s.Seed+1)), s.Preset, s.Nodes)
	if err != nil {
		return nil, fmt.Errorf("experiment: accuracy: %w", err)
	}
	cfg := edgeenv.DefaultConfig(nodes, acc, s.Budget)
	if s.Lambda > 0 {
		cfg.Lambda = s.Lambda
	}
	if s.TimeWeight > 0 {
		cfg.TimeWeight = s.TimeWeight
	}
	env, err := edgeenv.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: env: %w", err)
	}
	return env, nil
}

// TunedChironConfig returns the Chiron hyperparameters used throughout the
// evaluation: core.DefaultConfig (which already carries the reproduction's
// documented conditioning adjustments) with the experiment's seed.
func TunedChironConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// MechanismKind identifies a mechanism in comparison sweeps.
type MechanismKind int

// The mechanisms of Sec. VI plus the ablation references.
const (
	KindChiron MechanismKind = iota + 1
	KindDRLBased
	KindGreedy
	KindUniform
	KindEqualTimeOracle
)

// String implements fmt.Stringer.
func (k MechanismKind) String() string {
	switch k {
	case KindChiron:
		return "Chiron"
	case KindDRLBased:
		return "DRL-based"
	case KindGreedy:
		return "Greedy"
	case KindUniform:
		return "Uniform"
	case KindEqualTimeOracle:
		return "EqualTime-Oracle"
	default:
		return fmt.Sprintf("mechanism(%d)", int(k))
	}
}

// BuildMechanism constructs a mechanism of the given kind bound to env.
func BuildMechanism(kind MechanismKind, env *edgeenv.Env, seed int64) (mechanism.Mechanism, error) {
	switch kind {
	case KindChiron:
		return core.New(env, TunedChironConfig(seed))
	case KindDRLBased:
		cfg := baselines.DefaultDRLBasedConfig()
		cfg.Seed = seed
		cfg.PPO.CriticLR = 3e-4
		return baselines.NewDRLBased(env, cfg)
	case KindGreedy:
		cfg := baselines.DefaultGreedyConfig()
		cfg.Seed = seed
		return baselines.NewGreedy(env, cfg)
	case KindUniform:
		return baselines.NewUniform(env, 0.5)
	case KindEqualTimeOracle:
		return baselines.NewEqualTime(env, baselines.MinFeasibleTime(env))
	default:
		return nil, fmt.Errorf("experiment: unknown mechanism kind %v", kind)
	}
}

// TrainAndEvaluate trains a mechanism for trainEpisodes (no-op for the
// static references) and then averages evalEpisodes deterministic episodes.
//
// Deprecated: it delegates to mechanism.TrainAndEvaluate, the consolidated
// path every runner shares; call that directly in new code.
func TrainAndEvaluate(m mechanism.Mechanism, trainEpisodes, evalEpisodes int) (mechanism.EpisodeResult, error) {
	return mechanism.TrainAndEvaluate(m, trainEpisodes, evalEpisodes)
}
