package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one independently executable grid cell of an experiment plan —
// typically "build env, build mechanism, train, evaluate" for one
// (mechanism, budget, seed) tuple. Run must be self-contained: every RNG a
// job touches is seeded inside the closure, and no state is shared across
// jobs, which is what makes parallel execution byte-identical to serial.
type Job[T any] struct {
	// Label attributes the cell in errors: mechanism kind, grid point, and
	// seed (e.g. "Chiron η=300 seed=7").
	Label string
	// Run executes the cell.
	Run func() (T, error)
}

// Plan is a named list of independent jobs plus a worker budget. Execute
// is deterministic at any worker count — the scheduler only decides *when*
// a job runs, never *what* it computes or *where* its result lands — the
// same contract mat.SetWorkers establishes for the compute kernels.
type Plan[T any] struct {
	// Name prefixes job errors ("comparison", "convergence", ...).
	Name string
	// Jobs is the grid in its canonical (serial) order.
	Jobs []Job[T]
	// Workers bounds concurrent jobs: 1 is serial, 0 means GOMAXPROCS.
	Workers int
}

// resolveWorkers maps the -jobs convention (0 = GOMAXPROCS) onto a bound
// no larger than the job count.
func resolveWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Execute runs every job and returns their results in job order. Results
// are written into a slot addressed by job index and errors are reported
// for the lowest-indexed failing job, so output and error are both
// independent of scheduling: a sweep at Workers=8 is byte-identical to
// Workers=1. All jobs run even when one fails (they are independent);
// the first error in job order is returned, wrapped with the plan name and
// the job's label.
func (p Plan[T]) Execute() ([]T, error) {
	n := len(p.Jobs)
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	if workers := resolveWorkers(p.Workers, n); workers == 1 {
		for i, job := range p.Jobs {
			results[i], errs[i] = job.Run()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = p.Jobs[i].Run()
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: %s job %d (%s): %w", p.Name, i, p.Jobs[i].Label, err)
		}
	}
	return results, nil
}
