package experiment

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"time"

	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mat"
)

// FleetBenchCase is one fleet size in a scaling sweep. Rounds shrinks as
// Nodes grows so the total node-round count — and therefore the wall
// clock — stays bounded at the million-node end.
type FleetBenchCase struct {
	Nodes  int
	Rounds int
}

// DefaultFleetBenchCases is the BENCH_fleet scaling ladder: three decades
// of fleet size at full round counts plus the million-node point at a
// reduced count.
func DefaultFleetBenchCases() []FleetBenchCase {
	return []FleetBenchCase{
		{Nodes: 1_000, Rounds: 512},
		{Nodes: 10_000, Rounds: 128},
		{Nodes: 100_000, Rounds: 32},
		{Nodes: 1_000_000, Rounds: 8},
	}
}

// FleetBenchParams configures a struct-of-arrays round-throughput sweep.
type FleetBenchParams struct {
	// Cases is the (fleet size, round count) ladder; nil selects
	// DefaultFleetBenchCases.
	Cases []FleetBenchCase
	// Seed drives fleet generation (the rounds themselves are
	// deterministic: fixed prices, no churn or fault draws).
	Seed int64
	// Workers bounds the compute worker pool during the run; 0 keeps the
	// GOMAXPROCS default.
	Workers int
}

// FleetBenchResult reports one case of the sweep.
type FleetBenchResult struct {
	Nodes          int     `json:"nodes"`
	Rounds         int     `json:"rounds"`
	Seconds        float64 `json:"seconds"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	NsPerNodeRound float64 `json:"ns_per_node_round"`
	// BytesPerNode is the measured steady-state heap growth per node:
	// fleet columns plus round-state scratch, after the warm-up round
	// sized every reusable buffer.
	BytesPerNode float64 `json:"bytes_per_node"`
	// Digest fingerprints every committed round aggregate; equal digests
	// across worker counts are the determinism check CI enforces.
	Digest string `json:"digest"`
}

// RunFleetBench drives full compact-mode rounds (Offer → Respond → Execute
// → Settle → Commit) through edgeenv at each fleet size and measures
// steady-state throughput. The fleet is drawn straight into columns
// (device.NewFleetBatch) and rounds run with CompactRounds, so nothing in
// the loop is O(N) but the batch kernels themselves; prices are fixed at
// 80% of each node's saturation price, the all-join worst case for
// per-round work.
func RunFleetBench(p FleetBenchParams) ([]FleetBenchResult, error) {
	cases := p.Cases
	if cases == nil {
		cases = DefaultFleetBenchCases()
	}
	if p.Workers != 0 {
		mat.SetWorkers(p.Workers)
		defer mat.SetWorkers(0)
	}
	results := make([]FleetBenchResult, 0, len(cases))
	for _, c := range cases {
		r, err := runFleetCase(c, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet bench n=%d: %w", c.Nodes, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func runFleetCase(c FleetBenchCase, seed int64) (FleetBenchResult, error) {
	if c.Nodes <= 0 || c.Rounds <= 0 {
		return FleetBenchResult{}, fmt.Errorf("case %+v: nodes and rounds must be positive", c)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	fleet, err := device.NewFleetBatch(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(c.Nodes))
	if err != nil {
		return FleetBenchResult{}, err
	}
	// The budget must survive every round: bound payments by the
	// saturation outlay Σ p_i(ζ_i^max)·ζ_i^max per round.
	var maxOutlay float64
	for i := 0; i < fleet.Len(); i++ {
		maxOutlay += fleet.PriceForFreq(i, fleet.FreqMax[i]) * fleet.FreqMax[i]
	}
	budget := maxOutlay*float64(c.Rounds+2) + 1
	cfg := edgeenv.DefaultFleetConfig(fleet, &linearAccuracy{step: 1e-6}, budget)
	cfg.MaxRounds = c.Rounds + 2
	env, err := edgeenv.New(cfg)
	if err != nil {
		return FleetBenchResult{}, err
	}
	if err := env.Reset(); err != nil {
		return FleetBenchResult{}, err
	}
	prices := make([]float64, c.Nodes)
	for i := range prices {
		prices[i] = fleet.PriceForFreq(i, fleet.FreqMax[i]) * 0.8
	}
	// One warm-up round sizes the reusable State scratch, so the timed
	// region and the memory measurement both see the steady state.
	if _, err := env.Step(prices); err != nil {
		return FleetBenchResult{}, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	heapPerNode := float64(after.HeapAlloc-before.HeapAlloc) / float64(c.Nodes)

	digest := fnv.New64a()
	start := time.Now()
	for k := 0; k < c.Rounds; k++ {
		res, err := env.Step(prices)
		if err != nil {
			return FleetBenchResult{}, err
		}
		if res.Done {
			return FleetBenchResult{}, fmt.Errorf("episode ended early at round %d", k)
		}
		for _, v := range []float64{
			res.Round.Payment, res.Round.MaxTime, res.Round.SumTime,
			float64(res.Round.Participants), float64(res.Round.Completed),
		} {
			var buf [8]byte
			bits := math.Float64bits(v)
			for b := 0; b < 8; b++ {
				buf[b] = byte(bits >> (8 * b))
			}
			digest.Write(buf[:])
		}
	}
	elapsed := time.Since(start).Seconds()
	return FleetBenchResult{
		Nodes:          c.Nodes,
		Rounds:         c.Rounds,
		Seconds:        elapsed,
		RoundsPerSec:   float64(c.Rounds) / elapsed,
		NsPerNodeRound: elapsed * 1e9 / float64(c.Rounds) / float64(c.Nodes),
		BytesPerNode:   heapPerNode,
		Digest:         fmt.Sprintf("%016x", digest.Sum64()),
	}, nil
}

// linearAccuracy is the cheapest possible accuracy.Model: a fixed-slope
// ramp that never allocates, keeping the benchmark's hot loop free of
// model noise.
type linearAccuracy struct{ acc, step float64 }

func (m *linearAccuracy) Reset() (float64, error) {
	m.acc = 0
	return 0, nil
}

func (m *linearAccuracy) Advance(participants []int) (float64, error) {
	m.acc += m.step
	return m.acc, nil
}

func (m *linearAccuracy) Accuracy() float64 { return m.acc }
