package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chiron/internal/rl"
)

func TestLoadCheckpointTruncated(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := ch.SaveCheckpoint(path); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	torn := filepath.Join(t.TempDir(), "torn.json")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	env2 := testEnv(t, 2, 100)
	fresh := newTestChiron(t, env2)
	before, err := fresh.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if err := fresh.LoadCheckpoint(torn); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err %v, want ErrCorruptCheckpoint", err)
	}
	// The failed load must leave the agent usable with its prior weights.
	after, err := fresh.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode after failed load: %v", err)
	}
	if after.Rounds != before.Rounds {
		t.Fatalf("failed load changed agent behavior: %d vs %d rounds", after.Rounds, before.Rounds)
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := ch.LoadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err %v, want ErrCorruptCheckpoint", err)
	}
}

func TestRestoreRejectsMissingSnapshots(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	ck := ch.Checkpoint()

	missingInner := *ck
	missingInner.Agents = []rl.AgentState{*ck.Agent("exterior")}
	if err := ch.Restore(&missingInner); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("missing inner: err %v, want ErrCorruptCheckpoint", err)
	}
	missingExterior := *ck
	missingExterior.Agents = []rl.AgentState{*ck.Agent("inner")}
	if err := ch.Restore(&missingExterior); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("missing exterior: err %v, want ErrCorruptCheckpoint", err)
	}
	nilSnapshot := *ck
	nilSnapshot.Agents = []rl.AgentState{{Name: "exterior"}, {Name: "inner"}}
	if err := ch.Restore(&nilSnapshot); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("nil snapshots: err %v, want ErrCorruptCheckpoint", err)
	}
	// Structurally empty JSON ({}): parses fine but has no snapshots.
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := ch.LoadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("empty object: err %v, want ErrCorruptCheckpoint", err)
	}
	// A shape mismatch stays a distinct failure, not corruption.
	env2 := testEnv(t, 3, 100)
	other := newTestChiron(t, env2)
	if err := other.Restore(ck); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("shape mismatch: err %v, want a non-corruption error", err)
	}
}
