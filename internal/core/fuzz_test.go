package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
)

// fuzzEnv mirrors testEnv for fuzz setup, where no *testing.T exists yet.
func fuzzEnv() (*edgeenv.Env, error) {
	fleet, err := device.NewFleet(rand.New(rand.NewSource(7)), device.DefaultFleetSpec(3))
	if err != nil {
		return nil, err
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, 3)
	if err != nil {
		return nil, err
	}
	return edgeenv.New(edgeenv.DefaultConfig(fleet, acc, 40))
}

// FuzzCheckpointLoad feeds arbitrary bytes to the checkpoint loader. The
// loader must never panic, must reject structurally incomplete state with
// an error instead of restoring it, and after a successful load the agent
// must still be able to produce a valid checkpoint of its own.
func FuzzCheckpointLoad(f *testing.F) {
	dir, err := os.MkdirTemp("", "fuzz-checkpoint")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	env, err := fuzzEnv()
	if err != nil {
		f.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Exterior.Hidden = []int{8}
	cfg.Inner.Hidden = []int{8}
	ch, err := New(env, cfg)
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a genuine checkpoint, a torn tail, and structural damage.
	valid := filepath.Join(dir, "valid.json")
	if err := ch.SaveCheckpoint(valid); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"exterior":null,"inner":null,"episode":3}`))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ch.LoadCheckpoint(path); err != nil {
			return // rejected: the only other promise is "no panic"
		}
		// A load that claims success must leave a re-checkpointable agent.
		ck := ch.Checkpoint()
		ext, inn := ck.Agent("exterior"), ck.Agent("inner")
		if ext == nil || ext.Snapshot == nil || inn == nil || inn.Snapshot == nil {
			t.Fatalf("successful load left a hollow agent: %+v", ck)
		}
		if ck.Nodes != env.NumNodes() || ck.StateDim != ch.obs.Dim() {
			t.Fatalf("successful load changed the pinned shape: %+v", ck)
		}
	})
}
