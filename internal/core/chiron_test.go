package core

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
)

func testEnv(t *testing.T, nodes int, budget float64) *edgeenv.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	env, err := edgeenv.New(edgeenv.DefaultConfig(fleet, acc, budget))
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

func newTestChiron(t *testing.T, env *edgeenv.Env) *Chiron {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 5
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ch
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := DefaultConfig()
	bad.TotalPriceFloor = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted floor 1")
	}
	bad = DefaultConfig()
	bad.ExteriorRewardScale = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero reward scale")
	}
	bad = DefaultConfig()
	bad.Exterior.Gamma = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted bad exterior PPO config")
	}
}

func TestAgentDimensions(t *testing.T) {
	env := testEnv(t, 4, 200)
	ch := newTestChiron(t, env)
	if ch.Exterior().Policy().ActionDim() != 1 {
		t.Fatalf("exterior action dim %d, want 1", ch.Exterior().Policy().ActionDim())
	}
	if ch.Inner().Policy().ActionDim() != 4 {
		t.Fatalf("inner action dim %d, want N=4", ch.Inner().Policy().ActionDim())
	}
}

func TestPricingRespectsEqn13(t *testing.T) {
	env := testEnv(t, 3, 200)
	ch := newTestChiron(t, env)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	d, err := ch.decide(ch.obs.State(), false)
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	// Per-node prices must sum to the exterior total (Σpr = 1).
	var sum float64
	for _, p := range d.prices {
		if p < 0 {
			t.Fatalf("negative price %v", p)
		}
		sum += p
	}
	if math.Abs(sum-d.total) > 1e-9*d.total {
		t.Fatalf("prices sum %v != total %v", sum, d.total)
	}
	// Total must respect the squash bounds.
	if d.total < ch.priceLo || d.total > ch.priceHi {
		t.Fatalf("total %v outside [%v,%v]", d.total, ch.priceLo, ch.priceHi)
	}
	// The inner state must be the normalized exterior action (hierarchy).
	if math.Abs(d.stateI[0]-d.total/ch.maxTotal) > 1e-12 {
		t.Fatalf("inner state %v != normalized total %v", d.stateI[0], d.total/ch.maxTotal)
	}
}

func TestRunEpisodeTrainPopulatesAndClearsBuffers(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	res, err := ch.RunEpisode(true)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if res.Rounds == 0 {
		t.Fatal("episode played no rounds")
	}
	if ch.Episode() != 1 {
		t.Fatalf("episode counter %d", ch.Episode())
	}
	// Buffers are consumed once MinUpdateSamples transitions accumulate;
	// keep playing training episodes until an update must have fired.
	for i := 0; i < 50 && ch.pairE.Buf.Len() > 0; i++ {
		if _, err := ch.RunEpisode(true); err != nil {
			t.Fatalf("RunEpisode: %v", err)
		}
	}
	if ch.pairE.Buf.Len() != 0 || ch.pairI.Buf.Len() != 0 {
		t.Fatalf("buffers never consumed: E=%d I=%d", ch.pairE.Buf.Len(), ch.pairI.Buf.Len())
	}
}

func TestRunEpisodeEvalDoesNotLearn(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	before := ch.Exterior().Policy().Params()[0].Value.Clone()
	if _, err := ch.RunEpisode(false); err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	after := ch.Exterior().Policy().Params()[0].Value
	for i, v := range before.Data() {
		if after.Data()[i] != v {
			t.Fatal("eval episode mutated policy parameters")
		}
	}
	if ch.pairE.Buf.Len() != 0 {
		t.Fatal("eval episode stored transitions")
	}
}

func TestEvalEpisodesDeterministic(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	a, err := ch.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	b, err := ch.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if a.Rounds != b.Rounds || math.Abs(a.BudgetSpent-b.BudgetSpent) > 1e-9 {
		t.Fatalf("deterministic episodes differ: %+v vs %+v", a, b)
	}
}

func TestTrainRejectsBadEpisodeCount(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	if _, err := ch.Train(0, nil); err == nil {
		t.Fatal("Train accepted zero episodes")
	}
}

func TestTrainInvokesCallback(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	var calls int
	results, err := ch.Train(3, func(mechanism.EpisodeResult) { calls++ })
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(results) != 3 || calls != 3 {
		t.Fatalf("results %d callbacks %d", len(results), calls)
	}
	for i, r := range results {
		if r.Episode != i+1 {
			t.Fatalf("episode numbering %d at %d", r.Episode, i)
		}
	}
}

// TestTrainingImproves is the learning smoke test: after training, the
// converged deterministic policy must clear quality bars that hold across
// seeds — a strong final model, clearly better-than-uninformed time
// consistency, a positive exterior return, and budget-respecting spend.
// (The rising learning curve itself is demonstrated by the fig3 artifact;
// its early/late shape is too seed-dependent for a unit assertion.)
func TestTrainingImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	env := testEnv(t, 5, 300)
	cfg := DefaultConfig()
	cfg.Seed = 5
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := ch.Train(250, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	res, err := ch.Evaluate(3)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("converged accuracy %v, want >= 0.9", res.FinalAccuracy)
	}
	if res.TimeEfficiency < 0.7 {
		t.Fatalf("converged time efficiency %v, want >= 0.7", res.TimeEfficiency)
	}
	if res.ExteriorReturn <= 0 {
		t.Fatalf("exterior return collapsed: %v", res.ExteriorReturn)
	}
	if res.BudgetSpent > 300+1e-6 {
		t.Fatalf("spent %v over budget", res.BudgetSpent)
	}
}

func TestEvaluateMechanismAverages(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	res, err := EvaluateMechanism(ch, 3)
	if err != nil {
		t.Fatalf("EvaluateMechanism: %v", err)
	}
	if res.Episode != 3 {
		t.Fatalf("Episode field %d, want eval count 3", res.Episode)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds %d", res.Rounds)
	}
	if _, err := EvaluateMechanism(ch, 0); err == nil {
		t.Fatal("EvaluateMechanism accepted zero episodes")
	}
}

func TestPriceVector(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices, err := ch.PriceVector()
	if err != nil {
		t.Fatalf("PriceVector: %v", err)
	}
	if len(prices) != 3 {
		t.Fatalf("price count %d", len(prices))
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	env := testEnv(t, 3, 60)
	ch := newTestChiron(t, env)
	for ep := 0; ep < 10; ep++ {
		res, err := ch.RunEpisode(true)
		if err != nil {
			t.Fatalf("RunEpisode: %v", err)
		}
		if res.BudgetSpent > 60+1e-9 {
			t.Fatalf("episode %d spent %v > budget", ep, res.BudgetSpent)
		}
	}
}
