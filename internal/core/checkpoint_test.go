package core

import (
	"math"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	if _, err := ch.Train(3, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	want, err := ch.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}

	path := filepath.Join(t.TempDir(), "agent.json")
	if err := ch.SaveCheckpoint(path); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	// A fresh agent behaves differently until restored.
	env2 := testEnv(t, 3, 100)
	fresh := newTestChiron(t, env2)
	if err := fresh.LoadCheckpoint(path); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if fresh.Episode() != ch.Episode() {
		t.Fatalf("episode counter %d, want %d", fresh.Episode(), ch.Episode())
	}
	got, err := fresh.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if got.Rounds != want.Rounds || math.Abs(got.BudgetSpent-want.BudgetSpent) > 1e-9 {
		t.Fatalf("restored agent differs: %+v vs %+v", got, want)
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	env := testEnv(t, 3, 100)
	ch := newTestChiron(t, env)
	ck := ch.Checkpoint()

	env2 := testEnv(t, 4, 100) // different fleet size
	other := newTestChiron(t, env2)
	if err := other.Restore(ck); err == nil {
		t.Fatal("restored a checkpoint across incompatible shapes")
	}
	if err := other.Restore(nil); err == nil {
		t.Fatal("restored a nil checkpoint")
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	env := testEnv(t, 2, 100)
	ch := newTestChiron(t, env)
	if err := ch.LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loaded a missing checkpoint")
	}
}
