package core

import (
	"fmt"

	"chiron/internal/rl"
)

// Checkpoint is the unified serializable training state shared by every
// learnable mechanism; see rl.Checkpoint for the format.
type Checkpoint = rl.Checkpoint

// ErrCorruptCheckpoint reports a checkpoint file that cannot be restored:
// truncated mid-write, invalid JSON, or structurally incomplete (missing
// either agent's snapshot). It aliases the unified rl sentinel so callers
// can errors.Is against either name.
var ErrCorruptCheckpoint = rl.ErrCorruptCheckpoint

// checkpointMechanism tags Chiron checkpoints in the unified format.
const checkpointMechanism = "chiron"

// Checkpoint captures the agent's current training state: both layers'
// snapshots and carried buffers, the episode counter, and the mechanism RNG
// position — everything needed to resume training exactly.
func (c *Chiron) Checkpoint() *Checkpoint {
	rng := c.src.State()
	return &Checkpoint{
		Mechanism: checkpointMechanism,
		Nodes:     c.env.NumNodes(),
		StateDim:  c.obs.Dim(),
		Episode:   c.drv.Episode(),
		RNG:       &rng,
		Agents:    []rl.AgentState{rl.PairState(c.pairE), rl.PairState(c.pairI)},
	}
}

// Restore overwrites the agent's training state from a checkpoint taken on
// an identically shaped system.
func (c *Chiron) Restore(ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("core: restore from nil checkpoint")
	}
	if ck.Mechanism != "" && ck.Mechanism != checkpointMechanism {
		return fmt.Errorf("%w: checkpoint for mechanism %q, want %q", rl.ErrShapeMismatch, ck.Mechanism, checkpointMechanism)
	}
	ext, inn := ck.Agent("exterior"), ck.Agent("inner")
	if ext == nil || ext.Snapshot == nil || inn == nil || inn.Snapshot == nil {
		return fmt.Errorf("%w: missing agent snapshot (exterior=%v inner=%v)",
			ErrCorruptCheckpoint, ext != nil && ext.Snapshot != nil, inn != nil && inn.Snapshot != nil)
	}
	if ck.Nodes != c.env.NumNodes() || ck.StateDim != c.obs.Dim() {
		return fmt.Errorf("%w: checkpoint for %d nodes / state dim %d, environment has %d / %d",
			rl.ErrShapeMismatch, ck.Nodes, ck.StateDim, c.env.NumNodes(), c.obs.Dim())
	}
	if err := rl.RestorePair(c.pairE, ext); err != nil {
		return fmt.Errorf("core: restore exterior: %w", err)
	}
	if err := rl.RestorePair(c.pairI, inn); err != nil {
		return fmt.Errorf("core: restore inner: %w", err)
	}
	c.drv.SetEpisode(ck.Episode)
	c.pending = nil
	if ck.RNG != nil {
		if err := c.src.Restore(*ck.RNG); err != nil {
			return fmt.Errorf("core: restore rng: %w", err)
		}
	}
	return nil
}

// SaveCheckpoint writes the agent's training state as JSON to path.
func (c *Chiron) SaveCheckpoint(path string) error {
	return rl.SaveCheckpoint(path, c.Checkpoint())
}

// LoadCheckpoint restores the agent's training state from a JSON file
// written by SaveCheckpoint. A file truncated mid-write or otherwise
// unparseable fails with an error wrapping ErrCorruptCheckpoint, and the
// agent's in-memory state is left untouched.
func (c *Chiron) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	return c.Restore(ck)
}
