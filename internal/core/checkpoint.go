package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"chiron/internal/rl"
)

// ErrCorruptCheckpoint reports a checkpoint file that cannot be restored:
// truncated mid-write, invalid JSON, or structurally incomplete (missing
// either agent's snapshot). Callers distinguish it from shape mismatches
// and I/O errors with errors.Is.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint")

// Checkpoint is the serializable training state of a hierarchical agent:
// both layers' snapshots plus the episode counter.
type Checkpoint struct {
	Exterior *rl.Snapshot `json:"exterior"`
	Inner    *rl.Snapshot `json:"inner"`
	Episode  int          `json:"episode"`
	// Nodes and StateDim pin the environment shape the checkpoint was
	// trained against, so a mismatched restore fails loudly instead of
	// silently loading weights into the wrong architecture.
	Nodes    int `json:"nodes"`
	StateDim int `json:"state_dim"`
}

// Checkpoint captures the agent's current training state.
func (c *Chiron) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Exterior: c.exterior.Snapshot(),
		Inner:    c.inner.Snapshot(),
		Episode:  c.episode,
		Nodes:    c.env.NumNodes(),
		StateDim: c.env.StateDim(),
	}
}

// Restore overwrites the agent's training state from a checkpoint taken on
// an identically shaped system.
func (c *Chiron) Restore(ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("core: restore from nil checkpoint")
	}
	if ck.Exterior == nil || ck.Inner == nil {
		return fmt.Errorf("%w: missing agent snapshot (exterior=%v inner=%v)",
			ErrCorruptCheckpoint, ck.Exterior != nil, ck.Inner != nil)
	}
	if ck.Nodes != c.env.NumNodes() || ck.StateDim != c.env.StateDim() {
		return fmt.Errorf("core: checkpoint for %d nodes / state dim %d, environment has %d / %d",
			ck.Nodes, ck.StateDim, c.env.NumNodes(), c.env.StateDim())
	}
	if err := c.exterior.Restore(ck.Exterior); err != nil {
		return fmt.Errorf("core: restore exterior: %w", err)
	}
	if err := c.inner.Restore(ck.Inner); err != nil {
		return fmt.Errorf("core: restore inner: %w", err)
	}
	c.episode = ck.Episode
	return nil
}

// SaveCheckpoint writes the agent's training state as JSON to path.
func (c *Chiron) SaveCheckpoint(path string) error {
	data, err := json.Marshal(c.Checkpoint())
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores the agent's training state from a JSON file
// written by SaveCheckpoint. A file truncated mid-write or otherwise
// unparseable fails with an error wrapping ErrCorruptCheckpoint, and the
// agent's in-memory state is left untouched.
func (c *Chiron) LoadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("%w: parse %s: %v", ErrCorruptCheckpoint, path, err)
	}
	return c.Restore(&ck)
}
