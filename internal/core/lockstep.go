package core

import (
	"fmt"

	"chiron/internal/mat"
	"chiron/internal/mechanism"
	"chiron/internal/nn"
)

// Batched frozen-policy evaluation. The frozen-policy studies (robustness,
// fault sweeps, grid sweeps) restore ONE checkpoint into many agents, each
// bound to its own perturbed environment, and evaluate every cell with the
// same deterministic policy. Sequentially that is one 1×d forward per agent
// per round; EvaluateLockstep instead advances all cells in lockstep and
// evaluates each round's decisions with ONE batched forward per policy —
// one GEMM sweep per network per step instead of one per cell.
//
// Bit-exactness: every GEMM destination element accumulates over its own
// reduction independently (internal/mat's kernel contract), so row r of the
// batched forward is bit-identical to the 1×d forward of that cell's state,
// and each cell's environment sees the exact call sequence the sequential
// mechanism.Evaluate would produce. Per-cell results are folded through
// mechanism.Aggregator in episode order — the same accumulation order as
// Evaluate — so reports are byte-identical, which the propcheck equivalence
// property pins over 200 randomized trials.

// lockstepCell is one hosted evaluation: an agent, its environment, and the
// episode bookkeeping the shared driver would otherwise own.
type lockstepCell struct {
	c         *Chiron
	agg       mechanism.Aggregator
	ext       *mechanism.Returns
	inn       float64
	left      int // episodes remaining, including any in progress
	inEpisode bool
	prices    []float64
}

// EvaluateLockstep averages episodes deterministic episodes for every agent,
// batching all policy forwards across agents. All agents must share
// bit-identical policy weights (the frozen-checkpoint setup) and matching
// observation/action dimensions; results are bit-identical to calling
// mechanism.Evaluate on each agent in turn.
func EvaluateLockstep(agents []*Chiron, episodes int) ([]mechanism.EpisodeResult, error) {
	return evaluateLockstep(agents, episodes, mat.Float64Backend)
}

// EvaluateLockstepBackend is EvaluateLockstep with an explicit compute
// backend. The float64 backend is the bit-exact reference; the float32
// backend runs the two policy forwards through precision-lowered fused
// twins (nn.Fuse32) — results then carry float32 rounding and are validated
// by tolerance properties, not digests.
func EvaluateLockstepBackend(agents []*Chiron, episodes int, backend mat.Backend) ([]mechanism.EpisodeResult, error) {
	return evaluateLockstep(agents, episodes, backend)
}

// sameWeights reports whether two networks hold bit-identical parameters.
func sameWeights(a, b *nn.Network) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		da, db := pa[i].Value.Data(), pb[i].Value.Data()
		if len(da) != len(db) {
			return false
		}
		for j := range da {
			if da[j] != db[j] {
				return false
			}
		}
	}
	return true
}

func evaluateLockstep(agents []*Chiron, episodes int, backend mat.Backend) ([]mechanism.EpisodeResult, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("core: lockstep evaluate with no agents")
	}
	if episodes <= 0 {
		return nil, fmt.Errorf("core: lockstep evaluate %d episodes, want > 0", episodes)
	}
	shared := agents[0]
	netE := shared.pairE.Agent.Policy().MeanNet()
	netI := shared.pairI.Agent.Policy().MeanNet()
	obsDim := shared.obs.Dim()
	nodes := shared.env.NumNodes()
	for i, a := range agents[1:] {
		if a.obs.Dim() != obsDim || a.env.NumNodes() != nodes {
			return nil, fmt.Errorf("core: lockstep agent %d dims obs=%d nodes=%d, want obs=%d nodes=%d",
				i+1, a.obs.Dim(), a.env.NumNodes(), obsDim, nodes)
		}
		if !sameWeights(netE, a.pairE.Agent.Policy().MeanNet()) ||
			!sameWeights(netI, a.pairI.Agent.Policy().MeanNet()) {
			return nil, fmt.Errorf("core: lockstep agent %d does not share agent 0's policy weights", i+1)
		}
	}

	// Optional precision-lowered twins for the two policy forwards.
	var fusedE, fusedI *nn.FusedMLP32
	if backend.Precision == mat.Float32 {
		var ok bool
		if fusedE, ok = nn.Fuse32(netE); !ok {
			return nil, fmt.Errorf("core: lockstep float32: exterior policy does not fuse")
		}
		if fusedI, ok = nn.Fuse32(netI); !ok {
			return nil, fmt.Errorf("core: lockstep float32: inner policy does not fuse")
		}
	}

	cells := make([]lockstepCell, len(agents))
	for i, a := range agents {
		cells[i] = lockstepCell{c: a, left: episodes, prices: make([]float64, a.env.NumNodes())}
	}

	// Batch workspaces, re-ensured as finished cells shrink the batch.
	var statesE, statesI, meansE, meansI *mat.Matrix
	var totals []float64
	deciding := make([]*lockstepCell, 0, len(cells))

	// forward evaluates one policy batch in the configured backend. In
	// float32 the output is widened row by row into out64 for the heads.
	forward := func(states *mat.Matrix, fused *nn.FusedMLP32, agent interface {
		ActDeterministicBatch(*mat.Matrix) (*mat.Matrix, error)
	}, out64 *mat.Matrix) (*mat.Matrix, error) {
		if fused == nil {
			return agent.ActDeterministicBatch(states)
		}
		x32, err := fused.Stage(states)
		if err != nil {
			return nil, err
		}
		y32, err := fused.Forward(x32)
		if err != nil {
			return nil, err
		}
		out64 = mat.Ensure(out64, y32.Rows(), y32.Cols())
		for i, v := range y32.Data() {
			out64.Data()[i] = float64(v)
		}
		return out64, nil
	}

	for {
		deciding = deciding[:0]
		for i := range cells {
			cell := &cells[i]
			if cell.left == 0 {
				continue
			}
			if !cell.inEpisode {
				if err := cell.c.env.Reset(); err != nil {
					return nil, fmt.Errorf("core: lockstep reset: %w", err)
				}
				cell.ext = mechanism.NewReturns()
				cell.inn = 0
				cell.inEpisode = true
			}
			if cell.c.env.Done() {
				finishLockstepEpisode(cell)
				continue
			}
			deciding = append(deciding, cell)
		}
		if len(deciding) == 0 {
			allDone := true
			for i := range cells {
				if cells[i].left > 0 {
					allDone = false
					break
				}
			}
			if allDone {
				break
			}
			continue
		}

		// One exterior forward for every deciding cell.
		statesE = mat.Ensure(statesE, len(deciding), obsDim)
		for r, cell := range deciding {
			cell.c.obs.EncodeTo(statesE.Row(r))
		}
		var err error
		if meansE, err = forward(statesE, fusedE, shared.pairE.Agent, meansE); err != nil {
			return nil, fmt.Errorf("core: lockstep exterior act: %w", err)
		}
		totals = mat.EnsureVec(totals, len(deciding))
		for r, cell := range deciding {
			totals[r] = cell.c.priceHead.Total(meansE.At(r, 0))
		}

		// One inner forward, conditioned on each cell's exterior action.
		statesI = mat.Ensure(statesI, len(deciding), 1)
		for r, cell := range deciding {
			cell.c.cond.EncodeTotal(statesI.Row(r), totals[r])
		}
		if meansI, err = forward(statesI, fusedI, shared.pairI.Agent, meansI); err != nil {
			return nil, fmt.Errorf("core: lockstep inner act: %w", err)
		}

		// Step every deciding cell's environment with its own prices.
		for r, cell := range deciding {
			if err := cell.c.allocHead.PricesTo(cell.prices, totals[r], meansI.Row(r)); err != nil {
				return nil, fmt.Errorf("core: lockstep prices: %w", err)
			}
			res, err := cell.c.env.Step(cell.prices)
			if err != nil {
				return nil, fmt.Errorf("core: lockstep step: %w", err)
			}
			if res.Done && res.Round.Participants == 0 {
				// Budget exhausted: the round was discarded (Sec. V-A), no
				// reward is accumulated for it.
				finishLockstepEpisode(cell)
				continue
			}
			cell.ext.Add(res.ExteriorReward)
			cell.inn += res.InnerReward
			if res.Done {
				finishLockstepEpisode(cell)
			}
		}
	}

	results := make([]mechanism.EpisodeResult, len(cells))
	for i := range cells {
		results[i] = cells[i].agg.Result()
	}
	return results, nil
}

// finishLockstepEpisode summarizes the cell's episode exactly as the shared
// driver would: advance the agent's episode counter, summarize from the
// ledger, fold into the cell's aggregator.
func finishLockstepEpisode(cell *lockstepCell) {
	cell.c.drv.SetEpisode(cell.c.drv.Episode() + 1)
	res := mechanism.Summarize(cell.c.env, cell.c.drv.Episode(), cell.ext, cell.inn)
	cell.agg.Add(res)
	cell.left--
	cell.inEpisode = false
}
