// Package core implements the paper's primary contribution: Chiron, the
// hierarchical deep-reinforcement incentive mechanism (Sec. V).
//
// Two PPO agents cooperate inside the parameter server. The exterior agent
// observes the windowed round history plus budget state and emits the
// round's total price p_total,k — the long-term, budget-pacing decision.
// Its action becomes the inner agent's state; the inner agent emits the
// allocation proportions pr_{i,k} across nodes — the short-term
// time-consistency decision. Per-node prices are p_{i,k} = a^E_k·a^I_{i,k}
// (Eqn. 13). Both agents train with clipped-surrogate PPO at episode end,
// exactly the workflow of Algorithm 1.
//
// Chiron is built from the shared agent stack: internal/policy encoders and
// action heads on top of two internal/rl policy+learner pairs, run by the
// mechanism.Driver episode loop.
package core

import (
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mat"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
	"chiron/internal/rl"
)

// Config parameterizes the hierarchical agent.
type Config struct {
	// Exterior and Inner hold the PPO hyperparameters of the two agents.
	Exterior rl.PPOConfig
	Inner    rl.PPOConfig
	// TotalPriceFloor is the lower bound of the exterior action as a
	// fraction of the environment's MaxTotalPrice, keeping the squashed
	// action away from the degenerate zero-price corner.
	TotalPriceFloor float64
	// ExteriorRewardScale and InnerRewardScale rescale rewards to O(1)
	// before they enter the replay buffers, keeping the critic's value
	// targets compatible with gradient clipping. They only affect learner
	// conditioning; reported metrics stay in paper units.
	ExteriorRewardScale float64
	InnerRewardScale    float64
	// MinUpdateSamples defers the end-of-episode PPO update until the
	// exterior buffer holds at least this many transitions, batching
	// consecutive short episodes together. Large fleets burn small budgets
	// in a handful of rounds; updating on 3–5 samples makes the
	// batch-normalized advantages meaningless and the policy random-walks.
	MinUpdateSamples int
	// Seed drives all of the agent's stochasticity.
	Seed int64
}

// DefaultConfig returns the paper's hyperparameters for both layers plus
// the reproduction's documented conditioning adjustments (DESIGN.md): a
// faster exterior critic so the value of low-budget states is learned
// before the myopic price-up gradient dominates, and a lower-noise,
// harder-trained inner agent for the allocation simplex.
func DefaultConfig() Config {
	exterior := rl.DefaultPPOConfig()
	exterior.CriticLR = 3e-4
	inner := rl.DefaultPPOConfig()
	inner.ActorLR = 1e-4
	inner.CriticLR = 1e-4
	inner.InitLogStd = -1.0
	inner.EntropyCoef = 1e-4
	inner.UpdateEpochs = 20
	return Config{
		Exterior:            exterior,
		Inner:               inner,
		TotalPriceFloor:     0.01,
		ExteriorRewardScale: 0.01,
		InnerRewardScale:    0.01,
		MinUpdateSamples:    64,
		Seed:                1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Exterior.Validate(); err != nil {
		return fmt.Errorf("core: exterior config: %w", err)
	}
	if err := c.Inner.Validate(); err != nil {
		return fmt.Errorf("core: inner config: %w", err)
	}
	if c.TotalPriceFloor < 0 || c.TotalPriceFloor >= 1 {
		return fmt.Errorf("core: total price floor %v outside [0,1)", c.TotalPriceFloor)
	}
	if c.ExteriorRewardScale <= 0 || c.InnerRewardScale <= 0 {
		return fmt.Errorf("core: reward scales %v/%v, want > 0", c.ExteriorRewardScale, c.InnerRewardScale)
	}
	if c.MinUpdateSamples < 0 {
		return fmt.Errorf("core: min update samples %d, want >= 0", c.MinUpdateSamples)
	}
	return nil
}

// Chiron is the hierarchical DRL incentive mechanism: a thin composition of
// an exterior policy+learner pair (total price, bounded scalar head over
// the full exterior observation) and an inner pair (allocation proportions,
// simplex head conditioned on the exterior action).
type Chiron struct {
	cfg       Config
	env       *edgeenv.Env
	obs       *policy.Concat             // exterior observation s^E_k
	cond      policy.ConditioningEncoder // inner observation s^I_k
	priceHead policy.BoundedScalarHead   // a^E_k → p_total,k
	allocHead policy.SimplexHead         // a^I_k → pr_{i,k} → p_{i,k}
	pairE     *rl.Pair
	pairI     *rl.Pair
	sched     *rl.Scheduler
	drv       *mechanism.Driver
	src       *rl.CountingSource
	rng       *rand.Rand
	maxTotal  float64
	priceLo   float64 // exterior action range, see New
	priceHi   float64

	// Per-round actor scratch, valid between Decide and Observe/Discard.
	lastStateE []float64
	lastD      decision
	// The inner transition for round k needs round k+1's inner state, so
	// its commit is delayed by one round (lines 13–15 of Algorithm 1).
	pending *pendingInner
}

type pendingInner struct {
	d decision
	r float64
}

var (
	_ mechanism.Mechanism    = (*Chiron)(nil)
	_ mechanism.Actor        = (*Chiron)(nil)
	_ mechanism.Checkpointer = (*Chiron)(nil)
)

// New builds a Chiron agent bound to env.
func New(env *edgeenv.Env, cfg Config) (*Chiron, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rl.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	obs, err := policy.NewExteriorEncoder(env)
	if err != nil {
		return nil, fmt.Errorf("core: exterior encoder: %w", err)
	}
	exterior, err := rl.NewPPO(rng, obs.Dim(), 1, cfg.Exterior)
	if err != nil {
		return nil, fmt.Errorf("core: exterior agent: %w", err)
	}
	inner, err := rl.NewPPO(rng, policy.NewConditioningEncoder(env).Dim(), env.NumNodes(), cfg.Inner)
	if err != nil {
		return nil, fmt.Errorf("core: inner agent: %w", err)
	}
	c := &Chiron{
		cfg:      cfg,
		env:      env,
		obs:      obs,
		cond:     policy.NewConditioningEncoder(env),
		pairE:    rl.NewPair("exterior", exterior, cfg.ExteriorRewardScale),
		pairI:    rl.NewPair("inner", inner, cfg.InnerRewardScale),
		src:      src,
		rng:      rng,
		maxTotal: env.MaxTotalPrice(),
	}
	// Update order is inner before exterior (Algorithm 1 lines 17–27), the
	// gate watches the exterior buffer, and decay ticks every episode.
	c.sched = &rl.Scheduler{
		Pairs:      []*rl.Pair{c.pairI, c.pairE},
		Gate:       1,
		MinSamples: cfg.MinUpdateSamples,
		DecayFirst: true,
	}
	c.drv = mechanism.NewDriver("chiron", env, c)
	// The exterior action is a per-round total price (per unit CPU
	// frequency). Its meaningful scale is set by the budget: the policy
	// should be able to pace between "stretch η over up to 2·MaxRounds
	// rounds" and "burn η in 3 rounds". Those are PAYMENT targets, so the
	// corresponding total-price bounds come from inverting the fleet's
	// price→payment map (uniform split, best responses), capped at the
	// fleet's saturation price beyond which extra price is pure waste.
	// The policy then works in log space over the range (LogSquash) so
	// exploration starts near the geometric middle — a moderate pace at
	// every fleet size and budget.
	budget := env.Ledger().Budget()
	maxRounds := float64(env.Config().MaxRounds)
	c.priceLo = c.totalPriceForPayment(budget / (2 * maxRounds))
	c.priceHi = c.totalPriceForPayment(budget / 3)
	if c.priceHi > c.maxTotal {
		c.priceHi = c.maxTotal
	}
	if floor := c.cfg.TotalPriceFloor * c.maxTotal; c.priceLo < floor {
		c.priceLo = floor
	}
	if c.priceLo >= c.priceHi {
		c.priceLo = c.priceHi / 10
	}
	c.priceHead = policy.BoundedScalarHead{Lo: c.priceLo, Hi: c.priceHi}
	return c, nil
}

// paymentForTotal estimates the round payment a uniformly split total
// price induces through the nodes' best responses.
func (c *Chiron) paymentForTotal(total float64) float64 {
	per := total / float64(c.env.NumNodes())
	var sum float64
	for _, n := range c.env.Nodes() {
		sum += n.BestResponse(per).Payment
	}
	return sum
}

// totalPriceForPayment inverts paymentForTotal by bisection: the smallest
// total price whose induced payment reaches the target. Payment is
// nondecreasing in price. Targets above the saturation payment return the
// fleet's max total price.
func (c *Chiron) totalPriceForPayment(target float64) float64 {
	if target <= 0 {
		return c.cfg.TotalPriceFloor * c.maxTotal
	}
	if c.paymentForTotal(c.maxTotal) <= target {
		return c.maxTotal
	}
	lo, hi := 0.0, c.maxTotal
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if c.paymentForTotal(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Name implements mechanism.Mechanism.
func (c *Chiron) Name() string { return "Chiron" }

// Env implements mechanism.Mechanism.
func (c *Chiron) Env() *edgeenv.Env { return c.env }

// Exterior exposes the exterior PPO agent (for checkpointing and tests).
func (c *Chiron) Exterior() *rl.PPO { return c.pairE.Agent }

// Inner exposes the inner PPO agent.
func (c *Chiron) Inner() *rl.PPO { return c.pairI.Agent }

// Episode returns the number of training episodes completed.
func (c *Chiron) Episode() int { return c.drv.Episode() }

// SetRoundHook installs a pre-round callback on the episode driver (see
// mechanism.Driver.SetRoundHook).
func (c *Chiron) SetRoundHook(hook func(episode, round int) error) { c.drv.SetRoundHook(hook) }

// decision is the per-round action bundle before environment execution.
type decision struct {
	actE   []float64 // exterior pre-squash action (dim 1)
	lpE    float64
	actI   []float64 // inner pre-squash action (dim N)
	lpI    float64
	total  float64   // squashed total price p_total,k
	stateI []float64 // inner state {p_total,k normalized}
	prices []float64 // per-node prices (Eqn. 13)
}

// decide runs both policy networks for one round.
func (c *Chiron) decide(stateE []float64, train bool) (decision, error) {
	var d decision
	var err error
	if train {
		d.actE, d.lpE, err = c.pairE.Agent.Act(c.rng, stateE)
	} else {
		d.actE, err = c.pairE.Agent.ActDeterministic(stateE)
	}
	if err != nil {
		return decision{}, fmt.Errorf("core: exterior act: %w", err)
	}
	d.total = c.priceHead.Total(d.actE[0])
	// The exterior action is the inner state (the hierarchy of Fig. 2).
	d.stateI = c.cond.State(d.total)
	if train {
		d.actI, d.lpI, err = c.pairI.Agent.Act(c.rng, d.stateI)
	} else {
		d.actI, err = c.pairI.Agent.ActDeterministic(d.stateI)
	}
	if err != nil {
		return decision{}, fmt.Errorf("core: inner act: %w", err)
	}
	d.prices, err = c.allocHead.Prices(d.total, d.actI)
	if err != nil {
		return decision{}, err
	}
	return d, nil
}

// Decide implements mechanism.Actor.
func (c *Chiron) Decide(train bool) ([]float64, error) {
	c.lastStateE = c.obs.State()
	d, err := c.decide(c.lastStateE, train)
	if err != nil {
		return nil, err
	}
	c.lastD = d
	return d.prices, nil
}

// Observe implements mechanism.Actor: it stores the exterior transition and
// commits the previous round's delayed inner transition now that its next
// state (this round's exterior action) is known.
func (c *Chiron) Observe(res edgeenv.StepResult, train bool) error {
	if !train {
		return nil
	}
	d := c.lastD
	c.pairE.Store(rl.Transition{
		State:     c.lastStateE,
		Action:    d.actE,
		Reward:    res.ExteriorReward,
		NextState: c.obs.State(),
		Done:      res.Done,
		LogProb:   d.lpE,
	})
	if c.pending != nil {
		c.pairI.Store(rl.Transition{
			State:     c.pending.d.stateI,
			Action:    c.pending.d.actI,
			Reward:    c.pending.r,
			NextState: d.stateI,
			Done:      false,
			LogProb:   c.pending.d.lpI,
		})
	}
	c.pending = &pendingInner{d: d, r: res.InnerReward}
	if res.Done {
		c.flushPending()
	}
	return nil
}

// Discard implements mechanism.Actor: the attempted round was discarded
// (budget exhausted, Sec. V-A), so no transition is stored for it and the
// previously committed round was in fact terminal.
func (c *Chiron) Discard(train bool) {
	if !train {
		return
	}
	c.pairE.Buf.MarkLastDone()
	if c.pending != nil {
		c.pairI.Store(rl.Transition{
			State:     c.pending.d.stateI,
			Action:    c.pending.d.actI,
			Reward:    c.pending.r,
			NextState: c.lastD.stateI,
			Done:      true,
			LogProb:   c.pending.d.lpI,
		})
		c.pending = nil
	}
}

// flushPending commits a still-queued inner transition as terminal, using
// its own state as the next state (the episode produced no further round).
func (c *Chiron) flushPending() {
	p := c.pending
	if p == nil {
		return
	}
	c.pairI.Store(rl.Transition{
		State:     p.d.stateI,
		Action:    p.d.actI,
		Reward:    p.r,
		NextState: p.d.stateI,
		Done:      true,
		LogProb:   p.d.lpI,
	})
	c.pending = nil
}

// EndEpisode implements mechanism.Actor: it flushes any queued inner
// transition and runs the Algorithm 1 end-of-episode schedule — decay every
// episode, deferred batched PPO updates gated on the exterior buffer.
func (c *Chiron) EndEpisode(train bool) error {
	if !train {
		return nil
	}
	c.flushPending()
	return c.sched.EndEpisode()
}

// RunEpisode implements mechanism.Mechanism: it plays one full episode and,
// when train is set, performs the Algorithm 1 end-of-episode PPO updates on
// both agents and advances the learning-rate decay schedule.
func (c *Chiron) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	return c.drv.RunEpisode(train)
}

// Train runs the Algorithm 1 outer loop for the given number of episodes,
// invoking callback (if non-nil) after each. It returns the per-episode
// results, the learning curve of Figs. 3 and 7(a).
func (c *Chiron) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	return c.drv.Train(episodes, callback)
}

// Evaluate plays episodes episodes with deterministic (mean) actions and no
// learning, returning the mean of each metric.
func (c *Chiron) Evaluate(episodes int) (mechanism.EpisodeResult, error) {
	return EvaluateMechanism(c, episodes)
}

// EvaluateMechanism averages deterministic episodes for any mechanism.
//
// Deprecated: it delegates to mechanism.Evaluate, the consolidated
// train/evaluate path; call that directly in new code.
func EvaluateMechanism(m mechanism.Mechanism, episodes int) (mechanism.EpisodeResult, error) {
	return mechanism.Evaluate(m, episodes)
}

// PriceVector reproduces the deterministic pricing decision for the current
// environment state without stepping the environment — useful for
// inspecting a trained policy.
func (c *Chiron) PriceVector() ([]float64, error) {
	d, err := c.decide(c.obs.State(), false)
	if err != nil {
		return nil, err
	}
	return mat.CloneVec(d.prices), nil
}
