// Package core implements the paper's primary contribution: Chiron, the
// hierarchical deep-reinforcement incentive mechanism (Sec. V).
//
// Two PPO agents cooperate inside the parameter server. The exterior agent
// observes the windowed round history plus budget state and emits the
// round's total price p_total,k — the long-term, budget-pacing decision.
// Its action becomes the inner agent's state; the inner agent emits the
// allocation proportions pr_{i,k} across nodes — the short-term
// time-consistency decision. Per-node prices are p_{i,k} = a^E_k·a^I_{i,k}
// (Eqn. 13). Both agents train with clipped-surrogate PPO at episode end,
// exactly the workflow of Algorithm 1.
package core

import (
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mat"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
)

// Config parameterizes the hierarchical agent.
type Config struct {
	// Exterior and Inner hold the PPO hyperparameters of the two agents.
	Exterior rl.PPOConfig
	Inner    rl.PPOConfig
	// TotalPriceFloor is the lower bound of the exterior action as a
	// fraction of the environment's MaxTotalPrice, keeping the squashed
	// action away from the degenerate zero-price corner.
	TotalPriceFloor float64
	// ExteriorRewardScale and InnerRewardScale rescale rewards to O(1)
	// before they enter the replay buffers, keeping the critic's value
	// targets compatible with gradient clipping. They only affect learner
	// conditioning; reported metrics stay in paper units.
	ExteriorRewardScale float64
	InnerRewardScale    float64
	// MinUpdateSamples defers the end-of-episode PPO update until the
	// exterior buffer holds at least this many transitions, batching
	// consecutive short episodes together. Large fleets burn small budgets
	// in a handful of rounds; updating on 3–5 samples makes the
	// batch-normalized advantages meaningless and the policy random-walks.
	MinUpdateSamples int
	// Seed drives all of the agent's stochasticity.
	Seed int64
}

// DefaultConfig returns the paper's hyperparameters for both layers plus
// the reproduction's documented conditioning adjustments (DESIGN.md): a
// faster exterior critic so the value of low-budget states is learned
// before the myopic price-up gradient dominates, and a lower-noise,
// harder-trained inner agent for the allocation simplex.
func DefaultConfig() Config {
	exterior := rl.DefaultPPOConfig()
	exterior.CriticLR = 3e-4
	inner := rl.DefaultPPOConfig()
	inner.ActorLR = 1e-4
	inner.CriticLR = 1e-4
	inner.InitLogStd = -1.0
	inner.EntropyCoef = 1e-4
	inner.UpdateEpochs = 20
	return Config{
		Exterior:            exterior,
		Inner:               inner,
		TotalPriceFloor:     0.01,
		ExteriorRewardScale: 0.01,
		InnerRewardScale:    0.01,
		MinUpdateSamples:    64,
		Seed:                1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Exterior.Validate(); err != nil {
		return fmt.Errorf("core: exterior config: %w", err)
	}
	if err := c.Inner.Validate(); err != nil {
		return fmt.Errorf("core: inner config: %w", err)
	}
	if c.TotalPriceFloor < 0 || c.TotalPriceFloor >= 1 {
		return fmt.Errorf("core: total price floor %v outside [0,1)", c.TotalPriceFloor)
	}
	if c.ExteriorRewardScale <= 0 || c.InnerRewardScale <= 0 {
		return fmt.Errorf("core: reward scales %v/%v, want > 0", c.ExteriorRewardScale, c.InnerRewardScale)
	}
	if c.MinUpdateSamples < 0 {
		return fmt.Errorf("core: min update samples %d, want >= 0", c.MinUpdateSamples)
	}
	return nil
}

// Chiron is the hierarchical DRL incentive mechanism.
type Chiron struct {
	cfg      Config
	env      *edgeenv.Env
	exterior *rl.PPO
	inner    *rl.PPO
	bufE     *rl.Buffer
	bufI     *rl.Buffer
	rng      *rand.Rand
	maxTotal float64
	priceLo  float64 // exterior action range, see New
	priceHi  float64
	episode  int
}

var _ mechanism.Mechanism = (*Chiron)(nil)

// New builds a Chiron agent bound to env.
func New(env *edgeenv.Env, cfg Config) (*Chiron, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	exterior, err := rl.NewPPO(rng, env.StateDim(), 1, cfg.Exterior)
	if err != nil {
		return nil, fmt.Errorf("core: exterior agent: %w", err)
	}
	inner, err := rl.NewPPO(rng, 1, env.NumNodes(), cfg.Inner)
	if err != nil {
		return nil, fmt.Errorf("core: inner agent: %w", err)
	}
	c := &Chiron{
		cfg:      cfg,
		env:      env,
		exterior: exterior,
		inner:    inner,
		bufE:     &rl.Buffer{},
		bufI:     &rl.Buffer{},
		rng:      rng,
		maxTotal: env.MaxTotalPrice(),
	}
	// The exterior action is a per-round total price (per unit CPU
	// frequency). Its meaningful scale is set by the budget: the policy
	// should be able to pace between "stretch η over up to 2·MaxRounds
	// rounds" and "burn η in 3 rounds". Those are PAYMENT targets, so the
	// corresponding total-price bounds come from inverting the fleet's
	// price→payment map (uniform split, best responses), capped at the
	// fleet's saturation price beyond which extra price is pure waste.
	// The policy then works in log space over the range (LogSquash) so
	// exploration starts near the geometric middle — a moderate pace at
	// every fleet size and budget.
	budget := env.Ledger().Budget()
	maxRounds := float64(env.Config().MaxRounds)
	c.priceLo = c.totalPriceForPayment(budget / (2 * maxRounds))
	c.priceHi = c.totalPriceForPayment(budget / 3)
	if c.priceHi > c.maxTotal {
		c.priceHi = c.maxTotal
	}
	if floor := c.cfg.TotalPriceFloor * c.maxTotal; c.priceLo < floor {
		c.priceLo = floor
	}
	if c.priceLo >= c.priceHi {
		c.priceLo = c.priceHi / 10
	}
	return c, nil
}

// paymentForTotal estimates the round payment a uniformly split total
// price induces through the nodes' best responses.
func (c *Chiron) paymentForTotal(total float64) float64 {
	per := total / float64(c.env.NumNodes())
	var sum float64
	for _, n := range c.env.Nodes() {
		sum += n.BestResponse(per).Payment
	}
	return sum
}

// totalPriceForPayment inverts paymentForTotal by bisection: the smallest
// total price whose induced payment reaches the target. Payment is
// nondecreasing in price. Targets above the saturation payment return the
// fleet's max total price.
func (c *Chiron) totalPriceForPayment(target float64) float64 {
	if target <= 0 {
		return c.cfg.TotalPriceFloor * c.maxTotal
	}
	if c.paymentForTotal(c.maxTotal) <= target {
		return c.maxTotal
	}
	lo, hi := 0.0, c.maxTotal
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if c.paymentForTotal(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Name implements mechanism.Mechanism.
func (c *Chiron) Name() string { return "Chiron" }

// Env implements mechanism.Mechanism.
func (c *Chiron) Env() *edgeenv.Env { return c.env }

// Exterior exposes the exterior PPO agent (for checkpointing and tests).
func (c *Chiron) Exterior() *rl.PPO { return c.exterior }

// Inner exposes the inner PPO agent.
func (c *Chiron) Inner() *rl.PPO { return c.inner }

// Episode returns the number of training episodes completed.
func (c *Chiron) Episode() int { return c.episode }

// decision is the per-round action bundle before environment execution.
type decision struct {
	actE   []float64 // exterior pre-squash action (dim 1)
	lpE    float64
	actI   []float64 // inner pre-squash action (dim N)
	lpI    float64
	total  float64   // squashed total price p_total,k
	stateI []float64 // inner state {p_total,k normalized}
	prices []float64 // per-node prices (Eqn. 13)
}

// decide runs both policy networks for one round.
func (c *Chiron) decide(stateE []float64, train bool) (decision, error) {
	var d decision
	var err error
	if train {
		d.actE, d.lpE, err = c.exterior.Act(c.rng, stateE)
	} else {
		d.actE, err = c.exterior.ActDeterministic(stateE)
	}
	if err != nil {
		return decision{}, fmt.Errorf("core: exterior act: %w", err)
	}
	d.total = rl.LogSquash(d.actE[0], c.priceLo, c.priceHi)
	// The exterior action is the inner state (the hierarchy of Fig. 2).
	d.stateI = []float64{d.total / c.maxTotal}
	if train {
		d.actI, d.lpI, err = c.inner.Act(c.rng, d.stateI)
	} else {
		d.actI, err = c.inner.ActDeterministic(d.stateI)
	}
	if err != nil {
		return decision{}, fmt.Errorf("core: inner act: %w", err)
	}
	props, err := rl.SimplexProject(d.actI)
	if err != nil {
		return decision{}, err
	}
	d.prices = make([]float64, len(props))
	for i, pr := range props {
		d.prices[i] = d.total * pr
	}
	return d, nil
}

// RunEpisode implements mechanism.Mechanism: it plays one full episode and,
// when train is set, performs the Algorithm 1 end-of-episode PPO updates on
// both agents and advances the learning-rate decay schedule.
func (c *Chiron) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	stateE, err := c.env.Reset()
	if err != nil {
		return mechanism.EpisodeResult{}, err
	}
	ext := mechanism.NewReturns()
	var innReturn float64
	// The inner transition for round k needs round k+1's inner state, so
	// its commit is delayed by one round (lines 13–15 of Algorithm 1).
	var pending *struct {
		d decision
		r float64
	}
	for !c.env.Done() {
		d, err := c.decide(stateE, train)
		if err != nil {
			return mechanism.EpisodeResult{}, err
		}
		res, err := c.env.Step(d.prices)
		if err != nil {
			return mechanism.EpisodeResult{}, err
		}
		nextStateE := c.env.ExteriorState()
		if res.Done && res.Round.Participants == 0 {
			// Budget exhausted: the round was discarded, nothing is
			// recorded (Sec. V-A) and no transition is stored for it. The
			// previously committed round was therefore terminal.
			if train {
				c.bufE.MarkLastDone()
			}
			if train && pending != nil {
				c.bufI.Add(rl.Transition{
					State:     pending.d.stateI,
					Action:    pending.d.actI,
					Reward:    pending.r * c.cfg.InnerRewardScale,
					NextState: d.stateI,
					Done:      true,
					LogProb:   pending.d.lpI,
				})
				pending = nil
			}
			break
		}
		ext.Add(res.ExteriorReward)
		innReturn += res.InnerReward
		if train {
			c.bufE.Add(rl.Transition{
				State:     stateE,
				Action:    d.actE,
				Reward:    res.ExteriorReward * c.cfg.ExteriorRewardScale,
				NextState: nextStateE,
				Done:      res.Done,
				LogProb:   d.lpE,
			})
			if pending != nil {
				c.bufI.Add(rl.Transition{
					State:     pending.d.stateI,
					Action:    pending.d.actI,
					Reward:    pending.r * c.cfg.InnerRewardScale,
					NextState: d.stateI,
					Done:      false,
					LogProb:   pending.d.lpI,
				})
			}
			pending = &struct {
				d decision
				r float64
			}{d: d, r: res.InnerReward}
			if res.Done {
				c.bufI.Add(rl.Transition{
					State:     pending.d.stateI,
					Action:    pending.d.actI,
					Reward:    pending.r * c.cfg.InnerRewardScale,
					NextState: pending.d.stateI,
					Done:      true,
					LogProb:   pending.d.lpI,
				})
				pending = nil
			}
		}
		stateE = nextStateE
		if res.Done {
			break
		}
	}
	// Flush a pending inner transition if the loop exited with one queued
	// (episode ended on the budget check before the next decision).
	if train && pending != nil {
		c.bufI.Add(rl.Transition{
			State:     pending.d.stateI,
			Action:    pending.d.actI,
			Reward:    pending.r * c.cfg.InnerRewardScale,
			NextState: pending.d.stateI,
			Done:      true,
			LogProb:   pending.d.lpI,
		})
	}

	c.episode++
	result := mechanism.Summarize(c.env, c.episode, ext, innReturn)
	if train {
		if err := c.update(); err != nil {
			return mechanism.EpisodeResult{}, err
		}
	}
	return result, nil
}

// update performs the end-of-episode PPO updates (lines 17–27) and clears
// both experience buffers. When the exterior buffer is still below
// MinUpdateSamples the update is deferred and experience keeps
// accumulating across episodes (the clipped importance ratio handles the
// slight off-policy staleness).
func (c *Chiron) update() error {
	c.exterior.EndEpisode()
	c.inner.EndEpisode()
	if c.bufE.Len() < c.cfg.MinUpdateSamples {
		return nil
	}
	if c.bufI.Len() > 0 {
		if _, err := c.inner.Update(c.bufI); err != nil {
			return fmt.Errorf("core: inner update: %w", err)
		}
	}
	if c.bufE.Len() > 0 {
		if _, err := c.exterior.Update(c.bufE); err != nil {
			return fmt.Errorf("core: exterior update: %w", err)
		}
	}
	c.bufE.Clear()
	c.bufI.Clear()
	return nil
}

// Train runs the Algorithm 1 outer loop for the given number of episodes,
// invoking callback (if non-nil) after each. It returns the per-episode
// results, the learning curve of Figs. 3 and 7(a).
func (c *Chiron) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("core: train %d episodes, want > 0", episodes)
	}
	results := make([]mechanism.EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		res, err := c.RunEpisode(true)
		if err != nil {
			return results, fmt.Errorf("core: episode %d: %w", ep+1, err)
		}
		results = append(results, res)
		if callback != nil {
			callback(res)
		}
	}
	return results, nil
}

// Evaluate plays episodes episodes with deterministic (mean) actions and no
// learning, returning the mean of each metric.
func (c *Chiron) Evaluate(episodes int) (mechanism.EpisodeResult, error) {
	return EvaluateMechanism(c, episodes)
}

// EvaluateMechanism averages deterministic episodes for any mechanism.
//
// Deprecated: it delegates to mechanism.Evaluate, the consolidated
// train/evaluate path; call that directly in new code.
func EvaluateMechanism(m mechanism.Mechanism, episodes int) (mechanism.EpisodeResult, error) {
	return mechanism.Evaluate(m, episodes)
}

// PriceVector reproduces the deterministic pricing decision for the current
// environment state without stepping the environment — useful for
// inspecting a trained policy.
func (c *Chiron) PriceVector() ([]float64, error) {
	d, err := c.decide(c.env.ExteriorState(), false)
	if err != nil {
		return nil, err
	}
	return mat.CloneVec(d.prices), nil
}
