// Package scenario makes edge-learning evaluation regimes data instead of
// code: a declarative Spec (JSON or struct literal) describes the device
// fleet as a mix of named hardware classes, the learning task and its
// non-IID severity, time-varying bandwidth regimes, churn and fault
// schedules, and the mechanism × budget grid to sweep — and compiles onto
// the experiment.Plan scheduler, so every regime runs parallel yet
// byte-identical to serial.
//
// On top of the spec language sits a counterfactual replay engine: Record
// runs one (mechanism, budget) cell with the round pipeline's draw-capture
// hooks enabled, streaming every round's resolved environment draws
// (membership, availability, bandwidth jitter) into a versioned
// internal/trace file alongside the mechanism's post-training checkpoint;
// Replay pins those draws through a round.DrawSource and plays a mechanism
// against them — the same mechanism (bit-identical to the recording, the
// property internal/propcheck enforces) or a different mechanism or budget
// ("same fleet, different policy"), answering what-if questions without
// re-simulating the environment. See DESIGN.md §14.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"chiron/internal/edgeenv"
	"chiron/internal/experiment"
)

// The typed validation errors malformed specs surface. Callers match them
// with errors.Is; every error still carries the offending field's context.
var (
	// ErrEmptyFleet reports a spec whose device classes sum to zero nodes.
	ErrEmptyFleet = errors.New("scenario: fleet is empty")
	// ErrUnknownClass reports a device class naming no known profile.
	ErrUnknownClass = errors.New("scenario: unknown device class profile")
	// ErrNegativeBudget reports a non-positive episode budget.
	ErrNegativeBudget = errors.New("scenario: non-positive budget")
	// ErrChurnOverlap reports churn windows that overlap for one node.
	ErrChurnOverlap = errors.New("scenario: overlapping churn windows")
	// ErrUnknownMechanism reports a mechanism name outside the vocabulary.
	ErrUnknownMechanism = errors.New("scenario: unknown mechanism")
	// ErrUnknownDataset reports a dataset name outside the vocabulary.
	ErrUnknownDataset = errors.New("scenario: unknown dataset")
)

// Spec is one declarative scenario: everything needed to reproduce an
// evaluation regime from a JSON file. The zero value of every optional
// field selects the paper's clean assumption, so the minimal spec — name,
// dataset, seed, one class, one budget, one mechanism, eval episodes — is
// exactly the paper's setting.
type Spec struct {
	// Name identifies the scenario (library key, golden-file key).
	Name string `json:"name"`
	// Description is a human summary shown by `chiron list`.
	Description string `json:"description,omitempty"`
	// Dataset selects the calibrated accuracy curve: mnist, fashion,
	// cifar, or mnist-large (the 100-node Table I fit).
	Dataset string `json:"dataset"`
	// Seed drives fleet generation and all stochasticity. The compiler
	// derives sub-seeds deterministically: seed for the fleet, seed+1 for
	// the accuracy curve, seed+3 for environment draws, seed+5 for the
	// fault sampler, seed+7 for the churn sampler.
	Seed int64 `json:"seed"`
	// Classes composes the fleet from named hardware profiles; nodes are
	// numbered in class order.
	Classes []DeviceClass `json:"classes"`
	// Budgets is the η sweep; each budget is one column of the grid.
	Budgets []float64 `json:"budgets"`
	// Mechanisms lists the mechanisms to sweep: chiron, drl, greedy,
	// uniform, equal-time.
	Mechanisms []string `json:"mechanisms"`
	// TrainEpisodes is the training length per grid cell (0 for the static
	// references).
	TrainEpisodes int `json:"train_episodes"`
	// EvalEpisodes is the deterministic evaluation length per cell.
	EvalEpisodes int `json:"eval_episodes"`
	// Lambda overrides λ (0 = the paper's 2000).
	Lambda float64 `json:"lambda,omitempty"`
	// TimeWeight overrides the exterior reward's time weighting (0 = the
	// calibrated default).
	TimeWeight float64 `json:"time_weight,omitempty"`
	// MaxRounds overrides the episode round cap (0 = default 200).
	MaxRounds int `json:"max_rounds,omitempty"`
	// NonIID is the data heterogeneity severity s ≥ 0: the accuracy
	// curve's round constants stretch by (1+s) and its measurement noise
	// grows by (1+s) — non-IID shards converge slower and noisier. 0 is
	// the IID fit.
	NonIID float64 `json:"non_iid,omitempty"`
	// Availability is the per-round probability a node is reachable
	// (0 or 1 = always, the paper's assumption).
	Availability float64 `json:"availability,omitempty"`
	// CommJitter is the per-round relative bandwidth jitter in [0,1).
	CommJitter float64 `json:"comm_jitter,omitempty"`
	// Bandwidth is a piecewise-constant uplink regime: each phase scales
	// every node's nominal upload time from its round onward. Phases must
	// be in strictly ascending round order.
	Bandwidth []BandwidthPhase `json:"bandwidth,omitempty"`
	// Churn schedules fleet membership over the episode.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Faults injects per-round failures.
	Faults *FaultSpec `json:"faults,omitempty"`
	// RoundDeadline is the server's straggler cutoff in seconds (0 = wait
	// for the slowest node).
	RoundDeadline float64 `json:"round_deadline,omitempty"`
	// MaxRetries and RetryBackoff shape the dropped-upload retry policy.
	MaxRetries   int     `json:"max_retries,omitempty"`
	RetryBackoff float64 `json:"retry_backoff,omitempty"`
	// FailurePayment ∈ [0,1] is the failed-node payment fraction.
	FailurePayment float64 `json:"failure_payment,omitempty"`
	// MinQuorum is the completed-update quorum for model progress.
	MinQuorum int `json:"min_quorum,omitempty"`
}

// DeviceClass is a count of nodes drawn from a named hardware profile,
// optionally rescaled. Profiles multiply the paper's Sec. VI-A fleet
// constants; the per-class scale factors multiply the profile's own
// factors (0 means 1, the profile as is).
type DeviceClass struct {
	// Profile names the base hardware profile: paper, phone, laptop, iot,
	// or server.
	Profile string `json:"profile"`
	// Count is the number of nodes drawn from this class.
	Count int `json:"count"`
	// FreqScale scales the class's maximum CPU frequency range.
	FreqScale float64 `json:"freq_scale,omitempty"`
	// CommScale scales the class's nominal upload-time range.
	CommScale float64 `json:"comm_scale,omitempty"`
	// DataScale scales the class's per-epoch training-data range.
	DataScale float64 `json:"data_scale,omitempty"`
	// ReserveScale scales the class's reserve-utility cap — the knob that
	// makes a class cheap or expensive to recruit (the price regime).
	ReserveScale float64 `json:"reserve_scale,omitempty"`
}

// BandwidthPhase starts a new uplink regime at FromRound: every node's
// nominal upload time is multiplied by Factor until the next phase.
// Factor > 1 is congestion (slower uplinks), < 1 extra headroom.
type BandwidthPhase struct {
	FromRound int     `json:"from_round"`
	Factor    float64 `json:"factor"`
}

// ChurnSpec schedules fleet membership. Exactly the forms the faults
// package supports, plus declarative away/visit windows: Script and
// Windows compile into one exact faults.ChurnScript; Rates selects the
// seed-deterministic Markov sampler instead. Script/Windows and Rates are
// mutually exclusive.
type ChurnSpec struct {
	// Script is the textual event form: "+NODE@ROUND" arrivals and
	// "-NODE@ROUND" departures, comma-separated.
	Script string `json:"script,omitempty"`
	// Windows declares per-node membership intervals (see ChurnWindow).
	Windows []ChurnWindow `json:"windows,omitempty"`
	// Rates selects a sampled two-state Markov schedule.
	Rates *ChurnRatesSpec `json:"rates,omitempty"`
}

// ChurnWindow is one node's membership interval. An "away" window (the
// default) removes the node for rounds (From, To]: it departs mid-round
// From and re-enters at round To+1. A "visit" window inverts that: the
// node starts outside the fleet, arrives at round From, and departs
// mid-round To — the flash-crowd form. Windows for one node must not
// overlap.
type ChurnWindow struct {
	Node int    `json:"node"`
	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind,omitempty"` // "away" (default) or "visit"
}

// ChurnRatesSpec mirrors faults.ChurnRates for JSON specs.
type ChurnRatesSpec struct {
	Depart        float64 `json:"depart"`
	Arrive        float64 `json:"arrive"`
	InitialAbsent float64 `json:"initial_absent,omitempty"`
}

// FaultSpec mirrors faults.Rates for JSON specs: per-(round, node) fault
// probabilities, sampled seed-deterministically.
type FaultSpec struct {
	Crash          float64 `json:"crash,omitempty"`
	Straggle       float64 `json:"straggle,omitempty"`
	Drop           float64 `json:"drop,omitempty"`
	Corrupt        float64 `json:"corrupt,omitempty"`
	StraggleFactor float64 `json:"straggle_factor,omitempty"`
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// a typo'd knob cannot silently select a default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates the JSON spec at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// NumNodes returns the fleet size the classes compose.
func (s *Spec) NumNodes() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Count
	}
	return n
}

// EpisodeRounds returns the episode round cap the compiled environment
// will enforce: the spec's MaxRounds override, or the edgeenv default.
func (s *Spec) EpisodeRounds() int {
	if s.MaxRounds > 0 {
		return s.MaxRounds
	}
	return edgeenv.DefaultMaxRounds
}

// Scale returns a copy with train/eval episode counts multiplied by f
// (nonzero counts keep a minimum of 1) — the same reduction rule the
// experiment parameter sets use.
func (s *Spec) Scale(f float64) *Spec {
	scaled := *s
	scaled.TrainEpisodes = experiment.ScaleCount(s.TrainEpisodes, f)
	scaled.EvalEpisodes = experiment.ScaleCount(s.EvalEpisodes, f)
	return &scaled
}

// Validate reports the first problem with the spec. All scenario
// construction paths (Parse, Run, Record, Replay) funnel through it.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if _, err := datasetPreset(s.Dataset); err != nil {
		return err
	}
	if len(s.Classes) == 0 || s.NumNodes() == 0 {
		return fmt.Errorf("%w (scenario %q)", ErrEmptyFleet, s.Name)
	}
	for i, c := range s.Classes {
		if _, ok := profiles[c.Profile]; !ok {
			return fmt.Errorf("%w: class %d names profile %q", ErrUnknownClass, i, c.Profile)
		}
		if c.Count <= 0 {
			return fmt.Errorf("scenario: class %d (%s) count %d, want > 0", i, c.Profile, c.Count)
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"freq_scale", c.FreqScale}, {"comm_scale", c.CommScale},
			{"data_scale", c.DataScale}, {"reserve_scale", c.ReserveScale},
		} {
			if f.v < 0 {
				return fmt.Errorf("scenario: class %d (%s) %s %v, want >= 0", i, c.Profile, f.name, f.v)
			}
		}
	}
	if len(s.Budgets) == 0 {
		return fmt.Errorf("%w: scenario %q has no budgets", ErrNegativeBudget, s.Name)
	}
	for _, b := range s.Budgets {
		if b <= 0 {
			return fmt.Errorf("%w: η=%v", ErrNegativeBudget, b)
		}
	}
	if len(s.Mechanisms) == 0 {
		return fmt.Errorf("%w: scenario %q lists no mechanisms", ErrUnknownMechanism, s.Name)
	}
	for _, m := range s.Mechanisms {
		if _, err := MechanismKind(m); err != nil {
			return err
		}
	}
	switch {
	case s.TrainEpisodes < 0:
		return fmt.Errorf("scenario: train episodes %d, want >= 0", s.TrainEpisodes)
	case s.EvalEpisodes <= 0:
		return fmt.Errorf("scenario: eval episodes %d, want > 0", s.EvalEpisodes)
	case s.Lambda < 0:
		return fmt.Errorf("scenario: lambda %v, want >= 0", s.Lambda)
	case s.TimeWeight < 0:
		return fmt.Errorf("scenario: time weight %v, want >= 0", s.TimeWeight)
	case s.MaxRounds < 0:
		return fmt.Errorf("scenario: max rounds %d, want >= 0", s.MaxRounds)
	case s.NonIID < 0:
		return fmt.Errorf("scenario: non-IID severity %v, want >= 0", s.NonIID)
	case s.Availability < 0 || s.Availability > 1:
		return fmt.Errorf("scenario: availability %v outside [0,1]", s.Availability)
	case s.CommJitter < 0 || s.CommJitter >= 1:
		return fmt.Errorf("scenario: comm jitter %v outside [0,1)", s.CommJitter)
	case s.RoundDeadline < 0:
		return fmt.Errorf("scenario: round deadline %v, want >= 0", s.RoundDeadline)
	case s.MaxRetries < 0:
		return fmt.Errorf("scenario: max retries %d, want >= 0", s.MaxRetries)
	case s.RetryBackoff < 0:
		return fmt.Errorf("scenario: retry backoff %v, want >= 0", s.RetryBackoff)
	case s.FailurePayment < 0 || s.FailurePayment > 1:
		return fmt.Errorf("scenario: failure payment %v outside [0,1]", s.FailurePayment)
	case s.MinQuorum < 0:
		return fmt.Errorf("scenario: min quorum %d, want >= 0", s.MinQuorum)
	case s.MinQuorum > s.NumNodes():
		return fmt.Errorf("scenario: min quorum %d exceeds fleet size %d", s.MinQuorum, s.NumNodes())
	}
	for i, p := range s.Bandwidth {
		if p.FromRound < 1 {
			return fmt.Errorf("scenario: bandwidth phase %d starts at round %d, want >= 1", i, p.FromRound)
		}
		if i > 0 && p.FromRound <= s.Bandwidth[i-1].FromRound {
			return fmt.Errorf("scenario: bandwidth phases out of order at index %d (round %d after %d)",
				i, p.FromRound, s.Bandwidth[i-1].FromRound)
		}
		if p.Factor <= 0 {
			return fmt.Errorf("scenario: bandwidth phase %d factor %v, want > 0", i, p.Factor)
		}
	}
	if s.Churn != nil {
		if _, err := s.churnSchedule(); err != nil {
			return err
		}
	}
	if s.Faults != nil {
		if _, err := s.faultRates(); err != nil {
			return err
		}
	}
	return nil
}

// validateWindows checks the declarative churn windows: well-formed
// intervals, known kinds, and — per node — no overlap.
func validateWindows(windows []ChurnWindow, nodes int) error {
	byNode := make(map[int][]ChurnWindow)
	for i, w := range windows {
		switch {
		case w.Node < 0 || w.Node >= nodes:
			return fmt.Errorf("scenario: churn window %d names node %d, but the fleet has %d nodes", i, w.Node, nodes)
		case w.From < 1 || w.To < w.From:
			return fmt.Errorf("scenario: churn window %d rounds [%d,%d], want 1 <= from <= to", i, w.From, w.To)
		case w.Kind != "" && w.Kind != "away" && w.Kind != "visit":
			return fmt.Errorf("scenario: churn window %d kind %q (want away or visit)", i, w.Kind)
		}
		byNode[w.Node] = append(byNode[w.Node], w)
	}
	for node, ws := range byNode {
		sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
		for i := 1; i < len(ws); i++ {
			// An away window spans (From, To]; its arrival lands at To+1, so
			// the next window must start after To+1 to leave the arrival and
			// the next departure on distinct rounds. Visit windows occupy
			// [From, To] outright. Requiring From > previous To+1 covers
			// both forms.
			if ws[i].From <= ws[i-1].To+1 {
				return fmt.Errorf("%w: node %d windows [%d,%d] and [%d,%d]",
					ErrChurnOverlap, node, ws[i-1].From, ws[i-1].To, ws[i].From, ws[i].To)
			}
		}
		if len(ws) > 0 && ws[0].Kind == "visit" {
			// A visiting node starts absent; a later away window would imply
			// it was present in between, which the visit windows already
			// decide. Mixing kinds per node is therefore rejected.
			for _, w := range ws[1:] {
				if w.Kind != "visit" {
					return fmt.Errorf("%w: node %d mixes visit and away windows", ErrChurnOverlap, node)
				}
			}
		}
	}
	return nil
}

// MechanismKind resolves a spec mechanism name to the experiment kind.
func MechanismKind(name string) (experiment.MechanismKind, error) {
	switch strings.ToLower(name) {
	case "chiron":
		return experiment.KindChiron, nil
	case "drl", "drl-based":
		return experiment.KindDRLBased, nil
	case "greedy":
		return experiment.KindGreedy, nil
	case "uniform":
		return experiment.KindUniform, nil
	case "equal-time", "equaltime", "equal-time-oracle", "equaltime-oracle":
		return experiment.KindEqualTimeOracle, nil
	default:
		return 0, fmt.Errorf("%w: %q (want chiron, drl, greedy, uniform, or equal-time)", ErrUnknownMechanism, name)
	}
}
